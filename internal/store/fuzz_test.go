package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzStoreEquivalence is the differential fuzz target of the
// mmap≡in-memory contract: for arbitrary graph shapes (including
// zero-degree rows, heterogeneous edge types and empty feature
// matrices), writing to the store format and mapping it back must
// reproduce every array bitwise. Runs 10s per CI push and 5m nightly.
func FuzzStoreEquivalence(f *testing.F) {
	f.Add(int64(1), uint16(50), uint8(4), uint8(8), false)
	f.Add(int64(2), uint16(300), uint8(1), uint8(0), true)
	f.Add(int64(3), uint16(2), uint8(2), uint8(32), false)
	f.Add(int64(42), uint16(997), uint8(7), uint8(3), true)
	f.Fuzz(func(t *testing.T, seed int64, n16 uint16, avg8, dim8 uint8, hetero bool) {
		n := int(n16)%1500 + 2
		avg := int(avg8)%8 + 1
		dim := int(dim8) % 33
		src := testSource(t, seed, n, avg, dim, 5, hetero)

		st, err := Open(writeTemp(t, src))
		if err != nil {
			t.Fatalf("Open after Write: %v", err)
		}
		defer st.Close()

		requireEqualGraph(t, src.G, st.Graph())
		wantF, gotF := src.Feat.Data(), st.Features().Data()
		if len(wantF) != len(gotF) {
			t.Fatalf("feature len %d vs %d", len(gotF), len(wantF))
		}
		for i := range wantF {
			if wantF[i] != gotF[i] {
				t.Fatalf("feat[%d]: %v vs %v", i, gotF[i], wantF[i])
			}
		}
		for i, l := range st.Labels() {
			if l != src.Labels[i] {
				t.Fatalf("label[%d]: %d vs %d", i, l, src.Labels[i])
			}
		}
		if err := st.VerifyFingerprint(); err != nil {
			t.Fatalf("VerifyFingerprint: %v", err)
		}
		if err := st.Graph().Validate(); err != nil {
			t.Fatalf("Validate: %v", err)
		}
	})
}

// FuzzStoreOpen throws arbitrary bytes at Open: whatever the input, the
// result must be a clean error or a store whose full-scan checks pass —
// never a panic or fault.
func FuzzStoreOpen(f *testing.F) {
	var buf bytes.Buffer
	if err := Write(&buf, testSource(f, 9, 40, 2, 4, 3, true)); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:PageSize])
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(Magic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.sgs")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		st, err := Open(path)
		if err != nil {
			return
		}
		defer st.Close()
		_ = st.VerifyFingerprint()
		_ = st.Graph().Validate()
	})
}

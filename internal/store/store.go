package store

import (
	"fmt"
	"hash/fnv"
	"os"

	"seastar/internal/graph"
	"seastar/internal/tensor"
)

// Store is a read-only, memory-mapped graph store. Graph() and
// Features() alias the mapping directly — zero copies, zero
// deserialization — so a Store must stay open for as long as anything
// returned from it is in use. The mapping is PROT_READ: writing through
// a returned slice faults, which is the contract (training copies rows
// out; it never mutates the graph or feature matrix in place).
type Store struct {
	path   string
	data   []byte
	mapped bool // true: munmap on Close; false: heap fallback
	hdr    header

	g      *graph.Graph
	feat   *tensor.Tensor
	labels []int
}

// Open maps the store file at path read-only and validates the header
// and section table against the actual file size, so a truncated or
// corrupt file is a clean error here rather than a fault on first
// access. The returned Store is safe for concurrent readers.
func Open(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	size := fi.Size()
	if size < PageSize {
		return nil, fmt.Errorf("store: %s: %d bytes, smaller than one page (truncated?)", path, size)
	}
	data, mapped, err := mmapFile(f, size)
	if err != nil {
		return nil, fmt.Errorf("store: mmap %s: %w", path, err)
	}
	st := &Store{path: path, data: data, mapped: mapped}
	if err := st.validate(); err != nil {
		st.Close()
		return nil, fmt.Errorf("store: %s: %w", path, err)
	}
	st.build()
	return st, nil
}

// validate decodes the header and checks every section lies inside the
// file with the exact length the dimensions dictate. After this passes,
// no access through the accessors can run off the end of the mapping.
func (s *Store) validate() error {
	h, err := decodeHeader(s.data)
	if err != nil {
		return err
	}
	if h.n > maxDim || h.m > maxDim {
		return fmt.Errorf("n=%d m=%d exceed int32 id space", h.n, h.m)
	}
	if h.n*h.featDim > maxDim {
		return fmt.Errorf("feature matrix %dx%d exceeds int32 element space", h.n, h.featDim)
	}
	if h.numEdgeTypes == 0 {
		return fmt.Errorf("zero edge types")
	}
	hetero := h.sections[secEdgeTypes].len != 0
	want := sectionLens(h.n, h.m, h.featDim, hetero)
	size := uint64(len(s.data))
	for i, sec := range h.sections {
		if sec.len != want[i] {
			return fmt.Errorf("section %d is %d bytes, want %d for n=%d m=%d d=%d",
				i, sec.len, want[i], h.n, h.m, h.featDim)
		}
		if sec.len == 0 {
			continue
		}
		if sec.off%PageSize != 0 {
			return fmt.Errorf("section %d offset %d not page-aligned", i, sec.off)
		}
		if sec.off > size || size-sec.off < sec.len {
			return fmt.Errorf("section %d [%d,+%d) runs past file end %d (truncated?)",
				i, sec.off, sec.len, size)
		}
	}
	s.hdr = h
	return nil
}

func (s *Store) section(i int) []byte {
	sec := s.hdr.sections[i]
	if sec.len == 0 {
		return nil
	}
	return s.data[sec.off : sec.off+sec.len : sec.off+sec.len]
}

// build assembles the graph and feature views over the mapping. Offsets
// validity (monotone, within m) is not re-proven here; graph.Validate
// is available to callers that want the full structural check.
func (s *Store) build() {
	n, m := int(s.hdr.n), int(s.hdr.m)
	rowIDs := bytesI32(s.section(secRowIDs))
	g := &graph.Graph{
		N: n, M: m,
		In: graph.CSR{
			Offsets: bytesI64(s.section(secInOffsets)),
			Nbrs:    bytesI32(s.section(secInNbrs)),
			EdgeIDs: bytesI32(s.section(secInEids)),
			RowIDs:  rowIDs,
		},
		Out: graph.CSR{
			Offsets: bytesI64(s.section(secOutOffsets)),
			Nbrs:    bytesI32(s.section(secOutNbrs)),
			EdgeIDs: bytesI32(s.section(secOutEids)),
			RowIDs:  rowIDs,
		},
		Srcs:         bytesI32(s.section(secSrcs)),
		Dsts:         bytesI32(s.section(secDsts)),
		EdgeTypes:    bytesI32(s.section(secEdgeTypes)),
		NumEdgeTypes: int(s.hdr.numEdgeTypes),
	}
	s.g = g
	feat := bytesF32(s.section(secFeatures))
	if feat == nil && n >= 0 {
		feat = []float32{} // zero-column store: a valid empty matrix
	}
	s.feat = tensor.FromSlice(feat, n, int(s.hdr.featDim))
	l32 := bytesI32(s.section(secLabels))
	s.labels = make([]int, n)
	for i, v := range l32 {
		s.labels[i] = int(v)
	}
}

// Graph returns the graph view over the mapping. Both CSRs alias the
// file; RowIDs is the stored identity array shared by both directions.
func (s *Store) Graph() *graph.Graph { return s.g }

// Features returns the [N, FeatDim] feature matrix aliasing the mapping.
func (s *Store) Features() *tensor.Tensor { return s.feat }

// Labels returns the per-vertex class labels (decoded to the heap at
// Open; the slice is shared across calls — treat as read-only).
func (s *Store) Labels() []int { return s.labels }

// NumClasses returns the label class count recorded at convert time.
func (s *Store) NumClasses() int { return int(s.hdr.numClasses) }

// N returns the vertex count.
func (s *Store) N() int { return int(s.hdr.n) }

// M returns the edge count.
func (s *Store) M() int { return int(s.hdr.m) }

// FeatDim returns the feature dimensionality.
func (s *Store) FeatDim() int { return int(s.hdr.featDim) }

// Fingerprint returns the content fingerprint recorded in the header.
func (s *Store) Fingerprint() uint64 { return s.hdr.fingerprint }

// Bytes returns the size of the backing file (mapping length).
func (s *Store) Bytes() int64 { return int64(len(s.data)) }

// Path returns the file the store was opened from.
func (s *Store) Path() string { return s.path }

// VerifyFingerprint re-hashes the mapped content and compares it to the
// header fingerprint. It touches every page of the file, so it is a
// full-scan integrity check, not a cheap one.
func (s *Store) VerifyFingerprint() error {
	f := fnv.New64a()
	var dims [8]byte
	for _, v := range []uint64{s.hdr.n, s.hdr.m, s.hdr.featDim, s.hdr.numEdgeTypes, s.hdr.numClasses} {
		putU64(dims[:], v)
		f.Write(dims[:])
	}
	f.Write(s.section(secSrcs))
	f.Write(s.section(secDsts))
	f.Write(s.section(secEdgeTypes))
	f.Write(s.section(secLabels))
	f.Write(s.section(secFeatures))
	if got := f.Sum64(); got != s.hdr.fingerprint {
		return fmt.Errorf("store: content fingerprint %#x != header %#x (corrupt payload)", got, s.hdr.fingerprint)
	}
	return nil
}

// Close unmaps the file. Every slice previously returned by Graph,
// Features or section accessors becomes invalid.
func (s *Store) Close() error {
	if s.data == nil {
		return nil
	}
	data, mapped := s.data, s.mapped
	s.data, s.g, s.feat = nil, nil, nil
	return unmapFile(data, mapped)
}

package store

import (
	"encoding/binary"
	"unsafe"
)

// The store reinterprets raw file bytes as typed slices (and typed
// slices as raw bytes when writing). All casts preserve the native byte
// order — the header's order sentinel rejects cross-endian files — and
// every mapped section is at least 8-byte aligned (sections start on
// 4096-byte file offsets and the mapping base is page-aligned; the
// portable fallback allocates the backing buffer as []int64).

func putU64(b []byte, v uint64) { binary.NativeEndian.PutUint64(b, v) }
func getU64(b []byte) uint64    { return binary.NativeEndian.Uint64(b) }
func putU32(b []byte, v uint32) { binary.NativeEndian.PutUint32(b, v) }
func getU32(b []byte) uint32    { return binary.NativeEndian.Uint32(b) }

func i64Bytes(s []int64) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(s))), len(s)*8)
}

func i32Bytes(s []int32) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(s))), len(s)*4)
}

func f32Bytes(s []float32) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(s))), len(s)*4)
}

func bytesI64(b []byte) []int64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(unsafe.SliceData(b))), len(b)/8)
}

func bytesI32(b []byte) []int32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(unsafe.SliceData(b))), len(b)/4)
}

func bytesF32(b []byte) []float32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*float32)(unsafe.Pointer(unsafe.SliceData(b))), len(b)/4)
}

// Package store implements the out-of-core graph store (DESIGN.md §16):
// a page-aligned on-disk format holding both CSRs, the edge list, edge
// types, labels and the row-major feature matrix, written once by
// seastar-convert and memory-mapped read-only at load. Section offsets
// are 4096-byte aligned so every array lands on its own pages and the
// mapping can be aliased directly as Go slices — the loaded *graph.Graph
// and feature tensor are byte-for-byte the arrays on disk, so compiled
// plans, the fused VM and normalizer derivation run unchanged over
// disk-resident data. An async Prefetcher walks the next pipeline
// batch's rows ahead of the gather stage (madvise(WILLNEED) +
// touch-read) to hide page-fault latency.
//
// Numbers are stored in the writing host's native byte order; a
// byte-order sentinel in the header rejects cross-endian files cleanly
// instead of decoding garbage.
package store

import (
	"bufio"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"

	"seastar/internal/graph"
	"seastar/internal/tensor"
)

// Format constants. The header occupies the first page; every section
// starts on its own page boundary.
const (
	// PageSize is the alignment unit of the on-disk format.
	PageSize = 4096
	// Magic identifies a seastar graph store file.
	Magic = "SGSTORE1"
	// FormatVersion is the current on-disk format version.
	FormatVersion = 1

	// orderSentinel is written in native byte order; a reader on a
	// host with different endianness sees a scrambled value.
	orderSentinel uint32 = 0x01020304
)

// Section indices into the header's section table.
const (
	secInOffsets = iota
	secInNbrs
	secInEids
	secOutOffsets
	secOutNbrs
	secOutEids
	secRowIDs
	secSrcs
	secDsts
	secEdgeTypes
	secLabels
	secFeatures
	numSections
)

// Header field offsets (bytes from start of file).
const (
	offMagic        = 0
	offVersion      = 8
	offOrder        = 12
	offN            = 16
	offM            = 24
	offFeatDim      = 32
	offEdgeTypes    = 40
	offClasses      = 48
	offFingerprint  = 56
	offSectionCount = 64
	offSections     = 72
	offChecksum     = offSections + numSections*16 // 264
	headerSize      = offChecksum + 8              // 272
)

// maxDim bounds n, m and n*featDim so int32 vertex/edge ids and int
// indexing stay valid everywhere downstream.
const maxDim = 1<<31 - 1

type section struct {
	off uint64 // byte offset from start of file; PageSize-aligned
	len uint64 // exact payload length in bytes (no padding)
}

type header struct {
	version      uint32
	n            uint64
	m            uint64
	featDim      uint64
	numEdgeTypes uint64
	numClasses   uint64
	fingerprint  uint64
	sections     [numSections]section
}

func (h *header) encode() []byte {
	b := make([]byte, headerSize)
	copy(b[offMagic:], Magic)
	putU32(b[offVersion:], h.version)
	putU32(b[offOrder:], orderSentinel)
	putU64(b[offN:], h.n)
	putU64(b[offM:], h.m)
	putU64(b[offFeatDim:], h.featDim)
	putU64(b[offEdgeTypes:], h.numEdgeTypes)
	putU64(b[offClasses:], h.numClasses)
	putU64(b[offFingerprint:], h.fingerprint)
	putU64(b[offSectionCount:], numSections)
	for i, s := range h.sections {
		putU64(b[offSections+i*16:], s.off)
		putU64(b[offSections+i*16+8:], s.len)
	}
	putU64(b[offChecksum:], headerChecksum(b))
	return b
}

// headerChecksum hashes every header byte before the checksum field.
func headerChecksum(b []byte) uint64 {
	f := fnv.New64a()
	f.Write(b[:offChecksum])
	return f.Sum64()
}

func decodeHeader(b []byte) (header, error) {
	var h header
	if len(b) < headerSize {
		return h, fmt.Errorf("store: file too small for header (%d bytes)", len(b))
	}
	if string(b[offMagic:offMagic+8]) != Magic {
		return h, fmt.Errorf("store: bad magic %q (not a seastar graph store)", b[offMagic:offMagic+8])
	}
	if got := getU32(b[offOrder:]); got != orderSentinel {
		return h, fmt.Errorf("store: byte-order sentinel %#x (file written on a host with different endianness)", got)
	}
	h.version = getU32(b[offVersion:])
	if h.version != FormatVersion {
		return h, fmt.Errorf("store: format version %d (this build reads version %d)", h.version, FormatVersion)
	}
	if got, want := getU64(b[offChecksum:]), headerChecksum(b); got != want {
		return h, fmt.Errorf("store: header checksum %#x != %#x (corrupt header)", got, want)
	}
	if c := getU64(b[offSectionCount:]); c != numSections {
		return h, fmt.Errorf("store: %d sections, want %d", c, numSections)
	}
	h.n = getU64(b[offN:])
	h.m = getU64(b[offM:])
	h.featDim = getU64(b[offFeatDim:])
	h.numEdgeTypes = getU64(b[offEdgeTypes:])
	h.numClasses = getU64(b[offClasses:])
	h.fingerprint = getU64(b[offFingerprint:])
	for i := range h.sections {
		h.sections[i].off = getU64(b[offSections+i*16:])
		h.sections[i].len = getU64(b[offSections+i*16+8:])
	}
	return h, nil
}

// Source is the in-memory data a store file is written from. Feat may
// have zero columns (a structure-only store); Labels may be nil (stored
// as zeros).
type Source struct {
	G          *graph.Graph
	Feat       *tensor.Tensor
	Labels     []int
	NumClasses int
}

// sectionLens returns the exact payload length of every section for the
// given dimensions.
func sectionLens(n, m, featDim uint64, hetero bool) [numSections]uint64 {
	var l [numSections]uint64
	l[secInOffsets] = (n + 1) * 8
	l[secInNbrs] = m * 4
	l[secInEids] = m * 4
	l[secOutOffsets] = (n + 1) * 8
	l[secOutNbrs] = m * 4
	l[secOutEids] = m * 4
	l[secRowIDs] = n * 4
	l[secSrcs] = m * 4
	l[secDsts] = m * 4
	if hetero {
		l[secEdgeTypes] = m * 4
	}
	l[secLabels] = n * 4
	l[secFeatures] = n * featDim * 4
	return l
}

func pageAlign(x uint64) uint64 {
	return (x + PageSize - 1) &^ uint64(PageSize-1)
}

// validateSource checks the invariants Convert requires: an unsorted
// graph (identity RowIDs — both CSRs then share one stored row-id
// section), matching feature/label lengths, and dimensions that fit
// int32 ids.
func validateSource(src *Source) error {
	g := src.G
	if g == nil {
		return fmt.Errorf("store: nil graph")
	}
	if g.N > maxDim || g.M > maxDim {
		return fmt.Errorf("store: graph %dx%d exceeds int32 id space", g.N, g.M)
	}
	if g.In.Sorted || g.Out.Sorted {
		return fmt.Errorf("store: graph is degree-sorted; convert the unsorted graph (degree sort is applied per batch at run time)")
	}
	for _, c := range []*graph.CSR{&g.In, &g.Out} {
		if len(c.Offsets) != g.N+1 || len(c.Nbrs) != g.M || len(c.EdgeIDs) != g.M || len(c.RowIDs) != g.N {
			return fmt.Errorf("store: CSR arrays inconsistent with n=%d m=%d", g.N, g.M)
		}
		for i, r := range c.RowIDs {
			if int(r) != i {
				return fmt.Errorf("store: non-identity RowIDs (row %d = %d); only unsorted graphs are convertible", i, r)
			}
		}
	}
	if len(g.Srcs) != g.M || len(g.Dsts) != g.M {
		return fmt.Errorf("store: edge list length %d/%d, want %d", len(g.Srcs), len(g.Dsts), g.M)
	}
	if g.EdgeTypes != nil && len(g.EdgeTypes) != g.M {
		return fmt.Errorf("store: %d edge types, want %d", len(g.EdgeTypes), g.M)
	}
	if src.Feat == nil {
		return fmt.Errorf("store: nil feature tensor (use a 0-column tensor for a structure-only store)")
	}
	if src.Feat.Rows() != g.N {
		return fmt.Errorf("store: %d feature rows, want %d", src.Feat.Rows(), g.N)
	}
	if d := src.Feat.Cols(); uint64(g.N)*uint64(d) > maxDim {
		return fmt.Errorf("store: feature matrix %dx%d exceeds int32 element space", g.N, d)
	}
	if src.Labels != nil && len(src.Labels) != g.N {
		return fmt.Errorf("store: %d labels, want %d", len(src.Labels), g.N)
	}
	for i, l := range src.Labels {
		if l < 0 || l > math.MaxInt32 {
			return fmt.Errorf("store: label %d = %d out of int32 range", i, l)
		}
	}
	return nil
}

// fingerprintSource hashes the logical content (dimensions, edge list,
// edge types, labels, features) with FNV-1a. The CSRs are derived from
// the edge list, so they are not hashed separately.
func fingerprintSource(src *Source, labels32 []int32) uint64 {
	f := fnv.New64a()
	var dims [8]byte
	for _, v := range []uint64{
		uint64(src.G.N), uint64(src.G.M),
		uint64(src.Feat.Cols()), uint64(src.G.NumEdgeTypes), uint64(src.NumClasses),
	} {
		putU64(dims[:], v)
		f.Write(dims[:])
	}
	f.Write(i32Bytes(src.G.Srcs))
	f.Write(i32Bytes(src.G.Dsts))
	f.Write(i32Bytes(src.G.EdgeTypes))
	f.Write(i32Bytes(labels32))
	f.Write(f32Bytes(src.Feat.Data()))
	return f.Sum64()
}

// Write serializes src to w in store format. The graph must be unsorted
// (identity RowIDs); see WriteFile for the common path.
func Write(w io.Writer, src *Source) error {
	if err := validateSource(src); err != nil {
		return err
	}
	g := src.G
	labels32 := make([]int32, g.N)
	for i := range labels32 {
		if src.Labels != nil {
			labels32[i] = int32(src.Labels[i])
		}
	}

	var h header
	h.version = FormatVersion
	h.n = uint64(g.N)
	h.m = uint64(g.M)
	h.featDim = uint64(src.Feat.Cols())
	h.numEdgeTypes = uint64(max(g.NumEdgeTypes, 1))
	h.numClasses = uint64(src.NumClasses)
	h.fingerprint = fingerprintSource(src, labels32)

	lens := sectionLens(h.n, h.m, h.featDim, g.EdgeTypes != nil)
	off := uint64(PageSize)
	for i := range h.sections {
		h.sections[i] = section{off: off, len: lens[i]}
		off = pageAlign(off + lens[i])
	}

	bw := bufio.NewWriterSize(w, 1<<20)
	if err := writePadded(bw, h.encode(), PageSize); err != nil {
		return err
	}
	payload := [numSections][]byte{
		secInOffsets:  i64Bytes(g.In.Offsets),
		secInNbrs:     i32Bytes(g.In.Nbrs),
		secInEids:     i32Bytes(g.In.EdgeIDs),
		secOutOffsets: i64Bytes(g.Out.Offsets),
		secOutNbrs:    i32Bytes(g.Out.Nbrs),
		secOutEids:    i32Bytes(g.Out.EdgeIDs),
		secRowIDs:     i32Bytes(g.In.RowIDs),
		secSrcs:       i32Bytes(g.Srcs),
		secDsts:       i32Bytes(g.Dsts),
		secEdgeTypes:  i32Bytes(g.EdgeTypes),
		secLabels:     i32Bytes(labels32),
		secFeatures:   f32Bytes(src.Feat.Data()),
	}
	for i, p := range payload {
		if uint64(len(p)) != lens[i] {
			return fmt.Errorf("store: internal: section %d payload %d bytes, want %d", i, len(p), lens[i])
		}
		pad := int(pageAlign(lens[i]) - lens[i])
		if err := writePadded(bw, p, len(p)+pad); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// writePadded writes b followed by zeros up to total bytes.
func writePadded(w *bufio.Writer, b []byte, total int) error {
	if _, err := w.Write(b); err != nil {
		return err
	}
	for i := len(b); i < total; i++ {
		if err := w.WriteByte(0); err != nil {
			return err
		}
	}
	return nil
}

// WriteFile writes src to path atomically (temp file + rename).
func WriteFile(path string, src *Source) error {
	tmp, err := os.CreateTemp(dirOf(path), ".store-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := Write(tmp, src); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "."
}

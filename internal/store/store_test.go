package store

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"seastar/internal/graph"
	"seastar/internal/tensor"
)

// testSource builds a random source: a Zipf graph (which naturally has
// zero-degree rows at small avg degree), gaussian features, random
// labels, optionally heterogeneous edge types.
func testSource(t testing.TB, seed int64, n, avg, dim, classes int, hetero bool) *Source {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.ZipfDegree(rng, n, avg, 1.2)
	if hetero {
		g.EdgeTypes = make([]int32, g.M)
		for i := range g.EdgeTypes {
			g.EdgeTypes[i] = int32(rng.Intn(3))
		}
		g.NumEdgeTypes = 3
	}
	labels := make([]int, n)
	for i := range labels {
		labels[i] = rng.Intn(classes)
	}
	return &Source{
		G:          g,
		Feat:       tensor.Randn(rng, 1, n, dim),
		Labels:     labels,
		NumClasses: classes,
	}
}

func writeTemp(t testing.TB, src *Source) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.sgs")
	if err := WriteFile(path, src); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	return path
}

// requireEqualGraph asserts the store-loaded graph is bitwise-identical
// to the source graph, array by array.
func requireEqualGraph(t *testing.T, want, got *graph.Graph) {
	t.Helper()
	if got.N != want.N || got.M != want.M || got.NumEdgeTypes != want.NumEdgeTypes {
		t.Fatalf("dims: got N=%d M=%d R=%d, want N=%d M=%d R=%d",
			got.N, got.M, got.NumEdgeTypes, want.N, want.M, want.NumEdgeTypes)
	}
	eqI64 := func(name string, a, b []int64) {
		if len(a) != len(b) {
			t.Fatalf("%s: len %d vs %d", name, len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s[%d]: %d vs %d", name, i, b[i], a[i])
			}
		}
	}
	eqI32 := func(name string, a, b []int32) {
		if len(a) != len(b) {
			t.Fatalf("%s: len %d vs %d", name, len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s[%d]: %d vs %d", name, i, b[i], a[i])
			}
		}
	}
	eqI64("in.offsets", want.In.Offsets, got.In.Offsets)
	eqI32("in.nbrs", want.In.Nbrs, got.In.Nbrs)
	eqI32("in.eids", want.In.EdgeIDs, got.In.EdgeIDs)
	eqI32("in.rowids", want.In.RowIDs, got.In.RowIDs)
	eqI64("out.offsets", want.Out.Offsets, got.Out.Offsets)
	eqI32("out.nbrs", want.Out.Nbrs, got.Out.Nbrs)
	eqI32("out.eids", want.Out.EdgeIDs, got.Out.EdgeIDs)
	eqI32("out.rowids", want.Out.RowIDs, got.Out.RowIDs)
	eqI32("srcs", want.Srcs, got.Srcs)
	eqI32("dsts", want.Dsts, got.Dsts)
	eqI32("edgetypes", want.EdgeTypes, got.EdgeTypes)
	if got.In.Sorted || got.Out.Sorted {
		t.Fatalf("loaded CSRs claim sorted")
	}
}

func TestRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name   string
		hetero bool
		dim    int
	}{
		{"homogeneous", false, 16},
		{"hetero", true, 16},
		{"empty-features", false, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			src := testSource(t, 7, 500, 4, tc.dim, 6, tc.hetero)
			st, err := Open(writeTemp(t, src))
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			defer st.Close()

			requireEqualGraph(t, src.G, st.Graph())
			if err := st.Graph().Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if st.FeatDim() != tc.dim || st.Features().Rows() != 500 || st.Features().Cols() != tc.dim {
				t.Fatalf("features: got %dx%d dim %d", st.Features().Rows(), st.Features().Cols(), st.FeatDim())
			}
			wantF, gotF := src.Feat.Data(), st.Features().Data()
			if len(wantF) != len(gotF) {
				t.Fatalf("feature len %d vs %d", len(gotF), len(wantF))
			}
			for i := range wantF {
				if wantF[i] != gotF[i] {
					t.Fatalf("feat[%d]: %v vs %v", i, gotF[i], wantF[i])
				}
			}
			if st.NumClasses() != 6 {
				t.Fatalf("classes %d", st.NumClasses())
			}
			for i, l := range st.Labels() {
				if l != src.Labels[i] {
					t.Fatalf("label[%d]: %d vs %d", i, l, src.Labels[i])
				}
			}
			if err := st.VerifyFingerprint(); err != nil {
				t.Fatalf("VerifyFingerprint: %v", err)
			}
		})
	}
}

// TestZeroDegreeRows pins the zero-degree edge case explicitly: a graph
// where several vertices have no in- or out-edges at all.
func TestZeroDegreeRows(t *testing.T) {
	// 6 vertices, edges only among {0,1,2}: vertices 3..5 are isolated.
	g, err := graph.FromEdges(6, []int32{0, 1, 2, 0}, []int32{1, 2, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	src := &Source{G: g, Feat: tensor.Randn(rand.New(rand.NewSource(1)), 1, 6, 3), Labels: nil, NumClasses: 2}
	st, err := Open(writeTemp(t, src))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer st.Close()
	requireEqualGraph(t, g, st.Graph())
	for v := 3; v < 6; v++ {
		if d := st.Graph().In.Degree(v); d != 0 {
			t.Fatalf("vertex %d in-degree %d, want 0", v, d)
		}
		if d := st.Graph().Out.Degree(v); d != 0 {
			t.Fatalf("vertex %d out-degree %d, want 0", v, d)
		}
	}
	// nil Labels stored as zeros.
	for i, l := range st.Labels() {
		if l != 0 {
			t.Fatalf("label[%d] = %d, want 0", i, l)
		}
	}
}

// TestOpenRejectsCorrupt covers the no-SIGBUS contract: truncated and
// corrupted files fail cleanly at Open, before anything is aliased.
func TestOpenRejectsCorrupt(t *testing.T) {
	src := testSource(t, 3, 300, 4, 8, 4, true)
	good := writeTemp(t, src)
	data, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}

	write := func(t *testing.T, b []byte) string {
		path := filepath.Join(t.TempDir(), "bad.sgs")
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	mustFail := func(t *testing.T, path, why string) {
		st, err := Open(path)
		if err == nil {
			st.Close()
			t.Fatalf("Open succeeded on %s", why)
		}
		t.Logf("%s: %v", why, err)
	}

	t.Run("empty", func(t *testing.T) { mustFail(t, write(t, nil), "empty file") })
	t.Run("sub-page", func(t *testing.T) { mustFail(t, write(t, data[:100]), "sub-page file") })
	t.Run("header-only", func(t *testing.T) { mustFail(t, write(t, data[:PageSize]), "header-only file") })
	t.Run("truncated-mid-section", func(t *testing.T) {
		mustFail(t, write(t, data[:len(data)/2]), "file cut mid-section")
	})
	t.Run("bad-magic", func(t *testing.T) {
		b := bytes.Clone(data)
		b[0] ^= 0xff
		mustFail(t, write(t, b), "bad magic")
	})
	t.Run("bad-version", func(t *testing.T) {
		b := bytes.Clone(data)
		b[offVersion] = 99
		mustFail(t, write(t, b), "bad version (checksum catches or version check)")
	})
	t.Run("flipped-header-byte", func(t *testing.T) {
		b := bytes.Clone(data)
		b[offN] ^= 0x01 // dims no longer match checksum
		mustFail(t, write(t, b), "flipped dimension byte")
	})
	t.Run("payload-corruption-detected-by-verify", func(t *testing.T) {
		b := bytes.Clone(data)
		h, err := decodeHeader(b)
		if err != nil {
			t.Fatal(err)
		}
		b[h.sections[secFeatures].off] ^= 0xff // first feature byte
		st, err := Open(write(t, b))
		if err != nil {
			t.Fatalf("Open should pass (header intact): %v", err)
		}
		defer st.Close()
		if err := st.VerifyFingerprint(); err == nil {
			t.Fatal("VerifyFingerprint missed payload corruption")
		}
	})
}

func TestWriteRejectsBadSources(t *testing.T) {
	src := testSource(t, 5, 100, 3, 4, 3, false)
	sorted := src.G.SortByDegree()
	bad := []*Source{
		{G: nil, Feat: src.Feat, NumClasses: 3},
		{G: sorted, Feat: src.Feat, NumClasses: 3},
		{G: src.G, Feat: nil, NumClasses: 3},
		{G: src.G, Feat: tensor.New(7, 3), NumClasses: 3},
		{G: src.G, Feat: src.Feat, Labels: make([]int, 5), NumClasses: 3},
	}
	var buf bytes.Buffer
	for i, s := range bad {
		if err := Write(&buf, s); err == nil {
			t.Fatalf("source %d accepted", i)
		}
	}
}

func TestPrefetcher(t *testing.T) {
	src := testSource(t, 11, 1000, 6, 32, 4, false)
	st, err := Open(writeTemp(t, src))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	p := st.NewPrefetcher(2, 8)
	verts := make([]int32, 0, 200)
	for v := int32(0); v < 200; v++ {
		verts = append(verts, v)
	}
	p.Batch(verts)
	p.Seeds(verts[:50])
	p.Seeds(nil)               // no-op
	p.Batch([]int32{0, 999})   // extremes
	p.Seeds([]int32{5000, -1}) // out of range: guarded, not fatal
	p.Close()

	s := p.Stats()
	if s.Batches == 0 || s.Rows == 0 || s.Pages == 0 {
		t.Fatalf("no prefetch work recorded: %+v", s)
	}
	if s.Batches+s.Dropped != 4 { // the nil request is skipped outright
		t.Fatalf("accounting: %+v", s)
	}
}

// TestPrefetcherDropsWhenFull pins the non-blocking budget contract:
// with no workers draining (simulated via a full queue), extra requests
// drop rather than block.
func TestPrefetcherDropsWhenFull(t *testing.T) {
	src := testSource(t, 13, 200, 3, 8, 4, false)
	st, err := Open(writeTemp(t, src))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	p := &Prefetcher{st: st, tasks: make(chan prefetchTask, 1)}
	p.Batch([]int32{1}) // fills the budget; no worker drains it
	p.Batch([]int32{2})
	p.Batch([]int32{3})
	s := p.Stats()
	if s.Batches != 1 || s.Dropped != 2 {
		t.Fatalf("want 1 accepted + 2 dropped, got %+v", s)
	}
}

package store

import (
	"sync"
	"sync/atomic"
	"time"

	"seastar/internal/obs"
)

// Prefetcher pulls store pages into the page cache ahead of the stages
// that will fault on them: the *next* pipeline batch's feature rows
// before its gather, and the next batch's seed in-rows (neighbour +
// edge-id extents) before its sample. Each request is advisory —
// madvise(WILLNEED) starts asynchronous readahead and a touch-read of
// one byte per page forces residency — and the in-flight budget is
// bounded: when the task queue is full the request is dropped and
// counted, never blocked on, so prefetch can only ever help the
// foreground stages, not stall them.
type Prefetcher struct {
	st    *Store
	tasks chan prefetchTask
	wg    sync.WaitGroup

	batches atomic.Int64
	rows    atomic.Int64
	pages   atomic.Int64
	bytes   atomic.Int64
	dropped atomic.Int64
}

type prefetchTask struct {
	verts []int32
	topo  bool // also walk CSR in-row extents (seed prefetch)
}

// PrefetchStats is a snapshot of prefetcher counters.
type PrefetchStats struct {
	Batches int64 // requests accepted
	Rows    int64 // vertex rows walked
	Pages   int64 // distinct pages touched (per request, adjacent-merged)
	Bytes   int64 // bytes spanned by touched pages
	Dropped int64 // requests dropped because the budget was full
}

// touchSink keeps the touch-read loads from being optimized away.
var touchSink atomic.Uint32

// NewPrefetcher starts workers goroutines servicing a budget-bounded
// queue of prefetch requests. workers and budget default to 1 and 4
// when non-positive. Close releases the workers.
func (s *Store) NewPrefetcher(workers, budget int) *Prefetcher {
	if workers <= 0 {
		workers = 1
	}
	if budget <= 0 {
		budget = 4
	}
	p := &Prefetcher{st: s, tasks: make(chan prefetchTask, budget)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// Batch requests the feature rows of the given base-graph vertex ids
// (a sampled batch's Vertices). Non-blocking: dropped if the budget is
// full. The slice is retained until serviced and must not be mutated —
// the pipeline's batch vertex lists are immutable once sampled.
func (p *Prefetcher) Batch(verts []int32) {
	p.enqueue(prefetchTask{verts: verts})
}

// Seeds requests the CSR in-row extents and feature rows of upcoming
// seed vertices, front-running the sample stage. Non-blocking.
func (p *Prefetcher) Seeds(seeds []int32) {
	p.enqueue(prefetchTask{verts: seeds, topo: true})
}

func (p *Prefetcher) enqueue(t prefetchTask) {
	if len(t.verts) == 0 || p.tasks == nil {
		return
	}
	select {
	case p.tasks <- t:
		p.batches.Add(1)
	default:
		p.dropped.Add(1)
	}
}

// Close drains and stops the workers. Outstanding requests finish.
func (p *Prefetcher) Close() {
	close(p.tasks)
	p.wg.Wait()
}

// Stats returns a snapshot of the counters.
func (p *Prefetcher) Stats() PrefetchStats {
	return PrefetchStats{
		Batches: p.batches.Load(),
		Rows:    p.rows.Load(),
		Pages:   p.pages.Load(),
		Bytes:   p.bytes.Load(),
		Dropped: p.dropped.Load(),
	}
}

func (p *Prefetcher) worker() {
	defer p.wg.Done()
	// Per-worker page bitmap over the feature section: a sampled batch
	// revisits the same feature pages many times over (at d=64, sixteen
	// rows share a page, and hub vertices recur across batches), so the
	// worker dedupes each request down to distinct pages and touches
	// merged runs — without this the prefetcher costs more than the
	// faults it hides on a warm cache.
	featPages := (int64(len(p.st.section(secFeatures))) + PageSize - 1) / PageSize
	set := make([]uint64, (featPages+63)/64)
	for t := range p.tasks {
		start := time.Now()
		pages := p.run(t, set)
		if obs.Enabled() {
			obs.Observe("store", "prefetch", time.Since(start))
			obs.Add("store", "prefetch", "pages", pages)
		}
	}
}

// run touches every distinct page the task's rows land on.
func (p *Prefetcher) run(t prefetchTask, set []uint64) int64 {
	p.rows.Add(int64(len(t.verts)))
	var pages int64
	d := int64(p.st.hdr.featDim) * 4
	if d > 0 {
		feat := p.st.section(secFeatures)
		nPages := int64(len(set)) * 64
		for _, v := range t.verts {
			off := int64(v) * d
			if v < 0 || off >= int64(len(feat)) {
				continue
			}
			for pg := off / PageSize; pg <= (off+d-1)/PageSize && pg < nPages; pg++ {
				set[pg>>6] |= 1 << uint(pg&63)
			}
		}
		pages += p.touchSet(feat, set)
	}
	if t.topo {
		offs := p.st.g.In.Offsets
		nbrs := p.st.section(secInNbrs)
		eids := p.st.section(secInEids)
		for _, v := range t.verts {
			if v < 0 || int(v) >= len(offs)-1 {
				continue
			}
			lo, hi := offs[v]*4, offs[v+1]*4
			pages += p.touch(nbrs, lo, hi-lo)
			pages += p.touch(eids, lo, hi-lo)
		}
	}
	p.pages.Add(pages)
	return pages
}

// touchSet touches the pages marked in set (clearing it as it goes),
// merging consecutive pages into single advise+touch runs.
func (p *Prefetcher) touchSet(sec []byte, set []uint64) int64 {
	var pages int64
	runStart, inRun := int64(0), false
	flush := func(end int64) {
		if !inRun {
			return
		}
		pages += p.touch(sec, runStart*PageSize, (end-runStart)*PageSize)
		inRun = false
	}
	for w, bitsW := range set {
		if bitsW == 0 {
			if inRun {
				flush(int64(w) * 64)
			}
			continue
		}
		set[w] = 0
		for b := 0; b < 64; b++ {
			pg := int64(w)*64 + int64(b)
			if bitsW&(1<<uint(b)) != 0 {
				if !inRun {
					runStart, inRun = pg, true
				}
			} else {
				flush(pg)
			}
		}
	}
	flush(int64(len(set)) * 64)
	return pages
}

// touch faults in the pages of sec[off:off+n), page-aligned. Returns
// the page count.
func (p *Prefetcher) touch(sec []byte, off, n int64) int64 {
	if n <= 0 || off < 0 || off >= int64(len(sec)) {
		return 0
	}
	lo := off &^ (PageSize - 1)
	hi := off + n
	if hi > int64(len(sec)) {
		hi = int64(len(sec))
	}
	b := sec[lo:hi]
	advise(b)
	var s uint32
	for i := 0; i < len(b); i += PageSize {
		s += uint32(b[i])
	}
	touchSink.Store(s)
	pages := (hi - lo + PageSize - 1) / PageSize
	p.bytes.Add(pages * PageSize)
	return pages
}

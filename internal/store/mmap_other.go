//go:build !linux

package store

import (
	"io"
	"os"
)

// mmapFile on non-linux platforms reads the whole file into the heap —
// functionally identical (the Store's accessors only need a byte
// slice), just without the out-of-core property. The backing buffer is
// allocated as []int64 so section views keep 8-byte alignment.
func mmapFile(f *os.File, size int64) ([]byte, bool, error) {
	buf := make([]int64, (size+7)/8)
	b := i64Bytes(buf)[:size]
	if _, err := io.ReadFull(f, b); err != nil {
		return nil, false, err
	}
	return b, false, nil
}

func unmapFile(data []byte, mapped bool) error { return nil }

// advise is a no-op without a real mapping.
func advise(b []byte) {}

// MajorFaults returns 0 on platforms without /proc/self/stat.
func MajorFaults() int64 { return 0 }

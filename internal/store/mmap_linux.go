//go:build linux

package store

import (
	"bufio"
	"os"
	"strconv"
	"syscall"
)

// mmapFile maps the file read-only. The kernel pages data in on demand;
// Open's section validation guarantees all accesses through the Store
// stay inside the mapping, so the only fault mode left is the file
// shrinking underneath a live mapping (an operator error the format
// doc calls out: store files are immutable once written).
func mmapFile(f *os.File, size int64) ([]byte, bool, error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

func unmapFile(data []byte, mapped bool) error {
	if !mapped {
		return nil
	}
	return syscall.Munmap(data)
}

// advise hints the kernel to read b ahead asynchronously. b must start
// on a page boundary (callers align down within the mapping). Errors
// are ignored: madvise is advisory and the touch-read that follows is
// the fallback.
func advise(b []byte) {
	if len(b) == 0 {
		return
	}
	_ = syscall.Madvise(b, syscall.MADV_WILLNEED)
}

// MajorFaults returns the process's cumulative major page-fault count
// (majflt from /proc/self/stat), used by the pipeline to attribute
// I/O stall time per stage. Returns 0 on platforms without /proc.
func MajorFaults() int64 {
	f, err := os.Open("/proc/self/stat")
	if err != nil {
		return 0
	}
	defer f.Close()
	r := bufio.NewReader(f)
	line, err := r.ReadString('\n')
	if err != nil && line == "" {
		return 0
	}
	// Fields after the parenthesized comm (which may itself contain
	// spaces): state ppid pgrp session tty tpgid flags minflt cminflt
	// majflt — majflt is the 10th token after ')'.
	i := -1
	for j := len(line) - 1; j >= 0; j-- {
		if line[j] == ')' {
			i = j
			break
		}
	}
	if i < 0 {
		return 0
	}
	rest := line[i+1:]
	field := 0
	start := -1
	for k := 0; k <= len(rest); k++ {
		if k < len(rest) && rest[k] != ' ' && rest[k] != '\n' {
			if start < 0 {
				start = k
			}
			continue
		}
		if start >= 0 {
			field++
			if field == 10 {
				v, _ := strconv.ParseInt(rest[start:k], 10, 64)
				return v
			}
			start = -1
		}
	}
	return 0
}

package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"seastar/internal/datasets"
	"seastar/internal/device"
	"seastar/internal/serve"
	"seastar/internal/tensor"
)

func snapFor(t *testing.T, name string, scale float64, seed int64) *serve.Snapshot {
	t.Helper()
	ds, err := datasets.Load(name, scale, seed)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := serve.NewSnapshot(ds.G, ds.Feat)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func gcnSpec(classes int) serve.ModelSpec {
	return serve.ModelSpec{Arch: "gcn", Hidden: 16, Classes: classes, Seed: 7}
}

// groundTruth computes the serial full-graph logits for spec on snap,
// bypassing the engine entirely.
func groundTruth(t *testing.T, spec serve.ModelSpec, snap *serve.Snapshot) *tensor.Tensor {
	t.Helper()
	m, err := serve.BuildModel(spec, snap.Feat.Cols(), snap.G.NumEdgeTypes)
	if err != nil {
		t.Fatal(err)
	}
	env := &serve.ForwardEnv{G: snap.G, Feat: snap.Feat, Dev: device.New(device.V100)}
	serve.NormsFor(spec.Arch, snap, snap.G, env)
	out, err := m.Forward(env)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func sameTensorBits(a, b *tensor.Tensor) bool {
	if a.Size() != b.Size() {
		return false
	}
	for i := 0; i < a.Size(); i++ {
		if math.Float32bits(a.At1(i)) != math.Float32bits(b.At1(i)) {
			return false
		}
	}
	return true
}

// TestPlanCacheSingleflight drives the cache directly: 64 goroutines race
// on one cold key and the build function must run exactly once, with
// every caller observing the same model.
func TestPlanCacheSingleflight(t *testing.T) {
	pc := serve.NewPlanCache()
	var builds atomic.Int64
	want := &serve.Model{}
	key := serve.PlanKey{Spec: "gcn/test", InDim: 8, NumRel: 1}

	var wg sync.WaitGroup
	got := make([]*serve.Model, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := pc.Get(key, func() (*serve.Model, error) {
				builds.Add(1)
				time.Sleep(20 * time.Millisecond) // widen the race window
				return want, nil
			})
			if err != nil {
				t.Error(err)
			}
			got[i] = m
		}(i)
	}
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("build ran %d times, want exactly 1", n)
	}
	for i, m := range got {
		if m != want {
			t.Fatalf("caller %d got a different model", i)
		}
	}
	_, _, compiles := pc.Stats()
	if compiles != 1 {
		t.Fatalf("compiles counter = %d, want 1", compiles)
	}

	// A distinct key builds independently; a failed build stays cached.
	bad := serve.PlanKey{Spec: "gcn/test", InDim: 16, NumRel: 1}
	wantErr := errors.New("boom")
	for i := 0; i < 2; i++ {
		_, err := pc.Get(bad, func() (*serve.Model, error) {
			builds.Add(1)
			return nil, wantErr
		})
		if !errors.Is(err, wantErr) {
			t.Fatalf("want cached build error, got %v", err)
		}
	}
	if n := builds.Load(); n != 2 {
		t.Fatalf("failed key rebuilt: %d total builds, want 2", n)
	}
}

// TestColdStartSingleCompile is the tentpole acceptance check: 64
// concurrent requests against a cold engine trigger exactly one
// compilation and all succeed with identical bytes.
func TestColdStartSingleCompile(t *testing.T) {
	snap := snapFor(t, "cora", 0.1, 1)
	eng, err := serve.New(serve.Config{Spec: gcnSpec(7), Workers: 8}, snap)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	nodes := []int32{0, 5, 17, 33}
	results := make([]*serve.Result, 64)
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := eng.Infer(context.Background(), nodes)
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	_, _, compiles := eng.Cache().Stats()
	if compiles != 1 {
		t.Fatalf("%d compilations for one (model, graph) key, want exactly 1", compiles)
	}
	for i := 1; i < 64; i++ {
		if !sameTensorBits(results[0].Logits, results[i].Logits) {
			t.Fatalf("request %d logits differ from request 0", i)
		}
	}
	want := tensor.GatherRows(groundTruth(t, gcnSpec(7), snap), nodes)
	if !sameTensorBits(results[0].Logits, want) {
		t.Fatal("concurrent result differs from serial ground truth")
	}
}

// TestConcurrentMatchesSerial issues a fixed request mix concurrently and
// serially against identically configured engines; every response must be
// byte-identical.
func TestConcurrentMatchesSerial(t *testing.T) {
	for _, mode := range []struct {
		name   string
		fanOut []int
	}{
		{"full-graph", nil},
		{"sampled", []int{4, 4}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			snap := snapFor(t, "cora", 0.1, 1)
			cfg := serve.Config{Spec: gcnSpec(7), Workers: 8, FanOut: mode.fanOut}
			rng := rand.New(rand.NewSource(99))
			reqs := make([][]int32, 32)
			for i := range reqs {
				n := 1 + rng.Intn(5)
				reqs[i] = make([]int32, n)
				for j := range reqs[i] {
					reqs[i][j] = int32(rng.Intn(snap.G.N))
				}
			}

			run := func(concurrent bool) []*tensor.Tensor {
				eng, err := serve.New(cfg, snap)
				if err != nil {
					t.Fatal(err)
				}
				defer eng.Close()
				out := make([]*tensor.Tensor, len(reqs))
				if concurrent {
					var wg sync.WaitGroup
					for i := range reqs {
						wg.Add(1)
						go func(i int) {
							defer wg.Done()
							res, err := eng.Infer(context.Background(), reqs[i])
							if err != nil {
								t.Error(err)
								return
							}
							out[i] = res.Logits
						}(i)
					}
					wg.Wait()
				} else {
					for i := range reqs {
						res, err := eng.Infer(context.Background(), reqs[i])
						if err != nil {
							t.Fatal(err)
						}
						out[i] = res.Logits
					}
				}
				return out
			}

			serial := run(false)
			conc := run(true)
			if t.Failed() {
				t.FailNow()
			}
			for i := range reqs {
				if !sameTensorBits(serial[i], conc[i]) {
					t.Fatalf("request %d: concurrent logits differ from serial", i)
				}
			}
		})
	}
}

// TestQueueFullBackpressure floods a deliberately tiny queue: overload
// must surface as ErrQueueFull, never as a hung or dropped request.
// At GOMAXPROCS=1 each sender's channel send hands off directly to the
// waiting batcher, which the scheduler then runs before the next sender
// — perfect lockstep, the queue is never observed full. Force real
// sender parallelism so backpressure can actually occur.
func TestQueueFullBackpressure(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 4 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	}
	snap := snapFor(t, "cora", 0.25, 1)
	eng, err := serve.New(serve.Config{
		Spec:        gcnSpec(7),
		QueueDepth:  1,
		MaxBatch:    2,
		BatchWindow: 100 * time.Millisecond,
		Workers:     1,
	}, snap)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	const total = 100
	var served, rejected atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := eng.Infer(context.Background(), []int32{0})
			switch {
			case err == nil:
				served.Add(1)
			case errors.Is(err, serve.ErrQueueFull):
				rejected.Add(1)
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	wg.Wait()
	if served.Load()+rejected.Load() != total {
		t.Fatalf("served %d + rejected %d != %d", served.Load(), rejected.Load(), total)
	}
	if rejected.Load() == 0 {
		t.Fatal("queue of depth 1 under 100 concurrent requests rejected nothing")
	}
	if served.Load() == 0 {
		t.Fatal("no request was served at all")
	}
	m := eng.Metrics()
	if m.RejectedQueueFull.Load() != rejected.Load() {
		t.Fatalf("metrics rejected=%d, observed %d", m.RejectedQueueFull.Load(), rejected.Load())
	}
}

// TestGracefulDrain closes the engine while requests are in flight: every
// admitted request must still be answered, later ones refused with
// ErrDraining, and no engine goroutine may outlive Close.
func TestGracefulDrain(t *testing.T) {
	before := runtime.NumGoroutine()

	snap := snapFor(t, "cora", 0.1, 1)
	eng, err := serve.New(serve.Config{Spec: gcnSpec(7), Workers: 4}, snap)
	if err != nil {
		t.Fatal(err)
	}

	const total = 24
	var answered, drained atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := eng.Infer(context.Background(), []int32{1, 2})
			switch {
			case err == nil:
				answered.Add(1)
			case errors.Is(err, serve.ErrDraining):
				drained.Add(1)
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	// Let some requests get admitted, then drain.
	for i := 0; i < 200 && eng.Metrics().Admitted.Load() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	eng.Close()
	wg.Wait()

	if answered.Load()+drained.Load() != total {
		t.Fatalf("answered %d + drained %d != %d (dropped responses)", answered.Load(), drained.Load(), total)
	}
	if got := eng.Metrics().Admitted.Load(); got != answered.Load() {
		t.Fatalf("%d admitted but %d answered", got, answered.Load())
	}
	if _, err := eng.Infer(context.Background(), []int32{0}); !errors.Is(err, serve.ErrDraining) {
		t.Fatalf("post-Close Infer: got %v, want ErrDraining", err)
	}
	eng.Close() // idempotent

	// The batcher and all workers must be gone.
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Fatalf("goroutines leaked: %d before, %d after Close", before, n)
	}
}

// TestSwapIsolation swaps snapshots while requests run; every response
// must byte-match one snapshot's ground truth — never a blend of two.
func TestSwapIsolation(t *testing.T) {
	snapA := snapFor(t, "cora", 0.1, 1)
	snapB := snapFor(t, "cora", 0.1, 2)
	if snapA.Fingerprint() == snapB.Fingerprint() {
		t.Fatal("test snapshots collide")
	}
	spec := gcnSpec(7)
	truthA := groundTruth(t, spec, snapA)
	truthB := groundTruth(t, spec, snapB)

	eng, err := serve.New(serve.Config{Spec: spec, Workers: 8}, snapA)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	n := snapA.G.N
	if snapB.G.N < n {
		n = snapB.G.N
	}
	nodes := []int32{0, 3, int32(n - 1)}
	wantA := tensor.GatherRows(truthA, nodes)
	wantB := tensor.GatherRows(truthB, nodes)

	stopSwap := make(chan struct{})
	var swapWG sync.WaitGroup
	swapWG.Add(1)
	go func() {
		defer swapWG.Done()
		snaps := []*serve.Snapshot{snapB, snapA}
		for i := 0; ; i++ {
			select {
			case <-stopSwap:
				return
			default:
			}
			if err := eng.SwapGraph(snaps[i%2]); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				res, err := eng.Infer(context.Background(), nodes)
				if err != nil {
					t.Error(err)
					return
				}
				if !sameTensorBits(res.Logits, wantA) && !sameTensorBits(res.Logits, wantB) {
					t.Error("response matches neither snapshot's ground truth (torn read across swap)")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stopSwap)
	swapWG.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Two fingerprints were served → at most two compilations.
	_, _, compiles := eng.Cache().Stats()
	if compiles < 1 || compiles > 2 {
		t.Fatalf("compiles = %d, want 1 or 2", compiles)
	}
}

// TestSampledDeterminism: the same request sampled twice must take the
// same subgraph and produce the same bytes, regardless of batching.
func TestSampledDeterminism(t *testing.T) {
	snap := snapFor(t, "cora", 0.1, 1)
	eng, err := serve.New(serve.Config{Spec: gcnSpec(7), FanOut: []int{3, 3}}, snap)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	nodes := []int32{4, 9, 25}
	first, err := eng.Infer(context.Background(), nodes)
	if err != nil {
		t.Fatal(err)
	}
	if first.Logits.Rows() != len(nodes) || first.Logits.Cols() != 7 {
		t.Fatalf("logits shape [%d,%d], want [%d,7]", first.Logits.Rows(), first.Logits.Cols(), len(nodes))
	}
	for i := 0; i < 5; i++ {
		again, err := eng.Infer(context.Background(), nodes)
		if err != nil {
			t.Fatal(err)
		}
		if !sameTensorBits(first.Logits, again.Logits) {
			t.Fatalf("repeat %d of the same request produced different bytes", i)
		}
	}
}

// TestAllArchitecturesServe smoke-tests every supported model end to end.
func TestAllArchitecturesServe(t *testing.T) {
	for _, tc := range []struct {
		arch    string
		dataset string
	}{
		{"gcn", "cora"},
		{"gat", "cora"},
		{"appnp", "cora"},
		{"rgcn", "aifb"},
	} {
		t.Run(tc.arch, func(t *testing.T) {
			snap := snapFor(t, tc.dataset, 0.05, 1)
			spec := serve.ModelSpec{Arch: tc.arch, Hidden: 8, Classes: 4, Alpha: 0.1, K: 3, Seed: 5}
			eng, err := serve.New(serve.Config{Spec: spec}, snap)
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Close()
			res, err := eng.Infer(context.Background(), []int32{0, 1, 2})
			if err != nil {
				t.Fatal(err)
			}
			if res.Logits.Rows() != 3 || res.Logits.Cols() != 4 {
				t.Fatalf("logits shape [%d,%d], want [3,4]", res.Logits.Rows(), res.Logits.Cols())
			}
			for i := 0; i < res.Logits.Size(); i++ {
				if v := float64(res.Logits.At1(i)); math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("non-finite logit %v at %d", v, i)
				}
			}
			if len(res.Classes) != 3 {
				t.Fatalf("%d argmax classes, want 3", len(res.Classes))
			}
		})
	}
}

// TestRejectsInvalidConfigs covers config validation paths.
func TestRejectsInvalidConfigs(t *testing.T) {
	snap := snapFor(t, "cora", 0.05, 1)
	if _, err := serve.New(serve.Config{
		Spec:   serve.ModelSpec{Arch: "rgcn", Hidden: 8, Classes: 4},
		FanOut: []int{4},
	}, snapFor(t, "aifb", 0.05, 1)); err == nil {
		t.Fatal("sampled rgcn must be rejected")
	}
	if _, err := serve.New(serve.Config{Spec: serve.ModelSpec{Arch: "rgcn", Hidden: 8, Classes: 4}}, snap); err == nil {
		t.Fatal("rgcn on a homogeneous snapshot must be rejected")
	}
	if _, err := serve.New(serve.Config{Spec: serve.ModelSpec{Arch: "tgn", Hidden: 8, Classes: 4}}, snap); err == nil {
		t.Fatal("unknown arch must be rejected")
	}
	eng, err := serve.New(serve.Config{Spec: gcnSpec(7)}, snap)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.Infer(context.Background(), []int32{int32(snap.G.N)}); err == nil {
		t.Fatal("out-of-range node must fail")
	}
	if _, err := eng.Infer(context.Background(), nil); err == nil {
		t.Fatal("empty node list must fail")
	}
}

// TestHTTPEndpoints exercises the full HTTP surface against a live
// in-process server.
func TestHTTPEndpoints(t *testing.T) {
	snap := snapFor(t, "cora", 0.1, 1)
	eng, err := serve.New(serve.Config{Spec: gcnSpec(7)}, snap)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	srv := httptest.NewServer(serve.Handler(eng))
	defer srv.Close()

	post := func(path, body string) (*http.Response, string) {
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		return resp, buf.String()
	}
	get := func(path string) (*http.Response, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		return resp, buf.String()
	}

	resp, body := post("/v1/infer", `{"nodes":[0,1,2]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("infer: %d %s", resp.StatusCode, body)
	}
	var ir struct {
		Nodes   []int32     `json:"nodes"`
		Logits  [][]float32 `json:"logits"`
		Classes []int       `json:"classes"`
	}
	if err := json.Unmarshal([]byte(body), &ir); err != nil {
		t.Fatal(err)
	}
	if len(ir.Logits) != 3 || len(ir.Logits[0]) != 7 || len(ir.Classes) != 3 {
		t.Fatalf("unexpected infer payload: %s", body)
	}

	if resp, body = post("/v1/infer", `{"nodes":`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: %d %s", resp.StatusCode, body)
	}
	if resp, body = post("/v1/infer", `{"nodes":[]}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty nodes: %d %s", resp.StatusCode, body)
	}
	if resp, _ = get("/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	_, metrics := get("/metrics")
	for _, want := range []string{
		"seastar_serve_plan_cache_compiles_total 1",
		"seastar_serve_requests_completed_total",
		"seastar_serve_infer_latency_seconds_bucket",
		"seastar_serve_queue_depth",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, metrics)
		}
	}

	resp, body = get("/debug/trace")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace: %d %s", resp.StatusCode, body)
	}
	if !strings.Contains(body, "traceEvents") {
		t.Fatalf("trace is not a Chrome trace: %s", body)
	}

	oldFP := fmt.Sprintf("%016x", eng.Snapshot().Fingerprint())
	resp, body = post("/v1/graph", `{"dataset":"cora","scale":0.1,"seed":2}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("graph swap: %d %s", resp.StatusCode, body)
	}
	var gr struct {
		Fingerprint string `json:"fingerprint"`
	}
	if err := json.Unmarshal([]byte(body), &gr); err != nil {
		t.Fatal(err)
	}
	if gr.Fingerprint == oldFP {
		t.Fatal("fingerprint unchanged after swap")
	}
	if resp, body = post("/v1/infer", `{"nodes":[0]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("infer after swap: %d %s", resp.StatusCode, body)
	}
	if resp, body = post("/v1/graph", `{"dataset":"nope"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown dataset: %d %s", resp.StatusCode, body)
	}

	eng.Close()
	if resp, _ = get("/healthz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d", resp.StatusCode)
	}
	if resp, _ = post("/v1/infer", `{"nodes":[0]}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("infer while draining: %d", resp.StatusCode)
	}
}

// TestSnapshotFingerprint pins fingerprint semantics: identical builds
// agree, structural or feature changes differ.
func TestSnapshotFingerprint(t *testing.T) {
	a1 := snapFor(t, "cora", 0.05, 1)
	a2 := snapFor(t, "cora", 0.05, 1)
	b := snapFor(t, "cora", 0.05, 2)
	if a1.Fingerprint() != a2.Fingerprint() {
		t.Fatal("identical datasets produced different fingerprints")
	}
	if a1.Fingerprint() == b.Fingerprint() {
		t.Fatal("different datasets produced equal fingerprints")
	}
	if _, err := serve.NewSnapshot(a1.G, tensor.New(3, 4)); err == nil {
		t.Fatal("feature/vertex mismatch must be rejected")
	}
}

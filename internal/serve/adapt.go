package serve

import (
	"fmt"
	"sync"
	"time"

	"seastar/internal/adapt"
	"seastar/internal/sched"
)

// adaptState is the engine's measured re-planning loop for the
// micro-batch size: a background replanner ticks at a fixed cadence,
// treats each window's completed requests as one trial of the candidate
// batch size that was live, and feeds mean per-request latency to the
// trial tuner. When the tuner settles, the winning plan is persisted so
// a warm restart skips exploration entirely. The hot path reads the
// current batch size through one atomic (Engine.maxBatch); plan swaps
// mid-flight only change how many queued requests the next dispatch
// groups, never the answer any request gets (full-graph batches share
// one forward keyed by the snapshot, and sampled requests seed by
// request content), so re-planning preserves the bitwise contract.
type adaptState struct {
	tuner *adapt.Tuner
	store *adapt.Store
	rep   *adapt.Replanner

	mu            sync.Mutex
	curIdx        int
	lastCompleted int64
	lastLatNs     int64
	persisted     bool
	warm          bool
	diag          error
}

// adaptKey identifies the learned plan slot for this engine
// configuration on this host.
func (e *Engine) adaptKey(snap *Snapshot) adapt.Key {
	return adapt.Key{
		Model:   e.cfg.Spec.Key(),
		GraphFP: snap.Fingerprint(),
		InDim:   snap.FeatDim(),
		Procs:   sched.MaxProcs,
		Host:    adapt.HostID(),
	}
}

// batchCandidates is the candidate set the serve tuner explores: the
// static batch size plus the neighbouring powers of two, bounded by the
// queue depth.
func batchCandidates(cfg Config) []adapt.Candidate {
	cands := []adapt.Candidate{{Name: "static"}}
	seen := map[int]bool{cfg.MaxBatch: true}
	for _, mb := range []int{1, cfg.MaxBatch / 2, cfg.MaxBatch * 2, cfg.MaxBatch * 4} {
		if mb < 1 || mb > cfg.QueueDepth || seen[mb] {
			continue
		}
		seen[mb] = true
		cands = append(cands, adapt.Candidate{
			Name:    fmt.Sprintf("max_batch=%d", mb),
			Tuning:  adapt.Tuning{MaxBatch: mb, Prefetch: -1},
			Knob:    "max_batch",
			Unit:    "serve/batcher",
			Static:  int64(cfg.MaxBatch),
			Learned: int64(mb),
		})
	}
	return cands
}

// startAdapt initializes the re-planning loop: load a persisted plan
// for a warm start, otherwise begin exploring. Called from New after
// the snapshot is stored.
func (e *Engine) startAdapt(snap *Snapshot) {
	key := e.adaptKey(snap)
	st := &adaptState{
		store:  adapt.NewStore(e.cfg.AdaptPlanPath),
		curIdx: -1,
	}
	st.tuner = adapt.NewTuner(key, e.cfg.AdaptConfig, batchCandidates(e.cfg))
	if p, ok, diag := st.store.Load(key); ok {
		st.tuner.Adopt(p)
		st.warm = true
		st.persisted = true
		e.applyBatchTuning(p.Tuning)
	} else {
		st.diag = diag // corrupt file: fall back to static + re-explore
	}
	e.adaptSt = st
	interval := e.cfg.AdaptInterval
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	st.rep = adapt.NewReplanner(interval, e.replanStep)
}

// applyBatchTuning publishes a candidate's batch size to the batcher
// (zero keeps the static size).
func (e *Engine) applyBatchTuning(tn adapt.Tuning) {
	mb := e.cfg.MaxBatch
	if tn.MaxBatch > 0 {
		mb = tn.MaxBatch
	}
	e.maxBatch.Store(int64(mb))
}

// replanStep is one replanner tick: close the measurement window of the
// candidate that was live, report it, and install the next candidate
// (or the settled plan).
func (e *Engine) replanStep() {
	st := e.adaptSt
	st.mu.Lock()
	defer st.mu.Unlock()

	// Trial on end-to-end latency (admission → response), not
	// InferLatency: under load the batch size mostly moves queue wait —
	// bigger batches amortize the shared forward, draining the queue
	// faster — and a pickup-to-response metric is blind to exactly that.
	completed, latNs := e.met.TotalLatency.Totals()
	dC := completed - st.lastCompleted
	dNs := latNs - st.lastLatNs
	if dC > 0 {
		if st.curIdx >= 0 {
			st.tuner.Report(st.curIdx, dNs/dC)
		}
		st.lastCompleted, st.lastLatNs = completed, latNs
	}
	// Windows with no completed requests report nothing: an idle server
	// must not convict (or crown) the live candidate on zero evidence.

	idx, tuning, done := st.tuner.Next()
	st.curIdx = idx
	e.applyBatchTuning(tuning)
	if done && !st.persisted {
		if p, ok := st.tuner.Plan(); ok {
			if err := st.store.Save(p); err != nil {
				st.diag = err
			}
			st.persisted = true
		}
	}
}

// stopAdapt shuts the replanner down (blocking until its goroutine has
// exited) and persists a settled plan that has not been saved yet.
func (e *Engine) stopAdapt() {
	st := e.adaptSt
	if st == nil {
		return
	}
	st.rep.Close()
	st.mu.Lock()
	defer st.mu.Unlock()
	if !st.persisted {
		if p, ok := st.tuner.Plan(); ok {
			if err := st.store.Save(p); err != nil {
				st.diag = err
			}
			st.persisted = true
		}
	}
}

// AdaptPlan returns the settled learned plan, if the adaptive loop is
// on and has converged.
func (e *Engine) AdaptPlan() (adapt.Plan, bool) {
	if e.adaptSt == nil {
		return adapt.Plan{}, false
	}
	return e.adaptSt.tuner.Plan()
}

// AdaptWarm reports whether the engine adopted a persisted plan at
// startup (no exploration ran).
func (e *Engine) AdaptWarm() bool {
	return e.adaptSt != nil && e.adaptSt.warm
}

// AdaptDiag returns the most recent persistence diagnostic (a corrupt
// plan file, a failed save), or nil. A diagnostic never stops serving —
// the engine just falls back to the static plan.
func (e *Engine) AdaptDiag() error {
	if e.adaptSt == nil {
		return nil
	}
	e.adaptSt.mu.Lock()
	defer e.adaptSt.mu.Unlock()
	return e.adaptSt.diag
}

// MaxBatch returns the batch size the next dispatch will use.
func (e *Engine) MaxBatch() int { return int(e.maxBatch.Load()) }

package serve

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"seastar/internal/datasets"
	"seastar/internal/device"
	"seastar/internal/exec"
	"seastar/internal/gir"
	"seastar/internal/graph"
	"seastar/internal/tensor"
)

// ModelSpec is the canonical serving configuration of one GNN. Equal
// specs always denote the same function: weights are drawn
// deterministically from Seed, so every replica (and every plan-cache
// rebuild) computes bit-identical outputs.
type ModelSpec struct {
	Arch    string // "gcn", "gat", "appnp" or "rgcn"
	Hidden  int
	Classes int
	Alpha   float32 // APPNP teleport probability
	K       int     // APPNP propagation steps
	Seed    int64   // weight-initialization seed
}

// Validate checks the spec and fills APPNP defaults.
func (s *ModelSpec) Validate() error {
	s.Arch = strings.ToLower(s.Arch)
	switch s.Arch {
	case "gcn", "gat", "appnp", "rgcn":
	default:
		return fmt.Errorf("serve: unknown arch %q (want gcn|gat|appnp|rgcn)", s.Arch)
	}
	if s.Hidden < 1 || s.Classes < 1 {
		return fmt.Errorf("serve: hidden=%d classes=%d must be ≥ 1", s.Hidden, s.Classes)
	}
	if s.Arch == "appnp" {
		if s.Alpha <= 0 || s.Alpha >= 1 {
			s.Alpha = 0.1
		}
		if s.K < 1 {
			s.K = 10
		}
	}
	return nil
}

// Key is the canonical string form used in the plan-cache key.
func (s ModelSpec) Key() string {
	return fmt.Sprintf("%s/h%d/c%d/a%g/k%d/s%d", s.Arch, s.Hidden, s.Classes, s.Alpha, s.K, s.Seed)
}

// Model is one compiled, weight-bound serving plan: everything needed to
// run a forward pass except the graph. It is immutable after build and
// shared freely across concurrent batches (compiled kernels serialize on
// their own internal lock).
type Model struct {
	Spec   ModelSpec
	InDim  int
	NumRel int // edge-type count the plans were compiled for (1 if untyped)

	weights map[string]*tensor.Tensor
	plans   []*exec.CompiledUDF
}

// planKey is the structural cache key for this model: plans and weights
// depend only on (spec, input width, relation count), never on the graph
// instance, so snapshots and delta generations share one compiled model.
func (m *Model) planKey() PlanKey {
	return PlanKey{Spec: m.Spec.Key(), InDim: m.InDim, NumRel: m.NumRel}
}

// SupportsIncremental reports whether the arch's forward factors into
// row-independent dense transforms plus pure edge aggregations — the
// shape the delta path can patch bitwise. GCN and GAT qualify; APPNP's
// K-step propagation spreads any change across the whole graph, and
// R-GCN graphs reject deltas outright (edge types).
func (m *Model) SupportsIncremental() bool {
	return m.Spec.Arch == "gcn" || m.Spec.Arch == "gat"
}

// ForwardEnv carries the per-call graph context for Model.Forward. The
// norm fields are arch-dependent; NormsFor fills exactly the ones the
// arch reads.
type ForwardEnv struct {
	G    *graph.Graph
	Feat *tensor.Tensor
	Dev  *device.Device
	Pool *tensor.Pool

	Norm           *tensor.Tensor // gcn: 1/in-degree
	SymSrc, SymDst *tensor.Tensor // appnp: symmetric pair
	EdgeNorm       *tensor.Tensor // rgcn: per-edge 1/c_{v,r}
}

// NormsFor fills the normalizers arch needs, from the snapshot's lazy
// caches when g is the snapshot graph, or computed fresh otherwise
// (sampled subgraphs).
func NormsFor(arch string, snap *Snapshot, g *graph.Graph, env *ForwardEnv) {
	cached := snap != nil && g == snap.Graph()
	switch arch {
	case "gcn":
		if cached {
			env.Norm = snap.Norm()
		} else {
			env.Norm = datasets.GCNNorm(g)
		}
	case "appnp":
		if cached {
			env.SymSrc, env.SymDst = snap.SymNorms()
		} else {
			env.SymSrc, env.SymDst = symNorms(g)
		}
	case "rgcn":
		if cached {
			env.EdgeNorm = snap.EdgeNorm()
		} else {
			env.EdgeNorm = datasets.RGCNEdgeNorm(g)
		}
	}
}

// BuildModel compiles the serving plans for spec against an input width
// and relation count, and draws the weights. This is the expensive path
// the plan cache deduplicates.
func BuildModel(spec ModelSpec, inDim, numRelations int) (*Model, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if inDim < 1 {
		return nil, fmt.Errorf("serve: input dim %d must be ≥ 1", inDim)
	}
	m := &Model{Spec: spec, InDim: inDim, NumRel: 1, weights: map[string]*tensor.Tensor{}}
	if spec.Arch == "rgcn" {
		m.NumRel = numRelations
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	xavier := func(name string, in, out int) {
		m.weights[name] = tensor.XavierUniform(rng, in, out)
	}
	zeros := func(name string, shape ...int) {
		m.weights[name] = tensor.New(shape...)
	}
	compile := func(build func() (*gir.DAG, error)) error {
		dag, err := build()
		if err != nil {
			return err
		}
		c, err := exec.CompileInference(dag)
		if err != nil {
			return err
		}
		m.plans = append(m.plans, c)
		return nil
	}

	h, c := spec.Hidden, spec.Classes
	switch spec.Arch {
	case "gcn":
		xavier("W1", inDim, h)
		zeros("b1", h)
		xavier("W2", h, c)
		zeros("b2", c)
		if err := compile(func() (*gir.DAG, error) { return traceGCNAgg(h) }); err != nil {
			return nil, err
		}
		if err := compile(func() (*gir.DAG, error) { return traceGCNAgg(c) }); err != nil {
			return nil, err
		}
	case "gat":
		xavier("W1", inDim, h)
		xavier("aU1", h, 1)
		xavier("aV1", h, 1)
		xavier("W2", h, c)
		xavier("aU2", c, 1)
		xavier("aV2", c, 1)
		if err := compile(func() (*gir.DAG, error) { return traceGAT(h) }); err != nil {
			return nil, err
		}
		if err := compile(func() (*gir.DAG, error) { return traceGAT(c) }); err != nil {
			return nil, err
		}
	case "appnp":
		xavier("W1", inDim, h)
		xavier("W2", h, c)
		if err := compile(func() (*gir.DAG, error) { return traceAPPNP(c, spec.Alpha) }); err != nil {
			return nil, err
		}
	case "rgcn":
		if numRelations < 1 {
			return nil, fmt.Errorf("serve: rgcn needs ≥ 1 relation, got %d", numRelations)
		}
		relUniform := func(name string, in, out int) {
			l := math.Sqrt(6 / float64(in+out))
			m.weights[name] = tensor.Uniform(rng, -l, l, numRelations, in, out)
		}
		relUniform("Ws1", inDim, h)
		xavier("Wself1", inDim, h)
		relUniform("Ws2", h, c)
		xavier("Wself2", h, c)
		if err := compile(func() (*gir.DAG, error) { return traceRGCN(numRelations, inDim, h) }); err != nil {
			return nil, err
		}
		if err := compile(func() (*gir.DAG, error) { return traceRGCN(numRelations, h, c) }); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// The traced vertex programs mirror internal/models exactly, so serving
// computes the same function as training-time inference.

// traceGCNAgg is the aggregation half of a GCN layer: the dense h·W is
// hoisted out of the vertex program (forwardGCN computes it with the
// blocked GEMM), leaving a pure gather-scale-accumulate edge stage. The
// hoisted split is bitwise-identical to tracing the matmul inside the
// plan — the compiler lowers Nbr(h).MatMul(W) to the same per-row
// transform — and it is what makes incremental recompute possible: the
// edge stage can run on an induced subgraph of dirty rows while unchanged
// rows keep their cached dense products.
func traceGCNAgg(out int) (*gir.DAG, error) {
	b := gir.NewBuilder()
	b.VFeature("hw", out)
	b.VFeature("norm", 1)
	return b.Build(func(v *gir.Vertex) *gir.Value {
		return v.Nbr("hw").Mul(v.Nbr("norm")).AggSum()
	})
}

func traceGAT(dim int) (*gir.DAG, error) {
	b := gir.NewBuilder()
	b.VFeature("eu", 1)
	b.VFeature("ev", 1)
	b.VFeature("h", dim)
	return b.Build(func(v *gir.Vertex) *gir.Value {
		e := v.Nbr("eu").Add(v.Self("ev")).LeakyReLU(0.2).Exp()
		a := e.Div(e.AggSum())
		return a.Mul(v.Nbr("h")).AggSum()
	})
}

func traceAPPNP(dim int, alpha float32) (*gir.DAG, error) {
	b := gir.NewBuilder()
	b.VFeature("h", dim)
	b.VFeature("h0", dim)
	b.VFeature("sn", 1)
	b.VFeature("dn", 1)
	return b.Build(func(v *gir.Vertex) *gir.Value {
		agg := v.Nbr("h").Mul(v.Nbr("sn")).AggSum()
		return agg.Mul(v.Self("dn")).MulScalar(1 - alpha).
			Add(v.Self("h0").MulScalar(alpha))
	})
}

func traceRGCN(r, in, out int) (*gir.DAG, error) {
	b := gir.NewBuilder()
	b.VFeature("h", in)
	b.EFeature("norm", 1)
	Ws := b.Param("W", r, in, out)
	return b.Build(func(v *gir.Vertex) *gir.Value {
		return v.Nbr("h").MatMulTyped(Ws).Mul(v.Edge("norm")).AggHier(gir.AggSum, gir.AggSum)
	})
}

// Forward runs the full inference pass over env.G, returning [N, classes]
// logits. It allocates per call (device and pool come from env), so any
// number of Forwards can run concurrently on the same Model.
func (m *Model) Forward(env *ForwardEnv) (*tensor.Tensor, error) {
	st, err := m.forwardState(env)
	if err != nil {
		return nil, err
	}
	return st.logits, nil
}

// forwardState runs the forward pass and keeps the per-layer dense
// products (aux) alive for the incremental delta patcher. For archs
// without incremental support aux is nil and the state is just logits.
func (m *Model) forwardState(env *ForwardEnv) (*embedState, error) {
	switch m.Spec.Arch {
	case "gcn":
		return m.forwardGCN(env)
	case "gat":
		return m.forwardGAT(env)
	case "appnp":
		return m.forwardAPPNP(env)
	case "rgcn":
		return m.forwardRGCN(env)
	}
	return nil, fmt.Errorf("serve: unknown arch %q", m.Spec.Arch)
}

func (m *Model) inferEnv(env *ForwardEnv) *exec.InferEnv {
	return &exec.InferEnv{G: env.G, Dev: env.Dev, Pool: env.Pool}
}

// mm is a dense matmul charged to the batch device with the same cost
// model the training runtime uses, so /debug/trace shows dense work too.
func mm(dev *device.Device, a, b *tensor.Tensor) *tensor.Tensor {
	out := tensor.MatMul(a, b)
	exec.ChargeDense(dev, "dense.matmul",
		float64(a.Rows())*float64(b.Rows())*float64(b.Cols()),
		int64(a.Size()+b.Size())*4, int64(out.Size())*4)
	return out
}

// forwardGCN runs the hoisted two-layer GCN: per layer, a full-size dense
// h·W (blocked GEMM), the aggregation-only plan, bias and activation. The
// hw products and post-activation hidden state land in aux so the delta
// patcher can reuse unchanged rows.
func (m *Model) forwardGCN(env *ForwardEnv) (*embedState, error) {
	ie := m.inferEnv(env)
	st := &embedState{aux: map[string]*tensor.Tensor{}}
	h := env.Feat
	for l := 0; l < 2; l++ {
		sfx := fmt.Sprintf("%d", l+1)
		hw := mm(env.Dev, h, m.weights["W"+sfx])
		st.aux["hw"+sfx] = hw
		out, err := m.plans[l].Infer(ie,
			map[string]*tensor.Tensor{"hw": hw, "norm": env.Norm}, nil, nil)
		if err != nil {
			return nil, err
		}
		h = tensor.AddRow(out, m.weights["b"+sfx])
		if l == 0 {
			h = tensor.Sigmoid(h)
			st.aux["h1"] = h
		}
	}
	st.logits = h
	return st, nil
}

func (m *Model) forwardGAT(env *ForwardEnv) (*embedState, error) {
	ie := m.inferEnv(env)
	st := &embedState{aux: map[string]*tensor.Tensor{}}
	h := env.Feat
	for l := 0; l < 2; l++ {
		sfx := fmt.Sprintf("%d", l+1)
		hw := mm(env.Dev, h, m.weights["W"+sfx])
		eu := mm(env.Dev, hw, m.weights["aU"+sfx])
		ev := mm(env.Dev, hw, m.weights["aV"+sfx])
		st.aux["hw"+sfx] = hw
		st.aux["eu"+sfx] = eu
		st.aux["ev"+sfx] = ev
		out, err := m.plans[l].Infer(ie,
			map[string]*tensor.Tensor{"eu": eu, "ev": ev, "h": hw}, nil, nil)
		if err != nil {
			return nil, err
		}
		h = out
		if l == 0 {
			h = tensor.ReLU(h)
			st.aux["h1"] = h
		}
	}
	st.logits = h
	return st, nil
}

func (m *Model) forwardAPPNP(env *ForwardEnv) (*embedState, error) {
	ie := m.inferEnv(env)
	h0 := mm(env.Dev, tensor.ReLU(mm(env.Dev, env.Feat, m.weights["W1"])), m.weights["W2"])
	h := h0
	for k := 0; k < m.Spec.K; k++ {
		out, err := m.plans[0].Infer(ie,
			map[string]*tensor.Tensor{"h": h, "h0": h0, "sn": env.SymSrc, "dn": env.SymDst},
			nil, nil)
		if err != nil {
			return nil, err
		}
		h = out
	}
	return &embedState{logits: h}, nil
}

func (m *Model) forwardRGCN(env *ForwardEnv) (*embedState, error) {
	if env.G.EdgeTypes == nil {
		return nil, fmt.Errorf("serve: rgcn requires a heterogeneous graph")
	}
	ie := m.inferEnv(env)
	h := env.Feat
	for l := 0; l < 2; l++ {
		sfx := fmt.Sprintf("%d", l+1)
		self := mm(env.Dev, h, m.weights["Wself"+sfx])
		agg, err := m.plans[l].Infer(ie,
			map[string]*tensor.Tensor{"h": h},
			map[string]*tensor.Tensor{"norm": env.EdgeNorm},
			map[string]*tensor.Tensor{"W": m.weights["Ws"+sfx]})
		if err != nil {
			return nil, err
		}
		h = tensor.Add(self, agg)
		if l == 0 {
			h = tensor.ReLU(h)
		}
	}
	return &embedState{logits: h}, nil
}

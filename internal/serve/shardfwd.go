package serve

import (
	"fmt"

	"seastar/internal/device"
	"seastar/internal/exec"
	"seastar/internal/part"
	"seastar/internal/tensor"
)

// Shard-local execution: the same compiled plans the single-process
// engine runs, driven layer by layer over one vertex-cut fragment with a
// mirror exchange between layers. Bitwise equality with the full-graph
// forward rests on three invariants:
//
//  1. Whole rows. A fragment holds the complete in-edge list of every
//     owned vertex in full-graph neighbour order (part.Build), so each
//     per-vertex fold consumes the same values in the same order — a
//     floating-point fold is order-sensitive, which is exactly why the
//     vertex-cut never splits a row across shards.
//  2. Dense transforms via MatMulRowsLike with fullRows = N: every
//     local row's product is bitwise the corresponding row of the full
//     [N,d]·W GEMM, because the only row-count-dependent choice is the
//     naive-vs-blocked dispatch, replayed from N.
//  3. Normalizers from fragment-carried global degrees, computed with
//     the same arithmetic the snapshot paths use (gcnNormFromDegrees /
//     symNormFromDegrees), so every scalar matches.
//
// Mirror rows' own outputs are garbage (their in-rows live elsewhere)
// and are overwritten by their masters' exports before the next layer
// reads them; they are never exported or served.

// ShardEnv binds a fragment to its local tensors for shard execution.
type ShardEnv struct {
	Frag *part.Fragment
	// Feat holds the feature rows of all locals ([numLocals, inDim],
	// gathered by Frag.Locals).
	Feat *tensor.Tensor
	// FullRows is the full graph's N, replayed into every dense dispatch.
	FullRows int
	Dev      *device.Device
	Pool     *tensor.Pool
}

// NewShardEnv gathers the fragment's local rows from the full feature
// matrix and degree-sorts the local graph (the same preprocessing
// NewSnapshot applies; row order never changes per-row results).
func NewShardEnv(f *part.Fragment, feat *tensor.Tensor, dev *device.Device, pool *tensor.Pool) *ShardEnv {
	if !f.G.In.Sorted {
		f.G = f.G.SortByDegree()
	}
	return &ShardEnv{
		Frag:     f,
		Feat:     tensor.GatherRows(feat, f.Locals),
		FullRows: feat.Rows(),
		Dev:      dev,
		Pool:     pool,
	}
}

// ShardRounds returns how many exchange-separated plan rounds the arch
// takes (the coordinator drives one /v1/shard/step per round), or an
// error for archs sharded serving rejects.
func (m *Model) ShardRounds() (int, error) { return ShardRoundsForSpec(m.Spec) }

// ShardRoundsForSpec is ShardRounds without a built model — what the
// coordinator (which never compiles plans) plans its exchange from.
func ShardRoundsForSpec(spec ModelSpec) (int, error) {
	switch spec.Arch {
	case "gcn", "gat":
		return 2, nil
	case "appnp":
		k := spec.K
		if k < 1 {
			k = 10
		}
		return k, nil
	}
	return 0, fmt.Errorf("serve: sharded serving does not support %s (typed edge rows cannot split from their relation tables)", spec.Arch)
}

// ShardForward steps one fragment through a model, one aggregation round
// at a time. Between StepShard calls the caller must overwrite the
// mirror rows of H() with their masters' exported rows — the GAS
// scatter. After the final round, Logits() holds valid owned rows.
type ShardForward struct {
	m     *Model
	env   *ShardEnv
	ie    *exec.InferEnv
	round int // rounds completed

	h  *tensor.Tensor // current activations, one row per local
	h0 *tensor.Tensor // APPNP teleport anchor

	norm, sn, dn *tensor.Tensor
}

// NewShardForward prepares a stepped forward over env. For APPNP the
// input projection h0 = W2·ReLU(W1·feat) runs here for every local row —
// it is row-dense, so mirrors' h0 are locally exact and round 1 needs no
// exchange.
func NewShardForward(m *Model, env *ShardEnv) (*ShardForward, error) {
	if _, err := m.ShardRounds(); err != nil {
		return nil, err
	}
	sf := &ShardForward{
		m:   m,
		env: env,
		ie:  &exec.InferEnv{G: env.Frag.G, Dev: env.Dev, Pool: env.Pool},
	}
	switch m.Spec.Arch {
	case "gcn":
		sf.norm = gcnNormFromDegrees(env.Frag.GlobalInDeg)
		sf.h = env.Feat
	case "gat":
		sf.h = env.Feat
	case "appnp":
		sf.sn = symNormFromDegrees(env.Frag.GlobalOutDeg)
		sf.dn = symNormFromDegrees(env.Frag.GlobalInDeg)
		h1 := tensor.ReLU(sf.mmLike(env.Feat, m.weights["W1"]))
		sf.h0 = sf.mmLike(h1, m.weights["W2"])
		sf.h = sf.h0
	}
	return sf, nil
}

// mmLike is the shard-side counterpart of model.go's mm: a row-subset
// dense product dispatched as if it were the full [N,k] multiply, with
// the same device cost accounting.
func (sf *ShardForward) mmLike(a, b *tensor.Tensor) *tensor.Tensor {
	out := tensor.MatMulRowsLike(a, b, sf.env.FullRows)
	exec.ChargeDense(sf.env.Dev, "dense.matmul",
		float64(a.Rows())*float64(b.Rows())*float64(b.Cols()),
		int64(a.Size()+b.Size())*4, int64(out.Size())*4)
	return out
}

// H returns the current activation tensor, one row per local. The caller
// reads exported owned rows from it and scatters imported mirror rows
// into it between rounds.
func (sf *ShardForward) H() *tensor.Tensor { return sf.h }

// Round returns how many rounds have completed.
func (sf *ShardForward) Round() int { return sf.round }

// Done reports whether the final round has run.
func (sf *ShardForward) Done() bool {
	r, _ := sf.m.ShardRounds()
	return sf.round >= r
}

// Logits returns the final activations; only owned rows are valid.
func (sf *ShardForward) Logits() (*tensor.Tensor, error) {
	if !sf.Done() {
		return nil, fmt.Errorf("serve: shard forward at round %d of %d", sf.round, mustRounds(sf.m))
	}
	return sf.h, nil
}

func mustRounds(m *Model) int {
	r, _ := m.ShardRounds()
	return r
}

// StepShard runs one aggregation round over the fragment. Mirror rows of
// H() must hold their masters' values from the previous round before the
// call (for round 1 they hold features / locally-computed h0, which are
// exact by construction).
func (sf *ShardForward) StepShard() error {
	if sf.Done() {
		return fmt.Errorf("serve: shard forward already finished %d rounds", sf.round)
	}
	l := sf.round
	switch sf.m.Spec.Arch {
	case "gcn":
		sfx := fmt.Sprintf("%d", l+1)
		hw := sf.mmLike(sf.h, sf.m.weights["W"+sfx])
		out, err := sf.m.plans[l].Infer(sf.ie,
			map[string]*tensor.Tensor{"hw": hw, "norm": sf.norm}, nil, nil)
		if err != nil {
			return err
		}
		h := tensor.AddRow(out, sf.m.weights["b"+sfx])
		if l == 0 {
			h = tensor.Sigmoid(h)
		}
		sf.h = h
	case "gat":
		sfx := fmt.Sprintf("%d", l+1)
		hw := sf.mmLike(sf.h, sf.m.weights["W"+sfx])
		eu := sf.mmLike(hw, sf.m.weights["aU"+sfx])
		ev := sf.mmLike(hw, sf.m.weights["aV"+sfx])
		out, err := sf.m.plans[l].Infer(sf.ie,
			map[string]*tensor.Tensor{"eu": eu, "ev": ev, "h": hw}, nil, nil)
		if err != nil {
			return err
		}
		if l == 0 {
			out = tensor.ReLU(out)
		}
		sf.h = out
	case "appnp":
		out, err := sf.m.plans[0].Infer(sf.ie,
			map[string]*tensor.Tensor{"h": sf.h, "h0": sf.h0, "sn": sf.sn, "dn": sf.dn},
			nil, nil)
		if err != nil {
			return err
		}
		sf.h = out
	default:
		return fmt.Errorf("serve: sharded serving does not support %s", sf.m.Spec.Arch)
	}
	sf.round++
	return nil
}

// ExportRows copies the listed rows of H() into a flat float32 block
// (len(rows) × width), the per-peer payload of one exchange round.
func (sf *ShardForward) ExportRows(rows []int32) []float32 {
	w := sf.h.Cols()
	out := make([]float32, len(rows)*w)
	for i, r := range rows {
		copy(out[i*w:(i+1)*w], sf.h.Row(int(r)))
	}
	return out
}

// ImportRows scatters a flat block from a peer's ExportRows into the
// listed mirror rows of H().
func (sf *ShardForward) ImportRows(rows []int32, block []float32) error {
	w := sf.h.Cols()
	if len(block) != len(rows)*w {
		return fmt.Errorf("serve: import block %d floats for %d rows × width %d", len(block), len(rows), w)
	}
	for i, r := range rows {
		copy(sf.h.Row(int(r)), block[i*w:(i+1)*w])
	}
	return nil
}

package serve_test

import (
	"encoding/json"
	"errors"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"seastar/internal/device"
	"seastar/internal/graph"
	"seastar/internal/serve"
	"seastar/internal/tensor"
)

// deltaMirror is the brute-force model of a delta chain: a plain edge
// list plus dense feature rows, rebuilt from scratch after every step.
// It replicates graph.Delta semantics (removals first, vertex removal
// isolates, survivors keep their order, adds append in delta order).
type deltaMirror struct {
	n     int
	d     int
	edges []graph.Edge
	feat  [][]float32
}

func newDeltaMirror(rng *rand.Rand, n, d, m int) *deltaMirror {
	mir := &deltaMirror{n: n, d: d}
	for i := 0; i < m; i++ {
		mir.edges = append(mir.edges, graph.Edge{
			Src: int32(rng.Intn(n)), Dst: int32(rng.Intn(n)),
		})
	}
	for v := 0; v < n; v++ {
		row := make([]float32, d)
		for j := range row {
			row[j] = rng.Float32()*2 - 1
		}
		mir.feat = append(mir.feat, row)
	}
	return mir
}

func (m *deltaMirror) apply(d *serve.Delta) {
	removedV := map[int32]bool{}
	for _, v := range d.RemoveVertices {
		removedV[v] = true
	}
	removedE := map[graph.Edge]bool{}
	for _, e := range d.RemoveEdges {
		removedE[e] = true
	}
	kept := m.edges[:0:len(m.edges)]
	for _, e := range m.edges {
		if removedV[e.Src] || removedV[e.Dst] || removedE[e] {
			continue
		}
		kept = append(kept, e)
	}
	m.edges = append(kept, d.AddEdges...)
	m.n += d.AddVertices
	for len(m.feat) < m.n {
		m.feat = append(m.feat, make([]float32, m.d))
	}
	for _, u := range d.Features {
		copy(m.feat[u.Node], u.Row)
	}
}

func (m *deltaMirror) graph(t testing.TB) *graph.Graph {
	t.Helper()
	srcs := make([]int32, len(m.edges))
	dsts := make([]int32, len(m.edges))
	for i, e := range m.edges {
		srcs[i], dsts[i] = e.Src, e.Dst
	}
	g, err := graph.FromEdges(m.n, srcs, dsts)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func (m *deltaMirror) featTensor() *tensor.Tensor {
	t := tensor.New(m.n, m.d)
	for v, row := range m.feat {
		copy(t.Row(v), row)
	}
	return t
}

// scratchLogits rebuilds the mirror state from scratch and runs the full
// serial forward — the reference every delta child must match bitwise.
func (m *deltaMirror) scratchLogits(t testing.TB, model *serve.Model) *tensor.Tensor {
	t.Helper()
	snap, err := serve.NewSnapshot(m.graph(t), m.featTensor())
	if err != nil {
		t.Fatal(err)
	}
	env := &serve.ForwardEnv{Dev: device.New(device.V100)}
	logits, err := snap.EnsureEmbeddings(model, env)
	if err != nil {
		t.Fatal(err)
	}
	return logits
}

// randomDelta draws a valid delta against the mirror's current state:
// removals only of live edges not incident to removed vertices, adds and
// feature updates in range.
func randomDelta(rng *rand.Rand, m *deltaMirror, gen uint64) *serve.Delta {
	d := &serve.Delta{ParentGen: gen}
	removedV := map[int32]bool{}
	if m.n > 8 && rng.Intn(3) == 0 {
		v := int32(rng.Intn(m.n))
		d.RemoveVertices = []int32{v}
		removedV[v] = true
	}
	if len(m.edges) > 4 {
		seen := map[graph.Edge]bool{}
		for k := rng.Intn(3); k > 0 && len(m.edges) > 0; k-- {
			e := m.edges[rng.Intn(len(m.edges))]
			if seen[e] || removedV[e.Src] || removedV[e.Dst] {
				continue
			}
			seen[e] = true
			d.RemoveEdges = append(d.RemoveEdges, e)
		}
	}
	d.AddVertices = rng.Intn(3)
	newN := m.n + d.AddVertices
	for k := 1 + rng.Intn(4); k > 0; k-- {
		d.AddEdges = append(d.AddEdges, graph.Edge{
			Src: int32(rng.Intn(newN)), Dst: int32(rng.Intn(newN)),
		})
	}
	for k := rng.Intn(3); k > 0; k-- {
		row := make([]float32, m.d)
		for j := range row {
			row[j] = rng.Float32()*2 - 1
		}
		d.Features = append(d.Features, serve.FeatureUpdate{
			Node: int32(rng.Intn(newN)), Row: row,
		})
	}
	return d
}

func requireGraphEqual(t *testing.T, got, want *graph.Graph) {
	t.Helper()
	if got.N != want.N || got.M != want.M {
		t.Fatalf("graph shape (%d,%d) != scratch (%d,%d)", got.N, got.M, want.N, want.M)
	}
	eq32 := func(name string, a, b []int32) {
		if len(a) != len(b) {
			t.Fatalf("%s length %d != %d", name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s[%d] = %d, scratch has %d", name, i, a[i], b[i])
			}
		}
	}
	eq32("srcs", got.Srcs, want.Srcs)
	eq32("dsts", got.Dsts, want.Dsts)
	eq32("in.nbrs", got.In.Nbrs, want.In.Nbrs)
	eq32("in.eids", got.In.EdgeIDs, want.In.EdgeIDs)
	eq32("out.nbrs", got.Out.Nbrs, want.Out.Nbrs)
	eq32("out.eids", got.Out.EdgeIDs, want.Out.EdgeIDs)
	for v := 0; v <= got.N; v++ {
		if got.In.Offsets[v] != want.In.Offsets[v] || got.Out.Offsets[v] != want.Out.Offsets[v] {
			t.Fatalf("offsets diverge at vertex %d", v)
		}
	}
}

// runDeltaChain drives nSteps random deltas for one arch and checks, at
// every step, that the structurally-shared child is byte-identical to a
// rebuild from scratch: the flattened graph, the patched normalizer, and
// the (incrementally patched) logits.
func runDeltaChain(t *testing.T, spec serve.ModelSpec, frontierLimit float64, wantIncremental bool) {
	rng := rand.New(rand.NewSource(41))
	mir := newDeltaMirror(rng, 300, 16, 1500)
	model, err := serve.BuildModel(spec, mir.d, 1)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := serve.NewSnapshot(mir.graph(t), mir.featTensor())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := snap.EnsureEmbeddings(model, &serve.ForwardEnv{Dev: device.New(device.V100)}); err != nil {
		t.Fatal(err)
	}
	opt := &serve.DeltaOptions{Model: model, FrontierLimit: frontierLimit, Profile: device.V100}
	incremental := 0
	for step := 0; step < 6; step++ {
		d := randomDelta(rng, mir, 0)
		child, st, err := serve.ApplyDelta(snap, d, opt)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		mir.apply(d)
		requireGraphEqual(t, child.Graph(), mir.graph(t))
		if st.Recompute == "incremental" {
			incremental++
		}

		scratch := mir.scratchLogits(t, model)
		got, err := child.EnsureEmbeddings(model, &serve.ForwardEnv{Dev: device.New(device.V100)})
		if err != nil {
			t.Fatal(err)
		}
		if !sameTensorBits(got, scratch) {
			t.Fatalf("step %d (%s): logits diverge from rebuild-from-scratch", step, st.Recompute)
		}
		if spec.Arch == "gcn" {
			scratchSnap, err := serve.NewSnapshot(mir.graph(t), mir.featTensor())
			if err != nil {
				t.Fatal(err)
			}
			if !sameTensorBits(child.Norm(), scratchSnap.Norm()) {
				t.Fatalf("step %d: patched norm diverges from scratch", step)
			}
		}
		snap = child
	}
	if wantIncremental && incremental == 0 {
		t.Fatal("no delta took the incremental path; the patcher never ran")
	}
}

func TestDeltaChainEquivalenceGCN(t *testing.T) {
	runDeltaChain(t, serve.ModelSpec{Arch: "gcn", Hidden: 16, Classes: 5, Seed: 7}, 1.0, true)
}

func TestDeltaChainEquivalenceGAT(t *testing.T) {
	runDeltaChain(t, serve.ModelSpec{Arch: "gat", Hidden: 16, Classes: 5, Seed: 7}, 1.0, true)
}

// TestDeltaFallbackFullMatches forces the frontier limit to zero so every
// delta takes the eager full-recompute path, which must be bitwise
// equivalent too (it is the same forward the scratch rebuild runs).
func TestDeltaFallbackFullMatches(t *testing.T) {
	runDeltaChain(t, serve.ModelSpec{Arch: "gcn", Hidden: 16, Classes: 5, Seed: 7}, 1e-9, false)
}

// TestDeltaErrorPaths is the table of rejections: stale generations at
// the engine, bad feature shapes, out-of-range vertices, removing
// nonexistent edges, and typed (R-GCN) snapshots.
func TestDeltaErrorPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	mir := newDeltaMirror(rng, 40, 8, 120)
	snap, err := serve.NewSnapshot(mir.graph(t), mir.featTensor())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		d    serve.Delta
		want string
	}{
		{"feature dim mismatch", serve.Delta{Features: []serve.FeatureUpdate{{Node: 1, Row: make([]float32, 3)}}}, "dim"},
		{"feature node out of range", serve.Delta{Features: []serve.FeatureUpdate{{Node: 40, Row: make([]float32, 8)}}}, "out of range"},
		{"remove vertex out of range", serve.Delta{RemoveVertices: []int32{-1}}, "out of range"},
		{"remove missing edge", serve.Delta{RemoveEdges: []graph.Edge{{Src: 39, Dst: 39}}}, "no such edge"},
		{"add edge out of range", serve.Delta{AddEdges: []graph.Edge{{Src: 0, Dst: 41}}}, "out of range"},
		{"negative add vertices", serve.Delta{AddVertices: -2}, "negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Self-edge 39→39 may exist in the random mirror; drop it first.
			if tc.name == "remove missing edge" {
				for _, e := range mir.edges {
					if e.Src == 39 && e.Dst == 39 {
						t.Skip("random mirror happens to have 39→39")
					}
				}
			}
			_, _, err := serve.ApplyDelta(snap, &tc.d, nil)
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.want)
			}
		})
	}

	typedG := mir.graph(t)
	types := make([]int32, typedG.M)
	if err := typedG.WithEdgeTypes(types, 1); err != nil {
		t.Fatal(err)
	}
	typedSnap, err := serve.NewSnapshot(typedG, mir.featTensor())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := serve.ApplyDelta(typedSnap, &serve.Delta{AddVertices: 1}, nil); !errors.Is(err, serve.ErrDeltaUnsupported) {
		t.Fatalf("typed snapshot: want ErrDeltaUnsupported, got %v", err)
	}
}

// TestEngineDeltaGeneration checks the optimistic-concurrency handshake:
// generations start at 1, bump on swap and delta, stale parents are
// rejected with ErrStaleGeneration, and answers carry the generation they
// were computed on.
func TestEngineDeltaGeneration(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	mir := newDeltaMirror(rng, 60, 8, 200)
	snap, err := serve.NewSnapshot(mir.graph(t), mir.featTensor())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := serve.New(serve.Config{Spec: serve.ModelSpec{Arch: "gcn", Hidden: 8, Classes: 3, Seed: 1}}, snap)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	if g := eng.Generation(); g != 1 {
		t.Fatalf("fresh engine generation = %d, want 1", g)
	}
	if err := eng.SwapGraph(snap); err != nil {
		t.Fatal(err)
	}
	if g := eng.Generation(); g != 2 {
		t.Fatalf("post-swap generation = %d, want 2", g)
	}
	if _, err := eng.ApplyDelta(&serve.Delta{ParentGen: 1, AddVertices: 1}); !errors.Is(err, serve.ErrStaleGeneration) {
		t.Fatalf("stale delta: want ErrStaleGeneration, got %v", err)
	}
	st, err := eng.ApplyDelta(&serve.Delta{ParentGen: 2, AddVertices: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Gen != 3 || eng.Generation() != 3 {
		t.Fatalf("delta stats gen %d, engine gen %d, want 3", st.Gen, eng.Generation())
	}
	res, err := eng.Infer(t.Context(), []int32{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Gen != 3 {
		t.Fatalf("result generation %d, want 3", res.Gen)
	}
	if eng.Metrics().Deltas.Load() != 1 || eng.Metrics().DeltasRejected.Load() != 1 {
		t.Fatalf("delta counters = %d applied / %d rejected, want 1/1",
			eng.Metrics().Deltas.Load(), eng.Metrics().DeltasRejected.Load())
	}
}

// TestEngineDeltaSwapRace races ApplyDelta (with stale-retry) against
// SwapGraph: every successful publication must take a distinct,
// monotonically observed generation, and stale deltas must be the only
// failure mode.
func TestEngineDeltaSwapRace(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	mir := newDeltaMirror(rng, 60, 8, 200)
	snap, err := serve.NewSnapshot(mir.graph(t), mir.featTensor())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := serve.New(serve.Config{Spec: serve.ModelSpec{Arch: "gcn", Hidden: 8, Classes: 3, Seed: 1}}, snap)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	var wg sync.WaitGroup
	var mu sync.Mutex
	gens := map[uint64]bool{}
	wg.Add(2)
	go func() {
		defer wg.Done()
		applied := 0
		for applied < 10 {
			st, err := eng.ApplyDelta(&serve.Delta{ParentGen: eng.Generation(), AddVertices: 1})
			if errors.Is(err, serve.ErrStaleGeneration) {
				continue // rebased on the next Generation() read
			}
			if err != nil {
				t.Errorf("delta: %v", err)
				return
			}
			mu.Lock()
			if gens[st.Gen] {
				t.Errorf("generation %d published twice", st.Gen)
			}
			gens[st.Gen] = true
			mu.Unlock()
			applied++
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := eng.SwapGraph(snap); err != nil {
				t.Errorf("swap: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	// 1 initial + 10 deltas + 10 swaps.
	if g := eng.Generation(); g != 21 {
		t.Fatalf("final generation %d, want 21", g)
	}
}

// TestHTTPDelta drives the /v1/graph/delta endpoint end to end: a valid
// delta answers 200 with the new generation and sharing stats, a stale
// parent generation answers 409 Conflict, and garbage answers 400.
func TestHTTPDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	mir := newDeltaMirror(rng, 60, 8, 200)
	snap, err := serve.NewSnapshot(mir.graph(t), mir.featTensor())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := serve.New(serve.Config{Spec: serve.ModelSpec{Arch: "gcn", Hidden: 8, Classes: 3, Seed: 1}, EmbedCache: true}, snap)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	srv := httptest.NewServer(serve.Handler(eng))
	defer srv.Close()

	post := func(body string) (*http.Response, map[string]any) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/graph/delta", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&out)
		return resp, out
	}

	resp, out := post(`{"parent_gen":1,"add_vertices":1,"add_edges":[{"src":0,"dst":60}],"features":[{"node":60,"row":[1,0,0,0,0,0,0,0]}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid delta: status %d", resp.StatusCode)
	}
	if out["gen"].(float64) != 2 || out["n"].(float64) != 61 {
		t.Fatalf("delta response = %v, want gen 2 / n 61", out)
	}

	resp, _ = post(`{"parent_gen":1,"add_vertices":1}`)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale delta: status %d, want 409", resp.StatusCode)
	}
	resp, _ = post(`{"parent_gen":2,"remove_edges":[{"src":59,"dst":60}]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad delta: status %d, want 400", resp.StatusCode)
	}
	if g := eng.Generation(); g != 2 {
		t.Fatalf("generation after failed deltas = %d, want 2", g)
	}
}

// TestSampledDeltaRejected: a sampled-serving engine (non-empty fan-out)
// must refuse graph deltas with a clean 400 and an explanatory error —
// sampled plans are drawn against a fixed snapshot, and patching it
// under a live sampler would mix generations silently.
func TestSampledDeltaRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	mir := newDeltaMirror(rng, 60, 8, 200)
	snap, err := serve.NewSnapshot(mir.graph(t), mir.featTensor())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := serve.New(serve.Config{
		Spec:   serve.ModelSpec{Arch: "gcn", Hidden: 8, Classes: 3, Seed: 1},
		FanOut: []int{4, 4},
	}, snap)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	if _, err := eng.ApplyDelta(&serve.Delta{ParentGen: eng.Generation(), AddVertices: 1}); !errors.Is(err, serve.ErrSampledDelta) {
		t.Fatalf("ApplyDelta in sampled mode: %v, want ErrSampledDelta", err)
	}

	srv := httptest.NewServer(serve.Handler(eng))
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/v1/graph/delta", "application/json",
		strings.NewReader(`{"parent_gen":1,"add_vertices":1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("sampled delta: status %d, want 400", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "sampled") {
		t.Fatalf("sampled delta error not explanatory: %q", body)
	}
	if g := eng.Generation(); g != 1 {
		t.Fatalf("generation moved to %d under rejected delta", g)
	}
}

// TestDeltaInferSoak is the concurrent bitwise gate: an EmbedCache engine
// serves inference while a writer applies deltas. Every response carries
// its generation; each must match, bit for bit, the logits of a
// rebuilt-from-scratch snapshot of that generation's graph.
func TestDeltaInferSoak(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	mir := newDeltaMirror(rng, 200, 16, 900)
	spec := serve.ModelSpec{Arch: "gcn", Hidden: 16, Classes: 5, Seed: 7}
	snap, err := serve.NewSnapshot(mir.graph(t), mir.featTensor())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := serve.New(serve.Config{Spec: spec, EmbedCache: true, DeltaFrontierLimit: 1.0}, snap)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	model, err := serve.BuildModel(spec, mir.d, 1)
	if err != nil {
		t.Fatal(err)
	}

	// truth[gen] = scratch logits for that generation, recorded by the
	// writer after each publish. Readers record samples and the test
	// verifies them all at the end, so a sample racing ahead of the truth
	// map is fine.
	truth := sync.Map{}
	truth.Store(uint64(1), mir.scratchLogits(t, model))

	type sample struct {
		gen   uint64
		nodes []int32
		bits  []uint32
	}
	var samples []sample
	var sampleMu sync.Mutex

	done := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(seed int64) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-done:
					return
				default:
				}
				nodes := []int32{int32(rng.Intn(100)), int32(rng.Intn(100))}
				res, err := eng.Infer(t.Context(), nodes)
				if err != nil {
					continue // queue-full under race scheduler is fine
				}
				bits := make([]uint32, res.Logits.Size())
				for i := range bits {
					bits[i] = math.Float32bits(res.Logits.At1(i))
				}
				sampleMu.Lock()
				samples = append(samples, sample{gen: res.Gen, nodes: nodes, bits: bits})
				sampleMu.Unlock()
			}
		}(int64(100 + r))
	}

	sampleCount := func() int {
		sampleMu.Lock()
		defer sampleMu.Unlock()
		return len(samples)
	}
	for step := 0; step < 8; step++ {
		for {
			d := randomDelta(rng, mir, eng.Generation())
			st, err := eng.ApplyDelta(d)
			if errors.Is(err, serve.ErrStaleGeneration) {
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			mir.apply(d)
			truth.Store(st.Gen, mir.scratchLogits(t, model))
			break
		}
		// Let inference interleave with the mutation stream: wait until
		// at least one more response lands before the next delta.
		want := step + 1
		for sampleCount() < want {
			time.Sleep(time.Millisecond)
		}
	}
	close(done)
	readers.Wait()

	checked := 0
	for _, s := range samples {
		v, ok := truth.Load(s.gen)
		if !ok {
			t.Fatalf("response for unknown generation %d", s.gen)
		}
		logits := v.(*tensor.Tensor)
		cols := logits.Cols()
		for i, node := range s.nodes {
			for j := 0; j < cols; j++ {
				want := math.Float32bits(logits.At(int(node), j))
				if s.bits[i*cols+j] != want {
					t.Fatalf("gen %d node %d col %d: served bits %#x, scratch %#x",
						s.gen, node, j, s.bits[i*cols+j], want)
				}
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("soak produced no verified samples")
	}
	t.Logf("soak verified %d responses across %d generations", checked, 9)
}

// Tests for the engine's adaptive micro-batch re-planning: convergence
// and persistence, warm restart without exploration, corrupt-plan-file
// fallback, and the concurrent soak — 64 goroutines inferring while the
// re-planner swaps learned plans mid-flight — with a goroutine-leak
// check on shutdown. Run with -race in CI.
package serve_test

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"seastar/internal/adapt"
	"seastar/internal/serve"
	"seastar/internal/tensor"
)

func adaptCfg(planPath string) serve.Config {
	return serve.Config{
		Spec:          gcnSpec(4),
		MaxBatch:      8,
		Workers:       4,
		Adapt:         true,
		AdaptPlanPath: planPath,
		AdaptInterval: 2 * time.Millisecond,
		// One trial per candidate per round, two winning rounds: settles
		// after a dozen busy measurement windows.
		AdaptConfig: adapt.Config{Explore: 1, Rounds: 2, Win: 0.10},
	}
}

// soak fires `goroutines` concurrent inferrers at e for `per` requests
// each and verifies every answer bitwise against truth.
func soak(t *testing.T, e *serve.Engine, truth *tensor.Tensor, goroutines, per int) {
	t.Helper()
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				nodes := []int32{int32((w*per + i) % truth.Rows()), int32(w % truth.Rows())}
				res, err := e.Infer(context.Background(), nodes)
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				for ri, v := range nodes {
					for c := 0; c < truth.Cols(); c++ {
						if math.Float32bits(res.Logits.At(ri, c)) != math.Float32bits(truth.At(int(v), c)) {
							t.Errorf("worker %d: logits[%d,%d] diverged under adaptive batching", w, ri, c)
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// waitSettled polls until the engine's tuner commits a plan.
func waitSettled(t *testing.T, e *serve.Engine, truth *tensor.Tensor, timeout time.Duration) adapt.Plan {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		// Keep the measurement windows busy so every tick reports a trial.
		soak(t, e, truth, 4, 4)
		if p, ok := e.AdaptPlan(); ok {
			return p
		}
	}
	t.Fatal("adaptive tuner did not settle in time")
	return adapt.Plan{}
}

func TestAdaptConvergesPersistsAndWarmRestarts(t *testing.T) {
	snap := snapFor(t, "cora", 0.1, 1)
	planPath := filepath.Join(t.TempDir(), "plans.json")
	truth := groundTruth(t, gcnSpec(4), snap)

	// Cold start: the engine must explore, settle, and persist on Close.
	e1, err := serve.New(adaptCfg(planPath), snap)
	if err != nil {
		t.Fatal(err)
	}
	if e1.AdaptWarm() {
		t.Fatal("cold start reported warm")
	}
	p := waitSettled(t, e1, truth, 30*time.Second)
	if p.Gen < 2 {
		t.Fatalf("settled plan gen %d, want ≥ 2 (hysteresis rounds)", p.Gen)
	}
	e1.Close()
	if _, err := os.Stat(planPath); err != nil {
		t.Fatalf("no plan file persisted: %v", err)
	}

	// Warm restart: the persisted plan is adopted immediately — no
	// exploration — and serving stays bitwise-correct.
	e2, err := serve.New(adaptCfg(planPath), snap)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if !e2.AdaptWarm() {
		t.Fatal("restart did not adopt the persisted plan")
	}
	p2, ok := e2.AdaptPlan()
	if !ok {
		t.Fatal("warm engine has no settled plan")
	}
	if p2.Gen != p.Gen || p2.Tuning.MaxBatch != p.Tuning.MaxBatch {
		t.Fatalf("adopted plan %+v differs from persisted %+v", p2, p)
	}
	// The adopted tuning is live before any traffic.
	wantMB := 8
	if p.Tuning.MaxBatch > 0 {
		wantMB = p.Tuning.MaxBatch
	}
	if got := e2.MaxBatch(); got != wantMB {
		t.Fatalf("warm engine batch cap %d, want adopted %d", got, wantMB)
	}
	soak(t, e2, truth, 8, 4)
}

func TestAdaptCorruptPlanFileFallsBack(t *testing.T) {
	snap := snapFor(t, "cora", 0.1, 1)
	planPath := filepath.Join(t.TempDir(), "plans.json")
	if err := os.WriteFile(planPath, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	e, err := serve.New(adaptCfg(planPath), snap)
	if err != nil {
		t.Fatalf("corrupt plan file must not fail engine start: %v", err)
	}
	defer e.Close()
	if e.AdaptWarm() {
		t.Fatal("corrupt plan file produced a warm start")
	}
	if e.AdaptDiag() == nil {
		t.Fatal("corrupt plan file left no diagnostic")
	}
	// Static fallback is live and serving is correct.
	if got := e.MaxBatch(); got != 8 {
		t.Fatalf("fallback batch cap %d, want static 8", got)
	}
	truth := groundTruth(t, gcnSpec(4), snap)
	soak(t, e, truth, 8, 2)
}

// TestAdaptSoakPlanSwapsMidFlight is the race soak: 64 goroutines of
// mixed cold/warm infer load while the re-planner swaps batch sizes
// mid-flight every 2ms, then a goroutine-leak check on shutdown. The
// race detector (CI runs this package with -race) guards the
// maxBatch/metrics/tuner handoffs.
func TestAdaptSoakPlanSwapsMidFlight(t *testing.T) {
	snap := snapFor(t, "cora", 0.1, 1)
	truth := groundTruth(t, gcnSpec(4), snap)
	planPath := filepath.Join(t.TempDir(), "plans.json")
	before := runtime.NumGoroutine()

	// Cold engine: exploration is live during the whole soak.
	cold, err := serve.New(adaptCfg(planPath), snap)
	if err != nil {
		t.Fatal(err)
	}
	soak(t, cold, truth, 64, 6)
	cold.Close()

	// Warm engine on whatever the cold run persisted (it may or may not
	// have settled — both paths must survive the soak).
	warm, err := serve.New(adaptCfg(planPath), snap)
	if err != nil {
		t.Fatal(err)
	}
	soak(t, warm, truth, 64, 6)
	warm.Close()

	// Shutdown leak check: every batcher, worker and replanner goroutine
	// of both engines must be gone.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutine leak after close: %d before, %d after", before, runtime.NumGoroutine())
}

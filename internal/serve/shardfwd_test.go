package serve

import (
	"math"
	"math/rand"
	"testing"

	"seastar/internal/device"
	"seastar/internal/graph"
	"seastar/internal/part"
	"seastar/internal/tensor"
)

// runSharded partitions g, steps every fragment through the model with
// mirror exchanges between rounds (the coordinator loop, in-process),
// and merges owned logits back into vertex-id order.
func runSharded(t *testing.T, g *graph.Graph, feat *tensor.Tensor, m *Model, k int) *tensor.Tensor {
	t.Helper()
	p, err := part.Build(g, k, "greedy")
	if err != nil {
		t.Fatal(err)
	}
	pool := tensor.NewPool()
	sfs := make([]*ShardForward, k)
	for s, f := range p.Frags {
		env := NewShardEnv(f, feat, device.New(device.V100), pool)
		sf, err := NewShardForward(m, env)
		if err != nil {
			t.Fatal(err)
		}
		sfs[s] = sf
	}
	rounds, err := m.ShardRounds()
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r <= rounds; r++ {
		for _, sf := range sfs {
			if err := sf.StepShard(); err != nil {
				t.Fatalf("round %d: %v", r, err)
			}
		}
		if r == rounds {
			break
		}
		// GAS exchange: every master scatters its exported rows into its
		// peers' mirror slots.
		for s, sf := range sfs {
			for tt := 0; tt < k; tt++ {
				exp := p.Frags[s].ExportTo[tt]
				if len(exp) == 0 {
					continue
				}
				block := sf.ExportRows(exp)
				if err := sfs[tt].ImportRows(p.Frags[tt].ImportFrom[s], block); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	out := tensor.New(g.N, m.Spec.Classes)
	for s, sf := range sfs {
		logits, err := sf.Logits()
		if err != nil {
			t.Fatal(err)
		}
		f := p.Frags[s]
		for l := 0; l < f.Owned; l++ {
			copy(out.Row(int(f.Locals[l])), logits.Row(l))
		}
	}
	return out
}

func fullForward(t *testing.T, g *graph.Graph, feat *tensor.Tensor, m *Model) *tensor.Tensor {
	t.Helper()
	snap, err := NewSnapshot(g, feat)
	if err != nil {
		t.Fatal(err)
	}
	env := &ForwardEnv{
		G: snap.Graph(), Feat: snap.Features(),
		Dev: device.New(device.V100), Pool: tensor.NewPool(),
	}
	NormsFor(m.Spec.Arch, snap, env.G, env)
	want, err := m.Forward(env)
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// TestShardForwardBitwise is the sharded≡single-process equivalence
// property: for every supported arch and shard count {2, 4}, merging the
// fragments' owned logits reproduces the full forward bit for bit.
func TestShardForwardBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.ZipfDegree(rng, 4000, 8, 1.0)
	const dim = 16
	feat := tensor.Randn(rng, 1, g.N, dim)

	for _, arch := range []string{"gcn", "gat", "appnp"} {
		spec := ModelSpec{Arch: arch, Hidden: 16, Classes: 4, Seed: 7, Alpha: 0.1, K: 4}
		m, err := BuildModel(spec, dim, 1)
		if err != nil {
			t.Fatal(err)
		}
		want := fullForward(t, g, feat, m)
		for _, k := range []int{2, 4} {
			got := runSharded(t, g, feat, m, k)
			diff := 0
			for v := 0; v < g.N && diff < 5; v++ {
				for j := 0; j < want.Cols(); j++ {
					if math.Float32bits(got.At(v, j)) != math.Float32bits(want.At(v, j)) {
						t.Errorf("%s k=%d: vertex %d col %d: sharded %g (%08x) vs full %g (%08x)",
							arch, k, v, j, got.At(v, j), math.Float32bits(got.At(v, j)),
							want.At(v, j), math.Float32bits(want.At(v, j)))
						diff++
						break
					}
				}
			}
			if diff > 0 {
				t.Fatalf("%s k=%d: sharded forward diverged", arch, k)
			}
		}
	}
}

// TestShardRejectsRGCN: typed-edge models cannot shard (relation tables
// would split from their rows); the error must be clean, not a panic.
func TestShardRejectsRGCN(t *testing.T) {
	m, err := BuildModel(ModelSpec{Arch: "rgcn", Hidden: 8, Classes: 4, Seed: 1}, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.ShardRounds(); err == nil {
		t.Fatal("rgcn accepted for sharding")
	}
	rng := rand.New(rand.NewSource(1))
	g := graph.ZipfDegree(rng, 100, 4, 1.0)
	p, err := part.Build(g, 2, "greedy")
	if err != nil {
		t.Fatal(err)
	}
	env := NewShardEnv(p.Frags[0], tensor.Randn(rng, 1, g.N, 8), device.New(device.V100), tensor.NewPool())
	if _, err := NewShardForward(m, env); err == nil {
		t.Fatal("NewShardForward accepted rgcn")
	}
}

// TestShardStepSequence guards the stepped API contract: Logits before
// the final round errors, stepping past the end errors.
func TestShardStepSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.ZipfDegree(rng, 200, 4, 1.0)
	feat := tensor.Randn(rng, 1, g.N, 8)
	m, err := BuildModel(ModelSpec{Arch: "gcn", Hidden: 8, Classes: 3, Seed: 2}, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := part.Build(g, 1, "greedy")
	if err != nil {
		t.Fatal(err)
	}
	sf, err := NewShardForward(m, NewShardEnv(p.Frags[0], feat, device.New(device.V100), tensor.NewPool()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sf.Logits(); err == nil {
		t.Fatal("Logits before final round")
	}
	if err := sf.StepShard(); err != nil {
		t.Fatal(err)
	}
	if err := sf.StepShard(); err != nil {
		t.Fatal(err)
	}
	if !sf.Done() {
		t.Fatal("not done after 2 rounds")
	}
	if err := sf.StepShard(); err == nil {
		t.Fatal("stepped past final round")
	}
	if _, err := sf.Logits(); err != nil {
		t.Fatal(err)
	}
}

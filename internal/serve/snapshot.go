// Package serve is the concurrent inference layer on top of the Seastar
// compile pipeline: immutable graph snapshots swapped copy-on-write, a
// plan cache that compiles each (model, graph, feature-dim) combination
// exactly once behind a singleflight guard, and a request engine with
// bounded admission, micro-batching, deadlines and graceful drain.
package serve

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sync"

	"seastar/internal/datasets"
	"seastar/internal/graph"
	"seastar/internal/tensor"
)

// Snapshot is an immutable (graph, features) pair. Once constructed it is
// never mutated: graph updates build a new Snapshot and atomically swap
// it into the engine, so forwards already in flight keep reading the old
// one. Derived normalizers are computed lazily, at most once, and cached
// on the snapshot — safe because they are pure functions of the frozen
// graph.
type Snapshot struct {
	G    *graph.Graph
	Feat *tensor.Tensor

	fp uint64

	normOnce sync.Once
	norm     *tensor.Tensor

	symOnce        sync.Once
	symSrc, symDst *tensor.Tensor

	edgeOnce sync.Once
	edgeNorm *tensor.Tensor
}

// NewSnapshot freezes a graph and its vertex features into a servable
// snapshot. The graph is degree-sorted (the §6.3.3 preprocessing) unless
// its CSRs already are; vertex ids are stable either way because the CSR
// keeps row-id indirection.
func NewSnapshot(g *graph.Graph, feat *tensor.Tensor) (*Snapshot, error) {
	if g == nil || feat == nil {
		return nil, fmt.Errorf("serve: snapshot needs a graph and features")
	}
	if feat.Rows() != g.N {
		return nil, fmt.Errorf("serve: %d feature rows for %d vertices", feat.Rows(), g.N)
	}
	if !g.In.Sorted {
		g = g.SortByDegree()
	}
	return &Snapshot{G: g, Feat: feat, fp: fingerprint(g, feat)}, nil
}

// Fingerprint identifies the snapshot's structure and features; it is
// part of the plan-cache key, so two snapshots with equal fingerprints
// may share compiled plans.
func (s *Snapshot) Fingerprint() uint64 { return s.fp }

// fingerprint hashes the edge list, edge types and feature shape with
// FNV-1a. Feature values are sampled (first row plus a stride) rather
// than hashed in full: fingerprints gate plan reuse, and plans depend
// only on shapes — the sampling just separates snapshots in metrics.
func fingerprint(g *graph.Graph, feat *tensor.Tensor) uint64 {
	h := fnv.New64a()
	var b [8]byte
	w32 := func(v int32) {
		binary.LittleEndian.PutUint32(b[:4], uint32(v))
		h.Write(b[:4])
	}
	w32(int32(g.N))
	w32(int32(g.M))
	for i := 0; i < g.M; i++ {
		w32(g.Srcs[i])
		w32(g.Dsts[i])
	}
	if g.EdgeTypes != nil {
		w32(int32(g.NumEdgeTypes))
		for _, t := range g.EdgeTypes {
			w32(t)
		}
	}
	w32(int32(feat.Rows()))
	w32(int32(feat.Cols()))
	stride := feat.Size()/64 + 1
	for i := 0; i < feat.Size(); i += stride {
		binary.LittleEndian.PutUint32(b[:4], math.Float32bits(feat.At1(i)))
		h.Write(b[:4])
	}
	return h.Sum64()
}

// Norm returns the cached 1/in-degree GCN normalizer.
func (s *Snapshot) Norm() *tensor.Tensor {
	s.normOnce.Do(func() { s.norm = datasets.GCNNorm(s.G) })
	return s.norm
}

// SymNorms returns the cached symmetric-normalization pair used by APPNP:
// src[u] = 1/√out-deg(u), dst[v] = 1/√in-deg(v).
func (s *Snapshot) SymNorms() (src, dst *tensor.Tensor) {
	s.symOnce.Do(func() { s.symSrc, s.symDst = symNorms(s.G) })
	return s.symSrc, s.symDst
}

// EdgeNorm returns the cached per-edge R-GCN normalizer; the graph must
// carry edge types.
func (s *Snapshot) EdgeNorm() *tensor.Tensor {
	s.edgeOnce.Do(func() { s.edgeNorm = datasets.RGCNEdgeNorm(s.G) })
	return s.edgeNorm
}

// symNorms computes the APPNP normalizer pair for any graph (snapshots
// cache it; sampled subgraphs compute it fresh).
func symNorms(g *graph.Graph) (src, dst *tensor.Tensor) {
	out := g.OutDegrees()
	in := g.InDegrees()
	sn := tensor.New(g.N, 1)
	dn := tensor.New(g.N, 1)
	for v := 0; v < g.N; v++ {
		if out[v] > 0 {
			sn.Set(v, 0, float32(1/math.Sqrt(float64(out[v]))))
		}
		if in[v] > 0 {
			dn.Set(v, 0, float32(1/math.Sqrt(float64(in[v]))))
		}
	}
	return sn, dn
}

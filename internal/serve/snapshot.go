// Package serve is the concurrent inference layer on top of the Seastar
// compile pipeline: immutable graph snapshots swapped copy-on-write, a
// plan cache that compiles each (model, feature-dim, relations)
// combination exactly once behind a singleflight guard, and a request
// engine with bounded admission, micro-batching, deadlines and graceful
// drain. Graph deltas build child snapshots that structurally share
// unchanged CSR chunks and feature pages with their parent and patch —
// rather than recompute — the cached normalizers and embeddings.
package serve

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"sync/atomic"

	"seastar/internal/datasets"
	"seastar/internal/graph"
	"seastar/internal/tensor"
)

// Snapshot is an immutable (graph, features) pair. Once constructed it is
// never mutated: graph updates build a new Snapshot — either from scratch
// (SwapGraph) or as a structurally-shared delta child (ApplyDelta) — and
// atomically swap it into the engine, so forwards already in flight keep
// reading the old one. Derived normalizers and cached embeddings are
// computed lazily, at most once, and cached on the snapshot — safe
// because they are pure functions of the frozen graph; delta children
// inherit them patched copy-on-write instead of recomputing.
type Snapshot struct {
	// G and Feat are the flat root forms. They are set on snapshots built
	// by NewSnapshot and nil on delta children, whose flat forms
	// materialize lazily — use Graph() and Features() to read either kind.
	G    *graph.Graph
	Feat *tensor.Tensor

	n, d, numRel int
	fp           uint64

	// Chunked forms. Children always carry both; roots build them lazily
	// on the first delta.
	dg     *graph.DeltaGraph
	dgOnce sync.Once
	dgErr  error
	fs     *FeatStore
	fsOnce sync.Once

	// Lazily flattened forms for delta children.
	flatGOnce sync.Once
	flatG     atomic.Pointer[graph.Graph]
	flatFOnce sync.Once
	flatF     atomic.Pointer[tensor.Tensor]

	// Cached normalizers. A mutex (not sync.Once) so delta construction
	// can pre-seed patched values before the snapshot is published.
	normMu         sync.Mutex
	norm           *tensor.Tensor
	symSrc, symDst *tensor.Tensor

	edgeOnce sync.Once
	edgeNorm *tensor.Tensor

	// Cached embeddings per structural plan key (EmbedCache serving mode):
	// the model's per-layer dense products and final logits. Delta
	// children are pre-seeded with incrementally patched states.
	embMu sync.Mutex
	emb   map[PlanKey]*embedEntry
}

// NewSnapshot freezes a graph and its vertex features into a servable
// snapshot. The graph is degree-sorted (the §6.3.3 preprocessing) unless
// its CSRs already are; vertex ids are stable either way because the CSR
// keeps row-id indirection.
func NewSnapshot(g *graph.Graph, feat *tensor.Tensor) (*Snapshot, error) {
	if g == nil || feat == nil {
		return nil, fmt.Errorf("serve: snapshot needs a graph and features")
	}
	if feat.Rows() != g.N {
		return nil, fmt.Errorf("serve: %d feature rows for %d vertices", feat.Rows(), g.N)
	}
	if !g.In.Sorted {
		g = g.SortByDegree()
	}
	return &Snapshot{
		G: g, Feat: feat,
		n: g.N, d: feat.Cols(), numRel: g.NumEdgeTypes,
		fp: fingerprint(g, feat),
	}, nil
}

// Graph returns the flat graph form: the root graph, or the delta chain
// flattened (materialized at most once).
func (s *Snapshot) Graph() *graph.Graph {
	if s.G != nil {
		return s.G
	}
	s.flatGOnce.Do(func() { s.flatG.Store(s.dg.Flatten()) })
	return s.flatG.Load()
}

// Features returns the dense [N, D] feature matrix (materialized at most
// once for delta children).
func (s *Snapshot) Features() *tensor.Tensor {
	if s.Feat != nil {
		return s.Feat
	}
	s.flatFOnce.Do(func() { s.flatF.Store(s.fs.Flat()) })
	return s.flatF.Load()
}

// NumVertices returns the vertex count without materializing anything.
func (s *Snapshot) NumVertices() int { return s.n }

// NumEdges returns the edge count without materializing anything.
func (s *Snapshot) NumEdges() int {
	if s.dg != nil {
		return s.dg.M()
	}
	return s.G.M
}

// FeatDim returns the feature width.
func (s *Snapshot) FeatDim() int { return s.d }

// numRelations returns the edge-type count for the plan key (≥1).
func (s *Snapshot) numRelations() int {
	if s.numRel < 1 {
		return 1
	}
	return s.numRel
}

// typed reports whether the snapshot carries edge types (R-GCN graphs);
// such snapshots reject deltas.
func (s *Snapshot) typed() bool { return s.G != nil && s.G.EdgeTypes != nil }

// deltaGraph returns the chunked CSR form, building it once for roots.
func (s *Snapshot) deltaGraph() (*graph.DeltaGraph, error) {
	s.dgOnce.Do(func() {
		if s.dg == nil {
			s.dg, s.dgErr = graph.FromGraph(s.G)
		}
	})
	return s.dg, s.dgErr
}

// featStore returns the paged feature form, wrapping the root tensor once.
func (s *Snapshot) featStore() *FeatStore {
	s.fsOnce.Do(func() {
		if s.fs == nil {
			s.fs = NewFeatStore(s.Feat)
		}
	})
	return s.fs
}

// Fingerprint identifies the snapshot's structure and features. Delta
// children chain their fingerprint from the parent's plus the delta
// payload, so every generation is distinct and deterministic.
func (s *Snapshot) Fingerprint() uint64 { return s.fp }

// fingerprint hashes the edge list, edge types and feature shape with
// FNV-1a. Feature values are sampled (first row plus a stride) rather
// than hashed in full: fingerprints separate snapshots in metrics and
// adaptation keys; compiled plans depend only on shapes.
func fingerprint(g *graph.Graph, feat *tensor.Tensor) uint64 {
	h := fnv.New64a()
	var b [8]byte
	w32 := func(v int32) {
		binary.LittleEndian.PutUint32(b[:4], uint32(v))
		h.Write(b[:4])
	}
	w32(int32(g.N))
	w32(int32(g.M))
	for i := 0; i < g.M; i++ {
		w32(g.Srcs[i])
		w32(g.Dsts[i])
	}
	if g.EdgeTypes != nil {
		w32(int32(g.NumEdgeTypes))
		for _, t := range g.EdgeTypes {
			w32(t)
		}
	}
	w32(int32(feat.Rows()))
	w32(int32(feat.Cols()))
	stride := feat.Size()/64 + 1
	for i := 0; i < feat.Size(); i += stride {
		binary.LittleEndian.PutUint32(b[:4], math.Float32bits(feat.At1(i)))
		h.Write(b[:4])
	}
	return h.Sum64()
}

// Norm returns the cached 1/in-degree GCN normalizer.
func (s *Snapshot) Norm() *tensor.Tensor {
	s.normMu.Lock()
	defer s.normMu.Unlock()
	if s.norm == nil {
		if s.G != nil {
			s.norm = datasets.GCNNorm(s.G)
		} else {
			s.norm = gcnNormFromDegrees(s.dg.InDegrees())
		}
	}
	return s.norm
}

// SymNorms returns the cached symmetric-normalization pair used by APPNP:
// src[u] = 1/√out-deg(u), dst[v] = 1/√in-deg(v).
func (s *Snapshot) SymNorms() (src, dst *tensor.Tensor) {
	s.normMu.Lock()
	defer s.normMu.Unlock()
	if s.symSrc == nil {
		if s.G != nil {
			s.symSrc, s.symDst = symNorms(s.G)
		} else {
			s.symSrc = symNormFromDegrees(s.dg.OutDegrees())
			s.symDst = symNormFromDegrees(s.dg.InDegrees())
		}
	}
	return s.symSrc, s.symDst
}

// EdgeNorm returns the cached per-edge R-GCN normalizer; the graph must
// carry edge types (delta children never do).
func (s *Snapshot) EdgeNorm() *tensor.Tensor {
	s.edgeOnce.Do(func() { s.edgeNorm = datasets.RGCNEdgeNorm(s.Graph()) })
	return s.edgeNorm
}

// symNorms computes the APPNP normalizer pair for any graph (snapshots
// cache it; sampled subgraphs compute it fresh).
func symNorms(g *graph.Graph) (src, dst *tensor.Tensor) {
	out := g.OutDegrees()
	in := g.InDegrees()
	sn := tensor.New(g.N, 1)
	dn := tensor.New(g.N, 1)
	for v := 0; v < g.N; v++ {
		if out[v] > 0 {
			sn.Set(v, 0, float32(1/math.Sqrt(float64(out[v]))))
		}
		if in[v] > 0 {
			dn.Set(v, 0, float32(1/math.Sqrt(float64(in[v]))))
		}
	}
	return sn, dn
}

// gcnNormFromDegrees mirrors datasets.GCNNorm element for element, from a
// degree vector instead of a graph — the arithmetic both the lazy child
// path and the delta patch path share with the root path.
func gcnNormFromDegrees(deg []int32) *tensor.Tensor {
	t := tensor.New(len(deg), 1)
	for v, d := range deg {
		if d > 0 {
			t.Set(v, 0, 1/float32(d))
		}
	}
	return t
}

// symNormFromDegrees mirrors one side of symNorms.
func symNormFromDegrees(deg []int32) *tensor.Tensor {
	t := tensor.New(len(deg), 1)
	for v, d := range deg {
		if d > 0 {
			t.Set(v, 0, float32(1/math.Sqrt(float64(d))))
		}
	}
	return t
}

// normPeek returns the cached normalizers without computing them — the
// delta path patches whatever the parent has already paid for and leaves
// the rest lazy.
func (s *Snapshot) normPeek() (norm, symSrc, symDst *tensor.Tensor) {
	s.normMu.Lock()
	defer s.normMu.Unlock()
	return s.norm, s.symSrc, s.symDst
}

// embedEntry is the singleflight slot for one model's cached embeddings.
// done flips (with release semantics) only after state/err settle, so
// embedPeek can inspect the slot without blocking on an in-flight build.
type embedEntry struct {
	once  sync.Once
	done  atomic.Bool
	state *embedState
	err   error
}

// embedState is a settled embedding computation: the final logits plus
// the per-layer dense products (aux) the incremental patch path needs to
// reuse unchanged rows from. aux is nil for archs without incremental
// support; keys are arch-specific (see model.go forwardState*).
type embedState struct {
	logits *tensor.Tensor
	aux    map[string]*tensor.Tensor
}

func (s *Snapshot) embedSlot(key PlanKey) *embedEntry {
	s.embMu.Lock()
	defer s.embMu.Unlock()
	if s.emb == nil {
		s.emb = make(map[PlanKey]*embedEntry)
	}
	e, ok := s.emb[key]
	if !ok {
		e = &embedEntry{}
		s.emb[key] = e
	}
	return e
}

// EnsureEmbeddings returns the cached full-graph logits for model m,
// computing them (with per-layer aux state) exactly once per snapshot no
// matter how many batches race on a cold cache.
func (s *Snapshot) EnsureEmbeddings(m *Model, env *ForwardEnv) (*tensor.Tensor, error) {
	e := s.embedSlot(m.planKey())
	e.once.Do(func() {
		env.G = s.Graph()
		env.Feat = s.Features()
		NormsFor(m.Spec.Arch, s, env.G, env)
		e.state, e.err = m.forwardState(env)
		e.done.Store(true)
	})
	if e.err != nil {
		return nil, e.err
	}
	return e.state.logits, nil
}

// embedPeek returns the settled embedding state for key, or nil if it is
// uncomputed, still in flight, or failed. It never blocks.
func (s *Snapshot) embedPeek(key PlanKey) *embedState {
	s.embMu.Lock()
	e, ok := s.emb[key]
	s.embMu.Unlock()
	if !ok || !e.done.Load() || e.err != nil {
		return nil
	}
	return e.state
}

// seedEmbeddings installs a pre-computed embedding state (delta children,
// before publication).
func (s *Snapshot) seedEmbeddings(key PlanKey, st *embedState) {
	e := &embedEntry{state: st}
	e.once.Do(func() {})
	e.done.Store(true)
	s.embMu.Lock()
	if s.emb == nil {
		s.emb = make(map[PlanKey]*embedEntry)
	}
	s.emb[key] = e
	s.embMu.Unlock()
}

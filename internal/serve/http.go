package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"seastar/internal/datasets"
	"seastar/internal/obs"
)

// Handler returns the engine's HTTP surface:
//
//	POST /v1/infer   {"nodes":[0,1,2],"timeout_ms":500} → logits + classes
//	POST /v1/graph   {"dataset":"cora","scale":0.5,"seed":7} → swap snapshot
//	POST /v1/graph/delta  {"parent_gen":1,"add_edges":[{"src":0,"dst":1}],...} → delta apply
//	GET  /healthz    liveness (503 while draining)
//	GET  /metrics    Prometheus text exposition
//	GET  /debug/trace  Chrome trace of the last batch's device kernels
func Handler(e *Engine) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/infer", func(w http.ResponseWriter, r *http.Request) { handleInfer(e, w, r) })
	mux.HandleFunc("/v1/graph", func(w http.ResponseWriter, r *http.Request) { handleGraph(e, w, r) })
	mux.HandleFunc("/v1/graph/delta", func(w http.ResponseWriter, r *http.Request) { handleDelta(e, w, r) })
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if e.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		e.Metrics().Write(w, e.Cache())
		obs.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		if !e.hasTrace() {
			http.Error(w, "no batch traced yet", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := e.WriteMergedTrace(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}

type inferRequest struct {
	Nodes     []int32 `json:"nodes"`
	TimeoutMS int     `json:"timeout_ms,omitempty"`
}

type inferResponse struct {
	Nodes   []int32     `json:"nodes"`
	Logits  [][]float32 `json:"logits"`
	Classes []int       `json:"classes"`
}

func handleInfer(e *Engine, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req inferRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Nodes) == 0 {
		http.Error(w, "bad request: no nodes", http.StatusBadRequest)
		return
	}
	ctx := r.Context()
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	res, err := e.Infer(ctx, req.Nodes)
	if err != nil {
		http.Error(w, err.Error(), statusFor(err))
		return
	}
	resp := inferResponse{Nodes: res.Nodes, Classes: res.Classes}
	for i := 0; i < res.Logits.Rows(); i++ {
		row := make([]float32, res.Logits.Cols())
		copy(row, res.Logits.Row(i))
		resp.Logits = append(resp.Logits, row)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrStaleGeneration):
		return http.StatusConflict
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request
	default:
		return http.StatusBadRequest
	}
}

type graphRequest struct {
	Dataset string  `json:"dataset"`
	Scale   float64 `json:"scale,omitempty"`
	Seed    int64   `json:"seed,omitempty"`
}

type graphResponse struct {
	Fingerprint string `json:"fingerprint"`
	N           int    `json:"n"`
	M           int    `json:"m"`
	Gen         uint64 `json:"gen"`
}

func handleGraph(e *Engine, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req graphRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Dataset == "" {
		http.Error(w, "bad request: dataset required", http.StatusBadRequest)
		return
	}
	if req.Scale <= 0 {
		req.Scale = datasets.DefaultScale(req.Dataset)
	}
	ds, err := datasets.Load(req.Dataset, req.Scale, req.Seed)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	snap, err := NewSnapshot(ds.G, ds.Feat)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := e.SwapGraph(snap); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(graphResponse{
		Fingerprint: fmt.Sprintf("%016x", snap.Fingerprint()),
		N:           snap.NumVertices(),
		M:           snap.NumEdges(),
		Gen:         e.Generation(),
	})
}

// deltaResponse is what a successful delta apply reports back: the new
// generation (the parent_gen the next delta must address), the child's
// shape and fingerprint, how big the dirty frontier was, and which
// recompute mode ran.
type deltaResponse struct {
	Gen          uint64 `json:"gen"`
	Fingerprint  string `json:"fingerprint"`
	N            int    `json:"n"`
	M            int    `json:"m"`
	Touched      int    `json:"touched"`
	Frontier     int    `json:"frontier"`
	Recompute    string `json:"recompute"`
	SharedChunks int    `json:"shared_chunks"`
	CopiedChunks int    `json:"copied_chunks"`
	SharedPages  int    `json:"shared_pages"`
	CopiedPages  int    `json:"copied_pages"`
	ApplyUS      int64  `json:"apply_us"`
	RecomputeUS  int64  `json:"recompute_us"`
}

// handleDelta applies one graph delta. A stale parent_gen answers 409
// Conflict with the error text carrying both generations, so clients can
// refetch /v1/graph's gen (or read the latest infer response) and rebase.
func handleDelta(e *Engine, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var d Delta
	if err := json.NewDecoder(r.Body).Decode(&d); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	st, err := e.ApplyDelta(&d)
	if err != nil {
		http.Error(w, err.Error(), statusFor(err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(deltaResponse{
		Gen:          st.Gen,
		Fingerprint:  fmt.Sprintf("%016x", st.Fingerprint),
		N:            st.N,
		M:            st.M,
		Touched:      st.Touched,
		Frontier:     st.Frontier,
		Recompute:    st.Recompute,
		SharedChunks: st.SharedChunks,
		CopiedChunks: st.CopiedChunks,
		SharedPages:  st.SharedPages,
		CopiedPages:  st.CopiedPages,
		ApplyUS:      st.ApplyNs / 1e3,
		RecomputeUS:  st.RecomputeNs / 1e3,
	})
}

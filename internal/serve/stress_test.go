package serve_test

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"seastar/internal/serve"
	"seastar/internal/tensor"
)

// TestStress64MixedColdWarm is the concurrency acceptance test (run it
// under -race via `make race-serve`): 64 client goroutines issue a mix of
// cold and warm requests while other goroutines swap the graph snapshot
// underneath them. Requirements checked:
//
//   - zero dropped responses below the admission limit (every call
//     returns a result or a typed rejection),
//   - every successful response byte-matches the serial ground truth of
//     exactly one snapshot (no torn reads across swaps),
//   - each (model, graph) key compiles exactly once despite the races,
//   - the engine drains cleanly with no leaked goroutines.
func TestStress64MixedColdWarm(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short")
	}
	before := runtime.NumGoroutine()

	// Three snapshots → three cold (model, graph) keys encountered at
	// unpredictable times as swappers rotate them.
	snaps := []*serve.Snapshot{
		snapFor(t, "cora", 0.05, 1),
		snapFor(t, "cora", 0.05, 2),
		snapFor(t, "cora", 0.05, 3),
	}
	spec := gcnSpec(7)
	truths := make([]*tensor.Tensor, len(snaps))
	minN := snaps[0].G.N
	for i, s := range snaps {
		truths[i] = groundTruth(t, spec, s)
		if s.G.N < minN {
			minN = s.G.N
		}
	}

	eng, err := serve.New(serve.Config{
		Spec:        spec,
		QueueDepth:  512, // above the offered load: nothing may be rejected
		MaxBatch:    8,
		BatchWindow: 200 * time.Microsecond,
		Workers:     8,
	}, snaps[0])
	if err != nil {
		t.Fatal(err)
	}

	const (
		clients  = 64
		perGo    = 8
		swappers = 4
	)

	stopSwap := make(chan struct{})
	var swapWG sync.WaitGroup
	for s := 0; s < swappers; s++ {
		swapWG.Add(1)
		go func(s int) {
			defer swapWG.Done()
			rng := rand.New(rand.NewSource(int64(1000 + s)))
			for i := 0; ; i++ {
				select {
				case <-stopSwap:
					return
				default:
				}
				if err := eng.SwapGraph(snaps[rng.Intn(len(snaps))]); err != nil {
					t.Error(err)
					return
				}
				time.Sleep(time.Duration(rng.Intn(2000)) * time.Microsecond)
			}
		}(s)
	}

	var served, torn atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for i := 0; i < perGo; i++ {
				nodes := make([]int32, 1+rng.Intn(4))
				for j := range nodes {
					nodes[j] = int32(rng.Intn(minN))
				}
				res, err := eng.Infer(context.Background(), nodes)
				if err != nil {
					// The queue is sized above the offered load; any
					// rejection here is a dropped response.
					t.Errorf("client %d req %d: %v", c, i, err)
					return
				}
				want := false
				for _, truth := range truths {
					if sameTensorBits(res.Logits, tensor.GatherRows(truth, nodes)) {
						want = true
						break
					}
				}
				if !want {
					torn.Add(1)
					return
				}
				served.Add(1)
			}
		}(c)
	}
	wg.Wait()
	close(stopSwap)
	swapWG.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if torn.Load() != 0 {
		t.Fatalf("%d responses matched no snapshot's serial ground truth", torn.Load())
	}
	if served.Load() != clients*perGo {
		t.Fatalf("served %d of %d requests", served.Load(), clients*perGo)
	}

	// At most one compile per distinct snapshot fingerprint, and the
	// singleflight accounting must agree with the map.
	hits, misses, compiles := eng.Cache().Stats()
	if compiles < 1 || compiles > int64(len(snaps)) {
		t.Fatalf("compiles = %d, want 1..%d", compiles, len(snaps))
	}
	if compiles != int64(eng.Cache().Len()) {
		t.Fatalf("compiles %d != cached entries %d", compiles, eng.Cache().Len())
	}
	if misses != compiles {
		t.Fatalf("misses %d != compiles %d", misses, compiles)
	}
	if hits+misses != eng.Metrics().Batches.Load() {
		t.Fatalf("cache lookups %d != batches %d", hits+misses, eng.Metrics().Batches.Load())
	}

	eng.Close()
	if _, err := eng.Infer(context.Background(), []int32{0}); !errors.Is(err, serve.ErrDraining) {
		t.Fatalf("post-drain Infer: %v", err)
	}
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Fatalf("goroutines leaked: %d before, %d after", before, n)
	}
}

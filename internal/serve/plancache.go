package serve

import (
	"sync"
	"sync/atomic"
)

// PlanKey identifies one compiled serving plan by everything the build
// actually depends on: the canonical model configuration, the input
// feature width (which fixes every traced shape) and the relation count.
// The key is deliberately structural — no graph fingerprint — so snapshot
// swaps and delta generations reuse compiled plans instead of recompiling
// per graph; only a shape change (new dataset width, new relation count)
// misses.
type PlanKey struct {
	Spec   string
	InDim  int
	NumRel int
}

// planEntry is one singleflight slot. The sync.Once guarantees the build
// function runs exactly once no matter how many requests race on a cold
// key; losers block inside Do until the winner finishes, then read the
// same result.
type planEntry struct {
	once  sync.Once
	model *Model
	err   error
}

// PlanCache maps PlanKeys to compiled models. Lookups are cheap (one
// short critical section); compilation happens outside the map lock so a
// slow compile for one key never stalls hits on another.
type PlanCache struct {
	mu sync.Mutex
	m  map[PlanKey]*planEntry

	hits     atomic.Int64
	misses   atomic.Int64
	compiles atomic.Int64
}

// NewPlanCache returns an empty cache.
func NewPlanCache() *PlanCache {
	return &PlanCache{m: make(map[PlanKey]*planEntry)}
}

// Get returns the cached model for key, building it with build on first
// use. Concurrent callers with the same cold key trigger exactly one
// build; a failed build is cached too (the key stays poisoned — serving
// a config that cannot compile will not recompile per request).
func (pc *PlanCache) Get(key PlanKey, build func() (*Model, error)) (*Model, error) {
	pc.mu.Lock()
	e, ok := pc.m[key]
	if !ok {
		e = &planEntry{}
		pc.m[key] = e
	}
	pc.mu.Unlock()
	if ok {
		// The entry may still be mid-build; Do blocks until it settles,
		// which is exactly the warm-waiter behaviour we want.
		pc.hits.Add(1)
	} else {
		pc.misses.Add(1)
	}
	e.once.Do(func() {
		pc.compiles.Add(1)
		e.model, e.err = build()
	})
	return e.model, e.err
}

// Stats reports hit/miss/compile counters.
func (pc *PlanCache) Stats() (hits, misses, compiles int64) {
	return pc.hits.Load(), pc.misses.Load(), pc.compiles.Load()
}

// Len returns the number of cached keys (including failed builds).
func (pc *PlanCache) Len() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return len(pc.m)
}

package serve

import (
	"fmt"
	"sync"

	"seastar/internal/tensor"
)

// featPageRows is the number of vertex rows per copy-on-write feature
// page: a delta updating one vertex's features copies one page, not the
// whole [N, D] matrix.
const featPageRows = 256

// FeatStore is a paged, immutable vertex-feature matrix. A root store
// aliases the pages of an existing tensor; Apply builds a child that
// shares every clean page with its parent and copies only the pages
// holding updated (or newly added) rows. Like the chunked CSR, pages are
// never mutated after construction.
type FeatStore struct {
	n, d  int
	pages [][]float32 // page p covers rows [p*featPageRows, min((p+1)*featPageRows, n))

	root     *tensor.Tensor // non-nil when pages alias one backing tensor
	flatOnce sync.Once
	flat     *tensor.Tensor
}

// NewFeatStore wraps a dense [N, D] tensor without copying: pages alias
// slices of its backing array, and Flat returns the tensor itself.
func NewFeatStore(t *tensor.Tensor) *FeatStore {
	n, d := t.Rows(), t.Cols()
	fs := &FeatStore{n: n, d: d, root: t, flat: t}
	data := t.Data()
	for lo := 0; lo < n; lo += featPageRows {
		hi := lo + featPageRows
		if hi > n {
			hi = n
		}
		fs.pages = append(fs.pages, data[lo*d:hi*d:hi*d])
	}
	fs.flatOnce.Do(func() {})
	return fs
}

// NumRows returns the vertex count; Dim the feature width.
func (fs *FeatStore) NumRows() int { return fs.n }

// Dim returns the feature width.
func (fs *FeatStore) Dim() int { return fs.d }

// Row returns vertex v's feature row (a view; callers must not mutate).
func (fs *FeatStore) Row(v int32) []float32 {
	p, r := int(v)/featPageRows, int(v)%featPageRows
	return fs.pages[p][r*fs.d : (r+1)*fs.d]
}

// Gather copies the given rows into a fresh compact [len(idx), D] tensor.
func (fs *FeatStore) Gather(idx []int32) *tensor.Tensor {
	out := tensor.New(len(idx), fs.d)
	for i, v := range idx {
		copy(out.Row(i), fs.Row(v))
	}
	return out
}

// Flat materializes the dense [N, D] tensor, at most once. Root stores
// return their backing tensor with no copy.
func (fs *FeatStore) Flat() *tensor.Tensor {
	fs.flatOnce.Do(func() {
		t := tensor.New(fs.n, fs.d)
		data := t.Data()
		for p, page := range fs.pages {
			copy(data[p*featPageRows*fs.d:], page)
		}
		fs.flat = t
	})
	return fs.flat
}

// Apply builds the child store: updated rows land in freshly copied
// pages, addRows new zero rows extend the tail, and every untouched page
// is shared with the parent by pointer. Returns the child plus how many
// pages were shared versus copied (new tail pages count as copied).
func (fs *FeatStore) Apply(updates []FeatureUpdate, addRows int) (child *FeatStore, shared, copied int, err error) {
	newN := fs.n + addRows
	dirty := map[int]bool{}
	for _, u := range updates {
		if u.Node < 0 || int(u.Node) >= newN {
			return nil, 0, 0, fmt.Errorf("serve: feature update for node %d out of range [0,%d)", u.Node, newN)
		}
		if len(u.Row) != fs.d {
			return nil, 0, 0, fmt.Errorf("serve: feature update for node %d has dim %d, want %d", u.Node, len(u.Row), fs.d)
		}
		dirty[int(u.Node)/featPageRows] = true
	}
	nPages := (newN + featPageRows - 1) / featPageRows
	child = &FeatStore{n: newN, d: fs.d, pages: make([][]float32, nPages)}
	for p := 0; p < nPages; p++ {
		lo := p * featPageRows
		hi := lo + featPageRows
		if hi > newN {
			hi = newN
		}
		rows := hi - lo
		// A parent page is reusable only if it spans the same rows (the
		// old tail page grows when rows are added) and holds no update.
		if p < len(fs.pages) && len(fs.pages[p]) == rows*fs.d && !dirty[p] {
			child.pages[p] = fs.pages[p]
			shared++
			continue
		}
		page := make([]float32, rows*fs.d)
		if p < len(fs.pages) {
			copy(page, fs.pages[p]) // new rows past the copy stay zero
		}
		child.pages[p] = page
		copied++
	}
	for _, u := range updates {
		p, r := int(u.Node)/featPageRows, int(u.Node)%featPageRows
		copy(child.pages[p][r*fs.d:(r+1)*fs.d], u.Row)
	}
	return child, shared, copied, nil
}

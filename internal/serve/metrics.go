package serve

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// histBounds are the latency bucket upper bounds in seconds, log-spaced
// from 100µs to 10s — wide enough for both the in-process tests and a
// loaded server.
var histBounds = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// hist is a fixed-bucket, lock-free latency histogram in the Prometheus
// cumulative style.
type hist struct {
	buckets []atomic.Int64 // len(histBounds)+1, last is +Inf
	count   atomic.Int64
	sumNs   atomic.Int64
}

func newHist() *hist {
	return &hist{buckets: make([]atomic.Int64, len(histBounds)+1)}
}

// Observe records one duration.
func (h *hist) Observe(d time.Duration) {
	s := d.Seconds()
	i := 0
	for i < len(histBounds) && s > histBounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(int64(d))
}

// Totals returns the observation count and summed nanoseconds — the
// deltas the adaptive re-planner measures its trial windows from.
func (h *hist) Totals() (count, sumNs int64) {
	return h.count.Load(), h.sumNs.Load()
}

// write emits the histogram in Prometheus text exposition format.
func (h *hist) write(w io.Writer, name string) {
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	var cum int64
	for i, b := range histBounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, b, cum)
	}
	cum += h.buckets[len(histBounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, float64(h.sumNs.Load())/1e9)
	fmt.Fprintf(w, "%s_count %d\n", name, h.count.Load())
}

// Metrics aggregates the engine's counters and per-stage latency
// histograms. All fields are updated with atomics, so reading them while
// serving never blocks a request.
type Metrics struct {
	Received          atomic.Int64
	Admitted          atomic.Int64
	RejectedQueueFull atomic.Int64
	RejectedDraining  atomic.Int64
	Expired           atomic.Int64
	Failed            atomic.Int64
	Completed         atomic.Int64

	QueueDepth atomic.Int64 // gauge: requests admitted but not yet picked up

	Batches      atomic.Int64
	BatchedReqs  atomic.Int64
	GraphSwaps   atomic.Int64
	KernelTimeNs atomic.Int64 // simulated device time across all batches

	// Delta-path counters: applied deltas by embedding-recompute mode,
	// rejections (stale generation or invalid payload), and the current
	// generation gauge.
	Deltas            atomic.Int64
	DeltasIncremental atomic.Int64
	DeltasFull        atomic.Int64
	DeltasRejected    atomic.Int64
	Generation        atomic.Int64

	QueueWait    *hist // admission → batch pickup
	InferLatency *hist // batch pickup → response, per request
	TotalLatency *hist // admission → response, per request
	DeltaApply   *hist // ApplyDelta entry → child published
}

// NewMetrics returns a zeroed metrics block.
func NewMetrics() *Metrics {
	return &Metrics{
		QueueWait:    newHist(),
		InferLatency: newHist(),
		TotalLatency: newHist(),
		DeltaApply:   newHist(),
	}
}

// Write emits every metric in Prometheus text exposition format,
// including the plan-cache counters when pc is non-nil.
func (m *Metrics) Write(w io.Writer, pc *PlanCache) {
	g := func(name string, v int64) {
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, v)
	}
	g("seastar_serve_requests_received_total", m.Received.Load())
	g("seastar_serve_requests_admitted_total", m.Admitted.Load())
	g("seastar_serve_requests_rejected_queue_full_total", m.RejectedQueueFull.Load())
	g("seastar_serve_requests_rejected_draining_total", m.RejectedDraining.Load())
	g("seastar_serve_requests_expired_total", m.Expired.Load())
	g("seastar_serve_requests_failed_total", m.Failed.Load())
	g("seastar_serve_requests_completed_total", m.Completed.Load())
	g("seastar_serve_batches_total", m.Batches.Load())
	g("seastar_serve_batched_requests_total", m.BatchedReqs.Load())
	g("seastar_serve_graph_swaps_total", m.GraphSwaps.Load())
	g("seastar_serve_deltas_total", m.Deltas.Load())
	g("seastar_serve_deltas_incremental_total", m.DeltasIncremental.Load())
	g("seastar_serve_deltas_full_total", m.DeltasFull.Load())
	g("seastar_serve_deltas_rejected_total", m.DeltasRejected.Load())
	fmt.Fprintf(w, "# TYPE seastar_serve_generation gauge\nseastar_serve_generation %d\n",
		m.Generation.Load())
	fmt.Fprintf(w, "# TYPE seastar_serve_queue_depth gauge\nseastar_serve_queue_depth %d\n",
		m.QueueDepth.Load())
	fmt.Fprintf(w, "# TYPE seastar_serve_device_time_seconds counter\nseastar_serve_device_time_seconds %g\n",
		float64(m.KernelTimeNs.Load())/1e9)
	if pc != nil {
		hits, misses, compiles := pc.Stats()
		g("seastar_serve_plan_cache_hits_total", hits)
		g("seastar_serve_plan_cache_misses_total", misses)
		g("seastar_serve_plan_cache_compiles_total", compiles)
		fmt.Fprintf(w, "# TYPE seastar_serve_plan_cache_entries gauge\nseastar_serve_plan_cache_entries %d\n",
			pc.Len())
	}
	m.QueueWait.write(w, "seastar_serve_queue_wait_seconds")
	m.InferLatency.write(w, "seastar_serve_infer_latency_seconds")
	m.TotalLatency.write(w, "seastar_serve_total_latency_seconds")
	m.DeltaApply.write(w, "seastar_serve_delta_apply_seconds")
}

package serve

import (
	"encoding/json"
	"fmt"
	"io"

	"seastar/internal/obs"
)

// WriteMergedTrace writes one Chrome trace JSON combining the simulated
// device timeline of the last completed batch (pid 1, simulated
// nanoseconds) with the obs span tree of the whole process (pid
// obs.ChromePID, wall clock, one TID lane per batch) — the /debug/trace
// payload. Either side may be empty; the device track is nil before the
// first batch, and the obs track is empty unless tracing is enabled.
func (e *Engine) WriteMergedTrace(w io.Writer) error {
	var events []map[string]any
	if dev := e.LastTrace(); dev != nil {
		for _, r := range dev.Trace() {
			events = append(events, map[string]any{
				"name": r.Name,
				"cat":  "device",
				"ph":   "X",
				"ts":   r.StartNs / 1e3,
				"dur":  r.DurNs / 1e3,
				"pid":  1,
				"tid":  1,
				"args": map[string]string{
					"blocks":  fmt.Sprint(r.Blocks),
					"threads": fmt.Sprint(r.Threads),
					"loadB":   fmt.Sprint(r.LoadB),
					"storeB":  fmt.Sprint(r.StoreB),
					"sched":   r.Sched.String(),
				},
			})
		}
	}
	events = append(events, obs.ChromeEvents()...)
	if events == nil {
		events = []map[string]any{}
	}
	return json.NewEncoder(w).Encode(map[string]any{"traceEvents": events})
}

// hasTrace reports whether /debug/trace has anything to show.
func (e *Engine) hasTrace() bool {
	if e.LastTrace() != nil {
		return true
	}
	evs, _ := obs.Events()
	return len(evs) > 0
}

package serve

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"seastar/internal/adapt"
	"seastar/internal/device"
	"seastar/internal/obs"
	"seastar/internal/sampling"
	"seastar/internal/tensor"
)

// Sentinel errors mapped to HTTP statuses by the handler.
var (
	// ErrQueueFull means the bounded admission queue rejected the request
	// (backpressure; clients should retry with backoff).
	ErrQueueFull = errors.New("serve: admission queue full")
	// ErrDraining means the engine is shutting down and admits nothing.
	ErrDraining = errors.New("serve: engine draining")
	// ErrSampledDelta means graph deltas were sent to a sampled-serving
	// engine. Sampled inference re-draws neighbourhoods per request from
	// the snapshot it was planned against; patching that snapshot under a
	// live sampler would silently mix generations, so the combination is
	// refused outright.
	ErrSampledDelta = errors.New("serve: graph deltas require full-graph serving (engine is in sampled mode; restart without fan-out to apply deltas)")
)

// Config tunes the engine. Zero fields take the defaults documented on
// each.
type Config struct {
	// Spec selects and parameterizes the model.
	Spec ModelSpec
	// QueueDepth bounds the admission queue (default 256). Requests
	// arriving with the queue full are rejected with ErrQueueFull.
	QueueDepth int
	// MaxBatch caps how many queued requests one worker dispatch picks up
	// (default 8).
	MaxBatch int
	// BatchWindow is how long the batcher waits for a batch to fill after
	// the first request arrives (default 1ms).
	BatchWindow time.Duration
	// Workers bounds concurrently executing batches (default 4).
	Workers int
	// FanOut, when non-empty, switches to sampled-subgraph inference with
	// the given per-layer fan-out (homogeneous models only). Empty means
	// full-graph inference, where a batch computes one forward shared by
	// every request in it.
	FanOut []int
	// SampleSeed perturbs the deterministic per-request sampling seed.
	SampleSeed int64
	// DefaultTimeout applies to requests whose context has no deadline
	// (default 5s).
	DefaultTimeout time.Duration
	// Profile is the simulated device profile (default device.V100).
	Profile device.Profile

	// EmbedCache switches full-graph serving to cached embeddings: the
	// forward runs once per (snapshot, model) and every batch gathers
	// rows from the cached logits. Graph deltas then patch the cache
	// incrementally instead of recomputing it. Off by default — per-batch
	// forwards keep latency measurements meaningful for the adaptive
	// re-planner.
	EmbedCache bool
	// DeltaFrontierLimit is the dirty-frontier fraction of N above which
	// an incremental delta recompute falls back to one full forward
	// (default 0.05).
	DeltaFrontierLimit float64

	// Adapt enables the measured re-planning loop: a background tuner
	// trials micro-batch sizes against observed per-request latency and
	// swaps the batcher to a learned size on a sustained win (see
	// internal/adapt). Off by default.
	Adapt bool
	// AdaptPlanPath persists settled plans for warm restarts ("" keeps
	// learning in-memory only). A missing or corrupt file falls back to
	// the static plan and re-explores.
	AdaptPlanPath string
	// AdaptInterval is the measurement-window length per trial
	// (default 250ms).
	AdaptInterval time.Duration
	// AdaptConfig tunes exploration and hysteresis (zero fields take
	// the adapt package defaults: 3 trials/round, 2 rounds, 10% win).
	AdaptConfig adapt.Config
}

func (c *Config) withDefaults() error {
	if err := c.Spec.Validate(); err != nil {
		return err
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = time.Millisecond
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 5 * time.Second
	}
	if c.Profile.SMCount == 0 {
		c.Profile = device.V100
	}
	if c.DeltaFrontierLimit <= 0 {
		c.DeltaFrontierLimit = 0.05
	}
	if len(c.FanOut) > 0 {
		if c.Spec.Arch == "rgcn" {
			return fmt.Errorf("serve: sampled inference does not support rgcn (subgraphs drop edge types)")
		}
		for _, f := range c.FanOut {
			if f < 1 {
				return fmt.Errorf("serve: fan-out must be ≥ 1, got %d", f)
			}
		}
	}
	return nil
}

// Result is one answered inference request.
type Result struct {
	Nodes   []int32        // the requested vertices, as given
	Logits  *tensor.Tensor // [len(Nodes), classes]
	Classes []int          // argmax per node
	Gen     uint64         // snapshot generation the answer was computed on
}

type reply struct {
	res *Result
	err error
}

type request struct {
	ctx      context.Context
	nodes    []int32
	done     chan reply // buffered(1): workers never block responding
	admitted time.Time
	picked   time.Time
}

// published is the engine's atomically-swapped (snapshot, generation)
// pair: a batch that loads it sees a consistent view, and every answer
// reports the generation it was computed on.
type published struct {
	snap *Snapshot
	gen  uint64
}

// Engine is the concurrent inference engine: a bounded admission queue
// feeding a micro-batching dispatcher over a bounded worker pool, all
// reading one atomically-swappable graph snapshot.
type Engine struct {
	cfg   Config
	pub   atomic.Pointer[published]
	cache *PlanCache
	pool  *tensor.Pool
	met   *Metrics

	// deltaMu serializes publications (SwapGraph and ApplyDelta):
	// generation arithmetic must be check-and-swap atomic with respect to
	// other writers, while readers stay lock-free on pub.
	deltaMu sync.Mutex

	queue chan *request
	stop  chan struct{}
	sem   chan struct{}

	// maxBatch is the live micro-batch cap. It starts at cfg.MaxBatch
	// and is rewritten by the adaptive re-planner mid-flight, so the
	// batcher reads it atomically per batch.
	maxBatch atomic.Int64
	adaptSt  *adaptState

	admitMu   sync.RWMutex // guards enqueue vs. Close's no-new-senders barrier
	draining  atomic.Bool
	batcherWG sync.WaitGroup
	workerWG  sync.WaitGroup
	closeOnce sync.Once

	traceMu  sync.Mutex
	traceDev *device.Device // device of the most recently completed batch

	// batchSeq numbers batches; with obs tracing on it is the trace lane
	// (TID) per-request span trees group under in /debug/trace.
	batchSeq atomic.Int64
}

// New starts an engine serving snap with cfg. The returned engine has one
// batcher goroutine running; workers are spawned per batch, bounded by a
// semaphore. Close must be called to release them.
func New(cfg Config, snap *Snapshot) (*Engine, error) {
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	if snap == nil {
		return nil, fmt.Errorf("serve: nil snapshot")
	}
	if cfg.Spec.Arch == "rgcn" && !snap.typed() {
		return nil, fmt.Errorf("serve: rgcn requires a heterogeneous snapshot")
	}
	e := &Engine{
		cfg:   cfg,
		cache: NewPlanCache(),
		pool:  tensor.NewPool(),
		met:   NewMetrics(),
		queue: make(chan *request, cfg.QueueDepth),
		stop:  make(chan struct{}),
		sem:   make(chan struct{}, cfg.Workers),
	}
	e.pub.Store(&published{snap: snap, gen: 1})
	e.met.Generation.Store(1)
	e.maxBatch.Store(int64(cfg.MaxBatch))
	if cfg.Adapt {
		e.startAdapt(snap)
	}
	e.batcherWG.Add(1)
	go e.batcher()
	return e, nil
}

// Metrics exposes the engine's counters (read-only use expected).
func (e *Engine) Metrics() *Metrics { return e.met }

// Cache exposes the plan cache (for stats endpoints and tests).
func (e *Engine) Cache() *PlanCache { return e.cache }

// Snapshot returns the snapshot new batches will read.
func (e *Engine) Snapshot() *Snapshot { return e.pub.Load().snap }

// Generation returns the current snapshot generation. It starts at 1 and
// increments on every successful SwapGraph or ApplyDelta; deltas must
// address it (Delta.ParentGen) to publish.
func (e *Engine) Generation() uint64 { return e.pub.Load().gen }

// Draining reports whether Close has begun.
func (e *Engine) Draining() bool { return e.draining.Load() }

// Spec returns the serving model configuration.
func (e *Engine) Spec() ModelSpec { return e.cfg.Spec }

// LastTrace returns the device of the most recently completed batch, with
// its kernel trace, or nil before the first batch.
func (e *Engine) LastTrace() *device.Device {
	e.traceMu.Lock()
	defer e.traceMu.Unlock()
	return e.traceDev
}

// SwapGraph atomically publishes a new snapshot. Batches already running
// keep the snapshot they loaded; new batches see the new one. Plans for
// the new fingerprint compile lazily on first use.
func (e *Engine) SwapGraph(snap *Snapshot) error {
	if snap == nil {
		return fmt.Errorf("serve: nil snapshot")
	}
	if e.cfg.Spec.Arch == "rgcn" && !snap.typed() {
		return fmt.Errorf("serve: rgcn requires a heterogeneous snapshot")
	}
	e.deltaMu.Lock()
	gen := e.pub.Load().gen + 1
	e.pub.Store(&published{snap: snap, gen: gen})
	e.deltaMu.Unlock()
	e.met.GraphSwaps.Add(1)
	e.met.Generation.Store(int64(gen))
	return nil
}

// ApplyDelta applies one graph delta against the current generation and
// publishes the child snapshot. The delta must address the generation it
// was built against (ErrStaleGeneration otherwise) — the optimistic-
// concurrency handshake that makes concurrent writers safe. Batches
// already running keep the parent; the returned stats carry the new
// generation.
func (e *Engine) ApplyDelta(d *Delta) (*DeltaStats, error) {
	if d == nil {
		return nil, fmt.Errorf("serve: nil delta")
	}
	if len(e.cfg.FanOut) > 0 {
		e.met.DeltasRejected.Add(1)
		return nil, ErrSampledDelta
	}
	start := time.Now()
	e.deltaMu.Lock()
	defer e.deltaMu.Unlock()
	cur := e.pub.Load()
	if d.ParentGen != cur.gen {
		e.met.DeltasRejected.Add(1)
		return nil, fmt.Errorf("%w: delta addresses generation %d, engine is at %d",
			ErrStaleGeneration, d.ParentGen, cur.gen)
	}
	opt := &DeltaOptions{
		FrontierLimit: e.cfg.DeltaFrontierLimit,
		Profile:       e.cfg.Profile,
		Pool:          e.pool,
	}
	if e.cfg.EmbedCache && len(e.cfg.FanOut) == 0 {
		if m, err := e.model(cur.snap); err == nil {
			opt.Model = m
		}
	}
	child, st, err := ApplyDelta(cur.snap, d, opt)
	if err != nil {
		e.met.DeltasRejected.Add(1)
		return nil, err
	}
	gen := cur.gen + 1
	st.Gen = gen
	e.pub.Store(&published{snap: child, gen: gen})
	e.met.Deltas.Add(1)
	e.met.Generation.Store(int64(gen))
	switch st.Recompute {
	case "incremental":
		e.met.DeltasIncremental.Add(1)
	case "full":
		e.met.DeltasFull.Add(1)
	}
	e.met.DeltaApply.Observe(time.Since(start))
	if obs.Enabled() {
		obs.ObserveEvent("serve", "delta-apply", start, time.Since(start), int64(gen))
	}
	return st, nil
}

// Infer requests logits for the given vertices of the current snapshot.
// It blocks until the request is answered, its context expires, or
// admission is refused (ErrQueueFull / ErrDraining).
func (e *Engine) Infer(ctx context.Context, nodes []int32) (*Result, error) {
	e.met.Received.Add(1)
	if len(nodes) == 0 {
		return nil, fmt.Errorf("serve: no nodes requested")
	}
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.cfg.DefaultTimeout)
		defer cancel()
	}
	r := &request{ctx: ctx, nodes: nodes, done: make(chan reply, 1), admitted: time.Now()}

	e.admitMu.RLock()
	if e.draining.Load() {
		e.admitMu.RUnlock()
		e.met.RejectedDraining.Add(1)
		return nil, ErrDraining
	}
	select {
	case e.queue <- r:
		e.admitMu.RUnlock()
		e.met.Admitted.Add(1)
		e.met.QueueDepth.Add(1)
	default:
		e.admitMu.RUnlock()
		e.met.RejectedQueueFull.Add(1)
		return nil, ErrQueueFull
	}

	select {
	case rep := <-r.done:
		return rep.res, rep.err
	case <-ctx.Done():
		// The worker will still find the expired context and skip the
		// compute; the buffered done channel means it never blocks.
		e.met.Expired.Add(1)
		return nil, ctx.Err()
	}
}

// batcher pulls admitted requests and groups them into micro-batches: up
// to MaxBatch requests or BatchWindow after the first arrival, whichever
// comes first. On stop it flushes everything still queued (graceful
// drain) before exiting.
func (e *Engine) batcher() {
	defer e.batcherWG.Done()
	for {
		select {
		case first := <-e.queue:
			e.dispatch(e.collect(first))
		case <-e.stop:
			for {
				select {
				case r := <-e.queue:
					e.dispatch(e.collectNoWait(r))
				default:
					return
				}
			}
		}
	}
}

func (e *Engine) collect(first *request) []*request {
	batch := []*request{first}
	// One atomic read per batch: the adaptive re-planner may swap the
	// cap between batches, but a batch in progress keeps the cap it
	// started with.
	maxBatch := int(e.maxBatch.Load())
	if maxBatch <= 1 {
		return batch
	}
	timer := time.NewTimer(e.cfg.BatchWindow)
	defer timer.Stop()
	for len(batch) < maxBatch {
		select {
		case r := <-e.queue:
			batch = append(batch, r)
		case <-timer.C:
			return batch
		case <-e.stop:
			return batch
		}
	}
	return batch
}

func (e *Engine) collectNoWait(first *request) []*request {
	batch := []*request{first}
	maxBatch := int(e.maxBatch.Load())
	for len(batch) < maxBatch {
		select {
		case r := <-e.queue:
			batch = append(batch, r)
		default:
			return batch
		}
	}
	return batch
}

func (e *Engine) dispatch(batch []*request) {
	e.met.QueueDepth.Add(-int64(len(batch)))
	e.sem <- struct{}{} // bounds concurrent batches; blocks the batcher when all workers are busy
	e.workerWG.Add(1)
	go func() {
		defer func() {
			<-e.sem
			e.workerWG.Done()
		}()
		e.runBatch(batch)
	}()
}

// Close gracefully drains the engine: admission stops immediately,
// everything already admitted is served, and all engine goroutines have
// exited when Close returns. Safe to call more than once.
func (e *Engine) Close() {
	e.closeOnce.Do(func() {
		// Stop re-planning first so no plan swap or save races the
		// drain; stopAdapt blocks until the replanner goroutine exits.
		e.stopAdapt()
		e.draining.Store(true)
		// Barrier: after this Lock/Unlock no Infer can be mid-enqueue, so
		// the batcher's final flush observes every admitted request.
		e.admitMu.Lock()
		e.admitMu.Unlock() //nolint:staticcheck // empty critical section is the barrier
		close(e.stop)
		e.batcherWG.Wait()
		e.workerWG.Wait()
	})
}

// runBatch serves one micro-batch: resolve the snapshot once (swap
// isolation), get the plan from the cache (single compile per key), run
// the forward(s) on a fresh per-batch device, and answer every request.
func (e *Engine) runBatch(batch []*request) {
	picked := time.Now()
	bid := e.batchSeq.Add(1)
	e.met.Batches.Add(1)
	e.met.BatchedReqs.Add(int64(len(batch)))
	for _, r := range batch {
		r.picked = picked
		e.met.QueueWait.Observe(picked.Sub(r.admitted))
		if obs.Enabled() {
			obs.ObserveEvent("serve", "queue-wait", r.admitted, picked.Sub(r.admitted), bid)
		}
	}

	pub := e.pub.Load()
	snap := pub.snap
	model, err := e.model(snap)
	if err != nil {
		e.respondAll(batch, nil, err)
		return
	}

	dev := device.New(e.cfg.Profile)
	dev.EnableTrace()

	live := batch[:0:len(batch)]
	for _, r := range batch {
		if ctxErr := r.ctx.Err(); ctxErr != nil {
			r.done <- reply{err: ctxErr}
			continue
		}
		live = append(live, r)
	}

	inferStart := time.Now()
	if len(e.cfg.FanOut) == 0 {
		e.runFullBatch(live, pub, model, dev)
	} else {
		e.runSampledBatch(live, pub, model, dev)
	}
	if obs.Enabled() {
		obs.ObserveEvent("serve", "infer", inferStart, time.Since(inferStart), bid)
		obs.ObserveEvent("serve", "batch", picked, time.Since(picked), bid)
		obs.Add("serve", "batch", "requests", int64(len(batch)))
	}

	e.met.KernelTimeNs.Add(int64(dev.Elapsed()))
	e.traceMu.Lock()
	e.traceDev = dev
	e.traceMu.Unlock()
}

func (e *Engine) model(snap *Snapshot) (*Model, error) {
	key := PlanKey{Spec: e.cfg.Spec.Key(), InDim: snap.FeatDim(), NumRel: snap.numRelations()}
	return e.cache.Get(key, func() (*Model, error) {
		return BuildModel(e.cfg.Spec, snap.FeatDim(), snap.numRelations())
	})
}

// runFullBatch computes one full-graph forward shared by the whole batch
// and gathers each request's rows from it. Output depends only on
// (model, snapshot), never on batch composition, so concurrent execution
// is byte-identical to serial. With EmbedCache on, the forward runs at
// most once per snapshot (delta children arrive pre-patched) and batches
// only gather.
func (e *Engine) runFullBatch(batch []*request, pub *published, model *Model, dev *device.Device) {
	if len(batch) == 0 {
		return
	}
	snap := pub.snap
	var logits *tensor.Tensor
	var err error
	if e.cfg.EmbedCache {
		logits, err = snap.EnsureEmbeddings(model,
			&ForwardEnv{Dev: dev, Pool: e.pool})
	} else {
		g := snap.Graph()
		env := &ForwardEnv{G: g, Feat: snap.Features(), Dev: dev, Pool: e.pool}
		NormsFor(model.Spec.Arch, snap, g, env)
		logits, err = model.Forward(env)
	}
	if err != nil {
		e.respondAll(batch, nil, err)
		return
	}
	for _, r := range batch {
		if bad := checkNodes(r.nodes, snap.NumVertices()); bad != nil {
			e.respond(r, nil, bad)
			continue
		}
		e.respond(r, &Result{
			Nodes:  r.nodes,
			Logits: tensor.GatherRows(logits, r.nodes),
			Gen:    pub.gen,
		}, nil)
	}
}

// runSampledBatch serves each request from its own sampled subgraph. The
// sampler seed is a pure function of (snapshot, requested nodes, config
// seed), so a request's answer does not depend on which batch it landed
// in — concurrent and serial execution agree bit for bit.
func (e *Engine) runSampledBatch(batch []*request, pub *published, model *Model, dev *device.Device) {
	snap := pub.snap
	g := snap.Graph()
	feat := snap.Features()
	for _, r := range batch {
		if bad := checkNodes(r.nodes, snap.NumVertices()); bad != nil {
			e.respond(r, nil, bad)
			continue
		}
		s, err := sampling.NewSampler(g, e.cfg.FanOut, e.requestSeed(snap, r.nodes))
		if err != nil {
			e.respond(r, nil, err)
			continue
		}
		b, err := s.Sample(r.nodes)
		if err != nil {
			e.respond(r, nil, err)
			continue
		}
		sub := b.Sub.SortByDegree()
		env := &ForwardEnv{G: sub, Feat: b.GatherFeatures(feat), Dev: dev, Pool: e.pool}
		NormsFor(model.Spec.Arch, nil, sub, env)
		logits, err := model.Forward(env)
		if err != nil {
			e.respond(r, nil, err)
			continue
		}
		// Seeds occupy compact ids 0..SeedCount-1 in request order.
		seedRows := make([]int32, b.SeedCount)
		for i := range seedRows {
			seedRows[i] = int32(i)
		}
		e.respond(r, &Result{Nodes: r.nodes, Logits: tensor.GatherRows(logits, seedRows), Gen: pub.gen}, nil)
	}
}

func (e *Engine) requestSeed(snap *Snapshot, nodes []int32) int64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], snap.Fingerprint()^uint64(e.cfg.SampleSeed))
	h.Write(b[:])
	for _, v := range nodes {
		binary.LittleEndian.PutUint32(b[:4], uint32(v))
		h.Write(b[:4])
	}
	return int64(h.Sum64())
}

func (e *Engine) respond(r *request, res *Result, err error) {
	if err != nil {
		e.met.Failed.Add(1)
	} else {
		res.Classes = tensor.ArgMaxRows(res.Logits)
		e.met.Completed.Add(1)
		now := time.Now()
		if !r.picked.IsZero() {
			e.met.InferLatency.Observe(now.Sub(r.picked))
		}
		e.met.TotalLatency.Observe(now.Sub(r.admitted))
	}
	r.done <- reply{res: res, err: err}
}

func (e *Engine) respondAll(batch []*request, res *Result, err error) {
	for _, r := range batch {
		e.respond(r, res, err)
	}
}

func checkNodes(nodes []int32, n int) error {
	for _, v := range nodes {
		if v < 0 || int(v) >= n {
			return fmt.Errorf("serve: node %d out of range [0,%d)", v, n)
		}
	}
	return nil
}

package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"time"

	"seastar/internal/device"
	"seastar/internal/exec"
	"seastar/internal/graph"
	"seastar/internal/tensor"
)

// Sentinel errors of the delta path.
var (
	// ErrStaleGeneration means the delta's ParentGen does not match the
	// engine's current generation: another delta or swap won the race.
	// Clients should refetch the generation and rebase.
	ErrStaleGeneration = errors.New("serve: delta parent generation is stale")
	// ErrDeltaUnsupported means the snapshot cannot take deltas
	// (heterogeneous R-GCN graphs carry per-edge types the chunked CSR
	// does not track).
	ErrDeltaUnsupported = errors.New("serve: snapshot does not support deltas")
)

// FeatureUpdate replaces one vertex's feature row.
type FeatureUpdate struct {
	Node int32     `json:"node"`
	Row  []float32 `json:"row"`
}

// Delta is one batch of graph mutations addressed at a parent generation.
// Structural fields follow graph.Delta semantics (removals apply first,
// vertex removal isolates); Features then overwrites rows of the child —
// including rows of vertices added by this same delta.
type Delta struct {
	ParentGen      uint64          `json:"parent_gen"`
	AddVertices    int             `json:"add_vertices,omitempty"`
	RemoveVertices []int32         `json:"remove_vertices,omitempty"`
	AddEdges       []graph.Edge    `json:"add_edges,omitempty"`
	RemoveEdges    []graph.Edge    `json:"remove_edges,omitempty"`
	Features       []FeatureUpdate `json:"features,omitempty"`
}

// DeltaOptions steers the embedding recompute of ApplyDelta. A nil
// options (or nil Model) skips embedding work entirely.
type DeltaOptions struct {
	// Model whose cached embeddings should carry over to the child.
	Model *Model
	// FrontierLimit is the dirty-frontier fraction of N above which the
	// incremental patch falls back to a full forward (default 0.05; ≥1
	// effectively never falls back).
	FrontierLimit float64
	// Profile is the simulated device the recompute charges.
	Profile device.Profile
	// Pool recycles intermediate tensors.
	Pool *tensor.Pool
}

// DeltaStats reports what one ApplyDelta did.
type DeltaStats struct {
	Gen         uint64 `json:"gen"` // filled by the engine on publish
	Fingerprint uint64 `json:"-"`
	N           int    `json:"n"`
	M           int    `json:"m"`
	// Touched counts the seed vertices (structural endpoints plus feature
	// updates); Frontier the k-hop dirty set actually recomputed.
	Touched  int `json:"touched"`
	Frontier int `json:"frontier"`
	// Recompute is how embeddings carried over: "incremental" (k-hop
	// patch), "full" (frontier too large or kernel dispatch unstable),
	// "deferred" (no settled parent state to patch; first batch pays),
	// or "none" (embedding cache not in use).
	Recompute string `json:"recompute"`
	// Structural-sharing counters.
	SharedChunks, CopiedChunks, RemappedChunks int
	SharedPages, CopiedPages                   int
	ApplyNs, RecomputeNs                       int64
}

// ApplyDelta builds the child snapshot for delta d: chunked-CSR apply
// (clean chunks shared), paged feature apply (clean pages shared),
// copy-on-write patches of every normalizer the parent had computed, and
// — when opt.Model has settled cached embeddings — an incremental
// recompute of only the dirty k-hop frontier, bitwise-identical to a full
// forward on the child. Generation arithmetic (ParentGen) is the
// engine's job; this function is pure snapshot → snapshot.
func ApplyDelta(parent *Snapshot, d *Delta, opt *DeltaOptions) (*Snapshot, *DeltaStats, error) {
	if parent.typed() {
		return nil, nil, ErrDeltaUnsupported
	}
	start := time.Now()
	pdg, err := parent.deltaGraph()
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrDeltaUnsupported, err)
	}
	gd := graph.Delta{
		AddVertices:    d.AddVertices,
		RemoveVertices: d.RemoveVertices,
		AddEdges:       d.AddEdges,
		RemoveEdges:    d.RemoveEdges,
	}
	ndg, ast, err := pdg.Apply(&gd)
	if err != nil {
		return nil, nil, err
	}
	nfs, sharedP, copiedP, err := parent.featStore().Apply(d.Features, d.AddVertices)
	if err != nil {
		return nil, nil, err
	}

	child := &Snapshot{
		n: ndg.N(), d: nfs.Dim(), numRel: 1,
		dg: ndg, fs: nfs,
		fp: chainFingerprint(parent.fp, d),
	}
	patchNorms(parent, child, ast.Touched)

	st := &DeltaStats{
		Fingerprint: child.fp,
		N:           child.n, M: ndg.M(),
		Recompute:      "none",
		SharedChunks:   ast.SharedChunks,
		CopiedChunks:   ast.CopiedChunks,
		RemappedChunks: ast.RemappedChunks,
		SharedPages:    sharedP,
		CopiedPages:    copiedP,
	}
	seed := seedSet(parent.n, ast.Touched, d.Features)
	st.Touched = len(seed)
	st.ApplyNs = time.Since(start).Nanoseconds()

	if opt != nil && opt.Model != nil {
		rstart := time.Now()
		st.Recompute = recomputeEmbeddings(parent, child, d, opt, seed, st)
		st.RecomputeNs = time.Since(rstart).Nanoseconds()
	}
	return child, st, nil
}

// seedSet is the sorted union of structurally touched vertices and
// feature-updated vertices — the 0-hop dirty set.
func seedSet(parentN int, touched []int32, ups []FeatureUpdate) []int32 {
	if len(ups) == 0 {
		return touched
	}
	set := make(map[int32]bool, len(touched)+len(ups))
	for _, v := range touched {
		set[v] = true
	}
	for _, u := range ups {
		set[u.Node] = true
	}
	out := make([]int32, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// recomputeEmbeddings carries the model's cached embeddings from parent
// to child and returns the mode used.
func recomputeEmbeddings(parent, child *Snapshot, d *Delta, opt *DeltaOptions, seed []int32, st *DeltaStats) string {
	m := opt.Model
	key := m.planKey()
	ps := parent.embedPeek(key)
	if ps == nil {
		// Nothing settled to patch: leave the slot cold; the first batch
		// on the child computes (and caches) the full forward lazily.
		return "deferred"
	}
	limit := opt.FrontierLimit
	if limit <= 0 {
		limit = 0.05
	}
	maxDirty := int(limit * float64(child.n))

	full := func() string {
		env := &ForwardEnv{Dev: device.New(opt.Profile), Pool: opt.Pool}
		if _, err := child.EnsureEmbeddings(m, env); err != nil {
			return "deferred" // failed builds stay visible to the serving path
		}
		return "full"
	}

	if !m.SupportsIncremental() || !kernelStable(m, parent.n, child.n) {
		return full()
	}
	d1 := child.dg.ExpandOut(seed)
	if len(d1) > maxDirty {
		st.Frontier = len(d1)
		return full()
	}
	d2 := child.dg.ExpandOut(d1)
	st.Frontier = len(d2)
	if len(d2) > maxDirty {
		return full()
	}
	fd := featDirty(parent.n, child.n, d.Features)
	var cs *embedState
	switch m.Spec.Arch {
	case "gcn":
		cs = patchGCN(m, parent, child, ps, fd, d1, d2, opt)
	case "gat":
		cs = patchGAT(m, parent, child, ps, fd, d1, d2, opt)
	}
	if cs == nil {
		return full()
	}
	child.seedEmbeddings(key, cs)
	return "incremental"
}

// kernelStable reports whether every dense product of the model keeps its
// MatMul dispatch path across the parent→child row-count change; cached
// rows are only bitwise-valid in the child when it does.
func kernelStable(m *Model, pn, cn int) bool {
	h, c := m.Spec.Hidden, m.Spec.Classes
	switch m.Spec.Arch {
	case "gcn":
		return tensor.MatMulSameKernel(pn, cn, m.InDim, h) &&
			tensor.MatMulSameKernel(pn, cn, h, c)
	case "gat":
		return tensor.MatMulSameKernel(pn, cn, m.InDim, h) &&
			tensor.MatMulSameKernel(pn, cn, h, 1) &&
			tensor.MatMulSameKernel(pn, cn, h, c) &&
			tensor.MatMulSameKernel(pn, cn, c, 1)
	}
	return false
}

// featDirty is the sorted set of rows whose raw features differ from the
// parent: explicit updates plus vertices created by this delta (their
// rows are fresh zeros the parent never had, so their dense products must
// be materialized even though they compute to zero-times-weight).
func featDirty(parentN, childN int, ups []FeatureUpdate) []int32 {
	set := make(map[int32]bool, len(ups)+childN-parentN)
	for _, u := range ups {
		set[u.Node] = true
	}
	for v := parentN; v < childN; v++ {
		set[int32(v)] = true
	}
	out := make([]int32, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// patchRows builds the child-size copy of a cached [parentN, C] tensor
// with the given rows overwritten by vals ([len(rows), C]). Rows past the
// parent start zero (new vertices must therefore always be in rows). With
// nothing to change and no growth, the parent tensor is shared as-is.
func patchRows(parent *tensor.Tensor, newN int, rows []int32, vals *tensor.Tensor) *tensor.Tensor {
	if len(rows) == 0 && parent.Rows() == newN {
		return parent
	}
	c := parent.Cols()
	out := tensor.New(newN, c)
	copy(out.Data(), parent.Data())
	for i, v := range rows {
		copy(out.Row(int(v)), vals.Row(i))
	}
	return out
}

// dirtyRowsGraph builds a row-subset view of the child's in-CSR: one row
// per dirty vertex, each keeping its FULL in-list in CSR slot order, with
// RowIDs carrying the original vertex ids. The compiled plan then reads
// its row and neighbour inputs from — and writes its outputs to —
// full-graph tensors directly, so no compact-id remapping, no input
// gathers and no out-CSR build happen on the hot path; per-row folds see
// exactly the neighbour values and order the full graph would, which is
// what keeps the patch bitwise. Edge ids renumber sequentially so
// per-edge intermediates stay subgraph-sized.
func dirtyRowsGraph(dg *graph.DeltaGraph, dirty []int32) *graph.Graph {
	in := dg.In()
	m := 0
	for _, v := range dirty {
		m += in.Degree(v)
	}
	csr := graph.CSR{
		Offsets: make([]int64, len(dirty)+1),
		Nbrs:    make([]int32, 0, m),
		EdgeIDs: make([]int32, m),
		RowIDs:  make([]int32, len(dirty)),
	}
	for r, v := range dirty {
		csr.RowIDs[r] = v
		nbrs, _ := in.Row(v)
		csr.Nbrs = append(csr.Nbrs, nbrs...)
		csr.Offsets[r+1] = csr.Offsets[r] + int64(len(nbrs))
	}
	for i := range csr.EdgeIDs {
		csr.EdgeIDs[i] = int32(i)
	}
	return &graph.Graph{N: in.NumRows(), M: m, In: csr, NumEdgeTypes: 1}
}

// runAggPlan executes one aggregation plan over the dirty rows only,
// feeding the full-graph input tensors unmapped, and returns the dirty
// rows' outputs (row i of the result is dirty[i]).
func runAggPlan(plan *exec.CompiledUDF, dg *graph.DeltaGraph, dirty []int32,
	inputs map[string]*tensor.Tensor, opt *DeltaOptions) (*tensor.Tensor, error) {
	sub := dirtyRowsGraph(dg, dirty)
	ie := &exec.InferEnv{G: sub, Dev: device.New(opt.Profile), Pool: opt.Pool}
	out, err := plan.Infer(ie, inputs, nil, nil)
	if err != nil {
		return nil, err
	}
	return tensor.GatherRows(out, dirty), nil
}

// patchGCN rebuilds the child's GCN embedding state from the parent's,
// recomputing only dirty rows: feature-dirty rows of the dense products
// (via MatMulRowsLike, bitwise-identical to full-size rows), the 1-hop
// frontier of layer 1 and the 2-hop frontier of layer 2 via the
// aggregation plans on induced subgraphs. Returns nil on any failure
// (caller falls back to a full forward).
func patchGCN(m *Model, parent, child *Snapshot, ps *embedState, fd, d1, d2 []int32, opt *DeltaOptions) *embedState {
	n := child.n
	norm := child.Norm()
	w1, b1 := m.weights["W1"], m.weights["b1"]
	w2, b2 := m.weights["W2"], m.weights["b2"]

	hw1 := patchRows(ps.aux["hw1"], n, fd, tensor.MatMulRowsLike(child.fs.Gather(fd), w1, n))
	agg1, err := runAggPlan(m.plans[0], child.dg, d1, map[string]*tensor.Tensor{"hw": hw1, "norm": norm}, opt)
	if err != nil {
		return nil
	}
	h1rows := tensor.Sigmoid(tensor.AddRow(agg1, b1))
	h1 := patchRows(ps.aux["h1"], n, d1, h1rows)
	hw2 := patchRows(ps.aux["hw2"], n, d1, tensor.MatMulRowsLike(h1rows, w2, n))
	agg2, err := runAggPlan(m.plans[1], child.dg, d2, map[string]*tensor.Tensor{"hw": hw2, "norm": norm}, opt)
	if err != nil {
		return nil
	}
	logits := patchRows(ps.logits, n, d2, tensor.AddRow(agg2, b2))
	return &embedState{
		logits: logits,
		aux:    map[string]*tensor.Tensor{"hw1": hw1, "h1": h1, "hw2": hw2},
	}
}

// patchGAT is patchGCN's GAT counterpart: per layer the dense hw/eu/ev
// row patches, then the attention aggregation plan over the induced
// subgraph of the layer's dirty frontier.
func patchGAT(m *Model, parent, child *Snapshot, ps *embedState, fd, d1, d2 []int32, opt *DeltaOptions) *embedState {
	n := child.n

	hw1rows := tensor.MatMulRowsLike(child.fs.Gather(fd), m.weights["W1"], n)
	hw1 := patchRows(ps.aux["hw1"], n, fd, hw1rows)
	eu1 := patchRows(ps.aux["eu1"], n, fd, tensor.MatMulRowsLike(hw1rows, m.weights["aU1"], n))
	ev1 := patchRows(ps.aux["ev1"], n, fd, tensor.MatMulRowsLike(hw1rows, m.weights["aV1"], n))
	agg1, err := runAggPlan(m.plans[0], child.dg, d1,
		map[string]*tensor.Tensor{"eu": eu1, "ev": ev1, "h": hw1}, opt)
	if err != nil {
		return nil
	}
	h1rows := tensor.ReLU(agg1)
	h1 := patchRows(ps.aux["h1"], n, d1, h1rows)
	hw2rows := tensor.MatMulRowsLike(h1rows, m.weights["W2"], n)
	hw2 := patchRows(ps.aux["hw2"], n, d1, hw2rows)
	eu2 := patchRows(ps.aux["eu2"], n, d1, tensor.MatMulRowsLike(hw2rows, m.weights["aU2"], n))
	ev2 := patchRows(ps.aux["ev2"], n, d1, tensor.MatMulRowsLike(hw2rows, m.weights["aV2"], n))
	agg2, err := runAggPlan(m.plans[1], child.dg, d2,
		map[string]*tensor.Tensor{"eu": eu2, "ev": ev2, "h": hw2}, opt)
	if err != nil {
		return nil
	}
	logits := patchRows(ps.logits, n, d2, agg2)
	return &embedState{
		logits: logits,
		aux: map[string]*tensor.Tensor{
			"hw1": hw1, "eu1": eu1, "ev1": ev1, "h1": h1,
			"hw2": hw2, "eu2": eu2, "ev2": ev2,
		},
	}
}

// patchNorms carries every normalizer the parent had already computed to
// the child, recomputing only the touched vertices' entries (degree
// changes) — bitwise-identical to computing the child's normalizers from
// scratch, since the per-vertex formula is shared.
func patchNorms(parent, child *Snapshot, touched []int32) {
	pn, psrc, pdst := parent.normPeek()
	if pn != nil {
		indeg := child.dg.In()
		norm := tensor.New(child.n, 1)
		copy(norm.Data(), pn.Data())
		for _, v := range touched {
			if d := indeg.Degree(v); d > 0 {
				norm.Set(int(v), 0, 1/float32(d))
			} else {
				norm.Set(int(v), 0, 0)
			}
		}
		child.norm = norm
	}
	if psrc != nil {
		child.symSrc = patchSymNorm(psrc, child.dg.Out(), child.n, touched)
		child.symDst = patchSymNorm(pdst, child.dg.In(), child.n, touched)
	}
}

func patchSymNorm(parent *tensor.Tensor, csr *graph.ChunkedCSR, n int, touched []int32) *tensor.Tensor {
	out := tensor.New(n, 1)
	copy(out.Data(), parent.Data())
	for _, v := range touched {
		if d := csr.Degree(v); d > 0 {
			out.Set(int(v), 0, float32(1/math.Sqrt(float64(d))))
		} else {
			out.Set(int(v), 0, 0)
		}
	}
	return out
}

// chainFingerprint derives the child fingerprint from the parent's plus
// the full delta payload, so fingerprints stay unique and deterministic
// along any delta chain without rehashing the whole graph.
func chainFingerprint(parent uint64, d *Delta) uint64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], parent)
	h.Write(b[:])
	w32 := func(v int32) {
		binary.LittleEndian.PutUint32(b[:4], uint32(v))
		h.Write(b[:4])
	}
	w32(int32(d.AddVertices))
	w32(int32(len(d.RemoveVertices)))
	for _, v := range d.RemoveVertices {
		w32(v)
	}
	w32(int32(len(d.AddEdges)))
	for _, e := range d.AddEdges {
		w32(e.Src)
		w32(e.Dst)
	}
	w32(int32(len(d.RemoveEdges)))
	for _, e := range d.RemoveEdges {
		w32(e.Src)
		w32(e.Dst)
	}
	w32(int32(len(d.Features)))
	for _, u := range d.Features {
		w32(u.Node)
		for _, x := range u.Row {
			binary.LittleEndian.PutUint32(b[:4], math.Float32bits(x))
			h.Write(b[:4])
		}
	}
	return h.Sum64()
}

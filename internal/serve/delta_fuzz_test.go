package serve_test

import (
	"math/rand"
	"sync"
	"testing"

	"seastar/internal/device"
	"seastar/internal/graph"
	"seastar/internal/serve"
)

// fuzzModel compiles the one model every fuzz iteration shares (the spec
// is fixed; compilation is the expensive part).
var fuzzModel = sync.OnceValues(func() (*serve.Model, error) {
	return serve.BuildModel(serve.ModelSpec{Arch: "gcn", Hidden: 8, Classes: 3, Seed: 3}, 8, 1)
})

// byteFeed drains the fuzz input as a bounded op stream.
type byteFeed struct {
	data []byte
	pos  int
}

func (b *byteFeed) next() (byte, bool) {
	if b.pos >= len(b.data) {
		return 0, false
	}
	v := b.data[b.pos]
	b.pos++
	return v, true
}

// deltaFromBytes decodes one valid delta against the mirror's current
// state, or nil when the feed is exhausted. Every construction is
// range-checked against the mirror so the delta is always applicable —
// the fuzzer explores delta *content*, not input validation (the error
// table covers that).
func deltaFromBytes(feed *byteFeed, m *deltaMirror) *serve.Delta {
	op, ok := feed.next()
	if !ok {
		return nil
	}
	d := &serve.Delta{}
	d.AddVertices = int(op % 4)
	removedV := map[int32]bool{}
	if b, ok := feed.next(); ok && b%3 == 0 && m.n > 8 {
		v := int32(int(b) % m.n)
		d.RemoveVertices = []int32{v}
		removedV[v] = true
	}
	if b, ok := feed.next(); ok {
		seen := map[graph.Edge]bool{}
		for k := int(b % 3); k > 0 && len(m.edges) > 0; k-- {
			lo, ok := feed.next()
			if !ok {
				break
			}
			hi, _ := feed.next()
			e := m.edges[(int(hi)<<8|int(lo))%len(m.edges)]
			if seen[e] || removedV[e.Src] || removedV[e.Dst] {
				continue
			}
			seen[e] = true
			d.RemoveEdges = append(d.RemoveEdges, e)
		}
	}
	newN := m.n + d.AddVertices
	if b, ok := feed.next(); ok {
		for k := 1 + int(b%4); k > 0; k-- {
			s, ok := feed.next()
			if !ok {
				break
			}
			t, ok := feed.next()
			if !ok {
				break
			}
			d.AddEdges = append(d.AddEdges, graph.Edge{
				Src: int32(int(s) % newN), Dst: int32(int(t) % newN),
			})
		}
	}
	if b, ok := feed.next(); ok {
		for k := int(b % 3); k > 0; k-- {
			node, ok := feed.next()
			if !ok {
				break
			}
			row := make([]float32, m.d)
			for j := range row {
				v, _ := feed.next()
				row[j] = float32(int8(v)) / 16
			}
			d.Features = append(d.Features, serve.FeatureUpdate{
				Node: int32(int(node) % newN), Row: row,
			})
		}
	}
	return d
}

// FuzzDeltaEquivalence is the differential delta fuzzer: an arbitrary
// byte string decodes to a stream of valid deltas; after each one, the
// structurally-shared child must be byte-identical to a rebuild from
// scratch (flattened CSRs, edge list) and its incrementally patched
// embeddings bitwise-equal to the full forward on the rebuilt graph.
func FuzzDeltaEquivalence(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 2, 7, 9, 3, 1, 2, 3, 4, 1, 5, 10, 20, 30, 40, 50, 60, 70, 80})
	f.Add([]byte{0, 3, 0, 2, 200, 1, 100, 2, 2, 11, 12, 13, 14, 2, 9,
		1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Add([]byte{3, 1, 1, 255, 255, 3, 55, 56, 57, 58, 59, 60, 1, 61,
		128, 129, 130, 131, 132, 133, 134, 135, 0, 2, 2, 0, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		model, err := fuzzModel()
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(11))
		mir := newDeltaMirror(rng, 60, 8, 240)
		snap, err := serve.NewSnapshot(mir.graph(t), mir.featTensor())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := snap.EnsureEmbeddings(model, &serve.ForwardEnv{Dev: device.New(device.V100)}); err != nil {
			t.Fatal(err)
		}
		opt := &serve.DeltaOptions{Model: model, FrontierLimit: 1.0, Profile: device.V100}

		feed := &byteFeed{data: data}
		for step := 0; step < 3; step++ {
			d := deltaFromBytes(feed, mir)
			if d == nil {
				break
			}
			child, st, err := serve.ApplyDelta(snap, d, opt)
			if err != nil {
				t.Fatalf("step %d: apply: %v", step, err)
			}
			mir.apply(d)
			requireGraphEqual(t, child.Graph(), mir.graph(t))
			got, err := child.EnsureEmbeddings(model, &serve.ForwardEnv{Dev: device.New(device.V100)})
			if err != nil {
				t.Fatal(err)
			}
			if scratch := mir.scratchLogits(t, model); !sameTensorBits(got, scratch) {
				t.Fatalf("step %d (%s): incremental logits diverge from rebuild-from-scratch",
					step, st.Recompute)
			}
			snap = child
		}
	})
}

// Package core is the user-facing Seastar system: a Session that owns a
// simulated GPU and a DL-backend engine, compiles vertex-centric programs
// (trace → graph-typed IR → autodiff → seastar fusion → kernel
// generation), and applies them to graphs as autograd operations. It is
// the paper's primary contribution assembled from the lower layers; the
// repository-root package re-exports this API.
package core

import (
	"fmt"

	"seastar/internal/device"
	"seastar/internal/exec"
	"seastar/internal/gir"
	"seastar/internal/graph"
	"seastar/internal/kernels"
	"seastar/internal/nn"
	"seastar/internal/tensor"
)

// Option configures a Session.
type Option func(*config) error

type config struct {
	profile    device.Profile
	workScale  float64
	degreeSort bool
}

// WithGPU selects the simulated GPU by name ("V100", "2080Ti", "1080Ti").
func WithGPU(name string) Option {
	return func(c *config) error {
		p, ok := device.ProfileByName(name)
		if !ok {
			return fmt.Errorf("core: unknown GPU %q", name)
		}
		c.profile = p
		return nil
	}
}

// WithWorkScale declares that graphs in this session are instantiated at
// the given fraction of full scale; simulated time and memory are
// extrapolated accordingly.
func WithWorkScale(s float64) Option {
	return func(c *config) error {
		if s <= 0 || s > 1 {
			return fmt.Errorf("core: work scale %v out of (0,1]", s)
		}
		c.workScale = s
		return nil
	}
}

// WithDegreeSort controls the §6.3.3 preprocessing applied by SetGraph:
// when on (the default), CSR rows are reordered by descending degree so
// the CPU partitioner and the simulated GPU scheduler see balanced work.
// Turning it off runs graphs in their raw edge order, for ablations.
func WithDegreeSort(on bool) Option {
	return func(c *config) error {
		c.degreeSort = on
		return nil
	}
}

// Session owns the simulated device and the autograd engine. Programs are
// compiled against a session and applied to a graph set with SetGraph.
type Session struct {
	Dev    *device.Device
	Engine *nn.Engine

	g          *graph.Graph
	rt         *exec.Runtime
	degreeSort bool
}

// NewSession creates a session (default: V100, full work scale).
func NewSession(opts ...Option) (*Session, error) {
	c := config{profile: device.V100, workScale: 1, degreeSort: true}
	for _, o := range opts {
		if err := o(&c); err != nil {
			return nil, err
		}
	}
	dev := device.NewScaled(c.profile, c.workScale)
	return &Session{Dev: dev, Engine: nn.NewEngine(dev), degreeSort: c.degreeSort}, nil
}

// SetGraph installs the graph all subsequent Apply calls run over. Unless
// disabled with WithDegreeSort(false) the graph is degree-sorted (§6.3.3);
// its structure is charged to device memory (§6.1) and vertex ids are
// unchanged thanks to row-id indirection.
func (s *Session) SetGraph(g *graph.Graph) error {
	if s.degreeSort {
		g = g.SortByDegree()
	}
	if _, err := s.Dev.Alloc(g.DeviceBytes()); err != nil {
		return err
	}
	s.g = g
	s.rt = exec.NewRuntime(s.Engine, g)
	return nil
}

// Graph returns the session's (degree-sorted) graph.
func (s *Session) Graph() *graph.Graph { return s.g }

// KernelConfig overrides the kernel strategy (the Figure-12 variants);
// the default is the full Seastar design.
func (s *Session) KernelConfig(cfg kernels.Config) error {
	if s.rt == nil {
		return fmt.Errorf("core: SetGraph before KernelConfig")
	}
	s.rt.Cfg = cfg
	return nil
}

// Input registers a non-trainable tensor (features, normalizers) resident
// on the device for the whole session.
func (s *Session) Input(t *tensor.Tensor, name string) *nn.Variable {
	return s.Engine.Input(t, name)
}

// Param registers a trainable parameter.
func (s *Session) Param(t *tensor.Tensor, name string) *nn.Variable {
	return s.Engine.Param(t, name)
}

// Program is a compiled vertex-centric program: both passes fused,
// optimized, and cached — the paper's @Seastar.compile result.
type Program struct {
	s *Session
	c *exec.CompiledUDF
}

// Compile traces the vertex-centric UDF produced by setup and lowers it.
// setup receives the tracer and returns the UDF, registering features and
// parameters on the way — the Go analogue of the paper's decorator plus
// v_feature dictionary:
//
//	prog, err := sess.Compile(func(b *seastar.Builder) seastar.UDF {
//	    b.VFeature("h", 16)
//	    b.VFeature("norm", 1)
//	    W := b.Param("W", 16, 8)
//	    return func(v *seastar.Vertex) *seastar.Value {
//	        return v.Nbr("h").MatMul(W).Mul(v.Nbr("norm")).AggSum()
//	    }
//	})
func (s *Session) Compile(setup func(b *gir.Builder) gir.UDF) (*Program, error) {
	b := gir.NewBuilder()
	udf := setup(b)
	dag, err := b.Build(udf)
	if err != nil {
		return nil, err
	}
	c, err := exec.Compile(dag)
	if err != nil {
		return nil, err
	}
	return &Program{s: s, c: c}, nil
}

// Apply executes the program over the session graph as one autograd
// operation, returning the per-vertex output variable.
func (p *Program) Apply(vfeat, efeat, params map[string]*nn.Variable) (*nn.Variable, error) {
	if p.s.rt == nil {
		return nil, fmt.Errorf("core: SetGraph before Apply")
	}
	return p.c.Apply(p.s.rt, vfeat, efeat, params)
}

// Inputs lists the program's required inputs in autograd order.
func (p *Program) Inputs() []exec.InputSpec { return p.c.Inputs }

// ForwardIR renders the optimized forward GIR (for inspection).
func (p *Program) ForwardIR() string { return p.c.Fwd.String() }

// BackwardIR renders the optimized backward GIR.
func (p *Program) BackwardIR() string { return p.c.Grads.DAG.String() }

// PlanSummary describes the execution units of both passes — which
// operators fused into which kernels (the Figure-6 boxes).
func (p *Program) PlanSummary() string {
	out := "forward units:\n"
	for _, u := range p.c.FwdPlan.Units {
		out += "  " + u.String() + "\n"
	}
	out += "backward units:\n"
	for _, u := range p.c.BwdPlan.Units {
		out += "  " + u.String() + "\n"
	}
	return out
}

// EndIteration frees iteration-scoped device memory and resets the tape.
func (s *Session) EndIteration() { s.Engine.EndIteration() }

package core

import (
	"math/rand"
	"strings"
	"testing"

	"seastar/internal/device"
	"seastar/internal/gir"
	"seastar/internal/graph"
	"seastar/internal/kernels"
	"seastar/internal/nn"
	"seastar/internal/tensor"
)

func gcnSetup(b *gir.Builder) gir.UDF {
	b.VFeature("h", 4)
	b.VFeature("norm", 1)
	W := b.Param("W", 4, 2)
	return func(v *gir.Vertex) *gir.Value {
		return v.Nbr("h").MatMul(W).Mul(v.Nbr("norm")).AggSum()
	}
}

func TestSessionDefaults(t *testing.T) {
	s, err := NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if s.Dev.Profile.Name != "V100" || s.Dev.WorkScale != 1 {
		t.Fatalf("defaults: %s scale %v", s.Dev.Profile.Name, s.Dev.WorkScale)
	}
}

func TestSessionOptions(t *testing.T) {
	s, err := NewSession(WithGPU("1080Ti"), WithWorkScale(0.25))
	if err != nil {
		t.Fatal(err)
	}
	if s.Dev.Profile.Name != "1080Ti" || s.Dev.WorkScale != 0.25 {
		t.Fatalf("options not applied: %+v", s.Dev)
	}
	if _, err := NewSession(WithGPU("TPU")); err == nil {
		t.Fatal("bad GPU accepted")
	}
	if _, err := NewSession(WithWorkScale(2)); err == nil {
		t.Fatal("bad scale accepted")
	}
}

func TestSetGraphChargesAndSorts(t *testing.T) {
	s, _ := NewSession()
	rng := rand.New(rand.NewSource(1))
	g := graph.PowerLaw(rng, 100, 4)
	before := s.Dev.CurrentBytes()
	if err := s.SetGraph(g); err != nil {
		t.Fatal(err)
	}
	if s.Dev.CurrentBytes() <= before {
		t.Fatal("graph structure not charged to device memory")
	}
	if !s.Graph().In.Sorted {
		t.Fatal("SetGraph must degree-sort")
	}
}

func TestSetGraphOOM(t *testing.T) {
	p := device.V100
	p.GlobalMemBytes = 16
	s := &Session{Dev: device.New(p)}
	if err := s.SetGraph(graph.Figure7()); err == nil {
		t.Fatal("expected OOM")
	}
}

func TestKernelConfigRequiresGraph(t *testing.T) {
	s, _ := NewSession()
	if err := s.KernelConfig(kernels.DefaultConfig()); err == nil {
		t.Fatal("KernelConfig without graph accepted")
	}
	if err := s.SetGraph(graph.Figure7()); err != nil {
		t.Fatal(err)
	}
	if err := s.KernelConfig(kernels.Config{BlockSize: 128, FeatureAdaptive: true}); err != nil {
		t.Fatal(err)
	}
}

func TestCompileAndApplyThroughSession(t *testing.T) {
	s, _ := NewSession()
	if err := s.SetGraph(graph.Figure7()); err != nil {
		t.Fatal(err)
	}
	prog, err := s.Compile(gcnSetup)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	h := s.Input(tensor.Randn(rng, 1, 4, 4), "h")
	norm := s.Input(tensor.Ones(4, 1), "norm")
	w := s.Param(tensor.Randn(rng, 1, 4, 2), "W")
	if _, err := prog.Apply(map[string]*nn.Variable{}, nil, nil); err == nil {
		t.Fatal("missing inputs accepted")
	}
	out, err := prog.Apply(
		map[string]*nn.Variable{"h": h, "norm": norm}, nil,
		map[string]*nn.Variable{"W": w})
	if err != nil {
		t.Fatal(err)
	}
	if out.Value.Rows() != 4 || out.Value.Cols() != 2 {
		t.Fatalf("shape %v", out.Value.Shape())
	}
	if len(prog.Inputs()) != 3 {
		t.Fatalf("inputs %v", prog.Inputs())
	}
	if !strings.Contains(prog.ForwardIR(), "MatMul") ||
		!strings.Contains(prog.BackwardIR(), "ParamGradMM") ||
		!strings.Contains(prog.PlanSummary(), "dense") {
		t.Fatal("introspection output incomplete")
	}
	s.EndIteration()
}

func TestApplyWithoutGraph(t *testing.T) {
	s, _ := NewSession()
	prog, err := s.Compile(gcnSetup)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.Apply(nil, nil, nil); err == nil {
		t.Fatal("Apply without graph accepted")
	}
}

func TestCompileSurfacesTraceErrors(t *testing.T) {
	s, _ := NewSession()
	_, err := s.Compile(func(b *gir.Builder) gir.UDF {
		return func(v *gir.Vertex) *gir.Value { return v.Nbr("nope").AggSum() }
	})
	if err == nil {
		t.Fatal("trace error swallowed")
	}
}

package train

import (
	"context"
	"math/rand"
	"path/filepath"
	"testing"

	"seastar/internal/datasets"
	"seastar/internal/graph"
	"seastar/internal/store"
	"seastar/internal/tensor"
)

// storeDataset writes a random Zipf graph to a store file and opens it,
// returning the equivalent in-memory dataset and the store.
func storeDataset(t *testing.T, seed int64, n, avg, dim, classes int) (*datasets.Dataset, *store.Store) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.ZipfDegree(rng, n, avg, 1.2)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = rng.Intn(classes)
	}
	src := &store.Source{
		G: g, Feat: tensor.Randn(rng, 1, n, dim),
		Labels: labels, NumClasses: classes,
	}
	path := filepath.Join(t.TempDir(), "g.sgs")
	if err := store.WriteFile(path, src); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	st, err := store.Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	mem := &datasets.Dataset{
		Name: "mem", G: src.G, Feat: src.Feat,
		Labels: src.Labels, NumClasses: src.NumClasses, Scale: 1,
	}
	return mem, st
}

// TestStoreBitwiseEquivalence is the tentpole property: mini-batch
// training over the mmap-backed store — prefetcher on, fault hooks
// wired — produces a per-batch loss curve bitwise-identical to the same
// run over the in-memory arrays, both serial and pipelined.
func TestStoreBitwiseEquivalence(t *testing.T) {
	mem, st := storeDataset(t, 17, 1200, 5, 12, 6)

	base := MiniBatchOptions{
		Epochs: 2, BatchSize: 128, FanOut: []int{6, 3},
		LR: 0.01, Seed: 5, DegreeSort: true, GPU: "V100",
	}
	run := func(name string, ds *datasets.Dataset, opts MiniBatchOptions) []float32 {
		t.Helper()
		res, err := RunMiniBatch(context.Background(), ds, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Losses) == 0 {
			t.Fatalf("%s: no losses", name)
		}
		return res.Losses
	}

	ref := run("in-memory serial", mem, base)

	variants := []struct {
		name string
		opts func() MiniBatchOptions
	}{
		{"store serial", func() MiniBatchOptions {
			o := base
			o.GraphStore = st
			return o
		}},
		{"store serial prefetch", func() MiniBatchOptions {
			o := base
			o.GraphStore, o.StorePrefetch = st, true
			return o
		}},
		{"store pipelined prefetch", func() MiniBatchOptions {
			o := base
			o.GraphStore, o.StorePrefetch = st, true
			o.Prefetch, o.SampleWorkers = 4, 2
			o.StorePrefetchWorkers, o.StorePrefetchBudget = 2, 8
			return o
		}},
		{"in-memory pipelined", func() MiniBatchOptions {
			o := base
			o.Prefetch, o.SampleWorkers = 4, 2
			return o
		}},
	}
	for _, v := range variants {
		ds := mem
		opts := v.opts()
		if opts.GraphStore != nil {
			ds = DatasetFromStore(st, "store")
		}
		got := run(v.name, ds, opts)
		if len(got) != len(ref) {
			t.Fatalf("%s: %d losses vs %d", v.name, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("%s: loss[%d] = %v, reference %v (not bitwise-equal)", v.name, i, got[i], ref[i])
			}
		}
	}
}

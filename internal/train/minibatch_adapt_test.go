// Tests for the adaptive pipeline-shape re-planner: the loss curve must
// stay bitwise-identical to the static run while the tuner swaps shapes
// between epochs, settled plans must persist and warm restarts must
// adopt them without exploring, and a corrupt plan file must fall back
// to the static shape cleanly.
package train

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"seastar/internal/adapt"
)

// adaptOpts settles fast: one trial per candidate per round and a
// single winning round, so four candidates settle within five epochs.
func adaptOpts(planPath string) MiniBatchOptions {
	return MiniBatchOptions{
		Epochs: 7, BatchSize: 128, FanOut: []int{4, 3},
		Prefetch: 4, SampleWorkers: 2, LR: 0.02, Seed: 42,
		DegreeSort: true, GPU: "V100",
		Adapt: true, AdaptPlanPath: planPath,
		AdaptConfig: adapt.Config{Explore: 1, Rounds: 1, Win: 0.05},
	}
}

func TestMiniBatchAdaptBitwisePersistsAndWarmRestarts(t *testing.T) {
	ds := synthZipf(t, 21, 600, 6, 8, 3)
	planPath := filepath.Join(t.TempDir(), "plans.json")

	// Static reference: same options with adaptation off.
	staticOpts := adaptOpts("")
	staticOpts.Adapt = false
	static, err := RunMiniBatch(context.Background(), ds, staticOpts)
	if err != nil {
		t.Fatal(err)
	}

	// Cold adaptive run: shapes swap between epochs, the curve must not
	// move a bit, and the settled plan must hit disk.
	cold, err := RunMiniBatch(context.Background(), ds, adaptOpts(planPath))
	if err != nil {
		t.Fatal(err)
	}
	if cold.AdaptWarm {
		t.Fatal("cold run reported a warm start")
	}
	if !reflect.DeepEqual(static.Losses, cold.Losses) {
		t.Fatalf("adaptive exploration changed the loss curve:\nstatic %v\nadapt  %v",
			head(static.Losses), head(cold.Losses))
	}
	if cold.Plan == nil {
		t.Fatal("tuner did not settle within the run")
	}
	if cold.Plan.Gen < 1 {
		t.Fatalf("settled plan gen %d, want ≥ 1", cold.Plan.Gen)
	}
	if _, err := os.Stat(planPath); err != nil {
		t.Fatalf("no plan persisted: %v", err)
	}

	// Warm restart: adopt, skip exploration, same plan, same curve.
	warm, err := RunMiniBatch(context.Background(), ds, adaptOpts(planPath))
	if err != nil {
		t.Fatal(err)
	}
	if !warm.AdaptWarm {
		t.Fatal("restart did not adopt the persisted plan")
	}
	if warm.Plan == nil {
		t.Fatal("warm run carries no plan")
	}
	if warm.Plan.Gen != cold.Plan.Gen ||
		warm.Plan.Tuning.Prefetch != cold.Plan.Tuning.Prefetch ||
		warm.Plan.Tuning.SampleWorkers != cold.Plan.Tuning.SampleWorkers {
		t.Fatalf("adopted plan %+v differs from persisted %+v", warm.Plan, cold.Plan)
	}
	if !reflect.DeepEqual(static.Losses, warm.Losses) {
		t.Fatalf("warm-started shape changed the loss curve:\nstatic %v\nwarm   %v",
			head(static.Losses), head(warm.Losses))
	}
}

func TestMiniBatchAdaptCorruptPlanFallsBack(t *testing.T) {
	ds := synthZipf(t, 23, 500, 5, 6, 3)
	planPath := filepath.Join(t.TempDir(), "plans.json")
	if err := os.WriteFile(planPath, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	opts := adaptOpts(planPath)
	opts.Epochs = 2 // not enough to settle: just prove the fallback runs
	res, err := RunMiniBatch(context.Background(), ds, opts)
	if err != nil {
		t.Fatalf("corrupt plan file must not fail training: %v", err)
	}
	if res.AdaptWarm {
		t.Fatal("corrupt plan file produced a warm start")
	}
	if res.AdaptDiag == nil {
		t.Fatal("corrupt plan file left no diagnostic")
	}
	if len(res.Losses) == 0 {
		t.Fatal("fallback run trained no batches")
	}
}

func TestPipelineCandidatesDedup(t *testing.T) {
	// Static pf=1/w=1 must not duplicate the pf1w1 challenger.
	opts := MiniBatchOptions{Prefetch: 1, SampleWorkers: 1}
	cands := pipelineCandidates(opts)
	seen := map[string]bool{}
	for _, c := range cands {
		if seen[c.Name] {
			t.Fatalf("duplicate candidate %q", c.Name)
		}
		seen[c.Name] = true
		if c.Tuning.Prefetch == 1 && c.Tuning.SampleWorkers == 1 {
			t.Fatalf("challenger %q duplicates the static shape", c.Name)
		}
	}
	if len(cands) != 3 { // static + pf2w2 + serial
		t.Fatalf("got %d candidates, want 3: %+v", len(cands), cands)
	}
}

package train

import (
	"context"
	"errors"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"seastar/internal/datasets"
	"seastar/internal/graph"
	"seastar/internal/tensor"
)

// synthZipf builds a power-law node-classification dataset like the
// kernels benchmark's, at test scale.
func synthZipf(t *testing.T, seed int64, n, avgDeg, featDim, classes int) *datasets.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.ZipfDegree(rng, n, avgDeg, 1.0)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = rng.Intn(classes)
	}
	return &datasets.Dataset{
		Name: "zipf-synth", G: g,
		Feat:   tensor.Randn(rng, 1, n, featDim),
		Labels: labels, NumClasses: classes, Scale: 1,
	}
}

func heteroDS(t *testing.T) *datasets.Dataset {
	t.Helper()
	ds, err := datasets.Load("aifb", 0.25, 7)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestMiniBatchPipelinedEqualsSerial is the paper-facing property test:
// for fixed seeds, pipelined mini-batch training produces a
// bitwise-identical per-batch loss curve to the serial path, on both a
// Zipf power-law graph and a heterogeneous dataset.
func TestMiniBatchPipelinedEqualsSerial(t *testing.T) {
	cases := []struct {
		name string
		ds   *datasets.Dataset
	}{
		{"zipf", synthZipf(t, 5, 800, 6, 8, 4)},
		{"hetero-aifb", heteroDS(t)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := MiniBatchOptions{
				Epochs: 2, BatchSize: 128, FanOut: []int{4, 3},
				LR: 0.02, Seed: 42, DegreeSort: true, GPU: "V100",
			}

			serialOpts := base
			serialOpts.Prefetch = 0
			serial, err := RunMiniBatch(context.Background(), tc.ds, serialOpts)
			if err != nil {
				t.Fatal(err)
			}
			if len(serial.Losses) == 0 {
				t.Fatal("serial run produced no batches")
			}

			for _, pw := range []struct{ p, w int }{{1, 1}, {3, 3}} {
				pipeOpts := base
				pipeOpts.Prefetch, pipeOpts.SampleWorkers = pw.p, pw.w
				pipe, err := RunMiniBatch(context.Background(), tc.ds, pipeOpts)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(serial.Losses, pipe.Losses) {
					t.Fatalf("loss curves diverge at prefetch=%d workers=%d:\nserial %v\npipe   %v",
						pw.p, pw.w, head(serial.Losses), head(pipe.Losses))
				}
				if serial.SeedAcc != pipe.SeedAcc {
					t.Fatalf("accuracy diverges: %v vs %v", serial.SeedAcc, pipe.SeedAcc)
				}
			}
		})
	}
}

func head(xs []float32) []float32 {
	if len(xs) > 8 {
		return xs[:8]
	}
	return xs
}

// TestMiniBatchLossDecreases sanity-checks that the pipelined trainer
// actually learns.
func TestMiniBatchLossDecreases(t *testing.T) {
	ds := synthZipf(t, 9, 600, 6, 8, 3)
	opts := DefaultMiniBatchOptions()
	opts.Epochs, opts.BatchSize, opts.FanOut = 4, 128, []int{4}
	opts.Prefetch, opts.SampleWorkers = 2, 2
	opts.LR, opts.Seed = 0.05, 3
	res, err := RunMiniBatch(context.Background(), ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	first := res.Epochs[0].AvgLoss
	last := res.Epochs[len(res.Epochs)-1].AvgLoss
	if last >= first {
		t.Fatalf("loss did not drop: %.4f → %.4f", first, last)
	}
	if res.PeakBytes <= 0 {
		t.Fatal("no device memory accounted")
	}
}

// TestMiniBatchCheckpointResume: training 2+2 epochs through a
// checkpoint must reproduce the 4-epoch run bitwise from the resume
// point.
func TestMiniBatchCheckpointResume(t *testing.T) {
	ds := synthZipf(t, 12, 500, 5, 6, 3)
	base := MiniBatchOptions{
		Epochs: 4, BatchSize: 100, FanOut: []int{3, 2},
		Prefetch: 2, SampleWorkers: 2, LR: 0.02, Seed: 77,
		DegreeSort: true, GPU: "V100",
	}
	straight, err := RunMiniBatch(context.Background(), ds, base)
	if err != nil {
		t.Fatal(err)
	}

	ckpt := filepath.Join(t.TempDir(), "ck.gob")
	firstHalf := base
	firstHalf.Epochs = 2
	firstHalf.CheckpointPath = ckpt
	if _, err := RunMiniBatch(context.Background(), ds, firstHalf); err != nil {
		t.Fatal(err)
	}

	second := base
	second.CheckpointPath = ckpt
	resumed, err := RunMiniBatch(context.Background(), ds, second)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.StartEpoch != 2 {
		t.Fatalf("resumed at epoch %d, want 2", resumed.StartEpoch)
	}

	// The resumed run's curve must equal the straight run's tail.
	perEpoch := len(straight.Losses) / 4
	wantTail := straight.Losses[2*perEpoch:]
	if !reflect.DeepEqual(wantTail, resumed.Losses) {
		t.Fatalf("resumed curve diverges:\nwant %v\ngot  %v", head(wantTail), head(resumed.Losses))
	}

	// A mismatched seed must refuse to resume (the epoch plans would
	// silently diverge).
	bad := second
	bad.Seed = 78
	if _, err := RunMiniBatch(context.Background(), ds, bad); err == nil {
		t.Fatal("checkpoint with mismatched seed accepted")
	}
}

func TestMiniBatchCancel(t *testing.T) {
	ds := synthZipf(t, 15, 600, 5, 6, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := DefaultMiniBatchOptions()
	opts.Epochs, opts.BatchSize = 2, 64
	_, err := RunMiniBatch(ctx, ds, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

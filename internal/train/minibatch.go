package train

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"time"

	"seastar/internal/adapt"
	"seastar/internal/datasets"
	"seastar/internal/device"
	"seastar/internal/exec"
	"seastar/internal/gir"
	"seastar/internal/nn"
	"seastar/internal/pipeline"
	"seastar/internal/sampling"
	"seastar/internal/store"
	"seastar/internal/tensor"
)

// DatasetFromStore assembles a Dataset over an open store's mmap-backed
// views: the graph and feature matrix alias the mapping (no copies);
// labels were decoded at Open. Masks are left nil — store-backed
// training is the mini-batch path, which derives its own seed masks.
// The store must stay open while the dataset is in use.
func DatasetFromStore(st *store.Store, name string) *datasets.Dataset {
	return &datasets.Dataset{
		Name: name, G: st.Graph(), Feat: st.Features(),
		Labels: st.Labels(), NumClasses: st.NumClasses(), Scale: 1,
	}
}

// MiniBatchOptions configures sampled mini-batch training (the
// sampling-based workload of §8, driven by the internal/pipeline
// engine).
type MiniBatchOptions struct {
	// Epochs is the total number of epochs (including any restored from
	// a checkpoint).
	Epochs int
	// BatchSize is the seed-vertex count per mini-batch.
	BatchSize int
	// FanOut bounds sampled in-neighbours per layer.
	FanOut []int
	// Prefetch is the pipeline depth; 0 trains serially (the reference
	// path the property tests compare against).
	Prefetch int
	// SampleWorkers is the stage-1 parallelism (min 1).
	SampleWorkers int
	// LR is the Adam learning rate.
	LR float32
	// Seed drives weight init, batch order, and neighbour sampling.
	Seed int64
	// DegreeSort degree-sorts each batch subgraph (§6.3.3).
	DegreeSort bool
	// GPU names the simulated device profile (default V100).
	GPU string
	// CheckpointPath, when set, enables save/restore: training resumes
	// from the file if it exists and rewrites it every CheckpointEvery
	// epochs (default: every epoch).
	CheckpointPath  string
	CheckpointEvery int
	// Metrics, when non-nil, receives the pipeline's stage counters
	// (otherwise the engine's own block is used).
	Metrics *pipeline.Metrics
	// Progress, when non-nil, is called after every epoch.
	Progress func(EpochStats)
	// Trace enables per-batch stage timing (benchmarks read it back via
	// MiniBatchResult.Trace).
	Trace bool
	// Adapt enables measured re-planning of the pipeline shape: every
	// epoch is one wall-clock trial of a candidate (prefetch, workers)
	// pair, and the trial tuner commits a shape only on a sustained
	// measured win over the static plan. Retunes happen between epochs
	// and never change the loss curve bitwise.
	Adapt bool
	// AdaptPlanPath persists settled plans so a warm restart adopts the
	// learned shape immediately and skips exploration (empty: in-memory
	// only).
	AdaptPlanPath string
	// AdaptConfig tunes the trial loop; the zero value uses the adapt
	// package defaults (3 trials per round, 2-round hysteresis, 10% win).
	AdaptConfig adapt.Config
	// GraphStore, when non-nil, marks ds as backed by the mmap-backed
	// on-disk store (DESIGN.md §16): the trainer registers pipeline
	// hooks that prefetch upcoming batches' CSR rows and feature pages
	// and attribute major page faults per stage. The loss curve is
	// bitwise-identical to the in-memory run either way.
	GraphStore *store.Store
	// StorePrefetch enables the async prefetcher (ignored without
	// GraphStore).
	StorePrefetch bool
	// StorePrefetchWorkers and StorePrefetchBudget size the prefetcher
	// (defaults 1 worker, budget 4 when non-positive).
	StorePrefetchWorkers int
	StorePrefetchBudget  int
}

// DefaultMiniBatchOptions mirrors the full-graph defaults at mini-batch
// scale.
func DefaultMiniBatchOptions() MiniBatchOptions {
	return MiniBatchOptions{
		Epochs: 5, BatchSize: 256, FanOut: []int{8, 4},
		Prefetch: 4, SampleWorkers: 2, LR: 0.01, Seed: 1,
		DegreeSort: true, GPU: "V100",
	}
}

// EpochStats summarizes one completed epoch.
type EpochStats struct {
	Epoch    int
	Batches  int
	AvgLoss  float64
	SeedAcc  float64
	WallNs   int64
	Restored bool // epoch was skipped because a checkpoint covered it
}

// MiniBatchResult summarizes a mini-batch run.
type MiniBatchResult struct {
	// Losses is the per-batch training loss in batch order, across all
	// epochs run in this process — the bitwise-comparable curve.
	Losses []float32
	// Epochs holds one entry per epoch trained here.
	Epochs []EpochStats
	// SeedAcc is the seed-vertex accuracy of the final epoch.
	SeedAcc float64
	// StartEpoch is the first epoch trained in this process (>0 when a
	// checkpoint was restored).
	StartEpoch int
	// WallNs is the total wall-clock time spent in epochs.
	WallNs int64
	// PeakBytes is the simulated device's high-water memory.
	PeakBytes int64
	// Trace is the last epoch's per-batch stage durations (when
	// Options.Trace was set).
	Trace *pipeline.StageTrace
	// Plan is the settled adaptive plan (nil while still exploring or
	// when Options.Adapt is off).
	Plan *adapt.Plan
	// AdaptWarm reports that a persisted plan was adopted at startup, so
	// no exploration ran.
	AdaptWarm bool
	// AdaptDiag carries the most recent adaptive persistence diagnostic
	// (corrupt plan file, failed save); it never fails the run — the
	// trainer just explores from the static plan.
	AdaptDiag error
	// StoreStats holds the prefetcher's counters when the run was
	// store-backed with prefetch enabled (nil otherwise).
	StoreStats *store.PrefetchStats
	// MajorFaults is the process-wide major page-fault delta across the
	// run (0 when not store-backed or unavailable on this platform).
	MajorFaults int64
}

// sageProgram is the compiled per-batch model: a GraphSAGE-style
// self-plus-neighbours convolution, compiled once and applied to every
// batch subgraph (compile-once, run-every-batch — §5.1 at mini-batch
// granularity).
type sageProgram struct {
	udf *exec.CompiledUDF
	w   *nn.Variable
}

func newSAGE(e *nn.Engine, rng *rand.Rand, inDim, classes int) (*sageProgram, error) {
	b := gir.NewBuilder()
	b.VFeature("h", inDim)
	W := b.Param("W", inDim, classes)
	dag, err := b.Build(func(v *gir.Vertex) *gir.Value {
		self := v.Self("h").MatMul(W)
		return v.Nbr("h").MatMul(W).AggSum().Add(self)
	})
	if err != nil {
		return nil, err
	}
	udf, err := exec.Compile(dag)
	if err != nil {
		return nil, err
	}
	w := e.Param(tensor.XavierUniform(rng, inDim, classes), "W")
	return &sageProgram{udf: udf, w: w}, nil
}

func (p *sageProgram) params() []*nn.Variable { return []*nn.Variable{p.w} }

// RunMiniBatch trains a SAGE-style model on ds with pipelined
// neighbour-sampled mini-batches. With identical options except
// Prefetch/SampleWorkers, the per-batch loss curve is bitwise-identical
// — the pipeline only overlaps stages, it never reorders or reseeds
// them.
func RunMiniBatch(ctx context.Context, ds *datasets.Dataset, opts MiniBatchOptions) (MiniBatchResult, error) {
	res := MiniBatchResult{}
	if opts.Epochs <= 0 {
		opts.Epochs = 1
	}
	if len(opts.FanOut) == 0 {
		opts.FanOut = []int{8, 4}
	}
	if opts.GPU == "" {
		opts.GPU = "V100"
	}
	if opts.CheckpointEvery <= 0 {
		opts.CheckpointEvery = 1
	}
	prof, ok := device.ProfileByName(opts.GPU)
	if !ok {
		return res, fmt.Errorf("train: unknown GPU %q", opts.GPU)
	}
	dev := device.New(prof)
	e := nn.NewEngine(dev)

	rng := rand.New(rand.NewSource(opts.Seed))
	prog, err := newSAGE(e, rng, ds.Feat.Cols(), ds.NumClasses)
	if err != nil {
		return res, err
	}
	opt := nn.NewAdam(prog.params(), opts.LR)

	sampler, err := sampling.NewSampler(ds.G, opts.FanOut, opts.Seed)
	if err != nil {
		return res, err
	}
	cfg := pipeline.Config{
		BatchSize: opts.BatchSize, Prefetch: opts.Prefetch,
		SampleWorkers: opts.SampleWorkers, DegreeSort: opts.DegreeSort,
	}
	var pf *store.Prefetcher
	faults0 := int64(0)
	if st := opts.GraphStore; st != nil {
		cfg.Hooks.Faults = store.MajorFaults
		faults0 = store.MajorFaults()
		if opts.StorePrefetch {
			pf = st.NewPrefetcher(opts.StorePrefetchWorkers, opts.StorePrefetchBudget)
			defer pf.Close()
			cfg.Hooks.PrefetchSeeds = pf.Seeds
			cfg.Hooks.PrefetchBatch = pf.Batch
		}
	}
	eng, err := pipeline.New(sampler, ds.Feat, ds.Labels, cfg)
	if err != nil {
		return res, err
	}
	if opts.Metrics != nil {
		eng.Metrics = opts.Metrics
	}
	if opts.Trace {
		eng.EnableTrace()
	}

	// Resume from a checkpoint when one exists.
	start := 0
	if opts.CheckpointPath != "" {
		if _, statErr := os.Stat(opts.CheckpointPath); statErr == nil {
			ck, err := pipeline.LoadCheckpoint(opts.CheckpointPath)
			if err != nil {
				return res, err
			}
			if ck.BaseSeed != opts.Seed {
				return res, fmt.Errorf("train: checkpoint seed %d does not match run seed %d",
					ck.BaseSeed, opts.Seed)
			}
			if err := pipeline.RestoreParams(prog.params(), ck.Params); err != nil {
				return res, err
			}
			if err := opt.SetState(ck.Opt); err != nil {
				return res, err
			}
			start = ck.Epoch
			eng.Metrics.Restores.Add(1)
		}
	}
	res.StartEpoch = start

	// Adaptive pipeline-shape re-planning: warm restarts adopt the
	// persisted shape before the first epoch; cold starts explore.
	var ad *mbAdapt
	if opts.Adapt {
		ad = newMBAdapt(ds, opts)
		res.AdaptWarm = ad.warm
	}

	var epochLoss float64
	var epochBatches, correct, total int
	step := func(b *pipeline.Batch) error {
		rt := exec.NewRuntime(e, b.Sub)
		h := e.InputScoped(b.Feat, "h")
		out, err := prog.udf.Apply(rt, map[string]*nn.Variable{"h": h}, nil,
			map[string]*nn.Variable{"W": prog.w})
		if err != nil {
			return err
		}
		loss := e.CrossEntropyMasked(out, b.Labels, b.Mask)
		e.Backward(loss)
		opt.Step()
		lv := loss.Value.At1(0)
		res.Losses = append(res.Losses, lv)
		epochLoss += float64(lv)
		epochBatches++
		for i := 0; i < b.B.SeedCount; i++ {
			total++
			best, bestJ := float32(-1e30), 0
			for j := 0; j < ds.NumClasses; j++ {
				if out.Value.At(i, j) > best {
					best, bestJ = out.Value.At(i, j), j
				}
			}
			if bestJ == b.Labels[i] {
				correct++
			}
		}
		e.EndIteration()
		return nil
	}

	for epoch := start; epoch < opts.Epochs; epoch++ {
		if ad != nil {
			ad.beforeEpoch(eng, opts)
		}
		epochLoss, epochBatches, correct, total = 0, 0, 0, 0
		t0 := time.Now()
		if err := eng.RunEpoch(ctx, epoch, step); err != nil {
			res.PeakBytes = dev.PeakBytes()
			return res, err
		}
		wall := time.Since(t0).Nanoseconds()
		res.WallNs += wall
		if ad != nil {
			ad.afterEpoch(wall)
		}
		st := EpochStats{
			Epoch: epoch, Batches: epochBatches, WallNs: wall,
			SeedAcc: ratio(correct, total),
		}
		if epochBatches > 0 {
			st.AvgLoss = epochLoss / float64(epochBatches)
		}
		res.Epochs = append(res.Epochs, st)
		res.SeedAcc = st.SeedAcc
		if opts.Progress != nil {
			opts.Progress(st)
		}

		if opts.CheckpointPath != "" &&
			((epoch+1-start)%opts.CheckpointEvery == 0 || epoch == opts.Epochs-1) {
			ck := &pipeline.Checkpoint{
				Epoch: epoch + 1, BaseSeed: opts.Seed,
				Params: pipeline.CaptureParams(prog.params()),
				Opt:    opt.State(),
			}
			if err := ck.Save(opts.CheckpointPath); err != nil {
				return res, err
			}
			eng.Metrics.Saves.Add(1)
		}
	}
	res.PeakBytes = dev.PeakBytes()
	res.Trace = eng.LastTrace()
	if pf != nil {
		s := pf.Stats()
		res.StoreStats = &s
	}
	if opts.GraphStore != nil {
		res.MajorFaults = store.MajorFaults() - faults0
	}
	if ad != nil {
		if p, ok := ad.tuner.Plan(); ok {
			res.Plan = &p
		}
		res.AdaptDiag = ad.diag
	}
	return res, nil
}

func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

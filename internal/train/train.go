// Package train runs the paper's training methodology (§7): full-graph
// node classification for a fixed number of epochs, reporting the average
// per-epoch time with the first warm-up epochs discarded, peak device
// memory, and accuracy. Out-of-memory failures are captured as results
// (the paper reports them as "-").
package train

import (
	"fmt"
	"time"

	"seastar/internal/models"
	"seastar/internal/nn"
)

// Options configures a training run.
type Options struct {
	// Epochs to run (the paper uses 200; the harness uses fewer since
	// simulated per-epoch time is deterministic).
	Epochs int
	// Warmup epochs excluded from the average (the paper discards 3).
	Warmup int
	// LR is the Adam learning rate.
	LR float32
}

// DefaultOptions mirrors the paper's setup at harness-friendly length.
func DefaultOptions() Options { return Options{Epochs: 5, Warmup: 2, LR: 0.01} }

// Result summarizes a run.
type Result struct {
	// EpochNs is the simulated duration of each epoch.
	EpochNs []float64
	// AvgEpochNs averages the post-warmup epochs.
	AvgEpochNs float64
	// PeakBytes is the high-water device memory across the run.
	PeakBytes int64
	// FinalLoss is the last training loss.
	FinalLoss float32
	// TestAcc is the final test accuracy.
	TestAcc float64
	// OOM is set when the run failed with device out-of-memory.
	OOM bool
	// Err holds the failure, if any.
	Err error
}

// AvgEpoch returns the average epoch duration as a time.Duration.
func (r Result) AvgEpoch() time.Duration { return time.Duration(r.AvgEpochNs) }

// String renders the result the way the paper's tables do.
func (r Result) String() string {
	if r.OOM {
		return "OOM"
	}
	if r.Err != nil {
		return "ERR"
	}
	return fmt.Sprintf("%.1f ms", r.AvgEpochNs/1e6)
}

// Run trains m in env for opts.Epochs epochs.
func Run(env *models.Env, m models.Model, opts Options) Result {
	if opts.Epochs <= 0 {
		opts.Epochs = 1
	}
	if opts.Warmup >= opts.Epochs {
		opts.Warmup = opts.Epochs - 1
	}
	res := Result{}
	ds := env.DS
	opt := nn.NewAdam(m.Params(), opts.LR)
	err := nn.CatchOOM(func() {
		for epoch := 0; epoch < opts.Epochs; epoch++ {
			start := env.E.Dev.ElapsedNs()
			logits := m.Forward(true)
			loss := env.E.CrossEntropyMasked(logits, ds.Labels, ds.TrainMask)
			env.E.Backward(loss)
			opt.Step()
			res.FinalLoss = loss.Value.At1(0)
			if epoch == opts.Epochs-1 {
				res.TestAcc = nn.Accuracy(logits.Value, ds.Labels, ds.TestMask)
			}
			env.E.EndIteration()
			res.EpochNs = append(res.EpochNs, env.E.Dev.ElapsedNs()-start)
		}
	})
	res.PeakBytes = env.E.Dev.PeakBytes()
	if err != nil {
		res.Err = err
		res.OOM = true
		return res
	}
	var sum float64
	n := 0
	for i := opts.Warmup; i < len(res.EpochNs); i++ {
		sum += res.EpochNs[i]
		n++
	}
	if n > 0 {
		res.AvgEpochNs = sum / float64(n)
	}
	return res
}

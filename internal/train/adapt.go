package train

import (
	"fmt"

	"seastar/internal/adapt"
	"seastar/internal/datasets"
	"seastar/internal/pipeline"
	"seastar/internal/sched"
)

// mbAdapt is the mini-batch trainer's measured re-planning loop for the
// pipeline shape (prefetch depth × sampling workers). Every epoch is one
// wall-clock trial of the candidate shape that was live; the trial tuner
// commits a shape only after it beats the static plan by the sustained
// hysteresis margin. Retunes happen strictly between epochs (the only
// point Engine.Retune is legal), and a retune never reorders or reseeds
// batches, so the per-batch loss curve stays bitwise-identical to the
// static run throughout exploration.
type mbAdapt struct {
	tuner     *adapt.Tuner
	store     *adapt.Store
	curIdx    int
	persisted bool
	warm      bool
	diag      error
}

// mbAdaptKey slots the learned pipeline shape: the same model family,
// batch geometry, graph, feature width, parallelism budget and host
// reuse it.
func mbAdaptKey(ds *datasets.Dataset, opts MiniBatchOptions) adapt.Key {
	return adapt.Key{
		Model:   fmt.Sprintf("sage-mb|b%d|f%v", opts.BatchSize, opts.FanOut),
		GraphFP: adapt.GraphFP(ds.G.N, ds.G.M, ds.G.Srcs, ds.G.Dsts),
		InDim:   ds.Feat.Cols(),
		Procs:   sched.MaxProcs,
		Host:    adapt.HostID(),
	}
}

// pipelineCandidates is the shape set the trainer explores: the static
// (prefetch, workers) plus shallower pipelines and the serial collapse.
// On small cores the shallow shapes win — prefetch slots cost goroutine
// churn and pool pressure that the overlap model does not price — while
// on wide hosts the static depth holds; the tuner measures rather than
// guesses. Serial is encoded as Prefetch 0 with SampleWorkers 1 (the
// Tuning zero value means "static", so -1 is keep-static and 0 is only
// meaningful alongside a non-zero worker override).
func pipelineCandidates(opts MiniBatchOptions) []adapt.Candidate {
	staticW := opts.SampleWorkers
	if staticW < 1 {
		staticW = 1
	}
	cands := []adapt.Candidate{{Name: "static"}}
	seen := map[[2]int]bool{{opts.Prefetch, staticW}: true}
	for _, pw := range [][2]int{{1, 1}, {2, 2}, {0, 1}} {
		if seen[pw] {
			continue
		}
		seen[pw] = true
		cands = append(cands, adapt.Candidate{
			Name:    fmt.Sprintf("prefetch=%d workers=%d", pw[0], pw[1]),
			Tuning:  adapt.Tuning{Prefetch: pw[0], SampleWorkers: pw[1]},
			Knob:    "prefetch",
			Unit:    "pipeline",
			Static:  int64(opts.Prefetch),
			Learned: int64(pw[0]),
		})
	}
	return cands
}

// newMBAdapt builds the trainer's adaptive state: a warm start adopts
// the persisted plan and skips exploration entirely; a corrupt or
// missing plan file falls back to exploring from static and records the
// diagnostic.
func newMBAdapt(ds *datasets.Dataset, opts MiniBatchOptions) *mbAdapt {
	key := mbAdaptKey(ds, opts)
	a := &mbAdapt{
		tuner:  adapt.NewTuner(key, opts.AdaptConfig, pipelineCandidates(opts)),
		store:  adapt.NewStore(opts.AdaptPlanPath),
		curIdx: -1,
	}
	if p, ok, diag := a.store.Load(key); ok {
		a.tuner.Adopt(p)
		a.warm = true
		a.persisted = true
	} else {
		a.diag = diag
	}
	return a
}

// beforeEpoch installs the next candidate shape on the engine. Called
// between epochs only.
func (a *mbAdapt) beforeEpoch(eng *pipeline.Engine, opts MiniBatchOptions) {
	idx, tn, _ := a.tuner.Next()
	a.curIdx = idx
	pf, w := opts.Prefetch, opts.SampleWorkers
	if !tn.IsZero() {
		if tn.Prefetch >= 0 {
			pf = tn.Prefetch
		}
		if tn.SampleWorkers > 0 {
			w = tn.SampleWorkers
		}
	}
	// Retune only rejects negative prefetch, which the candidates never
	// carry.
	_ = eng.Retune(pf, w)
}

// afterEpoch reports the epoch's wall clock as the live candidate's
// trial and persists the plan the first time the tuner settles.
func (a *mbAdapt) afterEpoch(wallNs int64) {
	a.tuner.Report(a.curIdx, wallNs)
	if a.persisted || !a.tuner.Settled() {
		return
	}
	if p, ok := a.tuner.Plan(); ok {
		if err := a.store.Save(p); err != nil {
			a.diag = err
		}
		a.persisted = true
	}
}

package train

import (
	"strings"
	"testing"

	"seastar/internal/datasets"
	"seastar/internal/device"
	"seastar/internal/models"
)

func TestRunTrainsGCN(t *testing.T) {
	ds := datasets.MustLoad("cora", 0.05, 3)
	env := models.NewEnv(device.New(device.V100), ds, 1)
	m, err := models.NewGCN(env, models.SysSeastar, 8)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(env, m, Options{Epochs: 6, Warmup: 2, LR: 0.01})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(res.EpochNs) != 6 {
		t.Fatalf("epochs recorded: %d", len(res.EpochNs))
	}
	if res.AvgEpochNs <= 0 || res.PeakBytes <= 0 {
		t.Fatalf("result: %+v", res)
	}
	if res.TestAcc < 0 || res.TestAcc > 1 {
		t.Fatalf("accuracy: %v", res.TestAcc)
	}
	if !strings.Contains(res.String(), "ms") {
		t.Fatalf("String: %q", res.String())
	}
	if res.AvgEpoch() <= 0 {
		t.Fatal("AvgEpoch duration")
	}
}

func TestRunDeterministicEpochTimes(t *testing.T) {
	// Without dropout the simulated epoch time is identical across
	// epochs after warmup and across runs.
	ds := datasets.MustLoad("citeseer", 0.05, 4)
	run := func() Result {
		env := models.NewEnv(device.New(device.RTX2080Ti), ds, 2)
		m, err := models.NewGCN(env, models.SysDGL, 8)
		if err != nil {
			t.Fatal(err)
		}
		return Run(env, m, Options{Epochs: 4, Warmup: 1, LR: 0.01})
	}
	a, b := run(), run()
	if a.AvgEpochNs != b.AvgEpochNs {
		t.Fatalf("nondeterministic simulated time: %v vs %v", a.AvgEpochNs, b.AvgEpochNs)
	}
	// Post-warmup epochs are identical up to float64 accumulation ulps.
	if rel := (a.EpochNs[2] - a.EpochNs[3]) / a.EpochNs[2]; rel > 1e-9 || rel < -1e-9 {
		t.Fatalf("epoch times vary: %v", a.EpochNs)
	}
}

func TestRunReportsOOM(t *testing.T) {
	// Measure the resident footprint of model + data, then rebuild on a
	// device with only a small margin beyond it: PyG GAT's materialized
	// edge tensors must blow past it, producing an OOM result (not a
	// panic) — the mechanism behind the paper's "-" table entries.
	ds := datasets.MustLoad("amz_photo", 0.3, 5)
	big := device.New(device.V100)
	env := models.NewEnv(big, ds, 1)
	if _, err := models.NewGAT(env, models.SysPyG, 16); err != nil {
		t.Fatal(err)
	}
	resident := big.CurrentBytes()

	p := device.V100
	p.GlobalMemBytes = resident + 2<<20 // 2 MB of headroom
	env2, err := models.NewEnvChecked(device.New(p), ds, 1)
	if err != nil {
		t.Fatalf("env itself must fit: %v", err)
	}
	m, err := models.NewGAT(env2, models.SysPyG, 16)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(env2, m, DefaultOptions())
	if !res.OOM || res.Err == nil {
		t.Fatalf("expected OOM result, got %+v", res)
	}
	if res.String() != "OOM" {
		t.Fatalf("String: %q", res.String())
	}
}

func TestNewEnvCheckedReportsConstructionOOM(t *testing.T) {
	ds := datasets.MustLoad("cora", 0.2, 5)
	p := device.V100
	p.GlobalMemBytes = 1 << 20 // 1 MB: features alone do not fit
	if _, err := models.NewEnvChecked(device.New(p), ds, 1); err == nil {
		t.Fatal("expected construction OOM")
	}
}

func TestOptionsClamping(t *testing.T) {
	ds := datasets.MustLoad("cora", 0.03, 6)
	env := models.NewEnv(device.New(device.V100), ds, 1)
	m, err := models.NewGCN(env, models.SysSeastar, 4)
	if err != nil {
		t.Fatal(err)
	}
	res := Run(env, m, Options{Epochs: 0, Warmup: 5, LR: 0.01})
	if len(res.EpochNs) != 1 || res.AvgEpochNs <= 0 {
		t.Fatalf("clamped run: %+v", res)
	}
}

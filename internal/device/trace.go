package device

import (
	"encoding/json"
	"fmt"
	"io"
)

// KernelRecord is one simulated kernel launch in the device timeline.
type KernelRecord struct {
	Name     string
	StartNs  float64
	DurNs    float64
	Blocks   int
	Threads  int
	LoadB    int64
	StoreB   int64
	Atomics  int64
	Sched    SchedMode
	ActiveTF float64
}

// EnableTrace starts recording every kernel launch. Tracing costs memory
// proportional to the kernel count; disable for long sweeps.
func (d *Device) EnableTrace() { d.trace = make([]KernelRecord, 0, 256) }

// DisableTrace stops recording and drops the buffer.
func (d *Device) DisableTrace() { d.trace = nil }

// Trace returns the recorded kernel timeline.
func (d *Device) Trace() []KernelRecord { return d.trace }

func (d *Device) record(l Launch, startNs, durNs float64) {
	if d.trace == nil {
		return
	}
	d.trace = append(d.trace, KernelRecord{
		Name:    l.Name,
		StartNs: startNs,
		DurNs:   durNs,
		Blocks:  l.Blocks,
		Threads: l.ThreadsPerBlock,
		LoadB:   l.LoadBytes,
		StoreB:  l.StoreBytes,
		Atomics: l.AtomicOps,
		Sched:   l.Sched,
		ActiveTF: func() float64 {
			if l.ActiveThreadFrac == 0 {
				return 1
			}
			return l.ActiveThreadFrac
		}(),
	})
}

// chromeEvent is one entry of the Chrome trace-event format ("X" = span).
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"` // microseconds
	Dur  float64           `json:"dur"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace dumps the recorded timeline in the Chrome trace-event
// JSON format (loadable in chrome://tracing or Perfetto).
func (d *Device) WriteChromeTrace(w io.Writer) error {
	events := make([]chromeEvent, 0, len(d.trace))
	for _, r := range d.trace {
		events = append(events, chromeEvent{
			Name: r.Name,
			Ph:   "X",
			Ts:   r.StartNs / 1e3,
			Dur:  r.DurNs / 1e3,
			PID:  1,
			TID:  1,
			Args: map[string]string{
				"blocks":  fmt.Sprint(r.Blocks),
				"threads": fmt.Sprint(r.Threads),
				"loadB":   fmt.Sprint(r.LoadB),
				"storeB":  fmt.Sprint(r.StoreB),
				"atomics": fmt.Sprint(r.Atomics),
				"sched":   r.Sched.String(),
			},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]interface{}{"traceEvents": events})
}

// TraceSummary aggregates the timeline by kernel name.
type TraceSummary struct {
	Name    string
	Count   int
	TotalNs float64
}

// SummarizeTrace groups recorded kernels by name, ordered by total time.
func (d *Device) SummarizeTrace() []TraceSummary {
	idx := map[string]int{}
	var out []TraceSummary
	for _, r := range d.trace {
		i, ok := idx[r.Name]
		if !ok {
			i = len(out)
			idx[r.Name] = i
			out = append(out, TraceSummary{Name: r.Name})
		}
		out[i].Count++
		out[i].TotalNs += r.DurNs
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].TotalNs > out[j-1].TotalNs; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

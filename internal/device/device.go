package device

import (
	"fmt"
	"time"
)

// SchedMode selects how blocks are dispatched to SM slots (§6.3.3).
type SchedMode int

const (
	// SchedHardware relies on the hardware block scheduler: blocks are
	// issued in block-id order to the first SM slot that frees up
	// ("FA+Sorting+Dynamic" in the paper). No extra cost.
	SchedHardware SchedMode = iota
	// SchedAtomic uses a persistent-thread loop with a global atomic
	// counter; same dispatch order as SchedHardware but each block pays
	// an atomic fetch on global memory.
	SchedAtomic
	// SchedStatic stripes blocks across slots up front (no stealing):
	// slot s runs blocks s, s+S, s+2S, ... regardless of imbalance.
	SchedStatic
)

func (m SchedMode) String() string {
	switch m {
	case SchedHardware:
		return "hardware"
	case SchedAtomic:
		return "atomic"
	case SchedStatic:
		return "static"
	default:
		return fmt.Sprintf("SchedMode(%d)", int(m))
	}
}

// Launch describes one kernel invocation's cost to the simulator.
//
// BlockCycles, when non-nil, gives the serial-path length of each block in
// core cycles (the maximum over the block's concurrently executing thread
// groups of their sequential work). When nil, every block is assumed to
// take UniformBlockCycles. Load/store bytes must already be
// coalescing-adjusted by the kernel (an uncoalesced 4-byte access should be
// charged at the profile's CacheLineBytes).
type Launch struct {
	Name               string
	Blocks             int
	ThreadsPerBlock    int
	BlockCycles        []float64
	UniformBlockCycles float64
	LoadBytes          int64
	StoreBytes         int64
	AtomicOps          int64
	Sched              SchedMode
	// ActiveThreadFrac is the fraction of a block's threads that issue
	// work (0 means 1). Memory parallelism — and with it sustainable
	// bandwidth — degrades when most threads idle, e.g. a 256-thread
	// block serving a single width-1 vertex ("Basic" in Figure 12).
	ActiveThreadFrac float64
}

// Stats aggregates simulated activity on a device.
type Stats struct {
	Kernels     int64
	LoadBytes   int64
	StoreBytes  int64
	AtomicOps   int64
	ComputeNs   float64
	MemoryNs    float64
	AtomicNs    float64
	LaunchNs    float64
	TotalCycles float64
}

// Device is one simulated GPU: a clock, an allocator, and stat counters.
type Device struct {
	Profile Profile
	// WorkScale is the fraction of the full-size workload actually
	// instantiated (1 = full scale). Simulated time and logical memory
	// are extrapolated by 1/WorkScale so that reduced-scale datasets
	// still reproduce full-scale figures, including OOM thresholds.
	WorkScale float64

	elapsedNs  float64
	curBytes   int64
	peakBytes  int64
	totalAlloc int64
	stats      Stats
	trace      []KernelRecord
}

// New creates a device with the given profile at full work scale.
func New(p Profile) *Device { return &Device{Profile: p, WorkScale: 1} }

// NewScaled creates a device extrapolating a reduced-scale workload.
func NewScaled(p Profile, workScale float64) *Device {
	if workScale <= 0 || workScale > 1 {
		panic(fmt.Sprintf("device: WorkScale must be in (0,1], got %v", workScale))
	}
	return &Device{Profile: p, WorkScale: workScale}
}

func (d *Device) scale() float64 {
	if d.WorkScale == 0 {
		return 1
	}
	return 1 / d.WorkScale
}

// Buffer is a device-memory allocation record.
type Buffer struct {
	dev   *Device
	bytes int64
	freed bool
}

// LogicalBytes returns the allocation's extrapolated (full-scale) size.
func (b *Buffer) LogicalBytes() int64 { return b.bytes }

// ErrOOM is returned when an allocation exceeds device memory.
type ErrOOM struct {
	Device    string
	Requested int64
	InUse     int64
	Capacity  int64
}

func (e *ErrOOM) Error() string {
	return fmt.Sprintf("device %s: out of memory: requested %d B with %d B in use of %d B",
		e.Device, e.Requested, e.InUse, e.Capacity)
}

// Alloc reserves bytes of device memory (pre-extrapolation; the logical
// size is bytes/WorkScale). It returns ErrOOM when capacity is exceeded,
// reproducing the paper's OOM results without touching host RAM.
func (d *Device) Alloc(bytes int64) (*Buffer, error) {
	logical := int64(float64(bytes) * d.scale())
	if d.curBytes+logical > d.Profile.GlobalMemBytes {
		return nil, &ErrOOM{
			Device:    d.Profile.Name,
			Requested: logical,
			InUse:     d.curBytes,
			Capacity:  d.Profile.GlobalMemBytes,
		}
	}
	d.curBytes += logical
	d.totalAlloc += logical
	if d.curBytes > d.peakBytes {
		d.peakBytes = d.curBytes
	}
	return &Buffer{dev: d, bytes: logical}, nil
}

// MustAlloc is Alloc but panics on OOM; for fixed-size model state that the
// experiment setup guarantees to fit.
func (d *Device) MustAlloc(bytes int64) *Buffer {
	b, err := d.Alloc(bytes)
	if err != nil {
		panic(err)
	}
	return b
}

// Free releases a buffer. Double frees are ignored.
func (b *Buffer) Free() {
	if b == nil || b.freed {
		return
	}
	b.freed = true
	b.dev.curBytes -= b.bytes
}

// CurrentBytes returns logical bytes currently allocated.
func (d *Device) CurrentBytes() int64 { return d.curBytes }

// PeakBytes returns the logical high-water mark since the last ResetPeak.
func (d *Device) PeakBytes() int64 { return d.peakBytes }

// TotalAllocBytes returns cumulative logical bytes ever allocated — with
// eager freeing, the peak stays below this even within one iteration.
func (d *Device) TotalAllocBytes() int64 { return d.totalAlloc }

// ResetPeak sets the peak tracker to the current allocation level.
func (d *Device) ResetPeak() { d.peakBytes = d.curBytes }

// ResetClock zeroes the simulated clock and stats (allocations persist).
func (d *Device) ResetClock() {
	d.elapsedNs = 0
	d.stats = Stats{}
}

// Elapsed returns total simulated time.
func (d *Device) Elapsed() time.Duration { return time.Duration(d.elapsedNs) }

// ElapsedNs returns total simulated time in nanoseconds.
func (d *Device) ElapsedNs() float64 { return d.elapsedNs }

// Stats returns a copy of the aggregated counters.
func (d *Device) Stats() Stats { return d.stats }

// HostSync charges host-side time that serializes with the device —
// framework overhead such as per-relation subgraph slicing in baseline
// heterogeneous training. It is not scaled by WorkScale (host overhead
// does not shrink with the dataset).
func (d *Device) HostSync(ns float64) {
	d.elapsedNs += ns
}

// siftDown restores the min-heap property of the earliest-free-slot heap
// rooted at i. A concrete float64 heap keeps the per-block dispatch loop
// free of interface calls; the comparison sequence matches container/heap,
// so the greedy schedule (and its makespan) is unchanged.
func siftDown(h []float64, i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && h[r] < h[l] {
			m = r
		}
		if !(h[m] < h[i]) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// makespan simulates dispatching blocks (in id order) onto nSlots SM block
// slots and returns the finishing time in cycles. Hardware and atomic
// scheduling greedily assign each block to the earliest-free slot, which is
// how the paper exploits the correlation between block id and schedule
// time (§6.3.3); static scheduling stripes blocks over slots up front.
func makespan(cycles func(i int) float64, blocks, nSlots int, sched SchedMode) float64 {
	if blocks <= 0 {
		return 0
	}
	if nSlots < 1 {
		nSlots = 1
	}
	if sched == SchedStatic {
		// Slot s executes blocks s, s+nSlots, ... sequentially.
		sums := make([]float64, nSlots)
		for i := 0; i < blocks; i++ {
			sums[i%nSlots] += cycles(i)
		}
		var maxSum float64
		for _, s := range sums {
			if s > maxSum {
				maxSum = s
			}
		}
		return maxSum
	}
	if blocks <= nSlots {
		var maxC float64
		for i := 0; i < blocks; i++ {
			if c := cycles(i); c > maxC {
				maxC = c
			}
		}
		return maxC
	}
	h := make([]float64, nSlots)
	for i := 0; i < nSlots; i++ {
		h[i] = cycles(i)
	}
	for i := nSlots/2 - 1; i >= 0; i-- {
		siftDown(h, i)
	}
	for i := nSlots; i < blocks; i++ {
		h[0] += cycles(i)
		siftDown(h, 0)
	}
	var maxT float64
	for _, t := range h {
		if t > maxT {
			maxT = t
		}
	}
	return maxT
}

// LaunchKernel charges one kernel to the device clock and returns its
// simulated duration. The time model is a roofline: the maximum of
// (a) block-scheduling makespan over SM slots converted by the core clock,
// (b) memory time at occupancy-degraded bandwidth, and (c) atomic
// serialization time; plus fixed launch overhead.
func (d *Device) LaunchKernel(l Launch) time.Duration {
	p := d.Profile
	nSlots := p.SMCount * p.blocksPerSM(l.ThreadsPerBlock)

	cyclesAt := func(i int) float64 { return l.UniformBlockCycles }
	if l.BlockCycles != nil {
		cyclesAt = func(i int) float64 { return l.BlockCycles[i] }
	}
	atomicPerBlock := 0.0
	if l.Sched == SchedAtomic {
		// Persistent-thread work counter: one contended global atomic
		// (~400 cycle latency) per block fetch.
		atomicPerBlock = 400
	}
	span := makespan(func(i int) float64 { return cyclesAt(i) + atomicPerBlock }, l.Blocks, nSlots, l.Sched)

	computeNs := span / p.ClockGHz

	occ := p.Occupancy(l.ThreadsPerBlock)
	// Bandwidth saturates once enough warps are resident to hide latency;
	// below ~25% occupancy it degrades proportionally.
	bwFrac := occ * 4
	if bwFrac > 1 {
		bwFrac = 1
	}
	// Idle threads issue no loads: below 25% active threads the number
	// of outstanding requests cannot hide DRAM latency (floored at 1/16,
	// the single-warp-per-block limit).
	if af := l.ActiveThreadFrac; af > 0 && af < 1 {
		f := 4 * af
		if f > 1 {
			f = 1
		}
		if f < 1.0/16 {
			f = 1.0 / 16
		}
		bwFrac *= f
	}
	bytes := float64(l.LoadBytes + l.StoreBytes)
	memNs := bytes / (p.MemBandwidthGBs * bwFrac) // GB/s == B/ns
	atomNs := float64(l.AtomicOps) / p.AtomicThroughput * 1e9

	busyNs := computeNs
	if memNs > busyNs {
		busyNs = memNs
	}
	if atomNs > busyNs {
		busyNs = atomNs
	}
	s := d.scale()
	totalNs := busyNs*s + p.KernelLaunchNs

	d.debugKernel(l.Name, totalNs, l.Blocks)
	d.record(l, d.elapsedNs, totalNs)
	d.elapsedNs += totalNs
	d.stats.Kernels++
	d.stats.LoadBytes += int64(float64(l.LoadBytes) * s)
	d.stats.StoreBytes += int64(float64(l.StoreBytes) * s)
	d.stats.AtomicOps += int64(float64(l.AtomicOps) * s)
	d.stats.ComputeNs += computeNs * s
	d.stats.MemoryNs += memNs * s
	d.stats.AtomicNs += atomNs * s
	d.stats.LaunchNs += p.KernelLaunchNs
	d.stats.TotalCycles += span * s
	return time.Duration(totalNs)
}

package device

import "fmt"

// DebugTrace, when set, prints every simulated kernel slower than 10 µs to
// stdout as it launches — a quick way to find the dominant kernel while
// developing cost models without wiring up the Chrome trace. Off by
// default; tests and tools toggle it temporarily.
var DebugTrace bool

func (d *Device) debugKernel(name string, ns float64, blocks int) {
	if DebugTrace && ns > 10000 {
		fmt.Printf("  kernel %-25s %8.1fus blocks=%d\n", name, ns/1e3, blocks)
	}
}

// Package device implements a deterministic GPU cost-model simulator.
//
// The Seastar paper's performance results are driven by memory-system and
// scheduling effects: global-memory traffic (and whether it is coalesced),
// atomic-instruction serialization, per-edge binary-search instruction
// overhead, SM occupancy as a function of block/thread-group geometry, and
// block-scheduling order interacting with skewed per-vertex work. This
// package models exactly those quantities. Kernels execute functionally on
// the CPU (so results are real numbers that tests can compare across
// systems) and charge a Launch record to a Device; the Device converts the
// record into simulated nanoseconds using a roofline model plus a greedy
// block-scheduling makespan, and tracks device-memory allocations with an
// out-of-memory threshold, reproducing the paper's OOM behaviour.
//
// All simulated results are deterministic: the same program produces the
// same simulated times and peak-memory numbers on any host.
package device

// Profile describes the hardware parameters of a simulated GPU.
type Profile struct {
	Name string
	// SMCount is the number of streaming multiprocessors.
	SMCount int
	// CoresPerSM is the number of FP32 lanes per SM.
	CoresPerSM int
	// ClockGHz is the core clock used to convert cycles to time.
	ClockGHz float64
	// MemBandwidthGBs is peak global-memory bandwidth in GB/s.
	MemBandwidthGBs float64
	// GlobalMemBytes is device-memory capacity; allocations past it fail.
	GlobalMemBytes int64
	// MaxThreadsPerSM and MaxBlocksPerSM bound occupancy.
	MaxThreadsPerSM int
	MaxBlocksPerSM  int
	// WarpSize is the SIMT width (32 on all NVIDIA parts).
	WarpSize int
	// KernelLaunchNs is the fixed host-side launch overhead.
	KernelLaunchNs float64
	// AtomicThroughput is sustainable global atomics per second.
	AtomicThroughput float64
	// CacheLineBytes is the memory transaction granularity used when
	// kernels account for uncoalesced access.
	CacheLineBytes int
}

// The three GPUs used in the paper's evaluation (§7).
var (
	// V100 models an NVIDIA Tesla V100 (16 GB).
	V100 = Profile{
		Name:             "V100",
		SMCount:          80,
		CoresPerSM:       64,
		ClockGHz:         1.38,
		MemBandwidthGBs:  900,
		GlobalMemBytes:   16 << 30,
		MaxThreadsPerSM:  2048,
		MaxBlocksPerSM:   32,
		WarpSize:         32,
		KernelLaunchNs:   5000,
		AtomicThroughput: 2.4e9,
		CacheLineBytes:   32,
	}
	// RTX2080Ti models an NVIDIA GeForce RTX 2080 Ti (11 GB).
	RTX2080Ti = Profile{
		Name:             "2080Ti",
		SMCount:          68,
		CoresPerSM:       64,
		ClockGHz:         1.545,
		MemBandwidthGBs:  616,
		GlobalMemBytes:   11 << 30,
		MaxThreadsPerSM:  1024,
		MaxBlocksPerSM:   16,
		WarpSize:         32,
		KernelLaunchNs:   5000,
		AtomicThroughput: 2.0e9,
		CacheLineBytes:   32,
	}
	// GTX1080Ti models an NVIDIA GeForce GTX 1080 Ti (11 GB).
	GTX1080Ti = Profile{
		Name:             "1080Ti",
		SMCount:          28,
		CoresPerSM:       128,
		ClockGHz:         1.582,
		MemBandwidthGBs:  484,
		GlobalMemBytes:   11 << 30,
		MaxThreadsPerSM:  2048,
		MaxBlocksPerSM:   32,
		WarpSize:         32,
		KernelLaunchNs:   6000,
		AtomicThroughput: 1.2e9,
		CacheLineBytes:   32,
	}
)

// Profiles lists the simulated GPUs in the order the paper reports them.
func Profiles() []Profile { return []Profile{V100, RTX2080Ti, GTX1080Ti} }

// ProfileByName returns the profile with the given name, or false.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// blocksPerSM returns how many blocks of the given size fit on one SM.
func (p Profile) blocksPerSM(threadsPerBlock int) int {
	if threadsPerBlock <= 0 {
		threadsPerBlock = 1
	}
	byThreads := p.MaxThreadsPerSM / threadsPerBlock
	if byThreads < 1 {
		byThreads = 1
	}
	if byThreads > p.MaxBlocksPerSM {
		byThreads = p.MaxBlocksPerSM
	}
	return byThreads
}

// Occupancy returns the fraction of SM thread slots occupied by resident
// blocks of the given size — the quantity the paper's feature-adaptive
// groups are designed to keep high (§6.3.1).
func (p Profile) Occupancy(threadsPerBlock int) float64 {
	resident := p.blocksPerSM(threadsPerBlock) * threadsPerBlock
	occ := float64(resident) / float64(p.MaxThreadsPerSM)
	if occ > 1 {
		occ = 1
	}
	return occ
}

package device

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestTraceRecordsKernels(t *testing.T) {
	d := New(V100)
	d.LaunchKernel(Launch{Name: "before", Blocks: 1, ThreadsPerBlock: 256, UniformBlockCycles: 10})
	d.EnableTrace()
	d.LaunchKernel(Launch{Name: "a", Blocks: 4, ThreadsPerBlock: 256, UniformBlockCycles: 100, LoadBytes: 1024})
	d.LaunchKernel(Launch{Name: "b", Blocks: 2, ThreadsPerBlock: 128, UniformBlockCycles: 50})
	d.LaunchKernel(Launch{Name: "a", Blocks: 4, ThreadsPerBlock: 256, UniformBlockCycles: 100})
	tr := d.Trace()
	if len(tr) != 3 {
		t.Fatalf("trace length %d (pre-enable kernel must be excluded)", len(tr))
	}
	if tr[0].Name != "a" || tr[0].Blocks != 4 || tr[0].LoadB != 1024 {
		t.Fatalf("record: %+v", tr[0])
	}
	if tr[1].StartNs < tr[0].StartNs+tr[0].DurNs {
		t.Fatal("records must not overlap on the single simulated stream")
	}
	if tr[0].ActiveTF != 1 {
		t.Fatalf("default active fraction: %v", tr[0].ActiveTF)
	}
	d.DisableTrace()
	d.LaunchKernel(Launch{Name: "c", Blocks: 1, ThreadsPerBlock: 64, UniformBlockCycles: 5})
	if d.Trace() != nil {
		t.Fatal("DisableTrace must drop the buffer")
	}
}

func TestWriteChromeTrace(t *testing.T) {
	d := New(RTX2080Ti)
	d.EnableTrace()
	d.LaunchKernel(Launch{Name: "k1", Blocks: 8, ThreadsPerBlock: 256, UniformBlockCycles: 500})
	var buf bytes.Buffer
	if err := d.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatal(err)
	}
	if len(parsed.TraceEvents) != 1 || parsed.TraceEvents[0].Name != "k1" ||
		parsed.TraceEvents[0].Ph != "X" || parsed.TraceEvents[0].Dur <= 0 {
		t.Fatalf("chrome trace: %s", buf.String())
	}
	if !strings.Contains(buf.String(), `"sched":"hardware"`) {
		t.Fatal("missing args")
	}
}

func TestSummarizeTrace(t *testing.T) {
	d := New(V100)
	d.EnableTrace()
	d.LaunchKernel(Launch{Name: "small", Blocks: 1, ThreadsPerBlock: 256, UniformBlockCycles: 10})
	d.LaunchKernel(Launch{Name: "big", Blocks: 1, ThreadsPerBlock: 256, UniformBlockCycles: 1e6})
	d.LaunchKernel(Launch{Name: "small", Blocks: 1, ThreadsPerBlock: 256, UniformBlockCycles: 10})
	s := d.SummarizeTrace()
	if len(s) != 2 {
		t.Fatalf("summary: %+v", s)
	}
	if s[0].Name != "big" {
		t.Fatalf("summary not sorted by total time: %+v", s)
	}
	if s[1].Name != "small" || s[1].Count != 2 {
		t.Fatalf("summary counts: %+v", s)
	}
}

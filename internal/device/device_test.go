package device

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestProfileByName(t *testing.T) {
	for _, want := range []string{"V100", "2080Ti", "1080Ti"} {
		p, ok := ProfileByName(want)
		if !ok || p.Name != want {
			t.Fatalf("ProfileByName(%q) = %v, %v", want, p.Name, ok)
		}
	}
	if _, ok := ProfileByName("H100"); ok {
		t.Fatal("unknown profile must not resolve")
	}
}

func TestOccupancySmallBlocks(t *testing.T) {
	// The paper's example: 16-thread blocks cap occupancy at 25% on a
	// 1080Ti (32 blocks/SM × 16 threads = 512 of 2048 slots).
	occ := GTX1080Ti.Occupancy(16)
	if occ != 0.25 {
		t.Fatalf("1080Ti occupancy(16) = %v, want 0.25", occ)
	}
	if full := GTX1080Ti.Occupancy(256); full != 1.0 {
		t.Fatalf("1080Ti occupancy(256) = %v, want 1", full)
	}
}

func TestAllocFreePeak(t *testing.T) {
	d := New(Profile{Name: "tiny", GlobalMemBytes: 1000})
	a, err := d.Alloc(400)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Alloc(500)
	if err != nil {
		t.Fatal(err)
	}
	if d.CurrentBytes() != 900 || d.PeakBytes() != 900 {
		t.Fatalf("cur=%d peak=%d", d.CurrentBytes(), d.PeakBytes())
	}
	a.Free()
	if d.CurrentBytes() != 500 || d.PeakBytes() != 900 {
		t.Fatalf("after free: cur=%d peak=%d", d.CurrentBytes(), d.PeakBytes())
	}
	a.Free() // double free is a no-op
	if d.CurrentBytes() != 500 {
		t.Fatal("double free changed accounting")
	}
	d.ResetPeak()
	if d.PeakBytes() != 500 {
		t.Fatalf("ResetPeak: %d", d.PeakBytes())
	}
	b.Free()
	if d.CurrentBytes() != 0 {
		t.Fatalf("final cur=%d", d.CurrentBytes())
	}
}

func TestAllocOOM(t *testing.T) {
	d := New(Profile{Name: "tiny", GlobalMemBytes: 1000})
	if _, err := d.Alloc(800); err != nil {
		t.Fatal(err)
	}
	_, err := d.Alloc(300)
	var oom *ErrOOM
	if !errors.As(err, &oom) {
		t.Fatalf("want ErrOOM, got %v", err)
	}
	if oom.Requested != 300 || oom.InUse != 800 || oom.Capacity != 1000 {
		t.Fatalf("OOM fields: %+v", oom)
	}
	if oom.Error() == "" {
		t.Fatal("empty error text")
	}
}

func TestWorkScaleExtrapolatesMemory(t *testing.T) {
	d := NewScaled(Profile{Name: "tiny", GlobalMemBytes: 1000}, 0.1)
	// 50 physical bytes represent 500 logical bytes.
	b, err := d.Alloc(50)
	if err != nil {
		t.Fatal(err)
	}
	if b.LogicalBytes() != 500 || d.CurrentBytes() != 500 {
		t.Fatalf("logical=%d cur=%d", b.LogicalBytes(), d.CurrentBytes())
	}
	// 60 more physical bytes → 600 logical → OOM at capacity 1000.
	if _, err := d.Alloc(60); err == nil {
		t.Fatal("expected extrapolated OOM")
	}
}

func TestNewScaledRejectsBadScale(t *testing.T) {
	for _, s := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("scale %v must panic", s)
				}
			}()
			NewScaled(V100, s)
		}()
	}
}

func TestLaunchKernelAccumulatesTime(t *testing.T) {
	d := New(V100)
	dur := d.LaunchKernel(Launch{
		Name:               "k",
		Blocks:             1000,
		ThreadsPerBlock:    256,
		UniformBlockCycles: 1000,
		LoadBytes:          1 << 20,
	})
	if dur <= 0 {
		t.Fatal("kernel duration must be positive")
	}
	if d.Elapsed() != dur {
		t.Fatalf("elapsed %v != kernel %v", d.Elapsed(), dur)
	}
	st := d.Stats()
	if st.Kernels != 1 || st.LoadBytes != 1<<20 {
		t.Fatalf("stats: %+v", st)
	}
	d.ResetClock()
	if d.Elapsed() != 0 || d.Stats().Kernels != 0 {
		t.Fatal("ResetClock did not clear state")
	}
}

func TestLaunchMemoryBound(t *testing.T) {
	// A kernel moving 1 GB with trivial compute must take ≈ 1/BW seconds.
	d := New(V100)
	d.LaunchKernel(Launch{
		Blocks:             1,
		ThreadsPerBlock:    256,
		UniformBlockCycles: 1,
		LoadBytes:          1 << 30,
	})
	wantNs := float64(1<<30) / V100.MemBandwidthGBs
	got := d.ElapsedNs()
	if got < wantNs || got > wantNs*1.1 {
		t.Fatalf("memory-bound time %v ns, want ≈ %v ns", got, wantNs)
	}
}

func TestLaunchAtomicBound(t *testing.T) {
	d := New(GTX1080Ti)
	d.LaunchKernel(Launch{
		Blocks:             1,
		ThreadsPerBlock:    256,
		UniformBlockCycles: 1,
		AtomicOps:          int64(GTX1080Ti.AtomicThroughput), // 1 second of atomics
	})
	secs := d.ElapsedNs() / 1e9
	if secs < 0.99 || secs > 1.1 {
		t.Fatalf("atomic-bound time %v s, want ≈ 1 s", secs)
	}
}

func TestLowOccupancyDegradesBandwidth(t *testing.T) {
	// Same bytes, tiny blocks on a device where 8-thread blocks yield
	// occupancy 0.125 → bandwidth fraction 0.5 → 2× slower than the
	// saturated case.
	p := Profile{
		Name: "t", SMCount: 1, CoresPerSM: 64, ClockGHz: 1,
		MemBandwidthGBs: 100, GlobalMemBytes: 1 << 30,
		MaxThreadsPerSM: 2048, MaxBlocksPerSM: 32, WarpSize: 32,
		AtomicThroughput: 1e9,
	}
	fast := New(p)
	fast.LaunchKernel(Launch{Blocks: 64, ThreadsPerBlock: 256, LoadBytes: 1 << 24})
	slow := New(p)
	slow.LaunchKernel(Launch{Blocks: 64, ThreadsPerBlock: 8, LoadBytes: 1 << 24})
	ratio := slow.ElapsedNs() / fast.ElapsedNs()
	if ratio < 1.8 || ratio > 2.3 {
		t.Fatalf("occupancy penalty ratio %v, want ≈ 2", ratio)
	}
}

func TestActiveThreadFracDegradesBandwidth(t *testing.T) {
	// Same launch, same bytes; a block with 1/256 active threads must be
	// memory-degraded by the 1/16 floor.
	base := Launch{Blocks: 64, ThreadsPerBlock: 256, LoadBytes: 1 << 24}
	full := New(V100)
	full.LaunchKernel(base)
	idle := New(V100)
	l := base
	l.ActiveThreadFrac = 1.0 / 256
	idle.LaunchKernel(l)
	ratio := idle.ElapsedNs() / full.ElapsedNs()
	if ratio < 12 || ratio > 20 {
		t.Fatalf("active-thread degradation ratio %.1f, want ≈ 16", ratio)
	}
	// Above 25% active threads there is no penalty.
	quarter := New(V100)
	l.ActiveThreadFrac = 0.25
	quarter.LaunchKernel(l)
	if quarter.ElapsedNs() != full.ElapsedNs() {
		t.Fatalf("25%% active should be unpenalized: %v vs %v",
			quarter.ElapsedNs(), full.ElapsedNs())
	}
}

func TestMakespanStaticVsDynamicSkew(t *testing.T) {
	// One huge block followed by many small ones: dynamic (hardware)
	// scheduling overlaps the straggler; static striping also puts the
	// big block alone on a slot, but if the skew lands mid-array the
	// static stripes pile up. Construct a case where a stripe gets two
	// big blocks.
	cycles := make([]float64, 8)
	for i := range cycles {
		cycles[i] = 1
	}
	cycles[0], cycles[4] = 100, 100 // same stripe when nSlots=4
	at := func(i int) float64 { return cycles[i] }
	dyn := makespan(at, 8, 4, SchedHardware)
	st := makespan(at, 8, 4, SchedStatic)
	if dyn != 101 {
		t.Fatalf("dynamic makespan %v, want 101", dyn)
	}
	if st != 200 {
		t.Fatalf("static makespan %v, want 200", st)
	}
}

func TestMakespanFewBlocks(t *testing.T) {
	at := func(i int) float64 { return float64(i + 1) }
	if got := makespan(at, 3, 10, SchedHardware); got != 3 {
		t.Fatalf("few-blocks makespan %v, want 3", got)
	}
	if got := makespan(at, 0, 10, SchedHardware); got != 0 {
		t.Fatalf("zero-blocks makespan %v", got)
	}
}

func TestAtomicSchedulingCostsMore(t *testing.T) {
	d1 := New(V100)
	d2 := New(V100)
	l := Launch{Blocks: 100000, ThreadsPerBlock: 256, UniformBlockCycles: 50}
	l.Sched = SchedHardware
	d1.LaunchKernel(l)
	l.Sched = SchedAtomic
	d2.LaunchKernel(l)
	if d2.ElapsedNs() <= d1.ElapsedNs() {
		t.Fatalf("atomic scheduling (%v ns) must cost more than hardware (%v ns)",
			d2.ElapsedNs(), d1.ElapsedNs())
	}
}

func TestSchedModeString(t *testing.T) {
	if SchedHardware.String() != "hardware" || SchedAtomic.String() != "atomic" ||
		SchedStatic.String() != "static" || SchedMode(9).String() == "" {
		t.Fatal("SchedMode String broken")
	}
}

func TestQuickMakespanBounds(t *testing.T) {
	// For any workload, makespan is between max(work) and sum(work) under
	// either scheduling policy, and greedy dispatch is within the classic
	// 2x list-scheduling bound of the lower bound max(maxWork, sum/slots).
	f := func(seed int64, nBlocks, nSlots uint8) bool {
		b := int(nBlocks%32) + 1
		s := int(nSlots%8) + 1
		work := make([]float64, b)
		x := uint64(seed)
		var sum, maxW float64
		for i := range work {
			x = x*6364136223846793005 + 1442695040888963407
			w := float64(x%1000) + 1
			work[i] = w
			sum += w
			if w > maxW {
				maxW = w
			}
		}
		at := func(i int) float64 { return work[i] }
		dyn := makespan(at, b, s, SchedHardware)
		st := makespan(at, b, s, SchedStatic)
		if dyn < maxW-1e-9 || dyn > sum+1e-9 {
			return false
		}
		if st < maxW-1e-9 || st > sum+1e-9 {
			return false
		}
		lower := sum / float64(s)
		if maxW > lower {
			lower = maxW
		}
		return dyn <= 2*lower+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

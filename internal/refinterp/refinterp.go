// Package refinterp is a direct, definition-following interpreter for GIR
// graphs: every node is materialized as a full tensor in its index space
// (S/D ⇒ one row per vertex, E ⇒ one row per edge, P ⇒ the parameter
// shape) and evaluated without fusion, kernels, or cost accounting.
//
// It exists as the differential-testing oracle for the compiled pipeline:
// the fused seastar execution of any program must match this interpreter
// bit-for-bit up to float accumulation order. It is also a readable
// specification of GIR semantics.
package refinterp

import (
	"fmt"
	"math"

	"seastar/internal/gir"
	"seastar/internal/graph"
	"seastar/internal/tensor"
)

// Bindings resolves leaves, mirroring kernels.Bindings without a device.
type Bindings struct {
	VFeat  map[string]*tensor.Tensor
	EFeat  map[string]*tensor.Tensor
	Params map[string]*tensor.Tensor
	Grad   *tensor.Tensor
	// Saved resolves LeafSaved references to forward values (themselves
	// computed by a previous Eval of the forward DAG).
	Saved map[*gir.Node]*tensor.Tensor
}

// Eval evaluates every node of dag over g and returns the value of each.
func Eval(dag *gir.DAG, g *graph.Graph, b *Bindings) (map[*gir.Node]*tensor.Tensor, error) {
	vals := make(map[*gir.Node]*tensor.Tensor, len(dag.Nodes))
	for _, n := range dag.Nodes {
		t, err := evalNode(n, g, b, vals)
		if err != nil {
			return nil, fmt.Errorf("refinterp: node %s: %w", n, err)
		}
		vals[n] = t
	}
	return vals, nil
}

// rows returns the row count of a node's index space.
func rows(n *gir.Node, g *graph.Graph) int {
	switch n.Type {
	case gir.TypeE:
		return g.M
	case gir.TypeP:
		return 1
	default:
		return g.N
	}
}

// rowAt reads the value of node `in` for edge e (endpoints src→dst).
func rowAt(in *gir.Node, t *tensor.Tensor, src, dst, eid int) []float32 {
	switch in.Type {
	case gir.TypeS:
		return t.Row(src)
	case gir.TypeD:
		return t.Row(dst)
	case gir.TypeE:
		return t.Row(eid)
	default: // P: broadcast
		return t.Data()
	}
}

func get(row []float32, j int) float32 {
	if len(row) == 1 {
		return row[0]
	}
	return row[j]
}

func evalNode(n *gir.Node, g *graph.Graph, b *Bindings, vals map[*gir.Node]*tensor.Tensor) (*tensor.Tensor, error) {
	if n.Op == gir.OpLeaf {
		return evalLeaf(n, b)
	}
	if n.Op.IsAgg() {
		return evalAgg(n, g, vals)
	}
	switch n.Op {
	case gir.OpMatMulP:
		x, w := vals[n.Inputs[0]], vals[n.Inputs[1]]
		return tensor.MatMul(x, w), nil
	case gir.OpMatMulPT:
		x, w := vals[n.Inputs[0]], vals[n.Inputs[1]]
		return tensor.MatMulT(x, w), nil
	case gir.OpParamGradMM:
		return evalParamGrad(n, g, vals, false)
	case gir.OpParamGradMMTyped:
		return evalParamGrad(n, g, vals, true)
	case gir.OpMatMulTyped, gir.OpMatMulTypedT:
		return evalTypedMM(n, g, vals)
	case gir.OpEdgeView:
		in := n.Inputs[0]
		t := vals[in]
		out := tensor.New(g.M, in.Dim())
		for e := 0; e < g.M; e++ {
			copy(out.Row(e), rowAt(in, t, int(g.Srcs[e]), int(g.Dsts[e]), e))
		}
		return out, nil
	}
	// Elementwise ops and RowSum: same index space as the (first
	// non-parameter) input; mixed vertex types imply an E-typed op whose
	// operands are read per edge.
	return evalPointwise(n, g, vals)
}

func evalLeaf(n *gir.Node, b *Bindings) (*tensor.Tensor, error) {
	switch n.LeafKind {
	case gir.LeafSrcFeat, gir.LeafDstFeat:
		if t, ok := b.VFeat[n.Key]; ok {
			return t, nil
		}
		return nil, fmt.Errorf("vertex feature %q not bound", n.Key)
	case gir.LeafEdgeFeat:
		if t, ok := b.EFeat[n.Key]; ok {
			return t, nil
		}
		return nil, fmt.Errorf("edge feature %q not bound", n.Key)
	case gir.LeafParam:
		if t, ok := b.Params[n.Key]; ok {
			return t, nil
		}
		return nil, fmt.Errorf("parameter %q not bound", n.Key)
	case gir.LeafGrad:
		if b.Grad == nil {
			return nil, fmt.Errorf("gradient not bound")
		}
		return b.Grad, nil
	case gir.LeafSaved:
		if n.Ref.Op == gir.OpLeaf {
			return evalLeaf(n.Ref, b)
		}
		if t, ok := b.Saved[n.Ref]; ok {
			return t, nil
		}
		return nil, fmt.Errorf("saved value %%%d not bound", n.Ref.ID)
	default:
		return nil, fmt.Errorf("unknown leaf kind %v", n.LeafKind)
	}
}

func evalAgg(n *gir.Node, g *graph.Graph, vals map[*gir.Node]*tensor.Tensor) (*tensor.Tensor, error) {
	in := n.Inputs[0]
	t := vals[in]
	out := tensor.New(g.N, n.Dim())
	toDst := n.Dir == gir.AggToDst
	csr := &g.In
	if !toDst {
		csr = &g.Out
	}
	for k := 0; k < csr.NumRows(); k++ {
		v := int(csr.RowIDs[k])
		nbrs, eids := csr.Row(k)
		or := out.Row(v)
		if len(nbrs) == 0 {
			continue
		}
		if n.Op == gir.OpAggHier {
			if err := aggHierRow(n, g, in, t, v, nbrs, eids, toDst, or); err != nil {
				return nil, err
			}
			continue
		}
		kind := n.Attr.AggOp
		initRow(or, kind)
		for i := range nbrs {
			// In-CSR rows are destinations (A:D); out-CSR rows sources.
			src, dst := int(nbrs[i]), v
			if !toDst {
				src, dst = v, int(nbrs[i])
			}
			row := rowAt(in, t, src, dst, int(eids[i]))
			reduceRow(or, row, kind)
		}
		if kind == gir.AggMean {
			inv := 1 / float32(len(nbrs))
			for j := range or {
				or[j] *= inv
			}
		}
	}
	return out, nil
}

func aggHierRow(n *gir.Node, g *graph.Graph, in *gir.Node, t *tensor.Tensor,
	v int, nbrs, eids []int32, toDst bool, or []float32) error {
	if g.EdgeTypes == nil {
		return fmt.Errorf("hierarchical aggregation needs edge types")
	}
	inner := make([]float32, len(or))
	initRow(or, n.Attr.OuterOp)
	curType := int32(-1)
	started := false
	for i := range nbrs {
		et := g.EdgeTypes[eids[i]]
		if started && et != curType {
			reduceRow(or, inner, n.Attr.OuterOp)
			initRow(inner, n.Attr.InnerOp)
		} else if !started {
			initRow(inner, n.Attr.InnerOp)
		}
		curType = et
		started = true
		src, dst := int(nbrs[i]), v
		if !toDst {
			src, dst = v, int(nbrs[i])
		}
		reduceRow(inner, rowAt(in, t, src, dst, int(eids[i])), n.Attr.InnerOp)
	}
	if started {
		reduceRow(or, inner, n.Attr.OuterOp)
	}
	return nil
}

func initRow(row []float32, kind gir.AggKind) {
	switch kind {
	case gir.AggMax:
		for i := range row {
			row[i] = float32(math.Inf(-1))
		}
	case gir.AggMin:
		for i := range row {
			row[i] = float32(math.Inf(1))
		}
	default:
		for i := range row {
			row[i] = 0
		}
	}
}

func reduceRow(acc, row []float32, kind gir.AggKind) {
	switch kind {
	case gir.AggMax:
		for j := range acc {
			if v := get(row, j); v > acc[j] {
				acc[j] = v
			}
		}
	case gir.AggMin:
		for j := range acc {
			if v := get(row, j); v < acc[j] {
				acc[j] = v
			}
		}
	default:
		for j := range acc {
			acc[j] += get(row, j)
		}
	}
}

func evalTypedMM(n *gir.Node, g *graph.Graph, vals map[*gir.Node]*tensor.Tensor) (*tensor.Tensor, error) {
	if g.EdgeTypes == nil {
		return nil, fmt.Errorf("typed matmul needs edge types")
	}
	in, w := n.Inputs[0], n.Inputs[1]
	x, ws := vals[in], vals[w]
	din, dout := w.Shape[1], w.Shape[2]
	out := tensor.New(g.M, n.Dim())
	wd := ws.Data()
	for e := 0; e < g.M; e++ {
		src, dst := int(g.Srcs[e]), int(g.Dsts[e])
		xr := rowAt(in, x, src, dst, e)
		or := out.Row(e)
		base := int(g.EdgeTypes[e]) * din * dout
		if n.Op == gir.OpMatMulTyped {
			for o := 0; o < dout; o++ {
				var s float32
				for i := 0; i < din; i++ {
					s += get(xr, i) * wd[base+i*dout+o]
				}
				or[o] = s
			}
		} else { // transposed
			for i := 0; i < din; i++ {
				var s float32
				for o := 0; o < dout; o++ {
					s += get(xr, o) * wd[base+i*dout+o]
				}
				or[i] = s
			}
		}
	}
	return out, nil
}

func evalParamGrad(n *gir.Node, g *graph.Graph, vals map[*gir.Node]*tensor.Tensor, typed bool) (*tensor.Tensor, error) {
	xN, gN := n.Inputs[0], n.Inputs[1]
	x, gr := vals[xN], vals[gN]
	out := tensor.New(n.Shape...)
	din := n.Shape[len(n.Shape)-2]
	dout := n.Shape[len(n.Shape)-1]
	od := out.Data()
	vertexOnly := effType(xN) != gir.TypeE && effType(gN) != gir.TypeE
	if vertexOnly && !typed {
		return tensor.TMatMul(x, gr).Reshape(n.Shape...), nil
	}
	for e := 0; e < g.M; e++ {
		src, dst := int(g.Srcs[e]), int(g.Dsts[e])
		xr := rowAtEff(xN, x, src, dst, e)
		grr := rowAtEff(gN, gr, src, dst, e)
		base := 0
		if typed {
			base = int(g.EdgeTypes[e]) * din * dout
		}
		for i := 0; i < din; i++ {
			for o := 0; o < dout; o++ {
				od[base+i*dout+o] += get(xr, i) * get(grr, o)
			}
		}
	}
	return out, nil
}

// effType resolves LeafSaved to its referent's graph type.
func effType(n *gir.Node) gir.GraphType {
	if n.Op == gir.OpLeaf && n.LeafKind == gir.LeafSaved && n.Ref != nil {
		return n.Ref.Type
	}
	return n.Type
}

func rowAtEff(n *gir.Node, t *tensor.Tensor, src, dst, eid int) []float32 {
	switch effType(n) {
	case gir.TypeS:
		return t.Row(src)
	case gir.TypeD:
		return t.Row(dst)
	case gir.TypeE:
		return t.Row(eid)
	default:
		return t.Data()
	}
}

// evalPointwise handles elementwise ops and RowSum: output index space is
// n's type; operands are read per row (per edge when E-typed).
func evalPointwise(n *gir.Node, g *graph.Graph, vals map[*gir.Node]*tensor.Tensor) (*tensor.Tensor, error) {
	nRows := rows(n, g)
	width := n.Dim()
	var out *tensor.Tensor
	if n.Type == gir.TypeP {
		out = tensor.New(n.Shape...)
	} else {
		out = tensor.New(nRows, width)
	}
	ins := make([]*tensor.Tensor, len(n.Inputs))
	for i, in := range n.Inputs {
		ins[i] = vals[in]
	}
	for r := 0; r < nRows; r++ {
		src, dst, eid := r, r, r
		if n.Type == gir.TypeE {
			src, dst = int(g.Srcs[r]), int(g.Dsts[r])
		}
		var or []float32
		if n.Type == gir.TypeP {
			or = out.Data()
		} else {
			or = out.Row(r)
		}
		rowsIn := make([][]float32, len(ins))
		for i, in := range n.Inputs {
			rowsIn[i] = rowAt(in, ins[i], src, dst, eid)
		}
		if err := applyPointwise(n, or, rowsIn); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func applyPointwise(n *gir.Node, out []float32, in [][]float32) error {
	w := len(out)
	switch n.Op {
	case gir.OpAdd:
		for j := 0; j < w; j++ {
			out[j] = get(in[0], j) + get(in[1], j)
		}
	case gir.OpSub:
		for j := 0; j < w; j++ {
			out[j] = get(in[0], j) - get(in[1], j)
		}
	case gir.OpMul:
		for j := 0; j < w; j++ {
			out[j] = get(in[0], j) * get(in[1], j)
		}
	case gir.OpDiv:
		for j := 0; j < w; j++ {
			out[j] = get(in[0], j) / get(in[1], j)
		}
	case gir.OpNeg:
		for j := 0; j < w; j++ {
			out[j] = -get(in[0], j)
		}
	case gir.OpExp:
		for j := 0; j < w; j++ {
			out[j] = float32(math.Exp(float64(get(in[0], j))))
		}
	case gir.OpLog:
		for j := 0; j < w; j++ {
			out[j] = float32(math.Log(float64(get(in[0], j))))
		}
	case gir.OpLeakyReLU:
		for j := 0; j < w; j++ {
			v := get(in[0], j)
			if v < 0 {
				v *= n.Attr.Slope
			}
			out[j] = v
		}
	case gir.OpReLU:
		for j := 0; j < w; j++ {
			v := get(in[0], j)
			if v < 0 {
				v = 0
			}
			out[j] = v
		}
	case gir.OpSigmoid:
		for j := 0; j < w; j++ {
			out[j] = 1 / (1 + float32(math.Exp(float64(-get(in[0], j)))))
		}
	case gir.OpTanh:
		for j := 0; j < w; j++ {
			out[j] = float32(math.Tanh(float64(get(in[0], j))))
		}
	case gir.OpMulConst:
		for j := 0; j < w; j++ {
			out[j] = n.Attr.C * get(in[0], j)
		}
	case gir.OpAddConst:
		for j := 0; j < w; j++ {
			out[j] = n.Attr.C + get(in[0], j)
		}
	case gir.OpLeakyReLUGrad:
		for j := 0; j < w; j++ {
			if get(in[0], j) > 0 {
				out[j] = get(in[1], j)
			} else {
				out[j] = n.Attr.Slope * get(in[1], j)
			}
		}
	case gir.OpReLUGrad:
		for j := 0; j < w; j++ {
			if get(in[0], j) > 0 {
				out[j] = get(in[1], j)
			} else {
				out[j] = 0
			}
		}
	case gir.OpSigmoidGrad:
		for j := 0; j < w; j++ {
			y := get(in[0], j)
			out[j] = get(in[1], j) * y * (1 - y)
		}
	case gir.OpTanhGrad:
		for j := 0; j < w; j++ {
			y := get(in[0], j)
			out[j] = get(in[1], j) * (1 - y*y)
		}
	case gir.OpRowSum:
		var s float32
		for _, v := range in[0] {
			s += v
		}
		out[0] = s
	default:
		return fmt.Errorf("unsupported pointwise op %s", n.Op)
	}
	return nil
}

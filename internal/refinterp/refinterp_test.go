package refinterp

import (
	"math"
	"testing"

	"seastar/internal/gir"
	"seastar/internal/graph"
	"seastar/internal/tensor"
)

func buildDAG(t *testing.T, setup func(b *gir.Builder) gir.UDF) *gir.DAG {
	t.Helper()
	b := gir.NewBuilder()
	dag, err := b.Build(setup(b))
	if err != nil {
		t.Fatal(err)
	}
	return dag
}

func TestEvalCopySum(t *testing.T) {
	g := graph.Figure7()
	dag := buildDAG(t, func(b *gir.Builder) gir.UDF {
		b.VFeature("h", 1)
		return func(v *gir.Vertex) *gir.Value { return v.Nbr("h").AggSum() }
	})
	h := tensor.FromSlice([]float32{1, 2, 3, 4}, 4, 1)
	vals, err := Eval(dag, g, &Bindings{VFeat: map[string]*tensor.Tensor{"h": h}})
	if err != nil {
		t.Fatal(err)
	}
	want := tensor.FromSlice([]float32{9, 4, 4, 2}, 4, 1)
	if !tensor.AllClose(vals[dag.Outputs[0]], want, 1e-6) {
		t.Fatalf("copy-sum: %v", vals[dag.Outputs[0]])
	}
}

func TestEvalAggKinds(t *testing.T) {
	g := graph.Figure7()
	h := tensor.FromSlice([]float32{1, 2, 3, 4}, 4, 1)
	for kind, wantA := range map[gir.AggKind]float32{
		gir.AggSum:  9, // B+C+D = 2+3+4
		gir.AggMax:  4,
		gir.AggMin:  2,
		gir.AggMean: 3,
	} {
		dag := buildDAG(t, func(b *gir.Builder) gir.UDF {
			b.VFeature("h", 1)
			return func(v *gir.Vertex) *gir.Value {
				switch kind {
				case gir.AggMax:
					return v.Nbr("h").AggMax()
				case gir.AggMin:
					return v.Nbr("h").AggMin()
				case gir.AggMean:
					return v.Nbr("h").AggMean()
				default:
					return v.Nbr("h").AggSum()
				}
			}
		})
		vals, err := Eval(dag, g, &Bindings{VFeat: map[string]*tensor.Tensor{"h": h}})
		if err != nil {
			t.Fatal(err)
		}
		if got := vals[dag.Outputs[0]].At(0, 0); got != wantA {
			t.Errorf("%s at A: %v want %v", kind, got, wantA)
		}
	}
}

func TestEvalEdgeFeatureAndTypedOps(t *testing.T) {
	g := graph.Figure7()
	types := []int32{0, 1, 1, 0, 0, 1, 0}
	if err := g.WithEdgeTypes(types, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.SortEdgesByType(); err != nil {
		t.Fatal(err)
	}
	dag := buildDAG(t, func(b *gir.Builder) gir.UDF {
		b.VFeature("h", 2)
		b.EFeature("ew", 1)
		Ws := b.Param("W", 2, 2, 1)
		return func(v *gir.Vertex) *gir.Value {
			return v.Nbr("h").MatMulTyped(Ws).Mul(v.Edge("ew")).AggHier(gir.AggSum, gir.AggSum)
		}
	})
	h := tensor.FromSlice([]float32{1, 1, 2, 2, 3, 3, 4, 4}, 4, 2)
	W := tensor.FromSlice([]float32{1, 1, 10, 0}, 2, 2, 1)
	ew := tensor.Ones(7, 1)
	vals, err := Eval(dag, g, &Bindings{
		VFeat:  map[string]*tensor.Tensor{"h": h},
		EFeat:  map[string]*tensor.Tensor{"ew": ew},
		Params: map[string]*tensor.Tensor{"W": W},
	})
	if err != nil {
		t.Fatal(err)
	}
	// A: B(t0)=4, C(t1)=30, D(t1)=40 → 74 (same as the kernel test).
	if got := vals[dag.Outputs[0]].At(0, 0); got != 74 {
		t.Fatalf("typed matmul at A: %v", got)
	}
}

func TestEvalMissingBindings(t *testing.T) {
	g := graph.Figure7()
	dag := buildDAG(t, func(b *gir.Builder) gir.UDF {
		b.VFeature("h", 1)
		return func(v *gir.Vertex) *gir.Value { return v.Nbr("h").AggSum() }
	})
	if _, err := Eval(dag, g, &Bindings{}); err == nil {
		t.Fatal("missing binding accepted")
	}
}

func TestEvalHierNeedsTypes(t *testing.T) {
	g := graph.Figure7() // no edge types
	dag := buildDAG(t, func(b *gir.Builder) gir.UDF {
		b.VFeature("h", 1)
		return func(v *gir.Vertex) *gir.Value {
			return v.Nbr("h").AggHier(gir.AggSum, gir.AggSum)
		}
	})
	_, err := Eval(dag, g, &Bindings{VFeat: map[string]*tensor.Tensor{
		"h": tensor.New(4, 1),
	}})
	if err == nil {
		t.Fatal("hier aggregation without types accepted")
	}
}

func TestEvalIsolatedVerticesZero(t *testing.T) {
	// A star graph: leaves have no in-edges; their aggregation is 0.
	g := graph.Star(5)
	dag := buildDAG(t, func(b *gir.Builder) gir.UDF {
		b.VFeature("h", 2)
		return func(v *gir.Vertex) *gir.Value { return v.Nbr("h").Exp().AggSum() }
	})
	h := tensor.Ones(5, 2)
	vals, err := Eval(dag, g, &Bindings{VFeat: map[string]*tensor.Tensor{"h": h}})
	if err != nil {
		t.Fatal(err)
	}
	out := vals[dag.Outputs[0]]
	// Center gets 4·e; leaves get 0.
	if math.Abs(float64(out.At(0, 0))-4*math.E) > 1e-4 {
		t.Fatalf("center: %v", out.At(0, 0))
	}
	for v := 1; v < 5; v++ {
		if out.At(v, 0) != 0 {
			t.Fatalf("leaf %d: %v", v, out.At(v, 0))
		}
	}
}

package adapt

import "seastar/internal/obs"

// UnitProfile is the compact running profile of one execution unit,
// accumulated from obs span deltas: observed time, edge/row throughput
// and allocation rate. It is the measured input the re-planner reasons
// from, replacing the static cost model's assumed constants.
type UnitProfile struct {
	// Unit is the obs label ("fwd/unit 3 [seastar]").
	Unit string `json:"unit"`
	// Runs counts launches observed.
	Runs int64 `json:"runs"`
	// Ns is the summed wall time of those launches.
	Ns int64 `json:"ns"`
	// Edges and Rows are the summed work counters the kernel layer
	// reported (0 for dense units, which report neither).
	Edges int64 `json:"edges,omitempty"`
	Rows  int64 `json:"rows,omitempty"`
	// Allocs is the summed heap allocations attributed to the unit
	// (populated only while obs alloc tracking is on).
	Allocs int64 `json:"allocs,omitempty"`
	// TileWidth and Specialized echo the plan facts the kernel reported
	// with the measurements, so a profile is self-describing.
	TileWidth   int64 `json:"tile_width,omitempty"`
	Specialized bool  `json:"specialized,omitempty"`
}

// NsPerEdge is the observed per-edge cost (0 when no edges were
// reported).
func (p UnitProfile) NsPerEdge() float64 {
	if p.Edges <= 0 {
		return 0
	}
	return float64(p.Ns) / float64(p.Edges)
}

// NsPerRow is the observed per-row cost (0 when no rows were reported).
func (p UnitProfile) NsPerRow() float64 {
	if p.Rows <= 0 {
		return 0
	}
	return float64(p.Ns) / float64(p.Rows)
}

// AllocsPerRun is the observed allocation rate per launch.
func (p UnitProfile) AllocsPerRun() float64 {
	if p.Runs <= 0 {
		return 0
	}
	return float64(p.Allocs) / float64(p.Runs)
}

// Merge folds another window of the same unit into the running profile.
func (p *UnitProfile) Merge(d UnitProfile) {
	p.Runs += d.Runs
	p.Ns += d.Ns
	p.Edges += d.Edges
	p.Rows += d.Rows
	p.Allocs += d.Allocs
	if d.TileWidth != 0 {
		p.TileWidth = d.TileWidth
	}
	p.Specialized = p.Specialized || d.Specialized
}

// Recorder extracts per-unit profiles from the obs registry as deltas
// between marks, so callers can attribute exactly one trial window
// without resetting the registry under anyone else's feet. It enables
// tracing on creation and restores the previous state on Close.
type Recorder struct {
	prev       map[string]obs.Entry
	wasEnabled bool
}

// NewRecorder enables obs tracing and marks the current registry state
// as the baseline.
func NewRecorder() *Recorder {
	r := &Recorder{wasEnabled: obs.Enabled()}
	obs.Enable()
	r.Mark()
	return r
}

// Mark sets the delta baseline to the registry's current state.
func (r *Recorder) Mark() { r.prev = snapshotEntries() }

// Delta returns the per-unit profiles accumulated since the last Mark
// and advances the baseline. Kernel-layer counters (category "kern")
// join their exec spans (category "exec") by label; exec spans without
// kernel counters (dense units) still profile time and allocs. Pipeline
// stage spans (category "pipeline": sample/gather/compute) fold the
// same way, so a recorder around a training epoch yields measured
// per-stage costs for the overlap model to recalibrate from.
func (r *Recorder) Delta() map[string]UnitProfile {
	cur := snapshotEntries()
	out := make(map[string]UnitProfile)
	for key, e := range cur {
		base := r.prev[key]
		if e.Cat == "exec" || e.Cat == "pipeline" {
			dRuns := e.Count - base.Count
			dNs := e.TotalNs - base.TotalNs
			dAllocs := e.Counters["allocs"] - base.Counters["allocs"]
			if dRuns <= 0 && dNs <= 0 && dAllocs <= 0 {
				continue
			}
			p := out[e.Name]
			p.Unit = e.Name
			p.Runs += dRuns
			p.Ns += dNs
			p.Allocs += dAllocs
			out[e.Name] = p
		}
		if e.Cat == "kern" {
			dEdges := e.Counters["edges"] - base.Counters["edges"]
			dRows := e.Counters["rows"] - base.Counters["rows"]
			if dEdges <= 0 && dRows <= 0 {
				continue
			}
			p := out[e.Name]
			p.Unit = e.Name
			p.Edges += dEdges
			p.Rows += dRows
			p.TileWidth = e.Counters["tile_width"]
			p.Specialized = e.Counters["specialized"] != 0
			out[e.Name] = p
		}
	}
	r.prev = cur
	return out
}

// Close restores the tracing state the recorder found at creation.
func (r *Recorder) Close() {
	if !r.wasEnabled {
		obs.Disable()
	}
}

func snapshotEntries() map[string]obs.Entry {
	out := map[string]obs.Entry{}
	for _, e := range obs.Snapshot() {
		out[e.Cat+"\x00"+e.Name] = e
	}
	return out
}

// MergeProfiles folds a delta window into a running per-unit profile
// map (allocating it on first use).
func MergeProfiles(into map[string]UnitProfile, delta map[string]UnitProfile) map[string]UnitProfile {
	if into == nil {
		into = make(map[string]UnitProfile, len(delta))
	}
	for name, d := range delta {
		p := into[name]
		if p.Unit == "" {
			p.Unit = name
		}
		p.Merge(d)
		into[name] = p
	}
	return into
}

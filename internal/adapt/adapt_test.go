package adapt

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"seastar/internal/obs"
)

func testKey() Key {
	return Key{Model: "sage-h16", GraphFP: 0xabcdef0123456789, InDim: 16, Procs: 4, Host: "test/amd64/h/c4"}
}

func prefetchCands() []Candidate {
	return []Candidate{
		{Name: "static"},
		{Name: "prefetch=1 workers=1",
			Tuning: Tuning{Prefetch: 1, SampleWorkers: 1},
			Knob:   "prefetch", Static: 4, Learned: 1},
		{Name: "prefetch=8",
			Tuning: Tuning{Prefetch: 8},
			Knob:   "prefetch", Static: 4, Learned: 8},
	}
}

// drive feeds the tuner deterministic trial times per candidate until it
// settles or maxTrials elapse.
func drive(t *testing.T, tn *Tuner, ns func(idx, trial int) int64, maxTrials int) {
	t.Helper()
	counts := map[int]int{}
	for i := 0; i < maxTrials; i++ {
		idx, _, done := tn.Next()
		if done {
			return
		}
		tn.Report(idx, ns(idx, counts[idx]))
		counts[idx]++
	}
	t.Fatalf("tuner did not settle within %d trials", maxTrials)
}

func TestTunerCommitsSustainedWin(t *testing.T) {
	tn := NewTuner(testKey(), Config{Explore: 3, Rounds: 2, Win: 0.10}, prefetchCands())
	// Candidate 1 is consistently 20% faster than static; candidate 2 is
	// 5% slower. The tuner must commit candidate 1 after exactly two
	// evaluation rounds (hysteresis), no sooner.
	drive(t, tn, func(idx, trial int) int64 {
		switch idx {
		case 1:
			return 80_000_000
		case 2:
			return 105_000_000
		default:
			return 100_000_000
		}
	}, 100)
	p, ok := tn.Plan()
	if !ok {
		t.Fatal("tuner did not settle")
	}
	if p.Gen != 2 {
		t.Fatalf("settled at gen %d, want 2 (two-round hysteresis)", p.Gen)
	}
	if p.Tuning.Prefetch != 1 || p.Tuning.SampleWorkers != 1 {
		t.Fatalf("committed tuning %+v, want prefetch=1 workers=1", p.Tuning)
	}
	if !p.Learned() {
		t.Fatal("plan should report Learned")
	}
	if len(p.Decisions) != 1 || !p.Decisions[0].Diverged() {
		t.Fatalf("want one diverged decision, got %+v", p.Decisions)
	}
	if got := p.WinPct(); got < 19 || got > 21 {
		t.Fatalf("WinPct = %.1f, want ~20", got)
	}
}

func TestTunerValidatesStaticUnderThreshold(t *testing.T) {
	tn := NewTuner(testKey(), Config{Explore: 2, Rounds: 2, Win: 0.10}, prefetchCands())
	// Best challenger is only 5% faster — below the 10% bar, so the
	// static plan must win and the decisions must say "validated".
	drive(t, tn, func(idx, trial int) int64 {
		switch idx {
		case 1:
			return 95_000_000
		case 2:
			return 99_000_000
		default:
			return 100_000_000
		}
	}, 100)
	p, ok := tn.Plan()
	if !ok {
		t.Fatal("tuner did not settle")
	}
	if p.Learned() {
		t.Fatalf("static plan should have been validated, got tuning %+v", p.Tuning)
	}
	if len(p.Decisions) != 1 {
		t.Fatalf("want one validation decision per knob, got %+v", p.Decisions)
	}
	d := p.Decisions[0]
	if d.Diverged() || d.Knob != "prefetch" {
		t.Fatalf("unexpected decision %+v", d)
	}
	if d.WinPct < 4 || d.WinPct > 6 {
		t.Fatalf("validation decision should carry the best challenger margin ~5%%, got %.1f", d.WinPct)
	}
}

func TestTunerHysteresisRejectsOneOffWin(t *testing.T) {
	tn := NewTuner(testKey(), Config{Explore: 1, Rounds: 2, Win: 0.10}, prefetchCands())
	// Candidate 1 wins round 1 by 30% (a noise spike), then loses every
	// later round. The streak must reset and the static plan settle.
	round := 0
	drive(t, tn, func(idx, trial int) int64 {
		if idx == 0 {
			round = trial // Explore=1 → trial count == round index
		}
		if idx == 1 && round == 0 {
			return 70_000_000
		}
		if idx == 1 {
			return 120_000_000
		}
		if idx == 2 {
			return 130_000_000
		}
		return 100_000_000
	}, 100)
	p, _ := tn.Plan()
	if p.Learned() {
		t.Fatalf("one-off win must not commit; got tuning %+v at gen %d", p.Tuning, p.Gen)
	}
	if p.Gen < 3 {
		t.Fatalf("streak should have reset after the spike; settled at gen %d", p.Gen)
	}
}

func TestTunerAdoptSkipsExploration(t *testing.T) {
	tn := NewTuner(testKey(), Config{}, prefetchCands())
	learned := Plan{Version: planVersion, Key: testKey(), Gen: 3,
		Tuning: Tuning{Prefetch: 1, SampleWorkers: 1}, BaseNs: 100, BestNs: 80}
	tn.Adopt(learned)
	if !tn.Settled() {
		t.Fatal("adopted tuner must be settled")
	}
	idx, tuning, done := tn.Next()
	if !done || idx != -1 {
		t.Fatalf("Next after Adopt = (%d, done=%v), want settled", idx, done)
	}
	if tuning.Prefetch != 1 {
		t.Fatalf("adopted tuning not returned: %+v", tuning)
	}
}

func TestStoreRoundTripAndCorruptFallback(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "plans.json")
	s := NewStore(path)
	key := testKey()

	if _, ok, err := s.Load(key); ok || err != nil {
		t.Fatalf("empty store Load = ok=%v err=%v, want miss with no error", ok, err)
	}

	p := Plan{Version: planVersion, Key: key, Gen: 2,
		Tuning:    Tuning{Prefetch: 1, SampleWorkers: 1},
		Decisions: []Decision{{Knob: "prefetch", Static: 4, Learned: 1, WinPct: 16.5, Why: "measured"}},
		BaseNs:    661_000_000, BestNs: 552_000_000,
		Profile: map[string]UnitProfile{"fwd/unit 0 [seastar]": {Unit: "fwd/unit 0 [seastar]", Runs: 10, Ns: 1000, Edges: 500}},
	}
	if err := s.Save(p); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, ok, err := s.Load(key)
	if !ok || err != nil {
		t.Fatalf("Load after Save = ok=%v err=%v", ok, err)
	}
	if got.Gen != 2 || got.Tuning.Prefetch != 1 || len(got.Decisions) != 1 || got.Profile["fwd/unit 0 [seastar]"].Edges != 500 {
		t.Fatalf("round-trip mangled plan: %+v", got)
	}

	// A second key must coexist in the same file.
	key2 := key
	key2.Procs = 1
	if err := s.Save(Plan{Version: planVersion, Key: key2, Gen: 1}); err != nil {
		t.Fatalf("Save second key: %v", err)
	}
	if _, ok, _ := s.Load(key); !ok {
		t.Fatal("first plan lost after saving a second key")
	}

	// Corrupt the file: Load must fall back to a miss with a diagnostic,
	// never an adopted garbage plan; Save must recover the file.
	if err := os.WriteFile(path, []byte("{torn write"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, ok, err = s.Load(key)
	if ok {
		t.Fatalf("corrupt file yielded a plan: %+v", got)
	}
	if err == nil {
		t.Fatal("corrupt file should surface a diagnostic error")
	}
	if err := s.Save(p); err != nil {
		t.Fatalf("Save over corrupt file: %v", err)
	}
	if _, ok, err := s.Load(key); !ok || err != nil {
		t.Fatalf("store did not recover from corruption: ok=%v err=%v", ok, err)
	}

	// Wrong-version file: same graceful miss.
	if err := os.WriteFile(path, []byte(`{"version":999,"plans":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Load(key); ok {
		t.Fatal("future-version file must not yield plans")
	}
}

func TestStoreDisabled(t *testing.T) {
	var s *Store
	if _, ok, err := s.Load(testKey()); ok || err != nil {
		t.Fatal("nil store must be a silent miss")
	}
	if err := s.Save(Plan{Key: testKey()}); err != nil {
		t.Fatal("nil store Save must be a no-op")
	}
	s = NewStore("")
	if _, ok, err := s.Load(testKey()); ok || err != nil {
		t.Fatal("pathless store must be a silent miss")
	}
}

func TestRecorderDeltas(t *testing.T) {
	defer obs.Reset()
	obs.Reset()
	r := NewRecorder()
	defer r.Close()

	emit := func(ns int64, edges, rows int64) {
		obs.Observe("exec", "fwd/unit 0 [seastar]", time.Duration(ns))
		obs.Add("kern", "fwd/unit 0 [seastar]", "edges", edges)
		obs.Add("kern", "fwd/unit 0 [seastar]", "rows", rows)
		obs.Set("kern", "fwd/unit 0 [seastar]", "tile_width", 32)
		obs.Set("kern", "fwd/unit 0 [seastar]", "specialized", 1)
	}
	emit(1000, 800, 100)
	emit(1000, 800, 100)
	d := r.Delta()
	p := d["fwd/unit 0 [seastar]"]
	if p.Runs != 2 || p.Ns != 2000 || p.Edges != 1600 || p.Rows != 200 {
		t.Fatalf("first delta wrong: %+v", p)
	}
	if p.TileWidth != 32 || !p.Specialized {
		t.Fatalf("plan facts missing from profile: %+v", p)
	}
	if got := p.NsPerEdge(); got != 2000.0/1600.0 {
		t.Fatalf("NsPerEdge = %v", got)
	}
	if got := p.NsPerRow(); got != 10 {
		t.Fatalf("NsPerRow = %v", got)
	}

	// Second window sees only what happened after the first Delta.
	emit(500, 400, 50)
	d = r.Delta()
	p = d["fwd/unit 0 [seastar]"]
	if p.Runs != 1 || p.Ns != 500 || p.Edges != 400 || p.Rows != 50 {
		t.Fatalf("second delta not isolated: %+v", p)
	}

	// Empty window → empty delta.
	if d := r.Delta(); len(d) != 0 {
		t.Fatalf("idle delta not empty: %+v", d)
	}

	run := map[string]UnitProfile{}
	run = MergeProfiles(run, map[string]UnitProfile{"u": {Unit: "u", Runs: 1, Ns: 10, Allocs: 3}})
	run = MergeProfiles(run, map[string]UnitProfile{"u": {Unit: "u", Runs: 1, Ns: 20, Allocs: 1}})
	if p := run["u"]; p.Runs != 2 || p.Ns != 30 || p.Allocs != 4 || p.AllocsPerRun() != 2 {
		t.Fatalf("MergeProfiles wrong: %+v", p)
	}
}

func TestReplannerRunsAndCloses(t *testing.T) {
	before := countGoroutines(t)
	fired := make(chan struct{}, 64)
	r := NewReplanner(time.Millisecond, func() {
		select {
		case fired <- struct{}{}:
		default:
		}
	})
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("replanner never fired")
	}
	r.Close()
	r.Close() // idempotent
	waitGoroutines(t, before)
}

func countGoroutines(t *testing.T) int {
	t.Helper()
	return runtime.NumGoroutine()
}

func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d > %d after close", runtime.NumGoroutine(), want)
}

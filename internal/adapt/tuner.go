package adapt

import (
	"fmt"
	"os"
	"sync"
)

// Candidate is one tuning the tuner may commit. The candidate at index
// 0 must be the static plan (zero Tuning); challengers each describe
// which knob they move so the settled plan can explain itself.
type Candidate struct {
	// Name labels the candidate in logs ("prefetch=1 workers=1").
	Name   string
	Tuning Tuning
	// Knob, Unit, Static and Learned pre-fill the Decision this
	// candidate produces if committed.
	Knob    string
	Unit    string
	Static  int64
	Learned int64
}

// Config tunes the tuner itself.
type Config struct {
	// Explore is how many trials each candidate gets per evaluation
	// round; the round metric is the minimum (robust to shared-host
	// noise). Default 3.
	Explore int
	// Rounds is how many consecutive rounds the same challenger must
	// win before the tuner commits it — the hysteresis. Default 2.
	Rounds int
	// Win is the fractional improvement over the static plan a
	// challenger must sustain (default 0.10: plans only switch on a
	// sustained >10% measured win).
	Win float64
}

func (c Config) withDefaults() Config {
	if c.Explore <= 0 {
		c.Explore = 3
	}
	if c.Rounds <= 0 {
		c.Rounds = 2
	}
	if c.Win <= 0 {
		c.Win = 0.10
	}
	return c
}

// Tuner runs the measured re-planning loop for one cached program: hand
// out candidates round-robin with Next, report each trial's measured
// nanoseconds with Report, and after enough sustained evidence the
// tuner settles on a plan (Settled/Plan). All methods are safe for
// concurrent use; the hot path after settling is one mutex-guarded
// field read.
type Tuner struct {
	mu    sync.Mutex
	cfg   Config
	key   Key
	cands []Candidate

	trials  []int   // trials completed this round, per candidate
	roundNs []int64 // min ns this round, per candidate
	bestNs  []int64 // min ns across all rounds, per candidate
	next    int     // round-robin cursor
	round   int     // completed evaluation rounds
	leader  int     // candidate winning the current streak
	streak  int     // consecutive rounds the leader has won
	settled bool
	plan    Plan

	profile map[string]UnitProfile
}

// NewTuner creates an exploring tuner over the candidate set. cands[0]
// must be the static plan; NewTuner prepends one if the caller did not.
func NewTuner(key Key, cfg Config, cands []Candidate) *Tuner {
	if len(cands) == 0 || !cands[0].Tuning.IsZero() {
		cands = append([]Candidate{{Name: "static"}}, cands...)
	}
	t := &Tuner{cfg: cfg.withDefaults(), key: key, cands: cands}
	t.resetRound()
	t.bestNs = make([]int64, len(cands))
	return t
}

// Adopt settles the tuner on a previously learned plan immediately — the
// warm-restart path: no exploration runs, Next always returns the
// adopted tuning.
func (t *Tuner) Adopt(p Plan) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.settled = true
	t.plan = p
}

func (t *Tuner) resetRound() {
	t.trials = make([]int, len(t.cands))
	t.roundNs = make([]int64, len(t.cands))
}

// Next returns the candidate to measure next: its index (to pass back
// to Report) and its tuning. Once settled it always returns the
// committed plan's tuning with done=true, and trials need no Report.
func (t *Tuner) Next() (idx int, tuning Tuning, done bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.settled {
		return -1, t.plan.Tuning, true
	}
	// Round-robin interleaves candidates so drift in host load hits all
	// of them, not whichever happened to run last.
	for i := 0; i < len(t.cands); i++ {
		c := (t.next + i) % len(t.cands)
		if t.trials[c] < t.cfg.Explore {
			t.next = (c + 1) % len(t.cands)
			return c, t.cands[c].Tuning, false
		}
	}
	// All full (concurrent callers mid-round): hand out static.
	return 0, t.cands[0].Tuning, false
}

// Report records one measured trial of candidate idx. When the round
// completes (every candidate measured Explore times) the tuner
// evaluates it and, with enough sustained evidence, settles.
func (t *Tuner) Report(idx int, ns int64) {
	if ns <= 0 || idx < 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.settled || idx >= len(t.cands) {
		return
	}
	if t.trials[idx] == 0 || ns < t.roundNs[idx] {
		t.roundNs[idx] = ns
	}
	t.trials[idx]++
	for _, n := range t.trials {
		if n < t.cfg.Explore {
			return
		}
	}
	t.evaluateRound()
}

// AddProfile folds a per-unit measured window into the running profile
// that the settled plan will carry.
func (t *Tuner) AddProfile(delta map[string]UnitProfile) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.profile = MergeProfiles(t.profile, delta)
}

// evaluateRound closes the current round: pick the round winner, update
// the streak, settle if the hysteresis is satisfied. Called with t.mu
// held.
func (t *Tuner) evaluateRound() {
	t.round++
	winner := 0
	for i, ns := range t.roundNs {
		if ns > 0 && (t.roundNs[winner] <= 0 || ns < t.roundNs[winner]) {
			winner = i
		}
		if t.bestNs[i] == 0 || (ns > 0 && ns < t.bestNs[i]) {
			t.bestNs[i] = ns
		}
	}
	staticNs := t.roundNs[0]
	// A challenger only counts as winning when it clears the sustained
	// win threshold against the static plan this round.
	if winner != 0 && staticNs > 0 &&
		float64(t.roundNs[winner]) > float64(staticNs)*(1-t.cfg.Win) {
		winner = 0
	}
	// Sticky leader: when two challengers both clear the static bar they
	// can trade round wins on measurement noise forever, resetting the
	// streak each time. A new challenger dethrones the current one only
	// by beating it decisively (half the static-win margin); a
	// within-noise swap keeps the streak with the incumbent.
	if t.leader != 0 && winner != 0 && winner != t.leader {
		leaderNs := t.roundNs[t.leader]
		if leaderNs > 0 && float64(t.roundNs[winner]) > float64(leaderNs)*(1-t.cfg.Win/2) {
			winner = t.leader
		}
	}
	if os.Getenv("ADAPT_DEBUG") != "" {
		fmt.Fprintf(os.Stderr, "adapt: round %d roundNs=%v winner=%s leader=%s streak=%d\n",
			t.round, t.roundNs, t.cands[winner].Name, t.cands[t.leader].Name, t.streak)
	}
	if winner == t.leader {
		t.streak++
	} else {
		t.leader, t.streak = winner, 1
	}
	t.resetRound()
	if t.streak >= t.cfg.Rounds {
		t.settle(t.leader)
	}
}

// settle commits candidate idx as the plan. Called with t.mu held.
func (t *Tuner) settle(idx int) {
	t.settled = true
	win := t.cands[idx]
	p := Plan{
		Version: planVersion,
		Key:     t.key,
		Gen:     t.round,
		Tuning:  win.Tuning,
		BaseNs:  t.bestNs[0],
		BestNs:  t.bestNs[idx],
		Profile: t.profile,
	}
	winPct := func(i int) float64 {
		if t.bestNs[0] <= 0 || t.bestNs[i] <= 0 {
			return 0
		}
		return 100 * (1 - float64(t.bestNs[i])/float64(t.bestNs[0]))
	}
	if idx == 0 {
		// The static model survived its measured challenge: record one
		// validation decision per distinct knob, with the best
		// challenger's (insufficient) margin as evidence.
		seen := map[string]int{}
		for i := 1; i < len(t.cands); i++ {
			c := t.cands[i]
			k := c.Unit + "\x00" + c.Knob
			if j, ok := seen[k]; !ok || winPct(i) > winPct(j) {
				seen[k] = i
			}
		}
		for _, i := range seen {
			c := t.cands[i]
			p.Decisions = append(p.Decisions, Decision{
				Unit: c.Unit, Knob: c.Knob, Static: c.Static, Learned: c.Static,
				WinPct: winPct(i),
				Why: fmt.Sprintf("validated: best challenger (%s) measured %+.1f%%, below the %.0f%% sustained-win bar",
					c.Name, winPct(i), t.cfg.Win*100),
			})
		}
	} else {
		p.Decisions = append(p.Decisions, Decision{
			Unit: win.Unit, Knob: win.Knob, Static: win.Static, Learned: win.Learned,
			WinPct: winPct(idx),
			Why: fmt.Sprintf("measured %.1f%% faster than static over %d consecutive rounds (min of %d trials each)",
				winPct(idx), t.streak, t.cfg.Explore),
		})
	}
	t.plan = p
}

// Settled reports whether the tuner has committed a plan.
func (t *Tuner) Settled() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.settled
}

// Plan returns the committed plan; ok is false while still exploring.
func (t *Tuner) Plan() (Plan, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.plan, t.settled
}

// Rounds reports completed evaluation rounds (diagnostics).
func (t *Tuner) Rounds() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.round
}

package adapt

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// planFile is the on-disk format: one JSON document holding every
// learned plan of this path, keyed by Key.String().
type planFile struct {
	Version int             `json:"version"`
	Plans   map[string]Plan `json:"plans"`
}

// Store persists learned plans to one JSON file with atomic-rename
// writes: a crash mid-save leaves the previous file intact, and a
// corrupt or missing file degrades to "no learned plans" — callers fall
// back to the static plan and re-explore. All methods are safe for
// concurrent use within the process.
type Store struct {
	// Path is the plan file ("" disables persistence: Load finds
	// nothing, Save does nothing).
	Path string

	mu sync.Mutex
}

// NewStore opens a store at path (which need not exist yet).
func NewStore(path string) *Store { return &Store{Path: path} }

// Load returns the learned plan for key, if one is persisted. A
// missing, unreadable or corrupt plan file is not an error — warm
// restarts must degrade to cold starts, never fail — so Load reports it
// only through ok=false and the returned diagnostic.
func (s *Store) Load(key Key) (p Plan, ok bool, diag error) {
	if s == nil || s.Path == "" {
		return Plan{}, false, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := s.read()
	if err != nil {
		if os.IsNotExist(err) {
			return Plan{}, false, nil
		}
		return Plan{}, false, err
	}
	p, found := f.Plans[key.String()]
	if !found || p.Version != planVersion {
		return Plan{}, false, nil
	}
	if p.Key != key {
		// Key collision or hand-edited file: trust nothing.
		return Plan{}, false, fmt.Errorf("adapt: plan under %q carries key %q", key, p.Key)
	}
	return p, true, nil
}

// Save upserts a settled plan and atomically replaces the plan file. A
// corrupt existing file is overwritten rather than propagated.
func (s *Store) Save(p Plan) error {
	if s == nil || s.Path == "" {
		return nil
	}
	if p.Version == 0 {
		p.Version = planVersion
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := s.read()
	if err != nil {
		f = &planFile{Version: planVersion, Plans: map[string]Plan{}}
	}
	if f.Plans == nil {
		f.Plans = map[string]Plan{}
	}
	f.Plans[p.Key.String()] = p
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	dir := filepath.Dir(s.Path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".plans-*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	// Atomic publish: readers see the old complete file or the new one,
	// never a torn write.
	if err := os.Rename(tmp.Name(), s.Path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// read parses the plan file. Callers hold s.mu.
func (s *Store) read() (*planFile, error) {
	data, err := os.ReadFile(s.Path)
	if err != nil {
		return nil, err
	}
	var f planFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("adapt: corrupt plan file %s: %w", s.Path, err)
	}
	if f.Version != planVersion {
		return nil, fmt.Errorf("adapt: plan file %s has version %d, want %d", s.Path, f.Version, planVersion)
	}
	return &f, nil
}

// Package adapt closes the observability loop: it turns measured
// execution profiles (internal/obs spans and wall-clock trials) into
// re-planned knob settings for the static planners — feature-tile width
// and chunk granularity in kernels, serial-vs-parallel collapse in
// sched's dispatch, micro-batch size in serve, and prefetch depth in the
// training pipeline.
//
// The design is trial-based, not model-based: a Tuner hands out
// candidate tunings round-robin, the caller measures each trial with the
// wall clock (or per-unit obs deltas via Recorder), and a candidate is
// committed only after it beats the static plan by a sustained margin
// (Config.Win, default 10%) over Config.Rounds consecutive evaluation
// rounds — the hysteresis that keeps a noisy host from flapping plans.
// Within each round every candidate is measured Config.Explore times
// interleaved and scored by its minimum, the standard robust metric for
// shared-host timing noise.
//
// Every candidate must stay inside the bitwise-safe envelope: knobs may
// move work between tiles, chunks, workers, batches or prefetch slots,
// but never change per-element arithmetic order. Tiling and chunking are
// proven bitwise-safe by the kernels property tests; prefetch and
// micro-batch sizing never touch kernel arithmetic at all. A re-planned
// program therefore produces byte-identical outputs to its static plan
// (enforced by the fusion fuzzer's re-planned third run).
//
// Settled plans persist as JSON keyed by (model, graph fingerprint,
// feature dim, GOMAXPROCS, host) with atomic-rename writes, so a warm
// restart adopts the learned plan immediately and skips exploration.
package adapt

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"os"
	"runtime"
	"strconv"
)

// Key identifies one learned plan: the same model on the same graph
// shape, host and parallelism budget re-uses it; anything else explores
// from scratch.
type Key struct {
	// Model names the compiled program (a model spec key or program name).
	Model string `json:"model"`
	// GraphFP is the graph-topology fingerprint the plan was learned on.
	GraphFP uint64 `json:"graph_fp"`
	// InDim is the input feature width.
	InDim int `json:"in_dim"`
	// Procs is the scheduler worker bound the plan was learned under.
	Procs int `json:"procs"`
	// Host fingerprints the machine (OS/arch/hostname/core count).
	Host string `json:"host"`
}

// String renders the key in the stable form used as the plan-file map
// key.
func (k Key) String() string {
	return fmt.Sprintf("%s|%016x|d%d|p%d|%s", k.Model, k.GraphFP, k.InDim, k.Procs, k.Host)
}

// HostID fingerprints this machine for plan keying: learned trade-offs
// (e.g. "prefetch depth pays goroutine churn on a 1-core box") do not
// transfer across hosts.
func HostID() string {
	hn, err := os.Hostname()
	if err != nil {
		hn = "unknown"
	}
	return runtime.GOOS + "/" + runtime.GOARCH + "/" + hn + "/c" + strconv.Itoa(runtime.NumCPU())
}

// GraphFP fingerprints a graph topology for plan keying: FNV-1a over
// the vertex/edge counts and a strided sample of the edge list — the
// same scheme the serving snapshot uses, cheap enough to run per job.
// Callers pass raw counts and edge slices so this package stays free of
// a graph dependency.
func GraphFP(n, m int, srcs, dsts []int32) uint64 {
	h := fnv.New64a()
	var b [4]byte
	w32 := func(v int32) {
		binary.LittleEndian.PutUint32(b[:], uint32(v))
		h.Write(b[:])
	}
	w32(int32(n))
	w32(int32(m))
	stride := m/64 + 1
	for i := 0; i < m && i < len(srcs) && i < len(dsts); i += stride {
		w32(srcs[i])
		w32(dsts[i])
	}
	return h.Sum64()
}

// UnitTuning overrides one kernel's static plan. Zero values mean "keep
// the static decision". All fields stay inside the bitwise-safe
// envelope.
type UnitTuning struct {
	// TileWidth pins the feature-tile width of the interpreted edge loop
	// (ignored on untileable kernels and on the specialized path, which
	// streams full width by construction).
	TileWidth int `json:"tile_width,omitempty"`
	// Serial collapses (+1) or forces (-1) parallel dispatch; 0 keeps
	// the static cost-model threshold.
	Serial int8 `json:"serial,omitempty"`
	// ChunksPerWorker overrides the partition oversubscription factor.
	ChunksPerWorker int `json:"chunks_per_worker,omitempty"`
}

// IsZero reports whether the tuning keeps every static decision.
func (u UnitTuning) IsZero() bool { return u == UnitTuning{} }

// Tuning is one complete re-plan of a cached program: per-unit kernel
// overrides plus the program-wide scheduling knobs. The zero value is
// the static plan.
type Tuning struct {
	// Units maps exec unit labels (e.g. "fwd/unit 3 [seastar]") to their
	// kernel overrides.
	Units map[string]UnitTuning `json:"units,omitempty"`
	// MaxBatch overrides the serve micro-batch cap (0 = static).
	MaxBatch int `json:"max_batch,omitempty"`
	// Prefetch overrides the pipeline prefetch depth; -1 means "keep
	// static" because 0 is a meaningful value (serial, no pipeline).
	Prefetch int `json:"prefetch,omitempty"`
	// SampleWorkers overrides the pipeline sampling worker count
	// (0 = static).
	SampleWorkers int `json:"sample_workers,omitempty"`
}

// IsZero reports whether the tuning is the static plan.
func (t Tuning) IsZero() bool {
	if t.MaxBatch != 0 || t.SampleWorkers != 0 || (t.Prefetch != 0 && t.Prefetch != -1) {
		return false
	}
	for _, u := range t.Units {
		if !u.IsZero() {
			return false
		}
	}
	return true
}

// Decision records one knob the tuner evaluated: what the static model
// chose, what the measurements chose, and why. EXPLAIN ANALYZE renders
// these under the learned(gen=K) annotation.
type Decision struct {
	// Unit is the kernel label for per-unit knobs, empty for
	// program-wide ones.
	Unit string `json:"unit,omitempty"`
	// Knob names the planner decision ("tile_width", "chunks_per_worker",
	// "serial", "max_batch", "prefetch", "sample_workers").
	Knob string `json:"knob"`
	// Static and Learned are the knob values before and after
	// adaptation; equal when the measurements validated the static model.
	Static  int64 `json:"static"`
	Learned int64 `json:"learned"`
	// WinPct is the measured improvement of the learned value over the
	// static plan (negative when the static plan measured faster).
	WinPct float64 `json:"win_pct"`
	// Why is the one-line human rationale.
	Why string `json:"why"`
}

// Diverged reports whether the measurements overrode the static model.
func (d Decision) Diverged() bool { return d.Static != d.Learned }

// Plan is a settled adaptation: the committed tuning, the decisions
// that produced it, and the measured evidence. Plans serialize to the
// Store and render in EXPLAIN ANALYZE.
type Plan struct {
	// Version guards the persistence format.
	Version int `json:"version"`
	Key     Key `json:"key"`
	// Gen counts evaluation rounds the tuner ran before settling; a
	// warm-started plan keeps the generation it was learned at.
	Gen       int        `json:"gen"`
	Tuning    Tuning     `json:"tuning"`
	Decisions []Decision `json:"decisions,omitempty"`
	// BaseNs and BestNs are the static plan's and the committed plan's
	// best observed trial (equal when the static plan won).
	BaseNs int64 `json:"base_ns"`
	BestNs int64 `json:"best_ns"`
	// Profile is the per-unit measured profile recorded while tuning
	// (empty when the caller measured wall clock only).
	Profile map[string]UnitProfile `json:"profile,omitempty"`
}

// planVersion is the current persistence format.
const planVersion = 1

// Learned reports whether any knob diverged from the static model.
func (p *Plan) Learned() bool { return !p.Tuning.IsZero() }

// WinPct is the committed plan's measured improvement over static.
func (p *Plan) WinPct() float64 {
	if p.BaseNs <= 0 || p.BestNs <= 0 {
		return 0
	}
	return 100 * (1 - float64(p.BestNs)/float64(p.BaseNs))
}

package adapt

import (
	"sync"
	"time"
)

// Replanner runs a re-planning step on its own goroutine at a fixed
// cadence, so the hot path (request handling, kernel launches) never
// pays for plan evaluation or persistence. Close stops the goroutine
// and waits for it to exit — the goroutine-leak contract the serve
// layer's shutdown tests enforce.
type Replanner struct {
	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

// NewReplanner starts a goroutine invoking step every interval until
// Close. The first invocation happens one interval after start, not
// immediately — callers warm up before re-planning by construction.
func NewReplanner(interval time.Duration, step func()) *Replanner {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	r := &Replanner{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(r.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				step()
			case <-r.stop:
				return
			}
		}
	}()
	return r
}

// Close stops the re-planning goroutine and blocks until it has
// exited. Safe to call more than once.
func (r *Replanner) Close() {
	r.closeOnce.Do(func() { close(r.stop) })
	<-r.done
}

// Package part implements edge-balanced vertex-cut graph partitioning
// for sharded serving. A partition assigns every vertex's complete
// in-edge row to exactly one shard (its master); source vertices that
// feed rows on other shards are replicated there as mirrors. Keeping
// whole rows together is what makes sharded inference bitwise-identical
// to the single-process forward: a per-vertex fold never splits across
// shards, so it sees exactly the neighbour values, in exactly the
// neighbour order, that the full-graph kernel would.
//
// The cost model is internal/sched's CSR edge-unit model — a row weighs
// its in-degree plus a fixed per-row overhead — so shard capacities line
// up with what the kernel scheduler already balances within a process.
package part

import (
	"fmt"
	"sort"

	"seastar/internal/graph"
	"seastar/internal/sched"
)

// RowCost is the per-row overhead in edge-units, matching the kernel
// scheduler's chunking cost (internal/kernels uses 4 edge-units per row
// for leaf loads and pre/post processing).
const RowCost = 4

// capacitySlack is how far above the ideal per-shard share the greedy
// placer may load a shard before the hard cap engages. Tight enough to
// keep shards edge-balanced, loose enough that affinity placement is not
// forced into round-robin.
const capacitySlack = 1.05

// Partition is a k-way vertex-cut of one graph: the owner table plus one
// Fragment per shard. It is a pure deterministic function of
// (graph, mode, k), so every process that loads the same dataset derives
// byte-identical fragments and exchange tables — there is no fragment
// wire format.
type Partition struct {
	K     int
	N, M  int
	Mode  string
	Owner []int32 // global vertex id → owning shard
	Frags []*Fragment
	Stats Stats
}

// Fragment is one shard's slice of the graph: a local-id graph holding
// the complete in-edge rows of every owned vertex, feature/degree rows
// for all locals (owned followed by mirrors), and the exchange tables
// that pair it with its peers.
type Fragment struct {
	Shard int
	K     int

	// G is the local-id graph. Rows 0..NumLocals()-1 correspond to
	// Locals; only the first Owned rows carry in-edges (mirror rows are
	// degree-0 placeholders whose values are imported, never computed).
	// Per-row neighbour order is the full graph's: edges are emitted in
	// ascending global edge id, the same counting-sort order buildCSR
	// gives the full graph.
	G *graph.Graph

	// Locals maps local id → global vertex id. Locals[:Owned] are owned
	// (this shard is their master), the rest are mirrors, each group in
	// ascending global id.
	Locals []int32
	Owned  int

	// LocalOf maps global vertex id → local id + 1 (0 = not local).
	LocalOf []int32

	// GlobalInDeg / GlobalOutDeg carry the full graph's degrees per
	// local row, so shard workers compute normalizers with exactly the
	// arithmetic the single-process snapshot uses.
	GlobalInDeg  []int32
	GlobalOutDeg []int32

	// ExportTo[t] lists the owned local rows whose global vertex is
	// mirrored on shard t, in ascending global id. ImportFrom[t] lists
	// this shard's mirror rows mastered by shard t, in the same order —
	// fragment s's ImportFrom[t] pairs element-for-element with fragment
	// t's ExportTo[s], so exchanged row blocks need no id headers.
	ExportTo   [][]int32
	ImportFrom [][]int32
}

// NumLocals returns the fragment's total row count (owned + mirrors).
func (f *Fragment) NumLocals() int { return len(f.Locals) }

// Mirrors returns the number of mirror rows.
func (f *Fragment) Mirrors() int { return len(f.Locals) - f.Owned }

// Stats summarizes partition quality.
type Stats struct {
	K        int     `json:"k"`
	Vertices int     `json:"vertices"`
	Edges    int     `json:"edges"`
	Mode     string  `json:"mode"`
	RowCost  float64 `json:"row_cost"`

	// Replication is the vertex replication factor: Σ per-shard locals
	// divided by N. 1.0 means no mirrors; bounded above by K.
	Replication float64 `json:"replication"`

	// MirrorFlows counts distinct (master vertex, remote shard) pairs —
	// the rows actually transferred per exchange round. One transfer
	// serves every cut edge that pair covers, so this is the
	// deduplicated cross-shard traffic unit.
	MirrorFlows int `json:"mirror_flows"`

	// EdgeCutRatio is MirrorFlows / M: the fraction of edges that cost a
	// cross-shard row transfer after mirror deduplication. This is the
	// ratio the CI gate bounds.
	EdgeCutRatio float64 `json:"edge_cut_ratio"`

	// RawCutFrac is the undeduplicated cut: the fraction of edges whose
	// endpoints have different masters. On structureless random graphs
	// this approaches 1−1/k regardless of partitioner quality; it is
	// reported for context, not gated.
	RawCutFrac float64 `json:"raw_cut_frac"`

	// Edge-unit balance across shards (units = in-edges + RowCost·rows).
	MaxShardUnits float64 `json:"max_shard_units"`
	MinShardUnits float64 `json:"min_shard_units"`
	// Balance is max/mean shard units; 1.0 is perfect.
	Balance float64 `json:"balance"`
}

// Build partitions g into k shards. Mode is "greedy" (default: streaming
// highest-degree-first placement scoring neighbour affinity against
// remaining capacity) or "range" (contiguous vertex ranges from
// sched.EdgeBalanced — the kernel scheduler's own chunking, useful as a
// locality-free baseline).
func Build(g *graph.Graph, k int, mode string) (*Partition, error) {
	if g == nil {
		return nil, fmt.Errorf("part: nil graph")
	}
	if k < 1 {
		return nil, fmt.Errorf("part: shard count %d must be ≥ 1", k)
	}
	if k > g.N {
		return nil, fmt.Errorf("part: %d shards for %d vertices", k, g.N)
	}
	if mode == "" {
		mode = "greedy"
	}
	var owner []int32
	switch mode {
	case "greedy":
		owner = greedyOwners(g, k)
	case "range":
		owner = rangeOwners(g, k)
	default:
		return nil, fmt.Errorf("part: unknown mode %q (want greedy|range)", mode)
	}
	p := &Partition{K: k, N: g.N, M: g.M, Mode: mode, Owner: owner}
	p.Frags = buildFragments(g, owner, k)
	p.Stats = computeStats(g, p, mode)
	return p, nil
}

// rangeOwners assigns contiguous vertex ranges balanced by the sched
// edge-unit model over the in-CSR (original vertex order).
func rangeOwners(g *graph.Graph, k int) []int32 {
	owner := make([]int32, g.N)
	ranges := sched.EdgeBalanced(g.In.Offsets, RowCost, k)
	for s, r := range ranges {
		for v := r.Lo; v < r.Hi; v++ {
			owner[g.In.RowIDs[v]] = int32(s)
		}
	}
	// EdgeBalanced may return fewer ranges than k on degenerate inputs;
	// vertices default to shard 0, which buildFragments tolerates.
	return owner
}

// greedyOwners streams vertices in descending total-degree order (hubs
// first, the order in which placement decisions matter most) and places
// each on the shard maximizing
//
//	(1 + assigned neighbours there) × (1 − load/capacity)
//
// — linear deterministic greedy (LDG) adapted to the vertex-cut: the
// affinity term counts both in- and out-neighbours already assigned,
// since either direction's co-location removes a future mirror, and the
// load term keeps shards edge-balanced under the sched cost model.
func greedyOwners(g *graph.Graph, k int) []int32 {
	n := g.N
	inDeg := g.InDegrees()
	outDeg := g.OutDegrees()

	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		da := int(inDeg[order[a]]) + int(outDeg[order[a]])
		db := int(inDeg[order[b]]) + int(outDeg[order[b]])
		if da != db {
			return da > db
		}
		return order[a] < order[b]
	})

	totalUnits := float64(g.M) + RowCost*float64(n)
	capacity := totalUnits / float64(k) * capacitySlack

	owner := make([]int32, n)
	for i := range owner {
		owner[i] = -1
	}
	load := make([]float64, k)
	affinity := make([]float64, k)

	inOff, inNbrs := g.In.Offsets, g.In.Nbrs
	outOff, outNbrs := g.Out.Offsets, g.Out.Nbrs
	// Row r of each CSR describes vertex RowIDs[r]; FromEdges builds
	// identity RowIDs, but stay general for sorted graphs.
	inRowOf := invertRowIDs(g.In.RowIDs)
	outRowOf := invertRowIDs(g.Out.RowIDs)

	for _, v := range order {
		for s := range affinity {
			affinity[s] = 0
		}
		r := inRowOf[v]
		for _, u := range inNbrs[inOff[r]:inOff[r+1]] {
			if o := owner[u]; o >= 0 {
				affinity[o]++
			}
		}
		r = outRowOf[v]
		for _, u := range outNbrs[outOff[r]:outOff[r+1]] {
			if o := owner[u]; o >= 0 {
				affinity[o]++
			}
		}
		best, bestScore := -1, -1.0
		for s := 0; s < k; s++ {
			if load[s] >= capacity {
				continue
			}
			score := (1 + affinity[s]) * (1 - load[s]/capacity)
			if score > bestScore {
				best, bestScore = s, score
			}
		}
		if best < 0 {
			// Every shard hit the cap (slack exhausted): least loaded.
			best = 0
			for s := 1; s < k; s++ {
				if load[s] < load[best] {
					best = s
				}
			}
		}
		owner[v] = int32(best)
		load[best] += float64(inDeg[v]) + RowCost
	}
	return owner
}

func invertRowIDs(rowIDs []int32) []int32 {
	inv := make([]int32, len(rowIDs))
	for r, v := range rowIDs {
		inv[v] = int32(r)
	}
	return inv
}

// buildFragments materializes each shard's local graph and exchange
// tables from the owner assignment.
func buildFragments(g *graph.Graph, owner []int32, k int) []*Fragment {
	n := g.N
	inDeg := g.InDegrees()
	outDeg := g.OutDegrees()

	// Mirror discovery: vertex u is mirrored on shard t when some edge
	// u→v has owner[v] = t ≠ owner[u]. Scan the edge list once.
	type key struct {
		u int32
		t int32
	}
	mirrored := make(map[key]struct{})
	for e := 0; e < g.M; e++ {
		u, v := g.Srcs[e], g.Dsts[e]
		if t := owner[v]; t != owner[u] {
			mirrored[key{u, t}] = struct{}{}
		}
	}

	frags := make([]*Fragment, k)
	for s := 0; s < k; s++ {
		frags[s] = &Fragment{
			Shard: s, K: k,
			LocalOf:    make([]int32, n),
			ExportTo:   make([][]int32, k),
			ImportFrom: make([][]int32, k),
		}
	}
	// Owned rows first, ascending global id.
	for v := 0; v < n; v++ {
		f := frags[owner[v]]
		f.LocalOf[v] = int32(len(f.Locals)) + 1
		f.Locals = append(f.Locals, int32(v))
	}
	for _, f := range frags {
		f.Owned = len(f.Locals)
	}
	// Mirror rows after, ascending global id (map iteration is not
	// ordered; collect and sort).
	mirrorList := make([][]int32, k) // per shard: global ids to mirror
	for mk := range mirrored {
		mirrorList[mk.t] = append(mirrorList[mk.t], mk.u)
	}
	for t, list := range mirrorList {
		sort.Slice(list, func(a, b int) bool { return list[a] < list[b] })
		f := frags[t]
		for _, u := range list {
			f.LocalOf[u] = int32(len(f.Locals)) + 1
			f.Locals = append(f.Locals, u)
		}
	}

	// Exchange tables: shard t's mirror u (mastered by s=owner[u]) is an
	// ImportFrom[s] entry on t and an ExportTo[t] entry on s. Both sides
	// iterate t's mirror list in ascending global id, so the orders pair.
	for t, list := range mirrorList {
		ft := frags[t]
		for _, u := range list {
			s := owner[u]
			fs := frags[s]
			fs.ExportTo[t] = append(fs.ExportTo[t], fs.LocalOf[u]-1)
			ft.ImportFrom[s] = append(ft.ImportFrom[s], ft.LocalOf[u]-1)
		}
	}

	// Degrees per local row.
	for _, f := range frags {
		f.GlobalInDeg = make([]int32, len(f.Locals))
		f.GlobalOutDeg = make([]int32, len(f.Locals))
		for l, v := range f.Locals {
			f.GlobalInDeg[l] = inDeg[v]
			f.GlobalOutDeg[l] = outDeg[v]
		}
	}

	// Local graphs: every owned row's complete in-edge list, emitted in
	// ascending global edge id — the exact per-row neighbour order the
	// full graph's counting-sort CSR has. Mirror rows get no edges.
	srcs := make([][]int32, k)
	dsts := make([][]int32, k)
	for e := 0; e < g.M; e++ {
		u, v := g.Srcs[e], g.Dsts[e]
		s := owner[v]
		f := frags[s]
		srcs[s] = append(srcs[s], f.LocalOf[u]-1)
		dsts[s] = append(dsts[s], f.LocalOf[v]-1)
	}
	for s, f := range frags {
		lg, err := graph.FromEdges(len(f.Locals), srcs[s], dsts[s])
		if err != nil {
			// Inputs are constructed in-range; unreachable.
			panic(fmt.Sprintf("part: fragment %d graph: %v", s, err))
		}
		f.G = lg
	}
	return frags
}

func computeStats(g *graph.Graph, p *Partition, mode string) Stats {
	st := Stats{
		K: p.K, Vertices: p.N, Edges: p.M, Mode: mode, RowCost: RowCost,
	}
	rawCut := 0
	for e := 0; e < g.M; e++ {
		if p.Owner[g.Srcs[e]] != p.Owner[g.Dsts[e]] {
			rawCut++
		}
	}
	totalLocals := 0
	var maxUnits, minUnits, sumUnits float64
	for s, f := range p.Frags {
		totalLocals += len(f.Locals)
		units := float64(f.G.M) + RowCost*float64(f.Owned)
		sumUnits += units
		if s == 0 || units > maxUnits {
			maxUnits = units
		}
		if s == 0 || units < minUnits {
			minUnits = units
		}
	}
	st.MirrorFlows = totalLocals - p.N
	st.Replication = float64(totalLocals) / float64(p.N)
	if p.M > 0 {
		st.EdgeCutRatio = float64(st.MirrorFlows) / float64(p.M)
		st.RawCutFrac = float64(rawCut) / float64(p.M)
	}
	st.MaxShardUnits = maxUnits
	st.MinShardUnits = minUnits
	if mean := sumUnits / float64(p.K); mean > 0 {
		st.Balance = maxUnits / mean
	}
	return st
}

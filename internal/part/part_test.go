package part

import (
	"math/rand"
	"testing"

	"seastar/internal/graph"
)

func zipfGraph(t testing.TB, n, deg int, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	return graph.ZipfDegree(rng, n, deg, 1.0)
}

// checkInvariants asserts the vertex-cut contract on one partition:
// masters cover every vertex exactly once, every edge lands in exactly
// the fragment owning its destination with its full-graph neighbour
// order preserved, exchange tables pair element-for-element, and the
// replication factor stays within [1, k].
func checkInvariants(t *testing.T, g *graph.Graph, p *Partition) {
	t.Helper()
	k := p.K

	// Masters cover all vertices, consistently with Owner.
	seen := make([]int, g.N)
	totalOwned := 0
	for s, f := range p.Frags {
		if f.Owned > len(f.Locals) {
			t.Fatalf("shard %d: owned %d > locals %d", s, f.Owned, len(f.Locals))
		}
		totalOwned += f.Owned
		for l, v := range f.Locals {
			if f.LocalOf[v]-1 != int32(l) {
				t.Fatalf("shard %d: LocalOf[%d]=%d, want %d", s, v, f.LocalOf[v]-1, l)
			}
			if l < f.Owned {
				seen[v]++
				if p.Owner[v] != int32(s) {
					t.Fatalf("shard %d owns vertex %d but Owner says %d", s, v, p.Owner[v])
				}
			} else if p.Owner[v] == int32(s) {
				t.Fatalf("shard %d mirrors its own vertex %d", s, v)
			}
		}
	}
	if totalOwned != g.N {
		t.Fatalf("masters cover %d of %d vertices", totalOwned, g.N)
	}
	for v, c := range seen {
		if c != 1 {
			t.Fatalf("vertex %d mastered %d times", v, c)
		}
	}

	// Every edge in exactly one fragment: each fragment holds the
	// complete in-edge row of each owned vertex, in full-graph order,
	// and nothing else.
	totalEdges := 0
	for s, f := range p.Frags {
		totalEdges += f.G.M
		for l := 0; l < f.G.N; l++ {
			nbrs, _ := f.G.In.Row(l)
			if l >= f.Owned {
				if len(nbrs) != 0 {
					t.Fatalf("shard %d: mirror row %d has %d in-edges", s, l, len(nbrs))
				}
				continue
			}
			v := f.Locals[l]
			wantNbrs, _ := g.In.Row(int(v)) // FromEdges keeps identity RowIDs
			if len(nbrs) != len(wantNbrs) {
				t.Fatalf("shard %d vertex %d: %d in-edges, full graph has %d",
					s, v, len(nbrs), len(wantNbrs))
			}
			for i, lu := range nbrs {
				if got := f.Locals[lu]; got != wantNbrs[i] {
					t.Fatalf("shard %d vertex %d slot %d: neighbour %d, full graph has %d (order broken)",
						s, v, i, got, wantNbrs[i])
				}
			}
		}
	}
	if totalEdges != g.M {
		t.Fatalf("fragments hold %d edges, graph has %d", totalEdges, g.M)
	}

	// Exchange tables pair: fragment s's ExportTo[t] and fragment t's
	// ImportFrom[s] name the same global vertices in the same order.
	flows := 0
	for s, fs := range p.Frags {
		for tt := 0; tt < k; tt++ {
			exp := fs.ExportTo[tt]
			imp := p.Frags[tt].ImportFrom[s]
			if len(exp) != len(imp) {
				t.Fatalf("export %d→%d: %d rows exported, %d imported", s, tt, len(exp), len(imp))
			}
			flows += len(exp)
			for i := range exp {
				if int(exp[i]) >= fs.Owned {
					t.Fatalf("shard %d exports non-owned row %d", s, exp[i])
				}
				gu := fs.Locals[exp[i]]
				if got := p.Frags[tt].Locals[imp[i]]; got != gu {
					t.Fatalf("export %d→%d slot %d: exports vertex %d, imports %d", s, tt, i, gu, got)
				}
			}
		}
	}
	if flows != p.Stats.MirrorFlows {
		t.Fatalf("stats claim %d mirror flows, tables hold %d", p.Stats.MirrorFlows, flows)
	}

	// Replication factor bounded: 1 ≤ r ≤ k.
	if p.Stats.Replication < 1 || p.Stats.Replication > float64(k) {
		t.Fatalf("replication %.3f outside [1, %d]", p.Stats.Replication, k)
	}

	// Degrees carried per local row are the full graph's.
	inDeg := g.InDegrees()
	outDeg := g.OutDegrees()
	for s, f := range p.Frags {
		for l, v := range f.Locals {
			if f.GlobalInDeg[l] != inDeg[v] || f.GlobalOutDeg[l] != outDeg[v] {
				t.Fatalf("shard %d vertex %d: degrees (%d,%d), want (%d,%d)",
					s, v, f.GlobalInDeg[l], f.GlobalOutDeg[l], inDeg[v], outDeg[v])
			}
		}
	}
}

func TestPartitionInvariants(t *testing.T) {
	g := zipfGraph(t, 3000, 8, 11)
	for _, mode := range []string{"greedy", "range"} {
		for _, k := range []int{1, 2, 4, 7} {
			p, err := Build(g, k, mode)
			if err != nil {
				t.Fatalf("%s k=%d: %v", mode, k, err)
			}
			checkInvariants(t, g, p)
			if k == 1 {
				if p.Stats.MirrorFlows != 0 || p.Stats.Replication != 1 {
					t.Fatalf("%s k=1: flows=%d repl=%.2f, want no mirrors",
						mode, p.Stats.MirrorFlows, p.Stats.Replication)
				}
			}
		}
	}
}

// TestGreedyBalance checks the greedy placer respects the edge-unit
// capacity: no shard exceeds the slack-adjusted fair share by more than
// a hub row's worth.
func TestGreedyBalance(t *testing.T) {
	g := zipfGraph(t, 20000, 8, 7)
	p, err := Build(g, 4, "greedy")
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, g, p)
	if p.Stats.Balance > 1.25 {
		t.Fatalf("greedy balance %.3f > 1.25 (max %.0f units, min %.0f)",
			p.Stats.Balance, p.Stats.MaxShardUnits, p.Stats.MinShardUnits)
	}
	// Greedy should beat the locality-free range split on mirror flows.
	r, err := Build(g, 4, "range")
	if err != nil {
		t.Fatal(err)
	}
	if p.Stats.EdgeCutRatio > r.Stats.EdgeCutRatio*1.05 {
		t.Fatalf("greedy cut %.3f worse than range cut %.3f",
			p.Stats.EdgeCutRatio, r.Stats.EdgeCutRatio)
	}
}

func TestPartitionDeterministic(t *testing.T) {
	g := zipfGraph(t, 5000, 8, 3)
	a, err := Build(g, 4, "greedy")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(g, 4, "greedy")
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Owner {
		if a.Owner[v] != b.Owner[v] {
			t.Fatalf("owner of %d differs between identical builds: %d vs %d",
				v, a.Owner[v], b.Owner[v])
		}
	}
	for s := range a.Frags {
		fa, fb := a.Frags[s], b.Frags[s]
		if len(fa.Locals) != len(fb.Locals) {
			t.Fatalf("shard %d locals differ: %d vs %d", s, len(fa.Locals), len(fb.Locals))
		}
		for l := range fa.Locals {
			if fa.Locals[l] != fb.Locals[l] {
				t.Fatalf("shard %d local %d differs", s, l)
			}
		}
	}
}

func TestBuildErrors(t *testing.T) {
	g := zipfGraph(t, 100, 4, 1)
	if _, err := Build(nil, 2, "greedy"); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := Build(g, 0, "greedy"); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := Build(g, 101, "greedy"); err == nil {
		t.Fatal("k>n accepted")
	}
	if _, err := Build(g, 2, "bogus"); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

// FuzzPartitionInvariants drives Build over random edge lists and shard
// counts, asserting the full vertex-cut contract each time.
func FuzzPartitionInvariants(f *testing.F) {
	f.Add(int64(1), 50, 200, 2)
	f.Add(int64(2), 3, 1, 3)
	f.Add(int64(3), 200, 1000, 5)
	f.Fuzz(func(t *testing.T, seed int64, n, m, k int) {
		if n < 1 || n > 500 || m < 0 || m > 5000 || k < 1 {
			t.Skip()
		}
		k = k%8 + 1
		if k > n {
			k = n
		}
		rng := rand.New(rand.NewSource(seed))
		srcs := make([]int32, m)
		dsts := make([]int32, m)
		for i := 0; i < m; i++ {
			srcs[i] = int32(rng.Intn(n))
			dsts[i] = int32(rng.Intn(n))
		}
		g, err := graph.FromEdges(n, srcs, dsts)
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []string{"greedy", "range"} {
			p, err := Build(g, k, mode)
			if err != nil {
				t.Fatalf("%s: %v", mode, err)
			}
			checkInvariants(t, g, p)
		}
	})
}

package kernels

import (
	"math"
	"math/rand"
	"testing"

	"seastar/internal/device"
	"seastar/internal/fusion"
	"seastar/internal/gir"
	"seastar/internal/graph"
	"seastar/internal/tensor"
)

// planFor traces, optimizes and partitions a UDF.
func planFor(t *testing.T, setup func(b *gir.Builder) gir.UDF) (*fusion.Plan, *gir.DAG) {
	t.Helper()
	b := gir.NewBuilder()
	udf := setup(b)
	dag, err := b.Build(udf)
	if err != nil {
		t.Fatal(err)
	}
	dag = fusion.Optimize(dag)
	plan, err := fusion.Partition(dag)
	if err != nil {
		t.Fatal(err)
	}
	return plan, dag
}

// runSeastarUnits executes all seastar units of a plan in order, returning
// the tensor of the DAG output. Dense units are not expected here.
func runSeastarUnits(t *testing.T, plan *fusion.Plan, g *graph.Graph, cfg Config, b *Bindings) *tensor.Tensor {
	t.Helper()
	dev := device.New(device.V100)
	if b.Inter == nil {
		b.Inter = make(map[*gir.Node]*tensor.Tensor)
	}
	mat := plan.Materialized(nil)
	avail := map[*gir.Node]bool{}
	for _, ns := range mat {
		for _, n := range ns {
			avail[n] = true
		}
	}
	for _, u := range plan.Units {
		if u.Kind != fusion.KindSeastar {
			t.Fatalf("unexpected %s unit in seastar-only plan", u.Kind)
		}
		k, err := Compile(u, mat[u], avail)
		if err != nil {
			t.Fatal(err)
		}
		outs := make(map[*gir.Node]*tensor.Tensor)
		for _, m := range mat[u] {
			rows := g.N
			if m.Type == gir.TypeE {
				rows = g.M
			}
			outs[m] = tensor.New(rows, m.Dim())
		}
		if err := k.Run(dev, g, cfg, b, outs); err != nil {
			t.Fatal(err)
		}
		for n, tt := range outs {
			b.Inter[n] = tt
		}
	}
	out, ok := b.Inter[plan.DAG.Outputs[0]]
	if !ok {
		t.Fatal("output not materialized")
	}
	return out
}

func TestSeastarKernelCopySum(t *testing.T) {
	// out[v] = Σ_{u→v} h[u] on the Figure-7 graph, checked by hand.
	g := graph.Figure7()
	plan, _ := planFor(t, func(b *gir.Builder) gir.UDF {
		b.VFeature("h", 2)
		return func(v *gir.Vertex) *gir.Value { return v.Nbr("h").AggSum() }
	})
	h := tensor.FromSlice([]float32{
		1, 10, // A
		2, 20, // B
		3, 30, // C
		4, 40, // D
	}, 4, 2)
	out := runSeastarUnits(t, plan, g, DefaultConfig(), &Bindings{
		VFeat: map[string]*tensor.Tensor{"h": h},
	})
	// In-edges: A←{B,C,D}, B←{A,C}, C←{D}, D←{B}.
	want := tensor.FromSlice([]float32{
		9, 90,
		4, 40,
		4, 40,
		2, 20,
	}, 4, 2)
	if !tensor.AllClose(out, want, 1e-5) {
		t.Fatalf("got %v", out)
	}
}

func TestSeastarKernelOnSortedGraphMatchesUnsorted(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := graph.GNM(rng, 40, 300)
	h := tensor.Randn(rng, 1, 40, 8)
	plan, _ := planFor(t, func(b *gir.Builder) gir.UDF {
		b.VFeature("h", 8)
		return func(v *gir.Vertex) *gir.Value { return v.Nbr("h").Exp().AggSum() }
	})
	bind := func() *Bindings { return &Bindings{VFeat: map[string]*tensor.Tensor{"h": h}} }
	a := runSeastarUnits(t, plan, g, DefaultConfig(), bind())
	bOut := runSeastarUnits(t, plan, g.SortByDegree(), DefaultConfig(), bind())
	if !tensor.AllClose(a, bOut, 1e-4) {
		t.Fatalf("sorted vs unsorted diverge: %g", tensor.MaxAbsDiff(a, bOut))
	}
}

// naiveGAT computes the GAT attention layer directly from the formulas in
// the paper's Figure 2 (with eu/ev precomputed).
func naiveGAT(g *graph.Graph, eu, ev, h *tensor.Tensor, slope float32) *tensor.Tensor {
	n := g.N
	d := h.Cols()
	out := tensor.New(n, d)
	for k := 0; k < n; k++ {
		v := int(g.In.RowIDs[k])
		nbrs, _ := g.In.Row(k)
		if len(nbrs) == 0 {
			continue
		}
		exps := make([]float32, len(nbrs))
		var sum float32
		for i, u := range nbrs {
			x := eu.At(int(u), 0) + ev.At(v, 0)
			if x < 0 {
				x *= slope
			}
			exps[i] = float32(math.Exp(float64(x)))
			sum += exps[i]
		}
		or := out.Row(v)
		for i, u := range nbrs {
			a := exps[i] / sum
			hr := h.Row(int(u))
			for j := 0; j < d; j++ {
				or[j] += a * hr[j]
			}
		}
	}
	return out
}

func gatPlan(t *testing.T, dim int) (*fusion.Plan, *gir.DAG) {
	return planFor(t, func(b *gir.Builder) gir.UDF {
		b.VFeature("eu", 1)
		b.VFeature("ev", 1)
		b.VFeature("h", dim)
		return func(v *gir.Vertex) *gir.Value {
			e := v.Nbr("eu").Add(v.Self("ev")).LeakyReLU(0.2).Exp()
			a := e.Div(e.AggSum())
			return a.Mul(v.Nbr("h")).AggSum()
		}
	})
}

func TestSeastarKernelGATMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := graph.PowerLaw(rng, 200, 4).SortByDegree()
	eu := tensor.Randn(rng, 1, 200, 1)
	ev := tensor.Randn(rng, 1, 200, 1)
	h := tensor.Randn(rng, 1, 200, 16)
	plan, _ := gatPlan(t, 16)
	out := runSeastarUnits(t, plan, g, DefaultConfig(), &Bindings{
		VFeat: map[string]*tensor.Tensor{"eu": eu, "ev": ev, "h": h},
	})
	want := naiveGAT(g, eu, ev, h, 0.2)
	if !tensor.AllClose(out, want, 1e-3) {
		t.Fatalf("GAT mismatch: max diff %g", tensor.MaxAbsDiff(out, want))
	}
}

func TestSeastarKernelVariantsAgreeOnValues(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := graph.PowerLaw(rng, 150, 3)
	eu := tensor.Randn(rng, 1, 150, 1)
	ev := tensor.Randn(rng, 1, 150, 1)
	h := tensor.Randn(rng, 1, 150, 8)
	plan, _ := gatPlan(t, 8)
	bind := func() *Bindings {
		return &Bindings{VFeat: map[string]*tensor.Tensor{"eu": eu, "ev": ev, "h": h}}
	}
	ref := runSeastarUnits(t, plan, g, DefaultConfig(), bind())
	for name, cfg := range map[string]Config{
		"basic":       {BlockSize: 256, FeatureAdaptive: false},
		"atomic":      {BlockSize: 256, FeatureAdaptive: true, Sched: device.SchedAtomic},
		"static":      {BlockSize: 256, FeatureAdaptive: true, Sched: device.SchedStatic},
		"small-block": {BlockSize: 64, FeatureAdaptive: true},
	} {
		got := runSeastarUnits(t, plan, g, cfg, bind())
		if !tensor.AllClose(got, ref, 1e-4) {
			t.Fatalf("%s: values diverge", name)
		}
	}
}

func TestSeastarBackwardDirectionUsesOutCSR(t *testing.T) {
	// An A:S unit must aggregate over OUT-edges: craft one directly.
	g := graph.Figure7()
	b := gir.NewBuilder()
	b.VFeature("x", 1)
	dag, err := b.Build(func(v *gir.Vertex) *gir.Value { return v.Nbr("x").AggSum() })
	if err != nil {
		t.Fatal(err)
	}
	// Flip the aggregation to A:S (as autodiff does).
	agg := dag.Outputs[0]
	agg.Dir = gir.AggToSrc
	agg.Type = gir.TypeS
	// And its input leaf becomes the "neighbour" (dst) view: D-typed.
	dag.Nodes[0].LeafKind = gir.LeafDstFeat
	dag.Nodes[0].Type = gir.TypeD

	plan, err := fusion.Partition(dag)
	if err != nil {
		t.Fatal(err)
	}
	mat := plan.Materialized(nil)
	k, err := Compile(plan.Units[0], mat[plan.Units[0]], nil)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.FromSlice([]float32{1, 2, 3, 4}, 4, 1)
	out := tensor.New(4, 1)
	dev := device.New(device.V100)
	err = k.Run(dev, g, DefaultConfig(), &Bindings{VFeat: map[string]*tensor.Tensor{"x": x}},
		map[*gir.Node]*tensor.Tensor{agg: out})
	if err != nil {
		t.Fatal(err)
	}
	// out[u] = Σ_{u→v} x[v]. Out-edges: A→B; B→{A,D}; C→{A,B}; D→{A,C}.
	want := tensor.FromSlice([]float32{2, 5, 3, 4}, 4, 1)
	if !tensor.AllClose(out, want, 1e-6) {
		t.Fatalf("A:S aggregation: %v", out)
	}
}

func TestHeteroKernelHierSumAndMax(t *testing.T) {
	g := graph.Figure7()
	types := []int32{0, 1, 1, 0, 0, 1, 0}
	if err := g.WithEdgeTypes(types, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.SortEdgesByType(); err != nil {
		t.Fatal(err)
	}
	x := tensor.FromSlice([]float32{1, 2, 3, 4}, 4, 1)

	run := func(inner, outer gir.AggKind) *tensor.Tensor {
		plan, _ := planFor(t, func(b *gir.Builder) gir.UDF {
			b.VFeature("x", 1)
			return func(v *gir.Vertex) *gir.Value {
				return v.Nbr("x").AggHier(inner, outer)
			}
		})
		return runSeastarUnits(t, plan, g, DefaultConfig(), &Bindings{
			VFeat: map[string]*tensor.Tensor{"x": x},
		})
	}

	// sum/sum equals a flat sum.
	got := run(gir.AggSum, gir.AggSum)
	want := tensor.FromSlice([]float32{9, 4, 4, 2}, 4, 1)
	if !tensor.AllClose(got, want, 1e-6) {
		t.Fatalf("hier sum/sum: %v", got)
	}

	// sum inner, max outer: vertex A has in-edges B(e0,type0), C(e1,t1),
	// D(e2,t1) → type0 sum = x[B]=2, type1 sum = x[C]+x[D]=7 → max 7.
	got = run(gir.AggSum, gir.AggMax)
	if got.At(0, 0) != 7 {
		t.Fatalf("hier sum/max at A: %v", got.At(0, 0))
	}
	// B has in-edges A(e3,t0), C(e4,t0) → single group sum 4 → max 4.
	if got.At(1, 0) != 4 {
		t.Fatalf("hier sum/max at B: %v", got.At(1, 0))
	}
}

func TestHeteroKernelRequiresEdgeTypes(t *testing.T) {
	g := graph.Figure7() // no types attached
	plan, _ := planFor(t, func(b *gir.Builder) gir.UDF {
		b.VFeature("x", 1)
		return func(v *gir.Vertex) *gir.Value {
			return v.Nbr("x").AggHier(gir.AggSum, gir.AggSum)
		}
	})
	mat := plan.Materialized(nil)
	k, err := Compile(plan.Units[0], mat[plan.Units[0]], nil)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(4, 1)
	err = k.Run(device.New(device.V100), g, DefaultConfig(),
		&Bindings{VFeat: map[string]*tensor.Tensor{"x": x}},
		map[*gir.Node]*tensor.Tensor{plan.DAG.Outputs[0]: tensor.New(4, 1)})
	if err == nil {
		t.Fatal("expected edge-type error")
	}
}

func TestTypedMatMulKernel(t *testing.T) {
	g := graph.Figure7()
	types := []int32{0, 1, 1, 0, 0, 1, 0}
	if err := g.WithEdgeTypes(types, 2); err != nil {
		t.Fatal(err)
	}
	var wNode *gir.Value
	plan, _ := planFor(t, func(b *gir.Builder) gir.UDF {
		b.VFeature("h", 2)
		wNode = b.Param("W", 2, 2, 1) // 2 relations, [2,1] each
		return func(v *gir.Vertex) *gir.Value {
			return v.Nbr("h").MatMulTyped(wNode).AggSum()
		}
	})
	h := tensor.FromSlice([]float32{
		1, 1,
		2, 2,
		3, 3,
		4, 4,
	}, 4, 2)
	// W[0] = [1, 1]ᵀ (sums the row), W[1] = [10, 0]ᵀ (10 × first elem).
	W := tensor.FromSlice([]float32{1, 1, 10, 0}, 2, 2, 1)
	out := runSeastarUnits(t, plan, g, DefaultConfig(), &Bindings{
		VFeat:  map[string]*tensor.Tensor{"h": h},
		Params: map[string]*tensor.Tensor{"W": W},
	})
	// A's in-edges: B(t0): 2+2=4; C(t1): 10·3=30; D(t1): 10·4=40 → 74.
	if out.At(0, 0) != 74 {
		t.Fatalf("typed matmul at A: %v", out.At(0, 0))
	}
	// B: A(t0): 1+1=2; C(t0): 3+3=6 → 8.
	if out.At(1, 0) != 8 {
		t.Fatalf("typed matmul at B: %v", out.At(1, 0))
	}
}

func TestKernelCostOrderings(t *testing.T) {
	// Simulated-time orderings of Figure 12: Basic ≥ FA on small
	// features; on a skewed graph, static striping ≥ hardware dynamic
	// scheduling with degree sorting.
	rng := rand.New(rand.NewSource(14))
	g := graph.PowerLaw(rng, 5000, 8)
	sorted := g.SortByDegree()
	h := tensor.Randn(rng, 1, 5000, 16)
	plan, _ := planFor(t, func(b *gir.Builder) gir.UDF {
		b.VFeature("h", 16)
		return func(v *gir.Vertex) *gir.Value { return v.Nbr("h").AggSum() }
	})
	mat := plan.Materialized(nil)
	k, err := Compile(plan.Units[0], mat[plan.Units[0]], nil)
	if err != nil {
		t.Fatal(err)
	}
	time := func(gg *graph.Graph, cfg Config) float64 {
		dev := device.New(device.GTX1080Ti)
		outs := map[*gir.Node]*tensor.Tensor{plan.DAG.Outputs[0]: tensor.New(5000, 16)}
		if err := k.Run(dev, gg, cfg, &Bindings{VFeat: map[string]*tensor.Tensor{"h": h}}, outs); err != nil {
			t.Fatal(err)
		}
		return dev.ElapsedNs()
	}
	basic := time(sorted, Config{BlockSize: 256, FeatureAdaptive: false})
	fa := time(sorted, Config{BlockSize: 256, FeatureAdaptive: true})
	if basic < fa {
		t.Fatalf("Basic (%v) should not beat FA (%v) at width 16", basic, fa)
	}
	faStatic := time(g, Config{BlockSize: 256, FeatureAdaptive: true, Sched: device.SchedStatic})
	faDyn := time(sorted, Config{BlockSize: 256, FeatureAdaptive: true, Sched: device.SchedHardware})
	if faStatic < faDyn {
		t.Fatalf("unsorted static (%v) should not beat sorted dynamic (%v)", faStatic, faDyn)
	}
}

func TestBinaryReduceMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	g := graph.GNM(rng, 30, 200)
	x := tensor.Randn(rng, 1, 30, 4)
	e := tensor.Randn(rng, 1, 200, 1)
	dev := device.New(device.V100)

	got := BinaryReduce(dev, g, Operand{x, KSrc}, Operand{e, KEdge}, BMul, gir.AggSum, true, "t")
	want := tensor.New(30, 4)
	for eid := 0; eid < g.M; eid++ {
		u, v := int(g.Srcs[eid]), int(g.Dsts[eid])
		for j := 0; j < 4; j++ {
			want.Set(v, j, want.At(v, j)+x.At(u, j)*e.At(eid, 0))
		}
	}
	if !tensor.AllClose(got, want, 1e-4) {
		t.Fatalf("BinaryReduce sum: %g", tensor.MaxAbsDiff(got, want))
	}
	if dev.Stats().AtomicOps == 0 {
		t.Fatal("minigun reduction must charge atomics")
	}

	// Reduce to sources (backward direction).
	gotS := BinaryReduce(dev, g, Operand{x, KDst}, Operand{}, BLeft, gir.AggSum, false, "t2")
	wantS := tensor.New(30, 4)
	for eid := 0; eid < g.M; eid++ {
		u, v := int(g.Srcs[eid]), int(g.Dsts[eid])
		for j := 0; j < 4; j++ {
			wantS.Set(u, j, wantS.At(u, j)+x.At(v, j))
		}
	}
	if !tensor.AllClose(gotS, wantS, 1e-4) {
		t.Fatal("BinaryReduce to-src mismatch")
	}
}

func TestBinaryReduceMaxMinMean(t *testing.T) {
	g := graph.Figure7()
	x := tensor.FromSlice([]float32{1, 2, 3, 4}, 4, 1)
	dev := device.New(device.V100)
	mx := BinaryReduce(dev, g, Operand{x, KSrc}, Operand{}, BLeft, gir.AggMax, true, "max")
	// A ← {B,C,D} = max(2,3,4)=4; isolated rows → 0.
	if mx.At(0, 0) != 4 || mx.At(2, 0) != 4 {
		t.Fatalf("max: %v", mx)
	}
	mn := BinaryReduce(dev, g, Operand{x, KSrc}, Operand{}, BLeft, gir.AggMin, true, "min")
	if mn.At(0, 0) != 2 {
		t.Fatalf("min: %v", mn)
	}
	me := BinaryReduce(dev, g, Operand{x, KSrc}, Operand{}, BLeft, gir.AggMean, true, "mean")
	if me.At(0, 0) != 3 {
		t.Fatalf("mean: %v", me)
	}
}

func TestEdgeBinaryAndDot(t *testing.T) {
	g := graph.Figure7()
	a := tensor.FromSlice([]float32{1, 2, 3, 4}, 4, 1)
	bT := tensor.FromSlice([]float32{10, 20, 30, 40}, 4, 1)
	dev := device.New(device.V100)
	e := EdgeBinary(dev, g, Operand{a, KSrc}, Operand{bT, KDst}, BAdd, "uaddv")
	// Edge 0 is B→A: a[B] + b[A] = 2 + 10 = 12.
	if e.At(0, 0) != 12 {
		t.Fatalf("u_add_v edge0: %v", e.At(0, 0))
	}
	// Dot of [N,2] rows.
	h := tensor.FromSlice([]float32{1, 1, 2, 2, 3, 3, 4, 4}, 4, 2)
	d := EdgeBinary(dev, g, Operand{h, KSrc}, Operand{h, KDst}, BDot, "dot")
	if d.Cols() != 1 {
		t.Fatal("dot width")
	}
	// Edge 0 B→A: (2,2)·(1,1) = 4.
	if d.At(0, 0) != 4 {
		t.Fatalf("dot edge0: %v", d.At(0, 0))
	}
}

func TestGatherScatterPrimitives(t *testing.T) {
	g := graph.Figure7()
	x := tensor.FromSlice([]float32{1, 2, 3, 4}, 4, 1)
	dev := device.New(device.V100)
	ge, err := GatherVertex(dev, g, x, true, "gather")
	if err != nil {
		t.Fatal(err)
	}
	if ge.Rows() != g.M || ge.At(0, 0) != 2 { // edge 0 src = B
		t.Fatalf("gather: %v", ge)
	}
	s := ScatterSum(dev, g, ge, true, "scatter")
	want := tensor.FromSlice([]float32{9, 4, 4, 2}, 4, 1)
	if !tensor.AllClose(s, want, 1e-6) {
		t.Fatalf("scatter: %v", s)
	}
	if _, err := GatherVertex(dev, g, tensor.New(3, 1), true, "bad"); err == nil {
		t.Fatal("gather of wrong-size tensor accepted")
	}
	if dev.Stats().AtomicOps == 0 {
		t.Fatal("scatter must charge atomics")
	}
}

func TestDGLBaselineSlowerThanSeastar(t *testing.T) {
	// The core performance claim at kernel level: for the same
	// neighbour aggregation, the minigun-style kernel is slower than the
	// seastar kernel on a skewed graph.
	rng := rand.New(rand.NewSource(16))
	g := graph.PowerLaw(rng, 20000, 16)
	sorted := g.SortByDegree()
	h := tensor.Randn(rng, 1, 20000, 16)

	dglDev := device.New(device.GTX1080Ti)
	BinaryReduce(dglDev, g, Operand{h, KSrc}, Operand{}, BLeft, gir.AggSum, true, "dgl")

	plan, _ := planFor(t, func(b *gir.Builder) gir.UDF {
		b.VFeature("h", 16)
		return func(v *gir.Vertex) *gir.Value { return v.Nbr("h").AggSum() }
	})
	mat := plan.Materialized(nil)
	k, err := Compile(plan.Units[0], mat[plan.Units[0]], nil)
	if err != nil {
		t.Fatal(err)
	}
	seaDev := device.New(device.GTX1080Ti)
	outs := map[*gir.Node]*tensor.Tensor{plan.DAG.Outputs[0]: tensor.New(20000, 16)}
	if err := k.Run(seaDev, sorted, DefaultConfig(), &Bindings{VFeat: map[string]*tensor.Tensor{"h": h}}, outs); err != nil {
		t.Fatal(err)
	}
	if seaDev.ElapsedNs() >= dglDev.ElapsedNs() {
		t.Fatalf("seastar (%v ns) not faster than DGL baseline (%v ns)",
			seaDev.ElapsedNs(), dglDev.ElapsedNs())
	}
}

func TestCompileRejectsNonSeastarUnit(t *testing.T) {
	plan, _ := planFor(t, func(b *gir.Builder) gir.UDF {
		b.VFeature("h", 4)
		W := b.Param("W", 4, 2)
		return func(v *gir.Vertex) *gir.Value {
			return v.Nbr("h").MatMul(W).AggSum()
		}
	})
	for _, u := range plan.Units {
		if u.Kind == fusion.KindDense {
			if _, err := Compile(u, nil, nil); err == nil {
				t.Fatal("compiled a dense unit as seastar")
			}
		}
	}
}

func TestRunErrorsOnMissingBindings(t *testing.T) {
	g := graph.Figure7()
	plan, _ := planFor(t, func(b *gir.Builder) gir.UDF {
		b.VFeature("h", 2)
		return func(v *gir.Vertex) *gir.Value { return v.Nbr("h").AggSum() }
	})
	mat := plan.Materialized(nil)
	k, _ := Compile(plan.Units[0], mat[plan.Units[0]], nil)
	outs := map[*gir.Node]*tensor.Tensor{plan.DAG.Outputs[0]: tensor.New(4, 2)}
	if err := k.Run(device.New(device.V100), g, DefaultConfig(), &Bindings{}, outs); err == nil {
		t.Fatal("missing feature binding accepted")
	}
	// Missing output tensor.
	if err := k.Run(device.New(device.V100), g, DefaultConfig(),
		&Bindings{VFeat: map[string]*tensor.Tensor{"h": tensor.New(4, 2)}},
		map[*gir.Node]*tensor.Tensor{}); err == nil {
		t.Fatal("missing output tensor accepted")
	}
}

package kernels

import (
	"math/rand"
	"testing"

	"seastar/internal/gir"
	"seastar/internal/graph"
	"seastar/internal/refinterp"
	"seastar/internal/sched"
	"seastar/internal/tensor"
)

// The scheduler-equivalence property: for any vertex-centric program, the
// parallel edge-balanced work-stealing execution, the parallel
// uniform-row execution and the serial execution must all produce
// bit-identical results, and all must agree with the definitional
// reference interpreter. The graphs are skewed (Zipf / power-law) with
// random edge types so that hierarchical-aggregation type boundaries land
// in the middle of scheduler chunks.

// equivProgram pairs a program with the feature widths it needs.
type equivProgram struct {
	name  string
	setup func(b *gir.Builder) gir.UDF
}

func equivPrograms(dim int) []equivProgram {
	return []equivProgram{
		{
			// Edge-weighted hierarchical sum-of-types, max across types,
			// plus a self term: exercises edge features, AggHier and a
			// post-aggregation stage.
			name: "hier-sum-max",
			setup: func(b *gir.Builder) gir.UDF {
				b.VFeature("h", dim)
				b.EFeature("w", 1)
				return func(v *gir.Vertex) *gir.Value {
					return v.Nbr("h").Mul(v.Edge("w")).
						AggHier(gir.AggSum, gir.AggMax).
						Add(v.Self("h"))
				}
			},
		},
		{
			// Max within each type folded by sum, broadcast against a flat
			// mean: mixes AggHier and plain aggregation in one kernel.
			name: "hier-max-sum-plus-mean",
			setup: func(b *gir.Builder) gir.UDF {
				b.VFeature("h", dim)
				b.VFeature("s", 1)
				return func(v *gir.Vertex) *gir.Value {
					hier := v.Nbr("s").AggHier(gir.AggMax, gir.AggSum)
					return v.Nbr("h").AggMean().Add(hier)
				}
			},
		},
		{
			// GAT-style edge softmax feeding a hierarchical sum: two
			// dependent aggregations over the same neighbourhood.
			name: "gat-softmax-hier",
			setup: func(b *gir.Builder) gir.UDF {
				b.VFeature("eu", 1)
				b.VFeature("ev", 1)
				b.VFeature("h", dim)
				return func(v *gir.Vertex) *gir.Value {
					e := v.Nbr("eu").Add(v.Self("ev")).LeakyReLU(0.2).Exp()
					a := e.Div(e.AggSum())
					return a.Mul(v.Nbr("h")).AggHier(gir.AggSum, gir.AggSum)
				}
			},
		},
	}
}

// refOutput traces the program a second time and evaluates it with the
// definitional interpreter — no optimizer, no fusion, no scheduler.
func refOutput(t *testing.T, p equivProgram, g *graph.Graph, bind *Bindings) *tensor.Tensor {
	t.Helper()
	b := gir.NewBuilder()
	udf := p.setup(b)
	dag, err := b.Build(udf)
	if err != nil {
		t.Fatalf("%s: %v", p.name, err)
	}
	vals, err := refinterp.Eval(dag, g, &refinterp.Bindings{
		VFeat: bind.VFeat, EFeat: bind.EFeat,
	})
	if err != nil {
		t.Fatalf("%s: reference: %v", p.name, err)
	}
	return vals[dag.Outputs[0]]
}

func bitIdentical(a, b *tensor.Tensor) bool {
	ad, bd := a.Data(), b.Data()
	if len(ad) != len(bd) {
		return false
	}
	for i := range ad {
		if ad[i] != bd[i] {
			return false
		}
	}
	return true
}

func TestSchedulerEquivalenceOnSkewedHeteroGraphs(t *testing.T) {
	oldProcs := sched.MaxProcs
	sched.MaxProcs = 8
	t.Cleanup(func() { sched.MaxProcs = oldProcs })

	const dim = 8
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed*131 + 7))
		var g *graph.Graph
		if seed%2 == 0 {
			g = graph.ZipfDegree(rng, 3000, 8, 1.0)
		} else {
			g = graph.PowerLaw(rng, 3000, 8)
		}
		graph.RandomEdgeTypes(rng, g, 2+int(seed%2))
		if err := g.SortEdgesByType(); err != nil {
			t.Fatal(err)
		}
		g = g.SortByDegree()

		// The property is only interesting if the parallel path really
		// runs and type boundaries really fall inside chunks.
		ranges := Partition(&g.In, PartitionEdgeBalanced, sched.MaxProcs)
		if len(ranges) < 2 {
			t.Fatalf("seed %d: graph too small to exercise the parallel path (%d chunks)", seed, len(ranges))
		}
		if !hasMidChunkTypeBoundary(g, ranges) {
			t.Fatalf("seed %d: no type boundary lands mid-chunk; property test is vacuous", seed)
		}

		bind := func() *Bindings {
			return &Bindings{
				VFeat: map[string]*tensor.Tensor{
					"h":  tensor.Randn(rand.New(rand.NewSource(seed)), 0.5, g.N, dim),
					"s":  tensor.Randn(rand.New(rand.NewSource(seed+1)), 0.5, g.N, 1),
					"eu": tensor.Randn(rand.New(rand.NewSource(seed+2)), 0.5, g.N, 1),
					"ev": tensor.Randn(rand.New(rand.NewSource(seed+3)), 0.5, g.N, 1),
				},
				EFeat: map[string]*tensor.Tensor{
					"w": tensor.Randn(rand.New(rand.NewSource(seed+4)), 0.5, g.M, 1),
				},
			}
		}

		for _, p := range equivPrograms(dim) {
			plan, _ := planFor(t, p.setup)

			// The kernels must actually take the parallel branch.
			for _, u := range plan.Units {
				mat := plan.Materialized(nil)
				k, err := Compile(u, mat[u], nil)
				if err != nil {
					t.Fatal(err)
				}
				if work := k.cpuWork(&g.In); work < serialCPUThreshold {
					t.Fatalf("seed %d %s: cpuWork %.0f below serial threshold %d — enlarge the graph",
						seed, p.name, work, serialCPUThreshold)
				}
			}

			eb := runSeastarUnits(t, plan, g, Config{Partition: PartitionEdgeBalanced}, bind())
			un := runSeastarUnits(t, plan, g, Config{Partition: PartitionUniformRows}, bind())

			sched.MaxProcs = 1
			serial := runSeastarUnits(t, plan, g, DefaultConfig(), bind())
			sched.MaxProcs = 8

			if !bitIdentical(eb, un) {
				t.Fatalf("seed %d %s: edge-balanced and uniform partitions disagree (max diff %g)",
					seed, p.name, tensor.MaxAbsDiff(eb, un))
			}
			if !bitIdentical(eb, serial) {
				t.Fatalf("seed %d %s: parallel and serial execution disagree (max diff %g)",
					seed, p.name, tensor.MaxAbsDiff(eb, serial))
			}
			ref := refOutput(t, p, g, bind())
			if !tensor.AllClose(eb, ref, 1e-3) {
				t.Fatalf("seed %d %s: scheduler output diverges from reference interpreter by %g",
					seed, p.name, tensor.MaxAbsDiff(eb, ref))
			}
		}
	}
}

// hasMidChunkTypeBoundary reports whether some row with at least two
// distinct edge types sits inside one of the chunks — i.e. a
// hierarchical-aggregation fold boundary that a chunk-parallel scheduler
// must handle without cross-chunk state.
func hasMidChunkTypeBoundary(g *graph.Graph, ranges []sched.Range) bool {
	multiType := func(r int) bool {
		_, eids := g.In.Row(r)
		for i := 1; i < len(eids); i++ {
			if g.EdgeTypes[eids[i]] != g.EdgeTypes[eids[i-1]] {
				return true
			}
		}
		return false
	}
	for _, rr := range ranges {
		for r := rr.Lo; r < rr.Hi; r++ {
			if multiType(r) {
				return true
			}
		}
	}
	return false
}

// Property tests for the closure compiler (specialize.go): the three
// canonical Seastar models — GCN, GAT, R-GCN — must (a) be matched by
// the specializer with the expected pattern, and (b) produce bitwise
// identical outputs whether the edge loop runs specialized or
// interpreted, with SIMD on or off, serial or across workers, and in
// the presence of zero-degree rows. The test lives in the external test
// package so it can drive exec (which imports kernels) without an
// import cycle.
package kernels_test

import (
	"math"
	"math/rand"
	"testing"

	"seastar/internal/exec"
	"seastar/internal/fusion"
	"seastar/internal/gir"
	"seastar/internal/graph"
	"seastar/internal/kernels"
	"seastar/internal/refinterp"
	"seastar/internal/sched"
	"seastar/internal/tensor"
)

// sameBits reports bit-identity, treating any two NaNs as equal.
func sameBits(a, b float32) bool {
	if math.IsNaN(float64(a)) && math.IsNaN(float64(b)) {
		return true
	}
	return math.Float32bits(a) == math.Float32bits(b)
}

// gatDAG is the GAT layer body exactly as models.compileGATLayer traces
// it: scalar attention logits, edge softmax, weighted neighbour sum.
func gatDAG(t *testing.T, dim int) *gir.DAG {
	t.Helper()
	b := gir.NewBuilder()
	b.VFeature("eu", 1)
	b.VFeature("ev", 1)
	b.VFeature("h", dim)
	dag, err := b.Build(func(v *gir.Vertex) *gir.Value {
		e := v.Nbr("eu").Add(v.Self("ev")).LeakyReLU(0.2).Exp()
		a := e.Div(e.AggSum())
		return a.Mul(v.Nbr("h")).AggSum()
	})
	if err != nil {
		t.Fatal(err)
	}
	return dag
}

// gcnDAG is the GCN layer body: transformed neighbour features scaled
// by the symmetric norm, summed.
func gcnDAG(t *testing.T, din, dout int) *gir.DAG {
	t.Helper()
	b := gir.NewBuilder()
	b.VFeature("h", din)
	b.VFeature("norm", 1)
	W := b.Param("W", din, dout)
	dag, err := b.Build(func(v *gir.Vertex) *gir.Value {
		return v.Nbr("h").MatMul(W).Mul(v.Nbr("norm")).AggSum()
	})
	if err != nil {
		t.Fatal(err)
	}
	return dag
}

// rgcnDAG is the R-GCN layer body: per-relation transform, edge norm,
// hierarchical (per-type then cross-type) sum.
func rgcnDAG(t *testing.T, rels, din, dout int) *gir.DAG {
	t.Helper()
	b := gir.NewBuilder()
	b.VFeature("h", din)
	b.EFeature("norm", 1)
	Ws := b.Param("W", rels, din, dout)
	dag, err := b.Build(func(v *gir.Vertex) *gir.Value {
		return v.Nbr("h").MatMulTyped(Ws).Mul(v.Edge("norm")).AggHier(gir.AggSum, gir.AggSum)
	})
	if err != nil {
		t.Fatal(err)
	}
	return dag
}

// seastarSpecNames collects Specialized() of every forward seastar unit;
// it fails the test if any unit fell back to the interpreter.
func seastarSpecNames(t *testing.T, c *exec.CompiledUDF) []string {
	t.Helper()
	var names []string
	for _, u := range c.FwdPlan.Units {
		if u.Kind != fusion.KindSeastar {
			continue
		}
		k := c.FwdKernel(u)
		if k == nil {
			t.Fatalf("seastar unit %d has no kernel", u.ID)
		}
		ok, name := k.Specialized()
		if !ok {
			t.Fatalf("unit %d not specialized: %s", u.ID, name)
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		t.Fatal("plan has no seastar units")
	}
	return names
}

// checkBitwise runs the compiled UDF specialized and interpreted across
// SIMD and worker-count variations; every variant must match the
// interpreter (and the refinterp oracle) bit for bit.
func checkBitwise(t *testing.T, c *exec.CompiledUDF, g *graph.Graph,
	vfeat, efeat, params map[string]*tensor.Tensor) {
	t.Helper()

	interpCfg := kernels.DefaultConfig()
	interpCfg.NoSpecialize = true
	want, err := c.Infer(&exec.InferEnv{G: g, Cfg: interpCfg}, vfeat, efeat, params)
	if err != nil {
		t.Fatalf("interpreted infer: %v", err)
	}

	// The definitional oracle pins the interpreter itself.
	bind := &refinterp.Bindings{VFeat: vfeat, EFeat: efeat, Params: params}
	vals, err := refinterp.Eval(c.Fwd, g, bind)
	if err != nil {
		t.Fatalf("refinterp: %v", err)
	}
	ref := vals[c.Fwd.Outputs[0]]
	if ref.Size() != want.Size() {
		t.Fatalf("refinterp size %d != interpreter %d", ref.Size(), want.Size())
	}
	for i := 0; i < want.Size(); i++ {
		if !sameBits(want.At1(i), ref.At1(i)) {
			t.Fatalf("interpreter[%d]=%v disagrees with refinterp %v", i, want.At1(i), ref.At1(i))
		}
	}

	for _, simd := range []bool{true, false} {
		prevSIMD := tensor.SetSIMD(simd)
		for _, procs := range []int{1, 4} {
			prevProcs := sched.SetMaxProcs(procs)
			got, err := c.Infer(&exec.InferEnv{G: g}, vfeat, efeat, params)
			sched.SetMaxProcs(prevProcs)
			if err != nil {
				tensor.SetSIMD(prevSIMD)
				t.Fatalf("specialized infer (simd=%v procs=%d): %v", simd, procs, err)
			}
			for i := 0; i < want.Size(); i++ {
				if !sameBits(got.At1(i), want.At1(i)) {
					tensor.SetSIMD(prevSIMD)
					t.Fatalf("output[%d] (simd=%v procs=%d): specialized %v (bits %08x) != interpreted %v (bits %08x)",
						i, simd, procs,
						got.At1(i), math.Float32bits(got.At1(i)),
						want.At1(i), math.Float32bits(want.At1(i)))
				}
			}
		}
		tensor.SetSIMD(prevSIMD)
	}
}

func TestSpecializeGAT(t *testing.T) {
	c, err := exec.CompileInference(gatDAG(t, 16))
	if err != nil {
		t.Fatal(err)
	}
	names := seastarSpecNames(t, c)
	// The fused GAT plan carries both the edge-softmax scalar chain and
	// the weighted gather; at least one unit must use the scaled gather.
	found := false
	for _, n := range names {
		if n == "chain[4]+scalar-agg+scaled-gather" || n == "chain[4]+scaled-gather" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no GAT-shaped pattern among %v", names)
	}

	rng := rand.New(rand.NewSource(61))
	// GNM with few edges leaves some rows at degree zero, exercising the
	// finalizeAcc zero fill.
	g := graph.GNM(rng, 400, 900).SortByDegree()
	vfeat := map[string]*tensor.Tensor{
		"eu": tensor.Randn(rng, 0.5, 400, 1),
		"ev": tensor.Randn(rng, 0.5, 400, 1),
		"h":  tensor.Randn(rng, 0.5, 400, 16),
	}
	checkBitwise(t, c, g, vfeat, nil, nil)
}

func TestSpecializeGCN(t *testing.T) {
	c, err := exec.CompileInference(gcnDAG(t, 8, 4))
	if err != nil {
		t.Fatal(err)
	}
	names := seastarSpecNames(t, c)
	found := false
	for _, n := range names {
		if n == "scaled-gather" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no GCN-shaped scaled-gather among %v", names)
	}

	rng := rand.New(rand.NewSource(62))
	g := graph.PowerLaw(rng, 300, 5).SortByDegree()
	vfeat := map[string]*tensor.Tensor{
		"h":    tensor.Randn(rng, 0.5, 300, 8),
		"norm": tensor.Uniform(rng, 0.2, 1, 300, 1),
	}
	params := map[string]*tensor.Tensor{"W": tensor.Randn(rng, 0.5, 8, 4)}
	checkBitwise(t, c, g, vfeat, nil, params)
}

func TestSpecializeRGCN(t *testing.T) {
	c, err := exec.CompileInference(rgcnDAG(t, 3, 8, 4))
	if err != nil {
		t.Fatal(err)
	}
	names := seastarSpecNames(t, c)
	found := false
	for _, n := range names {
		if n == "typed-gather→hier" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no R-GCN typed-gather→hier among %v", names)
	}

	rng := rand.New(rand.NewSource(63))
	g := graph.GNM(rng, 120, 700)
	graph.RandomEdgeTypes(rng, g, 3)
	if err := g.SortEdgesByType(); err != nil {
		t.Fatal(err)
	}
	g = g.SortByDegree()
	vfeat := map[string]*tensor.Tensor{"h": tensor.Randn(rng, 0.5, 120, 8)}
	efeat := map[string]*tensor.Tensor{"norm": tensor.Uniform(rng, 0.2, 1, g.M, 1)}
	params := map[string]*tensor.Tensor{"W": tensor.Randn(rng, 0.5, 3, 8, 4)}
	checkBitwise(t, c, g, vfeat, efeat, params)
}

// TestSpecializeFallback pins the negative space of the grammar: a wide
// elementwise chain feeding the aggregation has no specialized producer
// and must leave the kernel on the interpreter, with the reason
// recorded for EXPLAIN.
func TestSpecializeFallback(t *testing.T) {
	b := gir.NewBuilder()
	b.VFeature("h", 8)
	dag, err := b.Build(func(v *gir.Vertex) *gir.Value {
		return v.Nbr("h").Sigmoid().AggSum()
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := exec.CompileInference(dag)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range c.FwdPlan.Units {
		if u.Kind != fusion.KindSeastar {
			continue
		}
		ok, reason := c.FwdKernel(u).Specialized()
		if ok {
			t.Fatalf("wide sigmoid chain unexpectedly specialized as %q", reason)
		}
		if reason == "" {
			t.Fatal("fallback must record a reason for EXPLAIN")
		}
		// Interpreter fallback must still compute the right values.
		rng := rand.New(rand.NewSource(64))
		g := graph.GNM(rng, 50, 200).SortByDegree()
		vfeat := map[string]*tensor.Tensor{"h": tensor.Randn(rng, 0.5, 50, 8)}
		checkBitwise(t, c, g, vfeat, nil, nil)
		return
	}
	t.Fatal("plan has no seastar units")
}

// TestSpecializeOpSweep pins every chain opcode's columnar arm: each op
// runs per-edge over block columns — unaries on a per-edge value,
// binaries in all three operand forms (column∘column, scalar∘column,
// column∘scalar) — feeding the SIMD scaled gather, and the scalar
// aggregates exercise the in-program sum fold and the leftover
// max/min/mean terms. Every variant must specialize and match the
// interpreter bit for bit across SIMD and worker-count variations.
func TestSpecializeOpSweep(t *testing.T) {
	type variant struct {
		name string
		body func(v *gir.Vertex) *gir.Value
	}
	unaries := []struct {
		name string
		f    func(*gir.Value) *gir.Value
	}{
		{"neg", func(x *gir.Value) *gir.Value { return x.Neg() }},
		{"exp", func(x *gir.Value) *gir.Value { return x.Exp() }},
		{"log", func(x *gir.Value) *gir.Value { return x.Log() }},
		{"leakyrelu", func(x *gir.Value) *gir.Value { return x.LeakyReLU(0.1) }},
		{"relu", func(x *gir.Value) *gir.Value { return x.ReLU() }},
		{"sigmoid", func(x *gir.Value) *gir.Value { return x.Sigmoid() }},
		{"tanh", func(x *gir.Value) *gir.Value { return x.Tanh() }},
		{"mulscalar", func(x *gir.Value) *gir.Value { return x.MulScalar(1.5) }},
		{"addscalar", func(x *gir.Value) *gir.Value { return x.AddScalar(0.25) }},
	}
	var variants []variant
	for _, u := range unaries {
		f := u.f
		variants = append(variants, variant{"col-" + u.name, func(v *gir.Vertex) *gir.Value {
			e := v.Nbr("a").Add(v.Self("b"))
			return f(e).Mul(v.Nbr("x")).AggSum()
		}})
	}
	binops := []struct {
		name string
		f    func(a, b *gir.Value) *gir.Value
	}{
		{"add", func(a, b *gir.Value) *gir.Value { return a.Add(b) }},
		{"sub", func(a, b *gir.Value) *gir.Value { return a.Sub(b) }},
		{"mul", func(a, b *gir.Value) *gir.Value { return a.Mul(b) }},
		{"div", func(a, b *gir.Value) *gir.Value { return a.Div(b) }},
	}
	for _, bo := range binops {
		f := bo.f
		variants = append(variants,
			variant{"colcol-" + bo.name, func(v *gir.Vertex) *gir.Value {
				return f(v.Nbr("a"), v.Nbr("b")).Mul(v.Nbr("x")).AggSum()
			}},
			variant{"sccol-" + bo.name, func(v *gir.Vertex) *gir.Value {
				return f(v.Self("a"), v.Nbr("b")).Mul(v.Nbr("x")).AggSum()
			}},
			variant{"colsc-" + bo.name, func(v *gir.Vertex) *gir.Value {
				return f(v.Nbr("a"), v.Self("b")).Mul(v.Nbr("x")).AggSum()
			}})
	}
	variants = append(variants,
		variant{"scalar-aggsum", func(v *gir.Vertex) *gir.Value {
			return v.Nbr("a").Add(v.Self("b")).Exp().AggSum()
		}},
		variant{"scalar-aggmean", func(v *gir.Vertex) *gir.Value {
			return v.Nbr("a").Add(v.Self("b")).AggMean()
		}},
		variant{"scalar-aggmax", func(v *gir.Vertex) *gir.Value {
			return v.Nbr("a").Mul(v.Nbr("b")).AggMax()
		}},
		variant{"scaled-aggmax", func(v *gir.Vertex) *gir.Value {
			return v.Nbr("a").Exp().Mul(v.Nbr("x")).AggMax()
		}},
		variant{"scaled-aggmin", func(v *gir.Vertex) *gir.Value {
			return v.Nbr("a").Exp().Mul(v.Nbr("x")).AggMin()
		}})

	rng := rand.New(rand.NewSource(71))
	g := graph.GNM(rng, 200, 600).SortByDegree()
	vfeat := map[string]*tensor.Tensor{
		// b stays positive so colsc-div's broadcast divisor is finite;
		// log of negative a still produces NaN, which sameBits forgives.
		"a": tensor.Randn(rng, 0.5, 200, 1),
		"b": tensor.Uniform(rng, 0.2, 1, 200, 1),
		"x": tensor.Randn(rng, 0.5, 200, 16),
	}
	for _, vr := range variants {
		t.Run(vr.name, func(t *testing.T) {
			b := gir.NewBuilder()
			b.VFeature("a", 1)
			b.VFeature("b", 1)
			b.VFeature("x", 16)
			dag, err := b.Build(vr.body)
			if err != nil {
				t.Fatal(err)
			}
			c, err := exec.CompileInference(dag)
			if err != nil {
				t.Fatal(err)
			}
			seastarSpecNames(t, c)
			checkBitwise(t, c, g, vfeat, nil, nil)
		})
	}
}

package kernels

// The per-unit closure compiler (DESIGN.md §12): at Compile time, the
// edge stage of a fused seastar unit is pattern-matched against a small
// grammar and, when it fits, lowered into a table of Go closures and
// gather-accumulate calls that run the whole edge loop in one pass —
// with op dispatch, operand resolution and feature-dim bounds checks
// hoisted out of the inner loop, and the wide accumulations routed
// through tensor.VecAdd / tensor.VecMulAdd (AVX2 on capable hosts).
//
// The grammar over one edge iteration is
//
//	edge   := load* chain* mat* term+
//	load   := scalar edge-leaf → scalar bank          (eu, norm, …)
//	chain  := scalar op over the scalar bank          (Add, LeakyReLU, Exp, Div, …)
//	mat    := scalar bank → per-edge materialization
//	term   := agg ⊕= scalar                           (GAT edge-softmax sums)
//	        | agg ⊕= leaf[nbr|eid]                    (plain gather)
//	        | agg ⊕= scalar · leaf[nbr|eid]           (GCN/GAT weighted gather)
//	        | agg ⊕= [scalar ·] MatMulTyped(leaf)     (R-GCN per-relation transform)
//
// which covers the paper's three canonical models: the GCN mean/sum
// aggregate, both GAT units (edge-softmax chain + weighted aggregate)
// and the R-GCN per-relation transform-aggregate, forward and most of
// backward. Scalar values that are constant within a row (row leaves,
// consts, pre-row outputs) are hoisted to a once-per-row copy.
//
// Anything outside the grammar — wide elementwise chains, wide per-edge
// materializations, RowSum over wide rows, OpMatMulTypedT (an
// order-sensitive horizontal reduction that cannot be vectorized
// bitwise) — leaves the kernel on the interpreter, transparently. The
// decision and the fallback reason are recorded on the kernel so
// `seastar-inspect` EXPLAIN can attribute them.
//
// Bitwise contract: every closure is an exact transliteration of the
// corresponding evalStep arm at width 1, the accumulate calls are the
// interpreter's own, and VecMulAdd rounds the multiply and the add
// separately (no FMA) exactly like an interpreted Mul step followed by
// VecAdd. Specialized and interpreted execution are therefore bitwise
// equal, which FuzzFusionEquivalence and the property tests in
// specialize_test.go enforce.

import (
	"fmt"
	"math"
	"strings"

	"seastar/internal/gir"
	"seastar/internal/graph"
	"seastar/internal/tensor"
)

// specTermKind enumerates the per-edge source forms the specializer
// recognizes for an aggregation input.
type specTermKind int

const (
	termScalar       specTermKind = iota // width-1 value from the scalar bank
	termGather                           // wide edge-leaf row
	termScaledGather                     // wide edge-leaf row × scalar
	termTyped                            // MatMulTyped(wide edge-leaf row) [× scalar]
)

// specTerm drives one aggregation accumulator per edge.
type specTerm struct {
	kind specTermKind
	agg  int // index into k.aggs

	hier         bool
	inner, outer gir.AggKind // per-edge fold kind is inner when hier, outer otherwise
	width        int         // accumulator width

	src      int // termScalar: scalar-bank index; gather/typed: edgeLeaves index
	lw       int // leaf row width (gather: == width; typed: din)
	byEdgeID bool
	scale    int // scalar-bank index of the per-edge factor; -1 when absent

	// Typed-transform fields (termTyped).
	param     *gir.Node // weight leaf, shape [R, din, dout]
	tmpSlot   int       // scratch slot receiving the transform output
	din, dout int

	// Execution strategy, decided once at plan build. batch routes a
	// sum-folded scaled gather through the blocked GatherMulAdd primitive
	// (accumulator register-resident across an edge block, rows
	// prefetched); gemv routes a sum-folded typed transform through the
	// register-resident GemvAdd/GemvMulAdd primitive; scalar01 folds a
	// width-1 sum/mean scalar term directly inside the edge program.
	// Max/min folds and hierarchical kernels keep the per-edge forms.
	batch    bool
	gemv     bool
	scalar01 bool
}

// specLoad copies one scalar from a bound edge tensor into the bank.
type specLoad struct {
	leaf     int // index into k.edgeLeaves
	byEdgeID bool
	dst      int
}

// specCopy hoists one row-constant scalar slot into the bank per row.
// When leaf is non-negative the value is read straight from that row
// leaf's tensor data, skipping the scratch staging copy.
type specCopy struct {
	slot int
	dst  int
	leaf int // k.rowLeaves index for a direct read; -1 via scratch
}

// specMat writes one scalar per edge to a materialized output.
type specMat struct {
	mat int // index into k.mats
	src int // scalar-bank index
}

// specOpCode enumerates the instructions of the per-edge scalar program.
// Loads, the elementwise chain, materialization stores and the register-
// width term folds compile into one flat instruction array executed by an
// inline switch — no per-edge indirect calls remain on the fast path.
type specOpCode uint8

const (
	opLoadNbr       specOpCode = iota // v[o] = data[nbr]
	opLoadEdge                        // v[o] = data[eid]
	opAdd                             // v[o] = v[a] + v[b]
	opSub                             // v[o] = v[a] - v[b]
	opMul                             // v[o] = v[a] * v[b]
	opDiv                             // v[o] = v[a] / v[b]
	opNeg                             // v[o] = -v[a]
	opExp                             // v[o] = exp(v[a])
	opLog                             // v[o] = log(v[a])
	opLeakyReLU                       // v[o] = v[a] < 0 ? c*v[a] : v[a]
	opReLU                            // v[o] = max(v[a], 0)
	opSigmoid                         // v[o] = 1/(1+exp(-v[a]))
	opTanh                            // v[o] = tanh(v[a])
	opMulConst                        // v[o] = c * v[a]
	opAddConst                        // v[o] = c + v[a]
	opLeakyReLUGrad                   // v[o] = v[a] > 0 ? v[b] : c*v[b]
	opReLUGrad                        // v[o] = v[a] > 0 ? v[b] : 0
	opSigmoidGrad                     // v[o] = v[b] * v[a] * (1 - v[a])
	opTanhGrad                        // v[o] = v[b] * (1 - v[a]*v[a])
	opCopy                            // v[o] = v[a] (RowSum/EdgeView at width 1)
	opStoreMat                        // data[eid] = v[a]
	opAccScalar                       // data[0] += v[a] (sum/mean scalar term)
	opStoreBuf                        // data[i-b0] = v[a] (batched term's scale)
)

// specProgOp is one static instruction of the edge program: an opcode,
// scalar-bank operand indexes, an immediate, and — for loads, stores and
// folds — a reference resolved to a data slice at launch time (leaf index,
// materialization index, or term index respectively).
//
// On the columnar path aSc/bSc mark operands that are row-constant
// scalars (read from the bank) rather than per-edge columns, and a
// non-negative sink redirects the output column into that term's gather
// scale buffer — the store instruction it replaces is elided.
type specProgOp struct {
	code     specOpCode
	o, a, b  int32
	c        float32
	ref      int32
	aSc, bSc bool
	sink     int32
}

// specOp is the launch-bound form of specProgOp: ref is resolved to the
// tensor data / accumulator / scale buffer the instruction touches, and —
// on the columnar path — o/a/b to their block columns.
type specOp struct {
	code       specOpCode
	o, a, b    int32
	c          float32
	aSc, bSc   bool
	data       []float32
	oc, ac, bc []float32
}

// specPlan is the compiled closure program for a specialized unit. It is
// immutable after compile and shared read-only by all workers; per-launch
// tensor data lives on the Kernel (specLeafData/specWd) and per-worker
// scalars in each arena's svals bank.
type specPlan struct {
	name    string
	nScalar int

	rowCopies []specCopy
	edgeLoads []specLoad
	edgeMats  []specMat
	terms     []specTerm
	batched   bool // some term takes the blocked gather path

	// prog is the flat per-edge instruction array: loads, then the scalar
	// chain, then materialization stores, then in-program term folds
	// (opAccScalar/opStoreBuf). chainLen counts the chain instructions for
	// the pattern name; rest indexes the terms the program does not fold —
	// they run through the generic per-edge term switch after it.
	prog     []specProgOp
	chainLen int
	rest     []int32

	// Columnar execution (non-hierarchical kernels): prog runs op-at-a-time
	// over a whole edge block — one dispatch per instruction per block with
	// a tight per-element loop — instead of per edge. colSlot marks the
	// bank slots that vary per edge (and so get a block column); chain ops
	// whose operands are all row-constant are hoisted into rowProg and run
	// once per row. Hierarchical kernels keep the per-edge interpreter-order
	// walk: their type-boundary folds interleave with the edge sequence.
	columnar bool
	colSlot  []bool
	rowProg  []specProgOp

	// Row fast paths, valid when the unit has no pre-row/post stages:
	// directRows serves row-leaf scalars straight from tensor data
	// (skipping the per-row scratch staging) and aggMat[ai] names the
	// non-per-edge materialization fed directly from accumulator ai
	// (-1: stage through scratch as usual).
	directRows bool
	directEpi  bool
	aggMat     []int32
	matDirect  []bool // per k.mats: served by aggMat, skip the staged copy
}

// specialize runs the pattern matcher and attaches the closure program
// (or the fallback reason) to the kernel. Called once from Compile.
func (k *Kernel) specialize() {
	k.spec, k.specReason = k.buildSpecPlan()
}

// Specialized reports whether the closure compiler matched this kernel
// and the pattern name; when it did not, the second result carries the
// fallback reason instead.
func (k *Kernel) Specialized() (bool, string) {
	if k.spec != nil {
		return true, k.spec.name
	}
	return false, k.specReason
}

// buildSpecPlan pattern-matches the compiled stages against the grammar
// above; a nil plan plus reason means interpreter fallback.
func (k *Kernel) buildSpecPlan() (*specPlan, string) {
	if len(k.aggs) == 0 {
		return nil, "no aggregation to fuse into"
	}
	sp := &specPlan{}

	edgeLeafBySlot := make(map[int]int, len(k.edgeLeaves))
	for li, ld := range k.edgeLeaves {
		edgeLeafBySlot[ld.slot] = li
	}

	// Partition the edge steps: width-1 elementwise ops over width-1
	// operands form the scalar chain; everything else is a wide step
	// that must be consumed by a recognized term.
	var chainSteps []step
	wideBySlot := make(map[int]step)
	for _, st := range k.edge {
		if k.widths[st.out] == 1 && scalarClosureOp(st.node.Op) {
			allScalar := true
			for _, s := range st.ins {
				if s < 0 || k.widths[s] != 1 {
					allScalar = false
					break
				}
			}
			if allScalar {
				chainSteps = append(chainSteps, st)
				continue
			}
		}
		wideBySlot[st.out] = st
	}

	// The scalar bank: chain outputs first (pre-registered so operand
	// resolution never sees a forward reference), then demand-allocated
	// loads and row copies.
	sval := make(map[int]int)
	for _, st := range chainSteps {
		sval[st.out] = sp.nScalar
		sp.nScalar++
	}
	resolveScalar := func(slot int) (int, string) {
		if k.widths[slot] != 1 {
			return 0, fmt.Sprintf("slot %d is not scalar", slot)
		}
		if i, ok := sval[slot]; ok {
			return i, ""
		}
		if st, bad := wideBySlot[slot]; bad {
			return 0, fmt.Sprintf("scalar from unsupported op %s", st.node.Op)
		}
		i := sp.nScalar
		sp.nScalar++
		sval[slot] = i
		if li, ok := edgeLeafBySlot[slot]; ok {
			sp.edgeLoads = append(sp.edgeLoads, specLoad{
				leaf: li, byEdgeID: k.edgeLeaves[li].byEdgeID, dst: i,
			})
		} else {
			// Row leaf, const leaf or pre-row output: constant within a
			// row, hoisted to one copy per row.
			sp.rowCopies = append(sp.rowCopies, specCopy{slot: slot, dst: i, leaf: -1})
		}
		return i, ""
	}

	// The pre-row and post stages stay interpreted (they run once per
	// row); they must not read per-edge state, which the stage split
	// already guarantees — verified here rather than assumed.
	edgeStage := make(map[int]bool)
	for s := range wideBySlot {
		edgeStage[s] = true
	}
	for _, st := range chainSteps {
		edgeStage[st.out] = true
	}
	for _, ld := range k.edgeLeaves {
		edgeStage[ld.slot] = true
	}
	for _, stage := range [2][]step{k.preRow, k.post} {
		for _, st := range stage {
			for _, s := range st.ins {
				if s >= 0 && edgeStage[s] {
					return nil, fmt.Sprintf("row stage reads per-edge slot %d", s)
				}
			}
		}
	}

	// Compile the chain instructions.
	var chainOps []specProgOp
	for _, st := range chainSteps {
		op, reason := buildScalarOp(st, sval, resolveScalar)
		if reason != "" {
			return nil, reason
		}
		chainOps = append(chainOps, op)
	}
	sp.chainLen = len(chainOps)

	// Per-edge materializations must come from the scalar bank.
	for mi, m := range k.mats {
		if !m.perEdge {
			continue
		}
		if k.widths[m.slot] != 1 {
			return nil, fmt.Sprintf("wide per-edge materialization of slot %d", m.slot)
		}
		src, reason := resolveScalar(m.slot)
		if reason != "" {
			return nil, "per-edge materialization: " + reason
		}
		sp.edgeMats = append(sp.edgeMats, specMat{mat: mi, src: src})
	}

	// Match each aggregation input to a term.
	usedWide := make(map[int]bool)
	for ai, ag := range k.aggs {
		t := specTerm{agg: ai, width: ag.node.Dim(), src: -1, scale: -1}
		if ag.node.Op == gir.OpAggHier {
			t.hier = true
			t.inner, t.outer = ag.node.Attr.InnerOp, ag.node.Attr.OuterOp
		} else {
			t.outer = ag.node.Attr.AggOp
		}
		reason := k.matchTerm(&t, ag.in, sp, edgeLeafBySlot, wideBySlot, usedWide, resolveScalar)
		if reason != "" {
			return nil, reason
		}
		sp.terms = append(sp.terms, t)
	}

	// Every wide step must have been consumed by some term; a leftover
	// means a wide value we cannot produce.
	for slot, st := range wideBySlot {
		if !usedWide[slot] {
			return nil, fmt.Sprintf("wide op %s (slot %d) has no specialized consumer", st.node.Op, slot)
		}
	}

	// Execution strategy per term. Sum and mean folds are order-fixed
	// element-independent adds, so they can leave the per-edge form:
	// scaled gathers batch whole edge blocks through GatherMulAdd
	// (disabled on hierarchical kernels, whose type-boundary folds
	// interleave with the edge walk), and typed transforms keep their
	// per-o sums in registers via GemvAdd/GemvMulAdd.
	for ti := range sp.terms {
		t := &sp.terms[ti]
		kind := t.outer
		if t.hier {
			kind = t.inner
		}
		sum := kind != gir.AggMax && kind != gir.AggMin
		if sum && t.kind == termScaledGather && !k.hier {
			t.batch = true
			sp.batched = true
		}
		if sum && t.kind == termTyped {
			t.gemv = true
		}
		if sum && t.kind == termScalar && t.width == 1 {
			t.scalar01 = true
		}
	}

	// Classify bank slots: load outputs vary per edge, and so does any
	// chain output with at least one per-edge operand. A chain op whose
	// operands are all row-constant is itself row-invariant — it is
	// hoisted into rowProg and computed once per row, which stores the
	// identical value the per-edge recomputation would have.
	sp.colSlot = make([]bool, sp.nScalar)
	for _, ld := range sp.edgeLoads {
		sp.colSlot[ld.dst] = true
	}
	var edgeChain []specProgOp
	for _, op := range chainOps {
		col := sp.colSlot[op.a]
		if opReadsB(op.code) && sp.colSlot[op.b] {
			col = true
		}
		if !col {
			sp.rowProg = append(sp.rowProg, op)
			continue
		}
		op.aSc = !sp.colSlot[op.a]
		if opReadsB(op.code) {
			op.bSc = !sp.colSlot[op.b]
		}
		sp.colSlot[op.o] = true
		edgeChain = append(edgeChain, op)
	}

	// Assemble the flat edge program: loads, chain, materialization
	// stores, then the in-program term folds. Terms fold independent
	// accumulators, so hoisting the program-handled ones ahead of the
	// generic term switch cannot change any accumulator's edge sequence.
	for _, ld := range sp.edgeLoads {
		code := opLoadNbr
		if ld.byEdgeID {
			code = opLoadEdge
		}
		sp.prog = append(sp.prog, specProgOp{code: code, o: int32(ld.dst), ref: int32(ld.leaf), sink: -1})
	}
	for _, op := range edgeChain {
		op.sink = -1
		sp.prog = append(sp.prog, op)
	}
	for _, m := range sp.edgeMats {
		sp.prog = append(sp.prog, specProgOp{
			code: opStoreMat, a: int32(m.src), ref: int32(m.mat),
			aSc: !sp.colSlot[m.src], sink: -1,
		})
	}
	for ti := range sp.terms {
		t := &sp.terms[ti]
		switch {
		case t.scalar01:
			sp.prog = append(sp.prog, specProgOp{
				code: opAccScalar, a: int32(t.src), ref: int32(ti),
				aSc: !sp.colSlot[t.src], sink: -1,
			})
		case t.batch:
			sp.prog = append(sp.prog, specProgOp{
				code: opStoreBuf, a: int32(t.scale), ref: int32(ti),
				aSc: !sp.colSlot[t.scale], sink: -1,
			})
		default:
			sp.rest = append(sp.rest, int32(ti))
		}
	}

	// Hierarchical kernels walk edges one at a time (their type-boundary
	// folds interleave with the edge sequence); everything else runs the
	// program column-at-a-time over edge blocks.
	sp.columnar = !k.hier
	if sp.columnar {
		sp.fuseBufSinks()
	}
	k.planRowFastPaths(sp)

	sp.name = specPlanName(sp)
	return sp, ""
}

// opReadsB reports whether code reads a second scalar operand.
func opReadsB(code specOpCode) bool {
	switch code {
	case opAdd, opSub, opMul, opDiv,
		opLeakyReLUGrad, opReLUGrad, opSigmoidGrad, opTanhGrad:
		return true
	}
	return false
}

// fuseBufSinks redirects a column consumed only by an opStoreBuf into the
// term's scale buffer itself: the producing instruction writes the buffer
// directly and the store is elided. Bank slots are written exactly once,
// so a single-use source column has exactly one producer.
func (sp *specPlan) fuseBufSinks() {
	uses := make([]int, sp.nScalar)
	for _, op := range sp.prog {
		switch op.code {
		case opLoadNbr, opLoadEdge:
			continue
		}
		if !op.aSc {
			uses[op.a]++
		}
		if opReadsB(op.code) && !op.bSc {
			uses[op.b]++
		}
	}
	for _, ti := range sp.rest {
		t := &sp.terms[ti]
		if t.kind == termScalar {
			uses[t.src]++
		} else if t.scale >= 0 {
			uses[t.scale]++
		}
	}
	kept := sp.prog[:0]
	for _, op := range sp.prog {
		if op.code == opStoreBuf && !op.aSc && uses[op.a] == 1 {
			for pi := range kept {
				if p := &kept[pi]; p.code != opStoreMat && p.code != opAccScalar &&
					p.code != opStoreBuf && p.o == op.a {
					p.sink = op.ref
					op.code = 0 // elided
					break
				}
			}
			if op.code == 0 {
				continue
			}
		}
		kept = append(kept, op)
	}
	sp.prog = kept
}

// planRowFastPaths enables the direct row paths when the unit has no
// pre-row/post stages: row-leaf scalars are read straight from tensor
// data instead of being staged through scratch, and an aggregator with a
// dedicated materialization copies its accumulator straight to the output
// row. Falls back to the staged path whenever any materialization still
// reads a scratch slot the fast path would leave stale.
func (k *Kernel) planRowFastPaths(sp *specPlan) {
	if len(k.preRow) > 0 || len(k.post) > 0 {
		return
	}
	leafBySlot := make(map[int]int, len(k.rowLeaves))
	for li, ld := range k.rowLeaves {
		leafBySlot[ld.slot] = li
	}
	aggBySlot := make(map[int]int, len(k.aggs))
	for ai, ag := range k.aggs {
		aggBySlot[ag.out] = ai
	}
	direct := true
	matCount := make(map[int]int)
	for _, m := range k.mats {
		if m.perEdge {
			continue
		}
		if _, leaf := leafBySlot[m.slot]; leaf {
			direct = false // a materialized row leaf needs the staging copy
		}
		matCount[m.slot]++
	}
	if !direct {
		return
	}
	sp.directRows = true
	for ci := range sp.rowCopies {
		if li, ok := leafBySlot[sp.rowCopies[ci].slot]; ok {
			sp.rowCopies[ci].leaf = li
		}
	}
	sp.directEpi = true
	sp.aggMat = make([]int32, len(k.aggs))
	sp.matDirect = make([]bool, len(k.mats))
	for ai := range sp.aggMat {
		sp.aggMat[ai] = -1
	}
	for mi, m := range k.mats {
		if m.perEdge || matCount[m.slot] != 1 {
			continue
		}
		if ai, ok := aggBySlot[m.slot]; ok {
			sp.aggMat[ai] = int32(mi)
			sp.matDirect[mi] = true
		}
	}
}

// matchTerm resolves one aggregation input slot to a term form.
func (k *Kernel) matchTerm(t *specTerm, inSlot int, sp *specPlan,
	edgeLeafBySlot map[int]int, wideBySlot map[int]step, usedWide map[int]bool,
	resolveScalar func(int) (int, string)) string {

	if k.widths[inSlot] == 1 {
		src, reason := resolveScalar(inSlot)
		if reason != "" {
			return "aggregation input: " + reason
		}
		t.kind, t.src = termScalar, src
		return ""
	}

	// gatherLeaf validates a wide operand as a direct edge-leaf row.
	gatherLeaf := func(slot, wantW int) (int, bool) {
		li, ok := edgeLeafBySlot[slot]
		if !ok || k.widths[slot] != wantW {
			return 0, false
		}
		return li, true
	}

	if li, ok := gatherLeaf(inSlot, t.width); ok {
		t.kind, t.src, t.lw = termGather, li, t.width
		t.byEdgeID = k.edgeLeaves[li].byEdgeID
		return ""
	}

	st, ok := wideBySlot[inSlot]
	if !ok {
		return fmt.Sprintf("wide aggregation input from slot %d has no recognized producer", inSlot)
	}

	// typedTransform validates a MatMulTyped step whose input is a wide
	// edge leaf and fills the typed-term fields.
	typedTransform := func(mm step) string {
		din, dout := mm.param.Shape[1], mm.param.Shape[2]
		if k.widths[mm.out] != dout {
			return "typed transform output width mismatch"
		}
		xSlot := mm.ins[0]
		if xSlot < 0 {
			xSlot = mm.ins[1]
		}
		li, ok := gatherLeaf(xSlot, din)
		if !ok {
			return "typed transform input is not a wide edge leaf"
		}
		t.kind, t.src, t.lw = termTyped, li, din
		t.byEdgeID = k.edgeLeaves[li].byEdgeID
		t.param, t.tmpSlot, t.din, t.dout = mm.param, mm.out, din, dout
		usedWide[mm.out] = true
		return ""
	}

	switch st.node.Op {
	case gir.OpMatMulTyped:
		if reason := typedTransform(st); reason != "" {
			return reason
		}
		usedWide[inSlot] = true
		return ""
	case gir.OpMul:
		if len(st.ins) != 2 {
			return "wide Mul with unexpected arity"
		}
		// One operand wide (leaf gather or typed transform), the other a
		// bank scalar.
		for side := 0; side < 2; side++ {
			wideIn, scalarIn := st.ins[side], st.ins[1-side]
			if wideIn < 0 || scalarIn < 0 || k.widths[scalarIn] != 1 {
				continue
			}
			if li, ok := gatherLeaf(wideIn, t.width); ok {
				scale, reason := resolveScalar(scalarIn)
				if reason != "" {
					return "gather scale: " + reason
				}
				t.kind, t.src, t.lw, t.scale = termScaledGather, li, t.width, scale
				t.byEdgeID = k.edgeLeaves[li].byEdgeID
				usedWide[inSlot] = true
				return ""
			}
			if mm, ok := wideBySlot[wideIn]; ok && mm.node.Op == gir.OpMatMulTyped {
				if reason := typedTransform(mm); reason != "" {
					return reason
				}
				scale, reason := resolveScalar(scalarIn)
				if reason != "" {
					return "typed transform scale: " + reason
				}
				t.scale = scale
				usedWide[inSlot] = true
				return ""
			}
		}
		return "wide Mul operands do not match scalar × gather"
	default:
		return fmt.Sprintf("wide op %s is outside the pattern grammar", st.node.Op)
	}
}

// scalarClosureOp reports whether buildScalarClosure can compile op.
func scalarClosureOp(op gir.OpKind) bool {
	switch op {
	case gir.OpAdd, gir.OpSub, gir.OpMul, gir.OpDiv, gir.OpNeg,
		gir.OpExp, gir.OpLog, gir.OpLeakyReLU, gir.OpReLU,
		gir.OpSigmoid, gir.OpTanh, gir.OpMulConst, gir.OpAddConst,
		gir.OpLeakyReLUGrad, gir.OpReLUGrad, gir.OpSigmoidGrad,
		gir.OpTanhGrad, gir.OpRowSum, gir.OpEdgeView:
		return true
	}
	return false
}

// buildScalarOp compiles one width-1 step into an edge-program
// instruction over the scalar bank. Each opcode's executor arm is the
// evalStep arm at width 1, with the slot indirection resolved here at
// compile time.
func buildScalarOp(st step, sval map[int]int, resolveScalar func(int) (int, string)) (specProgOp, string) {
	op := specProgOp{o: int32(sval[st.out])}
	idx := make([]int, len(st.ins))
	for i, s := range st.ins {
		j, reason := resolveScalar(s)
		if reason != "" {
			return op, fmt.Sprintf("chain %s operand: %s", st.node.Op, reason)
		}
		idx[i] = j
	}
	if len(idx) > 0 {
		op.a = int32(idx[0])
	}
	if len(idx) > 1 {
		op.b = int32(idx[1])
	}
	switch st.node.Op {
	case gir.OpAdd:
		op.code = opAdd
	case gir.OpSub:
		op.code = opSub
	case gir.OpMul:
		op.code = opMul
	case gir.OpDiv:
		op.code = opDiv
	case gir.OpNeg:
		op.code = opNeg
	case gir.OpExp:
		op.code = opExp
	case gir.OpLog:
		op.code = opLog
	case gir.OpLeakyReLU:
		op.code, op.c = opLeakyReLU, st.node.Attr.Slope
	case gir.OpReLU:
		op.code = opReLU
	case gir.OpSigmoid:
		op.code = opSigmoid
	case gir.OpTanh:
		op.code = opTanh
	case gir.OpMulConst:
		op.code, op.c = opMulConst, st.node.Attr.C
	case gir.OpAddConst:
		op.code, op.c = opAddConst, st.node.Attr.C
	case gir.OpLeakyReLUGrad:
		op.code, op.c = opLeakyReLUGrad, st.node.Attr.Slope
	case gir.OpReLUGrad:
		op.code = opReLUGrad
	case gir.OpSigmoidGrad:
		op.code = opSigmoidGrad
	case gir.OpTanhGrad:
		op.code = opTanhGrad
	case gir.OpRowSum, gir.OpEdgeView:
		// At width 1 both are identity copies.
		op.code = opCopy
	default:
		return op, fmt.Sprintf("op %s has no scalar instruction", st.node.Op)
	}
	return op, ""
}

// specPlanName renders the matched pattern for EXPLAIN, e.g.
// "chain[4]+scaled-gather" (GAT) or "typed-gather→hier" (R-GCN).
func specPlanName(sp *specPlan) string {
	var parts []string
	if sp.chainLen > 0 {
		parts = append(parts, fmt.Sprintf("chain[%d]", sp.chainLen))
	}
	seen := make(map[string]bool)
	hier := false
	for _, t := range sp.terms {
		var s string
		switch t.kind {
		case termScalar:
			s = "scalar-agg"
		case termGather:
			s = "gather"
		case termScaledGather:
			s = "scaled-gather"
		case termTyped:
			s = "typed-gather"
		}
		if !seen[s] {
			seen[s] = true
			parts = append(parts, s)
		}
		hier = hier || t.hier
	}
	name := strings.Join(parts, "+")
	if hier {
		name += "→hier"
	}
	return name
}

// specBlock is the edge-block size of the batched gather path: big
// enough to amortize the GatherMulAdd call and fill the prefetch
// pipeline, small enough that the per-term scale buffers stay L1-hot.
const specBlock = 256

// specTermState is a term's per-launch runtime view, hoisted out of the
// edge loop: the accumulator target and fold kind resolved against this
// worker's arena, and the raw data slices resolved against this launch's
// bindings.
type specTermState struct {
	t      *specTerm
	target []float32
	kind   gir.AggKind
	data   []float32 // gather/typed: leaf tensor data
	wd     []float32 // typed: weight data
	tmp    []float32 // typed: transform scratch row
	buf    []float32 // batch: per-block scale buffer
}

// runRowsSpec executes rows [lo, hi) through the compiled edge program —
// the specialized counterpart of runRowsFull, replicating its per-element
// operation order exactly (see the bitwise contract above). It always
// runs full-width: tiled and untiled interpretation are themselves
// bitwise equal, and the specialized live set per edge (the scalar bank
// plus one accumulator row) is far below the tiling threshold.
//
// Edges are walked in blocks of specBlock. Non-hierarchical kernels run
// the program column-at-a-time: each instruction makes one dispatch per
// block and a tight loop over the block's edges, with per-edge values
// held in block columns. The remaining terms (max/min folds, typed
// transforms) then walk the block per edge, and every batched term drains
// with one GatherMulAdd over the block — the CSR's own nbr/eid slices are
// the gather index vector. Hierarchical kernels keep the edge-at-a-time
// walk because their type-boundary folds interleave with the edge
// sequence. Both orders compute each scalar from the same pure dataflow
// and fold each accumulator over its own edge sequence in edge order, so
// reordering work across independent accumulators stays bitwise-equal.
func (k *Kernel) runRowsSpec(a *runArena, csr *graph.CSR, g *graph.Graph, lo, hi int) error {
	sp := k.spec
	scratch, accs, inner, v := a.scratch, a.accs, a.inner, a.svals
	rowT, matT, params := k.rowT, k.matT, k.paramT
	leafData := k.specLeafData
	matData := k.specMatData

	ts := a.tstate
	for ti := range sp.terms {
		t := &sp.terms[ti]
		s := &ts[ti]
		s.t = t
		s.target, s.kind = accs[t.agg], t.outer
		if t.hier {
			s.target, s.kind = inner[t.agg], t.inner
		}
		s.data = nil
		if t.kind != termScalar {
			s.data = leafData[t.src]
		}
		if t.kind == termTyped {
			s.wd = k.specWd[ti]
			s.tmp = scratch[t.tmpSlot]
		}
	}

	// Bind the edge program against this launch's tensors, this worker's
	// accumulators and (columnar mode) this worker's block columns.
	prog := a.prog
	cols := a.cols
	for pi, p := range sp.prog {
		b := specOp{code: p.code, o: p.o, a: p.a, b: p.b, c: p.c, aSc: p.aSc, bSc: p.bSc}
		switch p.code {
		case opLoadNbr, opLoadEdge:
			b.data = leafData[p.ref]
		case opStoreMat:
			b.data = matData[p.ref]
		case opAccScalar:
			b.data = ts[p.ref].target
		case opStoreBuf:
			b.data = ts[p.ref].buf
		}
		if sp.columnar {
			b.oc = cols[p.o]
			if p.sink >= 0 {
				b.oc = ts[p.sink].buf
			}
			if !p.aSc {
				b.ac = cols[p.a]
			}
			if !p.bSc {
				b.bc = cols[p.b]
			}
		}
		prog[pi] = b
	}
	rowLeafData := a.rowLeafData
	if sp.directRows {
		rowLeafData = rowLeafData[:0]
		for i := range k.rowLeaves {
			rowLeafData = append(rowLeafData, rowT[i].Data())
		}
	}

	for r := lo; r < hi; r++ {
		vid := int(csr.RowIDs[r])
		if !sp.directRows {
			for i, ld := range k.rowLeaves {
				copy(scratch[ld.slot], rowT[i].Row(vid))
			}
		}
		for _, st := range k.preRow {
			if err := evalStep(st, scratch, params, 0); err != nil {
				return err
			}
		}
		for ci := range sp.rowCopies {
			rc := &sp.rowCopies[ci]
			if rc.leaf >= 0 {
				v[rc.dst] = rowLeafData[rc.leaf][vid]
			} else {
				v[rc.dst] = scratch[rc.slot][0]
			}
		}
		for pi := range sp.rowProg {
			runScalarOp(&sp.rowProg[pi], v)
		}
		for i, ag := range k.aggs {
			initAcc(accs[i], outerKind(ag.node))
			if ag.node.Op == gir.OpAggHier {
				initAcc(inner[i], ag.node.Attr.InnerOp)
			}
		}
		nbrs, eids := csr.Row(r)
		deg := len(nbrs)
		started := false
		if sp.columnar {
			k.runEdgesCol(sp, ts, prog, v, cols, nbrs, eids, g)
		} else {
			started = k.runEdgesHier(sp, ts, prog, v, nbrs, eids, g, accs, inner)
		}
		for ai, ag := range k.aggs {
			if ag.node.Op == gir.OpAggHier {
				if started {
					foldInner(accs[ai], inner[ai], ag.node.Attr.OuterOp)
				}
			}
			finalizeAcc(accs[ai], ag.node, deg)
			if sp.directEpi && sp.aggMat[ai] >= 0 {
				copy(matT[sp.aggMat[ai]].Row(vid), accs[ai])
			} else {
				copy(scratch[ag.out], accs[ai])
			}
		}
		for _, st := range k.post {
			if err := evalStep(st, scratch, params, 0); err != nil {
				return err
			}
		}
		for mi, m := range k.mats {
			if m.perEdge || (sp.directEpi && sp.matDirect[mi]) {
				continue
			}
			copy(matT[mi].Row(vid), scratch[m.slot])
		}
	}
	return nil
}

// runEdgesCol walks one row's edges column-at-a-time: per block, the edge
// program runs op-major (one dispatch per instruction, a tight loop per
// element), then the leftover terms walk the block per edge, then every
// batched term drains through GatherMulAdd.
func (k *Kernel) runEdgesCol(sp *specPlan, ts []specTermState, prog []specOp,
	v []float32, cols [][]float32, nbrs, eids []int32, g *graph.Graph) {

	typed := k.usesEdgeType
	for b0 := 0; b0 < len(nbrs); b0 += specBlock {
		b1 := b0 + specBlock
		if b1 > len(nbrs) {
			b1 = len(nbrs)
		}
		n := b1 - b0
		nbrsB := nbrs[b0:b1]
		eidsB := eids[b0:b1]
		for pi := range prog {
			p := &prog[pi]
			switch p.code {
			case opLoadNbr:
				o, d := p.oc[:n], p.data
				for j, ix := range nbrsB {
					o[j] = d[ix]
				}
			case opLoadEdge:
				o, d := p.oc[:n], p.data
				for j, ix := range eidsB {
					o[j] = d[ix]
				}
			case opAdd:
				o := p.oc[:n]
				switch {
				case p.aSc:
					s, b := v[p.a], p.bc[:n]
					for j := range o {
						o[j] = s + b[j]
					}
				case p.bSc:
					a, s := p.ac[:n], v[p.b]
					for j := range o {
						o[j] = a[j] + s
					}
				default:
					a, b := p.ac[:n], p.bc[:n]
					for j := range o {
						o[j] = a[j] + b[j]
					}
				}
			case opSub:
				o := p.oc[:n]
				switch {
				case p.aSc:
					s, b := v[p.a], p.bc[:n]
					for j := range o {
						o[j] = s - b[j]
					}
				case p.bSc:
					a, s := p.ac[:n], v[p.b]
					for j := range o {
						o[j] = a[j] - s
					}
				default:
					a, b := p.ac[:n], p.bc[:n]
					for j := range o {
						o[j] = a[j] - b[j]
					}
				}
			case opMul:
				o := p.oc[:n]
				switch {
				case p.aSc:
					s, b := v[p.a], p.bc[:n]
					for j := range o {
						o[j] = s * b[j]
					}
				case p.bSc:
					a, s := p.ac[:n], v[p.b]
					for j := range o {
						o[j] = a[j] * s
					}
				default:
					a, b := p.ac[:n], p.bc[:n]
					for j := range o {
						o[j] = a[j] * b[j]
					}
				}
			case opDiv:
				o := p.oc[:n]
				switch {
				case p.aSc:
					s, b := v[p.a], p.bc[:n]
					for j := range o {
						o[j] = s / b[j]
					}
				case p.bSc:
					a, s := p.ac[:n], v[p.b]
					for j := range o {
						o[j] = a[j] / s
					}
				default:
					a, b := p.ac[:n], p.bc[:n]
					for j := range o {
						o[j] = a[j] / b[j]
					}
				}
			case opNeg:
				o, a := p.oc[:n], p.ac[:n]
				for j := range o {
					o[j] = -a[j]
				}
			case opExp:
				o, a := p.oc[:n], p.ac[:n]
				for j := range o {
					o[j] = float32(math.Exp(float64(a[j])))
				}
			case opLog:
				o, a := p.oc[:n], p.ac[:n]
				for j := range o {
					o[j] = float32(math.Log(float64(a[j])))
				}
			case opLeakyReLU:
				o, a, c := p.oc[:n], p.ac[:n], p.c
				for j := range o {
					x := a[j]
					if x < 0 {
						x *= c
					}
					o[j] = x
				}
			case opReLU:
				o, a := p.oc[:n], p.ac[:n]
				for j := range o {
					x := a[j]
					if x < 0 {
						x = 0
					}
					o[j] = x
				}
			case opSigmoid:
				o, a := p.oc[:n], p.ac[:n]
				for j := range o {
					o[j] = 1 / (1 + float32(math.Exp(float64(-a[j]))))
				}
			case opTanh:
				o, a := p.oc[:n], p.ac[:n]
				for j := range o {
					o[j] = float32(math.Tanh(float64(a[j])))
				}
			case opMulConst:
				o, a, c := p.oc[:n], p.ac[:n], p.c
				for j := range o {
					o[j] = c * a[j]
				}
			case opAddConst:
				o, a, c := p.oc[:n], p.ac[:n], p.c
				for j := range o {
					o[j] = c + a[j]
				}
			case opLeakyReLUGrad:
				o := p.oc[:n]
				for j := range o {
					if p.opA(v, j) > 0 {
						o[j] = p.opB(v, j)
					} else {
						o[j] = p.c * p.opB(v, j)
					}
				}
			case opReLUGrad:
				o := p.oc[:n]
				for j := range o {
					if p.opA(v, j) > 0 {
						o[j] = p.opB(v, j)
					} else {
						o[j] = 0
					}
				}
			case opSigmoidGrad:
				o := p.oc[:n]
				for j := range o {
					y := p.opA(v, j)
					o[j] = p.opB(v, j) * y * (1 - y)
				}
			case opTanhGrad:
				o := p.oc[:n]
				for j := range o {
					y := p.opA(v, j)
					o[j] = p.opB(v, j) * (1 - y*y)
				}
			case opCopy:
				copy(p.oc[:n], p.ac[:n])
			case opStoreMat:
				if p.aSc {
					s, d := v[p.a], p.data
					for _, e := range eidsB {
						d[e] = s
					}
				} else {
					a, d := p.ac[:n], p.data
					for j, e := range eidsB {
						d[e] = a[j]
					}
				}
			case opAccScalar:
				t := p.data
				s0 := t[0]
				if p.aSc {
					s := v[p.a]
					for j := 0; j < n; j++ {
						s0 += s
					}
				} else {
					a := p.ac[:n]
					for j := range a {
						s0 += a[j]
					}
				}
				t[0] = s0
			case opStoreBuf:
				if p.aSc {
					s, d := v[p.a], p.data[:n]
					for j := range d {
						d[j] = s
					}
				} else {
					copy(p.data[:n], p.ac[:n])
				}
			}
		}
		for _, si := range sp.rest {
			s := &ts[si]
			t := s.t
			idx := nbrsB
			if t.byEdgeID {
				idx = eidsB
			}
			switch t.kind {
			case termScalar:
				if sp.colSlot[t.src] {
					col := cols[t.src][:n]
					for j := range col {
						accumulate(s.target, col[j:j+1], s.kind, 1)
					}
				} else {
					for j := 0; j < n; j++ {
						accumulate(s.target, v[t.src:t.src+1], s.kind, 1)
					}
				}
			case termGather:
				for _, ix := range idx {
					base := int(ix) * t.lw
					accumulate(s.target, s.data[base:base+t.lw], s.kind, t.lw)
				}
			case termScaledGather:
				var scCol []float32
				if sp.colSlot[t.scale] {
					scCol = cols[t.scale]
				}
				for j, ix := range idx {
					sc := v[t.scale]
					if scCol != nil {
						sc = scCol[j]
					}
					base := int(ix) * t.lw
					scaledAccumulate(s.target, s.data[base:base+t.lw], sc, s.kind)
				}
			default: // termTyped
				var scCol []float32
				if t.scale >= 0 && sp.colSlot[t.scale] {
					scCol = cols[t.scale]
				}
				for j, ix := range idx {
					if j+1 < n {
						nb := int(idx[j+1])
						tensor.Prefetch(s.data[nb*t.lw : nb*t.lw+t.lw])
					}
					base := int(ix) * t.lw
					x := s.data[base : base+t.lw]
					et := 0
					if typed {
						et = int(g.EdgeTypes[eidsB[j]])
					}
					wbase := et * t.din * t.dout
					wd := s.wd[wbase : wbase+t.din*t.dout]
					sc := float32(0)
					if t.scale >= 0 {
						sc = v[t.scale]
						if scCol != nil {
							sc = scCol[j]
						}
					}
					if t.gemv {
						if t.scale >= 0 {
							tensor.GemvMulAdd(s.target, s.tmp, wd, x, sc)
						} else {
							tensor.GemvAdd(s.target, s.tmp, wd, x)
						}
						continue
					}
					out := s.tmp
					for j2 := range out {
						out[j2] = 0
					}
					for i2 := 0; i2 < t.din; i2++ {
						// Row-axpy form of the interpreter's per-output
						// dot products: out[o] accumulates the products
						// in the same i order, so every element sees the
						// identical rounding sequence.
						tensor.VecMulAdd(out, wd[i2*t.dout:(i2+1)*t.dout], x[i2])
					}
					if t.scale >= 0 {
						scaledAccumulate(s.target, out, sc, s.kind)
					} else {
						accumulate(s.target, out, s.kind, t.dout)
					}
				}
			}
		}
		if sp.batched {
			for si := range ts {
				s := &ts[si]
				if !s.t.batch {
					continue
				}
				idx := nbrsB
				if s.t.byEdgeID {
					idx = eidsB
				}
				tensor.GatherMulAdd(s.target, s.data, idx, s.buf[:n])
			}
		}
	}
}

// opA reads instruction operand a for block element j.
func (p *specOp) opA(v []float32, j int) float32 {
	if p.aSc {
		return v[p.a]
	}
	return p.ac[j]
}

// opB reads instruction operand b for block element j.
func (p *specOp) opB(v []float32, j int) float32 {
	if p.bSc {
		return v[p.b]
	}
	return p.bc[j]
}

// runEdgesHier walks one row's edges one at a time in interpreter order —
// the path hierarchical kernels take, whose type-boundary folds
// interleave with the edge sequence. It reports whether any edge ran.
func (k *Kernel) runEdgesHier(sp *specPlan, ts []specTermState, prog []specOp,
	v []float32, nbrs, eids []int32, g *graph.Graph, accs, inner [][]float32) bool {

	hier, typed := k.hier, k.usesEdgeType
	deg := len(nbrs)
	curType := int32(-1)
	started := false
	for i := 0; i < deg; i++ {
		nbr := nbrs[i]
		eid := int(eids[i])
		et := 0
		if typed {
			et = int(g.EdgeTypes[eid])
		}
		if hier && started && int32(et) != curType {
			for ai, ag := range k.aggs {
				if ag.node.Op == gir.OpAggHier {
					foldInner(accs[ai], inner[ai], ag.node.Attr.OuterOp)
					initAcc(inner[ai], ag.node.Attr.InnerOp)
				}
			}
		}
		curType = int32(et)
		started = true

		for pi := range prog {
			p := &prog[pi]
			switch p.code {
			case opLoadNbr:
				v[p.o] = p.data[nbr]
			case opLoadEdge:
				v[p.o] = p.data[eid]
			case opStoreMat:
				p.data[eid] = v[p.a]
			case opAccScalar:
				p.data[0] += v[p.a]
			default:
				runScalarOpRT(p, v)
			}
		}
		for _, si := range sp.rest {
			s := &ts[si]
			t := s.t
			switch {
			case t.kind == termScalar:
				accumulate(s.target, v[t.src:t.src+1], s.kind, 1)
			case t.kind == termGather:
				base := int(nbr) * t.lw
				if t.byEdgeID {
					base = eid * t.lw
				}
				accumulate(s.target, s.data[base:base+t.lw], s.kind, t.lw)
			case t.kind == termScaledGather:
				base := int(nbr) * t.lw
				if t.byEdgeID {
					base = eid * t.lw
				}
				scaledAccumulate(s.target, s.data[base:base+t.lw], v[t.scale], s.kind)
			default: // termTyped
				base := int(nbr) * t.lw
				if t.byEdgeID {
					base = eid * t.lw
				}
				if i+1 < deg {
					nb := int(nbrs[i+1])
					if t.byEdgeID {
						nb = int(eids[i+1])
					}
					tensor.Prefetch(s.data[nb*t.lw : nb*t.lw+t.lw])
				}
				x := s.data[base : base+t.lw]
				wbase := et * t.din * t.dout
				wd := s.wd[wbase : wbase+t.din*t.dout]
				if t.gemv {
					if t.scale >= 0 {
						tensor.GemvMulAdd(s.target, s.tmp, wd, x, v[t.scale])
					} else {
						tensor.GemvAdd(s.target, s.tmp, wd, x)
					}
					continue
				}
				out := s.tmp
				for j := range out {
					out[j] = 0
				}
				for i2 := 0; i2 < t.din; i2++ {
					tensor.VecMulAdd(out, wd[i2*t.dout:(i2+1)*t.dout], x[i2])
				}
				if t.scale >= 0 {
					scaledAccumulate(s.target, out, v[t.scale], s.kind)
				} else {
					accumulate(s.target, out, s.kind, t.dout)
				}
			}
		}
	}
	return started
}

// runScalarOp executes one row-invariant chain instruction on the bank.
func runScalarOp(p *specProgOp, v []float32) {
	rt := specOp{code: p.code, o: p.o, a: p.a, b: p.b, c: p.c}
	runScalarOpRT(&rt, v)
}

// runScalarOpRT executes one pure chain instruction on the scalar bank —
// each arm is the evalStep arm at width 1.
func runScalarOpRT(p *specOp, v []float32) {
	switch p.code {
	case opAdd:
		v[p.o] = v[p.a] + v[p.b]
	case opSub:
		v[p.o] = v[p.a] - v[p.b]
	case opMul:
		v[p.o] = v[p.a] * v[p.b]
	case opDiv:
		v[p.o] = v[p.a] / v[p.b]
	case opNeg:
		v[p.o] = -v[p.a]
	case opExp:
		v[p.o] = float32(math.Exp(float64(v[p.a])))
	case opLog:
		v[p.o] = float32(math.Log(float64(v[p.a])))
	case opLeakyReLU:
		x := v[p.a]
		if x < 0 {
			x *= p.c
		}
		v[p.o] = x
	case opReLU:
		x := v[p.a]
		if x < 0 {
			x = 0
		}
		v[p.o] = x
	case opSigmoid:
		v[p.o] = 1 / (1 + float32(math.Exp(float64(-v[p.a]))))
	case opTanh:
		v[p.o] = float32(math.Tanh(float64(v[p.a])))
	case opMulConst:
		v[p.o] = p.c * v[p.a]
	case opAddConst:
		v[p.o] = p.c + v[p.a]
	case opLeakyReLUGrad:
		if v[p.a] > 0 {
			v[p.o] = v[p.b]
		} else {
			v[p.o] = p.c * v[p.b]
		}
	case opReLUGrad:
		if v[p.a] > 0 {
			v[p.o] = v[p.b]
		} else {
			v[p.o] = 0
		}
	case opSigmoidGrad:
		y := v[p.a]
		v[p.o] = v[p.b] * y * (1 - y)
	case opTanhGrad:
		y := v[p.a]
		v[p.o] = v[p.b] * (1 - y*y)
	case opCopy:
		v[p.o] = v[p.a]
	}
}

// scaledAccumulate folds s·src into acc under kind with the product
// rounded before the fold — the same two roundings as an interpreted Mul
// step followed by accumulate.
func scaledAccumulate(acc, src []float32, s float32, kind gir.AggKind) {
	switch kind {
	case gir.AggMax:
		for j := range acc {
			p := s * src[j]
			if p > acc[j] {
				acc[j] = p
			}
		}
	case gir.AggMin:
		for j := range acc {
			p := s * src[j]
			if p < acc[j] {
				acc[j] = p
			}
		}
	default: // sum & mean accumulate sums
		tensor.VecMulAdd(acc, src[:len(acc)], s)
	}
}

// Tests for the measured re-planner's kernel overrides (tuning.go):
// every knob must stay inside the bitwise-safe envelope, and explicit
// Config pins must always win over learned tunings so equivalence tests
// keep control of the launch.
package kernels_test

import (
	"math/rand"
	"testing"

	"seastar/internal/exec"
	"seastar/internal/fusion"
	"seastar/internal/graph"
	"seastar/internal/kernels"
	"seastar/internal/obs"
	"seastar/internal/sched"
	"seastar/internal/tensor"
)

// applyFwdTuning installs tn on every forward seastar kernel of c.
func applyFwdTuning(t *testing.T, c *exec.CompiledUDF, tn kernels.Tuning) {
	t.Helper()
	n := 0
	for _, u := range c.FwdPlan.Units {
		if u.Kind != fusion.KindSeastar {
			continue
		}
		if k := c.FwdKernel(u); k != nil {
			k.SetTuning(tn)
			n++
		}
	}
	if n == 0 {
		t.Fatal("plan has no seastar kernels to tune")
	}
}

func TestTuningBitwiseEnvelope(t *testing.T) {
	c, err := exec.CompileInference(gatDAG(t, 48))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(71))
	g := graph.PowerLaw(rng, 500, 6).SortByDegree()
	vfeat := map[string]*tensor.Tensor{
		"eu": tensor.Randn(rng, 0.5, 500, 1),
		"ev": tensor.Randn(rng, 0.5, 500, 1),
		"h":  tensor.Randn(rng, 0.5, 500, 48),
	}

	// Baseline: static plan, interpreted (tile/chunk knobs only touch the
	// interpreted edge loop; the specialized path ignores them).
	cfg := kernels.DefaultConfig()
	cfg.NoSpecialize = true
	want, err := c.Infer(&exec.InferEnv{G: g, Cfg: cfg}, vfeat, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	tunings := []struct {
		name string
		tn   kernels.Tuning
	}{
		{"tile=4", kernels.Tuning{TileWidth: 4}},
		{"tile=8 chunks=2", kernels.Tuning{TileWidth: 8, ChunksPerWorker: 2}},
		{"serial", kernels.Tuning{Serial: 1}},
		{"parallel chunks=32", kernels.Tuning{Serial: -1, ChunksPerWorker: 32}},
	}
	// The full adaptive property: a re-planned run must be byte-identical
	// to the static plan under every SIMD × worker-count combination, so
	// a plan learned on one host configuration stays safe on another.
	for _, simd := range []bool{true, false} {
		prevSIMD := tensor.SetSIMD(simd)
		for _, procs := range []int{1, 4} {
			prev := sched.SetMaxProcs(procs)
			for _, tc := range tunings {
				applyFwdTuning(t, c, tc.tn)
				got, err := c.Infer(&exec.InferEnv{G: g, Cfg: cfg}, vfeat, nil, nil)
				if err != nil {
					sched.SetMaxProcs(prev)
					tensor.SetSIMD(prevSIMD)
					t.Fatalf("%s simd=%v procs=%d: %v", tc.name, simd, procs, err)
				}
				for i := 0; i < want.Size(); i++ {
					if !sameBits(got.At1(i), want.At1(i)) {
						sched.SetMaxProcs(prev)
						tensor.SetSIMD(prevSIMD)
						t.Fatalf("tuning %q simd=%v procs=%d broke the bitwise contract at [%d]: %v != %v",
							tc.name, simd, procs, i, got.At1(i), want.At1(i))
					}
				}
				applyFwdTuning(t, c, kernels.Tuning{})
			}
			sched.SetMaxProcs(prev)
		}
		tensor.SetSIMD(prevSIMD)
	}
}

// tileWidthsObserved runs one inference under cfg and returns the
// per-kernel effective tile widths the launch reported to obs.
func tileWidthsObserved(t *testing.T, c *exec.CompiledUDF, g *graph.Graph,
	vfeat map[string]*tensor.Tensor, cfg kernels.Config) map[string]int64 {
	t.Helper()
	obs.Reset()
	obs.Enable()
	defer obs.Disable()
	if _, err := c.Infer(&exec.InferEnv{G: g, Cfg: cfg}, vfeat, nil, nil); err != nil {
		t.Fatal(err)
	}
	out := map[string]int64{}
	for _, e := range obs.Snapshot() {
		if e.Cat == "kern" {
			out[e.Name] = e.Counters["tile_width"]
		}
	}
	return out
}

func TestTuningPrecedence(t *testing.T) {
	c, err := exec.CompileInference(gatDAG(t, 48))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(73))
	g := graph.PowerLaw(rng, 200, 5).SortByDegree()
	vfeat := map[string]*tensor.Tensor{
		"eu": tensor.Randn(rng, 0.5, 200, 1),
		"ev": tensor.Randn(rng, 0.5, 200, 1),
		"h":  tensor.Randn(rng, 0.5, 200, 48),
	}
	cfg := kernels.DefaultConfig()
	cfg.NoSpecialize = true

	applyFwdTuning(t, c, kernels.Tuning{TileWidth: 8})

	// Without a config pin the learned width applies to tileable kernels.
	sawLearned := false
	for unit, w := range tileWidthsObserved(t, c, g, vfeat, cfg) {
		if w == 8 {
			sawLearned = true
		} else if w != 0 {
			t.Fatalf("unit %q ran tile width %d with learned width 8 installed", unit, w)
		}
	}
	if !sawLearned {
		t.Fatal("no tileable kernel picked up the learned tile width")
	}

	// A config pin (tests own ForceTileWidth) must beat the learned width.
	pinned := cfg
	pinned.ForceTileWidth = 2
	for unit, w := range tileWidthsObserved(t, c, g, vfeat, pinned) {
		if w != 2 && w != 0 {
			t.Fatalf("unit %q ran tile width %d; config pin 2 must beat learned 8", unit, w)
		}
	}

	// NoFeatureTile disables tiling regardless of tuning.
	untiled := cfg
	untiled.NoFeatureTile = true
	for unit, w := range tileWidthsObserved(t, c, g, vfeat, untiled) {
		if w != 0 {
			t.Fatalf("unit %q ran tile width %d under NoFeatureTile", unit, w)
		}
	}

	if tn := kernelOf(t, c).Tuning(); tn.TileWidth != 8 {
		t.Fatalf("Tuning() = %+v, want installed TileWidth 8", tn)
	}
}

func kernelOf(t *testing.T, c *exec.CompiledUDF) *kernels.Kernel {
	t.Helper()
	for _, u := range c.FwdPlan.Units {
		if u.Kind == fusion.KindSeastar {
			if k := c.FwdKernel(u); k != nil {
				return k
			}
		}
	}
	t.Fatal("no seastar kernel")
	return nil
}

func TestTuningSurfaceAndApply(t *testing.T) {
	c, err := exec.CompileInference(gatDAG(t, 48))
	if err != nil {
		t.Fatal(err)
	}
	surface := c.TuningSurface()
	if len(surface) == 0 {
		t.Fatal("empty tuning surface")
	}
	sawTileable := false
	for _, u := range surface {
		if u.Pass != "fwd" {
			t.Fatalf("inference-only program lists pass %q", u.Pass)
		}
		if u.Label == "" {
			t.Fatal("surface unit has no label")
		}
		if u.Tileable {
			sawTileable = true
			if u.Width != 48 {
				t.Fatalf("tileable unit width %d, want 48", u.Width)
			}
		}
	}
	if !sawTileable {
		t.Fatal("GAT surface has no tileable unit")
	}

	// Apply by label; stale labels from an outdated persisted plan are
	// skipped, not fatal.
	tn := map[string]kernels.Tuning{
		surface[0].Label:      {ChunksPerWorker: 5},
		"fwd/unit 99 [stale]": {TileWidth: 7},
	}
	if n := c.ApplyTuning(tn); n != 1 {
		t.Fatalf("ApplyTuning retuned %d kernels, want 1", n)
	}
	if got := kernelByLabel(t, c, surface[0].Label).Tuning(); got.ChunksPerWorker != 5 {
		t.Fatalf("tuning not installed: %+v", got)
	}
	c.ResetTuning()
	if got := kernelByLabel(t, c, surface[0].Label).Tuning(); !got.IsZero() {
		t.Fatalf("ResetTuning left %+v", got)
	}
}

func kernelByLabel(t *testing.T, c *exec.CompiledUDF, label string) *kernels.Kernel {
	t.Helper()
	for _, u := range c.FwdPlan.Units {
		if k := c.FwdKernel(u); k != nil && k.ObsLabel() == label {
			return k
		}
	}
	t.Fatalf("no kernel labelled %q", label)
	return nil
}

func TestPartitionChunksGranularity(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	g := graph.PowerLaw(rng, 2000, 6).SortByDegree()
	csr := &g.In

	coarse := kernels.PartitionChunks(csr, kernels.PartitionEdgeBalanced, 4, 2)
	fine := kernels.PartitionChunks(csr, kernels.PartitionEdgeBalanced, 4, 16)
	if len(coarse) > sched.Oversubscribe(4, 2) {
		t.Fatalf("coarse partition has %d chunks, budget %d", len(coarse), sched.Oversubscribe(4, 2))
	}
	if len(fine) <= len(coarse) {
		t.Fatalf("finer granularity did not increase chunk count: %d vs %d", len(fine), len(coarse))
	}
	// Both granularities must cover exactly the same rows in order.
	for name, rs := range map[string][]sched.Range{"coarse": coarse, "fine": fine} {
		lo := 0
		for _, r := range rs {
			if r.Lo != lo {
				t.Fatalf("%s partition leaves a gap at row %d", name, lo)
			}
			lo = r.Hi
		}
		if lo != csr.NumRows() {
			t.Fatalf("%s partition covers %d of %d rows", name, lo, csr.NumRows())
		}
	}
	// The default export stays on the static granularity.
	def := kernels.Partition(csr, kernels.PartitionEdgeBalanced, 4)
	if len(def) != len(kernels.PartitionChunks(csr, kernels.PartitionEdgeBalanced, 4, 8)) {
		t.Fatal("Partition no longer matches PartitionChunks at the static granularity")
	}
}

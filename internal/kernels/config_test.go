package kernels

import (
	"math/rand"
	"testing"

	"seastar/internal/device"
	"seastar/internal/fusion"
	"seastar/internal/gir"
	"seastar/internal/graph"
	"seastar/internal/tensor"
)

func TestGroupSizeTable(t *testing.T) {
	cases := []struct {
		fa       bool
		block    int
		maxWidth int
		want     int
	}{
		{true, 256, 1, 1},
		{true, 256, 2, 2},
		{true, 256, 3, 2}, // largest power of two ≤ 3
		{true, 256, 16, 16},
		{true, 256, 602, 256}, // capped at block size
		{true, 64, 602, 64},
		{false, 256, 16, 256}, // Basic: whole block per vertex
	}
	for _, c := range cases {
		cfg := Config{BlockSize: c.block, FeatureAdaptive: c.fa}
		if got := groupSize(cfg, c.maxWidth); got != c.want {
			t.Errorf("groupSize(fa=%v block=%d width=%d) = %d, want %d",
				c.fa, c.block, c.maxWidth, got, c.want)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.BlockSize != 256 {
		t.Fatalf("default block size %d", cfg.BlockSize)
	}
	d := DefaultConfig()
	if !d.FeatureAdaptive || d.Sched != device.SchedHardware {
		t.Fatalf("DefaultConfig: %+v", d)
	}
}

func TestLaunchOnlyMatchesRunCost(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	g := graph.PowerLaw(rng, 500, 6).SortByDegree()
	b := gir.NewBuilder()
	b.VFeature("h", 8)
	dag, err := b.Build(func(v *gir.Vertex) *gir.Value {
		return v.Nbr("h").Exp().AggSum()
	})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fusion.Partition(fusion.Optimize(dag))
	if err != nil {
		t.Fatal(err)
	}
	mat := plan.Materialized(nil)
	k, err := Compile(plan.Units[0], mat[plan.Units[0]], nil)
	if err != nil {
		t.Fatal(err)
	}

	devRun := device.New(device.V100)
	h := tensor.Randn(rng, 1, 500, 8)
	outs := map[*gir.Node]*tensor.Tensor{plan.DAG.Outputs[0]: tensor.New(500, 8)}
	if err := k.Run(devRun, g, DefaultConfig(), &Bindings{VFeat: map[string]*tensor.Tensor{"h": h}}, outs); err != nil {
		t.Fatal(err)
	}

	devOnly := device.New(device.V100)
	k.LaunchOnly(devOnly, g, DefaultConfig())

	if devRun.ElapsedNs() != devOnly.ElapsedNs() {
		t.Fatalf("LaunchOnly cost %v != Run cost %v", devOnly.ElapsedNs(), devRun.ElapsedNs())
	}
}

func TestBasicVariantChargesLowActiveFraction(t *testing.T) {
	// At feature width 1, the Basic configuration (one vertex per
	// 256-thread block) must be slower than FA purely through the
	// active-thread bandwidth model.
	rng := rand.New(rand.NewSource(62))
	g := graph.PowerLaw(rng, 4000, 64).SortByDegree()
	b := gir.NewBuilder()
	b.VFeature("h", 1)
	dag, err := b.Build(func(v *gir.Vertex) *gir.Value {
		return v.Nbr("h").AggSum()
	})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fusion.Partition(fusion.Optimize(dag))
	if err != nil {
		t.Fatal(err)
	}
	k, err := Compile(plan.Units[0], plan.Materialized(nil)[plan.Units[0]], nil)
	if err != nil {
		t.Fatal(err)
	}
	basic := device.New(device.GTX1080Ti)
	k.LaunchOnly(basic, g, Config{BlockSize: 256, FeatureAdaptive: false})
	fa := device.New(device.GTX1080Ti)
	k.LaunchOnly(fa, g, Config{BlockSize: 256, FeatureAdaptive: true})
	if ratio := basic.ElapsedNs() / fa.ElapsedNs(); ratio < 2 {
		t.Fatalf("Basic/FA ratio %.2f at width 1, want ≥ 2", ratio)
	}
}

// Package kernels implements the execution strategies of the Seastar
// reproduction:
//
//   - the fused seastar kernel generated from a fusion.Unit (paper
//     Algorithm 1): vertex-parallel edge-sequential execution with
//     feature-adaptive thread (FAT) groups, register aggregation, degree
//     sorting and dynamic load balancing (§6.3);
//   - DGL/minigun-style edge-parallel kernels that binary-search the CSR
//     offset array per edge and aggregate with atomics (§6.3, the paper's
//     baseline); and
//   - PyG-style gather / scatter-add primitives over materialized edge
//     tensors (§2.3).
//
// Every kernel computes real values on the CPU and charges a cost record
// to the simulated device, so the same code path provides both
// correctness (cross-system equality tests) and the performance shape of
// the paper's figures.
package kernels

import (
	"fmt"
	"sync"

	"seastar/internal/device"
	"seastar/internal/fusion"
	"seastar/internal/gir"
	"seastar/internal/graph"
	"seastar/internal/sched"
	"seastar/internal/tensor"
)

// Bindings resolves GIR leaves to tensors at execution time.
type Bindings struct {
	// VFeat maps vertex-feature keys to [N, d] tensors.
	VFeat map[string]*tensor.Tensor
	// EFeat maps edge-feature keys to [M, d] tensors.
	EFeat map[string]*tensor.Tensor
	// Params maps parameter keys to their tensors.
	Params map[string]*tensor.Tensor
	// Grad is the incoming gradient for LeafGrad placeholders.
	Grad *tensor.Tensor
	// Saved maps forward nodes to their materialized values for
	// LeafSaved references (forward leaves resolve through the fields
	// above instead).
	Saved map[*gir.Node]*tensor.Tensor
	// Inter maps nodes of the DAG being executed to values materialized
	// by earlier units of the same plan.
	Inter map[*gir.Node]*tensor.Tensor
}

// Config selects the kernel-level strategy, exposing the paper's Figure 12
// variants.
type Config struct {
	// BlockSize is the fixed CUDA block size (default 256).
	BlockSize int
	// FeatureAdaptive enables FAT groups (§6.3.1); when false each block
	// processes a single vertex ("Basic" in Figure 12).
	FeatureAdaptive bool
	// Sched selects the block scheduling strategy (§6.3.3).
	Sched device.SchedMode
	// Partition selects how the CPU interpreter splits rows into
	// stealable chunks (independent of the simulated GPU's Sched mode).
	Partition PartitionMode
	// NoFeatureTile disables feature tiling of the edge loop, forcing
	// the full-width path (for A/B benchmarks and equivalence tests).
	NoFeatureTile bool
	// ForceTileWidth overrides the planner's tile width when > 0 (tests
	// exercise multi-tile execution on narrow kernels with it). Ignored
	// on kernels the analysis marks untileable.
	ForceTileWidth int
	// NoSpecialize forces the scalar interpreter even on units the
	// closure compiler matched (A/B benchmarks and equivalence tests).
	NoSpecialize bool
}

// PartitionMode selects the CPU row-chunking strategy.
type PartitionMode int

const (
	// PartitionEdgeBalanced splits rows by edge count using the CSR
	// offsets — the CPU analogue of degree sorting + dynamic load
	// balancing (§6.3.3). This is the default.
	PartitionEdgeBalanced PartitionMode = iota
	// PartitionUniformRows is the legacy equal-row-count static split
	// (one chunk per worker), kept for A/B benchmarking: on power-law
	// graphs it hands every hub vertex to the first workers.
	PartitionUniformRows
)

// DefaultConfig is the full Seastar design: FAT groups + hardware dynamic
// scheduling (degree sorting is a property of the graph passed to Run).
func DefaultConfig() Config {
	return Config{BlockSize: 256, FeatureAdaptive: true, Sched: device.SchedHardware}
}

func (c Config) withDefaults() Config {
	if c.BlockSize <= 0 {
		c.BlockSize = 256
	}
	return c
}

// step is one interpreted operator inside a stage.
type step struct {
	node *gir.Node
	out  int   // output slot
	ins  []int // input slots (operator inputs; -1 for param inputs)
	// param is the resolved parameter node for MatMulTyped/T steps.
	param *gir.Node
}

// aggStep is an aggregation accumulator.
type aggStep struct {
	node *gir.Node
	in   int
	out  int
}

// leafLoad describes a leaf slot filled from a bound tensor.
type leafLoad struct {
	node *gir.Node
	slot int
	// src describes the index space: rowIndexed leaves load once per
	// row; otherwise per edge (by neighbour id or edge id).
	rowIndexed bool
	byEdgeID   bool // index with edge id (E-typed tensors)
}

// matOut describes a materialized output.
type matOut struct {
	node *gir.Node
	slot int
	// perEdge outputs write one row per edge; otherwise one per row.
	perEdge bool
}

// Kernel is a compiled seastar execution unit.
type Kernel struct {
	Unit *fusion.Unit
	Dir  gir.AggDir

	widths   []int
	numSlots int

	rowLeaves   []leafLoad // loaded once per row (locality-centric)
	edgeLeaves  []leafLoad // loaded per edge
	constLeaves []leafLoad // P-typed scalars/vectors loaded once per kernel

	preRow []step // row-typed ops independent of aggregation
	edge   []step // per-edge stage (S-E-E chains)
	aggs   []aggStep
	post   []step // row-typed ops after aggregation

	mats []matOut

	// Neighbour-typed materializations cannot be written from the row
	// loop (their value varies per edge within a row), so they are
	// produced by a separate per-vertex sweep: sweepLoads (indices into
	// edgeLeaves) are loaded at the sweep vertex, sweepSteps re-derive
	// the chain, and nbrMats are written one row per vertex. This is
	// what lets an A:D kernel save an S-typed intermediate (or an A:S
	// kernel a D-typed one) for the backward pass without races.
	nbrMats    []matOut
	sweepLoads []int
	sweepSteps []step

	usesEdgeType bool
	hier         bool

	// Feature-tiling plan, computed once at Compile (see analyzeTiling):
	// when tileable, the edge loop may be re-walked per feature tile of
	// width tileW so each row's live accumulators stay L1-resident.
	tileable bool
	edgeW    int // the uniform wide width of edge-touched slots
	liveRows int // wide rows hot per edge: leaves, step outputs, accs
	tileW    int // planned tile width (TileWidth(edgeW, liveRows))
	curTileW int // effective width for the current Run (cfg overrides)

	// Closure-compiler plan (see specialize.go): non-nil when the unit
	// matched the pattern grammar, with the fallback reason otherwise.
	// curSpec is the per-launch decision (cfg can force the interpreter);
	// specLeafData and specWd are per-launch raw data views resolved
	// alongside the binding slices.
	spec         *specPlan
	specReason   string
	curSpec      bool
	specLeafData [][]float32
	specWd       [][]float32
	specMatData  [][]float32

	// CPU execution state reused across launches so a steady-state Run
	// allocates (almost) nothing. All of it is guarded by mu: the
	// engine executes units serially, so the lock is uncontended.
	mu     sync.Mutex
	arenas []*runArena
	runID  uint64

	// Cached row partition, keyed by CSR identity, partition mode, the
	// worker bound it was built for (benchmarks vary sched.MaxProcs
	// between launches) and the chunk oversubscription in effect.
	ranges      []sched.Range
	rangeCSR    *graph.CSR
	rangeMode   PartitionMode
	rangeProcs  int
	rangeChunks int

	// tuning holds the measured re-planner's overrides (see tuning.go);
	// zero keeps the static plan.
	tuning Tuning

	// Resolved binding slices, reused between launches (cleared on
	// return so tensors are not pinned past the call).
	rowT, edgeT, constT, matT, nbrMatT []*tensor.Tensor
	paramT                             map[*gir.Node]*tensor.Tensor

	// launchBuf is the reusable per-block cycle buffer for the cost
	// model (the device copies what it needs during LaunchKernel).
	launchBuf []float64

	// obsLabel names this kernel in the obs attribution registry
	// (category "kern"). Compile defaults it to "unit <id>"; the exec
	// compiler overrides it with a pass-qualified label ("fwd/unit 3")
	// so forward and backward kernels attribute separately.
	obsLabel string
}

// rowType returns the graph type that is constant within a row.
func (k *Kernel) rowType() gir.GraphType { return k.Dir.OutType() }

func (k *Kernel) nbrType() gir.GraphType {
	if k.Dir == gir.AggToDst {
		return gir.TypeS
	}
	return gir.TypeD
}

// Compile lowers a seastar unit into an executable kernel. materialized
// lists the unit's nodes whose values must be written to device tensors
// (from fusion.Plan.Materialized). available is the set of nodes
// materialized anywhere in the plan: an external E-typed input outside it
// is RECOMPUTED inside this kernel per edge (materialization planning's
// memory optimization); nil means every external value is available.
func Compile(u *fusion.Unit, materialized []*gir.Node, available map[*gir.Node]bool) (*Kernel, error) {
	if u.Kind != fusion.KindSeastar {
		return nil, fmt.Errorf("kernels: unit %d is %s, not seastar", u.ID, u.Kind)
	}
	k := &Kernel{Unit: u, Dir: gir.AggToDst, obsLabel: fmt.Sprintf("unit %d", u.ID)}

	// The unit's aggregation direction: all aggs share one (enforced by
	// the fusion pass); units without aggregation default to A:D layout.
	for _, n := range u.Nodes {
		if n.Op.IsAgg() {
			k.Dir = n.Dir
			break
		}
	}

	inUnit := make(map[*gir.Node]bool, len(u.Nodes))
	for _, n := range u.Nodes {
		inUnit[n] = true
	}
	// dependsOnAgg marks unit nodes downstream of an aggregation.
	dependsOnAgg := make(map[*gir.Node]bool)
	for _, n := range u.Nodes {
		if n.Op.IsAgg() {
			dependsOnAgg[n] = true
			continue
		}
		for _, in := range n.Inputs {
			if inUnit[in] && dependsOnAgg[in] {
				dependsOnAgg[n] = true
			}
		}
	}

	slot := make(map[*gir.Node]int)
	addSlot := func(n *gir.Node) int {
		if s, ok := slot[n]; ok {
			return s
		}
		s := k.numSlots
		slot[n] = s
		k.numSlots++
		k.widths = append(k.widths, n.Dim())
		return s
	}

	// External inputs: leaves and other-unit values feeding this unit.
	// Forward declarations let load registration and recompute inlining
	// recurse into each other.
	var addExternal func(n *gir.Node) (int, error)
	var inline func(n *gir.Node) (int, error)

	addLoad := func(n *gir.Node, s int) {
		t := externalType(n)
		if t == gir.TypeP {
			// Parameter values used elementwise: loaded once per kernel.
			if !findLoad(k.constLeaves, s) {
				k.constLeaves = append(k.constLeaves, leafLoad{node: n, slot: s})
			}
			return
		}
		ld := leafLoad{node: n, slot: s}
		switch {
		case t == k.rowType():
			ld.rowIndexed = true
			k.rowLeaves = append(k.rowLeaves, ld)
		case t == gir.TypeE:
			ld.byEdgeID = true
			k.edgeLeaves = append(k.edgeLeaves, ld)
		default: // neighbour-typed
			k.edgeLeaves = append(k.edgeLeaves, ld)
		}
	}

	addExternal = func(n *gir.Node) (int, error) {
		if s, ok := slot[n]; ok {
			return s, nil
		}
		if n.Op != gir.OpLeaf && available != nil && !available[n] {
			// Not materialized anywhere: recompute it here per edge.
			// Edge-typed values take this path by design (§5.3), and so
			// do neighbour-typed intermediates, which a producing kernel
			// cannot materialize with one write per row.
			return inline(n)
		}
		s := addSlot(n)
		addLoad(n, s)
		return s, nil
	}

	// lowerInputs builds the input-slot list of an operator, routing
	// typed-matmul weights to the per-step parameter mechanism.
	lowerInputs := func(n *gir.Node) (ins []int, param *gir.Node, err error) {
		for _, in := range n.Inputs {
			if isParamLeaf(in) && (n.Op == gir.OpMatMulTyped || n.Op == gir.OpMatMulTypedT) {
				param = in
				ins = append(ins, -1)
				continue
			}
			if s, ok := slot[in]; ok && inUnit[in] {
				ins = append(ins, s)
				continue
			}
			s, err := addExternal(in)
			if err != nil {
				return nil, nil, err
			}
			ins = append(ins, s)
		}
		return ins, param, nil
	}

	markSpecial := func(n *gir.Node) {
		if n.Op == gir.OpAggHier {
			k.hier = true
		}
		if n.Op == gir.OpMatMulTyped || n.Op == gir.OpMatMulTypedT || n.Op == gir.OpAggHier {
			k.usesEdgeType = true
		}
	}

	// inline recomputes an external E-typed operator chain inside this
	// kernel's edge stage (materialization planning, §5.3).
	inline = func(n *gir.Node) (int, error) {
		if n.Op.IsAgg() {
			return 0, fmt.Errorf("kernels: cannot recompute aggregation %%%d inline", n.ID)
		}
		markSpecial(n)
		ins, param, err := lowerInputs(n)
		if err != nil {
			return 0, err
		}
		s := addSlot(n)
		k.edge = append(k.edge, step{node: n, out: s, ins: ins, param: param})
		return s, nil
	}

	for _, n := range u.Nodes {
		markSpecial(n)
		ins, param, err := lowerInputs(n)
		if err != nil {
			return nil, err
		}
		out := addSlot(n)
		switch {
		case n.Op.IsAgg():
			k.aggs = append(k.aggs, aggStep{node: n, in: ins[0], out: out})
		case dependsOnAgg[n]:
			k.post = append(k.post, step{node: n, out: out, ins: ins, param: param})
		case n.Type == k.rowType():
			k.preRow = append(k.preRow, step{node: n, out: out, ins: ins, param: param})
		default:
			k.edge = append(k.edge, step{node: n, out: out, ins: ins, param: param})
		}
	}

	for _, m := range materialized {
		s, ok := slot[m]
		if !ok {
			return nil, fmt.Errorf("kernels: materialized node %%%d not in unit %d", m.ID, u.ID)
		}
		if m.Type == k.nbrType() {
			// The value varies per edge within a row, so a per-row write
			// from the row loop would store only the last edge's value.
			// Re-derive it with a dedicated per-vertex sweep instead.
			if err := k.addNbrMat(m, s); err != nil {
				return nil, err
			}
			continue
		}
		k.mats = append(k.mats, matOut{node: m, slot: s, perEdge: m.Type == gir.TypeE})
	}
	k.analyzeTiling()
	k.specialize()
	return k, nil
}

// analyzeTiling decides whether the edge loop can be split into feature
// tiles and plans the tile width. A kernel is tileable when the per-edge
// computation is purely elementwise over one wide width: every slot the
// edge stage touches is either scalar (width 1, broadcast) or exactly
// edgeW wide, there is at least one aggregation to keep hot, and nothing
// couples feature lanes across the tile boundary — hierarchical
// aggregation, typed matmuls and RowSum all do, so they fall back to the
// full-width path. Scalar slots are recomputed identically on every tile
// pass but accumulated and written only on the first.
func (k *Kernel) analyzeTiling() {
	if k.hier || k.usesEdgeType || len(k.aggs) == 0 {
		return
	}
	touched := make(map[int]bool)
	for _, ld := range k.edgeLeaves {
		touched[ld.slot] = true
	}
	for _, st := range k.edge {
		switch st.node.Op {
		case gir.OpRowSum, gir.OpMatMulTyped, gir.OpMatMulTypedT:
			return // couples feature lanes
		}
		touched[st.out] = true
		for _, s := range st.ins {
			if s >= 0 {
				touched[s] = true
			}
		}
	}
	for _, ag := range k.aggs {
		touched[ag.in] = true
		touched[ag.out] = true
	}
	w := 1
	for s := range touched {
		if k.widths[s] > w {
			w = k.widths[s]
		}
	}
	if w < 2*cacheLineFloats {
		return // nothing worth splitting
	}
	for s := range touched {
		if ws := k.widths[s]; ws != 1 && ws != w {
			return // mixed wide widths in the edge loop
		}
	}
	live := 0
	for s := range touched {
		if k.widths[s] == w {
			live++
		}
	}
	for _, ag := range k.aggs {
		if ag.node.Dim() == w {
			live++ // accumulators live in separate arena rows
		}
	}
	k.tileable, k.edgeW, k.liveRows = true, w, live
	k.tileW = TileWidth(w, live)
}

// SetObsLabel renames the kernel's obs attribution entry (category
// "kern"). The exec compiler uses it to pass-qualify unit labels.
func (k *Kernel) SetObsLabel(label string) { k.obsLabel = label }

// ObsLabel reports the kernel's obs attribution name.
func (k *Kernel) ObsLabel() string { return k.obsLabel }

// TilePlan reports the compile-time feature-tiling decision: whether the
// edge loop is tileable, the wide width it runs over, and the planned
// tile width (equal to width when one tile suffices).
func (k *Kernel) TilePlan() (tileable bool, width, tile int) {
	return k.tileable, k.edgeW, k.tileW
}

// addNbrMat registers a neighbour-typed materialization: it collects the
// edge-stage steps and leaf loads that m transitively depends on so the
// runtime can recompute the value once per vertex. A neighbour-typed
// operator's inputs are themselves neighbour-typed or parameters (any
// edge- or row-typed operand would change the result type), so the chain
// is always evaluable from per-vertex loads; anything else is a compile
// error rather than silent corruption.
func (k *Kernel) addNbrMat(m *gir.Node, s int) error {
	stepOf := make(map[*gir.Node]step, len(k.edge))
	for _, st := range k.edge {
		stepOf[st.node] = st
	}
	leafIdx := make(map[*gir.Node]int, len(k.edgeLeaves))
	for i, ld := range k.edgeLeaves {
		leafIdx[ld.node] = i
	}
	constSet := make(map[*gir.Node]bool, len(k.constLeaves))
	for _, ld := range k.constLeaves {
		constSet[ld.node] = true
	}
	inChain := make(map[*gir.Node]bool)
	for _, st := range k.sweepSteps {
		inChain[st.node] = true
	}
	loaded := make(map[int]bool, len(k.sweepLoads))
	for _, li := range k.sweepLoads {
		loaded[li] = true
	}

	var visit func(n *gir.Node) error
	visit = func(n *gir.Node) error {
		if inChain[n] {
			return nil
		}
		if st, ok := stepOf[n]; ok {
			inChain[n] = true
			for _, in := range n.Inputs {
				if st.param == in {
					continue // resolved through paramT at run time
				}
				if err := visit(in); err != nil {
					return err
				}
			}
			k.sweepSteps = append(k.sweepSteps, st) // dependencies first
			return nil
		}
		if constSet[n] {
			return nil // loaded once per launch into its slot
		}
		if li, ok := leafIdx[n]; ok {
			ld := k.edgeLeaves[li]
			if ld.byEdgeID {
				return fmt.Errorf("kernels: neighbour-typed node %%%d depends on edge-indexed %%%d and cannot be swept per vertex", m.ID, n.ID)
			}
			if !loaded[li] {
				loaded[li] = true
				k.sweepLoads = append(k.sweepLoads, li)
			}
			return nil
		}
		return fmt.Errorf("kernels: neighbour-typed node %%%d depends on %%%d, which is not available per vertex", m.ID, n.ID)
	}
	if err := visit(m); err != nil {
		return err
	}
	k.nbrMats = append(k.nbrMats, matOut{node: m, slot: s})
	return nil
}

// isParamLeaf reports whether n is a parameter leaf, directly or through
// a LeafSaved reference from a backward GIR.
func isParamLeaf(n *gir.Node) bool {
	if n.Op != gir.OpLeaf {
		return false
	}
	if n.LeafKind == gir.LeafParam {
		return true
	}
	return n.LeafKind == gir.LeafSaved && n.Ref != nil &&
		n.Ref.Op == gir.OpLeaf && n.Ref.LeafKind == gir.LeafParam
}

func findLoad(loads []leafLoad, slot int) bool {
	for _, l := range loads {
		if l.slot == slot {
			return true
		}
	}
	return false
}

// externalType returns the graph type governing how an external value is
// indexed inside the kernel.
func externalType(n *gir.Node) gir.GraphType { return n.Type }

// ExternalReads returns the non-leaf nodes whose materialized values this
// kernel loads at runtime (after recompute inlining, these are the true
// cross-unit dependencies — the plan's unit-pruning logic must use them
// rather than the raw node inputs).
func (k *Kernel) ExternalReads() []*gir.Node {
	var out []*gir.Node
	for _, lds := range [][]leafLoad{k.rowLeaves, k.edgeLeaves, k.constLeaves} {
		for _, ld := range lds {
			if ld.node.Op != gir.OpLeaf {
				out = append(out, ld.node)
			}
		}
	}
	return out
}

// MaxWidth returns the widest slot, which determines the FAT group size.
func (k *Kernel) MaxWidth() int {
	w := 1
	for _, x := range k.widths {
		if x > w {
			w = x
		}
	}
	return w
}

// groupSize returns the FAT group width: the largest power of two ≤ the
// feature width (§6.3.1), capped by the block size. Without feature
// adaptivity the whole block serves one vertex.
func groupSize(cfg Config, maxWidth int) int {
	if !cfg.FeatureAdaptive {
		return cfg.BlockSize
	}
	g := 1
	for g*2 <= maxWidth && g*2 <= cfg.BlockSize {
		g *= 2
	}
	return g
}

package kernels

import (
	"fmt"
	"math"

	"seastar/internal/device"
	"seastar/internal/gir"
	"seastar/internal/graph"
	"seastar/internal/tensor"
)

// OperandKind says which index space a baseline-kernel operand lives in.
type OperandKind int

const (
	// KSrc operands are [N,d] vertex tensors read at the edge's source.
	KSrc OperandKind = iota
	// KDst operands are [N,d] vertex tensors read at the edge's
	// destination.
	KDst
	// KEdge operands are [M,d] edge tensors read by edge id.
	KEdge
)

// Operand pairs a tensor with its index space.
type Operand struct {
	T    *tensor.Tensor
	Kind OperandKind
}

// BinOp is the binary operator applied by baseline kernels.
type BinOp int

const (
	// BLeft ignores the right operand (copy).
	BLeft BinOp = iota
	BAdd        // x + y
	BSub        // x - y
	BMul        // x * y
	BDiv        // x / y
	// BDot reduces the two operand rows to their inner product (width 1
	// output), used by attention backward kernels.
	BDot
)

func applyBin(op BinOp, out, l, r []float32) {
	get := func(row []float32, j int) float32 {
		if len(row) == 1 {
			return row[0]
		}
		return row[j]
	}
	switch op {
	case BLeft:
		for j := range out {
			out[j] = get(l, j)
		}
	case BAdd:
		for j := range out {
			out[j] = get(l, j) + get(r, j)
		}
	case BSub:
		for j := range out {
			out[j] = get(l, j) - get(r, j)
		}
	case BMul:
		for j := range out {
			out[j] = get(l, j) * get(r, j)
		}
	case BDiv:
		for j := range out {
			out[j] = get(l, j) / get(r, j)
		}
	case BDot:
		var s float32
		n := len(l)
		if len(r) > n {
			n = len(r)
		}
		for j := 0; j < n; j++ {
			s += get(l, j) * get(r, j)
		}
		out[0] = s
	}
}

func operandRow(o Operand, src, dst, eid int) []float32 {
	switch o.Kind {
	case KSrc:
		return o.T.Row(src)
	case KDst:
		return o.T.Row(dst)
	default:
		return o.T.Row(eid)
	}
}

func operandWidth(o Operand) int {
	if o.T == nil {
		return 0
	}
	return o.T.Cols()
}

func round32(w int) int {
	if w < 32 {
		return 32
	}
	if w > 256 {
		return 256
	}
	return ((w + 31) / 32) * 32
}

// minigunLaunch models DGL/minigun's edge-parallel execution (§6.3): one
// thread block per edge with threads mapped to the feature dimension, a
// per-edge binary search over the vertex offset array to recover the
// destination id, and (for reductions) atomic read-modify-write
// aggregation. The search costs O(log N) serialized instructions and
// offset loads; atomics double store traffic and serialize on the hottest
// destination row.
func minigunLaunch(g *graph.Graph, name string, width int,
	loadPerEdge, storePerEdge int64, instrPerElem float64, atomic bool) device.Launch {
	return MinigunLaunch(g, name, width, loadPerEdge, storePerEdge, instrPerElem, atomic, g.M)
}

// MinigunLaunch builds the cost record of a minigun-style edge-parallel
// kernel over `edges` edges (callers working on per-relation subgraphs
// pass the subset size). Exported for the baseline heterogeneous layers.
func MinigunLaunch(g *graph.Graph, name string, width int,
	loadPerEdge, storePerEdge int64, instrPerElem float64, atomic bool, edges int) device.Launch {

	tpb := round32(width)
	searchSteps := math.Log2(float64(g.N) + 2)
	perBlock := searchSteps*3 + instrPerElem*float64(ceilDiv(width, tpb)) + 4

	active := float64(width) / float64(tpb)
	if active > 1 {
		active = 1
	}
	l := device.Launch{
		Name:               name,
		Blocks:             edges,
		ThreadsPerBlock:    tpb,
		UniformBlockCycles: perBlock,
		LoadBytes:          int64(edges) * (loadPerEdge + int64(searchSteps*8)),
		StoreBytes:         int64(edges) * storePerEdge,
		Sched:              device.SchedHardware,
		ActiveThreadFrac:   active,
	}
	if atomic {
		l.StoreBytes *= 2 // read-modify-write
		l.AtomicOps = int64(g.In.MaxDegree()) * int64(width)
	}
	return l
}

// EdgeBinary materializes out[e] = op(l(e), r(e)) as an [M, d] edge tensor
// using a minigun-style kernel (DGL's apply_edges). Pass Operand{} as r
// for unary copies.
func EdgeBinary(dev *device.Device, g *graph.Graph, l, r Operand, op BinOp, name string) *tensor.Tensor {
	width := operandWidth(l)
	if w := operandWidth(r); w > width {
		width = w
	}
	if op == BDot {
		width = 1
	}
	out := tensor.New(g.M, width)
	forEachEdge(g, func(src, dst, eid int) {
		var rr []float32
		if r.T != nil {
			rr = operandRow(r, src, dst, eid)
		}
		applyBin(op, out.Row(eid), operandRow(l, src, dst, eid), rr)
	})
	loadB := int64(operandWidth(l)+operandWidth(r)) * 4
	dev.LaunchKernel(minigunLaunch(g, name, width, loadB, int64(width)*4, 2, false))
	return out
}

// BinaryReduce computes red_{e incident to t}( op(l(e), r(e)) ) for every
// target vertex t without materializing the edge values — DGL's fused
// BinaryReduce kernel (§2.3) — but with minigun's edge-parallel atomic
// execution strategy. toDst selects reduction to destinations (forward)
// or sources (backward).
func BinaryReduce(dev *device.Device, g *graph.Graph, l, r Operand, op BinOp,
	red gir.AggKind, toDst bool, name string) *tensor.Tensor {

	width := operandWidth(l)
	if w := operandWidth(r); w > width {
		width = w
	}
	if op == BDot {
		width = 1
	}
	out := tensor.New(g.N, width)
	if red == gir.AggMax || red == gir.AggMin {
		init := float32(math.Inf(-1))
		if red == gir.AggMin {
			init = float32(math.Inf(1))
		}
		out.Fill(init)
	}
	counts := make([]int32, g.N)
	row := make([]float32, width)
	// Deterministic functional evaluation: accumulate per CSR row.
	csr := &g.In
	if !toDst {
		csr = &g.Out
	}
	for k := 0; k < csr.NumRows(); k++ {
		t := int(csr.RowIDs[k])
		nbrs, eids := csr.Row(k)
		or := out.Row(t)
		for i := range nbrs {
			src, dst := int(nbrs[i]), t
			if !toDst {
				src, dst = t, int(nbrs[i])
			}
			eid := int(eids[i])
			var rr []float32
			if r.T != nil {
				rr = operandRow(r, src, dst, eid)
			}
			applyBin(op, row, operandRow(l, src, dst, eid), rr)
			counts[t]++
			switch red {
			case gir.AggMax:
				for j := range or {
					if row[j] > or[j] {
						or[j] = row[j]
					}
				}
			case gir.AggMin:
				for j := range or {
					if row[j] < or[j] {
						or[j] = row[j]
					}
				}
			default:
				for j := range or {
					or[j] += row[j]
				}
			}
		}
	}
	for v := 0; v < g.N; v++ {
		if counts[v] == 0 {
			for j, or := 0, out.Row(v); j < width; j++ {
				or[j] = 0
			}
		} else if red == gir.AggMean {
			inv := 1 / float32(counts[v])
			for j, or := 0, out.Row(v); j < width; j++ {
				or[j] *= inv
			}
		}
	}
	loadB := int64(operandWidth(l)+operandWidth(r)) * 4
	dev.LaunchKernel(minigunLaunch(g, name, width, loadB, int64(width)*4, 2, true))
	return out
}

func forEachEdge(g *graph.Graph, f func(src, dst, eid int)) {
	for e := 0; e < g.M; e++ {
		f(int(g.Srcs[e]), int(g.Dsts[e]), e)
	}
}

// Gather materializes the PyG-style edge tensor out[e] = x[index(e)]
// using explicit edge-index arrays (no binary search): the scatter/gather
// programming model of §2.3 whose memory use is proportional to edges.
func Gather(dev *device.Device, g *graph.Graph, x *tensor.Tensor, fromSrc bool, name string) *tensor.Tensor {
	width := x.Cols()
	out := tensor.New(g.M, width)
	idx := g.Srcs
	if !fromSrc {
		idx = g.Dsts
	}
	for e := 0; e < g.M; e++ {
		copy(out.Row(e), x.Row(int(idx[e])))
	}
	elems := g.M * width
	dev.LaunchKernel(device.Launch{
		Name:               name,
		Blocks:             ceilDiv(elems, 256),
		ThreadsPerBlock:    256,
		UniformBlockCycles: 256 / 32 * 2,
		LoadBytes:          int64(elems)*4 + int64(g.M)*4,
		StoreBytes:         int64(elems) * 4,
	})
	return out
}

// ScatterSum reduces a [M, d] edge tensor onto its destination (or
// source) vertices with atomic adds — PyG's scatter_add.
func ScatterSum(dev *device.Device, g *graph.Graph, e *tensor.Tensor, toDst bool, name string) *tensor.Tensor {
	width := e.Cols()
	out := tensor.New(g.N, width)
	csr := &g.In
	if !toDst {
		csr = &g.Out
	}
	for k := 0; k < csr.NumRows(); k++ {
		t := int(csr.RowIDs[k])
		_, eids := csr.Row(k)
		or := out.Row(t)
		for _, eid := range eids {
			er := e.Row(int(eid))
			for j := range or {
				or[j] += er[j]
			}
		}
	}
	elems := g.M * width
	maxDeg := csr.MaxDegree()
	dev.LaunchKernel(device.Launch{
		Name:               name,
		Blocks:             ceilDiv(elems, 256),
		ThreadsPerBlock:    256,
		UniformBlockCycles: 256 / 32 * 3,
		LoadBytes:          int64(elems)*4 + int64(g.M)*4,
		StoreBytes:         int64(elems) * 4 * 2, // atomic RMW
		AtomicOps:          int64(maxDeg) * int64(width),
	})
	return out
}

// GatherVertex materializes out[e] = x[v(e)] like Gather but asserts the
// tensor is [N, d]; it exists so call sites read clearly.
func GatherVertex(dev *device.Device, g *graph.Graph, x *tensor.Tensor, fromSrc bool, name string) (*tensor.Tensor, error) {
	if x.Rows() != g.N {
		return nil, fmt.Errorf("kernels: gather of [%d,*] tensor over %d vertices", x.Rows(), g.N)
	}
	return Gather(dev, g, x, fromSrc, name), nil
}

package kernels

import (
	"seastar/internal/graph"
	"seastar/internal/tensor"
)

// EdgeTypedMatMul computes out[e] = x[e] @ W[type(e)] (or @ Wᵀ when
// transpose is set) over an [M, d] edge tensor and a [R, in, out] weight
// stack, charged as one batched GEMM — the bmm building block of the
// baseline R-GCN implementations.
func EdgeTypedMatMul(chargeDense func(name string, ops float64, loadB, storeB int64),
	g *graph.Graph, x, ws *tensor.Tensor, transpose bool, name string) *tensor.Tensor {

	din := ws.Shape()[1]
	dout := ws.Shape()[2]
	outW := dout
	if transpose {
		outW = din
	}
	out := tensor.New(g.M, outW)
	wd := ws.Data()
	for e := 0; e < g.M; e++ {
		base := int(g.EdgeTypes[e]) * din * dout
		xr, or := x.Row(e), out.Row(e)
		if transpose {
			for i := 0; i < din; i++ {
				var s float32
				row := wd[base+i*dout : base+(i+1)*dout]
				for o := 0; o < dout; o++ {
					s += xr[o] * row[o]
				}
				or[i] = s
			}
		} else {
			for i := 0; i < din; i++ {
				xi := xr[i]
				if xi == 0 {
					continue
				}
				row := wd[base+i*dout : base+(i+1)*dout]
				for o := 0; o < dout; o++ {
					or[o] += xi * row[o]
				}
			}
		}
	}
	chargeDense(name, float64(g.M)*float64(din)*float64(dout),
		int64(x.Size()+ws.Size())*4, int64(out.Size())*4)
	return out
}

// EdgeTypedOuterAcc accumulates dW[type(e)] += x[e]ᵀ g[e] over all edges —
// the batched weight-gradient reduction shared by the bmm baselines.
func EdgeTypedOuterAcc(chargeDense func(name string, ops float64, loadB, storeB int64),
	g *graph.Graph, x, grad *tensor.Tensor, wShape []int, name string) *tensor.Tensor {

	din, dout := wShape[1], wShape[2]
	dws := tensor.New(wShape...)
	wd := dws.Data()
	for e := 0; e < g.M; e++ {
		base := int(g.EdgeTypes[e]) * din * dout
		xr, gr := x.Row(e), grad.Row(e)
		for i := 0; i < din; i++ {
			xi := xr[i]
			if xi == 0 {
				continue
			}
			row := wd[base+i*dout : base+(i+1)*dout]
			for o := 0; o < dout; o++ {
				row[o] += xi * gr[o]
			}
		}
	}
	chargeDense(name, float64(g.M)*float64(din)*float64(dout),
		int64(x.Size()+grad.Size())*4, int64(dws.Size())*4*2)
	return dws
}

package kernels

// White-box coverage of the scalar program executor: runScalarOpRT is
// the row-program (rowProg) interpreter and the hierarchical walk's
// chain executor, so every arm must match the evalStep definition at
// width 1 bit for bit — including the grad opcodes, which reach the
// edge program only through compiled backward chains. opA/opB are the
// columnar grad arms' operand readers; their scalar/column dispatch is
// pinned here directly.

import (
	"math"
	"testing"
)

func f32bits(x float32) uint32 { return math.Float32bits(x) }

func TestRunScalarOpArms(t *testing.T) {
	exp := func(x float32) float32 { return float32(math.Exp(float64(x))) }
	cases := []struct {
		name string
		op   specProgOp
		want float32
	}{
		{"add", specProgOp{code: opAdd, o: 2, a: 0, b: 1}, 0.75 + -1.5},
		{"sub", specProgOp{code: opSub, o: 2, a: 0, b: 1}, 0.75 - -1.5},
		{"mul", specProgOp{code: opMul, o: 2, a: 0, b: 1}, 0.75 * -1.5},
		{"div", specProgOp{code: opDiv, o: 2, a: 0, b: 1}, 0.75 / -1.5},
		{"neg", specProgOp{code: opNeg, o: 2, a: 1}, 1.5},
		{"exp", specProgOp{code: opExp, o: 2, a: 0}, exp(0.75)},
		{"log", specProgOp{code: opLog, o: 2, a: 0}, float32(math.Log(0.75))},
		{"leakyrelu_neg", specProgOp{code: opLeakyReLU, o: 2, a: 1, c: 0.1}, -0.15},
		{"leakyrelu_pos", specProgOp{code: opLeakyReLU, o: 2, a: 0, c: 0.1}, 0.75},
		{"relu_neg", specProgOp{code: opReLU, o: 2, a: 1}, 0},
		{"relu_pos", specProgOp{code: opReLU, o: 2, a: 0}, 0.75},
		{"sigmoid", specProgOp{code: opSigmoid, o: 2, a: 0}, 1 / (1 + exp(-0.75))},
		{"tanh", specProgOp{code: opTanh, o: 2, a: 0}, float32(math.Tanh(0.75))},
		{"mulconst", specProgOp{code: opMulConst, o: 2, a: 0, c: 2.5}, 2.5 * 0.75},
		{"addconst", specProgOp{code: opAddConst, o: 2, a: 0, c: 2.5}, 2.5 + 0.75},
		{"leakyrelugrad_pos", specProgOp{code: opLeakyReLUGrad, o: 2, a: 0, b: 1, c: 0.1}, -1.5},
		{"leakyrelugrad_neg", specProgOp{code: opLeakyReLUGrad, o: 2, a: 1, b: 0, c: 0.1}, float32(0.1) * 0.75},
		{"relugrad_pos", specProgOp{code: opReLUGrad, o: 2, a: 0, b: 1}, -1.5},
		{"relugrad_neg", specProgOp{code: opReLUGrad, o: 2, a: 1, b: 0}, 0},
		{"sigmoidgrad", specProgOp{code: opSigmoidGrad, o: 2, a: 0, b: 1}, -1.5 * 0.75 * (1 - 0.75)},
		{"tanhgrad", specProgOp{code: opTanhGrad, o: 2, a: 0, b: 1}, -1.5 * (1 - 0.75*0.75)},
		{"copy", specProgOp{code: opCopy, o: 2, a: 1}, -1.5},
	}
	for _, tc := range cases {
		v := []float32{0.75, -1.5, 0}
		op := tc.op
		runScalarOp(&op, v)
		if f32bits(v[2]) != f32bits(tc.want) {
			t.Errorf("%s: got %v (bits %08x), want %v (bits %08x)",
				tc.name, v[2], f32bits(v[2]), tc.want, f32bits(tc.want))
		}
	}
}

func TestSpecOpOperandReaders(t *testing.T) {
	v := []float32{10, 20}
	col := []float32{1, 2, 3}
	sc := &specOp{a: 0, b: 1, aSc: true, bSc: true}
	if got := sc.opA(v, 2); got != 10 {
		t.Errorf("scalar opA = %v, want 10", got)
	}
	if got := sc.opB(v, 2); got != 20 {
		t.Errorf("scalar opB = %v, want 20", got)
	}
	cl := &specOp{ac: col, bc: col}
	if got := cl.opA(v, 1); got != 2 {
		t.Errorf("column opA = %v, want 2", got)
	}
	if got := cl.opB(v, 2); got != 3 {
		t.Errorf("column opB = %v, want 3", got)
	}
}

package kernels

import (
	"math/rand"
	"testing"

	"seastar/internal/gir"
	"seastar/internal/graph"
	"seastar/internal/sched"
	"seastar/internal/tensor"
)

// tilingPrograms are the tileable shapes: purely elementwise per-edge
// work over one wide width plus scalar (broadcast) operands, covering
// sum, mean and max aggregations, edge features, per-edge materialized
// intermediates (GAT softmax) and post-aggregation stages.
func tilingPrograms(dim int) []equivProgram {
	return []equivProgram{
		{
			name: "weighted-sum",
			setup: func(b *gir.Builder) gir.UDF {
				b.VFeature("h", dim)
				b.EFeature("w", 1)
				return func(v *gir.Vertex) *gir.Value {
					return v.Nbr("h").Mul(v.Edge("w")).AggSum().Add(v.Self("h"))
				}
			},
		},
		{
			name: "mean-relu",
			setup: func(b *gir.Builder) gir.UDF {
				b.VFeature("h", dim)
				return func(v *gir.Vertex) *gir.Value {
					return v.Nbr("h").Sub(v.Self("h")).AggMean().ReLU()
				}
			},
		},
		{
			name: "max-pool",
			setup: func(b *gir.Builder) gir.UDF {
				b.VFeature("h", dim)
				return func(v *gir.Vertex) *gir.Value {
					return v.Nbr("h").AggMax()
				}
			},
		},
		{
			name: "gat-softmax",
			setup: func(b *gir.Builder) gir.UDF {
				b.VFeature("eu", 1)
				b.VFeature("ev", 1)
				b.VFeature("h", dim)
				return func(v *gir.Vertex) *gir.Value {
					e := v.Nbr("eu").Add(v.Self("ev")).LeakyReLU(0.2).Exp()
					a := e.Div(e.AggSum())
					return a.Mul(v.Nbr("h")).AggSum()
				}
			},
		},
	}
}

func tilingBindings(seed int64, g *graph.Graph, dim int) *Bindings {
	return &Bindings{
		VFeat: map[string]*tensor.Tensor{
			"h":  tensor.Randn(rand.New(rand.NewSource(seed)), 0.5, g.N, dim),
			"eu": tensor.Randn(rand.New(rand.NewSource(seed+1)), 0.5, g.N, 1),
			"ev": tensor.Randn(rand.New(rand.NewSource(seed+2)), 0.5, g.N, 1),
		},
		EFeat: map[string]*tensor.Tensor{
			"w": tensor.Randn(rand.New(rand.NewSource(seed+3)), 0.5, g.M, 1),
		},
	}
}

// isolatedGraph is a Zipf graph plus `extra` trailing vertices with no
// edges at all, so finalizeAcc's degree-0 convention is exercised on
// every tile pass.
func isolatedGraph(rng *rand.Rand, n, avgDeg, extra int) *graph.Graph {
	z := graph.ZipfDegree(rng, n, avgDeg, 1.0)
	g, err := graph.FromEdges(n+extra, z.Srcs, z.Dsts)
	if err != nil {
		panic(err)
	}
	return g
}

// TestTiledMatchesUntiledExact is the core equivalence property: the
// feature-tiled edge loop must be bitwise identical to the full-width
// path (same per-element accumulation order), across odd widths with
// ragged final tiles, forced multi-tile execution, serial and parallel
// scheduling, and graphs with degree-0 vertices.
func TestTiledMatchesUntiledExact(t *testing.T) {
	oldProcs := sched.MaxProcs
	sched.MaxProcs = 8
	t.Cleanup(func() { sched.MaxProcs = oldProcs })

	for _, dim := range []int{32, 33, 48, 64, 67} {
		rng := rand.New(rand.NewSource(int64(dim)))
		g := isolatedGraph(rng, 800, 8, 7)
		for _, p := range tilingPrograms(dim) {
			plan, _ := planFor(t, p.setup)
			// Multi-unit plans (GAT softmax) contain a scalar unit that is
			// rightly untileable; the wide unit must plan tiles at dim.
			wideTileable := false
			for _, u := range plan.Units {
				mat := plan.Materialized(nil)
				k, err := Compile(u, mat[u], nil)
				if err != nil {
					t.Fatal(err)
				}
				if tileable, w, _ := k.TilePlan(); tileable && w == dim {
					wideTileable = true
				}
			}
			if !wideTileable {
				t.Fatalf("%s dim %d: no unit plans feature tiles at width %d", p.name, dim, dim)
			}

			untiled := runSeastarUnits(t, plan, g, Config{NoFeatureTile: true}, tilingBindings(3, g, dim))
			for _, tw := range []int{16, 17, 32} {
				if tw >= dim {
					continue
				}
				tiled := runSeastarUnits(t, plan, g, Config{ForceTileWidth: tw}, tilingBindings(3, g, dim))
				if !bitIdentical(untiled, tiled) {
					t.Fatalf("%s dim %d tile %d: tiled and untiled disagree (max diff %g)",
						p.name, dim, tw, tensor.MaxAbsDiff(untiled, tiled))
				}
			}
			// Planner-chosen width + serial execution.
			sched.MaxProcs = 1
			serialTiled := runSeastarUnits(t, plan, g, Config{ForceTileWidth: 16}, tilingBindings(3, g, dim))
			sched.MaxProcs = 8
			if !bitIdentical(untiled, serialTiled) {
				t.Fatalf("%s dim %d: serial tiled disagrees with untiled (max diff %g)",
					p.name, dim, tensor.MaxAbsDiff(untiled, serialTiled))
			}
			// And the default config (planner width) against the reference
			// interpreter.
			def := runSeastarUnits(t, plan, g, DefaultConfig(), tilingBindings(3, g, dim))
			ref := refOutput(t, p, g, tilingBindings(3, g, dim))
			if !tensor.AllClose(def, ref, 1e-3) {
				t.Fatalf("%s dim %d: tiled output diverges from reference by %g",
					p.name, dim, tensor.MaxAbsDiff(def, ref))
			}
		}
	}
}

// TestUntileableKernelsFallBack: lane-coupling kernels (hierarchical
// aggregation, RowSum in the edge stage) and narrow widths must compile
// as untileable and still run correctly with a ForceTileWidth set.
func TestUntileableKernelsFallBack(t *testing.T) {
	hier := equivProgram{
		name: "hier",
		setup: func(b *gir.Builder) gir.UDF {
			b.VFeature("h", 64)
			b.EFeature("w", 1)
			return func(v *gir.Vertex) *gir.Value {
				return v.Nbr("h").Mul(v.Edge("w")).AggHier(gir.AggSum, gir.AggMax)
			}
		},
	}
	narrow := equivProgram{
		name: "narrow",
		setup: func(b *gir.Builder) gir.UDF {
			b.VFeature("h", 8)
			return func(v *gir.Vertex) *gir.Value {
				return v.Nbr("h").AggSum()
			}
		},
	}
	rng := rand.New(rand.NewSource(5))
	g := graph.ZipfDegree(rng, 500, 8, 1.0)
	graph.RandomEdgeTypes(rng, g, 2)
	if err := g.SortEdgesByType(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []equivProgram{hier, narrow} {
		plan, _ := planFor(t, p.setup)
		mat := plan.Materialized(nil)
		for _, u := range plan.Units {
			k, err := Compile(u, mat[u], nil)
			if err != nil {
				t.Fatal(err)
			}
			if tileable, _, _ := k.TilePlan(); tileable {
				t.Fatalf("%s: expected untileable kernel", p.name)
			}
		}
		dim := 64
		if p.name == "narrow" {
			dim = 8
		}
		forced := runSeastarUnits(t, plan, g, Config{ForceTileWidth: 16}, tilingBindings(9, g, dim))
		ref := refOutput(t, p, g, tilingBindings(9, g, dim))
		if !tensor.AllClose(forced, ref, 1e-3) {
			t.Fatalf("%s: fallback output diverges from reference by %g",
				p.name, tensor.MaxAbsDiff(forced, ref))
		}
	}
}

// TestTileWidthPlanner checks the planner's contract: full width when
// the live set fits L1, otherwise a power of two, at least one cache line,
// within budget whenever the cache-line floor allows it, and monotone
// non-increasing in the live-row count.
func TestTileWidthPlanner(t *testing.T) {
	for _, width := range []int{1, 8, 16, 32, 100, 256, 512, 1024, 4096, 10000} {
		prev := 1 << 30
		for live := 1; live <= 64; live *= 2 {
			w := TileWidth(width, live)
			if w < 1 || w > width && width >= cacheLineFloats {
				t.Fatalf("TileWidth(%d, %d) = %d out of range", width, live, w)
			}
			if width*live*4 <= l1SpillBytes {
				if w != width {
					t.Fatalf("TileWidth(%d, %d) = %d, want full width (no L1 spill)", width, live, w)
				}
			} else {
				if w&(w-1) != 0 {
					t.Fatalf("TileWidth(%d, %d) = %d, want power of two", width, live, w)
				}
				if w < cacheLineFloats {
					t.Fatalf("TileWidth(%d, %d) = %d below cache-line floor", width, live, w)
				}
				if w > cacheLineFloats && w*live*4 > l1SpillBytes {
					t.Fatalf("TileWidth(%d, %d) = %d exceeds L1 without being the floor", width, live, w)
				}
			}
			if w > prev {
				t.Fatalf("TileWidth(%d, live) not monotone: %d then %d", width, prev, w)
			}
			prev = w
		}
	}
	// The FAT-group analogy: widths whose live set spills L1 tile at a
	// proper power of two, 2^k < D, sized to the (smaller) tile budget.
	if w := TileWidth(512, 17); w&(w-1) != 0 || w >= 512 || w*17*4 > l1SpillBytes {
		t.Fatalf("TileWidth(512, 17) = %d, want a power-of-two proper tile within budget", w)
	}
	// No spill, no tiling: a set that fits L1 exactly stays single-pass.
	if w := TileWidth(512, 16); w != 512 {
		t.Fatalf("TileWidth(512, 16) = %d, want full width (fits L1)", w)
	}
}

package kernels

import (
	"fmt"
	"math"
	"sync"

	"seastar/internal/device"
	"seastar/internal/gir"
	"seastar/internal/graph"
	"seastar/internal/tensor"
)

// Inter holds cross-unit intermediate values during a plan execution.
// (Defined on Bindings rather than threaded through calls so that dense
// units and seastar units share one namespace.)
func (b *Bindings) Resolve(n *gir.Node) (*tensor.Tensor, error) {
	if n.Op != gir.OpLeaf {
		if t, ok := b.Inter[n]; ok {
			return t, nil
		}
		return nil, fmt.Errorf("kernels: intermediate %%%d was not materialized", n.ID)
	}
	switch n.LeafKind {
	case gir.LeafSrcFeat, gir.LeafDstFeat:
		if t, ok := b.VFeat[n.Key]; ok {
			return t, nil
		}
		return nil, fmt.Errorf("kernels: vertex feature %q not bound", n.Key)
	case gir.LeafEdgeFeat:
		if t, ok := b.EFeat[n.Key]; ok {
			return t, nil
		}
		return nil, fmt.Errorf("kernels: edge feature %q not bound", n.Key)
	case gir.LeafParam:
		if t, ok := b.Params[n.Key]; ok {
			return t, nil
		}
		return nil, fmt.Errorf("kernels: parameter %q not bound", n.Key)
	case gir.LeafGrad:
		if b.Grad == nil {
			return nil, fmt.Errorf("kernels: gradient not bound")
		}
		return b.Grad, nil
	case gir.LeafSaved:
		if n.Ref.Op == gir.OpLeaf {
			return b.Resolve(n.Ref)
		}
		if t, ok := b.Saved[n.Ref]; ok {
			return t, nil
		}
		return nil, fmt.Errorf("kernels: saved forward value %%%d not bound", n.Ref.ID)
	default:
		return nil, fmt.Errorf("kernels: unresolvable leaf %v", n)
	}
}

// Run executes the kernel over g, writing materialized node values into
// outs (pre-allocated [N,d] or [M,d] tensors) and charging dev. The CSR
// direction is chosen by the unit's aggregation direction (§6.3.4).
func (k *Kernel) Run(dev *device.Device, g *graph.Graph, cfg Config, b *Bindings, outs map[*gir.Node]*tensor.Tensor) error {
	cfg = cfg.withDefaults()
	csr := &g.In
	if k.Dir == gir.AggToSrc {
		csr = &g.Out
	}
	if k.usesEdgeType && g.EdgeTypes == nil {
		return fmt.Errorf("kernels: unit %d needs edge types but the graph has none", k.Unit.ID)
	}

	// Resolve all leaf tensors up front.
	rowT := make([]*tensor.Tensor, len(k.rowLeaves))
	for i, ld := range k.rowLeaves {
		t, err := b.Resolve(ld.node)
		if err != nil {
			return err
		}
		rowT[i] = t
	}
	edgeT := make([]*tensor.Tensor, len(k.edgeLeaves))
	for i, ld := range k.edgeLeaves {
		t, err := b.Resolve(ld.node)
		if err != nil {
			return err
		}
		edgeT[i] = t
	}
	constT := make([]*tensor.Tensor, len(k.constLeaves))
	for i, ld := range k.constLeaves {
		t, err := b.Resolve(ld.node)
		if err != nil {
			return err
		}
		constT[i] = t
	}
	params := make(map[*gir.Node]*tensor.Tensor)
	for _, st := range append(append(append([]step(nil), k.preRow...), k.edge...), k.post...) {
		if st.param != nil {
			t, err := b.Resolve(st.param)
			if err != nil {
				return err
			}
			params[st.param] = t
		}
	}
	matT := make([]*tensor.Tensor, len(k.mats))
	for i, m := range k.mats {
		t, ok := outs[m.node]
		if !ok {
			return fmt.Errorf("kernels: no output tensor for materialized %%%d", m.node.ID)
		}
		matT[i] = t
	}

	n := csr.NumRows()
	workers := parallelWorkers(n)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			errs[w] = k.runRows(csr, g, cfg, rowT, edgeT, constT, params, matT, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	dev.LaunchKernel(k.launch(csr, cfg))
	return nil
}

func parallelWorkers(n int) int {
	w := maxProcs
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// runRows interprets rows [lo, hi) — the functional half of Algorithm 1.
func (k *Kernel) runRows(csr *graph.CSR, g *graph.Graph, cfg Config,
	rowT, edgeT, constT []*tensor.Tensor, params map[*gir.Node]*tensor.Tensor,
	matT []*tensor.Tensor, lo, hi int) error {

	scratch := make([][]float32, k.numSlots)
	for i, w := range k.widths {
		scratch[i] = make([]float32, w)
	}
	for i, ld := range k.constLeaves {
		copy(scratch[ld.slot], constT[i].Data())
	}
	// Aggregation accumulators (+ inner accumulators for hierarchical).
	accs := make([][]float32, len(k.aggs))
	inner := make([][]float32, len(k.aggs))
	for i, a := range k.aggs {
		accs[i] = make([]float32, a.node.Dim())
		inner[i] = make([]float32, a.node.Dim())
	}

	for r := lo; r < hi; r++ {
		vid := int(csr.RowIDs[r])
		for i, ld := range k.rowLeaves {
			copy(scratch[ld.slot], rowT[i].Row(vid))
		}
		for _, st := range k.preRow {
			if err := evalStep(st, scratch, params, 0); err != nil {
				return err
			}
		}
		for i, a := range k.aggs {
			initAcc(accs[i], outerKind(a.node))
			if a.node.Op == gir.OpAggHier {
				initAcc(inner[i], a.node.Attr.InnerOp)
			}
		}
		nbrs, eids := csr.Row(r)
		curType := int32(-1)
		started := false
		for i, nbr := range nbrs {
			eid := int(eids[i])
			et := 0
			if k.usesEdgeType {
				et = int(g.EdgeTypes[eid])
			}
			// Hierarchical type boundary: fold inner accumulators.
			if k.hier && started && int32(et) != curType {
				for ai, a := range k.aggs {
					if a.node.Op == gir.OpAggHier {
						foldInner(accs[ai], inner[ai], a.node.Attr.OuterOp)
						initAcc(inner[ai], a.node.Attr.InnerOp)
					}
				}
			}
			curType = int32(et)
			started = true

			for li, ld := range k.edgeLeaves {
				if ld.byEdgeID {
					copy(scratch[ld.slot], edgeT[li].Row(eid))
				} else {
					copy(scratch[ld.slot], edgeT[li].Row(int(nbr)))
				}
			}
			for _, st := range k.edge {
				if err := evalStep(st, scratch, params, et); err != nil {
					return err
				}
			}
			for mi, m := range k.mats {
				if m.perEdge {
					copy(matT[mi].Row(eid), scratch[m.slot])
				}
			}
			for ai, a := range k.aggs {
				if a.node.Op == gir.OpAggHier {
					accumulate(inner[ai], scratch[a.in], a.node.Attr.InnerOp, k.widths[a.in])
				} else {
					accumulate(accs[ai], scratch[a.in], a.node.Attr.AggOp, k.widths[a.in])
				}
			}
		}
		deg := len(nbrs)
		for ai, a := range k.aggs {
			if a.node.Op == gir.OpAggHier {
				if started {
					foldInner(accs[ai], inner[ai], a.node.Attr.OuterOp)
				}
			}
			finalizeAcc(accs[ai], a.node, deg)
			copy(scratch[a.out], accs[ai])
		}
		for _, st := range k.post {
			if err := evalStep(st, scratch, params, 0); err != nil {
				return err
			}
		}
		for mi, m := range k.mats {
			if !m.perEdge {
				copy(matT[mi].Row(vid), scratch[m.slot])
			}
		}
	}
	return nil
}

func outerKind(n *gir.Node) gir.AggKind {
	if n.Op == gir.OpAggHier {
		return n.Attr.OuterOp
	}
	return n.Attr.AggOp
}

func initAcc(acc []float32, kind gir.AggKind) {
	switch kind {
	case gir.AggMax:
		for i := range acc {
			acc[i] = float32(math.Inf(-1))
		}
	case gir.AggMin:
		for i := range acc {
			acc[i] = float32(math.Inf(1))
		}
	default:
		for i := range acc {
			acc[i] = 0
		}
	}
}

func accumulate(acc, val []float32, kind gir.AggKind, width int) {
	get := func(j int) float32 {
		if width == 1 {
			return val[0]
		}
		return val[j]
	}
	switch kind {
	case gir.AggMax:
		for j := range acc {
			if v := get(j); v > acc[j] {
				acc[j] = v
			}
		}
	case gir.AggMin:
		for j := range acc {
			if v := get(j); v < acc[j] {
				acc[j] = v
			}
		}
	default: // sum & mean accumulate sums
		for j := range acc {
			acc[j] += get(j)
		}
	}
}

func foldInner(outer, inner []float32, kind gir.AggKind) {
	accumulate(outer, inner, kind, len(inner))
}

func finalizeAcc(acc []float32, n *gir.Node, deg int) {
	if deg == 0 {
		// Empty neighbourhoods produce zeros for every reduction, the
		// convention DGL uses for isolated vertices.
		for i := range acc {
			acc[i] = 0
		}
		return
	}
	if n.Op == gir.OpAgg && n.Attr.AggOp == gir.AggMean {
		inv := 1 / float32(deg)
		for i := range acc {
			acc[i] *= inv
		}
	}
}

// evalStep interprets one operator for the current (row, edge) context.
func evalStep(st step, scratch [][]float32, params map[*gir.Node]*tensor.Tensor, edgeType int) error {
	n := st.node
	out := scratch[st.out]
	w := len(out)
	in := func(i int) []float32 { return scratch[st.ins[i]] }
	get := func(row []float32, j int) float32 {
		if len(row) == 1 {
			return row[0]
		}
		return row[j]
	}
	switch n.Op {
	case gir.OpAdd:
		a, b := in(0), in(1)
		for j := 0; j < w; j++ {
			out[j] = get(a, j) + get(b, j)
		}
	case gir.OpSub:
		a, b := in(0), in(1)
		for j := 0; j < w; j++ {
			out[j] = get(a, j) - get(b, j)
		}
	case gir.OpMul:
		a, b := in(0), in(1)
		for j := 0; j < w; j++ {
			out[j] = get(a, j) * get(b, j)
		}
	case gir.OpDiv:
		a, b := in(0), in(1)
		for j := 0; j < w; j++ {
			out[j] = get(a, j) / get(b, j)
		}
	case gir.OpNeg:
		a := in(0)
		for j := 0; j < w; j++ {
			out[j] = -get(a, j)
		}
	case gir.OpExp:
		a := in(0)
		for j := 0; j < w; j++ {
			out[j] = float32(math.Exp(float64(get(a, j))))
		}
	case gir.OpLog:
		a := in(0)
		for j := 0; j < w; j++ {
			out[j] = float32(math.Log(float64(get(a, j))))
		}
	case gir.OpLeakyReLU:
		a := in(0)
		s := n.Attr.Slope
		for j := 0; j < w; j++ {
			v := get(a, j)
			if v < 0 {
				v *= s
			}
			out[j] = v
		}
	case gir.OpReLU:
		a := in(0)
		for j := 0; j < w; j++ {
			v := get(a, j)
			if v < 0 {
				v = 0
			}
			out[j] = v
		}
	case gir.OpSigmoid:
		a := in(0)
		for j := 0; j < w; j++ {
			out[j] = 1 / (1 + float32(math.Exp(float64(-get(a, j)))))
		}
	case gir.OpTanh:
		a := in(0)
		for j := 0; j < w; j++ {
			out[j] = float32(math.Tanh(float64(get(a, j))))
		}
	case gir.OpMulConst:
		a := in(0)
		for j := 0; j < w; j++ {
			out[j] = n.Attr.C * get(a, j)
		}
	case gir.OpAddConst:
		a := in(0)
		for j := 0; j < w; j++ {
			out[j] = n.Attr.C + get(a, j)
		}
	case gir.OpLeakyReLUGrad:
		x, g := in(0), in(1)
		s := n.Attr.Slope
		for j := 0; j < w; j++ {
			if get(x, j) > 0 {
				out[j] = get(g, j)
			} else {
				out[j] = s * get(g, j)
			}
		}
	case gir.OpReLUGrad:
		x, g := in(0), in(1)
		for j := 0; j < w; j++ {
			if get(x, j) > 0 {
				out[j] = get(g, j)
			} else {
				out[j] = 0
			}
		}
	case gir.OpSigmoidGrad:
		y, g := in(0), in(1)
		for j := 0; j < w; j++ {
			yv := get(y, j)
			out[j] = get(g, j) * yv * (1 - yv)
		}
	case gir.OpTanhGrad:
		y, g := in(0), in(1)
		for j := 0; j < w; j++ {
			yv := get(y, j)
			out[j] = get(g, j) * (1 - yv*yv)
		}
	case gir.OpRowSum:
		a := in(0)
		var s float32
		for _, v := range a {
			s += v
		}
		out[0] = s
	case gir.OpEdgeView:
		a := in(0)
		for j := 0; j < w; j++ {
			out[j] = get(a, j)
		}
	case gir.OpMatMulTyped:
		x := in(0)
		wt := params[st.param]
		dims := st.param.Shape // [R, in, out]
		din, dout := dims[1], dims[2]
		base := edgeType * din * dout
		wd := wt.Data()
		for o := 0; o < dout; o++ {
			var s float32
			for i := 0; i < din; i++ {
				s += get(x, i) * wd[base+i*dout+o]
			}
			out[o] = s
		}
	case gir.OpMatMulTypedT:
		gRow := in(0)
		wt := params[st.param]
		dims := st.param.Shape
		din, dout := dims[1], dims[2]
		base := edgeType * din * dout
		wd := wt.Data()
		for i := 0; i < din; i++ {
			var s float32
			for o := 0; o < dout; o++ {
				s += get(gRow, o) * wd[base+i*dout+o]
			}
			out[i] = s
		}
	default:
		return fmt.Errorf("kernels: op %s cannot run inside a fused kernel", n.Op)
	}
	return nil
}

package kernels

import (
	"fmt"
	"math"
	"sync"

	"seastar/internal/device"
	"seastar/internal/gir"
	"seastar/internal/graph"
	"seastar/internal/obs"
	"seastar/internal/sched"
	"seastar/internal/tensor"
)

// Inter holds cross-unit intermediate values during a plan execution.
// (Defined on Bindings rather than threaded through calls so that dense
// units and seastar units share one namespace.)
func (b *Bindings) Resolve(n *gir.Node) (*tensor.Tensor, error) {
	if n.Op != gir.OpLeaf {
		if t, ok := b.Inter[n]; ok {
			return t, nil
		}
		return nil, fmt.Errorf("kernels: intermediate %%%d was not materialized", n.ID)
	}
	switch n.LeafKind {
	case gir.LeafSrcFeat, gir.LeafDstFeat:
		if t, ok := b.VFeat[n.Key]; ok {
			return t, nil
		}
		return nil, fmt.Errorf("kernels: vertex feature %q not bound", n.Key)
	case gir.LeafEdgeFeat:
		if t, ok := b.EFeat[n.Key]; ok {
			return t, nil
		}
		return nil, fmt.Errorf("kernels: edge feature %q not bound", n.Key)
	case gir.LeafParam:
		if t, ok := b.Params[n.Key]; ok {
			return t, nil
		}
		return nil, fmt.Errorf("kernels: parameter %q not bound", n.Key)
	case gir.LeafGrad:
		if b.Grad == nil {
			return nil, fmt.Errorf("kernels: gradient not bound")
		}
		return b.Grad, nil
	case gir.LeafSaved:
		if n.Ref.Op == gir.OpLeaf {
			return b.Resolve(n.Ref)
		}
		if t, ok := b.Saved[n.Ref]; ok {
			return t, nil
		}
		return nil, fmt.Errorf("kernels: saved forward value %%%d not bound", n.Ref.ID)
	default:
		return nil, fmt.Errorf("kernels: unresolvable leaf %v", n)
	}
}

// Run executes the kernel over g, writing materialized node values into
// outs (pre-allocated [N,d] or [M,d] tensors) and charging dev. The CSR
// direction is chosen by the unit's aggregation direction (§6.3.4).
//
// Row chunks are partitioned by edge count (cfg.Partition) and claimed by
// a persistent worker pool through an atomic counter — the CPU analogue
// of the paper's degree-sorting + dynamic-load-balancing design (§6.3.3).
// Scratch arenas, the row partition and the cost-model buffer are all
// cached on the Kernel, so a steady-state launch is allocation-free.
func (k *Kernel) Run(dev *device.Device, g *graph.Graph, cfg Config, b *Bindings, outs map[*gir.Node]*tensor.Tensor) error {
	sp := obs.Begin("kern", k.obsLabel)
	defer sp.End()
	cfg = cfg.withDefaults()
	csr := &g.In
	if k.Dir == gir.AggToSrc {
		csr = &g.Out
	}
	if k.usesEdgeType && g.EdgeTypes == nil {
		return fmt.Errorf("kernels: unit %d needs edge types but the graph has none", k.Unit.ID)
	}

	k.mu.Lock()
	defer k.mu.Unlock()
	if err := k.resolve(b, outs); err != nil {
		return err
	}
	defer k.releaseResolved()

	// Effective feature-tile width for this launch: the compile-time plan
	// unless the config disables tiling or pins a width for tests; a
	// learned tuning may re-plan the width, but an explicit config pin
	// always wins so equivalence tests stay in control.
	k.curTileW = k.tileW
	if cfg.NoFeatureTile || !k.tileable {
		k.curTileW = 0
	} else if cfg.ForceTileWidth > 0 {
		k.curTileW = cfg.ForceTileWidth
	} else if k.tuning.TileWidth > 0 {
		k.curTileW = k.tuning.TileWidth
	}
	// Per-launch specialization decision: the compile-time plan unless
	// the config forces the interpreter.
	k.curSpec = k.spec != nil && !cfg.NoSpecialize

	n := csr.NumRows()
	if obs.Enabled() {
		obs.Add("kern", k.obsLabel, "rows", int64(n))
		obs.Add("kern", k.obsLabel, "edges", csr.Offsets[n])
		obs.Set("kern", k.obsLabel, "tile_width", int64(k.curTileW))
		var specialized int64
		if k.curSpec {
			specialized = 1
		}
		obs.Set("kern", k.obsLabel, "specialized", specialized)
	}
	serial := sched.MaxProcs == 1 || k.cpuWork(csr) < serialCPUThreshold
	if sched.MaxProcs > 1 && k.tuning.Serial != 0 {
		// Learned override of the serial/parallel gate: measurement beat
		// the cost model's threshold on this host. Both paths compute
		// bitwise-identical results (rows are independent), so this only
		// moves where the work runs.
		serial = k.tuning.Serial > 0
	}
	if serial {
		// Serial fast path: the fan-out overhead exceeds the work.
		a := k.arena(0)
		a.loadConsts(k)
		if err := k.runSweep(a, 0, g.N); err != nil {
			return err
		}
		if err := k.runRows(a, csr, g, 0, n); err != nil {
			return err
		}
	} else {
		ranges := k.partition(csr, cfg.Partition)
		workers := sched.Workers(len(ranges))
		for len(k.arenas) < workers {
			k.arenas = append(k.arenas, nil) // grown serially; see arena
		}
		k.runID++
		runID := k.runID
		var errOnce sync.Once
		var firstErr error
		if len(k.nbrMats) > 0 {
			// Per-vertex sweep for neighbour-typed materializations:
			// uniform vertex chunks, each vertex written by exactly one
			// worker.
			sweep := sched.Uniform(g.N, workers)
			sched.Do(len(sweep), workers, func(w, c int) {
				a := k.arena(w)
				if a.runID != runID {
					a.loadConsts(k)
					a.runID = runID
				}
				r := sweep[c]
				if err := k.runSweep(a, r.Lo, r.Hi); err != nil {
					errOnce.Do(func() { firstErr = err })
				}
			})
			if firstErr != nil {
				return firstErr
			}
		}
		sched.Do(len(ranges), workers, func(w, c int) {
			a := k.arena(w)
			if a.runID != runID {
				a.loadConsts(k)
				a.runID = runID
			}
			r := ranges[c]
			if err := k.runRows(a, csr, g, r.Lo, r.Hi); err != nil {
				errOnce.Do(func() { firstErr = err })
			}
		})
		if firstErr != nil {
			return firstErr
		}
	}

	dev.LaunchKernel(k.launch(csr, cfg))
	return nil
}

// resolve binds all leaf tensors into the kernel's reused slices.
// Callers hold k.mu.
func (k *Kernel) resolve(b *Bindings, outs map[*gir.Node]*tensor.Tensor) error {
	if k.rowT == nil {
		k.rowT = make([]*tensor.Tensor, len(k.rowLeaves))
		k.edgeT = make([]*tensor.Tensor, len(k.edgeLeaves))
		k.constT = make([]*tensor.Tensor, len(k.constLeaves))
		k.matT = make([]*tensor.Tensor, len(k.mats))
		k.nbrMatT = make([]*tensor.Tensor, len(k.nbrMats))
		k.paramT = make(map[*gir.Node]*tensor.Tensor)
	}
	for i, ld := range k.rowLeaves {
		t, err := b.Resolve(ld.node)
		if err != nil {
			return err
		}
		k.rowT[i] = t
	}
	for i, ld := range k.edgeLeaves {
		t, err := b.Resolve(ld.node)
		if err != nil {
			return err
		}
		k.edgeT[i] = t
	}
	for i, ld := range k.constLeaves {
		t, err := b.Resolve(ld.node)
		if err != nil {
			return err
		}
		k.constT[i] = t
	}
	for _, stage := range [3][]step{k.preRow, k.edge, k.post} {
		for _, st := range stage {
			if st.param == nil {
				continue
			}
			t, err := b.Resolve(st.param)
			if err != nil {
				return err
			}
			k.paramT[st.param] = t
		}
	}
	for i, m := range k.mats {
		t, ok := outs[m.node]
		if !ok {
			return fmt.Errorf("kernels: no output tensor for materialized %%%d", m.node.ID)
		}
		k.matT[i] = t
	}
	for i, m := range k.nbrMats {
		t, ok := outs[m.node]
		if !ok {
			return fmt.Errorf("kernels: no output tensor for materialized %%%d", m.node.ID)
		}
		k.nbrMatT[i] = t
	}
	if k.spec != nil {
		// Raw data views for the specialized path: direct slices skip the
		// per-edge Row() call in the gather loop.
		if k.specLeafData == nil {
			k.specLeafData = make([][]float32, len(k.edgeLeaves))
			k.specWd = make([][]float32, len(k.spec.terms))
			k.specMatData = make([][]float32, len(k.mats))
		}
		for i, t := range k.edgeT {
			k.specLeafData[i] = t.Data()
		}
		for ti, t := range k.spec.terms {
			if t.kind == termTyped {
				k.specWd[ti] = k.paramT[t.param].Data()
			}
		}
		for _, m := range k.spec.edgeMats {
			// Per-edge materializations are width 1 (enforced by the plan
			// matcher), so row eid of the [M,1] tensor is element eid.
			k.specMatData[m.mat] = k.matT[m.mat].Data()
		}
	}
	return nil
}

// releaseResolved drops tensor references after a launch so the kernel
// does not pin freed buffers across iterations.
func (k *Kernel) releaseResolved() {
	for i := range k.rowT {
		k.rowT[i] = nil
	}
	for i := range k.edgeT {
		k.edgeT[i] = nil
	}
	for i := range k.constT {
		k.constT[i] = nil
	}
	for i := range k.matT {
		k.matT[i] = nil
	}
	for i := range k.nbrMatT {
		k.nbrMatT[i] = nil
	}
	for p := range k.paramT {
		k.paramT[p] = nil
	}
	for i := range k.specLeafData {
		k.specLeafData[i] = nil
	}
	for i := range k.specWd {
		k.specWd[i] = nil
	}
	for i := range k.specMatData {
		k.specMatData[i] = nil
	}
}

// partition returns (and caches) the row chunking for csr under mode,
// honouring a learned chunk-granularity override.
func (k *Kernel) partition(csr *graph.CSR, mode PartitionMode) []sched.Range {
	chunks := chunksPerWorker
	if k.tuning.ChunksPerWorker > 0 {
		chunks = k.tuning.ChunksPerWorker
	}
	if k.rangeCSR == csr && k.rangeMode == mode && k.rangeProcs == sched.MaxProcs &&
		k.rangeChunks == chunks && k.ranges != nil {
		return k.ranges
	}
	rs := PartitionChunks(csr, mode, sched.MaxProcs, chunks)
	k.rangeCSR, k.rangeMode, k.rangeProcs, k.rangeChunks, k.ranges = csr, mode, sched.MaxProcs, chunks, rs
	return rs
}

const (
	// rowCostEdges is a row's fixed overhead (leaf loads, pre/post
	// stages, output writes) expressed in per-edge cost units, so empty
	// and low-degree rows still carry weight in the partition.
	rowCostEdges = 4
	// chunksPerWorker oversubscribes chunks relative to workers so the
	// stealing loop can rebalance; more chunks mean finer balance at
	// the price of more atomic claims.
	chunksPerWorker = 8
)

// Partition returns the row chunking Run uses on csr under mode for the
// given worker count — exported so benchmarks and tests can analyse the
// schedule offline.
func Partition(csr *graph.CSR, mode PartitionMode, workers int) []sched.Range {
	return PartitionChunks(csr, mode, workers, chunksPerWorker)
}

// PartitionChunks is Partition with an explicit chunk oversubscription
// factor, the knob the measured re-planner moves: fewer chunks per
// worker mean fewer atomic claims, more mean finer stealing balance.
// Chunk boundaries never change which rows reduce together, so every
// granularity computes bitwise-identical results.
func PartitionChunks(csr *graph.CSR, mode PartitionMode, workers, perWorker int) []sched.Range {
	switch mode {
	case PartitionUniformRows:
		return sched.Uniform(csr.NumRows(), workers)
	default:
		return sched.EdgeBalanced(csr.Offsets, rowCostEdges, sched.Oversubscribe(workers, perWorker))
	}
}

// ScheduleModel partitions csr under mode for p workers and returns the
// chunk count together with the modeled makespan in edge-cost units
// (list scheduling of chunk weights onto p workers). Benchmarks use it to
// compare partition strategies independently of the host's core count.
func ScheduleModel(csr *graph.CSR, mode PartitionMode, p int) (chunks int, makespan float64) {
	rs := Partition(csr, mode, p)
	w := sched.ChunkWeights(csr.Offsets, rowCostEdges, rs)
	return len(rs), sched.Makespan(w, p)
}

// runArena is one worker's private scratch state. Arenas are cached on
// the Kernel (indexed by worker slot) so steady-state launches reuse
// them instead of reallocating scratch/accumulator slices per chunk.
type runArena struct {
	runID   uint64
	scratch [][]float32
	accs    [][]float32
	inner   [][]float32
	// tview is the per-tile slot table of the feature-tiled path: wide
	// slots narrow to the current tile of their scratch row (or alias a
	// source-tensor row directly for edge leaves); scalar slots keep
	// their full scratch rows.
	tview [][]float32
	// svals is the specialized path's flat scalar bank: width-1 loads,
	// row-hoisted scalars and chain-closure outputs, indexed by the plan.
	svals []float32
	// tstate is the specialized path's per-term runtime view (accumulator
	// target, raw data slices), rebuilt per chunk; batched terms keep a
	// permanent specBlock-sized scale buffer in their slot.
	tstate []specTermState
	// prog is the specialized path's launch-bound edge program, rebuilt
	// per chunk from the plan's static instructions.
	prog []specOp
	// cols holds the columnar path's per-block edge columns, one
	// specBlock-wide slice per bank slot carrying a per-edge value.
	cols [][]float32
	// rowLeafData caches the launch's row-leaf backing arrays for the
	// direct-row fast path, rebuilt per chunk.
	rowLeafData [][]float32
}

// arena returns worker w's arena, creating it on first use. Growth of
// the arena slice itself happens serially in Run before dispatch; each
// slot is then touched by exactly one worker per launch.
func (k *Kernel) arena(w int) *runArena {
	for len(k.arenas) <= w {
		k.arenas = append(k.arenas, nil)
	}
	a := k.arenas[w]
	if a == nil {
		a = &runArena{
			scratch: make([][]float32, k.numSlots),
			accs:    make([][]float32, len(k.aggs)),
			inner:   make([][]float32, len(k.aggs)),
			tview:   make([][]float32, k.numSlots),
		}
		for i, w := range k.widths {
			a.scratch[i] = make([]float32, w)
		}
		for i, ag := range k.aggs {
			a.accs[i] = make([]float32, ag.node.Dim())
			a.inner[i] = make([]float32, ag.node.Dim())
		}
		if k.spec != nil {
			a.svals = make([]float32, k.spec.nScalar)
			a.tstate = make([]specTermState, len(k.spec.terms))
			a.prog = make([]specOp, len(k.spec.prog))
			for ti := range k.spec.terms {
				if k.spec.terms[ti].batch {
					a.tstate[ti].buf = make([]float32, specBlock)
				}
			}
			a.cols = make([][]float32, k.spec.nScalar)
			for i, col := range k.spec.colSlot {
				if col {
					a.cols[i] = make([]float32, specBlock)
				}
			}
			a.rowLeafData = make([][]float32, 0, len(k.rowLeaves))
		}
		k.arenas[w] = a
	}
	return a
}

// loadConsts copies the per-launch constant leaves (P-typed values) into
// the arena's scratch slots. Bindings change between launches, so this
// runs once per (arena, launch).
func (a *runArena) loadConsts(k *Kernel) {
	for i, ld := range k.constLeaves {
		copy(a.scratch[ld.slot], k.constT[i].Data())
	}
}

// runSweep materializes neighbour-typed values for vertices [lo, hi):
// each vertex loads its own rows of the sweep leaves, re-derives the
// chain, and writes one row per materialized node. No-op when the kernel
// has no neighbour-typed materializations.
func (k *Kernel) runSweep(a *runArena, lo, hi int) error {
	if len(k.nbrMats) == 0 {
		return nil
	}
	for v := lo; v < hi; v++ {
		for _, li := range k.sweepLoads {
			copy(a.scratch[k.edgeLeaves[li].slot], k.edgeT[li].Row(v))
		}
		for _, st := range k.sweepSteps {
			if err := evalStep(st, a.scratch, k.paramT, 0); err != nil {
				return err
			}
		}
		for i, m := range k.nbrMats {
			copy(k.nbrMatT[i].Row(v), a.scratch[m.slot])
		}
	}
	return nil
}

// runRows interprets rows [lo, hi) — the functional half of Algorithm 1.
// Units matched by the closure compiler run the specialized loop;
// otherwise kernels whose plan splits the edge loop into feature tiles
// take the tiled path, and everything else (hierarchical aggregation,
// typed matmuls, narrow widths, tiling disabled) runs full-width.
func (k *Kernel) runRows(a *runArena, csr *graph.CSR, g *graph.Graph, lo, hi int) error {
	if k.curSpec {
		return k.runRowsSpec(a, csr, g, lo, hi)
	}
	if tw := k.curTileW; tw > 0 && tw < k.edgeW {
		return k.runRowsTiled(a, csr, g, lo, hi, tw)
	}
	return k.runRowsFull(a, csr, g, lo, hi)
}

// runRowsTiled is runRowsFull restructured so that each row's edge list
// is walked once per feature tile [t0, t1) of the wide width: the live
// set per edge — the accumulator tiles and one tile of each wide slot —
// fits L1 and stays resident across the whole neighbour list, instead
// of streaming full-width rows that evict each other on high-degree
// vertices. Edge-leaf tiles are copied into scratch like the full-width
// path: the copies keep the cold neighbour gathers in bulk memmove
// instead of scalar loads inside the step interpreter.
//
// Per-element accumulation order is identical to the full-width path, so
// results are bitwise equal. Scalar (width-1) slots are recomputed every
// pass — they are cheap and deterministic — but accumulated into scalar
// aggregations and written to scalar outputs only on the first pass.
func (k *Kernel) runRowsTiled(a *runArena, csr *graph.CSR, g *graph.Graph, lo, hi, tw int) error {
	scratch, accs, tview := a.scratch, a.accs, a.tview
	rowT, edgeT, matT, params := k.rowT, k.edgeT, k.matT, k.paramT
	edgeW := k.edgeW

	for r := lo; r < hi; r++ {
		vid := int(csr.RowIDs[r])
		for i, ld := range k.rowLeaves {
			copy(scratch[ld.slot], rowT[i].Row(vid))
		}
		for _, st := range k.preRow {
			if err := evalStep(st, scratch, params, 0); err != nil {
				return err
			}
		}
		nbrs, eids := csr.Row(r)
		deg := len(nbrs)
		for t0 := 0; t0 < edgeW; t0 += tw {
			t1 := t0 + tw
			if t1 > edgeW {
				t1 = edgeW
			}
			first := t0 == 0
			for s, w := range k.widths {
				if w == edgeW {
					tview[s] = scratch[s][t0:t1:t1]
				} else {
					tview[s] = scratch[s]
				}
			}
			for ai, ag := range k.aggs {
				if ag.node.Dim() == edgeW {
					initAcc(accs[ai][t0:t1], ag.node.Attr.AggOp)
				} else if first {
					initAcc(accs[ai], ag.node.Attr.AggOp)
				}
			}
			for i, nbr := range nbrs {
				eid := int(eids[i])
				for li, ld := range k.edgeLeaves {
					var row []float32
					if ld.byEdgeID {
						row = edgeT[li].Row(eid)
					} else {
						row = edgeT[li].Row(int(nbr))
					}
					// Copy the leaf tile into scratch rather than
					// aliasing the source row: the bulk copy streams the
					// cold gather through memmove (which overlaps cache
					// misses) so the interpreted step loops only ever
					// touch L1-hot scratch — same trade the full-width
					// path makes, measured ~2x cheaper than paying the
					// misses one scalar load at a time inside evalStep.
					if k.widths[ld.slot] == edgeW {
						copy(tview[ld.slot], row[t0:t1])
					} else {
						copy(tview[ld.slot], row)
					}
				}
				for _, st := range k.edge {
					if err := evalStep(st, tview, params, 0); err != nil {
						return err
					}
				}
				for mi, m := range k.mats {
					if !m.perEdge {
						continue
					}
					if k.widths[m.slot] == edgeW {
						copy(matT[mi].Row(eid)[t0:t1], tview[m.slot])
					} else if first {
						copy(matT[mi].Row(eid), tview[m.slot])
					}
				}
				for ai, ag := range k.aggs {
					if ag.node.Dim() == edgeW {
						accumulate(accs[ai][t0:t1], tview[ag.in], ag.node.Attr.AggOp, t1-t0)
					} else if first {
						accumulate(accs[ai], tview[ag.in], ag.node.Attr.AggOp, 1)
					}
				}
			}
			for ai, ag := range k.aggs {
				if ag.node.Dim() == edgeW {
					finalizeAcc(accs[ai][t0:t1], ag.node, deg)
					copy(scratch[ag.out][t0:t1], accs[ai][t0:t1])
				} else if first {
					finalizeAcc(accs[ai], ag.node, deg)
					copy(scratch[ag.out], accs[ai])
				}
			}
		}
		for _, st := range k.post {
			if err := evalStep(st, scratch, params, 0); err != nil {
				return err
			}
		}
		for mi, m := range k.mats {
			if !m.perEdge {
				copy(matT[mi].Row(vid), scratch[m.slot])
			}
		}
	}
	return nil
}

// runRowsFull is the untiled interpreter loop.
func (k *Kernel) runRowsFull(a *runArena, csr *graph.CSR, g *graph.Graph, lo, hi int) error {
	scratch, accs, inner := a.scratch, a.accs, a.inner
	rowT, edgeT, matT, params := k.rowT, k.edgeT, k.matT, k.paramT

	for r := lo; r < hi; r++ {
		vid := int(csr.RowIDs[r])
		for i, ld := range k.rowLeaves {
			copy(scratch[ld.slot], rowT[i].Row(vid))
		}
		for _, st := range k.preRow {
			if err := evalStep(st, scratch, params, 0); err != nil {
				return err
			}
		}
		for i, a := range k.aggs {
			initAcc(accs[i], outerKind(a.node))
			if a.node.Op == gir.OpAggHier {
				initAcc(inner[i], a.node.Attr.InnerOp)
			}
		}
		nbrs, eids := csr.Row(r)
		curType := int32(-1)
		started := false
		for i, nbr := range nbrs {
			eid := int(eids[i])
			et := 0
			if k.usesEdgeType {
				et = int(g.EdgeTypes[eid])
			}
			// Hierarchical type boundary: fold inner accumulators.
			if k.hier && started && int32(et) != curType {
				for ai, a := range k.aggs {
					if a.node.Op == gir.OpAggHier {
						foldInner(accs[ai], inner[ai], a.node.Attr.OuterOp)
						initAcc(inner[ai], a.node.Attr.InnerOp)
					}
				}
			}
			curType = int32(et)
			started = true

			for li, ld := range k.edgeLeaves {
				if ld.byEdgeID {
					copy(scratch[ld.slot], edgeT[li].Row(eid))
				} else {
					copy(scratch[ld.slot], edgeT[li].Row(int(nbr)))
				}
			}
			for _, st := range k.edge {
				if err := evalStep(st, scratch, params, et); err != nil {
					return err
				}
			}
			for mi, m := range k.mats {
				if m.perEdge {
					copy(matT[mi].Row(eid), scratch[m.slot])
				}
			}
			for ai, a := range k.aggs {
				if a.node.Op == gir.OpAggHier {
					accumulate(inner[ai], scratch[a.in], a.node.Attr.InnerOp, k.widths[a.in])
				} else {
					accumulate(accs[ai], scratch[a.in], a.node.Attr.AggOp, k.widths[a.in])
				}
			}
		}
		deg := len(nbrs)
		for ai, a := range k.aggs {
			if a.node.Op == gir.OpAggHier {
				if started {
					foldInner(accs[ai], inner[ai], a.node.Attr.OuterOp)
				}
			}
			finalizeAcc(accs[ai], a.node, deg)
			copy(scratch[a.out], accs[ai])
		}
		for _, st := range k.post {
			if err := evalStep(st, scratch, params, 0); err != nil {
				return err
			}
		}
		for mi, m := range k.mats {
			if !m.perEdge {
				copy(matT[mi].Row(vid), scratch[m.slot])
			}
		}
	}
	return nil
}

func outerKind(n *gir.Node) gir.AggKind {
	if n.Op == gir.OpAggHier {
		return n.Attr.OuterOp
	}
	return n.Attr.AggOp
}

func initAcc(acc []float32, kind gir.AggKind) {
	switch kind {
	case gir.AggMax:
		for i := range acc {
			acc[i] = float32(math.Inf(-1))
		}
	case gir.AggMin:
		for i := range acc {
			acc[i] = float32(math.Inf(1))
		}
	default:
		for i := range acc {
			acc[i] = 0
		}
	}
}

func accumulate(acc, val []float32, kind gir.AggKind, width int) {
	if width == 1 && len(acc) > 1 {
		// Scalar value broadcast across a wide accumulator.
		v := val[0]
		switch kind {
		case gir.AggMax:
			for j := range acc {
				if v > acc[j] {
					acc[j] = v
				}
			}
		case gir.AggMin:
			for j := range acc {
				if v < acc[j] {
					acc[j] = v
				}
			}
		default:
			for j := range acc {
				acc[j] += v
			}
		}
		return
	}
	val = val[:len(acc)]
	switch kind {
	case gir.AggMax:
		for j, v := range val {
			if v > acc[j] {
				acc[j] = v
			}
		}
	case gir.AggMin:
		for j, v := range val {
			if v < acc[j] {
				acc[j] = v
			}
		}
	default: // sum & mean accumulate sums: the unrolled/vectorized add
		tensor.VecAdd(acc, val)
	}
}

func foldInner(outer, inner []float32, kind gir.AggKind) {
	accumulate(outer, inner, kind, len(inner))
}

func finalizeAcc(acc []float32, n *gir.Node, deg int) {
	if deg == 0 {
		// Empty neighbourhoods produce zeros for every reduction, the
		// convention DGL uses for isolated vertices.
		for i := range acc {
			acc[i] = 0
		}
		return
	}
	if n.Op == gir.OpAgg && n.Attr.AggOp == gir.AggMean {
		inv := 1 / float32(deg)
		for i := range acc {
			acc[i] *= inv
		}
	}
}

// evalStep interprets one operator for the current (row, edge) context.
func evalStep(st step, scratch [][]float32, params map[*gir.Node]*tensor.Tensor, edgeType int) error {
	n := st.node
	out := scratch[st.out]
	w := len(out)
	in := func(i int) []float32 { return scratch[st.ins[i]] }
	get := func(row []float32, j int) float32 {
		if len(row) == 1 {
			return row[0]
		}
		return row[j]
	}
	switch n.Op {
	case gir.OpAdd:
		a, b := in(0), in(1)
		for j := 0; j < w; j++ {
			out[j] = get(a, j) + get(b, j)
		}
	case gir.OpSub:
		a, b := in(0), in(1)
		for j := 0; j < w; j++ {
			out[j] = get(a, j) - get(b, j)
		}
	case gir.OpMul:
		a, b := in(0), in(1)
		for j := 0; j < w; j++ {
			out[j] = get(a, j) * get(b, j)
		}
	case gir.OpDiv:
		a, b := in(0), in(1)
		for j := 0; j < w; j++ {
			out[j] = get(a, j) / get(b, j)
		}
	case gir.OpNeg:
		a := in(0)
		for j := 0; j < w; j++ {
			out[j] = -get(a, j)
		}
	case gir.OpExp:
		a := in(0)
		for j := 0; j < w; j++ {
			out[j] = float32(math.Exp(float64(get(a, j))))
		}
	case gir.OpLog:
		a := in(0)
		for j := 0; j < w; j++ {
			out[j] = float32(math.Log(float64(get(a, j))))
		}
	case gir.OpLeakyReLU:
		a := in(0)
		s := n.Attr.Slope
		for j := 0; j < w; j++ {
			v := get(a, j)
			if v < 0 {
				v *= s
			}
			out[j] = v
		}
	case gir.OpReLU:
		a := in(0)
		for j := 0; j < w; j++ {
			v := get(a, j)
			if v < 0 {
				v = 0
			}
			out[j] = v
		}
	case gir.OpSigmoid:
		a := in(0)
		for j := 0; j < w; j++ {
			out[j] = 1 / (1 + float32(math.Exp(float64(-get(a, j)))))
		}
	case gir.OpTanh:
		a := in(0)
		for j := 0; j < w; j++ {
			out[j] = float32(math.Tanh(float64(get(a, j))))
		}
	case gir.OpMulConst:
		a := in(0)
		for j := 0; j < w; j++ {
			out[j] = n.Attr.C * get(a, j)
		}
	case gir.OpAddConst:
		a := in(0)
		for j := 0; j < w; j++ {
			out[j] = n.Attr.C + get(a, j)
		}
	case gir.OpLeakyReLUGrad:
		x, g := in(0), in(1)
		s := n.Attr.Slope
		for j := 0; j < w; j++ {
			if get(x, j) > 0 {
				out[j] = get(g, j)
			} else {
				out[j] = s * get(g, j)
			}
		}
	case gir.OpReLUGrad:
		x, g := in(0), in(1)
		for j := 0; j < w; j++ {
			if get(x, j) > 0 {
				out[j] = get(g, j)
			} else {
				out[j] = 0
			}
		}
	case gir.OpSigmoidGrad:
		y, g := in(0), in(1)
		for j := 0; j < w; j++ {
			yv := get(y, j)
			out[j] = get(g, j) * yv * (1 - yv)
		}
	case gir.OpTanhGrad:
		y, g := in(0), in(1)
		for j := 0; j < w; j++ {
			yv := get(y, j)
			out[j] = get(g, j) * (1 - yv*yv)
		}
	case gir.OpRowSum:
		a := in(0)
		var s float32
		for _, v := range a {
			s += v
		}
		out[0] = s
	case gir.OpEdgeView:
		a := in(0)
		for j := 0; j < w; j++ {
			out[j] = get(a, j)
		}
	case gir.OpMatMulTyped:
		x := in(0)
		wt := params[st.param]
		dims := st.param.Shape // [R, in, out]
		din, dout := dims[1], dims[2]
		base := edgeType * din * dout
		wd := wt.Data()
		for o := 0; o < dout; o++ {
			var s float32
			for i := 0; i < din; i++ {
				s += get(x, i) * wd[base+i*dout+o]
			}
			out[o] = s
		}
	case gir.OpMatMulTypedT:
		gRow := in(0)
		wt := params[st.param]
		dims := st.param.Shape
		din, dout := dims[1], dims[2]
		base := edgeType * din * dout
		wd := wt.Data()
		for i := 0; i < din; i++ {
			var s float32
			for o := 0; o < dout; o++ {
				s += get(gRow, o) * wd[base+i*dout+o]
			}
			out[i] = s
		}
	default:
		return fmt.Errorf("kernels: op %s cannot run inside a fused kernel", n.Op)
	}
	return nil
}

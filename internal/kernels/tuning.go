package kernels

// Tuning is the measured re-planner's per-kernel override set. Every
// knob moves execution only within the bitwise-safe envelope: feature
// tiling preserves per-element accumulation order, and the serial/
// parallel split and chunk granularity only regroup rows whose
// reductions are independent — so a re-planned launch is bitwise
// identical to the static plan's output (enforced by the fusion fuzz
// and property tests). Zero values mean "keep the static plan".
type Tuning struct {
	// TileWidth overrides the planned feature-tile width when > 0.
	// Ignored on untileable kernels and whenever the Config pins a
	// width itself (tests own cfg.ForceTileWidth); specialized launches
	// ignore tiling entirely.
	TileWidth int `json:"tile_width,omitempty"`
	// Serial forces the dispatch path: +1 pins the serial fast path,
	// -1 pins the parallel path (when sched.MaxProcs > 1). 0 keeps the
	// static cost-model gate.
	Serial int8 `json:"serial,omitempty"`
	// ChunksPerWorker overrides the chunk oversubscription factor of
	// the parallel path when > 0 (static plan: 8).
	ChunksPerWorker int `json:"chunks_per_worker,omitempty"`
}

// IsZero reports whether every knob keeps the static plan.
func (t Tuning) IsZero() bool { return t == Tuning{} }

// SetTuning installs learned overrides on the kernel; Run picks them up
// on the next launch. Safe to call between launches from a re-planner
// goroutine (it takes the same lock Run holds for the whole launch).
func (k *Kernel) SetTuning(t Tuning) {
	k.mu.Lock()
	k.tuning = t
	k.mu.Unlock()
}

// Tuning returns the currently installed overrides.
func (k *Kernel) Tuning() Tuning {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.tuning
}

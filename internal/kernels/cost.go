package kernels

import (
	"strconv"

	"seastar/internal/device"
	"seastar/internal/gir"
	"seastar/internal/graph"
)

// opCycles is the per-element arithmetic cost of an operator in core
// cycles; transcendentals and division run on the SFU at ~4x cost.
func opCycles(op gir.OpKind) float64 {
	switch op {
	case gir.OpExp, gir.OpLog, gir.OpSigmoid, gir.OpTanh, gir.OpDiv,
		gir.OpSigmoidGrad, gir.OpTanhGrad:
		return 4
	default:
		return 1
	}
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// stageCycles is the serialized cycle count of executing a step list once
// with FAT groups of size gs: each element-parallel loop costs
// ceil(width/gs) iterations.
func stageCycles(steps []step, gs int) float64 {
	var c float64
	for _, st := range steps {
		n := st.node
		switch n.Op {
		case gir.OpMatMulTyped, gir.OpMatMulTypedT:
			din, dout := st.param.Shape[1], st.param.Shape[2]
			c += float64(ceilDiv(din*dout, gs))
		case gir.OpRowSum:
			// Intra-group tree reduction: ceil(width/gs) + log2(gs).
			c += float64(ceilDiv(n.Inputs[0].Dim(), gs)) + log2i(gs)
		default:
			c += opCycles(n.Op) * float64(ceilDiv(n.Dim(), gs))
		}
	}
	return c
}

func log2i(x int) float64 {
	var l float64
	for x > 1 {
		x >>= 1
		l++
	}
	return l
}

const (
	// cacheLineFloats is one 64-byte cache line of float32s — the floor
	// for any feature tile (narrower tiles waste the line anyway).
	cacheLineFloats = 16
	// l1SpillBytes is a typical 32 KB L1d: both the spill threshold that
	// justifies tiling at all and the working-set target a tile is sized
	// to. Tiling re-walks each row's edge list once per tile, so it only
	// pays once the untiled live set cannot be L1-resident, and the tile
	// should then be as wide as L1 allows — every halving of the tile
	// doubles the per-edge interpreter overhead (measured ~15-25% per
	// extra pass on the gemm bench), while any tile that fits L1 gets
	// the same residency benefit.
	l1SpillBytes = 32 << 10
)

// TileWidth chooses the feature-tile width for a fused edge loop that
// keeps liveRows feature rows of `width` floats hot per edge — the FAT
// group rule (largest 2^k ≤ D, §6.3.1) mapped from warp lanes to cache
// lines: the widest power-of-two tile, at least one cache line, whose
// live working set fits L1. A width whose live set fits L1 outright is
// returned unchanged (one tile, no re-walk of the edge list); only a
// genuine spill is worth the multi-pass overhead.
func TileWidth(width, liveRows int) int {
	if liveRows < 1 {
		liveRows = 1
	}
	if width*liveRows*4 <= l1SpillBytes {
		return width
	}
	w := cacheLineFloats
	for w*2 < width && w*2*liveRows*4 <= l1SpillBytes {
		w *= 2
	}
	return w
}

// serialCPUThreshold is the abstract-cycle cost below which Run skips
// the worker fan-out entirely: roughly the scalar work that amortizes a
// round of goroutine handoffs.
const serialCPUThreshold = 1 << 15

// specEdgeFactor is how much cheaper one specialized edge is than one
// interpreted edge in the serial-threshold model: the closure compiler
// removes the per-edge op dispatch, operand resolution and leaf staging
// copies, which the fused benchmark measures at 3-5x (BENCH_fused.json).
// A conservative 3 keeps small specialized launches on the serial path
// longer, where they belong.
const specEdgeFactor = 3

// cpuWork estimates the serialized cost of one launch in abstract cycles
// (group size 1) from the same per-edge/per-row model as the GPU cost
// function; it gates the serial fast path. Launches taking the
// specialized loop (k.curSpec) discount the per-edge term by
// specEdgeFactor.
func (k *Kernel) cpuWork(csr *graph.CSR) float64 {
	perEdge := stageCycles(k.edge, 1) + 2
	for _, a := range k.aggs {
		perEdge += float64(a.node.Dim())
	}
	if k.curSpec {
		perEdge /= specEdgeFactor
	}
	perRow := stageCycles(k.preRow, 1) + stageCycles(k.post, 1) + 8
	for _, ld := range k.rowLeaves {
		perRow += float64(ld.node.Dim())
	}
	return float64(len(csr.Nbrs))*perEdge + float64(csr.NumRows())*perRow
}

// LaunchOnly charges the kernel's cost to dev without computing values —
// for microbenchmarks (Figure 12) where only the cost model matters.
func (k *Kernel) LaunchOnly(dev *device.Device, g *graph.Graph, cfg Config) {
	cfg = cfg.withDefaults()
	csr := &g.In
	if k.Dir == gir.AggToSrc {
		csr = &g.Out
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	dev.LaunchKernel(k.launch(csr, cfg))
}

// launch assembles the device.Launch record for this kernel on csr —
// the costed half of Algorithm 1.
func (k *Kernel) launch(csr *graph.CSR, cfg Config) device.Launch {
	gs := groupSize(cfg, k.MaxWidth())
	groupsPerBlock := cfg.BlockSize / gs
	if groupsPerBlock < 1 {
		groupsPerBlock = 1
	}
	n := csr.NumRows()
	blocks := ceilDiv(n, groupsPerBlock)

	// Per-edge serialized work: edge-stage ops, aggregation adds, plus
	// the pipelined CSR index loads (edge id + neighbour id).
	perEdge := stageCycles(k.edge, gs) + 2
	for _, a := range k.aggs {
		perEdge += float64(ceilDiv(a.node.Dim(), gs))
	}
	// Per-row work: row-leaf loads into registers, pre/post stages,
	// offset reads and output writes.
	perRow := stageCycles(k.preRow, gs) + stageCycles(k.post, gs) + 8
	for _, ld := range k.rowLeaves {
		perRow += float64(ceilDiv(ld.node.Dim(), gs))
	}

	// The cycle buffer is reused across launches (the device consumes it
	// synchronously): at 1 block per vertex it would otherwise dominate
	// the allocation profile of every training step.
	if cap(k.launchBuf) < blocks {
		k.launchBuf = make([]float64, blocks)
	}
	blockCycles := k.launchBuf[:blocks]
	for b := 0; b < blocks; b++ {
		lo := b * groupsPerBlock
		hi := lo + groupsPerBlock
		if hi > n {
			hi = n
		}
		var maxW float64
		for r := lo; r < hi; r++ {
			w := float64(csr.Degree(r))*perEdge + perRow
			if w > maxW {
				maxW = w
			}
		}
		blockCycles[b] = maxW
	}

	// Memory traffic: coalesced by construction (§6.3.1). Destination
	// (row) features are loaded once per row — the locality-centric win —
	// while neighbour and edge features are loaded once per edge.
	var rowLeafB, edgeLeafB, matRowB, matEdgeB int64
	for _, ld := range k.rowLeaves {
		rowLeafB += int64(ld.node.Dim()) * 4
	}
	for _, ld := range k.edgeLeaves {
		edgeLeafB += int64(ld.node.Dim()) * 4
	}
	for _, m := range k.mats {
		if m.perEdge {
			matEdgeB += int64(m.node.Dim()) * 4
		} else {
			matRowB += int64(m.node.Dim()) * 4
		}
	}
	m := int64(len(csr.Nbrs))
	loadB := int64(n)*(rowLeafB+8) + m*(edgeLeafB+8)
	if k.usesEdgeType {
		loadB += m * 4
	}
	storeB := int64(n)*matRowB + m*matEdgeB

	// Active threads: each of the block's groups keeps min(width, gs)
	// lanes busy; Basic (one vertex per block) leaves the rest idle.
	active := float64(groupsPerBlock) * float64(min(k.MaxWidth(), gs)) / float64(cfg.BlockSize)
	if active > 1 {
		active = 1
	}
	return device.Launch{
		Name:             "seastar.unit" + strconv.Itoa(k.Unit.ID),
		Blocks:           blocks,
		ThreadsPerBlock:  cfg.BlockSize,
		BlockCycles:      blockCycles,
		LoadBytes:        loadB,
		StoreBytes:       storeB,
		Sched:            cfg.Sched,
		ActiveThreadFrac: active,
	}
}

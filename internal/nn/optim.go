package nn

import (
	"fmt"
	"math"

	"seastar/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update and zeroes the gradients.
	Step()
	// ZeroGrad clears gradients without updating.
	ZeroGrad()
}

// SGD is plain stochastic gradient descent with optional weight decay.
type SGD struct {
	Params      []*Variable
	LR          float32
	WeightDecay float32
}

// NewSGD creates an SGD optimizer.
func NewSGD(params []*Variable, lr float32) *SGD {
	return &SGD{Params: params, LR: lr}
}

// Step applies p -= lr * (g + wd*p) and zeroes gradients.
func (o *SGD) Step() {
	for _, p := range o.Params {
		if p.Grad == nil {
			continue
		}
		if o.WeightDecay != 0 {
			tensor.AxpyInPlace(p.Grad, o.WeightDecay, p.Value)
		}
		tensor.AxpyInPlace(p.Value, -o.LR, p.Grad)
		p.ZeroGrad()
	}
}

// ZeroGrad clears all parameter gradients.
func (o *SGD) ZeroGrad() { zeroAll(o.Params) }

// Adam implements the Adam optimizer (Kingma & Ba), the default in DGL's
// example configurations that the paper reuses.
type Adam struct {
	Params      []*Variable
	LR          float32
	Beta1       float32
	Beta2       float32
	Eps         float32
	WeightDecay float32

	step int
	m    []*tensor.Tensor
	v    []*tensor.Tensor
}

// NewAdam creates an Adam optimizer with the standard defaults.
func NewAdam(params []*Variable, lr float32) *Adam {
	a := &Adam{Params: params, LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
	a.m = make([]*tensor.Tensor, len(params))
	a.v = make([]*tensor.Tensor, len(params))
	for i, p := range params {
		a.m[i] = tensor.New(p.Value.Shape()...)
		a.v[i] = tensor.New(p.Value.Shape()...)
	}
	return a
}

// Step applies one Adam update and zeroes gradients.
func (a *Adam) Step() {
	a.step++
	bc1 := 1 - float32(math.Pow(float64(a.Beta1), float64(a.step)))
	bc2 := 1 - float32(math.Pow(float64(a.Beta2), float64(a.step)))
	for i, p := range a.Params {
		if p.Grad == nil {
			continue
		}
		g := p.Grad.Data()
		if a.WeightDecay != 0 {
			pv := p.Value.Data()
			for j := range g {
				g[j] += a.WeightDecay * pv[j]
			}
		}
		m, v, w := a.m[i].Data(), a.v[i].Data(), p.Value.Data()
		for j := range g {
			m[j] = a.Beta1*m[j] + (1-a.Beta1)*g[j]
			v[j] = a.Beta2*v[j] + (1-a.Beta2)*g[j]*g[j]
			mh := m[j] / bc1
			vh := v[j] / bc2
			w[j] -= a.LR * mh / (float32(math.Sqrt(float64(vh))) + a.Eps)
		}
		p.ZeroGrad()
	}
}

// ZeroGrad clears all parameter gradients.
func (a *Adam) ZeroGrad() { zeroAll(a.Params) }

// AdamState is the serializable optimizer state: the step counter and
// the first/second moment buffers, in parameter order. Together with the
// parameter values it makes a training run resumable mid-stream.
type AdamState struct {
	Step int
	M    [][]float32
	V    [][]float32
}

// State snapshots the optimizer (deep copies, safe to serialize while
// training continues).
func (a *Adam) State() AdamState {
	st := AdamState{Step: a.step,
		M: make([][]float32, len(a.m)), V: make([][]float32, len(a.v))}
	for i := range a.m {
		st.M[i] = append([]float32(nil), a.m[i].Data()...)
		st.V[i] = append([]float32(nil), a.v[i].Data()...)
	}
	return st
}

// SetState restores a snapshot taken by State on an optimizer built over
// the same parameter list (shapes must match element-for-element).
func (a *Adam) SetState(st AdamState) error {
	if len(st.M) != len(a.m) || len(st.V) != len(a.v) {
		return fmt.Errorf("nn: Adam state has %d/%d moment buffers, optimizer has %d",
			len(st.M), len(st.V), len(a.m))
	}
	for i := range a.m {
		if len(st.M[i]) != a.m[i].Size() || len(st.V[i]) != a.v[i].Size() {
			return fmt.Errorf("nn: Adam state buffer %d has %d/%d elements, parameter has %d",
				i, len(st.M[i]), len(st.V[i]), a.m[i].Size())
		}
		copy(a.m[i].Data(), st.M[i])
		copy(a.v[i].Data(), st.V[i])
	}
	a.step = st.Step
	return nil
}

func zeroAll(params []*Variable) {
	for _, p := range params {
		p.ZeroGrad()
	}
}

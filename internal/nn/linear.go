package nn

import (
	"fmt"
	"math/rand"

	"seastar/internal/tensor"
)

// Linear is a dense layer y = x W (+ b).
type Linear struct {
	W *Variable
	B *Variable // nil when bias is disabled
}

// NewLinear creates a Xavier-initialized [in, out] linear layer.
func NewLinear(e *Engine, rng *rand.Rand, in, out int, bias bool, name string) *Linear {
	l := &Linear{W: e.Param(tensor.XavierUniform(rng, in, out), name+".W")}
	if bias {
		l.B = e.Param(tensor.New(out), name+".b")
	}
	return l
}

// Forward applies the layer.
func (l *Linear) Forward(e *Engine, x *Variable) *Variable {
	y := e.MatMul(x, l.W)
	if l.B != nil {
		y = e.AddRow(y, l.B)
	}
	return y
}

// Params returns the layer's trainable variables.
func (l *Linear) Params() []*Variable {
	if l.B != nil {
		return []*Variable{l.W, l.B}
	}
	return []*Variable{l.W}
}

// CollectParams flattens parameter lists, skipping nils.
func CollectParams(groups ...[]*Variable) []*Variable {
	var out []*Variable
	for _, g := range groups {
		for _, p := range g {
			if p != nil {
				out = append(out, p)
			}
		}
	}
	return out
}

// NumParams returns the total trainable element count, for model summaries.
func NumParams(params []*Variable) int {
	n := 0
	for _, p := range params {
		n += p.Value.Size()
	}
	return n
}

// CheckFinite panics with a descriptive message if any value is NaN/Inf —
// used by tests and the training harness to fail fast on divergence.
func CheckFinite(name string, t *tensor.Tensor) {
	for i, v := range t.Data() {
		if v != v || v > 1e30 || v < -1e30 {
			panic(fmt.Sprintf("nn: non-finite value %v in %s at %d", v, name, i))
		}
	}
}

// Package nn is the minimal deep-learning backend the Seastar reproduction
// plugs into, playing the role PyTorch plays in the paper: dense tensors
// with define-by-run automatic differentiation, layers, losses, and
// optimizers. Every operation optionally charges a simulated GPU
// (internal/device) for its memory traffic and arithmetic, and allocates
// its outputs from the device allocator so that peak-memory measurements
// include the dense portions of a model, exactly as the paper's
// measurements do.
//
// Seastar's compiled execution units integrate through the Function
// interface (the analogue of torch.autograd.Function).
package nn

import (
	"fmt"

	"seastar/internal/device"
	"seastar/internal/tensor"
)

// Variable is a node in the autograd tape: a value, an optional gradient,
// and a backward closure connecting it to its inputs.
type Variable struct {
	Value        *tensor.Tensor
	Grad         *tensor.Tensor
	RequiresGrad bool

	engine  *Engine
	inputs  []*Variable
	back    func(grad *tensor.Tensor)
	name    string
	visitID int
}

// Name returns the variable's debug name.
func (v *Variable) Name() string { return v.name }

// Engine owns an autograd tape, the simulated device, and iteration-scoped
// memory tracking.
type Engine struct {
	Dev *device.Device // nil disables cost accounting

	tape    []*Variable
	buffers []*device.Buffer
	visitID int
}

// NewEngine creates an engine charging costs to dev (which may be nil).
func NewEngine(dev *device.Device) *Engine { return &Engine{Dev: dev} }

// alloc reserves device memory for t's data and tracks it for the current
// iteration. Allocation failure panics with *device.ErrOOM; harness code
// recovers it via CatchOOM.
func (e *Engine) alloc(t *tensor.Tensor) {
	if e.Dev == nil || t == nil {
		return
	}
	buf, err := e.Dev.Alloc(int64(t.Size()) * 4)
	if err != nil {
		panic(err)
	}
	e.buffers = append(e.buffers, buf)
}

// AllocBytes reserves raw device memory tracked with the iteration (used
// by baseline engines for index buffers and the like).
func (e *Engine) AllocBytes(n int64) {
	e.AllocBytesHandle(n)
}

// AllocBytesHandle is AllocBytes returning the buffer so callers can free
// it eagerly (the paper's §5.3 state-map clearing); EndIteration still
// frees it if the caller does not (Free is idempotent). Returns nil when
// no device is attached.
func (e *Engine) AllocBytesHandle(n int64) *device.Buffer {
	if e.Dev == nil {
		return nil
	}
	buf, err := e.Dev.Alloc(n)
	if err != nil {
		panic(err)
	}
	e.buffers = append(e.buffers, buf)
	return buf
}

// EndIteration frees all iteration-scoped device buffers and clears the
// tape. Parameters (allocated with Param) persist.
func (e *Engine) EndIteration() {
	for _, b := range e.buffers {
		b.Free()
	}
	e.buffers = e.buffers[:0]
	e.tape = nil
}

// CatchOOM runs f, converting a device out-of-memory panic into an error.
// Any other panic is re-raised.
func CatchOOM(f func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if oom, ok := r.(*device.ErrOOM); ok {
				err = oom
				return
			}
			panic(r)
		}
	}()
	f()
	return nil
}

// Param registers t as a trainable parameter. Its device memory is NOT
// iteration-scoped: it is charged once and kept.
func (e *Engine) Param(t *tensor.Tensor, name string) *Variable {
	if e.Dev != nil {
		e.Dev.MustAlloc(int64(t.Size()) * 4)
	}
	return &Variable{Value: t, RequiresGrad: true, engine: e, name: name}
}

// Input wraps t as a non-trainable input (features, masks). Like Param,
// inputs live for the whole run (the paper moves features to GPU once at
// program start, §6.1).
func (e *Engine) Input(t *tensor.Tensor, name string) *Variable {
	if e.Dev != nil {
		e.Dev.MustAlloc(int64(t.Size()) * 4)
	}
	return &Variable{Value: t, engine: e, name: name}
}

// InputScoped wraps t as a non-trainable input whose device memory is
// iteration-scoped: EndIteration frees it. Mini-batch training re-uploads
// a fresh feature slice every step, so unlike Input the allocation must
// not outlive the step that made it.
func (e *Engine) InputScoped(t *tensor.Tensor, name string) *Variable {
	v := &Variable{Value: t, engine: e, name: name}
	e.alloc(t)
	return v
}

// node creates a tape node for an op output. requiresGrad is inherited
// from any input.
func (e *Engine) node(name string, value *tensor.Tensor, inputs []*Variable, back func(grad *tensor.Tensor)) *Variable {
	rg := false
	for _, in := range inputs {
		if in.RequiresGrad {
			rg = true
			break
		}
	}
	v := &Variable{
		Value:        value,
		RequiresGrad: rg,
		engine:       e,
		inputs:       inputs,
		name:         name,
	}
	if rg {
		v.back = back
	}
	e.alloc(value)
	e.tape = append(e.tape, v)
	return v
}

// accumulate adds g into v.Grad, allocating it on first use.
func (v *Variable) accumulate(g *tensor.Tensor) {
	if !v.RequiresGrad {
		return
	}
	if v.Grad == nil {
		v.Grad = tensor.New(v.Value.Shape()...)
		if v.engine != nil {
			v.engine.alloc(v.Grad)
		}
	}
	tensor.AddInPlace(v.Grad, g)
}

// ZeroGrad clears the gradient in place (keeps the allocation).
func (v *Variable) ZeroGrad() {
	if v.Grad != nil {
		v.Grad.Zero()
	}
}

// Backward runs reverse-mode differentiation from root, which must be a
// scalar (size-1) variable. Gradients accumulate into every reachable
// Variable with RequiresGrad. Each node's backward runs only after all of
// its downstream consumers have contributed, which the reverse
// topological order guarantees.
func (e *Engine) Backward(root *Variable) {
	if root.Value.Size() != 1 {
		panic(fmt.Sprintf("nn: Backward root must be scalar, got shape %v", root.Value.Shape()))
	}
	e.visitID++
	order := make([]*Variable, 0, len(e.tape))
	var visit func(v *Variable)
	visit = func(v *Variable) {
		if v.visitID == e.visitID {
			return
		}
		v.visitID = e.visitID
		for _, in := range v.inputs {
			visit(in)
		}
		order = append(order, v)
	}
	visit(root)

	root.accumulate(tensor.Ones(root.Value.Shape()...))
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		if v.back != nil && v.Grad != nil {
			v.back(v.Grad)
		}
	}
}

// --- device cost helpers -------------------------------------------------

// ChargeDense exposes the dense-kernel cost model to other packages (the
// execution runtime charges un-fused dense units with it).
func (e *Engine) ChargeDense(name string, ops float64, loadB, storeB int64) {
	e.chargeDense(name, ops, loadB, storeB)
}

// chargeDense charges a dense compute kernel executing `ops` scalar
// multiply-adds and moving loadB+storeB bytes. Dense kernels are modelled
// at 50% of peak FP32 throughput (a typical figure for a tuned SGEMM
// outside cuBLAS): the launch is shaped as one full wave of 256-thread
// blocks whose serial path makes the aggregate rate SMs × cores × clock ×
// eff.
func (e *Engine) chargeDense(name string, ops float64, loadB, storeB int64) {
	if e.Dev == nil {
		return
	}
	p := e.Dev.Profile
	const threads = 256
	const efficiency = 0.5
	blocks := p.SMCount * (p.MaxThreadsPerSM / threads)
	if blocks < 1 {
		blocks = 1
	}
	path := ops / (float64(p.SMCount*p.CoresPerSM) * efficiency)
	e.Dev.LaunchKernel(device.Launch{
		Name:               name,
		Blocks:             blocks,
		ThreadsPerBlock:    threads,
		UniformBlockCycles: path,
		LoadBytes:          loadB,
		StoreBytes:         storeB,
	})
}

package nn

import (
	"math/rand"

	"seastar/internal/tensor"
)

// bytesOf returns the device footprint of a tensor in bytes.
func bytesOf(t *tensor.Tensor) int64 { return int64(t.Size()) * 4 }

// MatMul returns a @ b with autograd.
func (e *Engine) MatMul(a, b *Variable) *Variable {
	out := tensor.MatMul(a.Value, b.Value)
	m, k := a.Value.Rows(), a.Value.Cols()
	n := b.Value.Cols()
	e.chargeDense("matmul", float64(m)*float64(k)*float64(n),
		bytesOf(a.Value)+bytesOf(b.Value), bytesOf(out))
	return e.node("matmul", out, []*Variable{a, b}, func(g *tensor.Tensor) {
		if a.RequiresGrad {
			da := tensor.MatMulT(g, b.Value) // g @ bᵀ
			e.chargeDense("matmul.dA", float64(m)*float64(n)*float64(k),
				bytesOf(g)+bytesOf(b.Value), bytesOf(da))
			a.accumulate(da)
		}
		if b.RequiresGrad {
			db := tensor.TMatMul(a.Value, g) // aᵀ @ g
			e.chargeDense("matmul.dB", float64(k)*float64(m)*float64(n),
				bytesOf(a.Value)+bytesOf(g), bytesOf(db))
			b.accumulate(db)
		}
	})
}

// chargeEW charges a memory-bound elementwise kernel over n elements
// reading `reads` operands and writing one output.
func (e *Engine) chargeEW(name string, n int, reads int) {
	e.chargeDense(name, float64(n), int64(n*reads)*4, int64(n)*4)
}

// Add returns a + b elementwise.
func (e *Engine) Add(a, b *Variable) *Variable {
	out := tensor.Add(a.Value, b.Value)
	e.chargeEW("add", out.Size(), 2)
	return e.node("add", out, []*Variable{a, b}, func(g *tensor.Tensor) {
		a.accumulate(g)
		b.accumulate(g)
	})
}

// Sub returns a - b elementwise.
func (e *Engine) Sub(a, b *Variable) *Variable {
	out := tensor.Sub(a.Value, b.Value)
	e.chargeEW("sub", out.Size(), 2)
	return e.node("sub", out, []*Variable{a, b}, func(g *tensor.Tensor) {
		a.accumulate(g)
		if b.RequiresGrad {
			b.accumulate(tensor.MulScalar(g, -1))
		}
	})
}

// Mul returns the Hadamard product a * b.
func (e *Engine) Mul(a, b *Variable) *Variable {
	out := tensor.Mul(a.Value, b.Value)
	e.chargeEW("mul", out.Size(), 2)
	return e.node("mul", out, []*Variable{a, b}, func(g *tensor.Tensor) {
		if a.RequiresGrad {
			a.accumulate(tensor.Mul(g, b.Value))
		}
		if b.RequiresGrad {
			b.accumulate(tensor.Mul(g, a.Value))
		}
	})
}

// MulScalar returns a * s.
func (e *Engine) MulScalar(a *Variable, s float32) *Variable {
	out := tensor.MulScalar(a.Value, s)
	e.chargeEW("muls", out.Size(), 1)
	return e.node("muls", out, []*Variable{a}, func(g *tensor.Tensor) {
		a.accumulate(tensor.MulScalar(g, s))
	})
}

// AddRow adds bias row-vector b to every row of a.
func (e *Engine) AddRow(a, b *Variable) *Variable {
	out := tensor.AddRow(a.Value, b.Value)
	e.chargeEW("bias", out.Size(), 1)
	return e.node("bias", out, []*Variable{a, b}, func(g *tensor.Tensor) {
		a.accumulate(g)
		if b.RequiresGrad {
			rb := tensor.SumRows(g)
			b.accumulate(rb.Reshape(b.Value.Shape()...))
		}
	})
}

// MulColVec scales each row i of a by v[i] (v has one entry per row).
func (e *Engine) MulColVec(a, v *Variable) *Variable {
	out := tensor.MulColVec(a.Value, v.Value)
	e.chargeEW("mulcol", out.Size(), 1)
	return e.node("mulcol", out, []*Variable{a, v}, func(g *tensor.Tensor) {
		if a.RequiresGrad {
			a.accumulate(tensor.MulColVec(g, v.Value))
		}
		if v.RequiresGrad {
			prod := tensor.Mul(g, a.Value)
			dv := tensor.SumCols(prod)
			v.accumulate(dv.Reshape(v.Value.Shape()...))
		}
	})
}

// Sigmoid applies the logistic function.
func (e *Engine) Sigmoid(a *Variable) *Variable {
	out := tensor.Sigmoid(a.Value)
	e.chargeEW("sigmoid", out.Size(), 1)
	return e.node("sigmoid", out, []*Variable{a}, func(g *tensor.Tensor) {
		d := out.Clone()
		dd, gd := d.Data(), g.Data()
		for i := range dd {
			dd[i] = gd[i] * dd[i] * (1 - dd[i])
		}
		a.accumulate(d)
	})
}

// ReLU applies max(0, x).
func (e *Engine) ReLU(a *Variable) *Variable {
	out := tensor.ReLU(a.Value)
	e.chargeEW("relu", out.Size(), 1)
	return e.node("relu", out, []*Variable{a}, func(g *tensor.Tensor) {
		d := tensor.New(g.Shape()...)
		ad, gd, dd := a.Value.Data(), g.Data(), d.Data()
		for i := range dd {
			if ad[i] > 0 {
				dd[i] = gd[i]
			}
		}
		a.accumulate(d)
	})
}

// LeakyReLU applies x>0 ? x : slope*x.
func (e *Engine) LeakyReLU(a *Variable, slope float32) *Variable {
	out := tensor.LeakyReLU(a.Value, slope)
	e.chargeEW("leakyrelu", out.Size(), 1)
	return e.node("leakyrelu", out, []*Variable{a}, func(g *tensor.Tensor) {
		d := tensor.New(g.Shape()...)
		ad, gd, dd := a.Value.Data(), g.Data(), d.Data()
		for i := range dd {
			if ad[i] > 0 {
				dd[i] = gd[i]
			} else {
				dd[i] = gd[i] * slope
			}
		}
		a.accumulate(d)
	})
}

// Tanh applies the hyperbolic tangent.
func (e *Engine) Tanh(a *Variable) *Variable {
	out := tensor.Tanh(a.Value)
	e.chargeEW("tanh", out.Size(), 1)
	return e.node("tanh", out, []*Variable{a}, func(g *tensor.Tensor) {
		d := tensor.New(g.Shape()...)
		od, gd, dd := out.Data(), g.Data(), d.Data()
		for i := range dd {
			dd[i] = gd[i] * (1 - od[i]*od[i])
		}
		a.accumulate(d)
	})
}

// Exp applies e^x.
func (e *Engine) Exp(a *Variable) *Variable {
	out := tensor.Exp(a.Value)
	e.chargeEW("exp", out.Size(), 1)
	return e.node("exp", out, []*Variable{a}, func(g *tensor.Tensor) {
		a.accumulate(tensor.Mul(g, out))
	})
}

// Dropout zeroes each element with probability p during training and
// scales survivors by 1/(1-p). With training=false it is the identity.
func (e *Engine) Dropout(a *Variable, p float64, training bool, rng *rand.Rand) *Variable {
	if !training || p <= 0 {
		return a
	}
	mask := tensor.New(a.Value.Shape()...)
	md := mask.Data()
	scale := float32(1 / (1 - p))
	for i := range md {
		if rng.Float64() >= p {
			md[i] = scale
		}
	}
	out := tensor.Mul(a.Value, mask)
	e.chargeEW("dropout", out.Size(), 2)
	return e.node("dropout", out, []*Variable{a}, func(g *tensor.Tensor) {
		a.accumulate(tensor.Mul(g, mask))
	})
}

// SliceCols returns columns [lo, hi) of a matrix variable.
func (e *Engine) SliceCols(a *Variable, lo, hi int) *Variable {
	rows, cols := a.Value.Rows(), a.Value.Cols()
	if lo < 0 || hi > cols || lo >= hi {
		panic("nn: SliceCols range out of bounds")
	}
	w := hi - lo
	out := tensor.New(rows, w)
	for i := 0; i < rows; i++ {
		copy(out.Row(i), a.Value.Row(i)[lo:hi])
	}
	e.chargeEW("slice", out.Size(), 1)
	return e.node("slice", out, []*Variable{a}, func(g *tensor.Tensor) {
		d := tensor.New(rows, cols)
		for i := 0; i < rows; i++ {
			copy(d.Row(i)[lo:hi], g.Row(i))
		}
		a.accumulate(d)
	})
}

// ConcatCols horizontally concatenates matrix variables with equal rows.
func (e *Engine) ConcatCols(xs ...*Variable) *Variable {
	if len(xs) == 0 {
		panic("nn: ConcatCols of nothing")
	}
	rows := xs[0].Value.Rows()
	total := 0
	for _, x := range xs {
		if x.Value.Rows() != rows {
			panic("nn: ConcatCols row mismatch")
		}
		total += x.Value.Cols()
	}
	out := tensor.New(rows, total)
	off := 0
	for _, x := range xs {
		w := x.Value.Cols()
		for i := 0; i < rows; i++ {
			copy(out.Row(i)[off:off+w], x.Value.Row(i))
		}
		off += w
	}
	e.chargeEW("concat", out.Size(), 1)
	return e.node("concat", out, xs, func(g *tensor.Tensor) {
		off := 0
		for _, x := range xs {
			w := x.Value.Cols()
			if x.RequiresGrad {
				d := tensor.New(rows, w)
				for i := 0; i < rows; i++ {
					copy(d.Row(i), g.Row(i)[off:off+w])
				}
				x.accumulate(d)
			}
			off += w
		}
	})
}

// SumAll reduces a to a scalar.
func (e *Engine) SumAll(a *Variable) *Variable {
	out := tensor.Scalar(tensor.Sum(a.Value))
	e.chargeEW("sumall", a.Value.Size(), 1)
	return e.node("sumall", out, []*Variable{a}, func(g *tensor.Tensor) {
		a.accumulate(tensor.Full(g.At1(0), a.Value.Shape()...))
	})
}

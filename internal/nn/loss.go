package nn

import (
	"fmt"
	"math"

	"seastar/internal/tensor"
)

// CrossEntropyMasked computes the mean negative log-likelihood of labels
// over the rows where mask is true (the train split in node
// classification). logits has shape [N, C]; labels has length N. The
// returned variable is scalar.
func (e *Engine) CrossEntropyMasked(logits *Variable, labels []int, mask []bool) *Variable {
	n := logits.Value.Rows()
	if len(labels) != n || len(mask) != n {
		panic(fmt.Sprintf("nn: cross entropy over %d rows with %d labels, %d mask", n, len(labels), len(mask)))
	}
	logp := tensor.LogSoftmaxRows(logits.Value)
	count := 0
	var loss float64
	for i := 0; i < n; i++ {
		if mask[i] {
			count++
			loss -= float64(logp.At(i, labels[i]))
		}
	}
	if count == 0 {
		panic("nn: cross entropy mask selects no rows")
	}
	loss /= float64(count)
	// Forward cost: one pass over the logits.
	e.chargeEW("xent", logits.Value.Size(), 1)
	out := tensor.Scalar(float32(loss))
	return e.node("xent", out, []*Variable{logits}, func(g *tensor.Tensor) {
		scale := g.At1(0) / float32(count)
		d := tensor.New(logits.Value.Shape()...)
		for i := 0; i < n; i++ {
			if !mask[i] {
				continue
			}
			lr, dr := logp.Row(i), d.Row(i)
			for j := range dr {
				p := expf(lr[j])
				dr[j] = scale * p
			}
			dr[labels[i]] -= scale
		}
		logits.accumulate(d)
	})
}

// Accuracy returns the fraction of masked rows where the argmax of logits
// equals the label.
func Accuracy(logits *tensor.Tensor, labels []int, mask []bool) float64 {
	pred := tensor.ArgMaxRows(logits)
	correct, total := 0, 0
	for i, p := range pred {
		if mask[i] {
			total++
			if p == labels[i] {
				correct++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

func expf(x float32) float32 {
	// exp via float64 for accuracy; hot only in the loss which is O(N·C).
	return float32(math.Exp(float64(x)))
}

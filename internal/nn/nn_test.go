package nn

import (
	"math"
	"math/rand"
	"testing"

	"seastar/internal/device"
	"seastar/internal/tensor"
)

// numericalGrad estimates d loss / d param[i] by central differences.
// build must construct the full forward graph from scratch and return the
// scalar loss variable.
func numericalGrad(t *testing.T, param *tensor.Tensor, build func() float32) *tensor.Tensor {
	t.Helper()
	const eps = 1e-3
	g := tensor.New(param.Shape()...)
	for i := 0; i < param.Size(); i++ {
		orig := param.At1(i)
		param.Set1(i, orig+eps)
		up := build()
		param.Set1(i, orig-eps)
		down := build()
		param.Set1(i, orig)
		g.Set1(i, (up-down)/(2*eps))
	}
	return g
}

func gradsClose(t *testing.T, name string, analytic, numeric *tensor.Tensor) {
	t.Helper()
	if analytic == nil {
		t.Fatalf("%s: no analytic gradient", name)
	}
	for i := 0; i < analytic.Size(); i++ {
		a, n := float64(analytic.At1(i)), float64(numeric.At1(i))
		diff := math.Abs(a - n)
		scale := math.Max(math.Abs(a), math.Abs(n)) + 1e-3
		if diff/scale > 0.1 {
			t.Fatalf("%s: grad[%d] analytic %v vs numeric %v", name, i, a, n)
		}
	}
}

func TestBackwardMatMulChain(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xT := tensor.Randn(rng, 1, 4, 3)
	wT := tensor.Randn(rng, 1, 3, 2)

	e := NewEngine(nil)
	x := e.Input(xT, "x")
	w := e.Param(wT, "w")
	loss := e.SumAll(e.Sigmoid(e.MatMul(x, w)))
	e.Backward(loss)

	numeric := numericalGrad(t, wT, func() float32 {
		e2 := NewEngine(nil)
		l := e2.SumAll(e2.Sigmoid(e2.MatMul(e2.Input(xT, "x"), e2.Param(wT, "w"))))
		return l.Value.At1(0)
	})
	gradsClose(t, "matmul-sigmoid", w.Grad, numeric)
}

func TestBackwardElementwiseOps(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	aT := tensor.Randn(rng, 1, 3, 3)
	bT := tensor.Randn(rng, 1, 3, 3)

	build := func(e *Engine) *Variable {
		a := e.Param(aT, "a")
		b := e.Param(bT, "b")
		y := e.Mul(e.Add(a, b), e.Sub(a, b)) // a² - b²
		y = e.LeakyReLU(y, 0.2)
		y = e.Exp(e.MulScalar(y, 0.1))
		return e.SumAll(y)
	}
	e := NewEngine(nil)
	// Keep handles to the params of THIS graph.
	a := e.Param(aT, "a")
	b := e.Param(bT, "b")
	y := e.Mul(e.Add(a, b), e.Sub(a, b))
	y = e.LeakyReLU(y, 0.2)
	y = e.Exp(e.MulScalar(y, 0.1))
	loss := e.SumAll(y)
	e.Backward(loss)

	numA := numericalGrad(t, aT, func() float32 { return build(NewEngine(nil)).Value.At1(0) })
	gradsClose(t, "elementwise dA", a.Grad, numA)
	numB := numericalGrad(t, bT, func() float32 { return build(NewEngine(nil)).Value.At1(0) })
	gradsClose(t, "elementwise dB", b.Grad, numB)
}

func TestBackwardBiasAndColVec(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xT := tensor.Randn(rng, 1, 4, 3)
	bT := tensor.Randn(rng, 1, 3)
	vT := tensor.Randn(rng, 1, 4)

	build := func() (*Engine, *Variable, *Variable, *Variable) {
		e := NewEngine(nil)
		x := e.Input(xT, "x")
		b := e.Param(bT, "b")
		v := e.Param(vT, "v")
		y := e.MulColVec(e.AddRow(x, b), v)
		return e, e.SumAll(y), b, v
	}
	e, loss, b, v := build()
	e.Backward(loss)

	numB := numericalGrad(t, bT, func() float32 { _, l, _, _ := build(); return l.Value.At1(0) })
	gradsClose(t, "bias", b.Grad, numB)
	numV := numericalGrad(t, vT, func() float32 { _, l, _, _ := build(); return l.Value.At1(0) })
	gradsClose(t, "colvec", v.Grad, numV)
}

func TestBackwardReLU(t *testing.T) {
	xT := tensor.FromSlice([]float32{-1, 0.5, 2, -3}, 2, 2)
	e := NewEngine(nil)
	x := e.Param(xT, "x")
	loss := e.SumAll(e.ReLU(x))
	e.Backward(loss)
	want := []float32{0, 1, 1, 0}
	for i, w := range want {
		if x.Grad.At1(i) != w {
			t.Fatalf("relu grad[%d] = %v, want %v", i, x.Grad.At1(i), w)
		}
	}
}

func TestCrossEntropyGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	lT := tensor.Randn(rng, 1, 5, 3)
	labels := []int{0, 2, 1, 2, 0}
	mask := []bool{true, true, false, true, false}

	e := NewEngine(nil)
	l := e.Param(lT, "logits")
	loss := e.CrossEntropyMasked(l, labels, mask)
	e.Backward(loss)

	numeric := numericalGrad(t, lT, func() float32 {
		e2 := NewEngine(nil)
		return e2.CrossEntropyMasked(e2.Param(lT, "l"), labels, mask).Value.At1(0)
	})
	gradsClose(t, "cross-entropy", l.Grad, numeric)

	// Unmasked rows must have zero gradient.
	for j := 0; j < 3; j++ {
		if l.Grad.At(2, j) != 0 || l.Grad.At(4, j) != 0 {
			t.Fatal("masked-out rows received gradient")
		}
	}
}

func TestCrossEntropyPanics(t *testing.T) {
	e := NewEngine(nil)
	l := e.Param(tensor.New(2, 2), "l")
	for _, c := range []struct {
		labels []int
		mask   []bool
	}{
		{[]int{0}, []bool{true, true}},
		{[]int{0, 1}, []bool{false, false}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			e.CrossEntropyMasked(l, c.labels, c.mask)
		}()
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice([]float32{
		0.9, 0.1,
		0.2, 0.8,
		0.7, 0.3,
	}, 3, 2)
	labels := []int{0, 1, 1}
	acc := Accuracy(logits, labels, []bool{true, true, true})
	if math.Abs(acc-2.0/3.0) > 1e-9 {
		t.Fatalf("accuracy %v", acc)
	}
	if Accuracy(logits, labels, []bool{false, false, false}) != 0 {
		t.Fatal("empty mask accuracy must be 0")
	}
}

func TestDropout(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	e := NewEngine(nil)
	x := e.Param(tensor.Ones(100, 10), "x")
	// Not training: identity, same variable returned.
	if e.Dropout(x, 0.5, false, rng) != x {
		t.Fatal("eval-mode dropout must be identity")
	}
	y := e.Dropout(x, 0.5, true, rng)
	zeros, scaled := 0, 0
	for i := 0; i < y.Value.Size(); i++ {
		switch y.Value.At1(i) {
		case 0:
			zeros++
		case 2:
			scaled++
		default:
			t.Fatalf("unexpected dropout value %v", y.Value.At1(i))
		}
	}
	if zeros < 300 || zeros > 700 {
		t.Fatalf("dropout zero count %d implausible for p=0.5", zeros)
	}
	loss := e.SumAll(y)
	e.Backward(loss)
	// Gradient must be the same mask.
	for i := 0; i < y.Value.Size(); i++ {
		want := float32(0)
		if y.Value.At1(i) != 0 {
			want = 2
		}
		if x.Grad.At1(i) != want {
			t.Fatal("dropout backward mask mismatch")
		}
	}
	_ = scaled
}

func TestGradAccumulationAcrossTwoUses(t *testing.T) {
	// x used twice: grad must be the sum of both paths.
	xT := tensor.FromSlice([]float32{2}, 1, 1)
	e := NewEngine(nil)
	x := e.Param(xT, "x")
	loss := e.SumAll(e.Mul(x, x)) // d/dx x² = 2x = 4
	e.Backward(loss)
	if x.Grad.At1(0) != 4 {
		t.Fatalf("grad %v, want 4", x.Grad.At1(0))
	}
}

func TestBackwardRequiresScalar(t *testing.T) {
	e := NewEngine(nil)
	x := e.Param(tensor.New(2, 2), "x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Backward(x)
}

func TestSGDStep(t *testing.T) {
	e := NewEngine(nil)
	p := e.Param(tensor.FromSlice([]float32{1, 2}, 2), "p")
	p.Grad = tensor.FromSlice([]float32{0.5, -0.5}, 2)
	opt := NewSGD([]*Variable{p}, 0.1)
	opt.Step()
	if math.Abs(float64(p.Value.At1(0))-0.95) > 1e-6 || math.Abs(float64(p.Value.At1(1))-2.05) > 1e-6 {
		t.Fatalf("SGD step: %v", p.Value)
	}
	if p.Grad.At1(0) != 0 {
		t.Fatal("SGD must zero gradients")
	}
}

func TestAdamConverges(t *testing.T) {
	// Minimize (w - 3)² with Adam; should approach 3.
	e := NewEngine(nil)
	w := e.Param(tensor.FromSlice([]float32{0}, 1, 1), "w")
	opt := NewAdam([]*Variable{w}, 0.1)
	target := tensor.FromSlice([]float32{3}, 1, 1)
	for i := 0; i < 300; i++ {
		tv := e.Input(target, "t")
		d := e.Sub(w, tv)
		loss := e.SumAll(e.Mul(d, d))
		e.Backward(loss)
		opt.Step()
		e.EndIteration()
	}
	if math.Abs(float64(w.Value.At1(0))-3) > 0.05 {
		t.Fatalf("Adam did not converge: w=%v", w.Value.At1(0))
	}
}

func TestLinearLayer(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	e := NewEngine(nil)
	l := NewLinear(e, rng, 4, 3, true, "fc")
	if len(l.Params()) != 2 {
		t.Fatal("biasless param count")
	}
	x := e.Input(tensor.Randn(rng, 1, 2, 4), "x")
	y := l.Forward(e, x)
	if y.Value.Rows() != 2 || y.Value.Cols() != 3 {
		t.Fatalf("linear output shape %v", y.Value.Shape())
	}
	nb := NewLinear(e, rng, 4, 3, false, "fc2")
	if len(nb.Params()) != 1 {
		t.Fatal("no-bias param count")
	}
	if NumParams(CollectParams(l.Params(), nb.Params())) != 4*3+3+4*3 {
		t.Fatal("NumParams miscounts")
	}
}

func TestEngineChargesDevice(t *testing.T) {
	dev := device.New(device.V100)
	e := NewEngine(dev)
	rng := rand.New(rand.NewSource(7))
	x := e.Input(tensor.Randn(rng, 1, 64, 32), "x")
	w := e.Param(tensor.Randn(rng, 1, 32, 16), "w")
	if dev.CurrentBytes() == 0 {
		t.Fatal("inputs/params must consume device memory")
	}
	before := dev.ElapsedNs()
	loss := e.SumAll(e.MatMul(x, w))
	e.Backward(loss)
	if dev.ElapsedNs() <= before {
		t.Fatal("ops must advance the simulated clock")
	}
	mid := dev.CurrentBytes()
	e.EndIteration()
	if dev.CurrentBytes() >= mid {
		t.Fatal("EndIteration must free iteration buffers")
	}
	if dev.CurrentBytes() == 0 {
		t.Fatal("params must survive EndIteration")
	}
}

func TestCatchOOM(t *testing.T) {
	dev := device.New(device.Profile{Name: "tiny", GlobalMemBytes: 64})
	e := NewEngine(dev)
	err := CatchOOM(func() {
		e.Input(tensor.New(1024), "big")
	})
	if err == nil {
		t.Fatal("expected OOM error")
	}
	// Non-OOM panics must propagate.
	defer func() {
		if recover() == nil {
			t.Fatal("non-OOM panic swallowed")
		}
	}()
	_ = CatchOOM(func() { panic("boom") })
}

func TestCheckFinite(t *testing.T) {
	CheckFinite("ok", tensor.FromSlice([]float32{1, 2}, 2))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on NaN")
		}
	}()
	nan := float32(math.NaN())
	CheckFinite("bad", tensor.FromSlice([]float32{nan}, 1))
}

func TestCustomFunction(t *testing.T) {
	// A custom square function: y = x², dy = 2x·g.
	sq := &squareFn{}
	e := NewEngine(nil)
	x := e.Param(tensor.FromSlice([]float32{3, -2}, 2), "x")
	y := e.Apply(sq, "square", x)
	if y.Value.At1(0) != 9 || y.Value.At1(1) != 4 {
		t.Fatalf("square forward: %v", y.Value)
	}
	loss := e.SumAll(y)
	e.Backward(loss)
	if x.Grad.At1(0) != 6 || x.Grad.At1(1) != -4 {
		t.Fatalf("square backward: %v", x.Grad)
	}
}

type squareFn struct{}

func (squareFn) Forward(ctx *FuncCtx, inputs ...*tensor.Tensor) *tensor.Tensor {
	x := inputs[0]
	ctx.SaveRef("x", x)
	return tensor.Mul(x, x)
}

func (squareFn) Backward(ctx *FuncCtx, g *tensor.Tensor) []*tensor.Tensor {
	x := ctx.Saved("x")
	return []*tensor.Tensor{tensor.MulScalar(tensor.Mul(x, g), 2)}
}

func TestFuncCtxSavedPanicsOnMissingKey(t *testing.T) {
	ctx := &FuncCtx{Engine: NewEngine(nil)}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ctx.Saved("nope")
}

package nn

import "seastar/internal/tensor"

// Function is the custom-autograd hook, the analogue of
// torch.autograd.Function that the paper uses to plug compiled Seastar
// execution units into the DL backend (§5.3). Forward receives the input
// tensors and may stash state on ctx for the backward pass; Backward
// receives the output gradient and returns one gradient per input (nil
// for inputs that need none).
type Function interface {
	Forward(ctx *FuncCtx, inputs ...*tensor.Tensor) *tensor.Tensor
	Backward(ctx *FuncCtx, gradOut *tensor.Tensor) []*tensor.Tensor
}

// FuncCtx carries saved tensors between a Function's forward and backward.
type FuncCtx struct {
	Engine *Engine
	saved  map[string]*tensor.Tensor
}

// Save stashes a tensor for the backward pass, charging its device memory
// to the current iteration (this is what Seastar's materialization
// planning decides to keep).
func (c *FuncCtx) Save(key string, t *tensor.Tensor) {
	if c.saved == nil {
		c.saved = make(map[string]*tensor.Tensor)
	}
	c.saved[key] = t
	c.Engine.alloc(t)
}

// SaveRef stashes a tensor WITHOUT charging device memory — for references
// to tensors whose storage is already accounted for (model inputs,
// another unit's output).
func (c *FuncCtx) SaveRef(key string, t *tensor.Tensor) {
	if c.saved == nil {
		c.saved = make(map[string]*tensor.Tensor)
	}
	c.saved[key] = t
}

// Saved retrieves a stashed tensor; it panics if the key is missing, since
// that is a bug in the Function implementation.
func (c *FuncCtx) Saved(key string) *tensor.Tensor {
	t, ok := c.saved[key]
	if !ok {
		panic("nn: FuncCtx.Saved: no tensor saved under " + key)
	}
	return t
}

// Apply runs f.Forward on the inputs' values and wires f.Backward into the
// autograd tape. The output tensor's device memory is charged like any op
// output.
func (e *Engine) Apply(f Function, name string, inputs ...*Variable) *Variable {
	ctx := &FuncCtx{Engine: e}
	vals := make([]*tensor.Tensor, len(inputs))
	for i, in := range inputs {
		vals[i] = in.Value
	}
	out := f.Forward(ctx, vals...)
	return e.node(name, out, inputs, func(g *tensor.Tensor) {
		grads := f.Backward(ctx, g)
		for i, gi := range grads {
			if gi != nil && i < len(inputs) {
				inputs[i].accumulate(gi)
			}
		}
	})
}

package tensor

import (
	"fmt"

	"seastar/internal/sched"
)

// rowGrain is the minimum rows per chunk for row-parallel kernels (the
// former n < 64 serial cutoff, now expressed as chunk granularity).
const rowGrain = 32

// elemGrain is the minimum elements per chunk for elementwise kernels,
// where per-item work is a couple of flops.
const elemGrain = 8192

// parallelRows splits [0, n) row ranges across the shared scheduler's
// persistent worker pool.
func parallelRows(n int, f func(lo, hi int)) { sched.For(n, rowGrain, f) }

// parallelElems splits [0, n) element ranges across the scheduler.
func parallelElems(n int, f func(lo, hi int)) { sched.For(n, elemGrain, f) }

// MatMul returns a@b for 2-D tensors: [m,k] x [k,n] -> [m,n].
//
// Products below gemmSerialMACs multiply-accumulates run the naive
// serial reference; larger ones take the packed, blocked, register-tiled
// path in gemm.go.
func MatMul(a, b *Tensor) *Tensor {
	a.check2d()
	b.check2d()
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	if m*k*n < gemmSerialMACs {
		refMatMulInto(out.data, a.data, b.data, m, k, n)
	} else {
		gemm(out.data, a.data, b.data, m, k, n, false, false, false)
	}
	return out
}

// MatMulRowsLike computes rows@b for a compact [r,k] matrix holding
// selected rows gathered out of a logical [fullRows,k] matrix, returning
// [r,n] rows bitwise-identical to the corresponding rows of the full
// MatMul(a, b) product.
//
// This works because per-row arithmetic is row-independent on both paths:
// the naive reference accumulates each output row alone, and the blocked
// path gives every row its own register accumulators with K-blocks
// consumed in a fixed order (padded tail rows are zeros that never touch
// their neighbours). The only row-count-dependent decision is the
// naive-vs-blocked dispatch, which this entry point replays from
// fullRows instead of r. Incremental recompute uses it to patch a few
// dirty rows of a cached dense product without paying — or bitwise
// diverging from — the full-size multiply.
func MatMulRowsLike(rows, b *Tensor, fullRows int) *Tensor {
	rows.check2d()
	b.check2d()
	r, k := rows.shape[0], rows.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulRowsLike inner dims %v x %v", rows.shape, b.shape))
	}
	out := New(r, n)
	if fullRows*k*n < gemmSerialMACs {
		refMatMulInto(out.data, rows.data, b.data, r, k, n)
	} else {
		gemm(out.data, rows.data, b.data, r, k, n, false, false, false)
	}
	return out
}

// MatMulSameKernel reports whether [m1,k]×[k,n] and [m2,k]×[k,n] products
// dispatch to the same MatMul code path (naive reference vs blocked). Rows
// cached from an m1-row product stay bitwise-valid inside an m2-row
// product only when this holds; callers patching cached products across a
// row-count change must fall back to a full recompute otherwise.
func MatMulSameKernel(m1, m2, k, n int) bool {
	return (m1*k*n < gemmSerialMACs) == (m2*k*n < gemmSerialMACs)
}

// MatMulT returns a@bᵀ: [m,k] x [n,k] -> [m,n].
func MatMulT(a, b *Tensor) *Tensor {
	a.check2d()
	b.check2d()
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulT inner dims %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	if m*k*n < gemmSerialMACs {
		refMatMulTInto(out.data, a.data, b.data, m, k, n)
	} else {
		gemm(out.data, a.data, b.data, m, k, n, false, true, false)
	}
	return out
}

// TMatMul returns aᵀ@b: [k,m] x [k,n] -> [m,n].
func TMatMul(a, b *Tensor) *Tensor {
	a.check2d()
	b.check2d()
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: TMatMul inner dims %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	if m*k*n < gemmSerialMACs {
		refTMatMulInto(out.data, a.data, b.data, m, k, n)
	} else {
		gemm(out.data, a.data, b.data, m, k, n, true, false, false)
	}
	return out
}

// refMatMulInto is the unblocked serial reference: c += a@b, axpy order.
// Every multiplicand participates — a zero in a must still propagate a
// NaN/Inf from b (0·NaN = NaN), so there is deliberately no zero skip.
func refMatMulInto(c, a, b []float32, m, k, n int) {
	for i := 0; i < m; i++ {
		ar := a[i*k : (i+1)*k]
		or := c[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := ar[p]
			br := b[p*n : (p+1)*n]
			for j := range or {
				or[j] += av * br[j]
			}
		}
	}
}

func refMatMulTInto(c, a, b []float32, m, k, n int) {
	for i := 0; i < m; i++ {
		ar := a[i*k : (i+1)*k]
		or := c[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			br := b[j*k : (j+1)*k]
			var s float32
			for p := 0; p < k; p++ {
				s += ar[p] * br[p]
			}
			or[j] = s
		}
	}
}

func refTMatMulInto(c, a, b []float32, m, k, n int) {
	for i := 0; i < m; i++ {
		or := c[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := a[p*m+i]
			br := b[p*n : (p+1)*n]
			for j := range or {
				or[j] += av * br[j]
			}
		}
	}
}

// RefMatMul is the naive single-thread reference for a@b, kept as the
// ground truth for property tests and the blocked-vs-naive benchmark.
func RefMatMul(a, b *Tensor) *Tensor {
	a.check2d()
	b.check2d()
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: RefMatMul inner dims %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	refMatMulInto(out.data, a.data, b.data, m, k, n)
	return out
}

// RefMatMulT is the naive single-thread reference for a@bᵀ.
func RefMatMulT(a, b *Tensor) *Tensor {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[0]
	out := New(m, n)
	refMatMulTInto(out.data, a.data, b.data, m, k, n)
	return out
}

// RefTMatMul is the naive single-thread reference for aᵀ@b.
func RefTMatMul(a, b *Tensor) *Tensor {
	k, m := a.shape[0], a.shape[1]
	n := b.shape[1]
	if k != b.shape[0] {
		panic(fmt.Sprintf("tensor: RefTMatMul inner dims %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	refTMatMulInto(out.data, a.data, b.data, m, k, n)
	return out
}

// BlockedMatMulSerial runs the packed, blocked path on one thread
// regardless of size — the benchmark's single-thread measurement and the
// property tests' way of forcing the blocked code path on small shapes.
func BlockedMatMulSerial(a, b *Tensor) *Tensor {
	a.check2d()
	b.check2d()
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: BlockedMatMulSerial inner dims %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	gemm(out.data, a.data, b.data, m, k, n, false, false, true)
	return out
}

// MatVec returns a@v for a [m,k] matrix and a length-k vector, as shape [m].
func MatVec(a, v *Tensor) *Tensor {
	a.check2d()
	m, k := a.shape[0], a.shape[1]
	if v.Size() != k {
		panic(fmt.Sprintf("tensor: MatVec dims %v x %v", a.shape, v.shape))
	}
	out := New(m)
	parallelRows(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ar := a.data[i*k : (i+1)*k]
			var s float32
			for p := 0; p < k; p++ {
				s += ar[p] * v.data[p]
			}
			out.data[i] = s
		}
	})
	return out
}

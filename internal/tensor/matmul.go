package tensor

import (
	"fmt"

	"seastar/internal/sched"
)

// rowGrain is the minimum rows per chunk for row-parallel kernels (the
// former n < 64 serial cutoff, now expressed as chunk granularity).
const rowGrain = 32

// elemGrain is the minimum elements per chunk for elementwise kernels,
// where per-item work is a couple of flops.
const elemGrain = 8192

// parallelRows splits [0, n) row ranges across the shared scheduler's
// persistent worker pool.
func parallelRows(n int, f func(lo, hi int)) { sched.For(n, rowGrain, f) }

// parallelElems splits [0, n) element ranges across the scheduler.
func parallelElems(n int, f func(lo, hi int)) { sched.For(n, elemGrain, f) }

// MatMul returns a@b for 2-D tensors: [m,k] x [k,n] -> [m,n].
func MatMul(a, b *Tensor) *Tensor {
	a.check2d()
	b.check2d()
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	parallelRows(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ar := a.data[i*k : (i+1)*k]
			or := out.data[i*n : (i+1)*n]
			for p := 0; p < k; p++ {
				av := ar[p]
				if av == 0 {
					continue
				}
				br := b.data[p*n : (p+1)*n]
				for j := range or {
					or[j] += av * br[j]
				}
			}
		}
	})
	return out
}

// MatMulT returns a@bᵀ: [m,k] x [n,k] -> [m,n].
func MatMulT(a, b *Tensor) *Tensor {
	a.check2d()
	b.check2d()
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulT inner dims %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	parallelRows(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ar := a.data[i*k : (i+1)*k]
			or := out.data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				br := b.data[j*k : (j+1)*k]
				var s float32
				for p := 0; p < k; p++ {
					s += ar[p] * br[p]
				}
				or[j] = s
			}
		}
	})
	return out
}

// TMatMul returns aᵀ@b: [k,m] x [k,n] -> [m,n].
func TMatMul(a, b *Tensor) *Tensor {
	a.check2d()
	b.check2d()
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: TMatMul inner dims %v x %v", a.shape, b.shape))
	}
	out := New(m, n)
	parallelRows(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			or := out.data[i*n : (i+1)*n]
			for p := 0; p < k; p++ {
				av := a.data[p*m+i]
				if av == 0 {
					continue
				}
				br := b.data[p*n : (p+1)*n]
				for j := range or {
					or[j] += av * br[j]
				}
			}
		}
	})
	return out
}

// MatVec returns a@v for a [m,k] matrix and a length-k vector, as shape [m].
func MatVec(a, v *Tensor) *Tensor {
	a.check2d()
	m, k := a.shape[0], a.shape[1]
	if v.Size() != k {
		panic(fmt.Sprintf("tensor: MatVec dims %v x %v", a.shape, v.shape))
	}
	out := New(m)
	parallelRows(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ar := a.data[i*k : (i+1)*k]
			var s float32
			for p := 0; p < k; p++ {
				s += ar[p] * v.data[p]
			}
			out.data[i] = s
		}
	})
	return out
}

package tensor

import (
	"sync"

	"seastar/internal/sched"
)

// Blocked, packed GEMM — the CPU analogue of the paper's feature-adaptive
// thread groups (§6.3.1): instead of sizing a warp's register tile to the
// feature dimension, we size a register-tiled microkernel to the core's
// register file and keep one packed K×NR micro-panel of B resident in L1
// while it is reused by every row block.
//
// The driver follows the classic panel-packing scheme:
//
//	for each K-block (gemmKC rows of B):
//	    pack B[pc:pc+kc, :] into NR-wide column panels (pooled buffer)
//	    for each MR-row block of A (parallel over the shared scheduler):
//	        pack the A block interleaved as [kc][MR] (pooled buffer)
//	        for each panel: C[MR][NR] += Ablock · panel   (microkernel)
//
// Two microkernels back the same driver: a portable 4×8 Go kernel written
// as two 4×4 register blocks so the compiler keeps each half's sixteen
// accumulators in XMM registers, and (on amd64 hosts with AVX2+FMA) a
// 4×16 assembly kernel holding the accumulator tile in eight YMM
// registers. Both consume identical packed layouts, so correctness tests
// run the portable kernel against the assembly one directly.
const (
	// gemmMR is the register-tile row count shared by every microkernel.
	gemmMR = 4
	// gemmMaxNR bounds the panel width of any microkernel (the assembly
	// kernel's 16); tail tiles use a scratch buffer of this width.
	gemmMaxNR = 16
	// gemmSerialMACs is the multiply-accumulate count below which packing
	// cannot amortize its own traffic: such products take the naive
	// serial reference path instead.
	gemmSerialMACs = 1 << 15
	// gemmRowGrain is the minimum A-row block handed to one worker, in
	// rows; it keeps the per-chunk packing overhead small relative to
	// the microkernel work.
	gemmRowGrain = 64
)

// microFn computes C[gemmMR][nr] += Ablock · panel for one packed A block
// (kc×gemmMR interleaved) and one packed B panel (kc×nr).
type microFn func(kc int, ap, bp []float32, c0, c1, c2, c3 []float32)

// gemmKC is the K-block: one packed micro-panel (gemmKC × NR floats)
// must stay L1-resident across a whole row sweep. 256×16×4 B = 16 KB,
// half of a typical 32 KB L1d. A variable rather than a constant so the
// measured re-planner can retune the block to the host's actual L1
// (SetGemmKC); the K loop accumulates into the same C tile in the same
// order for every block size, so results are bitwise-stable across
// retunes only when the split points coincide — which is why the
// re-planner treats kc as outside the bitwise-safe envelope and the
// property test pins both sides explicitly.
var gemmKC = 256

// SetGemmKC overrides the GEMM K-block size (clamped to at least
// gemmMR) and returns the previous value. Benchmarks and the adaptive
// planner's measurement harness use it; it must not be called
// concurrently with running matmuls.
func SetGemmKC(kc int) int {
	prev := gemmKC
	if kc < gemmMR {
		kc = gemmMR
	}
	gemmKC = kc
	return prev
}

// GemmKC reports the current GEMM K-block size.
func GemmKC() int { return gemmKC }

// The active microkernel, selected at package init: the AVX2+FMA 4×16
// assembly kernel when the host supports it (see gemm_amd64.go),
// otherwise the portable 4×8 Go kernel.
var (
	gemmNR    = 8
	gemmMicro = microFn(mk4x8go)
	gemmName  = "go-4x8"
)

// GemmKernelName reports the active microkernel ("avx2-fma-4x16" on
// capable amd64 hosts, "go-4x8" otherwise) for benchmark reports.
func GemmKernelName() string { return gemmName }

// gemmBufs pools packing buffers so steady-state training steps reuse
// the same panels instead of allocating per call.
var gemmBufs sync.Pool

func gemmGet(n int) []float32 {
	if v := gemmBufs.Get(); v != nil {
		b := *(v.(*[]float32))
		if cap(b) >= n {
			return b[:n]
		}
	}
	return make([]float32, n)
}

func gemmPut(b []float32) { gemmBufs.Put(&b) }

// packA packs rows [i0, i0+rows) of the m×k row-major matrix a, K-slice
// [pc, pc+kc), into ap as [kc][gemmMR] interleaved; rows beyond `rows`
// are zero-padded so the microkernel always runs a full register tile.
func packA(ap, a []float32, k, i0, rows, pc, kc int) {
	for r := 0; r < gemmMR; r++ {
		if r >= rows {
			for p := 0; p < kc; p++ {
				ap[p*gemmMR+r] = 0
			}
			continue
		}
		row := a[(i0+r)*k+pc : (i0+r)*k+pc+kc]
		for p, v := range row {
			ap[p*gemmMR+r] = v
		}
	}
}

// packAT is packA for a stored transposed as [k, m] (the TMatMul layout):
// logical element (i, p) lives at a[p*m+i].
func packAT(ap, a []float32, m, i0, rows, pc, kc int) {
	for p := 0; p < kc; p++ {
		row := a[(pc+p)*m+i0:]
		for r := 0; r < gemmMR; r++ {
			if r < rows {
				ap[p*gemmMR+r] = row[r]
			} else {
				ap[p*gemmMR+r] = 0
			}
		}
	}
}

// packB packs b's K-slice [pc, pc+kc) across all n columns into nr-wide
// panels: panel j0/nr holds [kc][nr] contiguously, zero-padded on the
// right so the microkernel never reads past a column tail.
func packB(bp, b []float32, n, pc, kc, nr int) {
	idx := 0
	for j0 := 0; j0 < n; j0 += nr {
		jw := n - j0
		if jw > nr {
			jw = nr
		}
		for p := 0; p < kc; p++ {
			row := b[(pc+p)*n+j0 : (pc+p)*n+j0+jw]
			copy(bp[idx:idx+jw], row)
			for j := jw; j < nr; j++ {
				bp[idx+j] = 0
			}
			idx += nr
		}
	}
}

// packBT is packB for b stored transposed as [n, k] (the MatMulT layout):
// logical element (p, j) lives at b[j*k+p].
func packBT(bp, b []float32, k, n, pc, kc, nr int) {
	idx := 0
	for j0 := 0; j0 < n; j0 += nr {
		jw := n - j0
		if jw > nr {
			jw = nr
		}
		for p := 0; p < kc; p++ {
			for j := 0; j < jw; j++ {
				bp[idx+j] = b[(j0+j)*k+pc+p]
			}
			for j := jw; j < nr; j++ {
				bp[idx+j] = 0
			}
			idx += nr
		}
	}
}

// gemm computes c += opA(a) · opB(b) for row-major float32 matrices with
// panel packing, L1-sized K-blocks and the active register-tiled
// microkernel. transA reads a as [k, m] (aᵀ·b), transB reads b as [n, k]
// (a·bᵀ). Row blocks are dispatched through the shared scheduler unless
// serial is set. Each C element is written by exactly one worker and the
// K-blocks run in a fixed order, so results are deterministic regardless
// of worker count.
func gemm(c, a, b []float32, m, k, n int, transA, transB, serial bool) {
	gemmWith(gemmMicro, gemmNR, c, a, b, m, k, n, transA, transB, serial)
}

func gemmWith(micro microFn, nr int, c, a, b []float32, m, k, n int, transA, transB, serial bool) {
	if m == 0 || k == 0 || n == 0 {
		return
	}
	nPanels := (n + nr - 1) / nr
	bp := gemmGet(gemmKC * nPanels * nr)
	for pc := 0; pc < k; pc += gemmKC {
		kc := k - pc
		if kc > gemmKC {
			kc = gemmKC
		}
		if transB {
			packBT(bp, b, k, n, pc, kc, nr)
		} else {
			packB(bp, b, n, pc, kc, nr)
		}
		run := func(lo, hi int) {
			ap := gemmGet(kc * gemmMR)
			var tail [gemmMR * gemmMaxNR]float32
			for i := lo; i < hi; i += gemmMR {
				rows := hi - i
				if rows > gemmMR {
					rows = gemmMR
				}
				if transA {
					packAT(ap, a, m, i, rows, pc, kc)
				} else {
					packA(ap, a, k, i, rows, pc, kc)
				}
				for jp := 0; jp < nPanels; jp++ {
					j := jp * nr
					panel := bp[jp*kc*nr : (jp+1)*kc*nr]
					if rows == gemmMR && j+nr <= n {
						micro(kc, ap, panel,
							c[i*n+j:], c[(i+1)*n+j:], c[(i+2)*n+j:], c[(i+3)*n+j:])
						continue
					}
					// Tail tile: run into scratch, add back the valid
					// region only (padded rows/columns are discarded).
					ct := tail[: gemmMR*nr : gemmMR*nr]
					for x := range ct {
						ct[x] = 0
					}
					micro(kc, ap, panel, ct[0:], ct[nr:], ct[2*nr:], ct[3*nr:])
					jw := n - j
					if jw > nr {
						jw = nr
					}
					for r := 0; r < rows; r++ {
						or := c[(i+r)*n+j : (i+r)*n+j+jw]
						src := ct[r*nr : r*nr+jw]
						for x, v := range src {
							or[x] += v
						}
					}
				}
			}
			gemmPut(ap)
		}
		if serial {
			run(0, m)
		} else {
			sched.For(m, gemmRowGrain, run)
		}
	}
	gemmPut(bp)
}

// mk4x8go is the portable register-tiled microkernel: a 4×8 tile computed
// as two sequential 4×4 register blocks, each holding its sixteen
// accumulators in locals so the compiler keeps them in XMM registers
// (4×8 in one body would need 32 accumulators and spill).
func mk4x8go(kc int, ap, bp []float32, c0, c1, c2, c3 []float32) {
	mk4x4go(kc, ap, bp, c0, c1, c2, c3, 0)
	mk4x4go(kc, ap, bp, c0, c1, c2, c3, 4)
}

func mk4x4go(kc int, ap, bp []float32, c0, c1, c2, c3 []float32, off int) {
	var c00, c01, c02, c03 float32
	var c10, c11, c12, c13 float32
	var c20, c21, c22, c23 float32
	var c30, c31, c32, c33 float32
	for p := 0; p < kc; p++ {
		b := bp[p*8+off : p*8+off+4 : p*8+off+4]
		b0, b1, b2, b3 := b[0], b[1], b[2], b[3]
		a := ap[p*4 : p*4+4 : p*4+4]
		av := a[0]
		c00 += av * b0
		c01 += av * b1
		c02 += av * b2
		c03 += av * b3
		av = a[1]
		c10 += av * b0
		c11 += av * b1
		c12 += av * b2
		c13 += av * b3
		av = a[2]
		c20 += av * b0
		c21 += av * b1
		c22 += av * b2
		c23 += av * b3
		av = a[3]
		c30 += av * b0
		c31 += av * b1
		c32 += av * b2
		c33 += av * b3
	}
	c0[off] += c00
	c0[off+1] += c01
	c0[off+2] += c02
	c0[off+3] += c03
	c1[off] += c10
	c1[off+1] += c11
	c1[off+2] += c12
	c1[off+3] += c13
	c2[off] += c20
	c2[off+1] += c21
	c2[off+2] += c22
	c2[off+3] += c23
	c3[off] += c30
	c3[off+1] += c31
	c3[off+2] += c32
	c3[off+3] += c33
}

// vecAddImpl is the active elementwise-add kernel; amd64 init swaps in
// the AVX2 version.
var vecAddImpl = vecAddGo

// VecAdd adds src into dst elementwise (dst[i] += src[i]); len(src) must
// be at least len(dst). It is the accumulate primitive of the fused
// aggregation kernels, vectorized on capable hosts.
func VecAdd(dst, src []float32) { vecAddImpl(dst, src) }

func vecAddGo(dst, src []float32) {
	n := len(dst)
	src = src[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		dst[i] += src[i]
		dst[i+1] += src[i+1]
		dst[i+2] += src[i+2]
		dst[i+3] += src[i+3]
	}
	for ; i < n; i++ {
		dst[i] += src[i]
	}
}

// vecMulAddImpl is the active scaled-accumulate kernel; amd64 init swaps
// in the AVX2 version.
var vecMulAddImpl = vecMulAddGo

// VecMulAdd accumulates dst[i] += s·src[i] with the multiply and the add
// rounded separately (never fused into an FMA), so the result is bitwise
// identical to an interpreted Mul step followed by VecAdd. It is the
// gather-accumulate primitive of the specialized fused kernels: one call
// scales a neighbour's feature row and folds it into the row accumulator.
func VecMulAdd(dst, src []float32, s float32) { vecMulAddImpl(dst, src, s) }

// gatherMulAddImpl is the active batched gather-accumulate kernel; amd64
// init swaps in the AVX2 version.
var gatherMulAddImpl = gatherMulAddGo

// GatherMulAdd folds a block of scaled rows into acc: for each edge e,
// acc[j] += scale[e]·src[idx[e]·len(acc)+j], edges in slice order, the
// multiply and add rounded separately per element — bitwise identical to
// one VecMulAdd call per edge. The AVX2 backend (row widths 8 and 16)
// keeps acc resident in registers across the whole block and prefetches
// upcoming rows, overlapping the cold neighbour gathers that dominate
// the per-edge form.
func GatherMulAdd(acc, src []float32, idx []int32, scale []float32) {
	if len(idx) == 0 {
		return
	}
	gatherMulAddImpl(acc, src, idx, scale)
}

func gatherMulAddGo(acc, src []float32, idx []int32, scale []float32) {
	w := len(acc)
	for e, ix := range idx {
		base := int(ix) * w
		vecMulAddImpl(acc, src[base:base+w], scale[e])
	}
}

// gemvAddImpl / gemvMulAddImpl are the active per-edge transform-
// accumulate kernels; amd64 init swaps in the AVX2 versions.
var (
	gemvAddImpl    = gemvAddGo
	gemvMulAddImpl = gemvMulAddGo
)

// GemvAdd folds a typed transform into acc: acc[o] += Σ_i x[i]·w[i·dout+o]
// with dout = len(acc), the per-o sums built from zero in i order (the
// row-axpy form of the interpreter's per-output dot products) and the
// fold rounded like a VecAdd. tmp must be a scratch row of len(acc); the
// portable path stages the transform there, the AVX2 dout=16 path keeps
// it in registers and leaves tmp untouched.
func GemvAdd(acc, tmp, w, x []float32) { gemvAddImpl(acc, tmp, w, x) }

// GemvMulAdd is GemvAdd with the transform output scaled by s before the
// fold — one extra rounding, exactly an interpreted Mul step followed by
// the accumulate.
func GemvMulAdd(acc, tmp, w, x []float32, s float32) { gemvMulAddImpl(acc, tmp, w, x, s) }

func gemvAddGo(acc, tmp, w, x []float32) {
	dout := len(acc)
	tmp = tmp[:dout]
	for j := range tmp {
		tmp[j] = 0
	}
	for i, xv := range x {
		vecMulAddImpl(tmp, w[i*dout:(i+1)*dout], xv)
	}
	vecAddImpl(acc, tmp)
}

func gemvMulAddGo(acc, tmp, w, x []float32, s float32) {
	dout := len(acc)
	tmp = tmp[:dout]
	for j := range tmp {
		tmp[j] = 0
	}
	for i, xv := range x {
		vecMulAddImpl(tmp, w[i*dout:(i+1)*dout], xv)
	}
	vecMulAddImpl(acc, tmp, s)
}

func vecMulAddGo(dst, src []float32, s float32) {
	n := len(dst)
	src = src[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		// Assigning each product to a float32 local forces the
		// intermediate rounding the spec would otherwise let the
		// compiler fuse away.
		t0 := s * src[i]
		t1 := s * src[i+1]
		t2 := s * src[i+2]
		t3 := s * src[i+3]
		dst[i] += t0
		dst[i+1] += t1
		dst[i+2] += t2
		dst[i+3] += t3
	}
	for ; i < n; i++ {
		t := s * src[i]
		dst[i] += t
	}
}

package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randMat builds a small random matrix from a quick-provided seed.
func randMat(seed int64, r, c int) *Tensor {
	rng := rand.New(rand.NewSource(seed))
	return Randn(rng, 1, r, c)
}

func qcfg() *quick.Config {
	return &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(99))}
}

func dims(a, b uint8) (int, int) { return int(a%7) + 1, int(b%7) + 1 }

func TestQuickAddCommutative(t *testing.T) {
	f := func(seed int64, r, c uint8) bool {
		m, n := dims(r, c)
		a, b := randMat(seed, m, n), randMat(seed+1, m, n)
		return AllClose(Add(a, b), Add(b, a), 1e-6)
	}
	if err := quick.Check(f, qcfg()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMulDistributesOverAdd(t *testing.T) {
	f := func(seed int64, r, c uint8) bool {
		m, n := dims(r, c)
		a, b, cc := randMat(seed, m, n), randMat(seed+1, m, n), randMat(seed+2, m, n)
		lhs := Mul(a, Add(b, cc))
		rhs := Add(Mul(a, b), Mul(a, cc))
		return AllClose(lhs, rhs, 1e-4)
	}
	if err := quick.Check(f, qcfg()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTransposeInvolution(t *testing.T) {
	f := func(seed int64, r, c uint8) bool {
		m, n := dims(r, c)
		a := randMat(seed, m, n)
		return AllClose(Transpose(Transpose(a)), a, 0)
	}
	if err := quick.Check(f, qcfg()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMatMulTransposeIdentity(t *testing.T) {
	// (A B)ᵀ = Bᵀ Aᵀ
	f := func(seed int64, r, k, c uint8) bool {
		m := int(r%5) + 1
		p := int(k%5) + 1
		n := int(c%5) + 1
		a, b := randMat(seed, m, p), randMat(seed+1, p, n)
		lhs := Transpose(MatMul(a, b))
		rhs := MatMul(Transpose(b), Transpose(a))
		return AllClose(lhs, rhs, 1e-4)
	}
	if err := quick.Check(f, qcfg()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSumRowsConsistentWithSum(t *testing.T) {
	f := func(seed int64, r, c uint8) bool {
		m, n := dims(r, c)
		a := randMat(seed, m, n)
		diff := float64(Sum(SumRows(a)) - Sum(a))
		if diff < 0 {
			diff = -diff
		}
		return diff < 1e-3
	}
	if err := quick.Check(f, qcfg()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickGatherScatterAdjoint(t *testing.T) {
	// <Gather(m, idx), g> == <m, ScatterAdd(0, g, idx)> — the adjoint identity
	// that makes scatter-add the correct backward of gather.
	f := func(seed int64, r, c, nIdx uint8) bool {
		m, n := dims(r, c)
		k := int(nIdx%9) + 1
		rng := rand.New(rand.NewSource(seed))
		mat := Randn(rng, 1, m, n)
		g := Randn(rng, 1, k, n)
		idx := make([]int32, k)
		for i := range idx {
			idx[i] = int32(rng.Intn(m))
		}
		gath := GatherRows(mat, idx)
		var lhs float32
		for i := 0; i < gath.Size(); i++ {
			lhs += gath.At1(i) * g.At1(i)
		}
		scat := New(m, n)
		ScatterAddRows(scat, g, idx)
		var rhs float32
		for i := 0; i < scat.Size(); i++ {
			rhs += scat.At1(i) * mat.At1(i)
		}
		d := float64(lhs - rhs)
		if d < 0 {
			d = -d
		}
		return d < 1e-2
	}
	if err := quick.Check(f, qcfg()); err != nil {
		t.Fatal(err)
	}
}

// primeDims maps quick-provided bytes onto awkward (odd/prime) sizes,
// including dims smaller than one register tile and spans crossing the
// gemmKC block boundary.
var gemmQuickDims = []int{1, 2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 53, 67}

func TestQuickBlockedGemmMatchesRef(t *testing.T) {
	// Blocked GEMM (both microkernels, all three transpose variants)
	// matches the naive reference within 4 ulps, measured at the scale of
	// the absolute-value product Σ|a·b| which bounds every partial sum in
	// any accumulation order.
	f := func(seed int64, mi, ki, ni uint8) bool {
		m := gemmQuickDims[int(mi)%len(gemmQuickDims)]
		k := gemmQuickDims[int(ki)%len(gemmQuickDims)]
		n := gemmQuickDims[int(ni)%len(gemmQuickDims)]
		a, b := randMat(seed, m, k), randMat(seed+1, k, n)
		at, bt := Transpose(a), Transpose(b)
		want := RefMatMul(a, b)
		scale := RefMatMul(absData(a), absData(b))
		within := func(got *Tensor) bool {
			for i := range want.data {
				d := got.data[i] - want.data[i]
				if d < 0 {
					d = -d
				}
				if d > 4*ulpAt(scale.data[i]) {
					return false
				}
			}
			return true
		}
		kernels := []struct {
			micro microFn
			nr    int
		}{{mk4x8go, 8}, {gemmMicro, gemmNR}}
		for _, kr := range kernels {
			got := New(m, n)
			gemmWith(kr.micro, kr.nr, got.data, a.data, b.data, m, k, n, false, false, true)
			if !within(got) {
				return false
			}
			got = New(m, n)
			gemmWith(kr.micro, kr.nr, got.data, a.data, bt.data, m, k, n, false, true, true)
			if !within(got) {
				return false
			}
			got = New(m, n)
			gemmWith(kr.micro, kr.nr, got.data, at.data, b.data, m, k, n, true, false, true)
			if !within(got) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, qcfg()); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSoftmaxRowsSumToOne(t *testing.T) {
	f := func(seed int64, r, c uint8) bool {
		m, n := dims(r, c)
		a := randMat(seed, m, n)
		sm := SoftmaxRows(a)
		for i := 0; i < m; i++ {
			var s float64
			for _, v := range sm.Row(i) {
				if v < 0 {
					return false
				}
				s += float64(v)
			}
			if s < 0.999 || s > 1.001 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, qcfg()); err != nil {
		t.Fatal(err)
	}
}

package tensor

import "sync"

// Pool is a size-bucketed free list of tensor storage. The execution
// runtime returns eager-freed intermediates (§5.3) here instead of
// dropping them for the GC, so a steady-state training step reuses the
// same buffers every iteration.
//
// Buckets are keyed by exact element count: GNN training touches a small
// fixed set of shapes ([N,d], [M,d], parameter shapes), so exact-size
// matching hits on every steady-state iteration without wasting memory
// on rounding.
type Pool struct {
	mu      sync.Mutex
	buckets map[int][][]float32

	// hits/misses are served-from-pool vs freshly-allocated Get counts,
	// exposed for tests and diagnostics.
	hits, misses int64
}

// perBucketCap bounds each bucket so a burst of frees (e.g. one giant
// validation batch) cannot pin unbounded memory.
const perBucketCap = 32

// NewPool creates an empty pool.
func NewPool() *Pool {
	return &Pool{buckets: map[int][][]float32{}}
}

// Get returns a zeroed tensor of the given shape, reusing pooled storage
// when a buffer of the exact element count is available. The returned
// tensor is indistinguishable from New(shape...).
func (p *Pool) Get(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		n *= s
	}
	p.mu.Lock()
	bucket := p.buckets[n]
	var data []float32
	if len(bucket) > 0 {
		data = bucket[len(bucket)-1]
		p.buckets[n] = bucket[:len(bucket)-1]
		p.hits++
	} else {
		p.misses++
	}
	p.mu.Unlock()
	if data == nil {
		return New(shape...)
	}
	for i := range data {
		data[i] = 0
	}
	return FromSlice(data, shape...)
}

// Put returns t's storage to the pool. The caller must not use t (or any
// view of its data) afterwards: the buffer will be handed out by a
// future Get. Nil tensors and empty tensors are ignored.
func (p *Pool) Put(t *Tensor) {
	if t == nil || len(t.data) == 0 {
		return
	}
	n := len(t.data)
	p.mu.Lock()
	if len(p.buckets[n]) < perBucketCap {
		p.buckets[n] = append(p.buckets[n], t.data[:n:n])
	}
	p.mu.Unlock()
}

// Stats returns the pool's lifetime hit and miss counts.
func (p *Pool) Stats() (hits, misses int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.misses
}

// Package tensor implements dense float32 tensors and the numeric
// primitives required by the Seastar reproduction: matrix products,
// broadcast arithmetic, activations, reductions, and row gather/scatter.
//
// Tensors are row-major. Shape errors are programming errors and panic,
// matching the convention of Go numeric libraries; data-dependent errors
// (e.g. allocation failures in the device simulator) are returned as error
// values by the packages that own them.
package tensor

import (
	"fmt"
	"strings"
)

// Tensor is a dense row-major float32 tensor.
type Tensor struct {
	shape []int
	data  []float32
}

// New allocates a zero-filled tensor of the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float32, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); len(data) must equal the shape volume.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v needs %d elements, got %d", shape, n, len(data)))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}
}

// Scalar returns a 1-element tensor holding v.
func Scalar(v float32) *Tensor { return FromSlice([]float32{v}, 1) }

// Zeros is an alias of New, for readability at call sites.
func Zeros(shape ...int) *Tensor { return New(shape...) }

// Ones allocates a tensor filled with 1.
func Ones(shape ...int) *Tensor { return Full(1, shape...) }

// Full allocates a tensor filled with v.
func Full(v float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Shape returns the tensor's shape. The caller must not mutate it.
func (t *Tensor) Shape() []int { return t.shape }

// Dims returns the number of dimensions.
func (t *Tensor) Dims() int { return len(t.shape) }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.data) }

// Dim returns the length of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rows returns the size of the first dimension of a matrix.
func (t *Tensor) Rows() int {
	t.check2d()
	return t.shape[0]
}

// Cols returns the size of the second dimension of a matrix.
func (t *Tensor) Cols() int {
	t.check2d()
	return t.shape[1]
}

func (t *Tensor) check2d() {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: want 2-D, have shape %v", t.shape))
	}
}

// Data returns the backing slice. Mutations are visible to the tensor.
func (t *Tensor) Data() []float32 { return t.data }

// At returns the element at (i, j) of a matrix.
func (t *Tensor) At(i, j int) float32 {
	t.check2d()
	return t.data[i*t.shape[1]+j]
}

// Set stores v at (i, j) of a matrix.
func (t *Tensor) Set(i, j int, v float32) {
	t.check2d()
	t.data[i*t.shape[1]+j] = v
}

// At1 returns element i of a vector (any shape, linear index).
func (t *Tensor) At1(i int) float32 { return t.data[i] }

// Set1 stores v at linear index i.
func (t *Tensor) Set1(i int, v float32) { t.data[i] = v }

// Row returns the i-th row of a matrix as a slice view (not a copy).
func (t *Tensor) Row(i int) []float32 {
	t.check2d()
	c := t.shape[1]
	return t.data[i*c : (i+1)*c]
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	d := make([]float32, len(t.data))
	copy(d, t.data)
	return FromSlice(d, t.shape...)
}

// CopyFrom copies src's data into t. Shapes must match in volume.
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(t.data) != len(src.data) {
		panic(fmt.Sprintf("tensor: CopyFrom size mismatch %v vs %v", t.shape, src.shape))
	}
	copy(t.data, src.data)
}

// Reshape returns a new tensor sharing data with t but with a new shape of
// identical volume.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v to %v", t.shape, shape))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: t.data}
}

// Zero fills the tensor with zeros in place.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Fill sets every element to v in place.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// SameShape reports whether a and b have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.shape) != len(b.shape) {
		return false
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	return true
}

// String renders small tensors fully and large ones abbreviated.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v[", t.shape)
	n := len(t.data)
	show := n
	if show > 8 {
		show = 8
	}
	for i := 0; i < show; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%.4g", t.data[i])
	}
	if show < n {
		fmt.Fprintf(&b, ", ... (%d total)", n)
	}
	b.WriteString("]")
	return b.String()
}

//go:build amd64

package tensor

// AVX2+FMA backend for the blocked GEMM driver: a 4×16 microkernel whose
// accumulator tile lives in eight YMM registers, plus the vectorized
// elementwise add used by the fused aggregation kernels. Selected at
// init after a CPUID/XGETBV check; hosts without AVX2+FMA (or non-amd64
// builds) keep the portable Go kernels.

// cpuidRaw executes CPUID with the given leaf/subleaf.
func cpuidRaw(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0, the OS-enabled extended-state mask.
func xgetbv0() (eax, edx uint32)

// fmaKernel4x16 computes C[4][16] += Apanel[kc][4] · Bpanel[kc][16].
//
//go:noescape
func fmaKernel4x16(kc int64, ap, bp, c0, c1, c2, c3 *float32)

// vecAddAsm adds n floats of src into dst; n must be a multiple of 8.
//
//go:noescape
func vecAddAsm(dst, src *float32, n int64)

func haveAVX2FMA() bool {
	const (
		fmaBit     = 1 << 12 // leaf 1 ECX
		osxsaveBit = 1 << 27 // leaf 1 ECX
		avx2Bit    = 1 << 5  // leaf 7 EBX
	)
	maxLeaf, _, _, _ := cpuidRaw(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, c, _ := cpuidRaw(1, 0)
	if c&fmaBit == 0 || c&osxsaveBit == 0 {
		return false
	}
	_, b, _, _ := cpuidRaw(7, 0)
	if b&avx2Bit == 0 {
		return false
	}
	// The OS must save XMM and YMM state across context switches.
	xcr0, _ := xgetbv0()
	return xcr0&6 == 6
}

func init() {
	if !haveAVX2FMA() {
		return
	}
	gemmNR = 16
	gemmMicro = mkFMA4x16
	gemmName = "avx2-fma-4x16"
	vecAddImpl = vecAddFMA
}

// mkFMA4x16 adapts the assembly kernel to the microFn signature.
func mkFMA4x16(kc int, ap, bp []float32, c0, c1, c2, c3 []float32) {
	fmaKernel4x16(int64(kc), &ap[0], &bp[0], &c0[0], &c1[0], &c2[0], &c3[0])
}

func vecAddFMA(dst, src []float32) {
	n := len(dst) &^ 7
	if n > 0 {
		vecAddAsm(&dst[0], &src[0], int64(n))
	}
	for i := n; i < len(dst); i++ {
		dst[i] += src[i]
	}
}

//go:build amd64

package tensor

// AVX2+FMA backend for the blocked GEMM driver: a 4×16 microkernel whose
// accumulator tile lives in eight YMM registers, plus the vectorized
// elementwise add used by the fused aggregation kernels. Selected at
// init after a CPUID/XGETBV check; hosts without AVX2+FMA (or non-amd64
// builds) keep the portable Go kernels.

// cpuidRaw executes CPUID with the given leaf/subleaf.
func cpuidRaw(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0, the OS-enabled extended-state mask.
func xgetbv0() (eax, edx uint32)

// fmaKernel4x16 computes C[4][16] += Apanel[kc][4] · Bpanel[kc][16].
//
//go:noescape
func fmaKernel4x16(kc int64, ap, bp, c0, c1, c2, c3 *float32)

// vecAddAsm adds n floats of src into dst; n must be a multiple of 8.
//
//go:noescape
func vecAddAsm(dst, src *float32, n int64)

// vecMulAddAsm accumulates dst[i] += s·src[i] for i < n with VMULPS
// followed by VADDPS — two separately rounded operations, deliberately
// not VFMADD: the specialized kernels require bitwise equality with the
// interpreter's distinct Mul and accumulate steps. n must be a multiple
// of 8.
//
//go:noescape
func vecMulAddAsm(dst, src *float32, s float32, n int64)

// gatherMulAddAsm16 runs the width-16 batched gather-accumulate: the
// accumulator pair stays in registers across all n edges and upcoming
// rows are software-prefetched. Per-edge rounding is identical to one
// vecMulAddAsm call per edge.
//
//go:noescape
func gatherMulAddAsm16(acc, src *float32, idx *int32, scale *float32, n int64)

// gatherMulAddAsm8 is gatherMulAddAsm16 at row width 8.
//
//go:noescape
func gatherMulAddAsm8(acc, src *float32, idx *int32, scale *float32, n int64)

// gemvAddAsm16 computes acc[o] += Σ_i x[i]·w[i*16+o] with the transform
// sums built in registers from zero in i order (row-axpy), bitwise equal
// to the zero-scratch + per-row VecMulAdd sequence.
//
//go:noescape
func gemvAddAsm16(acc, w, x *float32, din int64)

// gemvMulAddAsm16 is gemvAddAsm16 with the transform output scaled by s
// (one extra rounding) before the fold into acc.
//
//go:noescape
func gemvMulAddAsm16(acc, w, x *float32, din int64, s float32)

// prefetchT0 hints p's cache line into L1.
//
//go:noescape
func prefetchT0(p *float32)

func haveAVX2FMA() bool {
	const (
		fmaBit     = 1 << 12 // leaf 1 ECX
		osxsaveBit = 1 << 27 // leaf 1 ECX
		avx2Bit    = 1 << 5  // leaf 7 EBX
	)
	maxLeaf, _, _, _ := cpuidRaw(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, c, _ := cpuidRaw(1, 0)
	if c&fmaBit == 0 || c&osxsaveBit == 0 {
		return false
	}
	_, b, _, _ := cpuidRaw(7, 0)
	if b&avx2Bit == 0 {
		return false
	}
	// The OS must save XMM and YMM state across context switches.
	xcr0, _ := xgetbv0()
	return xcr0&6 == 6
}

func init() {
	if !haveAVX2FMA() {
		return
	}
	simdAvailable = true
	simdInstall = func(on bool) {
		if on {
			gemmNR, gemmMicro, gemmName = 16, microFn(mkFMA4x16), "avx2-fma-4x16"
			vecAddImpl = vecAddFMA
			vecMulAddImpl = vecMulAddAVX
			gatherMulAddImpl = gatherMulAddAVX
			gemvAddImpl = gemvAddAVX
			gemvMulAddImpl = gemvMulAddAVX
		} else {
			gemmNR, gemmMicro, gemmName = 8, microFn(mk4x8go), "go-4x8"
			vecAddImpl = vecAddGo
			vecMulAddImpl = vecMulAddGo
			gatherMulAddImpl = gatherMulAddGo
			gemvAddImpl = gemvAddGo
			gemvMulAddImpl = gemvMulAddGo
		}
	}
	if !simdDisabledByEnv() {
		SetSIMD(true)
	}
}

// mkFMA4x16 adapts the assembly kernel to the microFn signature.
func mkFMA4x16(kc int, ap, bp []float32, c0, c1, c2, c3 []float32) {
	fmaKernel4x16(int64(kc), &ap[0], &bp[0], &c0[0], &c1[0], &c2[0], &c3[0])
}

func vecAddFMA(dst, src []float32) {
	n := len(dst) &^ 7
	if n > 0 {
		vecAddAsm(&dst[0], &src[0], int64(n))
	}
	for i := n; i < len(dst); i++ {
		dst[i] += src[i]
	}
}

func vecMulAddAVX(dst, src []float32, s float32) {
	n := len(dst) &^ 7
	if n > 0 {
		vecMulAddAsm(&dst[0], &src[0], s, int64(n))
	}
	for i := n; i < len(dst); i++ {
		t := s * src[i]
		dst[i] += t
	}
}

func gatherMulAddAVX(acc, src []float32, idx []int32, scale []float32) {
	switch len(acc) {
	case 16:
		gatherMulAddAsm16(&acc[0], &src[0], &idx[0], &scale[0], int64(len(idx)))
	case 8:
		gatherMulAddAsm8(&acc[0], &src[0], &idx[0], &scale[0], int64(len(idx)))
	default:
		gatherMulAddGo(acc, src, idx, scale)
	}
}

func gemvAddAVX(acc, tmp, w, x []float32) {
	if len(acc) == 16 && len(x) > 0 {
		gemvAddAsm16(&acc[0], &w[0], &x[0], int64(len(x)))
		return
	}
	gemvAddGo(acc, tmp, w, x)
}

func gemvMulAddAVX(acc, tmp, w, x []float32, s float32) {
	if len(acc) == 16 && len(x) > 0 {
		gemvMulAddAsm16(&acc[0], &w[0], &x[0], int64(len(x)), s)
		return
	}
	gemvMulAddGo(acc, tmp, w, x, s)
}

// Prefetch hints row's first and last cache lines into L1. It is a pure
// scheduling hint — no architectural effect — so it stays active even
// when SetSIMD disables the arithmetic vector kernels.
func Prefetch(row []float32) {
	if n := len(row); n > 0 {
		prefetchT0(&row[0])
		if n >= 16 {
			prefetchT0(&row[n-1])
		}
	}
}

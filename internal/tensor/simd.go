package tensor

import "os"

// SIMD backend selection state. The architecture init (gemm_amd64.go)
// fills simdInstall and simdAvailable when the host supports the vector
// kernels; portable-only builds leave both zero so SetSIMD is a no-op.
//
// The SEASTAR_NO_SIMD environment variable force-disables the vector
// kernels at process start (any value but "", "0", "false"), which is
// how CI keeps the portable fallback path built and tested on hosts
// that would otherwise always select the assembly kernels.
var (
	simdAvailable bool
	simdOn        bool
	simdInstall   func(on bool)
)

// simdDisabledByEnv reports whether SEASTAR_NO_SIMD requests the
// portable kernels.
func simdDisabledByEnv() bool {
	switch os.Getenv("SEASTAR_NO_SIMD") {
	case "", "0", "false":
		return false
	}
	return true
}

// SetSIMD swaps between the portable and vector kernel implementations
// and returns the previous state. Enabling is a no-op on hosts without
// vector support. It is a test and benchmark hook — both backends are
// bitwise-equal by construction — and must not be called concurrently
// with running kernels.
func SetSIMD(enable bool) bool {
	prev := simdOn
	if simdInstall == nil || (enable && !simdAvailable) {
		return prev
	}
	simdInstall(enable)
	simdOn = enable
	return prev
}

// SIMDEnabled reports whether the vector kernels are active.
func SIMDEnabled() bool { return simdOn }

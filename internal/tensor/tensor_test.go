package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewZeroFilled(t *testing.T) {
	a := New(3, 4)
	if a.Rows() != 3 || a.Cols() != 4 || a.Size() != 12 {
		t.Fatalf("shape: got %v size %d", a.Shape(), a.Size())
	}
	for i := 0; i < a.Size(); i++ {
		if a.At1(i) != 0 {
			t.Fatalf("element %d not zero", i)
		}
	}
}

func TestFromSliceAliases(t *testing.T) {
	d := []float32{1, 2, 3, 4}
	a := FromSlice(d, 2, 2)
	d[0] = 42
	if a.At(0, 0) != 42 {
		t.Fatal("FromSlice must alias the input slice")
	}
}

func TestFromSlicePanicsOnVolumeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestAtSetRow(t *testing.T) {
	a := New(2, 3)
	a.Set(1, 2, 7)
	if a.At(1, 2) != 7 {
		t.Fatal("Set/At roundtrip failed")
	}
	r := a.Row(1)
	r[0] = 5
	if a.At(1, 0) != 5 {
		t.Fatal("Row must be a view")
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := a.Clone()
	b.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone must copy data")
	}
}

func TestReshapeSharesData(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := a.Reshape(3, 2)
	b.Set(0, 1, 42)
	if a.At(0, 1) != 42 {
		t.Fatal("Reshape must share data")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad reshape")
		}
	}()
	a.Reshape(4, 2)
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float32{4, 3, 2, 1}, 2, 2)
	if got := Add(a, b); !AllClose(got, Full(5, 2, 2), 1e-6) {
		t.Fatalf("Add: %v", got)
	}
	if got := Sub(a, b); got.At(0, 0) != -3 || got.At(1, 1) != 3 {
		t.Fatalf("Sub: %v", got)
	}
	if got := Mul(a, b); got.At(0, 0) != 4 || got.At(0, 1) != 6 {
		t.Fatalf("Mul: %v", got)
	}
	if got := Div(a, b); math.Abs(float64(got.At(0, 1))-2.0/3.0) > 1e-6 {
		t.Fatalf("Div: %v", got)
	}
}

func TestElementwiseShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Add(New(2, 2), New(2, 3))
}

func TestBroadcastRowAndCol(t *testing.T) {
	m := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	v := FromSlice([]float32{10, 20, 30}, 3)
	got := AddRow(m, v)
	want := FromSlice([]float32{11, 22, 33, 14, 25, 36}, 2, 3)
	if !AllClose(got, want, 1e-6) {
		t.Fatalf("AddRow: %v", got)
	}
	got = MulRow(m, v)
	if got.At(1, 2) != 180 {
		t.Fatalf("MulRow: %v", got)
	}
	cv := FromSlice([]float32{2, 10}, 2)
	got = MulColVec(m, cv)
	if got.At(0, 2) != 6 || got.At(1, 0) != 40 {
		t.Fatalf("MulColVec: %v", got)
	}
}

func TestActivations(t *testing.T) {
	a := FromSlice([]float32{-2, 0, 2}, 3)
	lr := LeakyReLU(a, 0.1)
	if math.Abs(float64(lr.At1(0))+0.2) > 1e-6 || lr.At1(2) != 2 {
		t.Fatalf("LeakyReLU: %v", lr)
	}
	re := ReLU(a)
	if re.At1(0) != 0 || re.At1(2) != 2 {
		t.Fatalf("ReLU: %v", re)
	}
	sg := Sigmoid(FromSlice([]float32{0}, 1))
	if math.Abs(float64(sg.At1(0))-0.5) > 1e-6 {
		t.Fatalf("Sigmoid(0): %v", sg)
	}
	ex := Exp(FromSlice([]float32{1}, 1))
	if math.Abs(float64(ex.At1(0))-math.E) > 1e-5 {
		t.Fatalf("Exp(1): %v", ex)
	}
}

func TestTranspose(t *testing.T) {
	m := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	got := Transpose(m)
	if got.Rows() != 3 || got.Cols() != 2 || got.At(2, 1) != 6 || got.At(0, 1) != 4 {
		t.Fatalf("Transpose: %v", got)
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float32{5, 6, 7, 8}, 2, 2)
	got := MatMul(a, b)
	want := FromSlice([]float32{19, 22, 43, 50}, 2, 2)
	if !AllClose(got, want, 1e-6) {
		t.Fatalf("MatMul: %v", got)
	}
}

func TestMatMulVariantsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := Randn(rng, 1, 7, 5)
	b := Randn(rng, 1, 5, 9)
	ref := MatMul(a, b)
	if got := MatMulT(a, Transpose(b)); !AllClose(got, ref, 1e-4) {
		t.Fatal("MatMulT(a, bᵀ) != a@b")
	}
	if got := TMatMul(Transpose(a), b); !AllClose(got, ref, 1e-4) {
		t.Fatal("TMatMul(aᵀ, b) != a@b")
	}
}

func TestMatMulParallelMatchesSerial(t *testing.T) {
	// Large enough to trigger the parallel path.
	rng := rand.New(rand.NewSource(2))
	a := Randn(rng, 1, 300, 40)
	b := Randn(rng, 1, 40, 30)
	got := MatMul(a, b)
	// Serial reference.
	want := New(300, 30)
	for i := 0; i < 300; i++ {
		for j := 0; j < 30; j++ {
			var s float32
			for p := 0; p < 40; p++ {
				s += a.At(i, p) * b.At(p, j)
			}
			want.Set(i, j, s)
		}
	}
	if !AllClose(got, want, 1e-3) {
		t.Fatalf("parallel MatMul diverges: max diff %g", MaxAbsDiff(got, want))
	}
}

func TestMatVec(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	v := FromSlice([]float32{1, 1, 1}, 3)
	got := MatVec(a, v)
	if got.At1(0) != 6 || got.At1(1) != 15 {
		t.Fatalf("MatVec: %v", got)
	}
}

func TestReductions(t *testing.T) {
	m := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	if Sum(m) != 21 {
		t.Fatalf("Sum: %v", Sum(m))
	}
	if Mean(m) != 3.5 {
		t.Fatalf("Mean: %v", Mean(m))
	}
	sr := SumRows(m)
	if sr.At1(0) != 5 || sr.At1(2) != 9 {
		t.Fatalf("SumRows: %v", sr)
	}
	sc := SumCols(m)
	if sc.At1(0) != 6 || sc.At1(1) != 15 {
		t.Fatalf("SumCols: %v", sc)
	}
	if MaxElem(m) != 6 {
		t.Fatalf("MaxElem: %v", MaxElem(m))
	}
	am := ArgMaxRows(m)
	if am[0] != 2 || am[1] != 2 {
		t.Fatalf("ArgMaxRows: %v", am)
	}
}

func TestSoftmaxRows(t *testing.T) {
	m := FromSlice([]float32{1, 2, 3, 1000, 1001, 1002}, 2, 3)
	sm := SoftmaxRows(m)
	for i := 0; i < 2; i++ {
		var s float32
		for _, v := range sm.Row(i) {
			s += v
		}
		if math.Abs(float64(s)-1) > 1e-5 {
			t.Fatalf("row %d does not sum to 1: %v", i, s)
		}
	}
	// Shift invariance: both rows must be identical distributions.
	for j := 0; j < 3; j++ {
		if math.Abs(float64(sm.At(0, j))-float64(sm.At(1, j))) > 1e-5 {
			t.Fatal("softmax is not shift invariant / not stable for large inputs")
		}
	}
}

func TestLogSoftmaxRows(t *testing.T) {
	m := FromSlice([]float32{1, 2, 3}, 1, 3)
	ls := LogSoftmaxRows(m)
	sm := SoftmaxRows(m)
	for j := 0; j < 3; j++ {
		if math.Abs(float64(ls.At(0, j))-math.Log(float64(sm.At(0, j)))) > 1e-5 {
			t.Fatalf("log-softmax mismatch at %d", j)
		}
	}
}

func TestGatherScatter(t *testing.T) {
	m := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 3, 2)
	g := GatherRows(m, []int32{2, 0, 2})
	if g.At(0, 0) != 5 || g.At(1, 1) != 2 || g.At(2, 1) != 6 {
		t.Fatalf("GatherRows: %v", g)
	}
	dst := New(3, 2)
	ScatterAddRows(dst, g, []int32{0, 0, 1})
	if dst.At(0, 0) != 6 || dst.At(1, 0) != 5 || dst.At(2, 0) != 0 {
		t.Fatalf("ScatterAddRows: %v", dst)
	}
}

func TestAxpyAndScale(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	b := FromSlice([]float32{10, 20}, 2)
	AxpyInPlace(a, 0.5, b)
	if a.At1(0) != 6 || a.At1(1) != 12 {
		t.Fatalf("Axpy: %v", a)
	}
	a.ScaleInPlace(2)
	if a.At1(1) != 24 {
		t.Fatalf("Scale: %v", a)
	}
}

func TestAllCloseAndMaxAbsDiff(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	b := FromSlice([]float32{1.0001, 2}, 2)
	if !AllClose(a, b, 1e-3) {
		t.Fatal("AllClose too strict")
	}
	if AllClose(a, b, 1e-7) {
		t.Fatal("AllClose too loose")
	}
	if d := MaxAbsDiff(a, b); math.Abs(d-0.0001) > 1e-5 {
		t.Fatalf("MaxAbsDiff: %v", d)
	}
	if AllClose(a, New(3), 1) {
		t.Fatal("AllClose must reject shape mismatch")
	}
}

func TestRandomGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r := Randn(rng, 2, 1000)
	// Mean ≈ 0, std ≈ 2 within loose bounds.
	if m := float64(Mean(r)); math.Abs(m) > 0.3 {
		t.Fatalf("Randn mean too far from 0: %v", m)
	}
	u := Uniform(rng, -1, 1, 1000)
	if MaxElem(u) > 1 || -MaxElem(MulScalar(u, -1)) < -1 {
		t.Fatal("Uniform out of range")
	}
	x := XavierUniform(rng, 16, 8)
	l := float32(math.Sqrt(6.0 / 24.0))
	if MaxElem(x) > l {
		t.Fatal("Xavier out of range")
	}
	if x.Rows() != 16 || x.Cols() != 8 {
		t.Fatal("Xavier shape")
	}
}

func TestXavierPanicsOnBadFan(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	XavierUniform(rand.New(rand.NewSource(1)), 0, 4)
}

func TestStringAbbreviation(t *testing.T) {
	s := New(100).String()
	if len(s) == 0 || s[len(s)-1] != ']' {
		t.Fatalf("String: %q", s)
	}
}

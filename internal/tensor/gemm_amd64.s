//go:build amd64

#include "textflag.h"

// func cpuidRaw(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidRaw(SB), NOSPLIT, $0-24
	MOVL eaxArg+0(FP), AX
	MOVL ecxArg+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	MOVL $0, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func fmaKernel4x16(kc int64, ap, bp, c0, c1, c2, c3 *float32)
//
// C[4][16] += Apanel[kc][4] (interleaved) * Bpanel[kc][16] (packed).
// The 4x16 accumulator tile lives in Y0-Y7 (two YMM per C row); each K
// iteration loads one 16-wide B line (Y8, Y9), broadcasts the four A
// values and issues eight FMAs.
TEXT ·fmaKernel4x16(SB), NOSPLIT, $0-56
	MOVQ kc+0(FP), CX
	MOVQ ap+8(FP), AX
	MOVQ bp+16(FP), BX
	MOVQ c0+24(FP), R8
	MOVQ c1+32(FP), R9
	MOVQ c2+40(FP), R10
	MOVQ c3+48(FP), R11
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7

kloop:
	VMOVUPS      (BX), Y8
	VMOVUPS      32(BX), Y9
	VBROADCASTSS (AX), Y10
	VFMADD231PS  Y8, Y10, Y0
	VFMADD231PS  Y9, Y10, Y1
	VBROADCASTSS 4(AX), Y11
	VFMADD231PS  Y8, Y11, Y2
	VFMADD231PS  Y9, Y11, Y3
	VBROADCASTSS 8(AX), Y12
	VFMADD231PS  Y8, Y12, Y4
	VFMADD231PS  Y9, Y12, Y5
	VBROADCASTSS 12(AX), Y13
	VFMADD231PS  Y8, Y13, Y6
	VFMADD231PS  Y9, Y13, Y7
	ADDQ         $16, AX
	ADDQ         $64, BX
	DECQ         CX
	JNZ          kloop

	VMOVUPS (R8), Y8
	VADDPS  Y8, Y0, Y0
	VMOVUPS Y0, (R8)
	VMOVUPS 32(R8), Y9
	VADDPS  Y9, Y1, Y1
	VMOVUPS Y1, 32(R8)
	VMOVUPS (R9), Y10
	VADDPS  Y10, Y2, Y2
	VMOVUPS Y2, (R9)
	VMOVUPS 32(R9), Y11
	VADDPS  Y11, Y3, Y3
	VMOVUPS Y3, 32(R9)
	VMOVUPS (R10), Y8
	VADDPS  Y8, Y4, Y4
	VMOVUPS Y4, (R10)
	VMOVUPS 32(R10), Y9
	VADDPS  Y9, Y5, Y5
	VMOVUPS Y5, 32(R10)
	VMOVUPS (R11), Y10
	VADDPS  Y10, Y6, Y6
	VMOVUPS Y6, (R11)
	VMOVUPS 32(R11), Y11
	VADDPS  Y11, Y7, Y7
	VMOVUPS Y7, 32(R11)
	VZEROUPPER
	RET

// func vecMulAddAsm(dst, src *float32, s float32, n int64)
// dst[i] += s*src[i] for i < n; n > 0 and a multiple of 8.
//
// The product and the accumulate are issued as separate VMULPS/VADDPS
// instructions — never VFMADD — so every element sees the same two
// roundings as the scalar interpreter (a Mul step, then VecAdd), keeping
// the specialized kernels bitwise equal to the interpreted ones.
TEXT ·vecMulAddAsm(SB), NOSPLIT, $0-32
	MOVQ         dst+0(FP), DI
	MOVQ         src+8(FP), SI
	VBROADCASTSS s+16(FP), Y2
	MOVQ         n+24(FP), CX

mulAddLoop:
	VMOVUPS (SI), Y1
	VMULPS  Y2, Y1, Y1
	VMOVUPS (DI), Y0
	VADDPS  Y1, Y0, Y0
	VMOVUPS Y0, (DI)
	ADDQ    $32, DI
	ADDQ    $32, SI
	SUBQ    $8, CX
	JNZ     mulAddLoop
	VZEROUPPER
	RET

// func vecAddAsm(dst, src *float32, n int64)
// dst[i] += src[i] for i < n; n > 0 and a multiple of 8.
TEXT ·vecAddAsm(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX

addloop:
	VMOVUPS (DI), Y0
	VMOVUPS (SI), Y1
	VADDPS  Y1, Y0, Y0
	VMOVUPS Y0, (DI)
	ADDQ    $32, DI
	ADDQ    $32, SI
	SUBQ    $8, CX
	JNZ     addloop
	VZEROUPPER
	RET

// func gatherMulAddAsm16(acc, src *float32, idx *int32, scale *float32, n int64)
// Batched gather-accumulate at row width 16:
//
//	for e < n: acc[j] += scale[e] * src[idx[e]*16 + j]
//
// The accumulator pair lives in Y0/Y1 for the whole block, each edge is
// one VMULPS + VADDPS per half (two separate roundings, never FMA — the
// bitwise contract with the interpreted Mul step + VecAdd), and the main
// loop prefetches the row eight edges ahead so the cold neighbour
// gathers overlap instead of serializing one miss per edge.
TEXT ·gatherMulAddAsm16(SB), NOSPLIT, $0-40
	MOVQ    acc+0(FP), DI
	MOVQ    src+8(FP), SI
	MOVQ    idx+16(FP), DX
	MOVQ    scale+24(FP), BX
	MOVQ    n+32(FP), CX
	VMOVUPS (DI), Y0
	VMOVUPS 32(DI), Y1
	XORQ    R8, R8
	MOVQ    CX, R9
	SUBQ    $8, R9       // prefetch horizon: edges [0, n-8) look ahead
	CMPQ    R9, $0
	JLE     g16tail

g16main:
	MOVL         32(DX)(R8*4), R10 // idx[e+8]
	SHLQ         $6, R10
	PREFETCHT0   (SI)(R10*1)
	MOVL         (DX)(R8*4), R10   // idx[e]
	SHLQ         $6, R10
	VBROADCASTSS (BX)(R8*4), Y2
	VMOVUPS      (SI)(R10*1), Y3
	VMULPS       Y2, Y3, Y3
	VADDPS       Y3, Y0, Y0
	VMOVUPS      32(SI)(R10*1), Y4
	VMULPS       Y2, Y4, Y4
	VADDPS       Y4, Y1, Y1
	INCQ         R8
	CMPQ         R8, R9
	JLT          g16main

g16tail:
	CMPQ         R8, CX
	JGE          g16done
	MOVL         (DX)(R8*4), R10
	SHLQ         $6, R10
	VBROADCASTSS (BX)(R8*4), Y2
	VMOVUPS      (SI)(R10*1), Y3
	VMULPS       Y2, Y3, Y3
	VADDPS       Y3, Y0, Y0
	VMOVUPS      32(SI)(R10*1), Y4
	VMULPS       Y2, Y4, Y4
	VADDPS       Y4, Y1, Y1
	INCQ         R8
	JMP          g16tail

g16done:
	VMOVUPS Y0, (DI)
	VMOVUPS Y1, 32(DI)
	VZEROUPPER
	RET

// func gatherMulAddAsm8(acc, src *float32, idx *int32, scale *float32, n int64)
// gatherMulAddAsm16 at row width 8: one YMM accumulator.
TEXT ·gatherMulAddAsm8(SB), NOSPLIT, $0-40
	MOVQ    acc+0(FP), DI
	MOVQ    src+8(FP), SI
	MOVQ    idx+16(FP), DX
	MOVQ    scale+24(FP), BX
	MOVQ    n+32(FP), CX
	VMOVUPS (DI), Y0
	XORQ    R8, R8
	MOVQ    CX, R9
	SUBQ    $8, R9
	CMPQ    R9, $0
	JLE     g8tail

g8main:
	MOVL         32(DX)(R8*4), R10
	SHLQ         $5, R10
	PREFETCHT0   (SI)(R10*1)
	MOVL         (DX)(R8*4), R10
	SHLQ         $5, R10
	VBROADCASTSS (BX)(R8*4), Y2
	VMOVUPS      (SI)(R10*1), Y3
	VMULPS       Y2, Y3, Y3
	VADDPS       Y3, Y0, Y0
	INCQ         R8
	CMPQ         R8, R9
	JLT          g8main

g8tail:
	CMPQ         R8, CX
	JGE          g8done
	MOVL         (DX)(R8*4), R10
	SHLQ         $5, R10
	VBROADCASTSS (BX)(R8*4), Y2
	VMOVUPS      (SI)(R10*1), Y3
	VMULPS       Y2, Y3, Y3
	VADDPS       Y3, Y0, Y0
	INCQ         R8
	JMP          g8tail

g8done:
	VMOVUPS Y0, (DI)
	VZEROUPPER
	RET

// func gemvAddAsm16(acc, w, x *float32, din int64)
// acc[o] += sum_i x[i]*w[i*16+o] for o < 16, with the per-o sums built in
// Y0/Y1 from zero in i order — one VMULPS + VADDPS per row, the exact
// rounding sequence of the interpreter's per-output dot products — and
// folded into acc with a final VADDPS (the accumulate step).
TEXT ·gemvAddAsm16(SB), NOSPLIT, $0-32
	MOVQ   acc+0(FP), DI
	MOVQ   w+8(FP), BX
	MOVQ   x+16(FP), SI
	MOVQ   din+24(FP), CX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	TESTQ  CX, CX
	JZ     gvadone

gvaloop:
	VBROADCASTSS (SI), Y2
	VMOVUPS      (BX), Y3
	VMULPS       Y2, Y3, Y3
	VADDPS       Y3, Y0, Y0
	VMOVUPS      32(BX), Y4
	VMULPS       Y2, Y4, Y4
	VADDPS       Y4, Y1, Y1
	ADDQ         $4, SI
	ADDQ         $64, BX
	DECQ         CX
	JNZ          gvaloop

gvadone:
	VMOVUPS (DI), Y5
	VADDPS  Y0, Y5, Y5
	VMOVUPS Y5, (DI)
	VMOVUPS 32(DI), Y6
	VADDPS  Y1, Y6, Y6
	VMOVUPS Y6, 32(DI)
	VZEROUPPER
	RET

// func gemvMulAddAsm16(acc, w, x *float32, din int64, s float32)
// gemvAddAsm16 with the transform output scaled before the fold:
// acc[o] += s * (sum_i x[i]*w[i*16+o]) — the scale multiply is one extra
// VMULPS rounding, matching an interpreted Mul step, then VecMulAdd's
// separate add rounding into acc.
TEXT ·gemvMulAddAsm16(SB), NOSPLIT, $0-36
	MOVQ   acc+0(FP), DI
	MOVQ   w+8(FP), BX
	MOVQ   x+16(FP), SI
	MOVQ   din+24(FP), CX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	TESTQ  CX, CX
	JZ     gvmdone

gvmloop:
	VBROADCASTSS (SI), Y2
	VMOVUPS      (BX), Y3
	VMULPS       Y2, Y3, Y3
	VADDPS       Y3, Y0, Y0
	VMOVUPS      32(BX), Y4
	VMULPS       Y2, Y4, Y4
	VADDPS       Y4, Y1, Y1
	ADDQ         $4, SI
	ADDQ         $64, BX
	DECQ         CX
	JNZ          gvmloop

gvmdone:
	VBROADCASTSS s+32(FP), Y2
	VMULPS       Y2, Y0, Y0
	VMULPS       Y2, Y1, Y1
	VMOVUPS      (DI), Y5
	VADDPS       Y0, Y5, Y5
	VMOVUPS      Y5, (DI)
	VMOVUPS      32(DI), Y6
	VADDPS       Y1, Y6, Y6
	VMOVUPS      Y6, 32(DI)
	VZEROUPPER
	RET

// func prefetchT0(p *float32)
// Hints the cache line of p into L1; a pure scheduling hint with no
// architectural effect, so it stays active even with SIMD disabled.
TEXT ·prefetchT0(SB), NOSPLIT, $0-8
	MOVQ       p+0(FP), AX
	PREFETCHT0 (AX)
	RET

//go:build amd64

#include "textflag.h"

// func cpuidRaw(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidRaw(SB), NOSPLIT, $0-24
	MOVL eaxArg+0(FP), AX
	MOVL ecxArg+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	MOVL $0, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func fmaKernel4x16(kc int64, ap, bp, c0, c1, c2, c3 *float32)
//
// C[4][16] += Apanel[kc][4] (interleaved) * Bpanel[kc][16] (packed).
// The 4x16 accumulator tile lives in Y0-Y7 (two YMM per C row); each K
// iteration loads one 16-wide B line (Y8, Y9), broadcasts the four A
// values and issues eight FMAs.
TEXT ·fmaKernel4x16(SB), NOSPLIT, $0-56
	MOVQ kc+0(FP), CX
	MOVQ ap+8(FP), AX
	MOVQ bp+16(FP), BX
	MOVQ c0+24(FP), R8
	MOVQ c1+32(FP), R9
	MOVQ c2+40(FP), R10
	MOVQ c3+48(FP), R11
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7

kloop:
	VMOVUPS      (BX), Y8
	VMOVUPS      32(BX), Y9
	VBROADCASTSS (AX), Y10
	VFMADD231PS  Y8, Y10, Y0
	VFMADD231PS  Y9, Y10, Y1
	VBROADCASTSS 4(AX), Y11
	VFMADD231PS  Y8, Y11, Y2
	VFMADD231PS  Y9, Y11, Y3
	VBROADCASTSS 8(AX), Y12
	VFMADD231PS  Y8, Y12, Y4
	VFMADD231PS  Y9, Y12, Y5
	VBROADCASTSS 12(AX), Y13
	VFMADD231PS  Y8, Y13, Y6
	VFMADD231PS  Y9, Y13, Y7
	ADDQ         $16, AX
	ADDQ         $64, BX
	DECQ         CX
	JNZ          kloop

	VMOVUPS (R8), Y8
	VADDPS  Y8, Y0, Y0
	VMOVUPS Y0, (R8)
	VMOVUPS 32(R8), Y9
	VADDPS  Y9, Y1, Y1
	VMOVUPS Y1, 32(R8)
	VMOVUPS (R9), Y10
	VADDPS  Y10, Y2, Y2
	VMOVUPS Y2, (R9)
	VMOVUPS 32(R9), Y11
	VADDPS  Y11, Y3, Y3
	VMOVUPS Y3, 32(R9)
	VMOVUPS (R10), Y8
	VADDPS  Y8, Y4, Y4
	VMOVUPS Y4, (R10)
	VMOVUPS 32(R10), Y9
	VADDPS  Y9, Y5, Y5
	VMOVUPS Y5, 32(R10)
	VMOVUPS (R11), Y10
	VADDPS  Y10, Y6, Y6
	VMOVUPS Y6, (R11)
	VMOVUPS 32(R11), Y11
	VADDPS  Y11, Y7, Y7
	VMOVUPS Y7, 32(R11)
	VZEROUPPER
	RET

// func vecAddAsm(dst, src *float32, n int64)
// dst[i] += src[i] for i < n; n > 0 and a multiple of 8.
TEXT ·vecAddAsm(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX

addloop:
	VMOVUPS (DI), Y0
	VMOVUPS (SI), Y1
	VADDPS  Y1, Y0, Y0
	VMOVUPS Y0, (DI)
	ADDQ    $32, DI
	ADDQ    $32, SI
	SUBQ    $8, CX
	JNZ     addloop
	VZEROUPPER
	RET

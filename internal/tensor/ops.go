package tensor

import (
	"fmt"
	"math"
)

// Add returns a + b elementwise. Shapes must match.
func Add(a, b *Tensor) *Tensor { return zipNew(a, b, func(x, y float32) float32 { return x + y }) }

// Sub returns a - b elementwise.
func Sub(a, b *Tensor) *Tensor { return zipNew(a, b, func(x, y float32) float32 { return x - y }) }

// Mul returns a * b elementwise (Hadamard product).
func Mul(a, b *Tensor) *Tensor { return zipNew(a, b, func(x, y float32) float32 { return x * y }) }

// Div returns a / b elementwise.
func Div(a, b *Tensor) *Tensor { return zipNew(a, b, func(x, y float32) float32 { return x / y }) }

func zipNew(a, b *Tensor, f func(x, y float32) float32) *Tensor {
	if !SameShape(a, b) {
		panic(fmt.Sprintf("tensor: elementwise op shape mismatch %v vs %v", a.shape, b.shape))
	}
	out := New(a.shape...)
	ad, bd, od := a.data, b.data, out.data
	parallelElems(len(od), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			od[i] = f(ad[i], bd[i])
		}
	})
	return out
}

// AddInPlace accumulates src into dst.
func AddInPlace(dst, src *Tensor) {
	if !SameShape(dst, src) {
		panic(fmt.Sprintf("tensor: AddInPlace shape mismatch %v vs %v", dst.shape, src.shape))
	}
	dd, sd := dst.data, src.data
	for i := range dd {
		dd[i] += sd[i]
	}
}

// AxpyInPlace computes dst += alpha*src.
func AxpyInPlace(dst *Tensor, alpha float32, src *Tensor) {
	if !SameShape(dst, src) {
		panic(fmt.Sprintf("tensor: Axpy shape mismatch %v vs %v", dst.shape, src.shape))
	}
	dd, sd := dst.data, src.data
	for i := range dd {
		dd[i] += alpha * sd[i]
	}
}

// AddScalar returns a + s.
func AddScalar(a *Tensor, s float32) *Tensor {
	return a.Apply(func(x float32) float32 { return x + s })
}

// MulScalar returns a * s.
func MulScalar(a *Tensor, s float32) *Tensor {
	return a.Apply(func(x float32) float32 { return x * s })
}

// ScaleInPlace multiplies every element by s.
func (t *Tensor) ScaleInPlace(s float32) {
	for i := range t.data {
		t.data[i] *= s
	}
}

// Apply returns f applied to every element.
func (t *Tensor) Apply(f func(float32) float32) *Tensor {
	out := New(t.shape...)
	td, od := t.data, out.data
	parallelElems(len(od), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			od[i] = f(td[i])
		}
	})
	return out
}

// AddRow returns m with row vector v (shape [1,C] or [C]) added to every row.
func AddRow(m, v *Tensor) *Tensor {
	return broadcastRow(m, v, func(x, y float32) float32 { return x + y })
}

// MulRow returns m with row vector v multiplied into every row.
func MulRow(m, v *Tensor) *Tensor {
	return broadcastRow(m, v, func(x, y float32) float32 { return x * y })
}

func broadcastRow(m, v *Tensor, f func(x, y float32) float32) *Tensor {
	m.check2d()
	c := m.shape[1]
	if v.Size() != c {
		panic(fmt.Sprintf("tensor: row broadcast needs %d elems, got shape %v", c, v.shape))
	}
	out := New(m.shape...)
	parallelRows(m.shape[0], func(lo, hi int) {
		for i := lo; i < hi; i++ {
			mr, or := m.Row(i), out.Row(i)
			for j := 0; j < c; j++ {
				or[j] = f(mr[j], v.data[j])
			}
		}
	})
	return out
}

// MulColVec returns m scaled per row by column vector v (shape [R] or [R,1]):
// out[i,j] = m[i,j] * v[i].
func MulColVec(m, v *Tensor) *Tensor {
	m.check2d()
	r := m.shape[0]
	if v.Size() != r {
		panic(fmt.Sprintf("tensor: col broadcast needs %d elems, got shape %v", r, v.shape))
	}
	out := New(m.shape...)
	for i := 0; i < r; i++ {
		s := v.data[i]
		mr, or := m.Row(i), out.Row(i)
		for j := range mr {
			or[j] = s * mr[j]
		}
	}
	return out
}

// Exp returns e^x elementwise.
func Exp(a *Tensor) *Tensor {
	return a.Apply(func(x float32) float32 { return float32(math.Exp(float64(x))) })
}

// Log returns ln(x) elementwise.
func Log(a *Tensor) *Tensor {
	return a.Apply(func(x float32) float32 { return float32(math.Log(float64(x))) })
}

// Sigmoid returns 1/(1+e^-x) elementwise.
func Sigmoid(a *Tensor) *Tensor {
	return a.Apply(func(x float32) float32 { return 1 / (1 + float32(math.Exp(float64(-x)))) })
}

// Tanh returns tanh(x) elementwise.
func Tanh(a *Tensor) *Tensor {
	return a.Apply(func(x float32) float32 { return float32(math.Tanh(float64(x))) })
}

// ReLU returns max(0, x) elementwise.
func ReLU(a *Tensor) *Tensor {
	return a.Apply(func(x float32) float32 {
		if x > 0 {
			return x
		}
		return 0
	})
}

// LeakyReLU returns x for x>0 and slope*x otherwise.
func LeakyReLU(a *Tensor, slope float32) *Tensor {
	return a.Apply(func(x float32) float32 {
		if x > 0 {
			return x
		}
		return slope * x
	})
}

// Transpose returns the matrix transpose of a 2-D tensor.
func Transpose(m *Tensor) *Tensor {
	m.check2d()
	r, c := m.shape[0], m.shape[1]
	out := New(c, r)
	for i := 0; i < r; i++ {
		mr := m.Row(i)
		for j := 0; j < c; j++ {
			out.data[j*r+i] = mr[j]
		}
	}
	return out
}

// GatherRows returns a matrix whose i-th row is m[idx[i]].
func GatherRows(m *Tensor, idx []int32) *Tensor {
	m.check2d()
	c := m.shape[1]
	out := New(len(idx), c)
	for i, id := range idx {
		copy(out.Row(i), m.Row(int(id)))
	}
	return out
}

// ScatterAddRows accumulates src's rows into dst at positions idx:
// dst[idx[i]] += src[i].
func ScatterAddRows(dst, src *Tensor, idx []int32) {
	dst.check2d()
	src.check2d()
	if dst.shape[1] != src.shape[1] {
		panic(fmt.Sprintf("tensor: ScatterAddRows width mismatch %v vs %v", dst.shape, src.shape))
	}
	if src.shape[0] != len(idx) {
		panic(fmt.Sprintf("tensor: ScatterAddRows rows %d vs idx %d", src.shape[0], len(idx)))
	}
	c := dst.shape[1]
	// Rows collide (idx may repeat), so parallelize over *columns*:
	// each worker owns a disjoint column stripe of dst, which keeps the
	// accumulation race-free and bitwise deterministic. Serial for
	// narrow tensors, where a stripe would be under a cache line.
	if c < 8 || len(idx)*c < elemGrain {
		for i, id := range idx {
			dr, sr := dst.Row(int(id)), src.Row(i)
			for j := range dr {
				dr[j] += sr[j]
			}
		}
		return
	}
	parallelRows(c, func(clo, chi int) {
		for i, id := range idx {
			dr, sr := dst.Row(int(id)), src.Row(i)
			for j := clo; j < chi; j++ {
				dr[j] += sr[j]
			}
		}
	})
}

// AllClose reports whether a and b agree elementwise within tol (absolute
// plus small relative tolerance).
func AllClose(a, b *Tensor, tol float64) bool {
	if !SameShape(a, b) {
		return false
	}
	for i := range a.data {
		x, y := float64(a.data[i]), float64(b.data[i])
		diff := math.Abs(x - y)
		scale := math.Max(math.Abs(x), math.Abs(y))
		if diff > tol+tol*scale {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute elementwise difference.
func MaxAbsDiff(a, b *Tensor) float64 {
	if !SameShape(a, b) {
		panic("tensor: MaxAbsDiff shape mismatch")
	}
	var m float64
	for i := range a.data {
		d := math.Abs(float64(a.data[i]) - float64(b.data[i]))
		if d > m {
			m = d
		}
	}
	return m
}

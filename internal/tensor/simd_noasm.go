//go:build !amd64

package tensor

// Prefetch hints row's cache lines into L1 on hosts with a prefetch
// instruction; elsewhere it is a no-op. Kernels call it unconditionally —
// it carries no architectural effect either way.
func Prefetch(row []float32) {}

package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// TestVecMulAddBitwise proves the vector VecMulAdd backend is bitwise
// identical to the portable one — including the non-fused rounding the
// specialized kernels rely on (mul rounded, then add rounded) — across
// lengths that cover the 8-wide vector body and its scalar tail, and
// across special values (negative zero, infinities, NaN, denormals).
func TestVecMulAddBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	specials := []float32{
		0, float32(math.Copysign(0, -1)), 1, -1,
		float32(math.Inf(1)), float32(math.Inf(-1)), float32(math.NaN()),
		math.SmallestNonzeroFloat32, 3.4e38, 1e-39,
	}
	scales := append([]float32{0.3, -2.5}, specials...)
	for _, s := range scales {
		for n := 0; n <= 67; n++ {
			dst := make([]float32, n)
			src := make([]float32, n)
			for i := range dst {
				dst[i] = rng.Float32()*4 - 2
				src[i] = rng.Float32()*4 - 2
			}
			if n > 0 {
				dst[rng.Intn(n)] = specials[rng.Intn(len(specials))]
				src[rng.Intn(n)] = specials[rng.Intn(len(specials))]
			}
			want := append([]float32(nil), dst...)
			vecMulAddGo(want, src, s)

			got := append([]float32(nil), dst...)
			VecMulAdd(got, src, s)
			for i := range got {
				gb, wb := math.Float32bits(got[i]), math.Float32bits(want[i])
				gn, wn := math.IsNaN(float64(got[i])), math.IsNaN(float64(want[i]))
				if gb != wb && !(gn && wn) {
					t.Fatalf("s=%g n=%d elem %d: active %08x vs portable %08x", s, n, i, gb, wb)
				}
			}
		}
	}
}

// TestVecMulAddNotFused feeds VecMulAdd operands where a fused
// multiply-add produces a different float32 than separate rounding: if
// either backend ever compiles to FMA, this catches it.
func TestVecMulAddNotFused(t *testing.T) {
	// With s = 1+2^-23 and src = 1-2^-23, the exact product 1-2^-46
	// rounds to 1.0f in float32; dst = -1 then sums to exactly 0. An FMA
	// keeps the exact product and yields -2^-46 instead.
	s := float32(1 + 1.0/(1<<23))
	src := make([]float32, 16)
	dst := make([]float32, 16)
	for i := range src {
		src[i] = float32(1 - 1.0/(1<<23))
		dst[i] = -1
	}
	VecMulAdd(dst, src, s)
	for i, v := range dst {
		if v != 0 {
			t.Fatalf("elem %d: got %g, want 0 — VecMulAdd appears to fuse the multiply-add", i, v)
		}
	}
}

// sameF32 reports bitwise equality, treating all NaNs as equal.
func sameF32(a, b float32) bool {
	if math.Float32bits(a) == math.Float32bits(b) {
		return true
	}
	return math.IsNaN(float64(a)) && math.IsNaN(float64(b))
}

// TestGatherMulAddBitwise proves the batched gather-accumulate is bitwise
// identical to its reference form — one portable VecMulAdd per edge in
// edge order — across row widths covering the 16- and 8-wide register
// paths, the generic fallback, special values, and repeated indices
// (multi-edges hitting the same source row).
func TestGatherMulAddBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	specials := []float32{
		0, float32(math.Copysign(0, -1)), 1, -1,
		float32(math.Inf(1)), float32(math.Inf(-1)), float32(math.NaN()),
		math.SmallestNonzeroFloat32, 3.4e38, 1e-39,
	}
	for _, w := range []int{1, 3, 8, 16, 24, 32} {
		for _, n := range []int{0, 1, 5, 8, 9, 33, 200} {
			rows := 50
			src := make([]float32, rows*w)
			for i := range src {
				src[i] = rng.Float32()*4 - 2
			}
			src[rng.Intn(len(src))] = specials[rng.Intn(len(specials))]
			idx := make([]int32, n)
			scale := make([]float32, n)
			for e := range idx {
				idx[e] = int32(rng.Intn(rows))
				scale[e] = rng.Float32()*4 - 2
			}
			if n > 0 {
				scale[rng.Intn(n)] = specials[rng.Intn(len(specials))]
			}
			acc := make([]float32, w)
			for j := range acc {
				acc[j] = rng.Float32()*4 - 2
			}
			want := append([]float32(nil), acc...)
			for e, ix := range idx {
				vecMulAddGo(want, src[int(ix)*w:int(ix)*w+w], scale[e])
			}
			got := append([]float32(nil), acc...)
			GatherMulAdd(got, src, idx, scale)
			for j := range got {
				if !sameF32(got[j], want[j]) {
					t.Fatalf("w=%d n=%d elem %d: active %08x vs reference %08x",
						w, n, j, math.Float32bits(got[j]), math.Float32bits(want[j]))
				}
			}
		}
	}
}

// TestGemvBitwise proves GemvAdd/GemvMulAdd match their reference form —
// zeroed scratch, one portable VecMulAdd per input row in i order, then
// the accumulate — across output widths covering the 16-wide register
// path and the generic fallback, including din=0 (the fold of a zeroed
// transform must still happen: acc = acc + 0 normalizes -0 to +0).
func TestGemvBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, dout := range []int{1, 4, 8, 16, 24} {
		for _, din := range []int{0, 1, 2, 7, 16, 31} {
			w := make([]float32, din*dout)
			for i := range w {
				w[i] = rng.Float32()*4 - 2
			}
			x := make([]float32, din)
			for i := range x {
				x[i] = rng.Float32()*4 - 2
			}
			for _, scaled := range []bool{false, true} {
				s := rng.Float32()*4 - 2
				acc := make([]float32, dout)
				for j := range acc {
					acc[j] = rng.Float32()*4 - 2
				}
				acc[rng.Intn(dout)] = float32(math.Copysign(0, -1))
				want := append([]float32(nil), acc...)
				ref := make([]float32, dout)
				for i := 0; i < din; i++ {
					vecMulAddGo(ref, w[i*dout:(i+1)*dout], x[i])
				}
				if scaled {
					vecMulAddGo(want, ref, s)
				} else {
					vecAddGo(want, ref)
				}
				got := append([]float32(nil), acc...)
				tmp := make([]float32, dout)
				if scaled {
					GemvMulAdd(got, tmp, w, x, s)
				} else {
					GemvAdd(got, tmp, w, x)
				}
				for j := range got {
					if !sameF32(got[j], want[j]) {
						t.Fatalf("dout=%d din=%d scaled=%v elem %d: active %08x vs reference %08x",
							dout, din, scaled, j, math.Float32bits(got[j]), math.Float32bits(want[j]))
					}
				}
			}
		}
	}
}

// TestSetSIMD exercises the runtime backend switch: disabling must swap
// in the portable kernels, re-enabling must restore the vector ones, and
// both must be reported consistently. On hosts without vector support
// the switch is a documented no-op.
func TestSetSIMD(t *testing.T) {
	orig := SIMDEnabled()
	defer SetSIMD(orig)

	if !simdAvailable {
		if SetSIMD(true) != orig || SIMDEnabled() != orig {
			t.Fatal("SetSIMD must be a no-op without vector support")
		}
		return
	}
	SetSIMD(false)
	if SIMDEnabled() {
		t.Fatal("SIMDEnabled true after SetSIMD(false)")
	}
	if GemmKernelName() != "go-4x8" {
		t.Fatalf("portable gemm kernel not installed: %s", GemmKernelName())
	}
	SetSIMD(true)
	if !SIMDEnabled() {
		t.Fatal("SIMDEnabled false after SetSIMD(true)")
	}
	if GemmKernelName() != "avx2-fma-4x16" {
		t.Fatalf("vector gemm kernel not installed: %s", GemmKernelName())
	}
}

package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// ulpAt returns the spacing between float32 values at magnitude |x|.
func ulpAt(x float32) float32 {
	if x < 0 {
		x = -x
	}
	return math.Nextafter32(x, math.MaxFloat32) - x
}

// absData returns a copy of t with every element replaced by its
// absolute value — the scale matrix for ulp-relative comparison.
func absData(t *Tensor) *Tensor {
	out := New(t.shape...)
	for i, v := range t.data {
		if v < 0 {
			v = -v
		}
		out.data[i] = v
	}
	return out
}

// gemmWithin asserts got and want agree within `ulps` ulps measured at
// the scale of the element's absolute-value product (the sum Σ|a·b|,
// which bounds every partial in any accumulation order).
func gemmWithin(t *testing.T, name string, got, want, scale *Tensor, ulps float32) {
	t.Helper()
	for i := range want.data {
		g, w, s := got.data[i], want.data[i], scale.data[i]
		d := g - w
		if d < 0 {
			d = -d
		}
		if d > ulps*ulpAt(s) {
			t.Fatalf("%s: elem %d: got %g want %g (scale %g, diff %g > %g ulps)",
				name, i, g, w, s, d, ulps)
		}
	}
}

// gemmShapes covers full tiles, sub-tile shapes, prime tails in every
// dimension, and K spans crossing the gemmKC block boundary.
var gemmShapes = [][3]int{
	{1, 1, 1},
	{3, 5, 7},
	{4, 8, 16},
	{5, 17, 23},
	{4, 256, 16},
	{7, 300, 33},
	{31, 37, 41},
	{64, 64, 64},
	{13, 259, 19},
	{97, 101, 103},
}

func runBlockedVsRef(t *testing.T, micro microFn, nr int) {
	rng := rand.New(rand.NewSource(7))
	for _, sh := range gemmShapes {
		m, k, n := sh[0], sh[1], sh[2]
		a := Randn(rng, 1, m, k)
		b := Randn(rng, 1, k, n)
		at := Transpose(a) // [k, m]
		bt := Transpose(b) // [n, k]

		want := RefMatMul(a, b)
		scale := RefMatMul(absData(a), absData(b))

		got := New(m, n)
		gemmWith(micro, nr, got.data, a.data, b.data, m, k, n, false, false, true)
		gemmWithin(t, "MatMul", got, want, scale, 4)

		got = New(m, n)
		gemmWith(micro, nr, got.data, a.data, bt.data, m, k, n, false, true, true)
		gemmWithin(t, "MatMulT", got, want, scale, 4)

		got = New(m, n)
		gemmWith(micro, nr, got.data, at.data, b.data, m, k, n, true, false, true)
		gemmWithin(t, "TMatMul", got, want, scale, 4)

		// Parallel path must match the serial one bitwise (fixed K order,
		// disjoint row writes).
		gotPar := New(m, n)
		gemmWith(micro, nr, gotPar.data, a.data, b.data, m, k, n, false, false, false)
		serial := New(m, n)
		gemmWith(micro, nr, serial.data, a.data, b.data, m, k, n, false, false, true)
		for i := range serial.data {
			if gotPar.data[i] != serial.data[i] {
				t.Fatalf("parallel gemm not bitwise-deterministic at %d: %g vs %g",
					i, gotPar.data[i], serial.data[i])
			}
		}
	}
}

func TestBlockedGemmPortableKernel(t *testing.T) { runBlockedVsRef(t, mk4x8go, 8) }

func TestBlockedGemmActiveKernel(t *testing.T) {
	t.Logf("active microkernel: %s", gemmName)
	runBlockedVsRef(t, gemmMicro, gemmNR)
}

func TestPublicMatMulDispatch(t *testing.T) {
	// Shapes straddling gemmSerialMACs so both dispatch arms are hit
	// through the public entry points.
	rng := rand.New(rand.NewSource(11))
	for _, sh := range [][3]int{{5, 9, 11}, {64, 96, 80}} {
		m, k, n := sh[0], sh[1], sh[2]
		a := Randn(rng, 1, m, k)
		b := Randn(rng, 1, k, n)
		scale := RefMatMul(absData(a), absData(b))
		gemmWithin(t, "MatMul", MatMul(a, b), RefMatMul(a, b), scale, 4)
		gemmWithin(t, "MatMulT", MatMulT(a, Transpose(b)), RefMatMul(a, b), scale, 4)
		gemmWithin(t, "TMatMul", TMatMul(Transpose(a), b), RefMatMul(a, b), scale, 4)
	}
}

// TestMatMulNaNInfPropagation is the regression test for the removed
// `av == 0` skip: a zero multiplicand against a NaN/Inf operand must
// still produce NaN (0·NaN = NaN, 0·Inf = NaN) on every code path.
func TestMatMulNaNInfPropagation(t *testing.T) {
	nan := float32(math.NaN())
	inf := float32(math.Inf(1))
	check := func(name string, out *Tensor, idx int) {
		t.Helper()
		v := out.data[idx]
		if !math.IsNaN(float64(v)) {
			t.Fatalf("%s: elem %d = %g, want NaN", name, idx, v)
		}
	}

	// Small shapes: the serial reference path.
	a := New(2, 3) // all zeros
	b := New(3, 2)
	b.data[0] = nan
	b.data[3] = inf
	check("MatMul/ref", MatMul(a, b), 0)
	check("MatMul/ref-inf", MatMul(a, b), 1)
	check("TMatMul/ref", TMatMul(Transpose(a), b), 0)
	check("MatMulT/ref", MatMulT(a, Transpose(b)), 0)

	// Blocked path, forced regardless of size.
	check("MatMul/blocked", BlockedMatMulSerial(a, b), 0)

	// Large shapes: the public dispatch lands on the blocked path.
	m, k, n := 40, 40, 40
	a = New(m, k)
	b = Ones(k, n)
	b.data[0] = nan
	out := MatMul(a, b)
	check("MatMul/blocked-large", out, 0)
}

func TestVecAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	impls := []struct {
		name string
		fn   func(dst, src []float32)
	}{{"go", vecAddGo}, {"active", vecAddImpl}}
	for _, im := range impls {
		for n := 0; n <= 67; n++ {
			dst := make([]float32, n)
			src := make([]float32, n)
			want := make([]float32, n)
			for i := range dst {
				dst[i] = rng.Float32()
				src[i] = rng.Float32()
				want[i] = dst[i] + src[i]
			}
			im.fn(dst, src)
			for i := range dst {
				if dst[i] != want[i] {
					t.Fatalf("%s: n=%d elem %d: got %g want %g", im.name, n, i, dst[i], want[i])
				}
			}
		}
	}
}

func TestGemmKernelName(t *testing.T) {
	if GemmKernelName() == "" {
		t.Fatal("empty kernel name")
	}
}

func BenchmarkGemmBlocked256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := Randn(rng, 1, 1024, 256)
	w := Randn(rng, 1, 256, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BlockedMatMulSerial(x, w)
	}
}

func BenchmarkGemmNaive256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := Randn(rng, 1, 1024, 256)
	w := Randn(rng, 1, 256, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RefMatMul(x, w)
	}
}

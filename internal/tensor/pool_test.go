package tensor

import (
	"sync"
	"testing"
)

func TestPoolReusesExactSizes(t *testing.T) {
	p := NewPool()
	a := p.Get(4, 8)
	for i := range a.Data() {
		a.Data()[i] = 7
	}
	p.Put(a)
	b := p.Get(8, 4) // same element count, different shape
	if b.Dim(0) != 8 || b.Dim(1) != 4 {
		t.Fatalf("shape %v", b.Shape())
	}
	for i, v := range b.Data() {
		if v != 0 {
			t.Fatalf("element %d not zeroed: %v", i, v)
		}
	}
	hits, misses := p.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", hits, misses)
	}
}

func TestPoolDifferentSizesDoNotMix(t *testing.T) {
	p := NewPool()
	p.Put(New(4, 4))
	got := p.Get(5, 5)
	if got.Size() != 25 {
		t.Fatalf("size %d", got.Size())
	}
	if hits, _ := p.Stats(); hits != 0 {
		t.Fatalf("16-element buffer served a 25-element Get")
	}
}

func TestPoolBucketCap(t *testing.T) {
	p := NewPool()
	for i := 0; i < perBucketCap+10; i++ {
		p.Put(New(3, 3))
	}
	if n := len(p.buckets[9]); n != perBucketCap {
		t.Fatalf("bucket grew to %d, cap is %d", n, perBucketCap)
	}
}

func TestPoolIgnoresNilAndEmpty(t *testing.T) {
	p := NewPool()
	p.Put(nil)
	p.Put(New(0, 4))
	if got := p.Get(0, 4); got.Size() != 0 {
		t.Fatalf("size %d", got.Size())
	}
}

func TestPoolConcurrent(t *testing.T) {
	p := NewPool()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				a := p.Get(16, 4)
				b := p.Get(4)
				a.Data()[i%64]++
				p.Put(a)
				p.Put(b)
			}
		}()
	}
	wg.Wait()
}

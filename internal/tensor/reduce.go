package tensor

import "math"

// Sum returns the sum of all elements.
func Sum(t *Tensor) float32 {
	var s float32
	for _, v := range t.data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func Mean(t *Tensor) float32 {
	if len(t.data) == 0 {
		return 0
	}
	return Sum(t) / float32(len(t.data))
}

// SumRows reduces a matrix over its rows, returning a [C] vector:
// out[j] = Σ_i m[i,j].
func SumRows(m *Tensor) *Tensor {
	m.check2d()
	r, c := m.shape[0], m.shape[1]
	out := New(c)
	for i := 0; i < r; i++ {
		mr := m.Row(i)
		for j := 0; j < c; j++ {
			out.data[j] += mr[j]
		}
	}
	return out
}

// SumCols reduces a matrix over its columns, returning an [R] vector:
// out[i] = Σ_j m[i,j].
func SumCols(m *Tensor) *Tensor {
	m.check2d()
	r := m.shape[0]
	out := New(r)
	for i := 0; i < r; i++ {
		var s float32
		for _, v := range m.Row(i) {
			s += v
		}
		out.data[i] = s
	}
	return out
}

// MaxElem returns the maximum element (−Inf for empty tensors).
func MaxElem(t *Tensor) float32 {
	m := float32(math.Inf(-1))
	for _, v := range t.data {
		if v > m {
			m = v
		}
	}
	return m
}

// ArgMaxRows returns, for each row of a matrix, the column of its maximum.
func ArgMaxRows(m *Tensor) []int {
	m.check2d()
	r := m.shape[0]
	out := make([]int, r)
	for i := 0; i < r; i++ {
		row := m.Row(i)
		best, bestJ := float32(math.Inf(-1)), 0
		for j, v := range row {
			if v > best {
				best, bestJ = v, j
			}
		}
		out[i] = bestJ
	}
	return out
}

// SoftmaxRows returns the row-wise softmax of a matrix (numerically stable).
func SoftmaxRows(m *Tensor) *Tensor {
	m.check2d()
	out := New(m.shape...)
	parallelRows(m.shape[0], func(lo, hi int) {
		for i := lo; i < hi; i++ {
			mr, or := m.Row(i), out.Row(i)
			mx := float32(math.Inf(-1))
			for _, v := range mr {
				if v > mx {
					mx = v
				}
			}
			var sum float32
			for j, v := range mr {
				e := float32(math.Exp(float64(v - mx)))
				or[j] = e
				sum += e
			}
			inv := 1 / sum
			for j := range or {
				or[j] *= inv
			}
		}
	})
	return out
}

// LogSoftmaxRows returns the row-wise log-softmax of a matrix.
func LogSoftmaxRows(m *Tensor) *Tensor {
	m.check2d()
	out := New(m.shape...)
	parallelRows(m.shape[0], func(lo, hi int) {
		for i := lo; i < hi; i++ {
			mr, or := m.Row(i), out.Row(i)
			mx := float32(math.Inf(-1))
			for _, v := range mr {
				if v > mx {
					mx = v
				}
			}
			var sum float64
			for _, v := range mr {
				sum += math.Exp(float64(v - mx))
			}
			lse := float32(math.Log(sum)) + mx
			for j, v := range mr {
				or[j] = v - lse
			}
		}
	})
	return out
}

package tensor

import (
	"math"
	"math/rand"
)

// Randn fills a new tensor with N(0, std²) samples from rng.
func Randn(rng *rand.Rand, std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = float32(rng.NormFloat64() * std)
	}
	return t
}

// Uniform fills a new tensor with samples from U[lo, hi).
func Uniform(rng *rand.Rand, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = float32(lo + rng.Float64()*(hi-lo))
	}
	return t
}

// XavierUniform initializes with the Glorot/Xavier uniform scheme for a
// [fanIn, fanOut] weight matrix, the default in DGL's model zoo.
func XavierUniform(rng *rand.Rand, fanIn, fanOut int) *Tensor {
	if fanIn <= 0 || fanOut <= 0 {
		panic("tensor: XavierUniform requires positive fan dimensions")
	}
	l := math.Sqrt(6 / float64(fanIn+fanOut))
	return Uniform(rng, -l, l, fanIn, fanOut)
}

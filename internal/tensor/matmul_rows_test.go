package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// MatMulRowsLike must reproduce the full product's rows bit for bit on
// both dispatch paths, for any subset size (including tail tiles smaller
// than the register block) and non-multiple column counts.
func TestMatMulRowsLikeBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cases := []struct {
		name    string
		m, k, n int
	}{
		{"naive path", 12, 8, 8},          // 768 MACs < gemmSerialMACs
		{"blocked path", 300, 32, 16},     // 153k MACs
		{"blocked odd cols", 260, 24, 13}, // column tail
		{"blocked deep k", 40, 600, 16},   // two K-blocks
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := Uniform(rng, -1, 1, tc.m, tc.k)
			b := Uniform(rng, -1, 1, tc.k, tc.n)
			full := MatMul(a, b)
			for _, sz := range []int{1, 3, 4, 7} {
				if sz > tc.m {
					continue
				}
				idx := make([]int32, sz)
				for i := range idx {
					idx[i] = int32(rng.Intn(tc.m))
				}
				got := MatMulRowsLike(GatherRows(a, idx), b, tc.m)
				for i, id := range idx {
					for j := 0; j < tc.n; j++ {
						g := math.Float32bits(got.At(i, j))
						w := math.Float32bits(full.At(int(id), j))
						if g != w {
							t.Fatalf("subset=%d row %d col %d: %08x != %08x", sz, id, j, g, w)
						}
					}
				}
			}
		})
	}
}

func TestMatMulSameKernel(t *testing.T) {
	if !MatMulSameKernel(100000, 100002, 16, 16) {
		t.Fatal("both far above the threshold must share a path")
	}
	if !MatMulSameKernel(3, 5, 4, 4) {
		t.Fatal("both far below the threshold must share a path")
	}
	// 32×32 product: m=31 → 31744 < 32768, m=33 → 33792 ≥ 32768.
	if MatMulSameKernel(31, 33, 32, 32) {
		t.Fatal("straddling the dispatch threshold must report unstable")
	}
}

package tensor

import (
	"math/rand"
	"testing"
)

func TestSetGemmKC(t *testing.T) {
	orig := GemmKC()
	defer SetGemmKC(orig)
	if prev := SetGemmKC(128); prev != orig {
		t.Fatalf("SetGemmKC returned %d, want previous %d", prev, orig)
	}
	if GemmKC() != 128 {
		t.Fatalf("GemmKC = %d after SetGemmKC(128)", GemmKC())
	}
	// Clamp: a kc below the register-tile row count would starve packing.
	SetGemmKC(0)
	if GemmKC() < gemmMR {
		t.Fatalf("GemmKC = %d, want clamp to at least %d", GemmKC(), gemmMR)
	}
}

// TestGemmKCBitwiseEnvelope pins down which kc retunes the adaptive
// planner may apply without breaking the bitwise contract. While K fits
// in one block under every candidate (the repo's workload dims are
// K ≤ 256), results are bitwise identical; once candidates split K
// differently the partial-sum spill rounds differently, so the
// re-planner must keep kc ≥ K — and this test fails if that envelope
// ever silently widens or narrows.
func TestGemmKCBitwiseEnvelope(t *testing.T) {
	orig := GemmKC()
	defer SetGemmKC(orig)
	rng := rand.New(rand.NewSource(23))

	run := func(m, k, n, kc int) *Tensor {
		rng := rand.New(rand.NewSource(int64(m*k*n) + 31))
		a := Randn(rng, 1, m, k)
		b := Randn(rng, 1, k, n)
		SetGemmKC(kc)
		out := New(m, n)
		gemmWith(gemmMicro, gemmNR, out.data, a.data, b.data, m, k, n, false, false, true)
		return out
	}

	// Inside the envelope: K=200 never splits at kc ∈ {256, 512, 1024}.
	base := run(13, 200, 19, 256)
	for _, kc := range []int{512, 1024} {
		got := run(13, 200, 19, kc)
		for i := range base.data {
			if got.data[i] != base.data[i] {
				t.Fatalf("kc=%d changed an unsplit GEMM bitwise at elem %d: %g vs %g",
					kc, i, got.data[i], base.data[i])
			}
		}
	}

	// Outside the envelope: K=300 splits at kc=256 but not at kc=512.
	// Both must stay correct (ulp-bounded vs the reference) even though
	// they may differ bitwise from each other.
	m, k, n := 7, 300, 33
	a := Randn(rng, 1, m, k)
	b := Randn(rng, 1, k, n)
	want := RefMatMul(a, b)
	scale := RefMatMul(absData(a), absData(b))
	for _, kc := range []int{64, 256, 512} {
		SetGemmKC(kc)
		got := New(m, n)
		gemmWith(gemmMicro, gemmNR, got.data, a.data, b.data, m, k, n, false, false, true)
		gemmWithin(t, "retuned kc", got, want, scale, 4)
	}
}

package models

import (
	"testing"

	"seastar/internal/datasets"
	"seastar/internal/device"
	"seastar/internal/nn"
	"seastar/internal/tensor"
)

// tinyHomo returns a small homogeneous dataset for cross-system checks.
func tinyHomo(t *testing.T) *datasets.Dataset {
	t.Helper()
	return datasets.MustLoad("cora", 0.02, 5) // ~54 vertices
}

func tinyHetero(t *testing.T) *datasets.Dataset {
	t.Helper()
	return datasets.MustLoad("aifb", 0.05, 5)
}

// buildModel constructs a model by name on a fresh env with a fixed seed.
func buildModel(t *testing.T, name string, sys System, ds *datasets.Dataset) (Model, *Env) {
	t.Helper()
	env := NewEnv(device.New(device.V100), ds, 99)
	var m Model
	var err error
	switch name {
	case "gcn":
		m, err = NewGCN(env, sys, 8)
	case "gat":
		m, err = NewGAT(env, sys, 8)
	case "appnp":
		m, err = NewAPPNP(env, sys, 8, 3, 0.1)
	case "rgcn":
		m, err = NewRGCN(env, sys, 8)
	default:
		t.Fatalf("unknown model %s", name)
	}
	if err != nil {
		t.Fatal(err)
	}
	return m, env
}

// forwardAndGrads runs a forward pass, a masked cross-entropy backward,
// and returns (logits, per-param gradients).
func forwardAndGrads(t *testing.T, m Model, env *Env) (*tensor.Tensor, []*tensor.Tensor) {
	t.Helper()
	logits := m.Forward(true)
	loss := env.E.CrossEntropyMasked(logits, env.DS.Labels, env.DS.TrainMask)
	env.E.Backward(loss)
	var grads []*tensor.Tensor
	for _, p := range m.Params() {
		if p.Grad == nil {
			t.Fatalf("%s: parameter %s has no gradient", m.Name(), p.Name())
		}
		grads = append(grads, p.Grad)
	}
	return logits.Value, grads
}

func TestHomogeneousModelsAgreeAcrossSystems(t *testing.T) {
	ds := tinyHomo(t)
	for _, model := range []string{"gcn", "gat", "appnp"} {
		ref, refEnv := buildModel(t, model, SysSeastar, ds)
		refOut, refGrads := forwardAndGrads(t, ref, refEnv)
		for _, sys := range []System{SysDGL, SysPyG} {
			m, env := buildModel(t, model, sys, ds)
			out, grads := forwardAndGrads(t, m, env)
			if !tensor.AllClose(out, refOut, 1e-3) {
				t.Fatalf("%s %s: logits diverge from seastar by %g",
					model, sys, tensor.MaxAbsDiff(out, refOut))
			}
			for i := range grads {
				if !tensor.AllClose(grads[i], refGrads[i], 2e-3) {
					t.Fatalf("%s %s: grad %d diverges by %g",
						model, sys, i, tensor.MaxAbsDiff(grads[i], refGrads[i]))
				}
			}
		}
	}
}

func TestRGCNAgreesAcrossAllFiveSystems(t *testing.T) {
	ds := tinyHetero(t)
	ref, refEnv := buildModel(t, "rgcn", SysSeastar, ds)
	refOut, refGrads := forwardAndGrads(t, ref, refEnv)
	for _, sys := range []System{SysDGL, SysDGLBMM, SysPyG, SysPyGBMM} {
		m, env := buildModel(t, "rgcn", sys, ds)
		out, grads := forwardAndGrads(t, m, env)
		if !tensor.AllClose(out, refOut, 1e-3) {
			t.Fatalf("rgcn %s: logits diverge by %g", sys, tensor.MaxAbsDiff(out, refOut))
		}
		for i := range grads {
			if !tensor.AllClose(grads[i], refGrads[i], 2e-3) {
				t.Fatalf("rgcn %s: grad %d diverges by %g", sys, i,
					tensor.MaxAbsDiff(grads[i], refGrads[i]))
			}
		}
	}
}

func TestModelsTrainToLowerLoss(t *testing.T) {
	ds := tinyHomo(t)
	for _, name := range []string{"gcn", "gat", "appnp"} {
		m, env := buildModel(t, name, SysSeastar, ds)
		opt := nn.NewAdam(m.Params(), 0.01)
		var first, last float32
		for it := 0; it < 15; it++ {
			logits := m.Forward(true)
			loss := env.E.CrossEntropyMasked(logits, ds.Labels, ds.TrainMask)
			if it == 0 {
				first = loss.Value.At1(0)
			}
			last = loss.Value.At1(0)
			env.E.Backward(loss)
			opt.Step()
			env.E.EndIteration()
		}
		if last >= first {
			t.Fatalf("%s: loss did not drop (%v -> %v)", name, first, last)
		}
	}
}

func TestRGCNTrains(t *testing.T) {
	ds := tinyHetero(t)
	m, env := buildModel(t, "rgcn", SysSeastar, ds)
	opt := nn.NewAdam(m.Params(), 0.01)
	var first, last float32
	for it := 0; it < 10; it++ {
		logits := m.Forward(true)
		loss := env.E.CrossEntropyMasked(logits, ds.Labels, ds.TrainMask)
		if it == 0 {
			first = loss.Value.At1(0)
		}
		last = loss.Value.At1(0)
		env.E.Backward(loss)
		opt.Step()
		env.E.EndIteration()
	}
	if last >= first {
		t.Fatalf("rgcn loss did not drop (%v -> %v)", first, last)
	}
}

func TestSeastarFasterThanBaselinesOnSkewedGraph(t *testing.T) {
	// Per-iteration simulated time ordering on a degree-skewed dataset:
	// the paper's Figure 10 claim at model granularity.
	ds := datasets.MustLoad("amz_photo", 0.2, 6)
	time := func(sys System) float64 {
		env := NewEnv(device.New(device.GTX1080Ti), ds, 99)
		m, err := NewGAT(env, sys, 16)
		if err != nil {
			t.Fatal(err)
		}
		env.E.Dev.ResetClock()
		logits := m.Forward(true)
		loss := env.E.CrossEntropyMasked(logits, ds.Labels, ds.TrainMask)
		env.E.Backward(loss)
		return env.E.Dev.ElapsedNs()
	}
	sea := time(SysSeastar)
	d := time(SysDGL)
	p := time(SysPyG)
	if sea >= d || sea >= p {
		t.Fatalf("seastar (%.0f ns) should beat dgl (%.0f) and pyg (%.0f)", sea, d, p)
	}
}

func TestRGCNSystemTimeOrdering(t *testing.T) {
	// Table 3 ordering on a hetero dataset: Seastar and the bmm variants
	// are far faster than the per-relation loops.
	ds := tinyHetero(t)
	time := func(sys System) float64 {
		env := NewEnv(device.New(device.V100), ds, 99)
		m, err := NewRGCN(env, sys, 8)
		if err != nil {
			t.Fatal(err)
		}
		env.E.Dev.ResetClock()
		logits := m.Forward(true)
		loss := env.E.CrossEntropyMasked(logits, ds.Labels, ds.TrainMask)
		env.E.Backward(loss)
		return env.E.Dev.ElapsedNs()
	}
	sea := time(SysSeastar)
	loop := time(SysDGL)
	bmm := time(SysDGLBMM)
	pygLoop := time(SysPyG)
	if sea >= loop/10 {
		t.Fatalf("seastar (%.0f) should be ≫ faster than dgl loop (%.0f)", sea, loop)
	}
	if bmm >= loop/10 {
		t.Fatalf("dgl-bmm (%.0f) should be ≫ faster than dgl loop (%.0f)", bmm, loop)
	}
	if pygLoop >= loop {
		t.Logf("note: pyg loop (%.0f) vs dgl loop (%.0f)", pygLoop, loop)
	}
}

func TestUnknownSystemRejected(t *testing.T) {
	ds := tinyHomo(t)
	env := NewEnv(device.New(device.V100), ds, 1)
	if _, err := NewGCN(env, System("tensorflow"), 8); err == nil {
		t.Fatal("unknown system accepted")
	}
	if _, err := NewGAT(env, System("x"), 8); err == nil {
		t.Fatal("unknown system accepted")
	}
	if _, err := NewAPPNP(env, System("x"), 8, 2, 0.1); err == nil {
		t.Fatal("unknown system accepted")
	}
}

func TestRGCNRequiresHeteroGraph(t *testing.T) {
	ds := tinyHomo(t)
	env := NewEnv(device.New(device.V100), ds, 1)
	if _, err := NewRGCN(env, SysSeastar, 8); err == nil {
		t.Fatal("R-GCN on homogeneous graph accepted")
	}
}

func TestModelNames(t *testing.T) {
	ds := tinyHomo(t)
	m, _ := buildModel(t, "gcn", SysSeastar, ds)
	if m.Name() != "gcn-seastar" {
		t.Fatalf("name: %s", m.Name())
	}
}

package models

import (
	"testing"

	"seastar/internal/gir"

	"seastar/internal/device"
	"seastar/internal/nn"
	"seastar/internal/tensor"
)

func buildExtra(t *testing.T, name string, sys System) (Model, *Env) {
	t.Helper()
	ds := tinyHomo(t)
	env := NewEnv(device.New(device.V100), ds, 321)
	var m Model
	var err error
	switch name {
	case "gin":
		m, err = NewGIN(env, sys, 8, 0.1)
	case "sage":
		m, err = NewSAGE(env, sys, 8)
	}
	if err != nil {
		t.Fatal(err)
	}
	return m, env
}

func TestExtraModelsAgreeAcrossSystems(t *testing.T) {
	for _, name := range []string{"gin", "sage"} {
		ref, refEnv := buildExtra(t, name, SysSeastar)
		refOut, refGrads := forwardAndGrads(t, ref, refEnv)
		for _, sys := range []System{SysDGL, SysPyG} {
			m, env := buildExtra(t, name, sys)
			out, grads := forwardAndGrads(t, m, env)
			if !tensor.AllClose(out, refOut, 1e-3) {
				t.Fatalf("%s %s: logits diverge by %g", name, sys,
					tensor.MaxAbsDiff(out, refOut))
			}
			for i := range grads {
				if !tensor.AllClose(grads[i], refGrads[i], 2e-3) {
					t.Fatalf("%s %s: grad %d diverges by %g", name, sys, i,
						tensor.MaxAbsDiff(grads[i], refGrads[i]))
				}
			}
		}
	}
}

func TestExtraModelsTrain(t *testing.T) {
	for _, name := range []string{"gin", "sage"} {
		m, env := buildExtra(t, name, SysSeastar)
		opt := nn.NewAdam(m.Params(), 0.01)
		var first, last float32
		for it := 0; it < 12; it++ {
			logits := m.Forward(true)
			loss := env.E.CrossEntropyMasked(logits, env.DS.Labels, env.DS.TrainMask)
			if it == 0 {
				first = loss.Value.At1(0)
			}
			last = loss.Value.At1(0)
			env.E.Backward(loss)
			opt.Step()
			env.E.EndIteration()
		}
		if last >= first {
			t.Fatalf("%s did not learn: %v -> %v", name, first, last)
		}
	}
}

func TestExtraModelNamesAndValidation(t *testing.T) {
	ds := tinyHomo(t)
	env := NewEnv(device.New(device.V100), ds, 1)
	if _, err := NewGIN(env, System("x"), 8, 0.1); err == nil {
		t.Fatal("unknown system accepted")
	}
	if _, err := NewSAGE(env, System("x"), 8); err == nil {
		t.Fatal("unknown system accepted")
	}
	g, err := NewGIN(env, SysDGL, 8, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "gin-dgl" {
		t.Fatalf("name %q", g.Name())
	}
	s, err := NewSAGE(env, SysPyG, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "sage-pyg" || len(s.Params()) != 4 {
		t.Fatalf("sage: %q %d", s.Name(), len(s.Params()))
	}
}

func TestGINSeastarFusesPostAggSelf(t *testing.T) {
	// The GIN body's post-aggregation Add must fuse into the
	// aggregation kernel (state-2 D-chain): the plan is the scaled-self
	// MulConst as one vertex-wise unit plus one fused {Agg, Add} kernel.
	c, err := compileGINBody(4, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.FwdPlan.Units) != 2 {
		t.Fatalf("GIN forward units: %d, want 2", len(c.FwdPlan.Units))
	}
	fusedAdd := false
	for _, u := range c.FwdPlan.Units {
		hasAgg, hasAdd := false, false
		for _, n := range u.Nodes {
			if n.Op.IsAgg() {
				hasAgg = true
			}
			if n.Op == gir.OpAdd {
				hasAdd = true
			}
		}
		if hasAgg && hasAdd {
			fusedAdd = true
		}
	}
	if !fusedAdd {
		t.Fatal("post-aggregation Add did not fuse with the aggregation")
	}
}

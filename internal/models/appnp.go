package models

import (
	"fmt"

	"seastar/internal/exec"
	"seastar/internal/gir"
	"seastar/internal/nn"
)

// APPNP implements "predict then propagate": an MLP produces h0, then K
// personalized-PageRank propagation steps compute
// h^{k+1} = (1-α)·D̂⁻½ A D̂⁻½ h^k + α·h0.
type APPNP struct {
	sys System
	env *Env

	w1, w2           *nn.Variable
	srcNorm, dstNorm *nn.Variable
	alpha            float32
	k                int

	prop *exec.CompiledUDF
}

// NewAPPNP builds an APPNP model (DGL's default configuration: hidden 64,
// K=10, α=0.1 — pass hidden/k/alpha explicitly).
func NewAPPNP(env *Env, sys System, hidden, k int, alpha float32) (*APPNP, error) {
	in := env.DS.Feat.Cols()
	classes := env.DS.NumClasses
	sn, dn := env.symNormVars()
	m := &APPNP{
		sys: sys, env: env,
		w1:      env.xavier("appnp.W1", in, hidden),
		w2:      env.xavier("appnp.W2", hidden, classes),
		srcNorm: sn, dstNorm: dn,
		alpha: alpha, k: k,
	}
	switch sys {
	case SysSeastar:
		var err error
		if m.prop, err = compileAPPNPStep(classes, alpha); err != nil {
			return nil, err
		}
	case SysDGL, SysPyG:
	default:
		return nil, unknownSystem("APPNP", sys)
	}
	return m, nil
}

// compileAPPNPStep traces one propagation step. The post-aggregation
// destination chain (scale by dstnorm, damp, add teleport) stays inside
// the fused kernel — state-2 fusion in the paper's FSM.
func compileAPPNPStep(dim int, alpha float32) (*exec.CompiledUDF, error) {
	b := gir.NewBuilder()
	b.VFeature("h", dim)
	b.VFeature("h0", dim)
	b.VFeature("sn", 1)
	b.VFeature("dn", 1)
	dag, err := b.Build(func(v *gir.Vertex) *gir.Value {
		agg := v.Nbr("h").Mul(v.Nbr("sn")).AggSum()
		return agg.Mul(v.Self("dn")).MulScalar(1 - alpha).
			Add(v.Self("h0").MulScalar(alpha))
	})
	if err != nil {
		return nil, err
	}
	return exec.Compile(dag)
}

// Name implements Model.
func (m *APPNP) Name() string { return fmt.Sprintf("appnp-%s", m.sys) }

// Params implements Model.
func (m *APPNP) Params() []*nn.Variable { return []*nn.Variable{m.w1, m.w2} }

// Forward implements Model.
func (m *APPNP) Forward(training bool) *nn.Variable {
	e := m.env.E
	h0 := e.MatMul(e.ReLU(e.MatMul(m.env.X, m.w1)), m.w2)
	h := h0
	for step := 0; step < m.k; step++ {
		h = m.propagate(h, h0)
	}
	return h
}

func (m *APPNP) propagate(h, h0 *nn.Variable) *nn.Variable {
	e := m.env.E
	switch m.sys {
	case SysSeastar:
		out, err := m.prop.Apply(m.env.RT,
			map[string]*nn.Variable{
				"h": h, "h0": h0, "sn": m.srcNorm, "dn": m.dstNorm,
			}, nil, nil)
		if err != nil {
			panic(err)
		}
		return out
	case SysDGL:
		t := e.MulColVec(h, m.srcNorm)
		t = m.env.DGL.UpdateAllCopySum(t)
		t = e.MulColVec(t, m.dstNorm)
		return e.Add(e.MulScalar(t, 1-m.alpha), e.MulScalar(h0, m.alpha))
	default: // SysPyG
		p := m.env.PyG
		t := e.MulColVec(h, m.srcNorm)
		t = p.ScatterAddDst(p.GatherSrc(t))
		t = e.MulColVec(t, m.dstNorm)
		return e.Add(e.MulScalar(t, 1-m.alpha), e.MulScalar(h0, m.alpha))
	}
}

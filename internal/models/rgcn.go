package models

import (
	"fmt"

	"seastar/internal/exec"
	"seastar/internal/gir"
	"seastar/internal/nn"
)

// RGCN is the two-layer relational GCN of Schlichtkrull et al.:
// h'_v = σ( h_v W_self + Σ_r Σ_{u∈N_r(v)} 1/c_{v,r} · h_u W_r ).
type RGCN struct {
	sys System
	env *Env

	ws1, wSelf1 *nn.Variable
	ws2, wSelf2 *nn.Variable
	edgeNorm    *nn.Variable

	c1, c2 *exec.CompiledUDF
}

// NewRGCN builds a 2-layer R-GCN (input → hidden → classes) on sys; the
// graph must carry edge types (sorted per vertex for the Seastar path).
func NewRGCN(env *Env, sys System, hidden int) (*RGCN, error) {
	if env.G.EdgeTypes == nil {
		return nil, fmt.Errorf("models: R-GCN requires a heterogeneous graph")
	}
	in := env.DS.Feat.Cols()
	classes := env.DS.NumClasses
	r := env.G.NumEdgeTypes
	m := &RGCN{
		sys: sys, env: env,
		ws1:      env.xavier("rgcn.Ws1", r, in, hidden),
		wSelf1:   env.xavier("rgcn.Wself1", in, hidden),
		ws2:      env.xavier("rgcn.Ws2", r, hidden, classes),
		wSelf2:   env.xavier("rgcn.Wself2", hidden, classes),
		edgeNorm: env.edgeNormVar(),
	}
	switch sys {
	case SysSeastar:
		var err error
		if m.c1, err = compileRGCNLayer(r, in, hidden); err != nil {
			return nil, err
		}
		if m.c2, err = compileRGCNLayer(r, hidden, classes); err != nil {
			return nil, err
		}
	case SysDGL, SysDGLBMM, SysPyG, SysPyGBMM:
	default:
		return nil, unknownSystem("R-GCN", sys)
	}
	return m, nil
}

// compileRGCNLayer traces the heterogeneous vertex-centric body: a
// per-edge typed projection, edge normalization, and the hierarchical
// per-type aggregation of §6.3.5 (sum over edges of a type, sum over
// types — one type-sorted sequential kernel).
func compileRGCNLayer(r, in, out int) (*exec.CompiledUDF, error) {
	b := gir.NewBuilder()
	b.VFeature("h", in)
	b.EFeature("norm", 1)
	Ws := b.Param("W", r, in, out)
	dag, err := b.Build(func(v *gir.Vertex) *gir.Value {
		return v.Nbr("h").MatMulTyped(Ws).Mul(v.Edge("norm")).AggHier(gir.AggSum, gir.AggSum)
	})
	if err != nil {
		return nil, err
	}
	return exec.Compile(dag)
}

// Name implements Model.
func (m *RGCN) Name() string { return fmt.Sprintf("rgcn-%s", m.sys) }

// Params implements Model.
func (m *RGCN) Params() []*nn.Variable {
	return []*nn.Variable{m.ws1, m.wSelf1, m.ws2, m.wSelf2}
}

// Forward implements Model.
func (m *RGCN) Forward(training bool) *nn.Variable {
	h := m.layer(m.env.X, m.ws1, m.wSelf1, m.c1)
	h = m.env.E.ReLU(h)
	return m.layer(h, m.ws2, m.wSelf2, m.c2)
}

func (m *RGCN) layer(h, ws, wSelf *nn.Variable, c *exec.CompiledUDF) *nn.Variable {
	e := m.env.E
	self := e.MatMul(h, wSelf)
	var agg *nn.Variable
	var err error
	switch m.sys {
	case SysSeastar:
		agg, err = c.Apply(m.env.RT,
			map[string]*nn.Variable{"h": h},
			map[string]*nn.Variable{"norm": m.edgeNorm},
			map[string]*nn.Variable{"W": ws})
	case SysDGL:
		agg, err = m.env.DGL.RGCNLoop(h, ws, m.edgeNorm)
	case SysDGLBMM:
		agg, err = m.env.DGL.RGCNBMM(h, ws, m.edgeNorm)
	case SysPyG:
		agg, err = m.env.PyG.RGCNLoop(h, ws, m.edgeNorm)
	default: // SysPyGBMM
		agg, err = m.env.PyG.RGCNBMM(h, ws, m.edgeNorm)
	}
	if err != nil {
		panic(err)
	}
	return e.Add(self, agg)
}

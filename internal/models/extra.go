package models

import (
	"fmt"

	"seastar/internal/exec"
	"seastar/internal/gir"
	"seastar/internal/nn"
)

// The models in this file are NOT part of the paper's evaluation; they
// demonstrate that the vertex-centric model covers architectures beyond
// the four benchmarked ones (the paper's usability claim in §4): GIN (Xu
// et al.) and GraphSAGE (Hamilton et al.) with a mean aggregator.

// GIN is a two-layer Graph Isomorphism Network:
// h' = MLP((1+ε)·h_v + Σ_{u∈N(v)} h_u).
type GIN struct {
	sys System
	env *Env
	eps float32

	w1a, w1b *nn.Variable // layer-1 MLP
	w2a, w2b *nn.Variable

	c1, c2 *exec.CompiledUDF
}

// NewGIN builds a 2-layer GIN with the given ε.
func NewGIN(env *Env, sys System, hidden int, eps float32) (*GIN, error) {
	in := env.DS.Feat.Cols()
	classes := env.DS.NumClasses
	m := &GIN{
		sys: sys, env: env, eps: eps,
		w1a: env.xavier("gin.W1a", in, hidden),
		w1b: env.xavier("gin.W1b", hidden, hidden),
		w2a: env.xavier("gin.W2a", hidden, hidden),
		w2b: env.xavier("gin.W2b", hidden, classes),
	}
	switch sys {
	case SysSeastar:
		var err error
		if m.c1, err = compileGINBody(in, eps); err != nil {
			return nil, err
		}
		if m.c2, err = compileGINBody(hidden, eps); err != nil {
			return nil, err
		}
	case SysDGL, SysPyG:
	default:
		return nil, unknownSystem("GIN", sys)
	}
	return m, nil
}

// compileGINBody traces (1+ε)·h_v + Σ h_u — a fused kernel whose
// post-aggregation stage adds the scaled self feature (state-2 fusion).
// The self term is traced BEFORE the aggregation so that the fusion FSM's
// last-write-wins tie-break picks the aggregation as the Add's nearest
// parent, keeping everything in one kernel.
func compileGINBody(dim int, eps float32) (*exec.CompiledUDF, error) {
	b := gir.NewBuilder()
	b.VFeature("h", dim)
	dag, err := b.Build(func(v *gir.Vertex) *gir.Value {
		self := v.Self("h").MulScalar(1 + eps)
		return v.Nbr("h").AggSum().Add(self)
	})
	if err != nil {
		return nil, err
	}
	return exec.Compile(dag)
}

// Name implements Model.
func (m *GIN) Name() string { return fmt.Sprintf("gin-%s", m.sys) }

// Params implements Model.
func (m *GIN) Params() []*nn.Variable {
	return []*nn.Variable{m.w1a, m.w1b, m.w2a, m.w2b}
}

// Forward implements Model.
func (m *GIN) Forward(training bool) *nn.Variable {
	e := m.env.E
	h := m.aggregate(m.env.X, m.c1)
	h = e.ReLU(e.MatMul(e.ReLU(e.MatMul(h, m.w1a)), m.w1b))
	h = m.aggregate(h, m.c2)
	return e.MatMul(e.ReLU(e.MatMul(h, m.w2a)), m.w2b)
}

func (m *GIN) aggregate(h *nn.Variable, c *exec.CompiledUDF) *nn.Variable {
	e := m.env.E
	switch m.sys {
	case SysSeastar:
		out, err := c.Apply(m.env.RT, map[string]*nn.Variable{"h": h}, nil, nil)
		if err != nil {
			panic(err)
		}
		return out
	case SysDGL:
		agg := m.env.DGL.UpdateAllCopySum(h)
		return e.Add(agg, e.MulScalar(h, 1+m.eps))
	default: // SysPyG
		agg := m.env.PyG.ScatterAddDst(m.env.PyG.GatherSrc(h))
		return e.Add(agg, e.MulScalar(h, 1+m.eps))
	}
}

// SAGE is a two-layer GraphSAGE with mean aggregation:
// h' = W_self·h_v + W_nbr·mean_{u∈N(v)} h_u.
type SAGE struct {
	sys System
	env *Env

	invDeg               *nn.Variable // 1/in-degree, 0 for isolated
	wSelf1, wNbr1        *nn.Variable
	wSelf2, wNbr2        *nn.Variable
	c1, c2               *exec.CompiledUDF
	hidden1, out2, feats int
}

// NewSAGE builds a 2-layer mean-aggregator GraphSAGE.
func NewSAGE(env *Env, sys System, hidden int) (*SAGE, error) {
	in := env.DS.Feat.Cols()
	classes := env.DS.NumClasses
	m := &SAGE{
		sys: sys, env: env,
		invDeg: env.normVar(), // 1/in-degree
		wSelf1: env.xavier("sage.Wself1", in, hidden),
		wNbr1:  env.xavier("sage.Wnbr1", in, hidden),
		wSelf2: env.xavier("sage.Wself2", hidden, classes),
		wNbr2:  env.xavier("sage.Wnbr2", hidden, classes),
		feats:  in, hidden1: hidden, out2: classes,
	}
	switch sys {
	case SysSeastar:
		var err error
		if m.c1, err = compileSAGEBody(in); err != nil {
			return nil, err
		}
		if m.c2, err = compileSAGEBody(hidden); err != nil {
			return nil, err
		}
	case SysDGL, SysPyG:
	default:
		return nil, unknownSystem("GraphSAGE", sys)
	}
	return m, nil
}

// compileSAGEBody traces mean aggregation as a sum scaled by the center's
// 1/deg — a D-typed multiply fused after the aggregation.
func compileSAGEBody(dim int) (*exec.CompiledUDF, error) {
	b := gir.NewBuilder()
	b.VFeature("h", dim)
	b.VFeature("invdeg", 1)
	dag, err := b.Build(func(v *gir.Vertex) *gir.Value {
		return v.Nbr("h").AggSum().Mul(v.Self("invdeg"))
	})
	if err != nil {
		return nil, err
	}
	return exec.Compile(dag)
}

// Name implements Model.
func (m *SAGE) Name() string { return fmt.Sprintf("sage-%s", m.sys) }

// Params implements Model.
func (m *SAGE) Params() []*nn.Variable {
	return []*nn.Variable{m.wSelf1, m.wNbr1, m.wSelf2, m.wNbr2}
}

// Forward implements Model.
func (m *SAGE) Forward(training bool) *nn.Variable {
	e := m.env.E
	h := m.layer(m.env.X, m.wSelf1, m.wNbr1, m.c1)
	h = e.ReLU(h)
	return m.layer(h, m.wSelf2, m.wNbr2, m.c2)
}

func (m *SAGE) layer(h, wSelf, wNbr *nn.Variable, c *exec.CompiledUDF) *nn.Variable {
	e := m.env.E
	var mean *nn.Variable
	switch m.sys {
	case SysSeastar:
		out, err := c.Apply(m.env.RT,
			map[string]*nn.Variable{"h": h, "invdeg": m.invDeg}, nil, nil)
		if err != nil {
			panic(err)
		}
		mean = out
	case SysDGL:
		mean = e.MulColVec(m.env.DGL.UpdateAllCopySum(h), m.invDeg)
	default: // SysPyG
		mean = e.MulColVec(m.env.PyG.ScatterAddDst(m.env.PyG.GatherSrc(h)), m.invDeg)
	}
	return e.Add(e.MatMul(h, wSelf), e.MatMul(mean, wNbr))
}

package models

import (
	"fmt"

	"seastar/internal/exec"
	"seastar/internal/gir"
	"seastar/internal/nn"
)

// GCN is the two-layer graph convolutional network of Figure 1:
// h' = σ(b + Σ_{u∈N(v)} norm_u · h_u W).
type GCN struct {
	sys  System
	env  *Env
	norm *nn.Variable

	w1, b1 *nn.Variable
	w2, b2 *nn.Variable

	// compiled per-layer Seastar programs (traced once, cached).
	c1, c2 *exec.CompiledUDF
}

// NewGCN builds a 2-layer GCN (input → hidden → classes) on sys.
func NewGCN(env *Env, sys System, hidden int) (*GCN, error) {
	in := env.DS.Feat.Cols()
	classes := env.DS.NumClasses
	m := &GCN{
		sys:  sys,
		env:  env,
		norm: env.normVar(),
		w1:   env.xavier("gcn.W1", in, hidden),
		b1:   env.zeros("gcn.b1", hidden),
		w2:   env.xavier("gcn.W2", hidden, classes),
		b2:   env.zeros("gcn.b2", classes),
	}
	switch sys {
	case SysSeastar:
		var err error
		if m.c1, err = compileGCNLayer(in, hidden); err != nil {
			return nil, err
		}
		if m.c2, err = compileGCNLayer(hidden, classes); err != nil {
			return nil, err
		}
	case SysDGL, SysPyG:
	default:
		return nil, unknownSystem("GCN", sys)
	}
	return m, nil
}

// compileGCNLayer traces the Figure-3 GCN body:
// sum([mm(u.h, W) * u.norm for u in v.innbs]).
func compileGCNLayer(in, out int) (*exec.CompiledUDF, error) {
	b := gir.NewBuilder()
	b.VFeature("h", in)
	b.VFeature("norm", 1)
	W := b.Param("W", in, out)
	dag, err := b.Build(func(v *gir.Vertex) *gir.Value {
		return v.Nbr("h").MatMul(W).Mul(v.Nbr("norm")).AggSum()
	})
	if err != nil {
		return nil, err
	}
	return exec.Compile(dag)
}

// Name implements Model.
func (m *GCN) Name() string { return fmt.Sprintf("gcn-%s", m.sys) }

// Params implements Model.
func (m *GCN) Params() []*nn.Variable {
	return []*nn.Variable{m.w1, m.b1, m.w2, m.b2}
}

// Forward implements Model: sigmoid(conv1) → conv2 (logits).
func (m *GCN) Forward(training bool) *nn.Variable {
	h := m.layer(m.env.X, m.w1, m.b1, m.c1)
	h = m.env.E.Sigmoid(h)
	return m.layer(h, m.w2, m.b2, m.c2)
}

func (m *GCN) layer(h, w, bias *nn.Variable, c *exec.CompiledUDF) *nn.Variable {
	e := m.env.E
	var agg *nn.Variable
	switch m.sys {
	case SysSeastar:
		out, err := c.Apply(m.env.RT,
			map[string]*nn.Variable{"h": h, "norm": m.norm}, nil,
			map[string]*nn.Variable{"W": w})
		if err != nil {
			panic(err)
		}
		agg = out
	case SysDGL:
		t := e.MatMul(h, w)
		t = e.MulColVec(t, m.norm)
		agg = m.env.DGL.UpdateAllCopySum(t)
	case SysPyG:
		t := e.MatMul(h, w)
		t = e.MulColVec(t, m.norm)
		msg := m.env.PyG.GatherSrc(t)
		agg = m.env.PyG.ScatterAddDst(msg)
	}
	return e.AddRow(agg, bias)
}

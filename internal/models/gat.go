package models

import (
	"fmt"

	"seastar/internal/exec"
	"seastar/internal/gir"
	"seastar/internal/nn"
)

// GAT is the two-layer single-head graph attention network of Figure 2.
type GAT struct {
	sys System
	env *Env

	w1, au1, av1 *nn.Variable
	w2, au2, av2 *nn.Variable

	c1, c2 *exec.CompiledUDF
	slope  float32
}

// NewGAT builds a 2-layer GAT (input → hidden → classes) on sys.
func NewGAT(env *Env, sys System, hidden int) (*GAT, error) {
	in := env.DS.Feat.Cols()
	classes := env.DS.NumClasses
	m := &GAT{
		sys:   sys,
		env:   env,
		slope: 0.2,
		w1:    env.xavier("gat.W1", in, hidden),
		au1:   env.xavier("gat.aU1", hidden, 1),
		av1:   env.xavier("gat.aV1", hidden, 1),
		w2:    env.xavier("gat.W2", hidden, classes),
		au2:   env.xavier("gat.aU2", classes, 1),
		av2:   env.xavier("gat.aV2", classes, 1),
	}
	switch sys {
	case SysSeastar:
		var err error
		if m.c1, err = compileGATLayer(hidden, m.slope); err != nil {
			return nil, err
		}
		if m.c2, err = compileGATLayer(classes, m.slope); err != nil {
			return nil, err
		}
	case SysDGL, SysPyG:
	default:
		return nil, unknownSystem("GAT", sys)
	}
	return m, nil
}

// compileGATLayer traces the Figure-3 GAT body (attention scores eu/ev
// precomputed densely, as in the paper's own listing).
func compileGATLayer(dim int, slope float32) (*exec.CompiledUDF, error) {
	b := gir.NewBuilder()
	b.VFeature("eu", 1)
	b.VFeature("ev", 1)
	b.VFeature("h", dim)
	dag, err := b.Build(func(v *gir.Vertex) *gir.Value {
		e := v.Nbr("eu").Add(v.Self("ev")).LeakyReLU(slope).Exp()
		a := e.Div(e.AggSum())
		return a.Mul(v.Nbr("h")).AggSum()
	})
	if err != nil {
		return nil, err
	}
	return exec.Compile(dag)
}

// Name implements Model.
func (m *GAT) Name() string { return fmt.Sprintf("gat-%s", m.sys) }

// Params implements Model.
func (m *GAT) Params() []*nn.Variable {
	return []*nn.Variable{m.w1, m.au1, m.av1, m.w2, m.au2, m.av2}
}

// Forward implements Model.
func (m *GAT) Forward(training bool) *nn.Variable {
	h := m.layer(m.env.X, m.w1, m.au1, m.av1, m.c1)
	h = m.env.E.ReLU(h)
	return m.layer(h, m.w2, m.au2, m.av2, m.c2)
}

// MultiHeadGAT runs H independent attention heads per layer and
// concatenates their outputs — the configuration the paper's evaluation
// actually trains (DGL's default GAT uses 8 heads). Heads share the input
// projection but have separate attention vectors, and each head executes
// the same compiled program (traced once per output width).
type MultiHeadGAT struct {
	sys   System
	env   *Env
	heads int

	w1       *nn.Variable // [in, H*hid]
	au1, av1 []*nn.Variable
	w2       *nn.Variable // [H*hid, classes]
	au2, av2 *nn.Variable

	c1, c2 *exec.CompiledUDF
	slope  float32
}

// NewMultiHeadGAT builds a 2-layer GAT with `heads` attention heads in
// the first layer (hidden per head) and a single-head output layer.
func NewMultiHeadGAT(env *Env, sys System, hidden, heads int) (*MultiHeadGAT, error) {
	if heads < 1 {
		return nil, fmt.Errorf("models: need ≥1 head, got %d", heads)
	}
	in := env.DS.Feat.Cols()
	classes := env.DS.NumClasses
	m := &MultiHeadGAT{
		sys: sys, env: env, heads: heads, slope: 0.2,
		w1: env.xavier("mhgat.W1", in, heads*hidden),
	}
	for k := 0; k < heads; k++ {
		m.au1 = append(m.au1, env.xavier(fmt.Sprintf("mhgat.aU1.%d", k), hidden, 1))
		m.av1 = append(m.av1, env.xavier(fmt.Sprintf("mhgat.aV1.%d", k), hidden, 1))
	}
	m.w2 = env.xavier("mhgat.W2", heads*hidden, classes)
	m.au2 = env.xavier("mhgat.aU2", classes, 1)
	m.av2 = env.xavier("mhgat.aV2", classes, 1)
	switch sys {
	case SysSeastar:
		var err error
		if m.c1, err = compileGATLayer(hidden, m.slope); err != nil {
			return nil, err
		}
		if m.c2, err = compileGATLayer(classes, m.slope); err != nil {
			return nil, err
		}
	case SysDGL, SysPyG:
	default:
		return nil, unknownSystem("multi-head GAT", sys)
	}
	return m, nil
}

// Name implements Model.
func (m *MultiHeadGAT) Name() string {
	return fmt.Sprintf("gat%dh-%s", m.heads, m.sys)
}

// Params implements Model.
func (m *MultiHeadGAT) Params() []*nn.Variable {
	ps := []*nn.Variable{m.w1, m.w2, m.au2, m.av2}
	ps = append(ps, m.au1...)
	return append(ps, m.av1...)
}

// Forward implements Model.
func (m *MultiHeadGAT) Forward(training bool) *nn.Variable {
	e := m.env.E
	h := e.MatMul(m.env.X, m.w1) // shared projection [N, H*hid]
	hid := h.Value.Cols() / m.heads
	outs := make([]*nn.Variable, m.heads)
	for k := 0; k < m.heads; k++ {
		hk := e.SliceCols(h, k*hid, (k+1)*hid)
		outs[k] = m.attend(hk, m.au1[k], m.av1[k], m.c1)
	}
	cat := e.ReLU(e.ConcatCols(outs...))
	h2 := e.MatMul(cat, m.w2)
	return m.attend(h2, m.au2, m.av2, m.c2)
}

// attend runs one attention head over pre-projected features.
func (m *MultiHeadGAT) attend(h, aU, aV *nn.Variable, c *exec.CompiledUDF) *nn.Variable {
	e := m.env.E
	eu := e.MatMul(h, aU)
	ev := e.MatMul(h, aV)
	switch m.sys {
	case SysSeastar:
		out, err := c.Apply(m.env.RT,
			map[string]*nn.Variable{"eu": eu, "ev": ev, "h": h}, nil, nil)
		if err != nil {
			panic(err)
		}
		return out
	case SysDGL:
		edges := m.env.DGL.ApplyEdgesUAddV(eu, ev)
		edges = e.LeakyReLU(edges, m.slope)
		a := m.env.DGL.EdgeSoftmax(edges)
		return m.env.DGL.UpdateAllUMulESum(h, a)
	default: // SysPyG
		p := m.env.PyG
		s := e.Add(p.GatherSrc(eu), p.GatherDst(ev))
		s = e.LeakyReLU(s, m.slope)
		a := p.EdgeSoftmax(s)
		he := p.GatherSrc(h)
		msg := e.MulColVec(he, a)
		return p.ScatterAddDst(msg)
	}
}

func (m *GAT) layer(x, w, aU, aV *nn.Variable, c *exec.CompiledUDF) *nn.Variable {
	e := m.env.E
	h := e.MatMul(x, w)
	eu := e.MatMul(h, aU) // [N,1]
	ev := e.MatMul(h, aV)
	switch m.sys {
	case SysSeastar:
		out, err := c.Apply(m.env.RT,
			map[string]*nn.Variable{"eu": eu, "ev": ev, "h": h}, nil, nil)
		if err != nil {
			panic(err)
		}
		return out
	case SysDGL:
		edges := m.env.DGL.ApplyEdgesUAddV(eu, ev)
		edges = e.LeakyReLU(edges, m.slope)
		a := m.env.DGL.EdgeSoftmax(edges)
		return m.env.DGL.UpdateAllUMulESum(h, a)
	default: // SysPyG
		p := m.env.PyG
		s := e.Add(p.GatherSrc(eu), p.GatherDst(ev))
		s = e.LeakyReLU(s, m.slope)
		a := p.EdgeSoftmax(s)
		he := p.GatherSrc(h)
		msg := e.MulColVec(he, a)
		return p.ScatterAddDst(msg)
	}
}

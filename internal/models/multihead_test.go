package models

import (
	"testing"

	"seastar/internal/device"
	"seastar/internal/nn"
	"seastar/internal/tensor"
)

func buildMH(t *testing.T, sys System) (*MultiHeadGAT, *Env) {
	t.Helper()
	ds := tinyHomo(t)
	env := NewEnv(device.New(device.V100), ds, 123)
	m, err := NewMultiHeadGAT(env, sys, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	return m, env
}

func TestMultiHeadGATAgreesAcrossSystems(t *testing.T) {
	ref, refEnv := buildMH(t, SysSeastar)
	refOut, refGrads := forwardAndGrads(t, ref, refEnv)
	if refOut.Cols() != refEnv.DS.NumClasses {
		t.Fatalf("output width %d", refOut.Cols())
	}
	for _, sys := range []System{SysDGL, SysPyG} {
		m, env := buildMH(t, sys)
		out, grads := forwardAndGrads(t, m, env)
		if !tensor.AllClose(out, refOut, 1e-3) {
			t.Fatalf("%s logits diverge by %g", sys, tensor.MaxAbsDiff(out, refOut))
		}
		for i := range grads {
			if !tensor.AllClose(grads[i], refGrads[i], 2e-3) {
				t.Fatalf("%s grad %d diverges by %g", sys, i,
					tensor.MaxAbsDiff(grads[i], refGrads[i]))
			}
		}
	}
}

func TestMultiHeadGATTrains(t *testing.T) {
	m, env := buildMH(t, SysSeastar)
	opt := nn.NewAdam(m.Params(), 0.01)
	var first, last float32
	for it := 0; it < 10; it++ {
		logits := m.Forward(true)
		loss := env.E.CrossEntropyMasked(logits, env.DS.Labels, env.DS.TrainMask)
		if it == 0 {
			first = loss.Value.At1(0)
		}
		last = loss.Value.At1(0)
		env.E.Backward(loss)
		opt.Step()
		env.E.EndIteration()
	}
	if last >= first {
		t.Fatalf("multi-head GAT did not learn: %v -> %v", first, last)
	}
}

func TestMultiHeadGATValidation(t *testing.T) {
	ds := tinyHomo(t)
	env := NewEnv(device.New(device.V100), ds, 1)
	if _, err := NewMultiHeadGAT(env, SysSeastar, 4, 0); err == nil {
		t.Fatal("zero heads accepted")
	}
	if _, err := NewMultiHeadGAT(env, System("x"), 4, 2); err == nil {
		t.Fatal("unknown system accepted")
	}
	m, err := NewMultiHeadGAT(env, SysSeastar, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "gat2h-seastar" {
		t.Fatalf("name %q", m.Name())
	}
	// 2 heads → W1, W2, aU2, aV2 + 2×(aU1, aV1) = 8 params.
	if len(m.Params()) != 8 {
		t.Fatalf("params: %d", len(m.Params()))
	}
}

func TestSliceConcatGradients(t *testing.T) {
	e := nn.NewEngine(nil)
	x := e.Param(tensor.FromSlice([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
	}, 2, 4), "x")
	a := e.SliceCols(x, 0, 2)
	b := e.SliceCols(x, 2, 4)
	if a.Value.At(1, 1) != 6 || b.Value.At(0, 0) != 3 {
		t.Fatalf("slices: %v %v", a.Value, b.Value)
	}
	// Swap halves and reduce: grad of x must be all ones (permutation).
	y := e.ConcatCols(b, a)
	if y.Value.At(0, 0) != 3 || y.Value.At(0, 2) != 1 {
		t.Fatalf("concat: %v", y.Value)
	}
	e.Backward(e.SumAll(y))
	for i := 0; i < x.Value.Size(); i++ {
		if x.Grad.At1(i) != 1 {
			t.Fatalf("grad[%d] = %v", i, x.Grad.At1(i))
		}
	}
}

func TestSliceColsBoundsPanic(t *testing.T) {
	e := nn.NewEngine(nil)
	x := e.Param(tensor.New(2, 4), "x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.SliceCols(x, 3, 2)
}

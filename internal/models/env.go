// Package models implements the four GNNs of the paper's evaluation —
// GCN, GAT, APPNP and R-GCN — each on three systems: Seastar
// (vertex-centric compiled kernels), the DGL-style message-passing
// baseline, and the PyG-style scatter/gather baseline (plus the bmm
// variants for R-GCN). All implementations of a model compute the same
// function, which the tests assert, reproducing the paper's correctness
// methodology ("the same results as DGL", §7).
package models

import (
	"fmt"
	"math"
	"math/rand"

	"seastar/internal/datasets"
	"seastar/internal/device"
	"seastar/internal/dgl"
	"seastar/internal/exec"
	"seastar/internal/graph"
	"seastar/internal/nn"
	"seastar/internal/pyg"
	"seastar/internal/tensor"
)

// System selects the executing framework.
type System string

const (
	SysSeastar System = "seastar"
	SysDGL     System = "dgl"
	SysPyG     System = "pyg"
	// R-GCN additionally has the manually optimized baselines.
	SysDGLBMM System = "dgl-bmm"
	SysPyGBMM System = "pyg-bmm"
)

// Model is a trainable GNN producing [N, classes] logits.
type Model interface {
	Name() string
	Forward(training bool) *nn.Variable
	Params() []*nn.Variable
}

// Env bundles everything a model needs: the engine (and through it the
// simulated device), the degree-sorted graph, the dataset, and the
// per-system execution engines.
type Env struct {
	E   *nn.Engine
	G   *graph.Graph
	DS  *datasets.Dataset
	RT  *exec.Runtime
	DGL *dgl.Engine
	PyG *pyg.Engine

	// X is the input feature variable (resident on device, no grad).
	X *nn.Variable

	rng *rand.Rand
}

// NewEnv prepares a training environment on the given device. The graph
// is degree-sorted (Seastar's preprocessing, §6.3.3); row-id indirection
// keeps vertex ids stable so the baselines run on the same object. It
// panics if the graph and features alone exceed device memory; use
// NewEnvChecked when that is a reportable outcome.
func NewEnv(dev *device.Device, ds *datasets.Dataset, seed int64) *Env {
	env, err := NewEnvChecked(dev, ds, seed)
	if err != nil {
		panic(err)
	}
	return env
}

// EnvOptions tunes environment preparation.
type EnvOptions struct {
	// DegreeSort controls the §6.3.3 preprocessing: reorder CSR rows by
	// descending degree so balanced partitions and locality follow. On by
	// default; turning it off runs the raw edge order (for ablations and
	// the -degree-sort=false CLI flag).
	DegreeSort bool
}

// DefaultEnvOptions is the paper's configuration: degree sorting on.
func DefaultEnvOptions() EnvOptions { return EnvOptions{DegreeSort: true} }

// NewEnvChecked is NewEnv returning an out-of-memory error instead of
// panicking (the experiment harness reports such configurations as OOM,
// like the paper's "-" entries).
func NewEnvChecked(dev *device.Device, ds *datasets.Dataset, seed int64) (*Env, error) {
	return NewEnvWith(dev, ds, seed, DefaultEnvOptions())
}

// NewEnvWith is NewEnvChecked with explicit options.
func NewEnvWith(dev *device.Device, ds *datasets.Dataset, seed int64, opt EnvOptions) (env *Env, err error) {
	defer func() {
		if r := recover(); r != nil {
			if oom, ok := r.(*device.ErrOOM); ok {
				env, err = nil, oom
				return
			}
			panic(r)
		}
	}()
	e := nn.NewEngine(dev)
	g := ds.G
	if opt.DegreeSort {
		g = g.SortByDegree()
	}
	// Graph structure moves to the device once at program start (§6.1).
	if dev != nil {
		dev.MustAlloc(g.DeviceBytes())
	}
	env = &Env{
		E:   e,
		G:   g,
		DS:  ds,
		DGL: dgl.New(e, g),
		PyG: pyg.New(e, g),
		RT:  exec.NewRuntime(e, g),
		rng: rand.New(rand.NewSource(seed)),
	}
	env.X = e.Input(ds.Feat, "x")
	return env, nil
}

// normVar returns the 1/in-degree GCN normalizer as an input variable.
func (env *Env) normVar() *nn.Variable {
	return env.E.Input(datasets.GCNNorm(env.G), "norm")
}

// symNormVars returns the symmetric-normalization pair used by APPNP:
// srcnorm[u] = 1/√out-deg(u), dstnorm[v] = 1/√in-deg(v).
func (env *Env) symNormVars() (src, dst *nn.Variable) {
	out := env.G.OutDegrees()
	in := env.G.InDegrees()
	sn := tensor.New(env.G.N, 1)
	dn := tensor.New(env.G.N, 1)
	for v := 0; v < env.G.N; v++ {
		if out[v] > 0 {
			sn.Set(v, 0, float32(1/math.Sqrt(float64(out[v]))))
		}
		if in[v] > 0 {
			dn.Set(v, 0, float32(1/math.Sqrt(float64(in[v]))))
		}
	}
	return env.E.Input(sn, "srcnorm"), env.E.Input(dn, "dstnorm")
}

// edgeNormVar returns the per-edge R-GCN normalizer 1/c_{v,r}.
func (env *Env) edgeNormVar() *nn.Variable {
	return env.E.Input(datasets.RGCNEdgeNorm(env.G), "edgenorm")
}

// xavier draws a Xavier-initialized parameter; all systems construct
// weights through this in the same order, so equal seeds yield equal
// models across systems.
func (env *Env) xavier(name string, shape ...int) *nn.Variable {
	var t *tensor.Tensor
	switch len(shape) {
	case 2:
		t = tensor.XavierUniform(env.rng, shape[0], shape[1])
	case 3:
		l := math.Sqrt(6 / float64(shape[1]+shape[2]))
		t = tensor.Uniform(env.rng, -l, l, shape...)
	default:
		t = tensor.New(shape...)
	}
	return env.E.Param(t, name)
}

func (env *Env) zeros(name string, shape ...int) *nn.Variable {
	return env.E.Param(tensor.New(shape...), name)
}

func unknownSystem(model string, sys System) error {
	return fmt.Errorf("models: %s does not support system %q", model, sys)
}

// Package sampling implements mini-batch neighbour sampling for GNN
// training, the substrate of sampling-based systems like Euler and
// AliGraph that the paper positions Seastar as a training engine for
// (§8). A Sampler draws a fixed fan-out of in-neighbours per layer from
// seed vertices, producing an induced Batch subgraph with compact ids;
// compiled Seastar programs then run on the batch graph unchanged
// (degree sorting per batch is cheap and, as §6.3.3 notes, can be
// prepared in the background).
package sampling

import (
	"fmt"
	"math/rand"

	"seastar/internal/graph"
	"seastar/internal/tensor"
)

// Sampler draws layered neighbourhoods from a base graph.
type Sampler struct {
	G *graph.Graph
	// FanOut[l] bounds the in-neighbours sampled per vertex at layer l
	// (0 = the seeds' layer). len(FanOut) = number of GNN layers.
	FanOut []int
	rng    *rand.Rand
}

// NewSampler creates a sampler over g.
func NewSampler(g *graph.Graph, fanOut []int, seed int64) (*Sampler, error) {
	if len(fanOut) == 0 {
		return nil, fmt.Errorf("sampling: empty fan-out")
	}
	for _, f := range fanOut {
		if f < 1 {
			return nil, fmt.Errorf("sampling: fan-out must be ≥ 1, got %d", f)
		}
	}
	return &Sampler{G: g, FanOut: fanOut, rng: rand.New(rand.NewSource(seed))}, nil
}

// Batch is one sampled subgraph.
type Batch struct {
	// Sub is the induced subgraph over the sampled vertices, with
	// compact ids 0..n-1.
	Sub *graph.Graph
	// Vertices maps compact ids back to base-graph ids.
	Vertices []int32
	// SeedCount seeds occupy compact ids 0..SeedCount-1 in seed order.
	SeedCount int
}

// Sample draws one batch for the given seed vertices.
func (s *Sampler) Sample(seeds []int32) (*Batch, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("sampling: no seeds")
	}
	compact := make(map[int32]int32, len(seeds)*4)
	var vertices []int32
	add := func(v int32) int32 {
		if id, ok := compact[v]; ok {
			return id
		}
		id := int32(len(vertices))
		compact[v] = id
		vertices = append(vertices, v)
		return id
	}
	for _, v := range seeds {
		if v < 0 || int(v) >= s.G.N {
			return nil, fmt.Errorf("sampling: seed %d out of range", v)
		}
		add(v)
	}

	// CSR rows are permuted when the base graph is degree-sorted; build
	// a vertex→row index once.
	rowOf := s.rowIndex()

	var srcs, dsts []int32
	frontier := append([]int32(nil), seeds...)
	for _, fan := range s.FanOut {
		var next []int32
		for _, v := range frontier {
			nbrs, _ := s.G.In.Row(int(rowOf[v]))
			idx := sampleIndices(s.rng, len(nbrs), fan)
			for _, i := range idx {
				u := nbrs[i]
				if _, seen := compact[u]; !seen {
					next = append(next, u)
				}
				srcs = append(srcs, add(u))
				dsts = append(dsts, compact[v])
			}
		}
		frontier = next
		if len(frontier) == 0 {
			break
		}
	}

	sub, err := graph.FromEdges(len(vertices), srcs, dsts)
	if err != nil {
		return nil, err
	}
	return &Batch{Sub: sub, Vertices: vertices, SeedCount: len(seeds)}, nil
}

// rowIndex maps vertex id → CSR row of the in-CSR.
func (s *Sampler) rowIndex() []int32 {
	idx := make([]int32, s.G.N)
	for row, v := range s.G.In.RowIDs {
		idx[v] = int32(row)
	}
	return idx
}

// sampleIndices picks min(fan, n) distinct indices from [0, n) uniformly
// (partial Fisher–Yates).
func sampleIndices(rng *rand.Rand, n, fan int) []int32 {
	if n == 0 {
		return nil
	}
	if fan >= n {
		out := make([]int32, n)
		for i := range out {
			out[i] = int32(i)
		}
		return out
	}
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	for i := 0; i < fan; i++ {
		j := i + rng.Intn(n-i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm[:fan]
}

// GatherFeatures copies the batch's rows out of a base [N, d] tensor.
func (b *Batch) GatherFeatures(base *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(len(b.Vertices), base.Cols())
	for i, v := range b.Vertices {
		copy(out.Row(i), base.Row(int(v)))
	}
	return out
}

// GatherLabels copies per-vertex integers for the batch.
func (b *Batch) GatherLabels(base []int) []int {
	out := make([]int, len(b.Vertices))
	for i, v := range b.Vertices {
		out[i] = base[v]
	}
	return out
}

// SeedMask returns a mask selecting the seed rows of the batch (loss is
// computed on seeds only).
func (b *Batch) SeedMask() []bool {
	m := make([]bool, len(b.Vertices))
	for i := 0; i < b.SeedCount; i++ {
		m[i] = true
	}
	return m
}

// Batches partitions vertices (shuffled) into seed batches of the given
// size — one training epoch's worth.
func (s *Sampler) Batches(batchSize int) ([][]int32, error) {
	if batchSize < 1 {
		return nil, fmt.Errorf("sampling: batch size must be ≥ 1")
	}
	perm := s.rng.Perm(s.G.N)
	var out [][]int32
	for lo := 0; lo < len(perm); lo += batchSize {
		hi := lo + batchSize
		if hi > len(perm) {
			hi = len(perm)
		}
		batch := make([]int32, hi-lo)
		for i, p := range perm[lo:hi] {
			batch[i] = int32(p)
		}
		out = append(out, batch)
	}
	return out, nil
}

// Package sampling implements mini-batch neighbour sampling for GNN
// training, the substrate of sampling-based systems like Euler and
// AliGraph that the paper positions Seastar as a training engine for
// (§8). A Sampler draws a fixed fan-out of in-neighbours per layer from
// seed vertices, producing an induced Batch subgraph with compact ids;
// compiled Seastar programs then run on the batch graph unchanged
// (degree sorting per batch is cheap and, as §6.3.3 notes, can be
// prepared in the background).
package sampling

import (
	"fmt"
	"math/rand"
	"sync"

	"seastar/internal/graph"
	"seastar/internal/tensor"
)

// Sampler draws layered neighbourhoods from a base graph.
//
// The sampler owns two independent RNG streams derived from its base
// seed: one for batch-order shuffling (Batches) and one for neighbour
// draws (Sample). Keeping them separate means interleaving Sample calls
// between Batches calls cannot perturb the epoch's batch order — the
// coupling that used to make the training curve depend on how many
// batches had been sampled so far.
type Sampler struct {
	G *graph.Graph
	// FanOut[l] bounds the in-neighbours sampled per vertex at layer l
	// (0 = the seeds' layer). len(FanOut) = number of GNN layers.
	FanOut []int

	baseSeed int64
	shuffle  *rand.Rand // batch-order stream (Batches)
	sample   *rand.Rand // neighbour-draw stream (Sample)

	rowOnce sync.Once
	rowOf   []int32
}

// Stream tags name the derived RNG streams so their seeds cannot collide
// with per-batch seeds (which use epoch ≥ 0, batch ≥ 0).
const (
	streamShuffle = -1
	streamSample  = -2
)

// NewSampler creates a sampler over g.
func NewSampler(g *graph.Graph, fanOut []int, seed int64) (*Sampler, error) {
	if len(fanOut) == 0 {
		return nil, fmt.Errorf("sampling: empty fan-out")
	}
	for _, f := range fanOut {
		if f < 1 {
			return nil, fmt.Errorf("sampling: fan-out must be ≥ 1, got %d", f)
		}
	}
	return &Sampler{
		G:        g,
		FanOut:   fanOut,
		baseSeed: seed,
		shuffle:  rand.New(rand.NewSource(DeriveSeed(seed, streamShuffle, 0))),
		sample:   rand.New(rand.NewSource(DeriveSeed(seed, streamSample, 0))),
	}, nil
}

// BaseSeed returns the seed the sampler was constructed with; pipelined
// trainers combine it with (epoch, batch) via DeriveSeed.
func (s *Sampler) BaseSeed() int64 { return s.baseSeed }

// splitmix64 is the SplitMix64 finalizer: a bijective avalanche mix.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// DeriveSeed deterministically mixes (base, epoch, batch) into an
// independent RNG seed. Pipelined training samples batch k of epoch e
// with DeriveSeed(base, e, k) regardless of which worker draws it or in
// what order, so a pipelined run is bitwise-identical to a serial one.
// Negative epochs are reserved for the sampler's internal streams.
func DeriveSeed(base int64, epoch, batch int) int64 {
	z := splitmix64(uint64(base))
	z = splitmix64(z ^ uint64(int64(epoch)))
	z = splitmix64(z ^ uint64(int64(batch)))
	return int64(z)
}

// Batch is one sampled subgraph.
type Batch struct {
	// Sub is the induced subgraph over the sampled vertices, with
	// compact ids 0..n-1.
	Sub *graph.Graph
	// Vertices maps compact ids back to base-graph ids.
	Vertices []int32
	// SeedCount seeds occupy compact ids 0..SeedCount-1 in seed order.
	SeedCount int
}

// Sample draws one batch for the given seed vertices using the
// sampler's own neighbour-draw stream.
func (s *Sampler) Sample(seeds []int32) (*Batch, error) {
	return s.SampleRNG(seeds, s.sample)
}

// SampleSeeded draws one batch with a fresh RNG seeded by seed, leaving
// the sampler's streams untouched. This is the entry point for pipeline
// workers: the batch depends only on (graph, fan-out, seeds, seed).
func (s *Sampler) SampleSeeded(seeds []int32, seed int64) (*Batch, error) {
	return s.SampleRNG(seeds, rand.New(rand.NewSource(seed)))
}

// SampleRNG draws one batch using the caller-supplied RNG. It is safe to
// call concurrently from multiple goroutines as long as each goroutine
// passes its own RNG (the graph and row index are read-only).
func (s *Sampler) SampleRNG(seeds []int32, rng *rand.Rand) (*Batch, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("sampling: no seeds")
	}
	compact := make(map[int32]int32, len(seeds)*4)
	var vertices []int32
	add := func(v int32) int32 {
		if id, ok := compact[v]; ok {
			return id
		}
		id := int32(len(vertices))
		compact[v] = id
		vertices = append(vertices, v)
		return id
	}
	for _, v := range seeds {
		if v < 0 || int(v) >= s.G.N {
			return nil, fmt.Errorf("sampling: seed %d out of range", v)
		}
		add(v)
	}

	// CSR rows are permuted when the base graph is degree-sorted; build
	// a vertex→row index once.
	rowOf := s.rowIndex()

	var srcs, dsts []int32
	frontier := append([]int32(nil), seeds...)
	for _, fan := range s.FanOut {
		var next []int32
		for _, v := range frontier {
			nbrs, _ := s.G.In.Row(int(rowOf[v]))
			idx := sampleIndices(rng, len(nbrs), fan)
			for _, i := range idx {
				u := nbrs[i]
				if _, seen := compact[u]; !seen {
					next = append(next, u)
				}
				srcs = append(srcs, add(u))
				dsts = append(dsts, compact[v])
			}
		}
		frontier = next
		if len(frontier) == 0 {
			break
		}
	}

	sub, err := graph.FromEdges(len(vertices), srcs, dsts)
	if err != nil {
		return nil, err
	}
	return &Batch{Sub: sub, Vertices: vertices, SeedCount: len(seeds)}, nil
}

// rowIndex maps vertex id → CSR row of the in-CSR. The graph is
// immutable, so the index is built once and shared by every Sample call
// (including concurrent pipeline workers).
func (s *Sampler) rowIndex() []int32 {
	s.rowOnce.Do(func() {
		idx := make([]int32, s.G.N)
		for row, v := range s.G.In.RowIDs {
			idx[v] = int32(row)
		}
		s.rowOf = idx
	})
	return s.rowOf
}

// sampleIndices picks min(fan, n) distinct indices from [0, n) uniformly
// (partial Fisher–Yates).
func sampleIndices(rng *rand.Rand, n, fan int) []int32 {
	if n == 0 {
		return nil
	}
	if fan >= n {
		out := make([]int32, n)
		for i := range out {
			out[i] = int32(i)
		}
		return out
	}
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	for i := 0; i < fan; i++ {
		j := i + rng.Intn(n-i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm[:fan]
}

// GatherFeatures copies the batch's rows out of a base [N, d] tensor.
func (b *Batch) GatherFeatures(base *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(len(b.Vertices), base.Cols())
	b.GatherFeaturesInto(out, base)
	return out
}

// GatherFeaturesInto copies the batch's rows of base into dst, which
// must be [len(Vertices), base.Cols()]. Pipelines pass pooled tensors
// here so the steady-state gather stage allocates nothing.
func (b *Batch) GatherFeaturesInto(dst, base *tensor.Tensor) {
	for i, v := range b.Vertices {
		copy(dst.Row(i), base.Row(int(v)))
	}
}

// GatherLabels copies per-vertex integers for the batch.
func (b *Batch) GatherLabels(base []int) []int {
	out := make([]int, len(b.Vertices))
	for i, v := range b.Vertices {
		out[i] = base[v]
	}
	return out
}

// SeedMask returns a mask selecting the seed rows of the batch (loss is
// computed on seeds only).
func (b *Batch) SeedMask() []bool {
	m := make([]bool, len(b.Vertices))
	for i := 0; i < b.SeedCount; i++ {
		m[i] = true
	}
	return m
}

// Batches partitions vertices (shuffled) into seed batches of the given
// size — one training epoch's worth. The shuffle draws from the
// sampler's dedicated shuffle stream, so the order depends only on the
// base seed and how many epochs have been drawn — never on interleaved
// Sample calls.
func (s *Sampler) Batches(batchSize int) ([][]int32, error) {
	if batchSize < 1 {
		return nil, fmt.Errorf("sampling: batch size must be ≥ 1")
	}
	return slicePerm(s.shuffle.Perm(s.G.N), batchSize), nil
}

// PlanEpoch returns the seed batches for one epoch, shuffled by an RNG
// derived from (baseSeed, epoch) alone. Unlike Batches it is stateless:
// any caller — a resumed checkpoint, a prefetching pipeline, a serial
// reference run — gets the identical plan for the same epoch.
func (s *Sampler) PlanEpoch(epoch, batchSize int) ([][]int32, error) {
	if batchSize < 1 {
		return nil, fmt.Errorf("sampling: batch size must be ≥ 1")
	}
	if epoch < 0 {
		return nil, fmt.Errorf("sampling: epoch must be ≥ 0, got %d", epoch)
	}
	rng := rand.New(rand.NewSource(DeriveSeed(s.baseSeed, streamShuffle, epoch+1)))
	return slicePerm(rng.Perm(s.G.N), batchSize), nil
}

func slicePerm(perm []int, batchSize int) [][]int32 {
	var out [][]int32
	for lo := 0; lo < len(perm); lo += batchSize {
		hi := lo + batchSize
		if hi > len(perm) {
			hi = len(perm)
		}
		batch := make([]int32, hi-lo)
		for i, p := range perm[lo:hi] {
			batch[i] = int32(p)
		}
		out = append(out, batch)
	}
	return out
}

package sampling

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"seastar/internal/device"
	"seastar/internal/exec"
	"seastar/internal/gir"
	"seastar/internal/graph"
	"seastar/internal/nn"
	"seastar/internal/tensor"
)

func TestSamplerValidation(t *testing.T) {
	g := graph.Figure7()
	if _, err := NewSampler(g, nil, 1); err == nil {
		t.Fatal("empty fan-out accepted")
	}
	if _, err := NewSampler(g, []int{0}, 1); err == nil {
		t.Fatal("zero fan-out accepted")
	}
	s, err := NewSampler(g, []int{2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sample(nil); err == nil {
		t.Fatal("empty seeds accepted")
	}
	if _, err := s.Sample([]int32{99}); err == nil {
		t.Fatal("out-of-range seed accepted")
	}
	if _, err := s.Batches(0); err == nil {
		t.Fatal("zero batch size accepted")
	}
}

func TestSampleStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.PowerLaw(rng, 500, 5)
	s, err := NewSampler(g, []int{3, 2}, 7)
	if err != nil {
		t.Fatal(err)
	}
	seeds := []int32{10, 20, 30}
	b, err := s.Sample(seeds)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Sub.Validate(); err != nil {
		t.Fatal(err)
	}
	if b.SeedCount != 3 {
		t.Fatalf("seed count %d", b.SeedCount)
	}
	// Seeds occupy the first compact ids, in order.
	for i, v := range seeds {
		if b.Vertices[i] != v {
			t.Fatalf("seed %d mapped to %d", v, b.Vertices[i])
		}
	}
	// Every batch edge exists in the base graph.
	baseEdges := map[[2]int32]bool{}
	for e := 0; e < g.M; e++ {
		baseEdges[[2]int32{g.Srcs[e], g.Dsts[e]}] = true
	}
	for e := 0; e < b.Sub.M; e++ {
		u := b.Vertices[b.Sub.Srcs[e]]
		v := b.Vertices[b.Sub.Dsts[e]]
		if !baseEdges[[2]int32{u, v}] {
			t.Fatalf("sampled edge %d→%d not in base graph", u, v)
		}
	}
	// Fan-out bound at the seed layer.
	inDeg := b.Sub.InDegrees()
	for i := 0; i < b.SeedCount; i++ {
		if inDeg[i] > 3 {
			t.Fatalf("seed %d has %d sampled in-edges (fan-out 3)", i, inDeg[i])
		}
	}
	mask := b.SeedMask()
	if !mask[0] || !mask[2] || mask[3] {
		t.Fatalf("seed mask %v", mask[:5])
	}
}

func TestSampleOnSortedGraph(t *testing.T) {
	// The sampler must handle degree-sorted base graphs (permuted CSR
	// rows) via the row index.
	rng := rand.New(rand.NewSource(2))
	g := graph.PowerLaw(rng, 300, 4).SortByDegree()
	s, err := NewSampler(g, []int{2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Sample([]int32{5})
	if err != nil {
		t.Fatal(err)
	}
	// All sampled in-neighbours of 5 must be real in-neighbours.
	real := map[int32]bool{}
	for e := 0; e < g.M; e++ {
		if g.Dsts[e] == 5 {
			real[g.Srcs[e]] = true
		}
	}
	for e := 0; e < b.Sub.M; e++ {
		if b.Vertices[b.Sub.Dsts[e]] == 5 && !real[b.Vertices[b.Sub.Srcs[e]]] {
			t.Fatalf("fake neighbour %d", b.Vertices[b.Sub.Srcs[e]])
		}
	}
}

func TestBatchesPartition(t *testing.T) {
	g := graph.Path(10)
	s, err := NewSampler(g, []int{2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	batches, err := s.Batches(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 4 { // 3+3+3+1
		t.Fatalf("batches: %d", len(batches))
	}
	seen := map[int32]bool{}
	for _, b := range batches {
		for _, v := range b {
			if seen[v] {
				t.Fatalf("vertex %d in two batches", v)
			}
			seen[v] = true
		}
	}
	if len(seen) != 10 {
		t.Fatalf("coverage: %d", len(seen))
	}
}

func TestGatherHelpers(t *testing.T) {
	g := graph.Figure7()
	s, _ := NewSampler(g, []int{2}, 5)
	b, err := s.Sample([]int32{0})
	if err != nil {
		t.Fatal(err)
	}
	base := tensor.FromSlice([]float32{10, 20, 30, 40}, 4, 1)
	feats := b.GatherFeatures(base)
	for i, v := range b.Vertices {
		if feats.At(i, 0) != base.At(int(v), 0) {
			t.Fatalf("feature row %d", i)
		}
	}
	labels := b.GatherLabels([]int{7, 8, 9, 6})
	if labels[0] != 7 { // seed 0
		t.Fatalf("labels: %v", labels)
	}
}

func TestMiniBatchTrainingWithSeastar(t *testing.T) {
	// End-to-end: sample batches, run a compiled Seastar GCN layer on
	// each batch subgraph, and check the loss drops — Seastar as the
	// training engine of a sampling-based system.
	rng := rand.New(rand.NewSource(3))
	g := graph.PowerLaw(rng, 400, 5)
	feat := tensor.Randn(rng, 1, 400, 8)
	labels := make([]int, 400)
	for i := range labels {
		labels[i] = rng.Intn(3)
	}

	b := gir.NewBuilder()
	b.VFeature("h", 8)
	W := b.Param("W", 8, 3)
	dag, err := b.Build(func(v *gir.Vertex) *gir.Value {
		self := v.Self("h").MatMul(W)
		return v.Nbr("h").MatMul(W).AggSum().Add(self)
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := exec.Compile(dag)
	if err != nil {
		t.Fatal(err)
	}

	dev := device.New(device.V100)
	e := nn.NewEngine(dev)
	w := e.Param(tensor.XavierUniform(rng, 8, 3), "W")
	opt := nn.NewAdam([]*nn.Variable{w}, 0.02)
	sampler, err := NewSampler(g, []int{4}, 11)
	if err != nil {
		t.Fatal(err)
	}

	var first, last float32
	step := 0
	for epoch := 0; epoch < 3; epoch++ {
		batches, err := sampler.Batches(100)
		if err != nil {
			t.Fatal(err)
		}
		for _, seeds := range batches {
			batch, err := sampler.Sample(seeds)
			if err != nil {
				t.Fatal(err)
			}
			sub := batch.Sub.SortByDegree()
			rt := exec.NewRuntime(e, sub)
			h := e.Input(batch.GatherFeatures(feat), "h")
			out, err := c.Apply(rt, map[string]*nn.Variable{"h": h}, nil,
				map[string]*nn.Variable{"W": w})
			if err != nil {
				t.Fatal(err)
			}
			loss := e.CrossEntropyMasked(out, batch.GatherLabels(labels), batch.SeedMask())
			if step == 0 {
				first = loss.Value.At1(0)
			}
			last = loss.Value.At1(0)
			e.Backward(loss)
			opt.Step()
			e.EndIteration()
			step++
		}
	}
	if last >= first {
		t.Fatalf("mini-batch training did not learn: %v -> %v", first, last)
	}
}

func TestQuickSampleInvariants(t *testing.T) {
	f := func(seedVal int64, nRaw, fanRaw uint8) bool {
		n := int(nRaw%50) + 5
		fan := int(fanRaw%4) + 1
		rng := rand.New(rand.NewSource(seedVal))
		g := graph.PowerLaw(rng, n, 3)
		s, err := NewSampler(g, []int{fan, fan}, seedVal)
		if err != nil {
			return false
		}
		b, err := s.Sample([]int32{int32(rng.Intn(n))})
		if err != nil {
			return false
		}
		if b.Sub.Validate() != nil {
			return false
		}
		// Vertex map is injective.
		seen := map[int32]bool{}
		for _, v := range b.Vertices {
			if seen[v] || v < 0 || int(v) >= n {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleStreamIndependentOfSampling(t *testing.T) {
	// Regression test for the shuffle/sample RNG coupling: interleaving
	// Sample calls between Batches calls must not change the epoch's
	// batch order, and drawing batch plans must not change what Sample
	// draws.
	rng := rand.New(rand.NewSource(4))
	g := graph.PowerLaw(rng, 200, 4)

	a, _ := NewSampler(g, []int{3}, 9)
	b, _ := NewSampler(g, []int{3}, 9)

	// Sampler a interleaves neighbour sampling between epochs; b does
	// not. Their epoch orders must still agree.
	ord1a, _ := a.Batches(64)
	for i := 0; i < 5; i++ {
		if _, err := a.Sample([]int32{int32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	ord2a, _ := a.Batches(64)

	ord1b, _ := b.Batches(64)
	ord2b, _ := b.Batches(64)

	if !reflect.DeepEqual(ord1a, ord1b) || !reflect.DeepEqual(ord2a, ord2b) {
		t.Fatal("Sample calls perturbed the Batches shuffle stream")
	}
	if reflect.DeepEqual(ord1a, ord2a) {
		t.Fatal("consecutive epochs produced identical shuffles")
	}

	// And the converse: batch-plan draws must not perturb sampling.
	c, _ := NewSampler(g, []int{3}, 9)
	d, _ := NewSampler(g, []int{3}, 9)
	if _, err := c.Batches(32); err != nil {
		t.Fatal(err)
	}
	sc, err := c.Sample([]int32{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	sd, err := d.Sample([]int32{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sc.Vertices, sd.Vertices) {
		t.Fatal("Batches calls perturbed the Sample stream")
	}
}

func TestPlanEpochDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.PowerLaw(rng, 150, 4)
	s, _ := NewSampler(g, []int{2}, 21)

	p1, err := s.PlanEpoch(3, 40)
	if err != nil {
		t.Fatal(err)
	}
	// Burn state on every stream; the plan must not move.
	if _, err := s.Batches(16); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sample([]int32{0, 1}); err != nil {
		t.Fatal(err)
	}
	p2, err := s.PlanEpoch(3, 40)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1, p2) {
		t.Fatal("PlanEpoch is stateful")
	}
	p3, _ := s.PlanEpoch(4, 40)
	if reflect.DeepEqual(p1, p3) {
		t.Fatal("different epochs produced identical plans")
	}
	if _, err := s.PlanEpoch(-1, 40); err == nil {
		t.Fatal("negative epoch accepted")
	}

	// A sampler built from the same seed agrees — the plan is a pure
	// function of (baseSeed, epoch).
	s2, _ := NewSampler(g, []int{2}, 21)
	p4, _ := s2.PlanEpoch(3, 40)
	if !reflect.DeepEqual(p1, p4) {
		t.Fatal("PlanEpoch depends on sampler state, not just seed")
	}
}

func TestSampleSeededReproducible(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := graph.PowerLaw(rng, 300, 5)
	s, _ := NewSampler(g, []int{4, 2}, 33)

	seeds := []int32{7, 42, 99}
	k := DeriveSeed(s.BaseSeed(), 2, 17)
	b1, err := s.SampleSeeded(seeds, k)
	if err != nil {
		t.Fatal(err)
	}
	// Same derived seed → identical batch, regardless of intervening
	// draws on the sampler's own streams.
	if _, err := s.Sample(seeds); err != nil {
		t.Fatal(err)
	}
	b2, err := s.SampleSeeded(seeds, k)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b1.Vertices, b2.Vertices) ||
		!reflect.DeepEqual(b1.Sub.Srcs, b2.Sub.Srcs) ||
		!reflect.DeepEqual(b1.Sub.Dsts, b2.Sub.Dsts) {
		t.Fatal("SampleSeeded not reproducible")
	}
	// A different derived seed draws a different neighbourhood (with
	// overwhelming probability on a 300-vertex power-law graph).
	b3, err := s.SampleSeeded(seeds, DeriveSeed(s.BaseSeed(), 2, 18))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(b1.Vertices, b3.Vertices) && reflect.DeepEqual(b1.Sub.Srcs, b3.Sub.Srcs) {
		t.Fatal("distinct derived seeds produced identical batches")
	}
}

func TestDeriveSeedSpread(t *testing.T) {
	// (epoch, batch) pairs must map to distinct seeds; collisions would
	// silently correlate batches.
	seen := map[int64]bool{}
	for e := -2; e < 40; e++ {
		for b := 0; b < 40; b++ {
			k := DeriveSeed(12345, e, b)
			if seen[k] {
				t.Fatalf("seed collision at epoch %d batch %d", e, b)
			}
			seen[k] = true
		}
	}
}

func TestGatherFeaturesInto(t *testing.T) {
	g := graph.Figure7()
	s, _ := NewSampler(g, []int{2}, 5)
	b, err := s.Sample([]int32{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	base := tensor.FromSlice([]float32{1, 2, 3, 4, 5, 6, 7, 8}, 4, 2)
	dst := tensor.New(len(b.Vertices), 2)
	b.GatherFeaturesInto(dst, base)
	want := b.GatherFeatures(base)
	if !reflect.DeepEqual(dst.Row(0), want.Row(0)) {
		t.Fatal("GatherFeaturesInto mismatch")
	}
	for i := range b.Vertices {
		for j := 0; j < 2; j++ {
			if dst.At(i, j) != want.At(i, j) {
				t.Fatalf("row %d col %d: %g != %g", i, j, dst.At(i, j), want.At(i, j))
			}
		}
	}
}

// Package graph implements the graph and data representation of Seastar
// (paper §6.1): Compressed Sparse Row storage for in-edges plus a reverse
// CSR for the backward pass, both with explicit edge-id arrays; optional
// descending-degree row sorting for the kernel-level load-balancing
// optimizations (§6.3.3); and a secondary per-row sort on edge type for
// heterogeneous models (§6.3.5).
package graph

import (
	"fmt"
	"sort"
)

// CSR stores one direction of a graph's adjacency.
//
// Row k describes vertex RowIDs[k] (identity when unsorted). The
// neighbours of that vertex occupy slots Offsets[k]..Offsets[k+1] of Nbrs,
// and EdgeIDs holds the global edge id of each slot so edge-wise (E-type)
// tensors can be addressed from either direction — the paper keeps a
// separate edge-id array precisely because the reverse CSR invalidates the
// slot-index↔edge-id mapping (§6.3.4).
type CSR struct {
	Offsets []int64
	Nbrs    []int32
	EdgeIDs []int32
	RowIDs  []int32
	// Sorted records whether rows are in descending degree order.
	Sorted bool
}

// NumRows returns the number of rows (vertices).
func (c *CSR) NumRows() int { return len(c.Offsets) - 1 }

// Degree returns the number of neighbours stored in row k.
func (c *CSR) Degree(k int) int { return int(c.Offsets[k+1] - c.Offsets[k]) }

// Row returns the neighbour and edge-id slices of row k.
func (c *CSR) Row(k int) (nbrs, eids []int32) {
	lo, hi := c.Offsets[k], c.Offsets[k+1]
	return c.Nbrs[lo:hi], c.EdgeIDs[lo:hi]
}

// MaxDegree returns the largest row degree.
func (c *CSR) MaxDegree() int {
	m := 0
	for k := 0; k < c.NumRows(); k++ {
		if d := c.Degree(k); d > m {
			m = d
		}
	}
	return m
}

// Bytes returns the device-memory footprint of the CSR arrays.
func (c *CSR) Bytes() int64 {
	return int64(len(c.Offsets))*8 + int64(len(c.Nbrs))*4 + int64(len(c.EdgeIDs))*4 + int64(len(c.RowIDs))*4
}

// Graph couples the in-CSR (used by the forward pass, which aggregates
// in-neighbours at each destination) with the out-CSR (used by the
// backward pass) and optional edge types.
type Graph struct {
	N int // number of vertices
	M int // number of edges

	// In is the in-edge CSR: row v lists u for every edge u→v.
	In CSR
	// Out is the out-edge CSR: row u lists v for every edge u→v.
	Out CSR

	// EdgeTypes maps global edge id to relation type; nil when the graph
	// is homogeneous.
	EdgeTypes    []int32
	NumEdgeTypes int

	// Srcs and Dsts are the original edge list indexed by edge id.
	Srcs, Dsts []int32
}

// FromEdges builds a graph over n vertices from parallel src/dst arrays.
// Edge i gets global edge id i. Both CSRs are built unsorted (RowIDs =
// identity).
func FromEdges(n int, srcs, dsts []int32) (*Graph, error) {
	if len(srcs) != len(dsts) {
		return nil, fmt.Errorf("graph: %d srcs vs %d dsts", len(srcs), len(dsts))
	}
	m := len(srcs)
	for i := 0; i < m; i++ {
		if srcs[i] < 0 || int(srcs[i]) >= n || dsts[i] < 0 || int(dsts[i]) >= n {
			return nil, fmt.Errorf("graph: edge %d (%d→%d) out of range [0,%d)", i, srcs[i], dsts[i], n)
		}
	}
	g := &Graph{
		N: n, M: m,
		Srcs: append([]int32(nil), srcs...),
		Dsts: append([]int32(nil), dsts...),
		In:   buildCSR(n, dsts, srcs),
		Out:  buildCSR(n, srcs, dsts),
	}
	g.NumEdgeTypes = 1
	return g, nil
}

// buildCSR groups edges by their "row" endpoint (counting sort).
func buildCSR(n int, rowOf, nbrOf []int32) CSR {
	m := len(rowOf)
	offsets := make([]int64, n+1)
	for _, r := range rowOf {
		offsets[r+1]++
	}
	for i := 0; i < n; i++ {
		offsets[i+1] += offsets[i]
	}
	nbrs := make([]int32, m)
	eids := make([]int32, m)
	cursor := make([]int64, n)
	copy(cursor, offsets[:n])
	for e := 0; e < m; e++ {
		r := rowOf[e]
		p := cursor[r]
		cursor[r]++
		nbrs[p] = nbrOf[e]
		eids[p] = int32(e)
	}
	rowIDs := make([]int32, n)
	for i := range rowIDs {
		rowIDs[i] = int32(i)
	}
	return CSR{Offsets: offsets, Nbrs: nbrs, EdgeIDs: eids, RowIDs: rowIDs}
}

// WithEdgeTypes attaches a relation type to every edge. Types must be in
// [0, numTypes).
func (g *Graph) WithEdgeTypes(types []int32, numTypes int) error {
	if len(types) != g.M {
		return fmt.Errorf("graph: %d edge types for %d edges", len(types), g.M)
	}
	for i, t := range types {
		if t < 0 || int(t) >= numTypes {
			return fmt.Errorf("graph: edge %d type %d out of range [0,%d)", i, t, numTypes)
		}
	}
	g.EdgeTypes = append([]int32(nil), types...)
	g.NumEdgeTypes = numTypes
	return nil
}

// InDegrees returns the in-degree of every vertex.
func (g *Graph) InDegrees() []int32 {
	d := make([]int32, g.N)
	for v := 0; v < g.N; v++ {
		d[g.In.RowIDs[v]] = int32(g.In.Degree(v))
	}
	return d
}

// OutDegrees returns the out-degree of every vertex.
func (g *Graph) OutDegrees() []int32 {
	d := make([]int32, g.N)
	for v := 0; v < g.N; v++ {
		d[g.Out.RowIDs[v]] = int32(g.Out.Degree(v))
	}
	return d
}

// AvgDegree returns M/N.
func (g *Graph) AvgDegree() float64 {
	if g.N == 0 {
		return 0
	}
	return float64(g.M) / float64(g.N)
}

// DeviceBytes returns the device-memory footprint of the graph structure
// (both CSRs plus the edge-type array when present), as moved to the GPU
// at program start (§6.1).
func (g *Graph) DeviceBytes() int64 {
	b := g.In.Bytes() + g.Out.Bytes()
	if g.EdgeTypes != nil {
		b += int64(len(g.EdgeTypes)) * 4
	}
	return b
}

// SortByDegree returns a copy of g whose CSR rows are reordered in
// descending degree (in-degree for In, out-degree for Out), the
// preprocessing required by the paper's dynamic load balancing (§6.3.3).
// Edge ids and neighbour ids are unchanged; only row order moves.
func (g *Graph) SortByDegree() *Graph {
	out := &Graph{
		N: g.N, M: g.M,
		Srcs: g.Srcs, Dsts: g.Dsts,
		EdgeTypes: g.EdgeTypes, NumEdgeTypes: g.NumEdgeTypes,
		In:  sortCSRByDegree(&g.In),
		Out: sortCSRByDegree(&g.Out),
	}
	return out
}

func sortCSRByDegree(c *CSR) CSR {
	n := c.NumRows()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Descending degree; ties broken by row id for determinism.
	sort.SliceStable(order, func(a, b int) bool {
		da, db := c.Degree(order[a]), c.Degree(order[b])
		if da != db {
			return da > db
		}
		return c.RowIDs[order[a]] < c.RowIDs[order[b]]
	})
	offsets := make([]int64, n+1)
	nbrs := make([]int32, len(c.Nbrs))
	eids := make([]int32, len(c.EdgeIDs))
	rowIDs := make([]int32, n)
	var pos int64
	for k, old := range order {
		offsets[k] = pos
		lo, hi := c.Offsets[old], c.Offsets[old+1]
		copy(nbrs[pos:], c.Nbrs[lo:hi])
		copy(eids[pos:], c.EdgeIDs[lo:hi])
		pos += hi - lo
		rowIDs[k] = c.RowIDs[old]
	}
	offsets[n] = pos
	return CSR{Offsets: offsets, Nbrs: nbrs, EdgeIDs: eids, RowIDs: rowIDs, Sorted: true}
}

// SortEdgesByType reorders each CSR row's slots so that edges of the same
// relation type are contiguous (stable within a type), enabling the
// sequential hierarchical aggregation of heterogeneous Seastar (§6.3.5).
// It requires edge types to be attached.
func (g *Graph) SortEdgesByType() error {
	if g.EdgeTypes == nil {
		return fmt.Errorf("graph: SortEdgesByType requires edge types")
	}
	sortRowsByType(&g.In, g.EdgeTypes)
	sortRowsByType(&g.Out, g.EdgeTypes)
	return nil
}

func sortRowsByType(c *CSR, types []int32) {
	for k := 0; k < c.NumRows(); k++ {
		lo, hi := c.Offsets[k], c.Offsets[k+1]
		nbrs := c.Nbrs[lo:hi]
		eids := c.EdgeIDs[lo:hi]
		idx := make([]int, len(eids))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			return types[eids[idx[a]]] < types[eids[idx[b]]]
		})
		nn := make([]int32, len(nbrs))
		ne := make([]int32, len(eids))
		for i, j := range idx {
			nn[i], ne[i] = nbrs[j], eids[j]
		}
		copy(nbrs, nn)
		copy(eids, ne)
	}
}

// TypeStorageRatio returns N_e / N_t from the paper's §6.3.5 analysis of
// edge-type storage: N_e is the edge count and N_t the summed count of
// distinct edge types over all vertices' in-edge lists. The compressed
// type-offset layout only pays off when the ratio exceeds 2; the paper
// measured 1.385–1.923 on its datasets and therefore stores a plain
// per-edge type array, as this package does.
func (g *Graph) TypeStorageRatio() (float64, error) {
	if g.EdgeTypes == nil {
		return 0, fmt.Errorf("graph: TypeStorageRatio requires edge types")
	}
	var nt int
	seen := make(map[int32]bool, g.NumEdgeTypes)
	for k := 0; k < g.N; k++ {
		_, eids := g.In.Row(k)
		for t := range seen {
			delete(seen, t)
		}
		for _, e := range eids {
			seen[g.EdgeTypes[e]] = true
		}
		nt += len(seen)
	}
	if nt == 0 {
		return 0, nil
	}
	return float64(g.M) / float64(nt), nil
}

// Validate checks structural invariants: monotone offsets, ids in range,
// edge ids forming a permutation in each direction, and CSR/edge-list
// agreement. It is used by tests and generators.
func (g *Graph) Validate() error {
	if err := validateCSR(&g.In, g.N, g.M, "in"); err != nil {
		return err
	}
	if err := validateCSR(&g.Out, g.N, g.M, "out"); err != nil {
		return err
	}
	// Every in-CSR slot must match the original edge list.
	for k := 0; k < g.N; k++ {
		v := g.In.RowIDs[k]
		nbrs, eids := g.In.Row(k)
		for i := range nbrs {
			e := eids[i]
			if g.Srcs[e] != nbrs[i] || g.Dsts[e] != v {
				return fmt.Errorf("graph: in-CSR slot (row %d, slot %d) edge %d mismatch", k, i, e)
			}
		}
	}
	for k := 0; k < g.N; k++ {
		u := g.Out.RowIDs[k]
		nbrs, eids := g.Out.Row(k)
		for i := range nbrs {
			e := eids[i]
			if g.Dsts[e] != nbrs[i] || g.Srcs[e] != u {
				return fmt.Errorf("graph: out-CSR slot (row %d, slot %d) edge %d mismatch", k, i, e)
			}
		}
	}
	return nil
}

func validateCSR(c *CSR, n, m int, dir string) error {
	if c.NumRows() != n {
		return fmt.Errorf("graph: %s-CSR has %d rows, want %d", dir, c.NumRows(), n)
	}
	if c.Offsets[0] != 0 || c.Offsets[n] != int64(m) {
		return fmt.Errorf("graph: %s-CSR offsets span [%d,%d], want [0,%d]", dir, c.Offsets[0], c.Offsets[n], m)
	}
	seen := make([]bool, m)
	for k := 0; k < n; k++ {
		if c.Offsets[k] > c.Offsets[k+1] {
			return fmt.Errorf("graph: %s-CSR offsets not monotone at %d", dir, k)
		}
	}
	rowSeen := make([]bool, n)
	for _, r := range c.RowIDs {
		if r < 0 || int(r) >= n || rowSeen[r] {
			return fmt.Errorf("graph: %s-CSR RowIDs not a permutation", dir)
		}
		rowSeen[r] = true
	}
	for i, u := range c.Nbrs {
		if u < 0 || int(u) >= n {
			return fmt.Errorf("graph: %s-CSR neighbour %d out of range at slot %d", dir, u, i)
		}
	}
	for _, e := range c.EdgeIDs {
		if e < 0 || int(e) >= m || seen[e] {
			return fmt.Errorf("graph: %s-CSR edge ids not a permutation", dir)
		}
		seen[e] = true
	}
	return nil
}

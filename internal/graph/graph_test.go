package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromEdgesBasics(t *testing.T) {
	g := Figure7()
	if g.N != 4 || g.M != 7 {
		t.Fatalf("N=%d M=%d", g.N, g.M)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	inDeg := g.InDegrees()
	if inDeg[0] != 3 || inDeg[1] != 2 || inDeg[2] != 1 || inDeg[3] != 1 {
		t.Fatalf("in-degrees: %v", inDeg)
	}
	outDeg := g.OutDegrees()
	if outDeg[0]+outDeg[1]+outDeg[2]+outDeg[3] != 7 {
		t.Fatalf("out-degrees: %v", outDeg)
	}
	if g.AvgDegree() != 7.0/4.0 {
		t.Fatalf("avg degree %v", g.AvgDegree())
	}
}

func TestFromEdgesRejectsBadInput(t *testing.T) {
	if _, err := FromEdges(2, []int32{0}, []int32{0, 1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := FromEdges(2, []int32{0}, []int32{2}); err == nil {
		t.Fatal("out-of-range dst accepted")
	}
	if _, err := FromEdges(2, []int32{-1}, []int32{0}); err == nil {
		t.Fatal("negative src accepted")
	}
}

func TestCSRRowContents(t *testing.T) {
	g := Figure7()
	// Unsorted in-CSR row 0 is vertex A with in-neighbours B, C, D.
	nbrs, eids := g.In.Row(0)
	if len(nbrs) != 3 {
		t.Fatalf("row A: %v", nbrs)
	}
	want := map[int32]int32{1: 0, 2: 1, 3: 2} // nbr -> edge id
	for i, u := range nbrs {
		if want[u] != eids[i] {
			t.Fatalf("slot %d: nbr %d eid %d", i, u, eids[i])
		}
	}
	if g.In.MaxDegree() != 3 {
		t.Fatalf("max degree %d", g.In.MaxDegree())
	}
}

func TestSortByDegree(t *testing.T) {
	g := Figure7().SortByDegree()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.In.Sorted || !g.Out.Sorted {
		t.Fatal("Sorted flag not set")
	}
	// In-CSR rows must be in descending degree order.
	for k := 0; k+1 < g.In.NumRows(); k++ {
		if g.In.Degree(k) < g.In.Degree(k+1) {
			t.Fatalf("in-CSR not sorted at row %d", k)
		}
	}
	// Row 0 must be vertex A (in-degree 3).
	if g.In.RowIDs[0] != 0 {
		t.Fatalf("first sorted row is vertex %d, want 0 (A)", g.In.RowIDs[0])
	}
	// Degree sorting must preserve per-vertex neighbour sets.
	orig := Figure7()
	for k := 0; k < g.N; k++ {
		v := g.In.RowIDs[k]
		// find v's row in orig (identity layout).
		wantNbrs, _ := orig.In.Row(int(v))
		gotNbrs, _ := g.In.Row(k)
		if len(wantNbrs) != len(gotNbrs) {
			t.Fatalf("vertex %d degree changed", v)
		}
		seen := map[int32]int{}
		for _, u := range wantNbrs {
			seen[u]++
		}
		for _, u := range gotNbrs {
			seen[u]--
		}
		for u, c := range seen {
			if c != 0 {
				t.Fatalf("vertex %d neighbour multiset changed (nbr %d)", v, u)
			}
		}
	}
}

func TestEdgeTypesAndTypeSort(t *testing.T) {
	g := Figure7()
	types := []int32{2, 0, 1, 1, 0, 0, 2}
	if err := g.WithEdgeTypes(types, 3); err != nil {
		t.Fatal(err)
	}
	if err := g.SortEdgesByType(); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Within every in-CSR row, edge types must be non-decreasing.
	for k := 0; k < g.N; k++ {
		_, eids := g.In.Row(k)
		for i := 0; i+1 < len(eids); i++ {
			if g.EdgeTypes[eids[i]] > g.EdgeTypes[eids[i+1]] {
				t.Fatalf("row %d not type-sorted: %v", k, eids)
			}
		}
	}
}

func TestEdgeTypeValidation(t *testing.T) {
	g := Figure7()
	if err := g.WithEdgeTypes([]int32{0}, 1); err == nil {
		t.Fatal("wrong-length types accepted")
	}
	if err := g.WithEdgeTypes(make([]int32, 7), 0); err == nil {
		t.Fatal("out-of-range type accepted")
	}
	if err := g.SortEdgesByType(); err == nil {
		t.Fatal("SortEdgesByType without types must fail")
	}
}

func TestTypeStorageRatio(t *testing.T) {
	g := Figure7()
	if _, err := g.TypeStorageRatio(); err == nil {
		t.Fatal("ratio without types accepted")
	}
	// All edges the same type: N_t = number of non-empty rows = 4,
	// ratio = 7/4.
	if err := g.WithEdgeTypes(make([]int32, 7), 1); err != nil {
		t.Fatal(err)
	}
	r, err := g.TypeStorageRatio()
	if err != nil || r != 7.0/4.0 {
		t.Fatalf("ratio %v err %v", r, err)
	}
	// Every edge a distinct type: N_t = M, ratio = 1.
	types := []int32{0, 1, 2, 3, 4, 5, 6}
	if err := g.WithEdgeTypes(types, 7); err != nil {
		t.Fatal(err)
	}
	if r, _ := g.TypeStorageRatio(); r != 1 {
		t.Fatalf("distinct-type ratio %v", r)
	}
}

func TestGNM(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := GNM(rng, 50, 400)
	if g.N != 50 || g.M != 400 {
		t.Fatalf("N=%d M=%d", g.N, g.M)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// No self loops, no duplicate edges.
	seen := map[[2]int32]bool{}
	for i := range g.Srcs {
		if g.Srcs[i] == g.Dsts[i] {
			t.Fatal("self loop generated")
		}
		k := [2]int32{g.Srcs[i], g.Dsts[i]}
		if seen[k] {
			t.Fatal("duplicate edge generated")
		}
		seen[k] = true
	}
}

func TestPowerLawSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := PowerLaw(rng, 2000, 8)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Preferential attachment must produce a heavy tail: max in-degree
	// far above the mean.
	maxDeg := g.In.MaxDegree()
	if float64(maxDeg) < 5*g.AvgDegree() {
		t.Fatalf("max in-degree %d not skewed vs avg %.1f", maxDeg, g.AvgDegree())
	}
}

func TestStarAndPath(t *testing.T) {
	s := Star(5)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.InDegrees()[0] != 4 {
		t.Fatalf("star center degree %d", s.InDegrees()[0])
	}
	p := Path(4)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	d := p.InDegrees()
	if d[0] != 0 || d[1] != 1 || d[3] != 1 {
		t.Fatalf("path degrees %v", d)
	}
}

func TestDeviceBytes(t *testing.T) {
	g := Figure7()
	base := g.DeviceBytes()
	if base <= 0 {
		t.Fatal("zero footprint")
	}
	RandomEdgeTypes(rand.New(rand.NewSource(1)), g, 3)
	if g.DeviceBytes() != base+int64(g.M)*4 {
		t.Fatal("edge-type footprint not counted")
	}
}

func TestQuickRandomGraphsValidate(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint16) bool {
		n := int(nRaw%60) + 2
		maxM := n * (n - 1)
		m := int(mRaw) % (maxM + 1)
		rng := rand.New(rand.NewSource(seed))
		g := GNM(rng, n, m)
		if g.Validate() != nil {
			return false
		}
		s := g.SortByDegree()
		if s.Validate() != nil {
			return false
		}
		// Sum of in-degrees must equal M in both layouts.
		var sum int
		for k := 0; k < s.N; k++ {
			sum += s.In.Degree(k)
		}
		return sum == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTypeSortPreservesEdgeSets(t *testing.T) {
	f := func(seed int64, nRaw uint8, tRaw uint8) bool {
		n := int(nRaw%30) + 2
		nt := int(tRaw%5) + 1
		rng := rand.New(rand.NewSource(seed))
		g := GNM(rng, n, n*2%(n*(n-1)/2+1)+1)
		RandomEdgeTypes(rng, g, nt)
		before := map[int32]int32{}
		for e := 0; e < g.M; e++ {
			before[int32(e)] = g.EdgeTypes[e]
		}
		if g.SortEdgesByType() != nil {
			return false
		}
		if g.Validate() != nil {
			return false
		}
		// Edge ids and types unchanged globally.
		for e := 0; e < g.M; e++ {
			if before[int32(e)] != g.EdgeTypes[e] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

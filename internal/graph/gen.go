package graph

import (
	"fmt"
	"math"
	"math/rand"
)

// GNM samples a uniform random directed graph with n vertices and m
// distinct edges (no self loops). It panics if m exceeds n*(n-1) for small
// n; for large graphs collisions are resampled.
func GNM(rng *rand.Rand, n, m int) *Graph {
	if n < 1 {
		panic("graph: GNM needs n >= 1")
	}
	maxEdges := n * (n - 1)
	if n < 4096 && m > maxEdges {
		panic(fmt.Sprintf("graph: GNM m=%d exceeds max %d", m, maxEdges))
	}
	seen := make(map[int64]struct{}, m)
	srcs := make([]int32, 0, m)
	dsts := make([]int32, 0, m)
	for len(srcs) < m {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n))
		if u == v {
			continue
		}
		key := int64(u)*int64(n) + int64(v)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		srcs = append(srcs, u)
		dsts = append(dsts, v)
	}
	g, err := FromEdges(n, srcs, dsts)
	if err != nil {
		panic(err)
	}
	return g
}

// PowerLaw generates a directed graph with a skewed in-degree
// distribution via preferential attachment: vertices arrive in order and
// each new vertex emits edges to earlier vertices chosen proportionally to
// their current in-degree (plus one). This produces the heavy-tailed
// degree skew of graphs like reddit that the paper's dynamic load
// balancing targets (§6.3.3).
func PowerLaw(rng *rand.Rand, n, edgesPerVertex int) *Graph {
	if n < 2 {
		panic("graph: PowerLaw needs n >= 2")
	}
	if edgesPerVertex < 1 {
		edgesPerVertex = 1
	}
	srcs := make([]int32, 0, n*edgesPerVertex)
	dsts := make([]int32, 0, n*edgesPerVertex)
	// Standard Barabási–Albert pool: both endpoints of every edge enter
	// the attachment pool, so sampling a uniform element is sampling
	// ∝ (degree + 1); hubs grow like m·√n rather than swallowing a
	// constant fraction of all edges.
	targets := make([]int32, 0, 2*n*edgesPerVertex)
	targets = append(targets, 0)
	for v := 1; v < n; v++ {
		k := edgesPerVertex
		if k > v {
			k = v
		}
		for i := 0; i < k; i++ {
			t := targets[rng.Intn(len(targets))]
			if t == int32(v) {
				// No self loops: the first v pool entries were appended
				// before vertex v and therefore name earlier vertices.
				t = targets[rng.Intn(v)]
			}
			srcs = append(srcs, int32(v))
			dsts = append(dsts, t)
			targets = append(targets, t, int32(v))
		}
	}
	g, err := FromEdges(n, srcs, dsts)
	if err != nil {
		panic(err)
	}
	return g
}

// ZipfDegree generates a directed graph whose in-degree sequence follows
// a rank-based Zipf law: the r-th highest-degree vertex receives
// in-degree ∝ 1/(r+1)^alpha, scaled so the average in-degree is avgDeg.
// Edge sources are uniform. With alpha around 1 the top ~10% of vertices
// hold the large majority of edges — the degree profile that makes
// equal-row-count CPU partitions pathological and that the paper's
// degree-sorting + dynamic load balancing targets (§6.3.3). Unlike
// PowerLaw (preferential attachment), the skew here is exact and
// tunable, which benchmarks need.
func ZipfDegree(rng *rand.Rand, n, avgDeg int, alpha float64) *Graph {
	if n < 2 {
		panic("graph: ZipfDegree needs n >= 2")
	}
	if avgDeg < 1 {
		avgDeg = 1
	}
	weights := make([]float64, n)
	var wsum float64
	for r := 0; r < n; r++ {
		weights[r] = math.Pow(float64(r+1), -alpha)
		wsum += weights[r]
	}
	scale := float64(n) * float64(avgDeg) / wsum
	// Ranks are assigned to shuffled vertex ids so callers exercise the
	// degree-sorting path rather than receiving a pre-sorted graph.
	perm := rng.Perm(n)
	srcs := make([]int32, 0, n*avgDeg)
	dsts := make([]int32, 0, n*avgDeg)
	for r := 0; r < n; r++ {
		v := int32(perm[r])
		deg := int(scale*weights[r] + 0.5)
		if deg > n-1 {
			deg = n - 1
		}
		for i := 0; i < deg; i++ {
			u := int32(rng.Intn(n))
			if u == v {
				u = (u + 1) % int32(n)
			}
			srcs = append(srcs, u)
			dsts = append(dsts, v)
		}
	}
	g, err := FromEdges(n, srcs, dsts)
	if err != nil {
		panic(err)
	}
	return g
}

// RandomEdgeTypes assigns each edge a uniform type in [0, numTypes) and
// attaches it to g.
func RandomEdgeTypes(rng *rand.Rand, g *Graph, numTypes int) {
	types := make([]int32, g.M)
	for i := range types {
		types[i] = int32(rng.Intn(numTypes))
	}
	if err := g.WithEdgeTypes(types, numTypes); err != nil {
		panic(err)
	}
}

// Star returns the graph with edges leaf_i → center for i in [1, n).
func Star(n int) *Graph {
	srcs := make([]int32, n-1)
	dsts := make([]int32, n-1)
	for i := 1; i < n; i++ {
		srcs[i-1] = int32(i)
	}
	g, err := FromEdges(n, srcs, dsts)
	if err != nil {
		panic(err)
	}
	return g
}

// Path returns the chain 0→1→2→…→n-1.
func Path(n int) *Graph {
	srcs := make([]int32, n-1)
	dsts := make([]int32, n-1)
	for i := 0; i < n-1; i++ {
		srcs[i] = int32(i)
		dsts[i] = int32(i + 1)
	}
	g, err := FromEdges(n, srcs, dsts)
	if err != nil {
		panic(err)
	}
	return g
}

// Figure7 returns a 4-vertex, 7-edge example graph in the spirit of the
// paper's Figure 7 (vertices A=0, B=1, C=2, D=3), with in-degrees
// A:3, B:2, C:1, D:1 — small enough to check CSR layouts by hand in the
// unit tests.
func Figure7() *Graph {
	// Edge list (src→dst) with ids 0..6:
	edges := [][2]int32{
		{1, 0}, // 0: B→A
		{2, 0}, // 1: C→A
		{3, 0}, // 2: D→A
		{0, 1}, // 3: A→B
		{2, 1}, // 4: C→B
		{3, 2}, // 5: D→C
		{1, 3}, // 6: B→D
	}
	srcs := make([]int32, len(edges))
	dsts := make([]int32, len(edges))
	for i, e := range edges {
		srcs[i], dsts[i] = e[0], e[1]
	}
	g, err := FromEdges(4, srcs, dsts)
	if err != nil {
		panic(err)
	}
	return g
}

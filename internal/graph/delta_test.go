package graph

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// mirror is the reference model: a plain edge list mutated the slow way.
type mirror struct {
	n     int
	edges []Edge
}

func mirrorOf(g *Graph) *mirror {
	m := &mirror{n: g.N}
	for i := range g.Srcs {
		m.edges = append(m.edges, Edge{Src: g.Srcs[i], Dst: g.Dsts[i]})
	}
	return m
}

// apply mutates the mirror: drop removed edges preserving order, then
// append additions in delta order — the canonical edge list Apply's
// monotone edge-id renumbering is specified against.
func (m *mirror) apply(d *Delta) {
	iso := map[int32]bool{}
	for _, v := range d.RemoveVertices {
		iso[v] = true
	}
	rm := map[Edge]bool{}
	for _, e := range d.RemoveEdges {
		rm[e] = true
	}
	kept := m.edges[:0:0]
	for _, e := range m.edges {
		if iso[e.Src] || iso[e.Dst] || rm[e] {
			continue
		}
		kept = append(kept, e)
	}
	m.n += d.AddVertices
	m.edges = append(kept, d.AddEdges...)
}

func (m *mirror) graph(t *testing.T) *Graph {
	t.Helper()
	srcs := make([]int32, len(m.edges))
	dsts := make([]int32, len(m.edges))
	for i, e := range m.edges {
		srcs[i], dsts[i] = e.Src, e.Dst
	}
	g, err := FromEdges(m.n, srcs, dsts)
	if err != nil {
		t.Fatalf("mirror FromEdges: %v", err)
	}
	return g
}

func requireFlatEqual(t *testing.T, got, want *Graph) {
	t.Helper()
	if got.N != want.N || got.M != want.M {
		t.Fatalf("shape: got n=%d m=%d want n=%d m=%d", got.N, got.M, want.N, want.M)
	}
	if !reflect.DeepEqual(got.Srcs, want.Srcs) || !reflect.DeepEqual(got.Dsts, want.Dsts) {
		t.Fatalf("edge lists differ")
	}
	for _, side := range []struct {
		name      string
		got, want CSR
	}{{"in", got.In, want.In}, {"out", got.Out, want.Out}} {
		if !reflect.DeepEqual(side.got.Offsets, side.want.Offsets) {
			t.Fatalf("%s offsets differ", side.name)
		}
		if !reflect.DeepEqual(side.got.Nbrs, side.want.Nbrs) {
			t.Fatalf("%s nbrs differ", side.name)
		}
		if !reflect.DeepEqual(side.got.EdgeIDs, side.want.EdgeIDs) {
			t.Fatalf("%s edge ids differ", side.name)
		}
		if !reflect.DeepEqual(side.got.RowIDs, side.want.RowIDs) {
			t.Fatalf("%s row ids differ", side.name)
		}
	}
}

func TestDeltaGraphFlattenMatchesFromEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := ZipfDegree(rng, 3000, 6, 1.0)
	dg, err := FromGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	requireFlatEqual(t, dg.Flatten(), g)
	if err := dg.Flatten().Validate(); err != nil {
		t.Fatalf("flatten validate: %v", err)
	}
}

func TestDeltaApplyChainMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := ZipfDegree(rng, 2500, 5, 1.1)
	dg, err := FromGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	m := mirrorOf(g)

	for step := 0; step < 12; step++ {
		d := randomDelta(rng, m)
		child, st, err := dg.Apply(d)
		if err != nil {
			t.Fatalf("step %d: apply: %v", step, err)
		}
		m.apply(d)
		want := m.graph(t)
		requireFlatEqual(t, child.Flatten(), want)
		if child.N() != m.n || child.M() != len(m.edges) {
			t.Fatalf("step %d: shape n=%d m=%d want n=%d m=%d", step, child.N(), child.M(), m.n, len(m.edges))
		}
		if !sort.SliceIsSorted(st.Touched, func(a, b int) bool { return st.Touched[a] < st.Touched[b] }) {
			t.Fatalf("step %d: touched not sorted", step)
		}
		// Degrees of every untouched vertex must be unchanged.
		tset := map[int32]bool{}
		for _, v := range st.Touched {
			tset[v] = true
		}
		for v := 0; v < dg.N(); v++ {
			if tset[int32(v)] {
				continue
			}
			if child.in.Degree(int32(v)) != dg.in.Degree(int32(v)) ||
				child.out.Degree(int32(v)) != dg.out.Degree(int32(v)) {
				t.Fatalf("step %d: untouched vertex %d changed degree", step, v)
			}
		}
		dg = child
	}
}

func randomDelta(rng *rand.Rand, m *mirror) *Delta {
	d := &Delta{}
	if rng.Intn(4) == 0 {
		d.AddVertices = rng.Intn(3)
	}
	for i := 0; i < 1+rng.Intn(4); i++ {
		d.AddEdges = append(d.AddEdges, Edge{
			Src: int32(rng.Intn(m.n + d.AddVertices)),
			Dst: int32(rng.Intn(m.n + d.AddVertices)),
		})
	}
	if len(m.edges) > 0 && rng.Intn(2) == 0 {
		e := m.edges[rng.Intn(len(m.edges))]
		d.RemoveEdges = append(d.RemoveEdges, e)
	}
	if rng.Intn(5) == 0 {
		d.RemoveVertices = append(d.RemoveVertices, int32(rng.Intn(m.n)))
	}
	// RemoveEdges entries must not collide with isolated vertices (the
	// isolation already removes them, and the explicit entry would then
	// fail to match): drop such entries.
	iso := map[int32]bool{}
	for _, v := range d.RemoveVertices {
		iso[v] = true
	}
	kept := d.RemoveEdges[:0]
	for _, e := range d.RemoveEdges {
		if !iso[e.Src] && !iso[e.Dst] {
			kept = append(kept, e)
		}
	}
	d.RemoveEdges = kept
	return d
}

func TestDeltaStructuralSharing(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 8 * DeltaChunkRows
	g := ZipfDegree(rng, n, 4, 1.0)
	dg, err := FromGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	// A single added edge inside one chunk: per direction at most one
	// chunk is rebuilt, the rest shared by pointer.
	child, st, err := dg.Apply(&Delta{AddEdges: []Edge{{Src: 10, Dst: 20}}})
	if err != nil {
		t.Fatal(err)
	}
	if st.CopiedChunks > 2 {
		t.Fatalf("copied %d chunks for a one-edge add, want <=2", st.CopiedChunks)
	}
	if st.SharedChunks < 14 {
		t.Fatalf("shared only %d chunks of 16", st.SharedChunks)
	}
	if st.RemappedChunks != 0 {
		t.Fatalf("remapped %d chunks on a pure add", st.RemappedChunks)
	}
	// Clean chunks are the same pointers.
	if child.in.chunks[5] != dg.in.chunks[5] {
		t.Fatal("clean chunk not shared by pointer")
	}

	// A removal forces the edge-id remap: clean chunks share offs/nbrs
	// but carry fresh eids.
	child2, st2, err := child.Apply(&Delta{RemoveEdges: []Edge{{Src: 10, Dst: 20}}})
	if err != nil {
		t.Fatal(err)
	}
	if st2.SharedChunks != 0 {
		t.Fatalf("shared %d chunks under a remap", st2.SharedChunks)
	}
	if st2.RemappedChunks == 0 {
		t.Fatal("expected remapped chunks on removal")
	}
	var found bool
	for ci, ch := range child2.in.chunks {
		old := child.in.chunks[ci]
		if ch != old && &ch.offs[0] == &old.offs[0] {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("remapped chunks do not share offset arrays")
	}
}

func TestDeltaRemoveVertexIsolates(t *testing.T) {
	// 0→1, 1→2, 2→0, 1→1 (self loop).
	dg, err := NewDeltaGraph(3, []int32{0, 1, 2, 1}, []int32{1, 2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	child, st, err := dg.Apply(&Delta{RemoveVertices: []int32{1}})
	if err != nil {
		t.Fatal(err)
	}
	if child.N() != 3 {
		t.Fatalf("vertex ids must stay stable, n=%d", child.N())
	}
	if child.M() != 1 { // only 2→0 survives
		t.Fatalf("m=%d want 1", child.M())
	}
	if child.in.Degree(1) != 0 || child.out.Degree(1) != 0 {
		t.Fatal("vertex 1 not isolated")
	}
	if got := st.RemovedEdges; got != 3 {
		t.Fatalf("removed %d edges (self loop double-counted?), want 3", got)
	}
}

func TestDeltaApplyErrors(t *testing.T) {
	dg, err := NewDeltaGraph(4, []int32{0, 1}, []int32{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		d    Delta
	}{
		{"remove missing edge", Delta{RemoveEdges: []Edge{{Src: 2, Dst: 3}}}},
		{"remove edge twice", Delta{RemoveEdges: []Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 1}}}},
		{"remove edge out of range", Delta{RemoveEdges: []Edge{{Src: 0, Dst: 9}}}},
		{"remove vertex out of range", Delta{RemoveVertices: []int32{4}}},
		{"remove negative vertex", Delta{RemoveVertices: []int32{-1}}},
		{"add edge out of range", Delta{AddEdges: []Edge{{Src: 0, Dst: 4}}}},
		{"negative add vertices", Delta{AddVertices: -1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := dg.Apply(&tc.d); err == nil {
				t.Fatal("want error")
			}
		})
	}
	// Add-edge referencing a vertex added by the same delta is valid.
	if _, _, err := dg.Apply(&Delta{AddVertices: 1, AddEdges: []Edge{{Src: 3, Dst: 4}}}); err != nil {
		t.Fatalf("add to new vertex: %v", err)
	}
}

func TestExpandOut(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	g := ZipfDegree(rng, 4000, 7, 1.0)
	dg, err := FromGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		seed := map[int32]bool{}
		for i := 0; i < 1+rng.Intn(40); i++ {
			seed[int32(rng.Intn(dg.N()))] = true
		}
		seeds := sortedKeys(seed)
		want := map[int32]bool{}
		for _, v := range seeds {
			want[v] = true
			nbrs, _ := dg.out.Row(v)
			for _, w := range nbrs {
				want[w] = true
			}
		}
		got := dg.ExpandOut(seeds)
		if !reflect.DeepEqual(got, sortedKeys(want)) {
			t.Fatalf("trial %d: frontier mismatch: got %d want %d vertices", trial, len(got), len(want))
		}
	}
	if got := dg.ExpandOut(nil); got != nil {
		t.Fatalf("empty seed: got %v", got)
	}
}

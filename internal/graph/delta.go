// Dynamic graph deltas: a chunked CSR representation whose generations
// structurally share unchanged adjacency segments.
//
// A DeltaGraph partitions each CSR direction into fixed-size row chunks.
// Applying a Delta (edge/vertex add/remove) builds a new DeltaGraph that
// rebuilds only the chunks containing touched rows and shares every clean
// chunk with its parent by pointer, so a one-edge update copies O(chunk)
// adjacency instead of O(M). Edge ids stay dense [0, M): removals compact
// surviving ids monotonically (relative order preserved), which keeps
// every row's slots in ascending-edge-id order — exactly the layout
// FromEdges produces — so Flatten() of any delta chain is structurally
// identical to rebuilding from scratch over the canonical edge list
// (parent edges in order, minus removals, plus additions in delta order).
package graph

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"seastar/internal/sched"
)

// DeltaChunkRows is the number of CSR rows per copy-on-write chunk. A
// delta touching one row copies one chunk (~this many rows' adjacency)
// per direction instead of the whole CSR.
const DeltaChunkRows = 1024

// Edge is one (src, dst) pair in a delta.
type Edge struct {
	Src int32 `json:"src"`
	Dst int32 `json:"dst"`
}

// Delta is one batch of structural mutations against a parent graph.
// Removals apply to the parent state first, then additions: an edge added
// by this delta cannot be removed by it. RemoveVertices isolates the
// vertices (drops every incident edge) but keeps their ids stable —
// vertex ids are external keys, so they are never renumbered.
type Delta struct {
	AddVertices    int     `json:"add_vertices,omitempty"`
	RemoveVertices []int32 `json:"remove_vertices,omitempty"`
	AddEdges       []Edge  `json:"add_edges,omitempty"`
	RemoveEdges    []Edge  `json:"remove_edges,omitempty"`
}

// Empty reports whether the delta carries no structural change.
func (d *Delta) Empty() bool {
	return d.AddVertices == 0 && len(d.RemoveVertices) == 0 &&
		len(d.AddEdges) == 0 && len(d.RemoveEdges) == 0
}

// csrChunk is one immutable chunk of a chunked CSR: local offsets plus
// neighbour and edge-id slots for DeltaChunkRows consecutive rows. Chunks
// are shared freely across generations and never mutated after build.
type csrChunk struct {
	offs []int64 // local offsets, len = rows+1, offs[0] == 0
	nbrs []int32
	eids []int32
}

// ChunkedCSR stores one direction of adjacency as copy-on-write chunks.
type ChunkedCSR struct {
	n      int
	chunks []*csrChunk
}

func (c *ChunkedCSR) chunkOf(v int32) (*csrChunk, int) {
	return c.chunks[int(v)/DeltaChunkRows], int(v) % DeltaChunkRows
}

// Row returns the neighbour and edge-id slots of vertex v's row.
func (c *ChunkedCSR) Row(v int32) (nbrs, eids []int32) {
	ch, r := c.chunkOf(v)
	lo, hi := ch.offs[r], ch.offs[r+1]
	return ch.nbrs[lo:hi], ch.eids[lo:hi]
}

// Degree returns the number of slots in vertex v's row.
func (c *ChunkedCSR) Degree(v int32) int {
	ch, r := c.chunkOf(v)
	return int(ch.offs[r+1] - ch.offs[r])
}

// NumRows returns the number of rows (vertices).
func (c *ChunkedCSR) NumRows() int { return c.n }

// Degrees returns every row's degree.
func (c *ChunkedCSR) Degrees() []int32 {
	d := make([]int32, c.n)
	for v := 0; v < c.n; v++ {
		ch, r := c.chunkOf(int32(v))
		d[v] = int32(ch.offs[r+1] - ch.offs[r])
	}
	return d
}

// DeltaGraph is an immutable graph generation backed by chunked CSRs.
// Vertex rows are in id order (never degree-sorted): structural sharing
// requires a stable row order across generations. Heterogeneous graphs
// (edge types) are not supported.
type DeltaGraph struct {
	n, m int
	in   ChunkedCSR // row v lists u for every edge u→v
	out  ChunkedCSR // row u lists v for every edge u→v

	flatOnce sync.Once
	flat     *Graph
}

// N returns the vertex count.
func (dg *DeltaGraph) N() int { return dg.n }

// M returns the edge count.
func (dg *DeltaGraph) M() int { return dg.m }

// In returns the in-edge chunked CSR.
func (dg *DeltaGraph) In() *ChunkedCSR { return &dg.in }

// Out returns the out-edge chunked CSR.
func (dg *DeltaGraph) Out() *ChunkedCSR { return &dg.out }

// InDegrees returns every vertex's in-degree.
func (dg *DeltaGraph) InDegrees() []int32 { return dg.in.Degrees() }

// OutDegrees returns every vertex's out-degree.
func (dg *DeltaGraph) OutDegrees() []int32 { return dg.out.Degrees() }

// NewDeltaGraph chunks an edge list into the copy-on-write representation
// (counting sort per direction, O(N+M)). Edge i gets id i, matching
// FromEdges.
func NewDeltaGraph(n int, srcs, dsts []int32) (*DeltaGraph, error) {
	if len(srcs) != len(dsts) {
		return nil, fmt.Errorf("graph: %d srcs vs %d dsts", len(srcs), len(dsts))
	}
	for i := range srcs {
		if srcs[i] < 0 || int(srcs[i]) >= n || dsts[i] < 0 || int(dsts[i]) >= n {
			return nil, fmt.Errorf("graph: edge %d (%d→%d) out of range [0,%d)", i, srcs[i], dsts[i], n)
		}
	}
	return &DeltaGraph{
		n: n, m: len(srcs),
		in:  chunkEdges(n, dsts, srcs),
		out: chunkEdges(n, srcs, dsts),
	}, nil
}

// FromGraph chunks an existing homogeneous graph's edge list. The source
// may be degree-sorted; the chunked form is always in vertex-id order.
func FromGraph(g *Graph) (*DeltaGraph, error) {
	if g.EdgeTypes != nil {
		return nil, fmt.Errorf("graph: deltas do not support heterogeneous graphs (edge types present)")
	}
	return NewDeltaGraph(g.N, g.Srcs, g.Dsts)
}

// chunkEdges groups edges by row endpoint into chunked CSR form,
// inserting slots in edge-id order (same order buildCSR produces).
func chunkEdges(n int, rowOf, nbrOf []int32) ChunkedCSR {
	deg := make([]int64, n)
	for _, r := range rowOf {
		deg[r]++
	}
	nChunks := (n + DeltaChunkRows - 1) / DeltaChunkRows
	chunks := make([]*csrChunk, nChunks)
	cursor := make([]int64, n) // global insert cursor per row, rebased per chunk
	for ci := 0; ci < nChunks; ci++ {
		lo := ci * DeltaChunkRows
		hi := lo + DeltaChunkRows
		if hi > n {
			hi = n
		}
		rows := hi - lo
		offs := make([]int64, rows+1)
		for r := 0; r < rows; r++ {
			offs[r+1] = offs[r] + deg[lo+r]
		}
		chunks[ci] = &csrChunk{
			offs: offs,
			nbrs: make([]int32, offs[rows]),
			eids: make([]int32, offs[rows]),
		}
		for r := 0; r < rows; r++ {
			cursor[lo+r] = offs[r]
		}
	}
	for e := range rowOf {
		r := rowOf[e]
		ch := chunks[int(r)/DeltaChunkRows]
		p := cursor[r]
		cursor[r]++
		ch.nbrs[p] = nbrOf[e]
		ch.eids[p] = int32(e)
	}
	return ChunkedCSR{n: n, chunks: chunks}
}

// ApplyStats reports what one Apply did: which vertices' adjacency or
// degree changed, and how much of the CSR was shared versus copied.
type ApplyStats struct {
	// Touched is the sorted set of vertices whose adjacency, degree, or
	// existence changed: endpoints of added/removed edges, isolated
	// vertices, and newly added vertices.
	Touched []int32
	// AddedEdges and RemovedEdges count the structural mutations applied.
	AddedEdges, RemovedEdges int
	// SharedChunks chunks were reused by pointer; CopiedChunks were
	// rebuilt because they contain touched rows; RemappedChunks shared
	// offsets+neighbours but rewrote edge ids (removal renumbering).
	SharedChunks, CopiedChunks, RemappedChunks int
}

type addSlot struct{ nbr, eid int32 }

// Apply builds the child generation for delta d. The parent is unchanged;
// clean chunks are shared between the two by pointer.
func (dg *DeltaGraph) Apply(d *Delta) (*DeltaGraph, *ApplyStats, error) {
	newN := dg.n + d.AddVertices
	if d.AddVertices < 0 {
		return nil, nil, fmt.Errorf("graph: delta: negative AddVertices %d", d.AddVertices)
	}
	touched := map[int32]bool{}
	removed := map[int32]bool{} // edge id → removed
	removedEndpoints := make([]Edge, 0, len(d.RemoveEdges))

	for _, v := range d.RemoveVertices {
		if v < 0 || int(v) >= dg.n {
			return nil, nil, fmt.Errorf("graph: delta: remove-vertex %d out of range [0,%d)", v, dg.n)
		}
		touched[v] = true
		nbrs, eids := dg.in.Row(v)
		for i, u := range nbrs {
			if !removed[eids[i]] {
				removed[eids[i]] = true
				removedEndpoints = append(removedEndpoints, Edge{Src: u, Dst: v})
			}
		}
		nbrs, eids = dg.out.Row(v)
		for i, w := range nbrs {
			if !removed[eids[i]] {
				removed[eids[i]] = true
				removedEndpoints = append(removedEndpoints, Edge{Src: v, Dst: w})
			}
		}
	}
	for _, e := range d.RemoveEdges {
		if e.Src < 0 || int(e.Src) >= dg.n || e.Dst < 0 || int(e.Dst) >= dg.n {
			return nil, nil, fmt.Errorf("graph: delta: remove-edge %d→%d out of range [0,%d)", e.Src, e.Dst, dg.n)
		}
		matched := false
		nbrs, eids := dg.in.Row(e.Dst)
		for i, u := range nbrs {
			if u == e.Src && !removed[eids[i]] {
				removed[eids[i]] = true
				removedEndpoints = append(removedEndpoints, e)
				matched = true
			}
		}
		if !matched {
			return nil, nil, fmt.Errorf("graph: delta: no such edge %d→%d", e.Src, e.Dst)
		}
	}
	for _, e := range removedEndpoints {
		touched[e.Src] = true
		touched[e.Dst] = true
	}

	// Dense edge-id renumbering: surviving ids compact monotonically, so
	// per-row ascending order is preserved and added edges take the ids
	// at the end, in delta order.
	var remap []int32
	if len(removed) > 0 {
		remap = make([]int32, dg.m)
		var next int32
		for e := 0; e < dg.m; e++ {
			if removed[int32(e)] {
				remap[e] = -1
			} else {
				remap[e] = next
				next++
			}
		}
	}
	base := int32(dg.m - len(removed))

	inAdds := map[int32][]addSlot{}
	outAdds := map[int32][]addSlot{}
	for i, e := range d.AddEdges {
		if e.Src < 0 || int(e.Src) >= newN || e.Dst < 0 || int(e.Dst) >= newN {
			return nil, nil, fmt.Errorf("graph: delta: add-edge %d→%d out of range [0,%d)", e.Src, e.Dst, newN)
		}
		eid := base + int32(i)
		inAdds[e.Dst] = append(inAdds[e.Dst], addSlot{nbr: e.Src, eid: eid})
		outAdds[e.Src] = append(outAdds[e.Src], addSlot{nbr: e.Dst, eid: eid})
		touched[e.Src] = true
		touched[e.Dst] = true
	}
	for v := dg.n; v < newN; v++ {
		touched[int32(v)] = true
	}

	st := &ApplyStats{
		AddedEdges:   len(d.AddEdges),
		RemovedEdges: len(removed),
	}
	inDirty := dirtyRows(removedEndpoints, inAdds, false)
	outDirty := dirtyRows(removedEndpoints, outAdds, true)
	child := &DeltaGraph{
		n: newN, m: dg.m - len(removed) + len(d.AddEdges),
		in:  applyCSR(&dg.in, newN, removed, remap, inAdds, inDirty, st),
		out: applyCSR(&dg.out, newN, removed, remap, outAdds, outDirty, st),
	}
	st.Touched = sortedKeys(touched)
	return child, st, nil
}

// dirtyRows collects the rows whose slots change in one direction:
// removal endpoints on that side plus rows receiving added slots.
func dirtyRows(removedEndpoints []Edge, adds map[int32][]addSlot, outSide bool) map[int32]bool {
	dirty := make(map[int32]bool, len(removedEndpoints)+len(adds))
	for _, e := range removedEndpoints {
		if outSide {
			dirty[e.Src] = true
		} else {
			dirty[e.Dst] = true
		}
	}
	for r := range adds {
		dirty[r] = true
	}
	return dirty
}

// applyCSR builds one direction of the child: chunks with no dirty rows
// and no id remap are shared; clean chunks under a remap share offsets
// and neighbours but rewrite edge ids; dirty chunks are rebuilt row by
// row (surviving slots in order, then additions in delta order).
func applyCSR(old *ChunkedCSR, newN int, removed map[int32]bool, remap []int32,
	adds map[int32][]addSlot, dirty map[int32]bool, st *ApplyStats) ChunkedCSR {
	nChunks := (newN + DeltaChunkRows - 1) / DeltaChunkRows
	chunks := make([]*csrChunk, nChunks)
	for ci := 0; ci < nChunks; ci++ {
		lo := ci * DeltaChunkRows
		hi := lo + DeltaChunkRows
		if hi > newN {
			hi = newN
		}
		spanChanged := true
		if ci < len(old.chunks) {
			oldHi := (ci + 1) * DeltaChunkRows
			if oldHi > old.n {
				oldHi = old.n
			}
			spanChanged = oldHi != hi
		}
		chunkDirty := spanChanged || ci >= len(old.chunks)
		if !chunkDirty {
			for r := lo; r < hi; r++ {
				if dirty[int32(r)] {
					chunkDirty = true
					break
				}
			}
		}
		switch {
		case !chunkDirty && remap == nil:
			chunks[ci] = old.chunks[ci]
			st.SharedChunks++
		case !chunkDirty:
			oldCh := old.chunks[ci]
			eids := make([]int32, len(oldCh.eids))
			for i, e := range oldCh.eids {
				eids[i] = remap[e]
			}
			chunks[ci] = &csrChunk{offs: oldCh.offs, nbrs: oldCh.nbrs, eids: eids}
			st.RemappedChunks++
		default:
			chunks[ci] = rebuildChunk(old, lo, hi, removed, remap, adds)
			st.CopiedChunks++
		}
	}
	return ChunkedCSR{n: newN, chunks: chunks}
}

func rebuildChunk(old *ChunkedCSR, lo, hi int, removed map[int32]bool, remap []int32,
	adds map[int32][]addSlot) *csrChunk {
	ch := &csrChunk{offs: make([]int64, hi-lo+1)}
	for v := lo; v < hi; v++ {
		if v < old.n {
			nbrs, eids := old.Row(int32(v))
			for i, u := range nbrs {
				e := eids[i]
				if removed[e] {
					continue
				}
				if remap != nil {
					e = remap[e]
				}
				ch.nbrs = append(ch.nbrs, u)
				ch.eids = append(ch.eids, e)
			}
		}
		for _, a := range adds[int32(v)] {
			ch.nbrs = append(ch.nbrs, a.nbr)
			ch.eids = append(ch.eids, a.eid)
		}
		ch.offs[v-lo+1] = int64(len(ch.nbrs))
	}
	return ch
}

// Flatten materializes the flat Graph form (computed once and cached):
// both CSR directions with identity row ids, plus the edge list
// reconstructed from the in-CSR. The result is structurally identical to
// FromEdges over the canonical edge list of this generation.
func (dg *DeltaGraph) Flatten() *Graph {
	dg.flatOnce.Do(func() {
		srcs := make([]int32, dg.m)
		dsts := make([]int32, dg.m)
		for v := 0; v < dg.n; v++ {
			nbrs, eids := dg.in.Row(int32(v))
			for i, u := range nbrs {
				srcs[eids[i]] = u
				dsts[eids[i]] = int32(v)
			}
		}
		dg.flat = &Graph{
			N: dg.n, M: dg.m,
			Srcs: srcs, Dsts: dsts,
			In:           flattenCSR(&dg.in),
			Out:          flattenCSR(&dg.out),
			NumEdgeTypes: 1,
		}
	})
	return dg.flat
}

func flattenCSR(c *ChunkedCSR) CSR {
	offsets := make([]int64, c.n+1)
	var m int64
	for _, ch := range c.chunks {
		m += ch.offs[len(ch.offs)-1]
	}
	nbrs := make([]int32, 0, m)
	eids := make([]int32, 0, m)
	rowIDs := make([]int32, c.n)
	for v := 0; v < c.n; v++ {
		rowIDs[v] = int32(v)
		n, e := c.Row(int32(v))
		nbrs = append(nbrs, n...)
		eids = append(eids, e...)
		offsets[v+1] = int64(len(nbrs))
	}
	return CSR{Offsets: offsets, Nbrs: nbrs, EdgeIDs: eids, RowIDs: rowIDs}
}

// ExpandOut returns seed ∪ out-neighbours(seed) as a sorted vertex set —
// one hop of dirty-frontier expansion over the reverse (out) CSR. Marking
// is parallelized over edge-balanced chunks of the seed's out-degree mass
// (the same cost model the kernel scheduler uses), so hub-heavy frontiers
// on power-law graphs don't serialize on one worker.
func (dg *DeltaGraph) ExpandOut(seed []int32) []int32 {
	if len(seed) == 0 {
		return nil
	}
	mark := make([]uint32, dg.n)
	for _, v := range seed {
		mark[v] = 1
	}
	offs := make([]int64, len(seed)+1)
	for i, v := range seed {
		offs[i+1] = offs[i] + int64(dg.out.Degree(v))
	}
	workers := sched.Workers(len(seed))
	ranges := sched.EdgeBalanced(offs, 4, sched.Oversubscribe(workers, 4))
	sched.Do(len(ranges), workers, func(_, c int) {
		for i := ranges[c].Lo; i < ranges[c].Hi; i++ {
			nbrs, _ := dg.out.Row(seed[i])
			for _, w := range nbrs {
				if atomic.LoadUint32(&mark[w]) == 0 {
					atomic.StoreUint32(&mark[w], 1)
				}
			}
		}
	})
	out := make([]int32, 0, len(seed)*2)
	for v := 0; v < dg.n; v++ {
		if mark[v] != 0 {
			out = append(out, int32(v))
		}
	}
	return out
}

func sortedKeys(set map[int32]bool) []int32 {
	out := make([]int32, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

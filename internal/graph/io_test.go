package graph

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGraphRoundTripHomogeneous(t *testing.T) {
	g := Figure7()
	var buf bytes.Buffer
	n, err := g.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Fatal("no bytes reported")
	}
	got, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != g.N || got.M != g.M || got.NumEdgeTypes != 1 {
		t.Fatalf("round trip: N=%d M=%d types=%d", got.N, got.M, got.NumEdgeTypes)
	}
	for e := 0; e < g.M; e++ {
		if got.Srcs[e] != g.Srcs[e] || got.Dsts[e] != g.Dsts[e] {
			t.Fatalf("edge %d mismatch", e)
		}
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGraphRoundTripHeterogeneous(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	g := GNM(rng, 30, 150)
	RandomEdgeTypes(rng, g, 5)
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEdgeTypes != 5 {
		t.Fatalf("types: %d", got.NumEdgeTypes)
	}
	for e := 0; e < g.M; e++ {
		if got.EdgeTypes[e] != g.EdgeTypes[e] {
			t.Fatalf("edge type %d mismatch", e)
		}
	}
}

func TestReadGraphRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("SGR1"), // truncated header
		append([]byte("SGR1"), make([]byte, 12)...),                            // n=m=0 ok, but:
		append([]byte("SGR1"), 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 0, 0, 0, 0), // absurd n
	}
	for i, c := range cases {
		g, err := ReadGraph(bytes.NewReader(c))
		if i == 3 {
			// The empty graph is actually valid.
			if err != nil || g.N != 0 {
				t.Fatalf("case %d: empty graph should load, got %v", i, err)
			}
			continue
		}
		if err == nil {
			t.Fatalf("case %d: garbage accepted", i)
		}
	}
}

func TestQuickGraphIORoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint8, hetero bool) bool {
		n := int(nRaw%40) + 2
		rng := rand.New(rand.NewSource(seed))
		g := GNM(rng, n, n)
		if hetero {
			RandomEdgeTypes(rng, g, 3)
		}
		var buf bytes.Buffer
		if _, err := g.WriteTo(&buf); err != nil {
			return false
		}
		got, err := ReadGraph(&buf)
		if err != nil || got.N != g.N || got.M != g.M {
			return false
		}
		for e := 0; e < g.M; e++ {
			if got.Srcs[e] != g.Srcs[e] || got.Dsts[e] != g.Dsts[e] {
				return false
			}
		}
		return got.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

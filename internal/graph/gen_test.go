package graph

import (
	"math/rand"
	"sort"
	"testing"
)

func TestZipfDegreeSkewAndValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := ZipfDegree(rng, 2000, 8, 1.0)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	avg := float64(g.M) / float64(g.N)
	if avg < 4 || avg > 16 {
		t.Fatalf("average degree %.1f far from requested 8", avg)
	}
	// The defining property: the top 10%% of vertices by in-degree must
	// hold the majority of edges (rank-based Zipf with alpha=1).
	degs := make([]int, g.N)
	var total int
	for v := 0; v < g.N; v++ {
		d := int(g.In.Offsets[v+1] - g.In.Offsets[v])
		degs[v] = d
		total += d
	}
	sort.Sort(sort.Reverse(sort.IntSlice(degs)))
	top := 0
	for _, d := range degs[:g.N/10] {
		top += d
	}
	if frac := float64(top) / float64(total); frac < 0.5 {
		t.Fatalf("top 10%% of vertices hold only %.0f%% of edges, want a heavy tail", frac*100)
	}
	// No self loops.
	for e := 0; e < g.M; e++ {
		if g.Srcs[e] == g.Dsts[e] {
			t.Fatalf("self loop at edge %d", e)
		}
	}
}

func TestZipfDegreeDeterministic(t *testing.T) {
	a := ZipfDegree(rand.New(rand.NewSource(9)), 300, 4, 0.8)
	b := ZipfDegree(rand.New(rand.NewSource(9)), 300, 4, 0.8)
	if a.M != b.M {
		t.Fatalf("edge counts differ: %d vs %d", a.M, b.M)
	}
	for e := 0; e < a.M; e++ {
		if a.Srcs[e] != b.Srcs[e] || a.Dsts[e] != b.Dsts[e] {
			t.Fatalf("edge %d differs", e)
		}
	}
}

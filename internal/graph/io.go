package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary graph serialization: a versioned little-endian format holding the
// edge list and edge types. CSRs are rebuilt on load (they are derived
// state), which keeps files small and the format stable.
//
//	magic   [4]byte  "SGR1"
//	n       uint32
//	m       uint32
//	types   uint32   number of edge types (1 = homogeneous)
//	srcs    [m]uint32
//	dsts    [m]uint32
//	etypes  [m]uint32 (present only when types > 1)
var magic = [4]byte{'S', 'G', 'R', '1'}

// WriteTo serializes the graph. It returns the byte count written.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var count int64
	write := func(v interface{}) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		count += int64(binary.Size(v))
		return nil
	}
	if err := write(magic); err != nil {
		return count, err
	}
	if err := write(uint32(g.N)); err != nil {
		return count, err
	}
	if err := write(uint32(g.M)); err != nil {
		return count, err
	}
	if err := write(uint32(g.NumEdgeTypes)); err != nil {
		return count, err
	}
	if err := write(g.Srcs); err != nil {
		return count, err
	}
	if err := write(g.Dsts); err != nil {
		return count, err
	}
	if g.NumEdgeTypes > 1 {
		if err := write(g.EdgeTypes); err != nil {
			return count, err
		}
	}
	return count, bw.Flush()
}

// ReadGraph deserializes a graph written by WriteTo and rebuilds its CSR
// structures (unsorted; callers re-apply SortByDegree / SortEdgesByType).
func ReadGraph(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var m4 [4]byte
	if err := binary.Read(br, binary.LittleEndian, &m4); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if m4 != magic {
		return nil, fmt.Errorf("graph: bad magic %q", m4)
	}
	var n, m, types uint32
	for _, p := range []*uint32{&n, &m, &types} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("graph: reading header: %w", err)
		}
	}
	const maxReasonable = 1 << 31
	if n > maxReasonable || m > maxReasonable {
		return nil, fmt.Errorf("graph: implausible header n=%d m=%d", n, m)
	}
	srcs := make([]int32, m)
	dsts := make([]int32, m)
	if err := binary.Read(br, binary.LittleEndian, srcs); err != nil {
		return nil, fmt.Errorf("graph: reading srcs: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, dsts); err != nil {
		return nil, fmt.Errorf("graph: reading dsts: %w", err)
	}
	g, err := FromEdges(int(n), srcs, dsts)
	if err != nil {
		return nil, err
	}
	if types > 1 {
		ets := make([]int32, m)
		if err := binary.Read(br, binary.LittleEndian, ets); err != nil {
			return nil, fmt.Errorf("graph: reading edge types: %w", err)
		}
		if err := g.WithEdgeTypes(ets, int(types)); err != nil {
			return nil, err
		}
	}
	return g, nil
}

package fusion

import (
	"math/rand"
	"testing"

	"seastar/internal/autodiff"
	"seastar/internal/gir"
)

// randomDAG builds a random valid vertex-centric program (a slimmed-down
// twin of the exec package's differential generator) and returns its
// traced DAG.
func randomDAG(t *testing.T, seed int64) *gir.DAG {
	t.Helper()
	b := gir.NewBuilder()
	b.VFeature("h", 4)
	b.VFeature("s", 1)
	b.EFeature("w", 1)
	dag, err := b.Build(func(v *gir.Vertex) *gir.Value {
		rng := rand.New(rand.NewSource(seed))
		pool := []*gir.Value{v.Nbr("h"), v.Self("h"), v.Nbr("s"), v.Self("s"), v.Edge("w")}
		pick := func() *gir.Value { return pool[rng.Intn(len(pool))] }
		pickW := func(w int) *gir.Value {
			for i := 0; i < 20; i++ {
				c := pick()
				if c.Node().Dim() == w || c.Node().Dim() == 1 || w == 1 {
					return c
				}
			}
			return pick()
		}
		for i, n := 0, 3+rng.Intn(8); i < n; i++ {
			var nv *gir.Value
			switch rng.Intn(8) {
			case 0:
				nv = pick().Sigmoid()
			case 1:
				nv = pick().LeakyReLU(0.1)
			case 2, 3:
				a := pick()
				nv = a.Add(pickW(a.Node().Dim()))
			case 4:
				a := pick()
				nv = a.Mul(pickW(a.Node().Dim()))
			case 5:
				a := pick()
				if a.Node().Dim() > 1 {
					nv = a.RowSum()
				} else {
					nv = a.Neg()
				}
			default:
				a := pick()
				if a.Type() != gir.TypeD {
					nv = a.AggSum()
				} else {
					nv = a.Tanh()
				}
			}
			pool = append(pool, nv)
		}
		for i := len(pool) - 1; i >= 0; i-- {
			if pool[i].Type() == gir.TypeD {
				return pool[i]
			}
		}
		return pool[len(pool)-1].AggSum()
	})
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return dag
}

// checkPlanInvariants asserts the structural guarantees every partition
// must provide, fused or not.
func checkPlanInvariants(t *testing.T, seed int64, plan *Plan) {
	t.Helper()
	seen := map[*gir.Node]*Unit{}
	unitPos := map[*Unit]int{}
	for i, u := range plan.Units {
		unitPos[u] = i
		if len(u.Nodes) == 0 {
			t.Fatalf("seed %d: empty unit %d", seed, u.ID)
		}
		var aggDir *gir.AggDir
		for _, n := range u.Nodes {
			if n.Op == gir.OpLeaf {
				t.Fatalf("seed %d: leaf inside unit %d", seed, u.ID)
			}
			if prev, dup := seen[n]; dup {
				t.Fatalf("seed %d: node %%%d in units %d and %d", seed, n.ID, prev.ID, u.ID)
			}
			seen[n] = u
			if plan.UnitOf(n) != u {
				t.Fatalf("seed %d: UnitOf inconsistent for %%%d", seed, n.ID)
			}
			if n.Op.IsAgg() {
				if u.Kind != KindSeastar {
					t.Fatalf("seed %d: aggregation in %s unit", seed, u.Kind)
				}
				d := n.Dir
				if aggDir != nil && *aggDir != d {
					t.Fatalf("seed %d: unit %d mixes A:D and A:S", seed, u.ID)
				}
				aggDir = &d
			}
			if n.Type == gir.TypeP && !n.Op.IsAgg() && u.Kind == KindSeastar {
				t.Fatalf("seed %d: P-typed op %s in seastar unit", seed, n.Op)
			}
		}
	}
	// Every operator is in exactly one unit.
	for _, n := range plan.DAG.Nodes {
		if n.Op == gir.OpLeaf {
			continue
		}
		if _, ok := seen[n]; !ok {
			t.Fatalf("seed %d: operator %%%d not in any unit", seed, n.ID)
		}
	}
	// Unit order respects cross-unit data dependencies.
	for _, u := range plan.Units {
		for _, n := range u.Nodes {
			for _, in := range n.Inputs {
				if in.Op == gir.OpLeaf {
					continue
				}
				du := plan.UnitOf(in)
				if du != u && unitPos[du] >= unitPos[u] {
					t.Fatalf("seed %d: unit %d consumes unit %d out of order", seed, u.ID, du.ID)
				}
			}
		}
	}
}

func TestPartitionInvariantsOnRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 80; seed++ {
		dag := Optimize(randomDAG(t, seed))
		plan, err := Partition(dag)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		checkPlanInvariants(t, seed, plan)

		unfused, err := PartitionUnfused(dag)
		if err != nil {
			t.Fatalf("seed %d unfused: %v", seed, err)
		}
		checkPlanInvariants(t, seed, unfused)
		if len(unfused.Units) < len(plan.Units) {
			t.Fatalf("seed %d: unfused plan has fewer units (%d < %d)",
				seed, len(unfused.Units), len(plan.Units))
		}
	}
}

func TestBackwardPartitionInvariantsOnRandomPrograms(t *testing.T) {
	for seed := int64(200); seed < 240; seed++ {
		fwd := Optimize(randomDAG(t, seed))
		grads, err := autodiff.Backward(fwd)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		bwd := Optimize(grads.DAG)
		plan, err := Partition(bwd)
		if err != nil {
			t.Fatalf("seed %d backward: %v", seed, err)
		}
		checkPlanInvariants(t, seed, plan)
	}
}

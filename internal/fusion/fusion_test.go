package fusion

import (
	"testing"

	"seastar/internal/autodiff"
	"seastar/internal/gir"
)

func buildGAT(t *testing.T) *gir.DAG {
	t.Helper()
	b := gir.NewBuilder()
	b.VFeature("eu", 1)
	b.VFeature("ev", 1)
	b.VFeature("h", 8)
	dag, err := b.Build(func(v *gir.Vertex) *gir.Value {
		e := v.Nbr("eu").Add(v.Self("ev")).LeakyReLU(0.2).Exp()
		a := e.Div(e.AggSum())
		return a.Mul(v.Nbr("h")).AggSum()
	})
	if err != nil {
		t.Fatal(err)
	}
	return dag
}

func buildGCN(t *testing.T) *gir.DAG {
	t.Helper()
	b := gir.NewBuilder()
	b.VFeature("h", 4)
	b.VFeature("norm", 1)
	W := b.Param("W", 4, 2)
	dag, err := b.Build(func(v *gir.Vertex) *gir.Value {
		return v.Nbr("h").MatMul(W).Mul(v.Nbr("norm")).AggSum()
	})
	if err != nil {
		t.Fatal(err)
	}
	return dag
}

func opsOfUnit(u *Unit) []gir.OpKind {
	var ops []gir.OpKind
	for _, n := range u.Nodes {
		ops = append(ops, n.Op)
	}
	return ops
}

func TestGATForwardFusionMatchesFigure6(t *testing.T) {
	// The paper's Figure 6 forward GIR fuses into exactly two units:
	// {Add, LeakyRelu, Exp, AggSum} and {Div, Mul, AggSum} — Div cannot
	// fuse with AggSum (state 2 only accepts D, Div is E).
	dag := Optimize(buildGAT(t))
	plan, err := Partition(dag)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Units) != 2 {
		for _, u := range plan.Units {
			t.Log(u)
		}
		t.Fatalf("GAT forward units: %d, want 2", len(plan.Units))
	}
	u0, u1 := plan.Units[0], plan.Units[1]
	if u0.Kind != KindSeastar || u1.Kind != KindSeastar {
		t.Fatalf("unit kinds: %s, %s", u0.Kind, u1.Kind)
	}
	want0 := []gir.OpKind{gir.OpAdd, gir.OpLeakyReLU, gir.OpExp, gir.OpAgg}
	want1 := []gir.OpKind{gir.OpDiv, gir.OpMul, gir.OpAgg}
	got0, got1 := opsOfUnit(u0), opsOfUnit(u1)
	match := func(got, want []gir.OpKind) bool {
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if !match(got0, want0) || !match(got1, want1) {
		t.Fatalf("units:\n  %v\n  %v", got0, got1)
	}
	if !u0.HasAgg() || !u1.HasAgg() {
		t.Fatal("both GAT units contain an aggregation")
	}
}

func TestGCNForwardFusion(t *testing.T) {
	// GCN: the dense matmul is its own (un-fused) unit; Mul+AggSum fuse.
	dag := Optimize(buildGCN(t))
	plan, err := Partition(dag)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Units) != 2 {
		t.Fatalf("GCN units: %d", len(plan.Units))
	}
	var dense, seastar *Unit
	for _, u := range plan.Units {
		switch u.Kind {
		case KindDense:
			dense = u
		case KindSeastar:
			seastar = u
		}
	}
	if dense == nil || len(dense.Nodes) != 1 || dense.Nodes[0].Op != gir.OpMatMulP {
		t.Fatalf("dense unit: %v", dense)
	}
	if seastar == nil || len(seastar.Nodes) != 2 {
		t.Fatalf("seastar unit: %v", seastar)
	}
	// Dense unit must be ordered before the seastar unit that consumes it.
	if dense.ID > seastar.ID {
		t.Fatal("units out of dependency order")
	}
}

func TestBackwardPartitionsWithoutCycles(t *testing.T) {
	for name, build := range map[string]func(*testing.T) *gir.DAG{
		"gcn": buildGCN, "gat": buildGAT,
	} {
		fwd := Optimize(build(t))
		g, err := autodiff.Backward(fwd)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		bwd := Optimize(g.DAG)
		plan, err := Partition(bwd)
		if err != nil {
			t.Fatalf("%s backward: %v", name, err)
		}
		// Backward of a seastar program is seastar-shaped: it must
		// contain at least one fused unit with an aggregation.
		found := false
		for _, u := range plan.Units {
			if u.Kind == KindSeastar && u.HasAgg() {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s backward has no fused aggregation unit", name)
		}
		// ParamGrad units appear for GCN (it has a weight).
		if name == "gcn" {
			pg := false
			for _, u := range plan.Units {
				if u.Kind == KindParamGrad {
					pg = true
				}
			}
			if !pg {
				t.Fatal("gcn backward missing paramgrad unit")
			}
		}
	}
}

func TestCSEMergesDuplicateLeavesAndOps(t *testing.T) {
	b := gir.NewBuilder()
	b.VFeature("h", 4)
	dag, err := b.Build(func(v *gir.Vertex) *gir.Value {
		// Two syntactically separate but identical subtrees.
		x := v.Nbr("h").Exp()
		y := v.Nbr("h").Exp()
		return x.Add(y).AggSum()
	})
	if err != nil {
		t.Fatal(err)
	}
	before := len(dag.Nodes)
	opt := Optimize(dag)
	if len(opt.Nodes) >= before {
		t.Fatalf("CSE did not shrink: %d -> %d", before, len(opt.Nodes))
	}
	exps := 0
	for _, n := range opt.Nodes {
		if n.Op == gir.OpExp {
			exps++
		}
	}
	if exps != 1 {
		t.Fatalf("Exp nodes after CSE: %d", exps)
	}
}

func TestSimplifyIdentities(t *testing.T) {
	b := gir.NewBuilder()
	b.VFeature("h", 4)
	dag, err := b.Build(func(v *gir.Vertex) *gir.Value {
		x := v.Nbr("h").MulScalar(1).AddScalar(0) // both identity
		x = x.Neg().Neg()                         // identity
		x = x.Log().Exp()                         // identity
		x = x.MulScalar(2).MulScalar(3)           // folds to *6
		return x.AggSum()
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := Optimize(dag)
	var muls []*gir.Node
	for _, n := range opt.Nodes {
		switch n.Op {
		case gir.OpNeg, gir.OpLog, gir.OpExp, gir.OpAddConst:
			t.Fatalf("op %s survived simplification", n.Op)
		case gir.OpMulConst:
			muls = append(muls, n)
		}
	}
	if len(muls) != 1 || muls[0].Attr.C != 6 {
		t.Fatalf("MulConst folding: %v", muls)
	}
}

func TestSimplifyKeepsBroadcastMulConst(t *testing.T) {
	// The widening MulConst(1) emitted by RowSum backward must NOT be
	// removed: it changes the width.
	b := gir.NewBuilder()
	b.VFeature("h", 4)
	fwd, err := b.Build(func(v *gir.Vertex) *gir.Value {
		// RowSum's backward broadcasts a [1] gradient to width 4 via a
		// widening MulConst(1).
		return v.Nbr("h").RowSum().Exp().AggSum()
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := autodiff.Backward(fwd)
	if err != nil {
		t.Fatal(err)
	}
	opt := Optimize(g.DAG)
	found := false
	for _, n := range opt.Nodes {
		if n.Op == gir.OpMulConst && n.Dim() != n.Inputs[0].Dim() {
			found = true
		}
	}
	if !found {
		t.Fatal("broadcast MulConst was simplified away")
	}
	if err := opt.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMaterializedGATForward(t *testing.T) {
	dag := Optimize(buildGAT(t))
	plan, err := Partition(dag)
	if err != nil {
		t.Fatal(err)
	}
	mat := plan.Materialized(nil)
	u0, u1 := plan.Units[0], plan.Units[1]
	// Unit 0 materializes only its AggSum (a vertex tensor): the E-typed
	// Exp that unit 1 consumes is RECOMPUTED there by materialization
	// planning, never written as an [M,1] tensor.
	names := map[gir.OpKind]bool{}
	for _, n := range mat[u0] {
		names[n.Op] = true
	}
	if !names[gir.OpAgg] {
		t.Fatalf("unit0 materializes %v", mat[u0])
	}
	if names[gir.OpExp] || names[gir.OpAdd] || names[gir.OpLeakyReLU] {
		t.Fatalf("unit0 over-materializes: %v", mat[u0])
	}
	// Unit 1 materializes only its output AggSum.
	if len(mat[u1]) != 1 || mat[u1][0] != dag.Outputs[0] {
		t.Fatalf("unit1 materializes %v", mat[u1])
	}
	// With an extra saved set, intermediates become materialized.
	var div *gir.Node
	for _, n := range dag.Nodes {
		if n.Op == gir.OpDiv {
			div = n
		}
	}
	mat2 := plan.Materialized(map[*gir.Node]bool{div: true})
	if len(mat2[u1]) != 2 {
		t.Fatalf("extra saved not materialized: %v", mat2[u1])
	}
}

func TestUnitAndKindStrings(t *testing.T) {
	dag := Optimize(buildGCN(t))
	plan, err := Partition(dag)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range plan.Units {
		if u.String() == "" {
			t.Fatal("empty unit string")
		}
		if plan.UnitOf(u.Nodes[0]) != u {
			t.Fatal("UnitOf inconsistent")
		}
	}
	if KindSeastar.String() != "seastar" || KindDense.String() != "dense" ||
		KindParamGrad.String() != "paramgrad" || UnitKind(9).String() == "" {
		t.Fatal("kind strings")
	}
}

func TestHeteroUDFFusesIntoOneUnit(t *testing.T) {
	// R-GCN layer body: typed matmul (E), edge-norm multiply (E),
	// hierarchical aggregation — all one seastar unit.
	b := gir.NewBuilder()
	b.VFeature("h", 4)
	b.EFeature("norm", 1)
	Ws := b.Param("W", 3, 4, 2)
	dag, err := b.Build(func(v *gir.Vertex) *gir.Value {
		return v.Nbr("h").MatMulTyped(Ws).Mul(v.Edge("norm")).AggHier(gir.AggSum, gir.AggSum)
	})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Partition(Optimize(dag))
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Units) != 1 || plan.Units[0].Kind != KindSeastar {
		t.Fatalf("hetero units: %v", plan.Units)
	}
}

// Fuzz-level differential testing of the whole compile pipeline: random
// S/E/D op chains are traced, optimized, fused, compiled to kernels and
// executed — and the result must match the definitional refinterp
// evaluation of the same optimized GIR bit for bit. The test lives in the
// external test package so it can drive exec (which imports fusion)
// without an import cycle.
package fusion_test

import (
	"math"
	"math/rand"
	"testing"

	"seastar/internal/exec"
	"seastar/internal/gir"
	"seastar/internal/graph"
	"seastar/internal/kernels"
	"seastar/internal/refinterp"
	"seastar/internal/tensor"
)

// fuzzProgram decodes the byte stream into a deterministic vertex-centric
// program. Byte 0 seeds the graph, byte 1 packs flags (hetero bit,
// feature width), and each following byte appends one operator to the
// chain: the opcode comes from the low bits, operand choices from the
// high bits, so the corpus mutator explores both structure and wiring.
type fuzzProgram struct {
	hetero bool
	dim    int
	ops    []byte
}

func decodeFuzz(data []byte) (fuzzProgram, int64) {
	p := fuzzProgram{dim: 1}
	if len(data) < 3 {
		return p, 0
	}
	gseed := int64(data[0])
	flags := data[1]
	p.hetero = flags&1 == 1
	p.dim = []int{1, 2, 4, 8}[(flags>>1)&3]
	p.ops = data[2:]
	if len(p.ops) > 24 {
		p.ops = p.ops[:24]
	}
	return p, gseed
}

// buildUDF constructs the traced program; it must be a pure function of p
// so both engines see identical GIR.
func (p fuzzProgram) buildUDF(b *gir.Builder) gir.UDF {
	b.VFeature("h", p.dim)
	b.VFeature("s", 1)
	if p.hetero {
		b.EFeature("w", 1)
	}
	return func(v *gir.Vertex) *gir.Value {
		pool := []*gir.Value{v.Nbr("h"), v.Self("h"), v.Nbr("s"), v.Self("s")}
		if p.hetero {
			pool = append(pool, v.Edge("w"))
		}
		pick := func(sel byte) *gir.Value { return pool[int(sel)%len(pool)] }
		pickW := func(sel byte, w int) *gir.Value {
			for tries := 0; tries < len(pool); tries++ {
				c := pool[(int(sel)+tries)%len(pool)]
				if c.Node().Dim() == w || c.Node().Dim() == 1 || w == 1 {
					return c
				}
			}
			return pick(sel)
		}
		for _, op := range p.ops {
			code, sel := op%12, op>>4
			var nv *gir.Value
			switch code {
			case 0:
				nv = pick(sel).Sigmoid()
			case 1:
				nv = pick(sel).Tanh()
			case 2:
				nv = pick(sel).LeakyReLU(0.2)
			case 3:
				nv = pick(sel).MulScalar(0.5).AddScalar(0.25)
			case 4, 5:
				a := pick(sel)
				nv = a.Add(pickW(sel+1, a.Node().Dim()))
			case 6:
				a := pick(sel)
				nv = a.Mul(pickW(sel+1, a.Node().Dim()))
			case 7:
				a := pick(sel)
				// Keep denominators away from zero.
				nv = a.Div(pickW(sel+1, a.Node().Dim()).Sigmoid().AddScalar(1.1))
			case 8:
				a := pick(sel)
				if a.Node().Dim() > 1 {
					nv = a.RowSum()
				} else {
					nv = a.Neg()
				}
			case 9:
				a := pick(sel)
				if a.Type() != gir.TypeD {
					nv = a.AggMax()
				} else {
					nv = a.Exp().AddScalar(1).Log()
				}
			default:
				a := pick(sel)
				if a.Type() != gir.TypeD {
					if p.hetero && sel%2 == 0 {
						nv = a.AggHier(gir.AggSum, gir.AggSum)
					} else if sel%3 == 0 {
						nv = a.AggMean()
					} else {
						nv = a.AggSum()
					}
				} else {
					nv = a.Sigmoid()
				}
			}
			pool = append(pool, nv)
		}
		for i := len(pool) - 1; i >= 0; i-- {
			if pool[i].Type() == gir.TypeD {
				return pool[i]
			}
		}
		return pool[len(pool)-1].AggSum()
	}
}

func fuzzGraph(seed int64, hetero bool) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := 4 + rng.Intn(14)
	m := 8 + rng.Intn(4*n)
	if max := n * (n - 1); m > max {
		m = max
	}
	g := graph.GNM(rng, n, m)
	if hetero {
		graph.RandomEdgeTypes(rng, g, 1+rng.Intn(4))
		if err := g.SortEdgesByType(); err != nil {
			panic(err)
		}
	}
	return g.SortByDegree()
}

// sameBits reports bit-identity, treating any two NaNs as equal.
func sameBits(a, b float32) bool {
	if math.IsNaN(float64(a)) && math.IsNaN(float64(b)) {
		return true
	}
	return math.Float32bits(a) == math.Float32bits(b)
}

func checkFusionEquivalence(t *testing.T, data []byte) {
	p, gseed := decodeFuzz(data)
	if p.ops == nil {
		return
	}
	b := gir.NewBuilder()
	udf := p.buildUDF(b)
	dag, err := b.Build(udf)
	if err != nil {
		return // invalid program shapes are not interesting
	}
	// Inference-only compilation: the generator is free to emit max/mean
	// aggregations, which have no gradient and would be rejected by the
	// training-path compiler.
	c, err := exec.CompileInference(dag)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	g := fuzzGraph(gseed, p.hetero)

	irng := rand.New(rand.NewSource(gseed ^ 0x5eab5eab))
	vfeat := map[string]*tensor.Tensor{
		"h": tensor.Randn(irng, 0.5, g.N, p.dim),
		"s": tensor.Randn(irng, 0.5, g.N, 1),
	}
	var efeat map[string]*tensor.Tensor
	if p.hetero {
		efeat = map[string]*tensor.Tensor{"w": tensor.Randn(irng, 0.5, g.M, 1)}
	}

	// First run with the default config: units matched by the closure
	// compiler execute specialized (specialize.go), the rest interpret.
	got, err := c.Infer(&exec.InferEnv{G: g}, vfeat, efeat, nil)
	if err != nil {
		t.Fatalf("infer: %v", err)
	}

	// Second run with the closure compiler forced off: the specialized
	// and interpreted paths must agree bit for bit on every program the
	// mutator finds, not just the curated property-test models.
	interpCfg := kernels.DefaultConfig()
	interpCfg.NoSpecialize = true
	gotInterp, err := c.Infer(&exec.InferEnv{G: g, Cfg: interpCfg}, vfeat, efeat, nil)
	if err != nil {
		t.Fatalf("infer (interpreter): %v", err)
	}
	if got.Size() != gotInterp.Size() {
		t.Fatalf("specialized size %d != interpreted %d", got.Size(), gotInterp.Size())
	}
	for i := 0; i < got.Size(); i++ {
		if !sameBits(got.At1(i), gotInterp.At1(i)) {
			t.Fatalf("output[%d]: specialized %v (bits %08x) != interpreted %v (bits %08x); hetero=%v dim=%d data=%v",
				i, got.At1(i), math.Float32bits(got.At1(i)),
				gotInterp.At1(i), math.Float32bits(gotInterp.At1(i)), p.hetero, p.dim, data)
		}
	}

	// Third run with an adaptive re-plan installed: learned tile-width,
	// chunk-granularity and serial-path overrides (the bitwise-safe
	// envelope the measured re-planner moves in) must leave every output
	// bit where the static plan put it.
	replan := map[string]kernels.Tuning{}
	for _, u := range c.TuningSurface() {
		tn := kernels.Tuning{ChunksPerWorker: 3, Serial: -1}
		if u.Tileable {
			tn.TileWidth = 1 + p.dim/2
		}
		replan[u.Label] = tn
	}
	c.ApplyTuning(replan)
	gotTuned, err := c.Infer(&exec.InferEnv{G: g, Cfg: interpCfg}, vfeat, efeat, nil)
	c.ResetTuning()
	if err != nil {
		t.Fatalf("infer (re-planned): %v", err)
	}
	for i := 0; i < got.Size(); i++ {
		if !sameBits(gotTuned.At1(i), gotInterp.At1(i)) {
			t.Fatalf("output[%d]: re-planned %v (bits %08x) != static %v (bits %08x); hetero=%v dim=%d data=%v",
				i, gotTuned.At1(i), math.Float32bits(gotTuned.At1(i)),
				gotInterp.At1(i), math.Float32bits(gotInterp.At1(i)), p.hetero, p.dim, data)
		}
	}

	// The oracle evaluates the SAME optimized forward DAG the kernels
	// were compiled from, so optimizer rewrites cannot explain a
	// divergence: any mismatch is a fusion/codegen bug.
	bind := &refinterp.Bindings{VFeat: vfeat, EFeat: efeat}
	vals, err := refinterp.Eval(c.Fwd, g, bind)
	if err != nil {
		t.Fatalf("refinterp: %v", err)
	}
	want := vals[c.Fwd.Outputs[0]]

	if got.Size() != want.Size() {
		t.Fatalf("output size %d != reference %d", got.Size(), want.Size())
	}
	for i := 0; i < got.Size(); i++ {
		if !sameBits(got.At1(i), want.At1(i)) {
			t.Fatalf("output[%d]: fused %v (bits %08x) != reference %v (bits %08x); hetero=%v dim=%d data=%v",
				i, got.At1(i), math.Float32bits(got.At1(i)),
				want.At1(i), math.Float32bits(want.At1(i)), p.hetero, p.dim, data)
		}
	}
}

// FuzzFusionEquivalence is the native-fuzzing entry point; the seed
// corpus below plus testdata/fuzz checked-in inputs run on every plain
// `go test`.
func FuzzFusionEquivalence(f *testing.F) {
	f.Add([]byte{7, 2, 10, 4, 0, 10})                          // homo GCN-ish: add, sigmoid, aggsum
	f.Add([]byte{3, 1, 0, 2, 11, 7, 6, 10})                    // hetero with div + hier agg
	f.Add([]byte{11, 4, 9, 9, 8, 10})                          // aggmax + rowsum chain
	f.Add([]byte{42, 5, 5, 6, 3, 1, 10, 0})                    // mixed widths, tanh
	f.Add([]byte{1, 7, 11, 11, 2, 4, 10, 9, 8})                // hetero wide, mean agg
	f.Add([]byte{99, 6, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}) // every opcode once
	f.Add([]byte{13, 3, 7, 7, 7, 10, 10, 5, 9})                // nested div + double agg
	// Closure-compiler shapes (specialize.go): these decode to the
	// canonical specialized patterns so the mutator keeps both execution
	// paths honest from recognizable starting points.
	f.Add([]byte{7, 6, 36, 66, 80, 106, 103, 150, 154}) // GAT-shaped: scalar edge chain → softmax div → scaled gather
	f.Add([]byte{9, 6, 54, 74})                         // GCN-shaped: row-scalar × wide gather → aggsum
	f.Add([]byte{5, 7, 66, 86, 106})                    // R-GCN-shaped: hetero scalar chain → scaled gather → hier agg
	f.Fuzz(checkFusionEquivalence)
}

// TestFusionEquivalenceSweep runs the differential check over a dense
// deterministic input sweep, so plain `go test` exercises far more
// programs than the seed corpus alone.
func TestFusionEquivalenceSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(20260805))
	for i := 0; i < 150; i++ {
		n := 3 + rng.Intn(10)
		data := make([]byte, n)
		for j := range data {
			data[j] = byte(rng.Intn(256))
		}
		checkFusionEquivalence(t, data)
	}
}

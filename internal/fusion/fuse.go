package fusion

import (
	"fmt"

	"seastar/internal/gir"
)

// UnitKind classifies how an execution unit runs.
type UnitKind int

const (
	// KindSeastar units execute as one fused graph kernel (Algorithm 1).
	KindSeastar UnitKind = iota
	// KindDense units are whole-tensor dense ops (vertex-typed matmuls)
	// dispatched to the DL backend, as the paper does for un-fused units.
	KindDense
	// KindParamGrad units reduce parameter gradients (dW = Σ xᵀg).
	KindParamGrad
)

// String names the kind (seastar, dense, paramgrad).
func (k UnitKind) String() string {
	switch k {
	case KindSeastar:
		return "seastar"
	case KindDense:
		return "dense"
	case KindParamGrad:
		return "paramgrad"
	default:
		return fmt.Sprintf("UnitKind(%d)", int(k))
	}
}

// Unit is one execution unit: a set of operators executed together.
type Unit struct {
	ID    int
	Kind  UnitKind
	Nodes []*gir.Node // topological order within the unit
}

// HasAgg reports whether the unit contains an aggregation stage.
func (u *Unit) HasAgg() bool {
	for _, n := range u.Nodes {
		if n.Op.IsAgg() {
			return true
		}
	}
	return false
}

// AggDir returns the unit's aggregation direction (units without an
// aggregation default to A:D, matching the kernel compiler's layout).
func (u *Unit) AggDir() gir.AggDir {
	for _, n := range u.Nodes {
		if n.Op.IsAgg() {
			return n.Dir
		}
	}
	return gir.AggToDst
}

// NbrType returns the vertex type that varies per edge within one of the
// unit's kernel rows: the source type for A:D layouts, destination for
// A:S. A value of this type is computed in the kernel's edge stage and
// therefore cannot be materialized by one write per row.
func (u *Unit) NbrType() gir.GraphType {
	if u.AggDir() == gir.AggToDst {
		return gir.TypeS
	}
	return gir.TypeD
}

// String renders the unit as one plan line: id, kind and the typed
// nodes it fuses.
func (u *Unit) String() string {
	s := fmt.Sprintf("unit %d [%s]:", u.ID, u.Kind)
	for _, n := range u.Nodes {
		s += fmt.Sprintf(" %%%d=%s<%s>", n.ID, n.Op, n.Type)
	}
	return s
}

// Plan is a DAG partitioned into execution units in dependency order.
type Plan struct {
	DAG    *gir.DAG
	Units  []*Unit
	unitOf map[*gir.Node]*Unit
	// materializeAll disables the recompute exemption for E-typed
	// intermediates (set by the un-fused ablation baseline, whose whole
	// point is to write every intermediate like the §2.3 systems do).
	materializeAll bool
}

// UnitOf returns the unit containing operator n (nil for leaves).
func (p *Plan) UnitOf(n *gir.Node) *Unit { return p.unitOf[n] }

// fsm states (§6.2, Figure 8). State 1 is the pre-aggregation stage
// accepting S-, D- and E-typed operators (S-E and E-E fusion); states 2
// and 3 follow A:D and A:S aggregations and accept only D- and S-typed
// operators respectively.
type state int

const (
	stStart state = iota
	stPre         // S/D/E chain before an aggregation
	stPostD       // after A:D
	stPostS       // after A:S
)

// symbol is an operator's FSM transition symbol.
type symbol int

const (
	symS symbol = iota
	symD
	symE
	symAD
	symAS
	symNone // unfusible operator
)

func symbolOf(n *gir.Node) symbol {
	if n.Op.IsAgg() {
		if n.Dir == gir.AggToDst {
			return symAD
		}
		return symAS
	}
	switch n.Op {
	case gir.OpMatMulP, gir.OpMatMulPT, gir.OpParamGradMM, gir.OpParamGradMMTyped:
		// Vertex-typed dense matmuls run as whole-tensor GEMMs in the
		// backend; parameter-gradient reductions have their own kernel.
		return symNone
	}
	switch n.Type {
	case gir.TypeS:
		return symS
	case gir.TypeD:
		return symD
	case gir.TypeE:
		return symE
	default:
		// P-typed elementwise ops (e.g. accumulating two weight
		// gradients) are whole-tensor backend ops, never graph kernels.
		return symNone
	}
}

// unitKindOf classifies an operator that starts its own unit.
func unitKindOf(n *gir.Node) UnitKind {
	switch n.Op {
	case gir.OpParamGradMM, gir.OpParamGradMMTyped:
		return KindParamGrad
	case gir.OpMatMulP, gir.OpMatMulPT:
		return KindDense
	}
	if n.Type == gir.TypeP && !n.Op.IsAgg() {
		return KindDense
	}
	return KindSeastar
}

// transition returns the next state, or false when the symbol is not
// fusible from s.
func transition(s state, sym symbol) (state, bool) {
	switch s {
	case stStart, stPre:
		switch sym {
		case symS, symD, symE:
			return stPre, true
		case symAD:
			return stPostD, true
		case symAS:
			return stPostS, true
		}
	case stPostD:
		if sym == symD {
			return stPostD, true
		}
	case stPostS:
		if sym == symS {
			return stPostS, true
		}
	}
	return 0, false
}

// Partition runs the seastar fusion FSM over d (paper §6.2): operators are
// visited in topological order; each tries to fuse with its nearest
// (topologically latest) operator parent — the paper's last-write-wins
// tie-break — when the FSM transition from that parent's state is valid.
// A fusion is additionally rejected when another input of the operator
// could transitively depend on the target unit (it starts no earlier than
// the unit's first node), which would create a cyclic unit dependency;
// this is a sound approximation that never triggers for seastar-shaped
// programs.
func Partition(d *gir.DAG) (*Plan, error) {
	pos := make(map[*gir.Node]int, len(d.Nodes))
	for i, n := range d.Nodes {
		pos[n] = i
	}

	states := make(map[*gir.Node]state)
	unitOf := make(map[*gir.Node]*Unit)
	var units []*Unit
	minPos := make(map[*Unit]int)
	// aggDir pins each unit's aggregation direction: a fused kernel
	// iterates a single CSR direction, so A:D and A:S cannot share one.
	aggDir := make(map[*Unit]gir.AggDir)
	hasAgg := make(map[*Unit]bool)

	newUnit := func(n *gir.Node) *Unit {
		u := &Unit{ID: len(units), Kind: unitKindOf(n), Nodes: []*gir.Node{n}}
		units = append(units, u)
		unitOf[n] = u
		minPos[u] = pos[n]
		return u
	}

	for _, n := range d.Nodes {
		if n.Op == gir.OpLeaf {
			continue
		}
		sym := symbolOf(n)
		if sym == symNone {
			newUnit(n)
			continue
		}
		// Nearest operator parent (last-write-wins).
		var nearest *gir.Node
		for _, in := range n.Inputs {
			if in.Op == gir.OpLeaf {
				continue
			}
			if nearest == nil || pos[in] > pos[nearest] {
				nearest = in
			}
		}
		fused := false
		if nearest != nil {
			if u, ok := unitOf[nearest]; ok && u.Kind == KindSeastar {
				dirOK := true
				if n.Op.IsAgg() && hasAgg[u] && aggDir[u] != n.Dir {
					dirOK = false
				}
				// The effective state is the join over ALL in-unit inputs,
				// not just the nearest: an input past the unit's
				// aggregation (post-agg state) forces the post-agg state,
				// otherwise an edge-stage operator could read an
				// aggregation result that the single-pass kernel has not
				// finalized yet.
				st := states[nearest]
				for _, in := range n.Inputs {
					if unitOf[in] == u {
						if s := states[in]; s == stPostD || s == stPostS {
							st = s
						}
					}
				}
				if next, valid := transition(st, sym); valid && dirOK && noEscape(n, u, unitOf, minPos[u], pos) {
					states[n] = next
					unitOf[n] = u
					u.Nodes = append(u.Nodes, n)
					if n.Op.IsAgg() {
						aggDir[u] = n.Dir
						hasAgg[u] = true
					}
					fused = true
				}
			}
		}
		if !fused {
			st, valid := transition(stStart, sym)
			if !valid {
				return nil, fmt.Errorf("fusion: operator %s cannot start a unit", n)
			}
			states[n] = st
			u := newUnit(n)
			if n.Op.IsAgg() {
				aggDir[u] = n.Dir
				hasAgg[u] = true
			}
		}
	}

	plan := &Plan{DAG: d, Units: units, unitOf: unitOf}
	if err := plan.orderUnits(); err != nil {
		return nil, err
	}
	return plan, nil
}

// PartitionUnfused puts every operator in its own execution unit — the
// no-fusion baseline used by the ablation benchmarks. Edge-typed
// intermediates then materialize as [M, d] tensors between kernels,
// exhibiting exactly the memory and traffic overhead the seastar fusion
// eliminates (§2.3).
func PartitionUnfused(d *gir.DAG) (*Plan, error) {
	unitOf := make(map[*gir.Node]*Unit)
	var units []*Unit
	for _, n := range d.Nodes {
		if n.Op == gir.OpLeaf {
			continue
		}
		u := &Unit{ID: len(units), Kind: unitKindOf(n), Nodes: []*gir.Node{n}}
		units = append(units, u)
		unitOf[n] = u
	}
	plan := &Plan{DAG: d, Units: units, unitOf: unitOf, materializeAll: true}
	if err := plan.orderUnits(); err != nil {
		return nil, err
	}
	return plan, nil
}

// noEscape reports whether all operator inputs of n are either inside u or
// start strictly before u's first node (and therefore cannot depend on u).
func noEscape(n *gir.Node, u *Unit, unitOf map[*gir.Node]*Unit, uMin int, pos map[*gir.Node]int) bool {
	for _, in := range n.Inputs {
		if in.Op == gir.OpLeaf {
			continue
		}
		if unitOf[in] == u {
			continue
		}
		if pos[in] >= uMin {
			return false
		}
	}
	return true
}

// orderUnits topologically sorts units by inter-unit data dependencies.
func (p *Plan) orderUnits() error {
	deps := make(map[*Unit]map[*Unit]bool)
	for _, u := range p.Units {
		deps[u] = make(map[*Unit]bool)
	}
	for _, u := range p.Units {
		for _, n := range u.Nodes {
			for _, in := range n.Inputs {
				src := in
				if in.Op == gir.OpLeaf {
					continue
				}
				du := p.unitOf[src]
				if du != nil && du != u {
					deps[u][du] = true
				}
			}
		}
	}
	var order []*Unit
	done := make(map[*Unit]bool)
	for len(order) < len(p.Units) {
		progressed := false
		for _, u := range p.Units {
			if done[u] {
				continue
			}
			ready := true
			for d := range deps[u] {
				if !done[d] {
					ready = false
					break
				}
			}
			if ready {
				done[u] = true
				order = append(order, u)
				progressed = true
			}
		}
		if !progressed {
			return fmt.Errorf("fusion: cyclic unit dependency")
		}
	}
	for i, u := range order {
		u.ID = i
	}
	p.Units = order
	return nil
}

// recomputable reports whether a cross-unit value can be re-derived
// per edge inside a consuming seastar kernel instead of being written to
// device memory. This holds for edge-typed intermediates (the paper's
// §5.3 memory optimization) and for neighbour-typed intermediates of a
// seastar producer: those live in the producer's edge stage, so a
// one-write-per-row materialization could not capture them anyway — the
// consumer re-derives the value from the per-edge loads it already has.
func (p *Plan) recomputable(in *gir.Node) bool {
	if in.Type == gir.TypeE {
		return true
	}
	src := p.unitOf[in]
	return src != nil && src.Kind == KindSeastar && in.Type == src.NbrType()
}

// Materialized returns, for each unit, the nodes whose values must be
// written to device memory: unit outputs consumed by other units, DAG
// outputs, and nodes in the extra set (forward values the backward pass
// saves). Everything else stays in registers inside the fused kernel.
//
// This is the paper's materialization planning (§5.3, Figure 5) with its
// key memory optimization: an edge-typed (E) intermediate consumed only
// by other fused kernels is RECOMPUTED inside each consumer rather than
// written out as an [M, d] tensor — the consuming kernel re-derives it
// per edge from the values it already loads. Only E-values feeding
// un-fused units (dense / param-grad), saved for the backward pass, or
// escaping as DAG outputs are materialized.
func (p *Plan) Materialized(extra map[*gir.Node]bool) map[*Unit][]*gir.Node {
	need := make(map[*gir.Node]bool)
	for _, o := range p.DAG.Outputs {
		need[o] = true
	}
	for n := range extra {
		need[n] = true
	}
	for _, u := range p.Units {
		for _, n := range u.Nodes {
			for _, in := range n.Inputs {
				if in.Op == gir.OpLeaf {
					continue
				}
				if p.unitOf[in] == u {
					continue
				}
				if u.Kind == KindSeastar && !p.materializeAll && p.recomputable(in) {
					continue // recomputed in the consuming kernel
				}
				need[in] = true
			}
		}
	}
	out := make(map[*Unit][]*gir.Node, len(p.Units))
	for _, u := range p.Units {
		for _, n := range u.Nodes {
			if need[n] {
				out[u] = append(out[u], n)
			}
		}
	}
	return out
}

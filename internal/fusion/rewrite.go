// Package fusion implements Seastar's graph-level optimizations (paper
// §6): common-subexpression elimination, constant folding, symbolic
// simplification, dead-code elimination, the seastar operator-fusion
// finite state machine that partitions a GIR into execution units, and
// materialization planning over the resulting units.
package fusion

import (
	"fmt"

	"seastar/internal/gir"
)

// Optimize applies CSE, symbolic simplification, constant folding and DCE
// to a DAG, returning the rewritten (pruned) graph. Node objects may be
// shared with the input.
func Optimize(d *gir.DAG) *gir.DAG {
	// Two fixpoint-ish rounds are sufficient for the rewrite set: a
	// simplification can expose at most one further CSE opportunity in
	// these rules.
	for i := 0; i < 2; i++ {
		simplify(d)
		cse(d)
	}
	return d.Prune()
}

// signature builds a structural key for CSE. LeafSaved nodes key on the
// identity of their forward reference.
func signature(n *gir.Node, id func(*gir.Node) int) string {
	s := fmt.Sprintf("%d|%d|%d|%v|%v|%v|%v|%v|%d|%q",
		n.Op, n.Type, n.Dir, n.Attr.Slope, n.Attr.C, n.Attr.AggOp,
		n.Attr.InnerOp, n.Attr.OuterOp, n.LeafKind, n.Key)
	if n.Ref != nil {
		s += fmt.Sprintf("|ref%p", n.Ref)
	}
	s += fmt.Sprintf("|%v|", n.Shape)
	for _, in := range n.Inputs {
		s += fmt.Sprintf("%d,", id(in))
	}
	return s
}

// cse merges structurally identical nodes, rewriting consumers in place.
func cse(d *gir.DAG) {
	canonical := make(map[string]*gir.Node)
	replace := make(map[*gir.Node]*gir.Node)
	idOf := func(n *gir.Node) int {
		if r, ok := replace[n]; ok {
			return r.ID
		}
		return n.ID
	}
	for _, n := range d.Nodes {
		for i, in := range n.Inputs {
			if r, ok := replace[in]; ok {
				n.Inputs[i] = r
			}
		}
		sig := signature(n, idOf)
		if c, ok := canonical[sig]; ok {
			replace[n] = c
		} else {
			canonical[sig] = n
		}
	}
	for i, o := range d.Outputs {
		if r, ok := replace[o]; ok {
			d.Outputs[i] = r
		}
	}
}

// simplify applies local symbolic rewrites:
//
//	MulConst(1), AddConst(0)        → identity (same width only)
//	Neg(Neg(x)), Exp(Log(x)), Log(Exp(x)) → x
//	MulConst(a)∘MulConst(b)         → MulConst(a·b)
//	AddConst(a)∘AddConst(b)         → AddConst(a+b)
func simplify(d *gir.DAG) {
	reduced := func(n *gir.Node) *gir.Node {
		if len(n.Inputs) == 0 {
			return nil
		}
		in := n.Inputs[0]
		sameWidth := n.Dim() == in.Dim()
		switch n.Op {
		case gir.OpMulConst:
			if n.Attr.C == 1 && sameWidth {
				return in
			}
			if in.Op == gir.OpMulConst && sameWidth && in.Dim() == in.Inputs[0].Dim() {
				n.Attr.C *= in.Attr.C
				n.Inputs[0] = in.Inputs[0]
			}
		case gir.OpAddConst:
			if n.Attr.C == 0 && sameWidth {
				return in
			}
			if in.Op == gir.OpAddConst && sameWidth {
				n.Attr.C += in.Attr.C
				n.Inputs[0] = in.Inputs[0]
			}
		case gir.OpNeg:
			if in.Op == gir.OpNeg {
				return in.Inputs[0]
			}
		case gir.OpExp:
			if in.Op == gir.OpLog {
				return in.Inputs[0]
			}
		case gir.OpLog:
			if in.Op == gir.OpExp {
				return in.Inputs[0]
			}
		}
		return nil
	}
	repl := make(map[*gir.Node]*gir.Node)
	resolve := func(n *gir.Node) *gir.Node {
		for {
			r, ok := repl[n]
			if !ok {
				return n
			}
			n = r
		}
	}
	for _, n := range d.Nodes {
		for i, in := range n.Inputs {
			n.Inputs[i] = resolve(in)
		}
		if r := reduced(n); r != nil {
			repl[n] = resolve(r)
		}
	}
	for i, o := range d.Outputs {
		d.Outputs[i] = resolve(o)
	}
}

// Finite-difference golden tests: for each of the paper's four models the
// backward GIR produced by Backward is evaluated with the reference
// interpreter and compared entry-by-entry against central differences of
// the forward loss. This checks the differentiation RULES themselves —
// the fused-kernel execution of the same graphs is covered by the exec
// differential tests. External test package so refinterp can be imported
// without a cycle.
package autodiff_test

import (
	"math"
	"math/rand"
	"testing"

	"seastar/internal/autodiff"
	"seastar/internal/gir"
	"seastar/internal/graph"
	"seastar/internal/refinterp"
	"seastar/internal/tensor"
)

// gradCase is one model trace plus the bindings it needs.
type gradCase struct {
	name   string
	hetero bool
	build  func(t *testing.T) *gir.DAG
	// dims of each vertex/edge/param feature, keyed like the builder.
	vfeat map[string]int
	efeat map[string]int
	param map[string][]int
}

func gradCases() []gradCase {
	return []gradCase{
		{
			name: "gcn",
			build: func(t *testing.T) *gir.DAG {
				b := gir.NewBuilder()
				b.VFeature("h", 4)
				b.VFeature("norm", 1)
				W := b.Param("W", 4, 3)
				return mustBuild(t, b, func(v *gir.Vertex) *gir.Value {
					return v.Nbr("h").MatMul(W).Mul(v.Nbr("norm")).AggSum()
				})
			},
			vfeat: map[string]int{"h": 4, "norm": 1},
			param: map[string][]int{"W": {4, 3}},
		},
		{
			name: "gat",
			build: func(t *testing.T) *gir.DAG {
				b := gir.NewBuilder()
				b.VFeature("eu", 1)
				b.VFeature("ev", 1)
				b.VFeature("h", 3)
				return mustBuild(t, b, func(v *gir.Vertex) *gir.Value {
					e := v.Nbr("eu").Add(v.Self("ev")).LeakyReLU(0.2).Exp()
					a := e.Div(e.AggSum())
					return a.Mul(v.Nbr("h")).AggSum()
				})
			},
			vfeat: map[string]int{"eu": 1, "ev": 1, "h": 3},
		},
		{
			name: "appnp-step",
			build: func(t *testing.T) *gir.DAG {
				b := gir.NewBuilder()
				b.VFeature("h", 3)
				b.VFeature("h0", 3)
				b.VFeature("sn", 1)
				b.VFeature("dn", 1)
				return mustBuild(t, b, func(v *gir.Vertex) *gir.Value {
					agg := v.Nbr("h").Mul(v.Nbr("sn")).AggSum()
					return agg.Mul(v.Self("dn")).MulScalar(0.9).
						Add(v.Self("h0").MulScalar(0.1))
				})
			},
			vfeat: map[string]int{"h": 3, "h0": 3, "sn": 1, "dn": 1},
		},
		{
			name:   "rgcn",
			hetero: true,
			build: func(t *testing.T) *gir.DAG {
				b := gir.NewBuilder()
				b.VFeature("h", 4)
				b.EFeature("norm", 1)
				Ws := b.Param("W", 3, 4, 2)
				return mustBuild(t, b, func(v *gir.Vertex) *gir.Value {
					return v.Nbr("h").MatMulTyped(Ws).Mul(v.Edge("norm")).
						AggHier(gir.AggSum, gir.AggSum)
				})
			},
			vfeat: map[string]int{"h": 4},
			efeat: map[string]int{"norm": 1},
			param: map[string][]int{"W": {3, 4, 2}},
		},
	}
}

func mustBuild(t *testing.T, b *gir.Builder, udf gir.UDF) *gir.DAG {
	t.Helper()
	dag, err := b.Build(udf)
	if err != nil {
		t.Fatal(err)
	}
	return dag
}

func gradGraph(t *testing.T, hetero bool) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	g := graph.GNM(rng, 10, 28)
	if hetero {
		graph.RandomEdgeTypes(rng, g, 3)
		if err := g.SortEdgesByType(); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// loss is the scalar probe Σ out⊙gbar, accumulated in float64 so the
// central differences are dominated by the true derivative rather than
// summation noise.
func loss(out, gbar *tensor.Tensor) float64 {
	var s float64
	for i := 0; i < out.Size(); i++ {
		s += float64(out.At1(i)) * float64(gbar.At1(i))
	}
	return s
}

// fdCheck compares the analytic gradient entry against the central
// difference at two step sizes. An entry where the two step sizes
// disagree with each other sits on a non-smooth point (a LeakyReLU kink
// crossed by the perturbation) and is skipped rather than misreported.
func fdCheck(t *testing.T, name string, leaf *tensor.Tensor, i int,
	analytic float64, eval func() float64) (checked bool) {
	t.Helper()
	const rtol, atol = 1e-3, 5e-3
	close := func(a, b float64) bool {
		return math.Abs(a-b) <= rtol*math.Max(math.Abs(a), math.Abs(b))+atol
	}
	fd := func(eps float64) float64 {
		orig := leaf.At1(i)
		leaf.Set1(i, float32(float64(orig)+eps))
		lp := eval()
		leaf.Set1(i, float32(float64(orig)-eps))
		lm := eval()
		leaf.Set1(i, orig)
		return (lp - lm) / (2 * eps)
	}
	f1 := fd(1e-2)
	if close(f1, analytic) {
		return true
	}
	f2 := fd(5e-3)
	if close(f2, analytic) {
		return true
	}
	if !close(f1, f2) {
		return false // non-smooth point; no finite-difference verdict
	}
	t.Errorf("%s[%d]: analytic %.6g vs central difference %.6g (eps 1e-2) / %.6g (eps 5e-3)",
		name, i, analytic, f1, f2)
	return true
}

func TestGradientsMatchFiniteDifferences(t *testing.T) {
	for _, tc := range gradCases() {
		t.Run(tc.name, func(t *testing.T) {
			fwd := tc.build(t)
			grads, err := autodiff.Backward(fwd)
			if err != nil {
				t.Fatal(err)
			}
			g := gradGraph(t, tc.hetero)
			rng := rand.New(rand.NewSource(20260805))

			bind := &refinterp.Bindings{
				VFeat:  map[string]*tensor.Tensor{},
				EFeat:  map[string]*tensor.Tensor{},
				Params: map[string]*tensor.Tensor{},
			}
			for k, d := range tc.vfeat {
				bind.VFeat[k] = tensor.Randn(rng, 0.5, g.N, d)
			}
			for k, d := range tc.efeat {
				bind.EFeat[k] = tensor.Randn(rng, 0.5, g.M, d)
			}
			for k, shape := range tc.param {
				bind.Params[k] = tensor.Randn(rng, 0.5, shape...)
			}

			outNode := fwd.Outputs[0]
			fwdVals, err := refinterp.Eval(fwd, g, bind)
			if err != nil {
				t.Fatal(err)
			}
			gbar := tensor.Randn(rng, 1, g.N, outNode.Dim())

			// Analytic gradients: evaluate the backward GIR with the seed
			// gradient and every forward value available as saved state.
			bwdBind := &refinterp.Bindings{
				VFeat: bind.VFeat, EFeat: bind.EFeat, Params: bind.Params,
				Grad: gbar, Saved: fwdVals,
			}
			bwdVals, err := refinterp.Eval(grads.DAG, g, bwdBind)
			if err != nil {
				t.Fatal(err)
			}

			if len(grads.LeafGrads) == 0 {
				t.Fatal("no leaf gradients produced")
			}
			for leaf, gnode := range grads.LeafGrads {
				analytic := bwdVals[gnode]
				if analytic == nil {
					t.Fatalf("no value for gradient of %s:%s", leaf.LeafKind, leaf.Key)
				}
				var bound *tensor.Tensor
				switch leaf.LeafKind {
				case gir.LeafSrcFeat, gir.LeafDstFeat:
					bound = bind.VFeat[leaf.Key]
				case gir.LeafEdgeFeat:
					bound = bind.EFeat[leaf.Key]
				case gir.LeafParam:
					bound = bind.Params[leaf.Key]
				default:
					t.Fatalf("unexpected differentiable leaf kind %s", leaf.LeafKind)
				}
				if analytic.Size() != bound.Size() {
					t.Fatalf("gradient of %s has %d entries, leaf has %d",
						leaf.Key, analytic.Size(), bound.Size())
				}

				// Check every entry on these small shapes, capped to keep
				// the quadratic (entries × evals) cost bounded.
				stride := 1
				if bound.Size() > 48 {
					stride = bound.Size() / 48
				}
				checked := 0
				for i := 0; i < bound.Size(); i += stride {
					name := tc.name + "/" + leaf.LeafKind.String() + ":" + leaf.Key
					if fdCheck(t, name, bound, i, float64(analytic.At1(i)), func() float64 {
						vals, err := refinterp.Eval(fwd, g, bind)
						if err != nil {
							t.Fatal(err)
						}
						return loss(vals[outNode], gbar)
					}) {
						checked++
					}
				}
				if checked == 0 {
					t.Fatalf("%s: every sampled entry hit a kink — no gradient verified", leaf.Key)
				}
			}
		})
	}
}

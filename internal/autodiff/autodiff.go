// Package autodiff generates a backward GIR from a forward GIR (paper
// §5.2). The backward graph is itself a seastar-shaped GIR on the reverse
// graph: source-wise forward operations become aggregation-stage backward
// operations and vice versa (§6.3.4), so the same fusion and kernel
// machinery applies to both passes.
//
// Values the backward pass needs from the forward pass appear as
// LeafSaved nodes whose Ref points at the forward node; the executor's
// materialization planning decides whether each reference is stored or
// recomputed.
package autodiff

import (
	"fmt"

	"seastar/internal/gir"
)

// Gradients is the result of differentiating a forward DAG.
type Gradients struct {
	// DAG is the backward graph, topologically ordered.
	DAG *gir.DAG
	// Seed is the LeafGrad placeholder for the forward output's
	// gradient, provided by the DL backend at runtime (§5.2).
	Seed *gir.Node
	// LeafGrads maps each differentiable forward leaf (features and
	// parameters) to the backward node computing its gradient.
	LeafGrads map[*gir.Node]*gir.Node
	// LeafOrder lists the forward leaves in the same order as
	// DAG.Outputs, so the correspondence survives optimizer rewrites
	// that replace output nodes in place.
	LeafOrder []*gir.Node
}

type builder struct {
	nodes  []*gir.Node
	nextID int
}

func (b *builder) add(n *gir.Node) *gir.Node {
	n.ID = b.nextID
	b.nextID++
	b.nodes = append(b.nodes, n)
	return n
}

func (b *builder) op(kind gir.OpKind, t gir.GraphType, shape []int, attr gir.Attr, inputs ...*gir.Node) *gir.Node {
	return b.add(&gir.Node{
		Op: kind, Type: t, Inputs: inputs, Attr: attr,
		Shape: append([]int(nil), shape...),
	})
}

// saved creates a LeafSaved reference to a forward node.
func (b *builder) saved(ref *gir.Node) *gir.Node {
	return b.add(&gir.Node{
		Op: gir.OpLeaf, LeafKind: gir.LeafSaved, Ref: ref,
		Type: ref.Type, Shape: append([]int(nil), ref.Shape...),
	})
}

// adjust converts a gradient contribution c to the graph type and width of
// the input it flows into, inserting RowSum for scalar broadcasts,
// EdgeView for vertex→edge broadcasts, and A:S / A:D aggregations for
// edge→vertex reductions — the paper's "ingest edge-wise aggregation
// operators" rule.
func (b *builder) adjust(c *gir.Node, wantType gir.GraphType, wantShape []int) (*gir.Node, error) {
	wantDim := 1
	for _, s := range wantShape {
		wantDim *= s
	}
	if c.Dim() != wantDim {
		if wantDim != 1 {
			return nil, fmt.Errorf("autodiff: cannot reduce grad of width %d to %d", c.Dim(), wantDim)
		}
		c = b.op(gir.OpRowSum, c.Type, []int{1}, gir.Attr{}, c)
	}
	switch {
	case c.Type == wantType:
		return c, nil
	case wantType == gir.TypeE && (c.Type == gir.TypeS || c.Type == gir.TypeD):
		return b.op(gir.OpEdgeView, gir.TypeE, c.Shape, gir.Attr{}, c), nil
	case c.Type == gir.TypeE && wantType == gir.TypeS:
		n := b.op(gir.OpAgg, gir.TypeS, c.Shape, gir.Attr{AggOp: gir.AggSum}, c)
		n.Dir = gir.AggToSrc
		return n, nil
	case c.Type == gir.TypeE && wantType == gir.TypeD:
		n := b.op(gir.OpAgg, gir.TypeD, c.Shape, gir.Attr{AggOp: gir.AggSum}, c)
		n.Dir = gir.AggToDst
		return n, nil
	default:
		return nil, fmt.Errorf("autodiff: no conversion from grad type %s to input type %s", c.Type, wantType)
	}
}

// Backward differentiates fwd (which must have exactly one output) and
// returns the backward DAG. Aggregations other than sum (and hierarchical
// sum-of-sums) have no gradient and produce an error.
func Backward(fwd *gir.DAG) (*Gradients, error) {
	if len(fwd.Outputs) != 1 {
		return nil, fmt.Errorf("autodiff: want exactly 1 output, got %d", len(fwd.Outputs))
	}
	out := fwd.Outputs[0]
	b := &builder{}

	seed := b.add(&gir.Node{
		Op: gir.OpLeaf, LeafKind: gir.LeafGrad, Key: "dy",
		Type: out.Type, Shape: append([]int(nil), out.Shape...),
	})

	// grads[n] is the accumulated gradient of forward node n's output.
	grads := map[*gir.Node]*gir.Node{out: seed}

	accumulate := func(input *gir.Node, contrib *gir.Node) error {
		c, err := b.adjust(contrib, input.Type, input.Shape)
		if err != nil {
			return err
		}
		if prev, ok := grads[input]; ok {
			grads[input] = b.op(gir.OpAdd, c.Type, c.Shape, gir.Attr{}, prev, c)
		} else {
			grads[input] = c
		}
		return nil
	}

	// Reverse topological order guarantees every node's downstream
	// consumers contribute before the node itself is differentiated.
	for i := len(fwd.Nodes) - 1; i >= 0; i-- {
		n := fwd.Nodes[i]
		g, ok := grads[n]
		if !ok || n.Op == gir.OpLeaf {
			continue
		}
		if err := diffNode(b, n, g, accumulate); err != nil {
			return nil, err
		}
	}

	res := &Gradients{Seed: seed, LeafGrads: make(map[*gir.Node]*gir.Node)}
	var outputs []*gir.Node
	for _, n := range fwd.Nodes {
		if n.Op != gir.OpLeaf {
			continue
		}
		if n.LeafKind != gir.LeafSrcFeat && n.LeafKind != gir.LeafDstFeat &&
			n.LeafKind != gir.LeafEdgeFeat && n.LeafKind != gir.LeafParam {
			continue
		}
		if gn, ok := grads[n]; ok {
			res.LeafGrads[n] = gn
			res.LeafOrder = append(res.LeafOrder, n)
			outputs = append(outputs, gn)
		}
	}
	if len(outputs) == 0 {
		return nil, fmt.Errorf("autodiff: no differentiable leaves reached by the output")
	}
	res.DAG = gir.NewDAG(outputs)
	if err := res.DAG.Validate(); err != nil {
		return nil, fmt.Errorf("autodiff: generated invalid backward DAG: %w", err)
	}
	return res, nil
}

// diffNode emits the gradient contributions of n's inputs given n's output
// gradient g.
func diffNode(b *builder, n *gir.Node, g *gir.Node, acc func(in, contrib *gir.Node) error) error {
	in := n.Inputs
	mulType := func(x, y *gir.Node) gir.GraphType {
		// binary type inference for emitted backward ops
		a, bb := x.Type, y.Type
		if a == gir.TypeP {
			return bb
		}
		if bb == gir.TypeP {
			return a
		}
		if a == bb {
			return a
		}
		return gir.TypeE
	}
	switch n.Op {
	case gir.OpAdd:
		if err := acc(in[0], g); err != nil {
			return err
		}
		return acc(in[1], g)

	case gir.OpSub:
		if err := acc(in[0], g); err != nil {
			return err
		}
		neg := b.op(gir.OpNeg, g.Type, g.Shape, gir.Attr{}, g)
		return acc(in[1], neg)

	case gir.OpMul:
		bs := b.saved(in[1])
		da := b.op(gir.OpMul, mulType(g, bs), n.Shape, gir.Attr{}, g, bs)
		if err := acc(in[0], da); err != nil {
			return err
		}
		as := b.saved(in[0])
		db := b.op(gir.OpMul, mulType(g, as), n.Shape, gir.Attr{}, g, as)
		return acc(in[1], db)

	case gir.OpDiv:
		bs := b.saved(in[1])
		da := b.op(gir.OpDiv, mulType(g, bs), n.Shape, gir.Attr{}, g, bs)
		if err := acc(in[0], da); err != nil {
			return err
		}
		ns := b.saved(n)
		gn := b.op(gir.OpMul, mulType(g, ns), n.Shape, gir.Attr{}, g, ns)
		gnb := b.op(gir.OpDiv, mulType(gn, bs), n.Shape, gir.Attr{}, gn, bs)
		db := b.op(gir.OpNeg, gnb.Type, gnb.Shape, gir.Attr{}, gnb)
		return acc(in[1], db)

	case gir.OpNeg:
		return acc(in[0], b.op(gir.OpNeg, g.Type, g.Shape, gir.Attr{}, g))

	case gir.OpExp:
		ns := b.saved(n)
		return acc(in[0], b.op(gir.OpMul, mulType(g, ns), n.Shape, gir.Attr{}, g, ns))

	case gir.OpLog:
		as := b.saved(in[0])
		return acc(in[0], b.op(gir.OpDiv, mulType(g, as), n.Shape, gir.Attr{}, g, as))

	case gir.OpLeakyReLU:
		as := b.saved(in[0])
		d := b.op(gir.OpLeakyReLUGrad, mulType(g, as), n.Shape, gir.Attr{Slope: n.Attr.Slope}, as, g)
		return acc(in[0], d)

	case gir.OpReLU:
		as := b.saved(in[0])
		return acc(in[0], b.op(gir.OpReLUGrad, mulType(g, as), n.Shape, gir.Attr{}, as, g))

	case gir.OpSigmoid:
		ns := b.saved(n)
		return acc(in[0], b.op(gir.OpSigmoidGrad, mulType(g, ns), n.Shape, gir.Attr{}, ns, g))

	case gir.OpTanh:
		ns := b.saved(n)
		return acc(in[0], b.op(gir.OpTanhGrad, mulType(g, ns), n.Shape, gir.Attr{}, ns, g))

	case gir.OpMulConst:
		return acc(in[0], b.op(gir.OpMulConst, g.Type, g.Shape, gir.Attr{C: n.Attr.C}, g))

	case gir.OpAddConst:
		return acc(in[0], g)

	case gir.OpRowSum:
		// d/dx sum_j x_j = 1: broadcast g back across the feature dim.
		// EdgeView/AggSum conversions are handled by acc; widening a [1]
		// gradient to [d] is a free register broadcast in the kernel,
		// expressed as Mul with a saved ones-like? The identity suffices:
		// Mul(x, 1) — emit MulConst(1) with the wider shape.
		wide := b.op(gir.OpMulConst, g.Type, in[0].Shape, gir.Attr{C: 1}, g)
		return acc(in[0], wide)

	case gir.OpEdgeView:
		return acc(in[0], g)

	case gir.OpMatMulP:
		w := in[1]
		ws := b.saved(w)
		dx := b.op(gir.OpMatMulPT, g.Type, []int{w.Shape[0]}, gir.Attr{}, g, ws)
		if err := acc(in[0], dx); err != nil {
			return err
		}
		xs := b.saved(in[0])
		dw := b.op(gir.OpParamGradMM, gir.TypeP, w.Shape, gir.Attr{}, xs, g)
		return acc(w, dw)

	case gir.OpMatMulTyped:
		w := in[1]
		ws := b.saved(w)
		dx := b.op(gir.OpMatMulTypedT, gir.TypeE, []int{w.Shape[1]}, gir.Attr{}, g, ws)
		if err := acc(in[0], dx); err != nil {
			return err
		}
		xs := b.saved(in[0])
		dw := b.op(gir.OpParamGradMMTyped, gir.TypeP, w.Shape, gir.Attr{}, xs, g)
		return acc(w, dw)

	case gir.OpAgg:
		if n.Attr.AggOp != gir.AggSum {
			return fmt.Errorf("autodiff: aggregation %s has no gradient (only sum is differentiable)", n.Attr.AggOp)
		}
		// d(sum over edges)/d(input): the output gradient read back
		// edge-wise; acc's adjust re-aggregates for S/D-typed inputs.
		ev := b.op(gir.OpEdgeView, gir.TypeE, g.Shape, gir.Attr{}, g)
		return acc(in[0], ev)

	case gir.OpAggHier:
		if n.Attr.InnerOp != gir.AggSum || n.Attr.OuterOp != gir.AggSum {
			return fmt.Errorf("autodiff: hierarchical %s/%s aggregation has no gradient (only sum/sum)",
				n.Attr.InnerOp, n.Attr.OuterOp)
		}
		ev := b.op(gir.OpEdgeView, gir.TypeE, g.Shape, gir.Attr{}, g)
		return acc(in[0], ev)

	default:
		return fmt.Errorf("autodiff: no gradient rule for %s", n.Op)
	}
}

package autodiff

import (
	"testing"

	"seastar/internal/gir"
)

func buildGCN(t *testing.T) *gir.DAG {
	t.Helper()
	b := gir.NewBuilder()
	b.VFeature("h", 4)
	b.VFeature("norm", 1)
	W := b.Param("W", 4, 2)
	dag, err := b.Build(func(v *gir.Vertex) *gir.Value {
		return v.Nbr("h").MatMul(W).Mul(v.Nbr("norm")).AggSum()
	})
	if err != nil {
		t.Fatal(err)
	}
	return dag
}

func buildGAT(t *testing.T) *gir.DAG {
	t.Helper()
	b := gir.NewBuilder()
	b.VFeature("eu", 1)
	b.VFeature("ev", 1)
	b.VFeature("h", 8)
	dag, err := b.Build(func(v *gir.Vertex) *gir.Value {
		e := v.Nbr("eu").Add(v.Self("ev")).LeakyReLU(0.2).Exp()
		a := e.Div(e.AggSum())
		return a.Mul(v.Nbr("h")).AggSum()
	})
	if err != nil {
		t.Fatal(err)
	}
	return dag
}

func countOps(d *gir.DAG) map[gir.OpKind]int {
	c := map[gir.OpKind]int{}
	for _, n := range d.Nodes {
		c[n.Op]++
	}
	return c
}

func TestGCNBackwardStructure(t *testing.T) {
	fwd := buildGCN(t)
	g, err := Backward(fwd)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.DAG.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Seed.LeafKind != gir.LeafGrad || g.Seed.Type != gir.TypeD {
		t.Fatalf("seed: %v", g.Seed)
	}
	ops := countOps(g.DAG)
	// dW requires a ParamGradMM; dh requires MatMulPT; flowing the edge
	// gradient back to S-typed h requires an A:S aggregation.
	if ops[gir.OpParamGradMM] != 1 {
		t.Fatalf("ParamGradMM count: %d", ops[gir.OpParamGradMM])
	}
	if ops[gir.OpMatMulPT] != 1 {
		t.Fatalf("MatMulPT count: %d", ops[gir.OpMatMulPT])
	}
	foundAS := false
	for _, n := range g.DAG.Nodes {
		if n.Op == gir.OpAgg && n.Dir == gir.AggToSrc {
			foundAS = true
			if n.Type != gir.TypeS {
				t.Fatalf("A:S node has type %s", n.Type)
			}
		}
	}
	if !foundAS {
		t.Fatal("backward GIR of GCN must contain an A:S aggregation (§6.3.4)")
	}
	// Gradients must exist for h, norm and W leaves.
	kinds := map[string]bool{}
	for leaf := range g.LeafGrads {
		kinds[leaf.LeafKind.String()+":"+leaf.Key] = true
	}
	for _, want := range []string{"src:h", "src:norm", "param:W"} {
		if !kinds[want] {
			t.Fatalf("no gradient for %s (have %v)", want, kinds)
		}
	}
}

func TestGCNLeafGradShapes(t *testing.T) {
	fwd := buildGCN(t)
	g, err := Backward(fwd)
	if err != nil {
		t.Fatal(err)
	}
	for leaf, gn := range g.LeafGrads {
		if leaf.Dim() != gn.Dim() {
			t.Fatalf("grad width %d for leaf width %d (%s)", gn.Dim(), leaf.Dim(), leaf)
		}
		switch leaf.LeafKind {
		case gir.LeafSrcFeat:
			if gn.Type != gir.TypeS {
				t.Fatalf("src leaf grad type %s", gn.Type)
			}
		case gir.LeafDstFeat:
			if gn.Type != gir.TypeD {
				t.Fatalf("dst leaf grad type %s", gn.Type)
			}
		case gir.LeafParam:
			if gn.Type != gir.TypeP {
				t.Fatalf("param grad type %s", gn.Type)
			}
		}
	}
}

func TestGATBackwardStructure(t *testing.T) {
	fwd := buildGAT(t)
	g, err := Backward(fwd)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.DAG.Validate(); err != nil {
		t.Fatal(err)
	}
	ops := countOps(g.DAG)
	if ops[gir.OpLeakyReLUGrad] != 1 {
		t.Fatalf("LeakyReluGrad count %d", ops[gir.OpLeakyReLUGrad])
	}
	// Div has two saved-tensor references, Exp one, Mul two; spot-check
	// that saved leaves reference forward nodes.
	savedCount := 0
	for _, n := range g.DAG.Nodes {
		if n.Op == gir.OpLeaf && n.LeafKind == gir.LeafSaved {
			savedCount++
			if n.Ref == nil {
				t.Fatal("saved leaf without Ref")
			}
		}
	}
	if savedCount < 4 {
		t.Fatalf("saved references: %d", savedCount)
	}
	// eu, ev, h gradients must all exist.
	if len(g.LeafGrads) != 3 {
		t.Fatalf("leaf grads: %d", len(g.LeafGrads))
	}
	// ev is a dst feature: its gradient must be D-typed, which forces an
	// A:D aggregation somewhere in the backward graph.
	foundAD := false
	for _, n := range g.DAG.Nodes {
		if n.Op == gir.OpAgg && n.Dir == gir.AggToDst {
			foundAD = true
		}
	}
	if !foundAD {
		t.Fatal("GAT backward needs an A:D aggregation for the dst-typed ev")
	}
}

func TestBackwardSymmetryAggDirections(t *testing.T) {
	// §6.3.4: forward A:D aggregations imply the backward pass contains
	// A:S aggregations (it aggregates over out-edges on the reverse CSR).
	for name, build := range map[string]func(*testing.T) *gir.DAG{
		"gcn": buildGCN, "gat": buildGAT,
	} {
		g, err := Backward(build(t))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		hasAS := false
		for _, n := range g.DAG.Nodes {
			if n.Op == gir.OpAgg && n.Dir == gir.AggToSrc {
				hasAS = true
			}
		}
		if !hasAS {
			t.Fatalf("%s: no A:S in backward", name)
		}
	}
}

func TestBackwardScalarBroadcastInsertsRowSum(t *testing.T) {
	b := gir.NewBuilder()
	b.VFeature("h", 4)
	b.VFeature("a", 1)
	dag, err := b.Build(func(v *gir.Vertex) *gir.Value {
		return v.Nbr("h").Mul(v.Nbr("a")).AggSum() // a broadcasts [1]→[4]
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Backward(dag)
	if err != nil {
		t.Fatal(err)
	}
	if countOps(g.DAG)[gir.OpRowSum] == 0 {
		t.Fatal("scalar-broadcast gradient requires a RowSum")
	}
}

func TestBackwardHierarchicalSum(t *testing.T) {
	b := gir.NewBuilder()
	b.VFeature("h", 4)
	Ws := b.Param("W", 2, 4, 3)
	dag, err := b.Build(func(v *gir.Vertex) *gir.Value {
		return v.Nbr("h").MatMulTyped(Ws).AggHier(gir.AggSum, gir.AggSum)
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := Backward(dag)
	if err != nil {
		t.Fatal(err)
	}
	ops := countOps(g.DAG)
	if ops[gir.OpMatMulTypedT] != 1 || ops[gir.OpParamGradMMTyped] != 1 {
		t.Fatalf("typed backward ops: %v", ops)
	}
}

func TestBackwardRejectsNonSumAggregations(t *testing.T) {
	for name, kind := range map[string]gir.AggKind{
		"max": gir.AggMax, "min": gir.AggMin, "mean": gir.AggMean,
	} {
		b := gir.NewBuilder()
		b.VFeature("h", 2)
		dag, err := b.Build(func(v *gir.Vertex) *gir.Value {
			switch kind {
			case gir.AggMax:
				return v.Nbr("h").AggMax()
			case gir.AggMin:
				return v.Nbr("h").AggMin()
			default:
				return v.Nbr("h").AggMean()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Backward(dag); err == nil {
			t.Errorf("%s: expected backward error", name)
		}
	}
	// Hierarchical max outer.
	b := gir.NewBuilder()
	b.VFeature("h", 2)
	dag, err := b.Build(func(v *gir.Vertex) *gir.Value {
		return v.Nbr("h").AggHier(gir.AggSum, gir.AggMax)
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Backward(dag); err == nil {
		t.Error("hier sum/max: expected backward error")
	}
}

func TestBackwardMultiOutputRejected(t *testing.T) {
	fwd := buildGCN(t)
	fwd.Outputs = append(fwd.Outputs, fwd.Outputs[0])
	if _, err := Backward(fwd); err == nil {
		t.Fatal("multi-output DAG accepted")
	}
}

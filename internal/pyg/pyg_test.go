package pyg

import (
	"math"
	"math/rand"
	"testing"

	"seastar/internal/device"
	"seastar/internal/graph"
	"seastar/internal/nn"
	"seastar/internal/tensor"
)

func newEngine(g *graph.Graph) (*Engine, *device.Device) {
	dev := device.New(device.V100)
	return New(nn.NewEngine(dev), g), dev
}

func TestGatherScatterRoundTrip(t *testing.T) {
	g := graph.Figure7()
	p, _ := newEngine(g)
	h := p.E.Param(tensor.FromSlice([]float32{1, 2, 3, 4}, 4, 1), "h")
	e := p.GatherSrc(h)
	if e.Value.Rows() != g.M || e.Value.At(0, 0) != 2 { // edge 0 src B
		t.Fatalf("gather: %v", e.Value)
	}
	out := p.ScatterAddDst(e)
	want := tensor.FromSlice([]float32{9, 4, 4, 2}, 4, 1)
	if !tensor.AllClose(out.Value, want, 1e-6) {
		t.Fatalf("scatter: %v", out.Value)
	}
	p.E.Backward(p.E.SumAll(out))
	// dh[u] = out-degree(u), through gather-backward ∘ scatter-backward.
	wantG := tensor.FromSlice([]float32{1, 2, 2, 2}, 4, 1)
	if !tensor.AllClose(h.Grad, wantG, 1e-6) {
		t.Fatalf("grad: %v", h.Grad)
	}
}

func TestGatherDstBackward(t *testing.T) {
	g := graph.Figure7()
	p, _ := newEngine(g)
	h := p.E.Param(tensor.FromSlice([]float32{1, 2, 3, 4}, 4, 1), "h")
	e := p.GatherDst(h)
	if e.Value.At(0, 0) != 1 { // edge 0 dst A
		t.Fatalf("gather dst: %v", e.Value)
	}
	p.E.Backward(p.E.SumAll(e))
	inDeg := g.InDegrees()
	for v := 0; v < 4; v++ {
		if h.Grad.At(v, 0) != float32(inDeg[v]) {
			t.Fatalf("grad[%d] = %v, want %d", v, h.Grad.At(v, 0), inDeg[v])
		}
	}
}

func TestEdgeSoftmaxMatchesDGLSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g := graph.GNM(rng, 9, 30)
	eT := tensor.Randn(rng, 1, 30, 1)
	p, _ := newEngine(g)
	a := p.EdgeSoftmax(p.E.Input(eT, "e"))
	sums := make([]float32, 9)
	for eid := 0; eid < g.M; eid++ {
		sums[g.Dsts[eid]] += a.Value.At(eid, 0)
	}
	for v := 0; v < 9; v++ {
		if g.InDegrees()[v] > 0 && math.Abs(float64(sums[v])-1) > 1e-4 {
			t.Fatalf("softmax sums at %d: %v", v, sums[v])
		}
	}
}

func TestEdgeSoftmaxGradcheck(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := graph.GNM(rng, 6, 14)
	eT := tensor.Randn(rng, 0.5, 14, 1)
	loss := func(grad bool) (float32, *tensor.Tensor) {
		p, _ := newEngine(g)
		e := p.E.Param(eT, "e")
		a := p.EdgeSoftmax(e)
		l := p.E.SumAll(p.E.Mul(a, a))
		if grad {
			p.E.Backward(l)
		}
		return l.Value.At1(0), e.Grad
	}
	_, de := loss(true)
	const eps = 1e-2
	for i := 0; i < eT.Size(); i++ {
		orig := eT.At1(i)
		eT.Set1(i, orig+eps)
		up, _ := loss(false)
		eT.Set1(i, orig-eps)
		down, _ := loss(false)
		eT.Set1(i, orig)
		num := float64((up - down) / (2 * eps))
		a := float64(de.At1(i))
		if math.Abs(a-num)/(math.Max(math.Abs(a), math.Abs(num))+1e-3) > 0.12 {
			t.Fatalf("grad[%d]: analytic %v numeric %v", i, a, num)
		}
	}
}

func TestPyGUsesMoreMemoryThanFusedReduce(t *testing.T) {
	// The §2.3 claim: scatter/gather materializes per-edge tensors, so
	// its peak memory grows with M while a fused reduction's does not.
	rng := rand.New(rand.NewSource(43))
	g := graph.GNM(rng, 100, 3000)
	hT := tensor.Randn(rng, 1, 100, 32)

	p, dev := newEngine(g)
	dev.ResetPeak()
	base := dev.PeakBytes()
	h := p.E.Param(hT, "h")
	out := p.ScatterAddDst(p.GatherSrc(h))
	p.E.Backward(p.E.SumAll(out))
	peak := dev.PeakBytes() - base
	edgeBytes := int64(g.M) * 32 * 4
	if peak < edgeBytes {
		t.Fatalf("PyG peak %d should exceed one edge tensor (%d)", peak, edgeBytes)
	}
}

func naiveRGCN(g *graph.Graph, h, ws, norm *tensor.Tensor) *tensor.Tensor {
	din, dout := ws.Shape()[1], ws.Shape()[2]
	out := tensor.New(g.N, dout)
	for e := 0; e < g.M; e++ {
		src, dst := int(g.Srcs[e]), int(g.Dsts[e])
		base := int(g.EdgeTypes[e]) * din * dout
		nv := norm.At(e, 0)
		hr, or := h.Row(src), out.Row(dst)
		for o := 0; o < dout; o++ {
			var s float32
			for i := 0; i < din; i++ {
				s += hr[i] * ws.Data()[base+i*dout+o]
			}
			or[o] += nv * s
		}
	}
	return out
}

func TestRGCNVariantsMatchNaiveAndEachOther(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	g := graph.GNM(rng, 12, 50)
	graph.RandomEdgeTypes(rng, g, 4)
	hT := tensor.Randn(rng, 0.5, 12, 3)
	wsT := tensor.Randn(rng, 0.5, 4, 3, 2)
	normT := tensor.Uniform(rng, 0.3, 1, 50, 1)
	want := naiveRGCN(g, hT, wsT, normT)

	type result struct{ out, dh, dw *tensor.Tensor }
	run := func(variant string) result {
		p, _ := newEngine(g)
		h := p.E.Param(hT, "h")
		ws := p.E.Param(wsT, "ws")
		norm := p.E.Input(normT, "norm")
		var out *nn.Variable
		var err error
		if variant == "loop" {
			out, err = p.RGCNLoop(h, ws, norm)
		} else {
			out, err = p.RGCNBMM(h, ws, norm)
		}
		if err != nil {
			t.Fatal(err)
		}
		p.E.Backward(p.E.SumAll(p.E.Sigmoid(out)))
		return result{out.Value, h.Grad, ws.Grad}
	}
	l, b := run("loop"), run("bmm")
	if !tensor.AllClose(l.out, want, 1e-4) || !tensor.AllClose(b.out, want, 1e-4) {
		t.Fatal("RGCN forward mismatch vs naive")
	}
	if !tensor.AllClose(l.dh, b.dh, 1e-4) || !tensor.AllClose(l.dw, b.dw, 1e-4) {
		t.Fatal("RGCN gradients diverge between variants")
	}
}

func TestRGCNRequiresEdgeTypes(t *testing.T) {
	g := graph.Figure7()
	p, _ := newEngine(g)
	h := p.E.Param(tensor.New(4, 2), "h")
	ws := p.E.Param(tensor.New(2, 2, 2), "ws")
	norm := p.E.Input(tensor.New(7, 1), "norm")
	if _, err := p.RGCNLoop(h, ws, norm); err == nil {
		t.Fatal("loop without types accepted")
	}
	if _, err := p.RGCNBMM(h, ws, norm); err == nil {
		t.Fatal("bmm without types accepted")
	}
}

// Package pyg reimplements the PyTorch-Geometric baseline of the paper
// (§2.3, §7): the scatter/gather programming model in which every message
// is an explicitly materialized [M, d] edge tensor. This gives simple,
// general kernels (no binary search — PyG carries explicit edge-index
// arrays) but memory consumption proportional to the number of edges,
// which is why PyG runs out of memory on reddit and bgs in the paper.
package pyg

import (
	"fmt"
	"strconv"

	"seastar/internal/device"
	"seastar/internal/graph"
	"seastar/internal/kernels"
	"seastar/internal/nn"
	"seastar/internal/tensor"
)

// hostLoopNs models PyG's per-relation host overhead in its native R-GCN
// path (index_select + masked ops per relation): lighter than DGL's
// subgraph slicing but still a serialized Python loop.
const hostLoopNs = 1.0e6

// Engine couples the nn backend with a graph and its edge-index arrays.
type Engine struct {
	E *nn.Engine
	G *graph.Graph

	byType [][]int32
}

// New creates a PyG-style engine.
func New(e *nn.Engine, g *graph.Graph) *Engine { return &Engine{E: e, G: g} }

// GatherSrc materializes x[src(e)] as an [M, d] edge variable.
func (p *Engine) GatherSrc(x *nn.Variable) *nn.Variable {
	return p.E.Apply(&gatherFn{p: p, fromSrc: true}, "pyg.gather_src", x)
}

// GatherDst materializes x[dst(e)] as an [M, d] edge variable.
func (p *Engine) GatherDst(x *nn.Variable) *nn.Variable {
	return p.E.Apply(&gatherFn{p: p, fromSrc: false}, "pyg.gather_dst", x)
}

type gatherFn struct {
	p       *Engine
	fromSrc bool
}

func (f *gatherFn) Forward(ctx *nn.FuncCtx, in ...*tensor.Tensor) *tensor.Tensor {
	return kernels.Gather(f.p.E.Dev, f.p.G, in[0], f.fromSrc, "pyg.gather")
}

func (f *gatherFn) Backward(ctx *nn.FuncCtx, g *tensor.Tensor) []*tensor.Tensor {
	return []*tensor.Tensor{
		kernels.ScatterSum(f.p.E.Dev, f.p.G, g, !f.fromSrc, "pyg.gather.bwd"),
	}
}

// ScatterAddDst reduces an [M, d] edge variable onto destinations with
// atomic scatter_add.
func (p *Engine) ScatterAddDst(e *nn.Variable) *nn.Variable {
	return p.E.Apply(&scatterFn{p: p, toDst: true}, "pyg.scatter_add", e)
}

type scatterFn struct {
	p     *Engine
	toDst bool
}

func (f *scatterFn) Forward(ctx *nn.FuncCtx, in ...*tensor.Tensor) *tensor.Tensor {
	return kernels.ScatterSum(f.p.E.Dev, f.p.G, in[0], f.toDst, "pyg.scatter")
}

func (f *scatterFn) Backward(ctx *nn.FuncCtx, g *tensor.Tensor) []*tensor.Tensor {
	return []*tensor.Tensor{
		kernels.Gather(f.p.E.Dev, f.p.G, g, !f.toDst, "pyg.scatter.bwd"),
	}
}

// EdgeSoftmax normalizes an [M, d] edge variable per destination using
// PyG's softmax(src, index) utility: scatter-max, gather, exp,
// scatter-add, gather, div — six materializing kernels.
func (p *Engine) EdgeSoftmax(e *nn.Variable) *nn.Variable {
	return p.E.Apply(&softmaxFn{p: p}, "pyg.softmax", e)
}

type softmaxFn struct{ p *Engine }

func (f *softmaxFn) Forward(ctx *nn.FuncCtx, in ...*tensor.Tensor) *tensor.Tensor {
	p := f.p
	dev, g := p.E.Dev, p.G
	e := in[0]
	// scatter_max per destination (modelled with the scatter kernel cost).
	mx := tensor.New(g.N, e.Cols())
	mx.Fill(negInf)
	for eid := 0; eid < g.M; eid++ {
		d := int(g.Dsts[eid])
		er, mr := e.Row(eid), mx.Row(d)
		for j := range mr {
			if er[j] > mr[j] {
				mr[j] = er[j]
			}
		}
	}
	dev.LaunchKernel(scatterLikeLaunch(g, e.Cols(), "pyg.softmax.max"))
	p.E.AllocBytes(int64(mx.Size()) * 4)
	mxe := kernels.Gather(dev, g, mx, false, "pyg.softmax.gathermax")
	shifted := tensor.Sub(e, mxe)
	ex := tensor.Exp(shifted)
	p.E.ChargeDense("pyg.softmax.exp", float64(ex.Size()), int64(ex.Size())*8, int64(ex.Size())*4)
	p.E.AllocBytes(int64(ex.Size()) * 4 * 2) // shifted + exp materialized
	s := kernels.ScatterSum(dev, g, ex, true, "pyg.softmax.sum")
	se := kernels.Gather(dev, g, s, false, "pyg.softmax.gathersum")
	p.E.AllocBytes(int64(se.Size()) * 4)
	a := tensor.Div(ex, se)
	p.E.ChargeDense("pyg.softmax.div", float64(a.Size()), int64(a.Size())*8, int64(a.Size())*4)
	ctx.Save("a", a)
	return a
}

func (f *softmaxFn) Backward(ctx *nn.FuncCtx, g *tensor.Tensor) []*tensor.Tensor {
	p := f.p
	a := ctx.Saved("a")
	prod := tensor.Mul(a, g)
	p.E.ChargeDense("pyg.softmax.bwd.mul", float64(prod.Size()), int64(prod.Size())*8, int64(prod.Size())*4)
	p.E.AllocBytes(int64(prod.Size()) * 4)
	r := kernels.ScatterSum(p.E.Dev, p.G, prod, true, "pyg.softmax.bwd.sum")
	re := kernels.Gather(p.E.Dev, p.G, r, false, "pyg.softmax.bwd.gather")
	de := tensor.Mul(a, tensor.Sub(g, re))
	p.E.ChargeDense("pyg.softmax.bwd.out", float64(de.Size()), int64(de.Size())*8, int64(de.Size())*4)
	return []*tensor.Tensor{de}
}

const negInf = float32(-3.4e38)

func scatterLikeLaunch(g *graph.Graph, width int, name string) device.Launch {
	elems := g.M * width
	return device.Launch{
		Name:               name,
		Blocks:             (elems + 255) / 256,
		ThreadsPerBlock:    256,
		UniformBlockCycles: 24,
		LoadBytes:          int64(elems)*4 + int64(g.M)*4,
		StoreBytes:         int64(elems) * 8,
		AtomicOps:          int64(g.In.MaxDegree()) * int64(width),
	}
}

// RGCNLoop is PyG's native R-GCN: for every relation, index_select the
// relation's edges, gather their source features, project with W_r, and
// scatter — a host-serialized loop with per-relation materialization.
func (p *Engine) RGCNLoop(h, ws, norm *nn.Variable) (*nn.Variable, error) {
	if err := p.initTypes(); err != nil {
		return nil, err
	}
	return p.E.Apply(&rgcnLoopFn{p: p}, "pyg.rgcn_loop", h, ws, norm), nil
}

func (p *Engine) initTypes() error {
	if p.G.EdgeTypes == nil {
		return fmt.Errorf("pyg: graph has no edge types")
	}
	if p.byType == nil {
		p.byType = make([][]int32, p.G.NumEdgeTypes)
		for e, t := range p.G.EdgeTypes {
			p.byType[t] = append(p.byType[t], int32(e))
		}
	}
	return nil
}

type rgcnLoopFn struct{ p *Engine }

func (f *rgcnLoopFn) Forward(ctx *nn.FuncCtx, in ...*tensor.Tensor) *tensor.Tensor {
	p := f.p
	h, ws, norm := in[0], in[1], in[2]
	ctx.SaveRef("h", h)
	ctx.SaveRef("ws", ws)
	ctx.SaveRef("norm", norm)
	din, dout := ws.Shape()[1], ws.Shape()[2]
	out := tensor.New(p.G.N, dout)
	for r, edges := range p.byType {
		if len(edges) == 0 {
			p.E.Dev.HostSync(hostLoopNs)
			continue
		}
		// Gather the relation's source rows (materialized [m_r, in]).
		xr := tensor.New(len(edges), din)
		for i, e := range edges {
			copy(xr.Row(i), h.Row(int(p.G.Srcs[e])))
		}
		p.E.Dev.LaunchKernel(kernels.MinigunLaunch(p.G, "pyg.rgcn.gather",
			din, int64(din)*4+8, int64(din)*4, 1, false, len(edges)))
		ctx.Save("xr"+strconv.Itoa(r), xr)
		wr := wSlice(ws, r)
		mr := tensor.MatMul(xr, wr)
		p.E.ChargeDense("pyg.rgcn.mm", float64(len(edges))*float64(din)*float64(dout),
			int64(xr.Size()+wr.Size())*4, int64(mr.Size())*4)
		p.E.AllocBytes(int64(mr.Size()) * 4)
		for i, e := range edges {
			nv := norm.At(int(e), 0)
			or, mrr := out.Row(int(p.G.Dsts[e])), mr.Row(i)
			for j := range or {
				or[j] += nv * mrr[j]
			}
		}
		p.E.Dev.LaunchKernel(kernels.MinigunLaunch(p.G, "pyg.rgcn.scatter",
			dout, int64(dout)*4+8, int64(dout)*8, 1, true, len(edges)))
		p.E.Dev.HostSync(hostLoopNs)
	}
	return out
}

func (f *rgcnLoopFn) Backward(ctx *nn.FuncCtx, g *tensor.Tensor) []*tensor.Tensor {
	p := f.p
	h, ws, norm := ctx.Saved("h"), ctx.Saved("ws"), ctx.Saved("norm")
	din, dout := ws.Shape()[1], ws.Shape()[2]
	dh := tensor.New(h.Shape()...)
	dws := tensor.New(ws.Shape()...)
	for r, edges := range p.byType {
		if len(edges) == 0 {
			p.E.Dev.HostSync(hostLoopNs)
			continue
		}
		xr := ctx.Saved("xr" + strconv.Itoa(r))
		wr := wSlice(ws, r)
		// de[i] = norm_e · g[dst(e)] for the relation's edges.
		de := tensor.New(len(edges), dout)
		for i, e := range edges {
			nv := norm.At(int(e), 0)
			gr, der := g.Row(int(p.G.Dsts[e])), de.Row(i)
			for j := range der {
				der[j] = nv * gr[j]
			}
		}
		p.E.Dev.LaunchKernel(kernels.MinigunLaunch(p.G, "pyg.rgcn.bwd.gather",
			dout, int64(dout)*4+8, int64(dout)*4, 1, false, len(edges)))
		dwr := tensor.TMatMul(xr, de)
		copy(dws.Data()[r*din*dout:(r+1)*din*dout], dwr.Data())
		dxr := tensor.MatMulT(de, wr)
		p.E.ChargeDense("pyg.rgcn.bwd.mm", 2*float64(len(edges))*float64(din)*float64(dout),
			int64(xr.Size()+de.Size()+wr.Size())*4, int64(dwr.Size()+dxr.Size())*4)
		for i, e := range edges {
			dr, xrr := dh.Row(int(p.G.Srcs[e])), dxr.Row(i)
			for j := range dr {
				dr[j] += xrr[j]
			}
		}
		p.E.Dev.LaunchKernel(kernels.MinigunLaunch(p.G, "pyg.rgcn.bwd.scatter",
			din, int64(din)*4+8, int64(din)*8, 1, true, len(edges)))
		p.E.Dev.HostSync(hostLoopNs)
	}
	return []*tensor.Tensor{dh, dws, nil}
}

func wSlice(ws *tensor.Tensor, r int) *tensor.Tensor {
	din, dout := ws.Shape()[1], ws.Shape()[2]
	return tensor.FromSlice(ws.Data()[r*din*dout:(r+1)*din*dout], din, dout)
}

// RGCNBMM is the manually optimized PyG variant: gather everything once,
// one batched matmul, one scatter — like DGL-bmm but with PyG's extra
// index materializations (it remains memory-hungry).
func (p *Engine) RGCNBMM(h, ws, norm *nn.Variable) (*nn.Variable, error) {
	if err := p.initTypes(); err != nil {
		return nil, err
	}
	return p.E.Apply(&rgcnBMMFn{p: p}, "pyg.rgcn_bmm", h, ws, norm), nil
}

// bmmBucketNs models PyG's per-pass host work in the bmm path: sorting
// edge indices into per-relation buckets before the batched matmul (DGL's
// bmm keeps a pre-bucketed layout). Table 3 shows PyG-bmm consistently
// behind DGL-bmm for this reason.
const bmmBucketNs = 2.0e5

type rgcnBMMFn struct{ p *Engine }

func (f *rgcnBMMFn) Forward(ctx *nn.FuncCtx, in ...*tensor.Tensor) *tensor.Tensor {
	p := f.p
	p.E.Dev.HostSync(bmmBucketNs)
	h, ws, norm := in[0], in[1], in[2]
	ctx.SaveRef("ws", ws)
	ctx.SaveRef("norm", norm)
	he := kernels.Gather(p.E.Dev, p.G, h, true, "pyg.bmm.gather")
	ctx.Save("he", he)
	// PyG additionally materializes the per-edge weight selection index
	// and a sorted copy for bmm batching.
	p.E.AllocBytes(int64(p.G.M) * 8)
	me := kernels.EdgeTypedMatMul(p.E.ChargeDense, p.G, he, ws, false, "pyg.bmm.bmm")
	scaled := tensor.MulColVec(me, norm.Reshape(p.G.M))
	p.E.ChargeDense("pyg.bmm.norm", float64(me.Size()), int64(me.Size())*8, int64(me.Size())*4)
	ctx.Save("me", me)
	ctx.Save("scaled", scaled)
	return kernels.ScatterSum(p.E.Dev, p.G, scaled, true, "pyg.bmm.scatter")
}

func (f *rgcnBMMFn) Backward(ctx *nn.FuncCtx, g *tensor.Tensor) []*tensor.Tensor {
	p := f.p
	p.E.Dev.HostSync(bmmBucketNs)
	ws, norm, he := ctx.Saved("ws"), ctx.Saved("norm"), ctx.Saved("he")
	ge := kernels.Gather(p.E.Dev, p.G, g, false, "pyg.bmm.bwd.gather")
	de := tensor.MulColVec(ge, norm.Reshape(p.G.M))
	p.E.ChargeDense("pyg.bmm.bwd.norm", float64(de.Size()), int64(de.Size())*8, int64(de.Size())*4)
	p.E.AllocBytes(int64(de.Size()) * 4)
	dws := kernels.EdgeTypedOuterAcc(p.E.ChargeDense, p.G, he, de, ws.Shape(), "pyg.bmm.bwd.dw")
	dhe := kernels.EdgeTypedMatMul(p.E.ChargeDense, p.G, de, ws, true, "pyg.bmm.bwd.bmm")
	p.E.AllocBytes(int64(dhe.Size()) * 4)
	dh := kernels.ScatterSum(p.E.Dev, p.G, dhe, false, "pyg.bmm.bwd.scatter")
	return []*tensor.Tensor{dh, dws, nil}
}

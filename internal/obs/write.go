package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteText renders the default registry as an aligned table sorted by
// total time, category first.
func WriteText(w io.Writer) error { return Default.WriteText(w) }

// WriteText renders r as a table; see the package-level WriteText.
func (r *Registry) WriteText(w io.Writer) error {
	ents := r.Snapshot()
	sort.SliceStable(ents, func(i, j int) bool {
		if ents[i].Cat != ents[j].Cat {
			return ents[i].Cat < ents[j].Cat
		}
		return ents[i].TotalNs > ents[j].TotalNs
	})
	for _, e := range ents {
		counters := formatCounters(e.Counters)
		if _, err := fmt.Fprintf(w, "%-10s %-40s count=%-6d total=%-12s%s\n",
			e.Cat, e.Name, e.Count, fmtNs(e.TotalNs), counters); err != nil {
			return err
		}
	}
	return nil
}

func formatCounters(c map[string]int64) string {
	if len(c) == 0 {
		return ""
	}
	keys := make([]string, 0, len(c))
	for k := range c {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%d", k, c[k])
	}
	return b.String()
}

func fmtNs(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.3fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.3fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

// WritePrometheus renders the default registry in Prometheus text
// exposition format, matching the seastar_* style of the serve and
// pipeline metrics: per-entry count, total-seconds, and counter gauges.
func WritePrometheus(w io.Writer) error { return Default.WritePrometheus(w) }

// WritePrometheus renders r; see the package-level WritePrometheus.
func (r *Registry) WritePrometheus(w io.Writer) error {
	ents := r.Snapshot()
	sort.SliceStable(ents, func(i, j int) bool {
		if ents[i].Cat != ents[j].Cat {
			return ents[i].Cat < ents[j].Cat
		}
		return ents[i].Name < ents[j].Name
	})
	if len(ents) > 0 {
		fmt.Fprintf(w, "# HELP seastar_obs_span_total Number of spans recorded per site.\n")
		fmt.Fprintf(w, "# TYPE seastar_obs_span_total counter\n")
		for _, e := range ents {
			fmt.Fprintf(w, "seastar_obs_span_total{cat=%q,name=%q} %d\n", e.Cat, e.Name, e.Count)
		}
		fmt.Fprintf(w, "# HELP seastar_obs_span_seconds_total Total wall time per site.\n")
		fmt.Fprintf(w, "# TYPE seastar_obs_span_seconds_total counter\n")
		for _, e := range ents {
			fmt.Fprintf(w, "seastar_obs_span_seconds_total{cat=%q,name=%q} %.9f\n", e.Cat, e.Name, float64(e.TotalNs)/1e9)
		}
	}
	var hasCounters bool
	for _, e := range ents {
		if len(e.Counters) > 0 {
			hasCounters = true
			break
		}
	}
	if hasCounters {
		fmt.Fprintf(w, "# HELP seastar_obs_counter Attribution counters (edges, rows, tile widths, allocs, ...).\n")
		fmt.Fprintf(w, "# TYPE seastar_obs_counter gauge\n")
		for _, e := range ents {
			keys := make([]string, 0, len(e.Counters))
			for k := range e.Counters {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(w, "seastar_obs_counter{cat=%q,name=%q,counter=%q} %d\n", e.Cat, e.Name, k, e.Counters[k])
			}
		}
	}
	return nil
}

// ChromePID is the process id obs events carry in Chrome traces, chosen
// to keep them in a separate track from internal/device's simulated
// kernel records (which use pid 0/1 style ids).
const ChromePID = 9

// ChromeEvents converts the default registry's trace buffer into Chrome
// trace-event objects (ph "X", µs timestamps), normalized so the first
// event starts at ts 0.
func ChromeEvents() []map[string]any { return Default.ChromeEvents() }

// ChromeEvents converts r's buffer; see the package-level ChromeEvents.
func (r *Registry) ChromeEvents() []map[string]any {
	evs, _ := r.Events()
	if len(evs) == 0 {
		return nil
	}
	base := evs[0].StartNs
	for _, e := range evs {
		if e.StartNs < base {
			base = e.StartNs
		}
	}
	out := make([]map[string]any, 0, len(evs))
	for _, e := range evs {
		out = append(out, map[string]any{
			"name": e.Name,
			"cat":  e.Cat,
			"ph":   "X",
			"ts":   float64(e.StartNs-base) / 1e3,
			"dur":  float64(e.DurNs) / 1e3,
			"pid":  ChromePID,
			"tid":  e.TID,
		})
	}
	return out
}

// WriteChromeTrace writes the default registry's trace buffer as a
// standalone Chrome trace JSON array.
func WriteChromeTrace(w io.Writer) error { return Default.WriteChromeTrace(w) }

// WriteChromeTrace writes r's buffer; see the package-level
// WriteChromeTrace.
func (r *Registry) WriteChromeTrace(w io.Writer) error {
	evs := r.ChromeEvents()
	enc := json.NewEncoder(w)
	if evs == nil {
		evs = []map[string]any{}
	}
	return enc.Encode(evs)
}

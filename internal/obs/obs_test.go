package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// allocSink defeats escape analysis in TestAllocTracking.
var allocSink []byte

func resetState(t *testing.T) {
	t.Helper()
	Disable()
	DisableAllocTracking()
	Reset()
	t.Cleanup(func() {
		Disable()
		DisableAllocTracking()
		Reset()
	})
}

func TestDisabledSpanAllocs(t *testing.T) {
	resetState(t)
	allocs := testing.AllocsPerRun(1000, func() {
		s := Begin("kern", "unit 0")
		Add("kern", "unit 0", "edges", 100)
		Observe("kern", "unit 0", time.Microsecond)
		s.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocated %.1f objects per span; want 0", allocs)
	}
	if got := Snapshot(); len(got) != 0 {
		t.Fatalf("disabled tracing recorded %d entries; want 0", len(got))
	}
}

func TestSpanRecords(t *testing.T) {
	resetState(t)
	Enable()
	s := Begin("exec", "fwd/unit 0")
	time.Sleep(2 * time.Millisecond)
	s.End()
	Add("exec", "fwd/unit 0", "edges", 500)
	Add("exec", "fwd/unit 0", "edges", 250)
	Set("exec", "fwd/unit 0", "tile_width", 8)

	ents := Snapshot()
	if len(ents) != 1 {
		t.Fatalf("got %d entries, want 1", len(ents))
	}
	e := ents[0]
	if e.Cat != "exec" || e.Name != "fwd/unit 0" || e.Count != 1 {
		t.Fatalf("unexpected entry %+v", e)
	}
	if e.TotalNs < int64(time.Millisecond) {
		t.Fatalf("span recorded %dns, want >= 1ms", e.TotalNs)
	}
	if e.Counters["edges"] != 750 || e.Counters["tile_width"] != 8 {
		t.Fatalf("unexpected counters %v", e.Counters)
	}

	evs, dropped := Events()
	if len(evs) != 1 || dropped != 0 {
		t.Fatalf("got %d events (dropped %d), want 1", len(evs), dropped)
	}
	if evs[0].DurNs != e.TotalNs {
		t.Fatalf("event duration %d != entry total %d", evs[0].DurNs, e.TotalNs)
	}
}

func TestObserveAndTotal(t *testing.T) {
	resetState(t)
	Enable()
	Observe("pipeline", "sample", 5*time.Millisecond)
	Observe("pipeline", "gather", 3*time.Millisecond)
	Observe("kern", "unit 1", 7*time.Millisecond)
	if got, want := TotalNs("pipeline"), int64(8*time.Millisecond); got != want {
		t.Fatalf("TotalNs(pipeline) = %d, want %d", got, want)
	}
	if got, want := TotalNs(""), int64(15*time.Millisecond); got != want {
		t.Fatalf("TotalNs(all) = %d, want %d", got, want)
	}
}

func TestObserveEventLane(t *testing.T) {
	resetState(t)
	Enable()
	start := time.Now()
	ObserveEvent("serve", "request", start, 4*time.Millisecond, 42)
	evs, _ := Events()
	if len(evs) != 1 || evs[0].TID != 42 {
		t.Fatalf("unexpected events %+v", evs)
	}
}

func TestEventBufferBound(t *testing.T) {
	resetState(t)
	r := NewRegistry()
	r.maxEvents = 4
	for i := 0; i < 10; i++ {
		r.record("c", "n", int64(i), int64(i+1), 0, 0)
	}
	evs, dropped := r.Events()
	if len(evs) != 4 || dropped != 6 {
		t.Fatalf("got %d events, %d dropped; want 4 events, 6 dropped", len(evs), dropped)
	}
	ents := r.Snapshot()
	if len(ents) != 1 || ents[0].Count != 10 {
		t.Fatalf("attribution must keep counting past the event bound: %+v", ents)
	}
}

func TestAllocTracking(t *testing.T) {
	resetState(t)
	Enable()
	EnableAllocTracking()
	s := Begin("kern", "alloc-unit")
	allocSink = make([]byte, 1<<16)
	s.End()
	ents := Snapshot()
	if len(ents) != 1 {
		t.Fatalf("got %d entries, want 1", len(ents))
	}
	if ents[0].Counters["allocs"] < 1 {
		t.Fatalf("alloc tracking recorded %d allocs, want >= 1", ents[0].Counters["allocs"])
	}
}

func TestResetClears(t *testing.T) {
	resetState(t)
	Enable()
	Observe("a", "b", time.Millisecond)
	Reset()
	if len(Snapshot()) != 0 {
		t.Fatal("Reset left entries behind")
	}
	evs, dropped := Events()
	if len(evs) != 0 || dropped != 0 {
		t.Fatal("Reset left events behind")
	}
}

func TestWriteText(t *testing.T) {
	resetState(t)
	Enable()
	Observe("kern", "unit 0", 2*time.Millisecond)
	Add("kern", "unit 0", "edges", 99)
	var buf bytes.Buffer
	if err := WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "unit 0") || !strings.Contains(out, "edges=99") {
		t.Fatalf("unexpected text output:\n%s", out)
	}
}

func TestWritePrometheus(t *testing.T) {
	resetState(t)
	Enable()
	Observe("serve", "infer", 2*time.Millisecond)
	Add("serve", "infer", "requests", 3)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`seastar_obs_span_total{cat="serve",name="infer"} 1`,
		`seastar_obs_span_seconds_total{cat="serve",name="infer"}`,
		`seastar_obs_counter{cat="serve",name="infer",counter="requests"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteChromeTrace(t *testing.T) {
	resetState(t)
	Enable()
	s := Begin("exec", "fwd/unit 0")
	time.Sleep(time.Millisecond)
	s.End()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(evs) != 1 {
		t.Fatalf("got %d chrome events, want 1", len(evs))
	}
	if evs[0]["ph"] != "X" || evs[0]["name"] != "fwd/unit 0" {
		t.Fatalf("unexpected chrome event %+v", evs[0])
	}
	if evs[0]["ts"].(float64) != 0 {
		t.Fatalf("first event ts should normalize to 0, got %v", evs[0]["ts"])
	}
}

func TestConcurrentRecord(t *testing.T) {
	resetState(t)
	Enable()
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				s := Begin("kern", "shared")
				Add("kern", "shared", "n", 1)
				s.End()
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	ents := Snapshot()
	if len(ents) != 1 || ents[0].Count != 1600 || ents[0].Counters["n"] != 1600 {
		t.Fatalf("lost records under concurrency: %+v", ents)
	}
}

// BenchmarkSpanDisabled measures the cost of a Begin/End pair with
// tracing off — the price every instrumented hot path pays
// unconditionally. The bench_check obs gate multiplies this per-span
// cost by spans-per-kernel-launch and asserts the product stays under 2%
// of the measured kernel time.
func BenchmarkSpanDisabled(b *testing.B) {
	Disable()
	Reset()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := Begin("kern", "unit 0")
		s.End()
	}
}

// BenchmarkSpanEnabled measures the enabled-mode cost: two clock reads
// plus one mutex-guarded map update.
func BenchmarkSpanEnabled(b *testing.B) {
	Enable()
	Reset()
	b.Cleanup(func() {
		Disable()
		Reset()
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := Begin("kern", "unit 0")
		s.End()
	}
}

package obs

import "runtime/metrics"

// allocCount returns the process-lifetime count of heap objects
// allocated, via runtime/metrics (cheap: no stop-the-world, unlike
// runtime.ReadMemStats). Returns 0 if the metric is unsupported. Only
// called while alloc tracking is on, so its own cost never touches the
// tracing-disabled fast path.
func allocCount() uint64 {
	var s [1]metrics.Sample
	s[0].Name = "/gc/heap/allocs:objects"
	metrics.Read(s[:])
	if s[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return s[0].Value.Uint64()
}

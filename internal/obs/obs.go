// Package obs is the observability layer shared by the whole stack: a
// low-overhead span tracer and an attribution registry that the kernel
// engine, the compiler, the serving layer and the training pipeline all
// report into. It exists so EXPLAIN ANALYZE (cmd/seastar-inspect) and the
// serving endpoints can say *which* execution unit, compile phase or
// pipeline stage the time went to, instead of only end-to-end totals.
//
// Tracing is off by default and zero-cost when off: Begin checks one
// atomic flag and returns a zero-value Span without touching the heap
// (verified by TestDisabledSpanAllocs and BenchmarkSpanDisabled), so the
// instrumentation can stay compiled into every hot path. Enabled-mode
// overhead is one clock read per span edge plus a mutex-guarded map
// update at End.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// enabled is the global tracing switch. Hot paths call Enabled (or Begin,
// which checks it) before doing any attribution work.
var enabled atomic.Bool

// allocTracking additionally samples the runtime's allocation counter at
// span edges (see alloccount.go). It is meaningful only while tracing is
// enabled, and costs a runtime/metrics read per span edge — EXPLAIN
// ANALYZE turns it on for a dedicated pass, never during timing runs.
var allocTracking atomic.Bool

// Enable turns tracing on globally.
func Enable() { enabled.Store(true) }

// Disable turns tracing off globally. In-flight spans started while
// enabled still record on End.
func Disable() { enabled.Store(false) }

// Enabled reports whether tracing is on. Instrumentation sites with
// non-trivial argument construction should guard on it.
func Enabled() bool { return enabled.Load() }

// EnableAllocTracking makes subsequent spans record a per-entry "allocs"
// counter (heap objects allocated between Begin and End).
func EnableAllocTracking() { allocTracking.Store(true) }

// DisableAllocTracking stops allocation sampling.
func DisableAllocTracking() { allocTracking.Store(false) }

// Span is one in-flight timed region. It is a value type: starting a span
// never allocates, and a zero Span (returned when tracing is disabled)
// makes End a no-op.
type Span struct {
	reg     *Registry
	cat     string
	name    string
	startNs int64
	alloc0  uint64
}

// Begin starts a span on the default registry. When tracing is disabled
// it returns a zero Span at the cost of one atomic load.
func Begin(cat, name string) Span { return Default.Begin(cat, name) }

// Begin starts a span on r; see the package-level Begin.
func (r *Registry) Begin(cat, name string) Span {
	if !enabled.Load() {
		return Span{}
	}
	s := Span{reg: r, cat: cat, name: name, startNs: time.Now().UnixNano()}
	if allocTracking.Load() {
		s.alloc0 = allocCount()
	}
	return s
}

// End records the span into its registry; a zero Span does nothing.
func (s Span) End() {
	if s.reg == nil {
		return
	}
	endNs := time.Now().UnixNano()
	var allocs int64
	if allocTracking.Load() && s.alloc0 != 0 {
		allocs = int64(allocCount() - s.alloc0)
	}
	s.reg.record(s.cat, s.name, s.startNs, endNs, 0, allocs)
}

// Entry is one attribution bucket: everything recorded under a
// (category, name) pair.
type Entry struct {
	Cat  string
	Name string
	// Count is the number of spans/observations recorded.
	Count int64
	// TotalNs is the summed wall time.
	TotalNs int64
	// Counters holds named attribution dimensions (edges, rows,
	// tile_width, allocs, ...). Add accumulates; Set overwrites.
	Counters map[string]int64
}

// Event is one completed span in the trace buffer, in a shape that maps
// 1:1 onto a Chrome trace-event "X" record.
type Event struct {
	Cat     string
	Name    string
	StartNs int64
	DurNs   int64
	// TID is a caller-chosen lane (serve uses the request/batch id so
	// chrome://tracing draws one row per request); 0 for plain spans.
	TID int64
}

// maxEventsDefault bounds the trace buffer; older events are kept,
// overflow is counted in DroppedEvents. 16384 events cover several
// thousand execution units — more than one EXPLAIN ANALYZE run needs.
const maxEventsDefault = 16384

// Registry accumulates attribution entries and a bounded event trace.
// All methods are safe for concurrent use.
type Registry struct {
	mu        sync.Mutex
	entries   map[string]*Entry
	order     []string // insertion order of entry keys, for stable output
	events    []Event
	maxEvents int
	dropped   int64
}

// Default is the process-wide registry every package-level helper uses.
var Default = NewRegistry()

// NewRegistry returns an empty registry with the default event-buffer
// bound.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*Entry), maxEvents: maxEventsDefault}
}

func (r *Registry) entry(cat, name string) *Entry {
	key := cat + "\x00" + name
	e, ok := r.entries[key]
	if !ok {
		e = &Entry{Cat: cat, Name: name, Counters: make(map[string]int64)}
		r.entries[key] = e
		r.order = append(r.order, key)
	}
	return e
}

func (r *Registry) record(cat, name string, startNs, endNs, tid, allocs int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.entry(cat, name)
	e.Count++
	e.TotalNs += endNs - startNs
	if allocs > 0 {
		e.Counters["allocs"] += allocs
	}
	if len(r.events) < r.maxEvents {
		r.events = append(r.events, Event{Cat: cat, Name: name, StartNs: startNs, DurNs: endNs - startNs, TID: tid})
	} else {
		r.dropped++
	}
}

// Observe records a pre-measured duration (for call sites that already
// time themselves, like the pipeline's stage metrics) without starting a
// span. No-op when tracing is disabled.
func Observe(cat, name string, d time.Duration) { Default.Observe(cat, name, d) }

// Observe records a pre-measured duration on r; see the package-level
// Observe.
func (r *Registry) Observe(cat, name string, d time.Duration) {
	if !enabled.Load() {
		return
	}
	now := time.Now().UnixNano()
	r.record(cat, name, now-int64(d), now, 0, 0)
}

// ObserveEvent records a pre-measured duration on a specific trace lane
// (TID), so per-request span trees group in chrome://tracing. No-op when
// tracing is disabled.
func ObserveEvent(cat, name string, start time.Time, d time.Duration, tid int64) {
	Default.ObserveEvent(cat, name, start, d, tid)
}

// ObserveEvent records a lane-tagged duration on r; see the package-level
// ObserveEvent.
func (r *Registry) ObserveEvent(cat, name string, start time.Time, d time.Duration, tid int64) {
	if !enabled.Load() {
		return
	}
	s := start.UnixNano()
	r.record(cat, name, s, s+int64(d), tid, 0)
}

// Add accumulates v into a named counter of the (cat, name) entry. No-op
// when tracing is disabled.
func Add(cat, name, counter string, v int64) { Default.Add(cat, name, counter, v) }

// Add accumulates a counter on r; see the package-level Add.
func (r *Registry) Add(cat, name, counter string, v int64) {
	if !enabled.Load() {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entry(cat, name).Counters[counter] += v
}

// Set overwrites a named counter of the (cat, name) entry (for
// plan-style facts like the chosen tile width, where accumulation would
// be meaningless). No-op when tracing is disabled.
func Set(cat, name, counter string, v int64) { Default.Set(cat, name, counter, v) }

// Set overwrites a counter on r; see the package-level Set.
func (r *Registry) Set(cat, name, counter string, v int64) {
	if !enabled.Load() {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entry(cat, name).Counters[counter] = v
}

// Reset clears all entries and the event buffer (the enable flags are
// untouched). EXPLAIN ANALYZE resets between warm-up and measurement.
func Reset() { Default.Reset() }

// Reset clears r; see the package-level Reset.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries = make(map[string]*Entry)
	r.order = nil
	r.events = nil
	r.dropped = 0
}

// Snapshot returns deep copies of all entries in first-recorded order.
func Snapshot() []Entry { return Default.Snapshot() }

// Snapshot copies r's entries; see the package-level Snapshot.
func (r *Registry) Snapshot() []Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Entry, 0, len(r.order))
	for _, key := range r.order {
		e := r.entries[key]
		c := Entry{Cat: e.Cat, Name: e.Name, Count: e.Count, TotalNs: e.TotalNs,
			Counters: make(map[string]int64, len(e.Counters))}
		for k, v := range e.Counters {
			c.Counters[k] = v
		}
		out = append(out, c)
	}
	return out
}

// Events returns a copy of the trace buffer plus the overflow count.
func Events() ([]Event, int64) { return Default.Events() }

// Events copies r's trace buffer; see the package-level Events.
func (r *Registry) Events() ([]Event, int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...), r.dropped
}

// TotalNs sums the recorded wall time of every entry in the category
// (all categories when cat is empty).
func TotalNs(cat string) int64 { return Default.TotalNs(cat) }

// TotalNs sums a category on r; see the package-level TotalNs.
func (r *Registry) TotalNs(cat string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var t int64
	for _, e := range r.entries {
		if cat == "" || e.Cat == cat {
			t += e.TotalNs
		}
	}
	return t
}

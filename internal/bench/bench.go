// Package bench regenerates every table and figure of the paper's
// evaluation (§7): per-epoch training time for GCN/GAT/APPNP across nine
// datasets, three systems and three GPUs (Figure 10); peak memory
// (Figure 11); R-GCN time and memory across five systems (Tables 3 and
// 4); the neighbour-access kernel microbenchmark (Figure 12); and the
// dataset table (Table 2). Results are deterministic simulated
// measurements from the device cost model.
package bench

import (
	"fmt"
	"io"
	"strings"

	"seastar/internal/datasets"
	"seastar/internal/device"
	"seastar/internal/models"
	"seastar/internal/train"
)

// Config scopes an experiment run.
type Config struct {
	// Epochs/Warmup per training measurement (simulated time is
	// deterministic, so few epochs suffice).
	Epochs, Warmup int
	// Hidden size for all models (the paper uses DGL defaults; 16 here).
	Hidden int
	// Seed for dataset generation and weight init.
	Seed int64
	// ScaleOverride, if non-nil, overrides datasets.DefaultScale.
	ScaleOverride func(name string) float64
	// GPUs to simulate; defaults to all three.
	GPUs []string
	// Datasets restricts the dataset list (nil = the paper's full set).
	Datasets []string
	// Models restricts the model list (nil = the experiment's full set).
	Models []string
	// CacheDir, when set, caches generated graph structures on disk.
	CacheDir string
}

func (c Config) models(def []string) []string {
	if c.Models != nil {
		return c.Models
	}
	return def
}

// DefaultConfig mirrors the paper's setup.
func DefaultConfig() Config {
	return Config{Epochs: 5, Warmup: 2, Hidden: 16, Seed: 1,
		GPUs: []string{"V100", "2080Ti", "1080Ti"}}
}

func (c Config) scale(name string) float64 {
	if c.ScaleOverride != nil {
		return c.ScaleOverride(name)
	}
	return datasets.DefaultScale(name)
}

// loadDS loads a dataset honouring the cache directory.
func (c Config) loadDS(name string) *datasets.Dataset {
	ds, err := datasets.LoadCached(c.CacheDir, name, c.scale(name), c.Seed)
	if err != nil {
		panic(err)
	}
	return ds
}

func (c Config) trainOptions() train.Options {
	return train.Options{Epochs: c.Epochs, Warmup: c.Warmup, LR: 0.01}
}

// Measurement is one (model, dataset, system, gpu) cell.
type Measurement struct {
	Model   string
	Dataset string
	System  models.System
	GPU     string
	Result  train.Result
}

// EpochMs returns the cell's per-epoch milliseconds (NaN-safe 0 on OOM).
func (m Measurement) EpochMs() float64 { return m.Result.AvgEpochNs / 1e6 }

// PeakMB returns peak memory in MiB.
func (m Measurement) PeakMB() float64 { return float64(m.Result.PeakBytes) / (1 << 20) }

// buildModel instantiates a model by name.
func buildModel(name string, env *models.Env, sys models.System, hidden int) (models.Model, error) {
	switch name {
	case "gcn":
		return models.NewGCN(env, sys, hidden)
	case "gat":
		return models.NewGAT(env, sys, hidden)
	case "appnp":
		return models.NewAPPNP(env, sys, hidden, 10, 0.1)
	case "rgcn":
		return models.NewRGCN(env, sys, hidden)
	default:
		return nil, fmt.Errorf("bench: unknown model %q", name)
	}
}

// measure runs one cell; OOM (at env construction or during training)
// becomes an OOM-marked result, like the paper's "-" entries.
func measure(cfg Config, model, dsName string, ds *datasets.Dataset,
	sys models.System, gpu string) Measurement {

	p, ok := device.ProfileByName(gpu)
	if !ok {
		return Measurement{Model: model, Dataset: dsName, System: sys, GPU: gpu,
			Result: train.Result{Err: fmt.Errorf("unknown gpu %q", gpu), OOM: false}}
	}
	dev := device.NewScaled(p, ds.Scale)
	env, err := models.NewEnvChecked(dev, ds, cfg.Seed)
	if err != nil {
		return Measurement{Model: model, Dataset: dsName, System: sys, GPU: gpu,
			Result: train.Result{Err: err, OOM: true, PeakBytes: dev.PeakBytes()}}
	}
	m, err := buildModel(model, env, sys, cfg.Hidden)
	if err != nil {
		return Measurement{Model: model, Dataset: dsName, System: sys, GPU: gpu,
			Result: train.Result{Err: err}}
	}
	res := train.Run(env, m, cfg.trainOptions())
	return Measurement{Model: model, Dataset: dsName, System: sys, GPU: gpu, Result: res}
}

// Fig10 reproduces Figure 10: per-epoch time of GAT, GCN and APPNP on the
// homogeneous datasets for DGL, PyG and Seastar on each GPU.
func Fig10(cfg Config) []Measurement {
	dss := cfg.Datasets
	if dss == nil {
		dss = datasets.Homogeneous()
	}
	var out []Measurement
	for _, dsName := range dss {
		ds := cfg.loadDS(dsName)
		for _, model := range cfg.models([]string{"gat", "gcn", "appnp"}) {
			for _, gpu := range cfg.GPUs {
				for _, sys := range []models.System{models.SysDGL, models.SysPyG, models.SysSeastar} {
					out = append(out, measure(cfg, model, dsName, ds, sys, gpu))
				}
			}
		}
	}
	return out
}

// Fig11 reproduces Figure 11: peak memory of the three homogeneous models
// on the four large datasets, on an 11 GB device (so the paper's PyG OOM
// on reddit reproduces).
func Fig11(cfg Config) []Measurement {
	dss := cfg.Datasets
	if dss == nil {
		dss = []string{"corafull", "ca_cs", "ca_physics", "reddit"}
	}
	var out []Measurement
	for _, dsName := range dss {
		ds := cfg.loadDS(dsName)
		for _, model := range cfg.models([]string{"gat", "gcn", "appnp"}) {
			for _, sys := range []models.System{models.SysDGL, models.SysPyG, models.SysSeastar} {
				out = append(out, measure(cfg, model, dsName, ds, sys, "2080Ti"))
			}
		}
	}
	return out
}

// RGCNSystems lists the five Table-3/4 systems in paper column order.
func RGCNSystems() []models.System {
	return []models.System{models.SysSeastar, models.SysPyGBMM, models.SysPyG,
		models.SysDGLBMM, models.SysDGL}
}

// Table3 reproduces Table 3: R-GCN per-epoch time on the heterogeneous
// datasets across the five systems and three GPUs.
func Table3(cfg Config) []Measurement {
	dss := cfg.Datasets
	if dss == nil {
		dss = datasets.Heterogeneous()
	}
	var out []Measurement
	for _, dsName := range dss {
		ds := cfg.loadDS(dsName)
		for _, gpu := range cfg.GPUs {
			for _, sys := range RGCNSystems() {
				out = append(out, measure(cfg, "rgcn", dsName, ds, sys, gpu))
			}
		}
	}
	return out
}

// Table4 reproduces Table 4: R-GCN peak memory per system (11 GB device).
func Table4(cfg Config) []Measurement {
	dss := cfg.Datasets
	if dss == nil {
		dss = datasets.Heterogeneous()
	}
	var out []Measurement
	for _, dsName := range dss {
		ds := cfg.loadDS(dsName)
		for _, sys := range RGCNSystems() {
			out = append(out, measure(cfg, "rgcn", dsName, ds, sys, "2080Ti"))
		}
	}
	return out
}

// WriteTable2 prints the dataset table.
func WriteTable2(w io.Writer) {
	fmt.Fprintf(w, "%-12s %12s %12s %9s %10s\n", "Dataset", "#vertices", "#edges", "#feature", "#relation")
	for _, name := range datasets.Names() {
		n, m, f, r, _ := datasets.Stats(name)
		fmt.Fprintf(w, "%-12s %12d %12d %9d %10d\n", name, n, m, f, r)
	}
}

// WriteCSV emits measurements as CSV (one row per cell) for external
// plotting: model,dataset,system,gpu,epoch_ms,peak_mb,status.
func WriteCSV(w io.Writer, ms []Measurement) {
	fmt.Fprintln(w, "model,dataset,system,gpu,epoch_ms,peak_mb,status")
	for _, m := range ms {
		status := "ok"
		if m.Result.OOM {
			status = "oom"
		} else if m.Result.Err != nil {
			status = "error"
		}
		fmt.Fprintf(w, "%s,%s,%s,%s,%.4f,%.2f,%s\n",
			m.Model, m.Dataset, m.System, m.GPU, m.EpochMs(), m.PeakMB(), status)
	}
}

// WriteFig12CSV emits the microbenchmark points as CSV.
func WriteFig12CSV(w io.Writer, pts []Fig12Point) {
	fmt.Fprintln(w, "gpu,feature_size,variant,time_ns,speedup")
	for _, p := range pts {
		fmt.Fprintf(w, "%s,%d,%s,%.1f,%.3f\n", p.GPU, p.FeatureSize, p.Variant, p.TimeNs, p.Speedup)
	}
}

// FormatMeasurements renders measurements grouped by (model, gpu) with
// systems as columns — the layout of the paper's figures.
func FormatMeasurements(w io.Writer, ms []Measurement, memory bool) {
	type key struct {
		model, gpu string
	}
	groups := map[key][]Measurement{}
	var order []key
	for _, m := range ms {
		k := key{m.Model, m.GPU}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], m)
	}
	for _, k := range order {
		unit := "per-epoch ms"
		if memory {
			unit = "peak MB"
		}
		fmt.Fprintf(w, "\n== %s on %s (%s) ==\n", strings.ToUpper(k.model), k.gpu, unit)
		// Collect systems and datasets preserving order.
		var systems []models.System
		var dss []string
		seenSys := map[models.System]bool{}
		seenDS := map[string]bool{}
		for _, m := range groups[k] {
			if !seenSys[m.System] {
				seenSys[m.System] = true
				systems = append(systems, m.System)
			}
			if !seenDS[m.Dataset] {
				seenDS[m.Dataset] = true
				dss = append(dss, m.Dataset)
			}
		}
		fmt.Fprintf(w, "%-12s", "dataset")
		for _, s := range systems {
			fmt.Fprintf(w, " %12s", s)
		}
		fmt.Fprintln(w)
		cell := map[string]map[models.System]Measurement{}
		for _, m := range groups[k] {
			if cell[m.Dataset] == nil {
				cell[m.Dataset] = map[models.System]Measurement{}
			}
			cell[m.Dataset][m.System] = m
		}
		for _, d := range dss {
			fmt.Fprintf(w, "%-12s", d)
			for _, s := range systems {
				m := cell[d][s]
				switch {
				case m.Result.OOM:
					fmt.Fprintf(w, " %12s", "OOM")
				case m.Result.Err != nil:
					fmt.Fprintf(w, " %12s", "ERR")
				case memory:
					fmt.Fprintf(w, " %12.1f", m.PeakMB())
				default:
					fmt.Fprintf(w, " %12.2f", m.EpochMs())
				}
			}
			fmt.Fprintln(w)
		}
	}
}

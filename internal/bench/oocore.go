package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"

	"seastar/internal/datasets"
	"seastar/internal/graph"
	"seastar/internal/store"
	"seastar/internal/tensor"
	"seastar/internal/train"
)

// OOCoreBenchConfig scopes the out-of-core storage benchmark: the same
// SAGE mini-batch training run twice at equal size — once over
// in-memory arrays, once over the mmap-backed store written by the
// convert path — plus a host-independent model of the cold-cache regime
// under a memory cap smaller than the graph.
type OOCoreBenchConfig struct {
	// Vertices, AvgDegree, Alpha size the Zipf benchmark graph.
	Vertices, AvgDegree int
	Alpha               float64
	// FeatDim and Classes shape the stored features and the SAGE layer.
	FeatDim, Classes int
	// BatchSize and FanOut shape each sampled mini-batch.
	BatchSize int
	FanOut    []int
	// Prefetch and SampleWorkers shape the pipeline; PrefetchWorkers
	// and PrefetchBudget size the store's async prefetcher.
	Prefetch, SampleWorkers         int
	PrefetchWorkers, PrefetchBudget int
	// Epochs measured per variant (min epoch wall is reported).
	Epochs int
	Seed   int64
	// Dir holds the store file during the run ("" = a temp dir,
	// removed afterwards).
	Dir string
	// MemCapBytes records an externally applied memory cap (cgroup,
	// systemd scope) during the store-backed run; 0 = uncapped, the
	// model-only fallback. The harness script sets it, the bench only
	// reports it.
	MemCapBytes int64
	// CacheFrac is the modeled resident fraction of the store under
	// the target cap (default 0.25: the graph is ~4x larger than RAM).
	CacheFrac float64
	// ReadMBps is the modeled storage read bandwidth (default 2000,
	// a mid-range NVMe SSD).
	ReadMBps float64
}

// DefaultOOCoreBenchConfig is the committed-evidence setup: a
// 150k-vertex Zipf graph with 64-dim features (a ~70 MB store), trained
// with the default pipeline shape and the prefetcher on.
func DefaultOOCoreBenchConfig() OOCoreBenchConfig {
	return OOCoreBenchConfig{
		Vertices: 150000, AvgDegree: 8, Alpha: 1.0,
		FeatDim: 64, Classes: 16,
		BatchSize: 512, FanOut: []int{10, 5},
		Prefetch: 4, SampleWorkers: 2,
		PrefetchWorkers: 1, PrefetchBudget: 8,
		Epochs: 2, Seed: 1,
		CacheFrac: 0.25, ReadMBps: 2000,
	}
}

// OOCoreModel is the host-independent cold-cache analysis: with only
// CacheFrac of the store resident under the memory cap, each epoch
// re-reads the missing fraction of the pages it touches (a sampled
// epoch sweeps essentially every feature page plus the in-CSR). The
// prefetcher overlaps that I/O with compute batch-by-batch, so the
// modeled epoch is max(compute, io) plus one batch's worth of
// unoverlappable fill — the same replay idea as the pipeline overlap
// model, priced in bytes instead of stage time.
type OOCoreModel struct {
	CacheFrac            float64 `json:"cache_frac"`
	CapBytes             int64   `json:"cap_bytes"`
	TouchedBytesPerEpoch int64   `json:"touched_bytes_per_epoch"`
	MissBytesPerEpoch    int64   `json:"miss_bytes_per_epoch"`
	ReadMBps             float64 `json:"read_mbps"`
	IONsPerEpoch         float64 `json:"io_ns_per_epoch"`
	ComputeNsPerEpoch    float64 `json:"compute_ns_per_epoch"`
	EpochNs              float64 `json:"epoch_ns"`
	Ratio                float64 `json:"ratio"`
	Note                 string  `json:"note"`
}

// OOCoreReport is the full BENCH_oocore.json payload.
type OOCoreReport struct {
	Experiment string           `json:"experiment"`
	Graph      KernelsGraphInfo `json:"graph"`

	FeatDim       int    `json:"feat_dim"`
	Classes       int    `json:"classes"`
	BatchSize     int    `json:"batch_size"`
	FanOut        []int  `json:"fan_out"`
	Prefetch      int    `json:"prefetch"`
	SampleWorkers int    `json:"sample_workers"`
	Epochs        int    `json:"epochs"`
	Seed          int64  `json:"seed"`
	MaxProcs      int    `json:"max_procs"`
	StoreBytes    int64  `json:"store_bytes"`
	Fingerprint   string `json:"fingerprint"`

	// MemCapBytes is the externally applied cap during the store run
	// (0 = uncapped: the measured ratio is then warm-cache and the
	// Model block carries the capped analysis).
	MemCapBytes int64 `json:"mem_cap_bytes"`

	InMemEpochNs  int64   `json:"in_mem_epoch_ns"`
	StoreEpochNs  int64   `json:"store_epoch_ns"`
	MeasuredRatio float64 `json:"measured_ratio"`
	BitwiseEqual  bool    `json:"bitwise_equal"`

	PrefetchRequests int64 `json:"prefetch_requests"`
	PrefetchDropped  int64 `json:"prefetch_dropped"`
	PrefetchPages    int64 `json:"prefetch_pages"`
	MajorFaults      int64 `json:"major_faults"`

	Model OOCoreModel `json:"model"`
	Note  string      `json:"note"`
}

// oocoreSource builds the benchmark's dataset deterministically from
// the config; the committed report is reproducible from (config, seed).
func oocoreSource(cfg OOCoreBenchConfig) *store.Source {
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := graph.ZipfDegree(rng, cfg.Vertices, cfg.AvgDegree, cfg.Alpha)
	labels := make([]int, cfg.Vertices)
	for i := range labels {
		labels[i] = rng.Intn(cfg.Classes)
	}
	return &store.Source{
		G: g, Feat: tensor.Randn(rng, 1, cfg.Vertices, cfg.FeatDim),
		Labels: labels, NumClasses: cfg.Classes,
	}
}

func oocoreOpts(cfg OOCoreBenchConfig) train.MiniBatchOptions {
	return train.MiniBatchOptions{
		Epochs: cfg.Epochs, BatchSize: cfg.BatchSize, FanOut: cfg.FanOut,
		Prefetch: cfg.Prefetch, SampleWorkers: cfg.SampleWorkers,
		LR: 0.01, Seed: cfg.Seed, DegreeSort: true, GPU: "V100",
	}
}

// RunOOCoreBench converts the benchmark graph to a store file, trains
// over it and over the equivalent in-memory arrays, and reports the
// epoch-time ratio, bitwise equality of the loss curves, prefetcher
// counters, and the modeled capped-cache ratio.
func RunOOCoreBench(ctx context.Context, cfg OOCoreBenchConfig) (*OOCoreReport, error) {
	if cfg.CacheFrac <= 0 || cfg.CacheFrac >= 1 {
		cfg.CacheFrac = 0.25
	}
	if cfg.ReadMBps <= 0 {
		cfg.ReadMBps = 2000
	}
	src := oocoreSource(cfg)

	dir := cfg.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "seastar-oocore-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}
	path := filepath.Join(dir, "oocore.sgs")
	if err := store.WriteFile(path, src); err != nil {
		return nil, err
	}
	st, err := store.Open(path)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	if err := st.VerifyFingerprint(); err != nil {
		return nil, err
	}

	mem := &datasets.Dataset{
		Name: "oocore-mem", G: src.G, Feat: src.Feat,
		Labels: src.Labels, NumClasses: src.NumClasses, Scale: 1,
	}
	memRes, err := train.RunMiniBatch(ctx, mem, oocoreOpts(cfg))
	if err != nil {
		return nil, fmt.Errorf("in-memory run: %w", err)
	}

	opts := oocoreOpts(cfg)
	opts.GraphStore = st
	opts.StorePrefetch = true
	opts.StorePrefetchWorkers = cfg.PrefetchWorkers
	opts.StorePrefetchBudget = cfg.PrefetchBudget
	stRes, err := train.RunMiniBatch(ctx, train.DatasetFromStore(st, "oocore-store"), opts)
	if err != nil {
		return nil, fmt.Errorf("store-backed run: %w", err)
	}

	bitwise := len(memRes.Losses) == len(stRes.Losses)
	if bitwise {
		for i := range memRes.Losses {
			if memRes.Losses[i] != stRes.Losses[i] {
				bitwise = false
				break
			}
		}
	}

	inMem := minEpochWall(memRes.Epochs)
	overStore := minEpochWall(stRes.Epochs)

	rep := &OOCoreReport{
		Experiment: "oocore",
		Graph: KernelsGraphInfo{
			Kind: "zipf", Vertices: src.G.N, Edges: src.G.M,
			AvgDegree: cfg.AvgDegree, Alpha: cfg.Alpha,
		},
		FeatDim: cfg.FeatDim, Classes: cfg.Classes,
		BatchSize: cfg.BatchSize, FanOut: cfg.FanOut,
		Prefetch: cfg.Prefetch, SampleWorkers: cfg.SampleWorkers,
		Epochs: cfg.Epochs, Seed: cfg.Seed,
		MaxProcs:    runtime.GOMAXPROCS(0),
		StoreBytes:  st.Bytes(),
		Fingerprint: fmt.Sprintf("%#x", st.Fingerprint()),
		MemCapBytes: cfg.MemCapBytes,

		InMemEpochNs: inMem, StoreEpochNs: overStore,
		MeasuredRatio: safeRatio(float64(overStore), float64(inMem)),
		BitwiseEqual:  bitwise,
		MajorFaults:   stRes.MajorFaults,
		Note: "store-backed vs in-memory SAGE mini-batch training at equal size; " +
			"measured ratio is warm-cache unless mem_cap_bytes was applied externally",
	}
	if s := stRes.StoreStats; s != nil {
		rep.PrefetchRequests = s.Batches
		rep.PrefetchDropped = s.Dropped
		rep.PrefetchPages = s.Pages
	}
	rep.Model = oocoreModel(cfg, st, float64(inMem), len(memRes.Losses)/max(cfg.Epochs, 1))
	return rep, nil
}

// oocoreModel prices the capped-cache regime. Touched bytes per epoch:
// the whole feature section (sampling sweeps nearly every vertex as
// seed or neighbour, and rows are page-granular when scattered) plus
// the in-CSR arrays the sample stage walks. Under the cap only
// CacheFrac of that stays resident, so the rest is re-read each epoch
// at ReadMBps; the prefetcher overlaps it with compute except the
// first-batch fill.
func oocoreModel(cfg OOCoreBenchConfig, st *store.Store, computeNs float64, batches int) OOCoreModel {
	g := st.Graph()
	featBytes := int64(st.N()) * int64(st.FeatDim()) * 4
	csrBytes := int64(len(g.In.Offsets))*8 + int64(len(g.In.Nbrs))*4 + int64(len(g.In.EdgeIDs))*4
	touched := featBytes + csrBytes
	miss := int64(float64(touched) * (1 - cfg.CacheFrac))
	ioNs := float64(miss) / (cfg.ReadMBps * 1e6) * 1e9
	if batches < 1 {
		batches = 1
	}
	overlapped := computeNs
	if ioNs > overlapped {
		overlapped = ioNs
	}
	fill := ioNs / float64(batches)
	epoch := overlapped + fill
	return OOCoreModel{
		CacheFrac:            cfg.CacheFrac,
		CapBytes:             int64(float64(st.Bytes()) * cfg.CacheFrac),
		TouchedBytesPerEpoch: touched,
		MissBytesPerEpoch:    miss,
		ReadMBps:             cfg.ReadMBps,
		IONsPerEpoch:         ioNs,
		ComputeNsPerEpoch:    computeNs,
		EpochNs:              epoch,
		Ratio:                safeRatio(epoch, computeNs),
		Note: fmt.Sprintf("cold-cache replay: %.0f%% of %d touched bytes re-read per epoch at %.0f MB/s, overlapped with compute by the prefetcher except one batch of fill",
			(1-cfg.CacheFrac)*100, touched, cfg.ReadMBps),
	}
}

// OOCoreRederive is bench_check's cheap in-process re-derivation: it
// converts a small graph, reopens it, verifies the fingerprint, and
// asserts one epoch of store-backed training is bitwise-equal to
// in-memory — so the gate re-proves the format and the equivalence
// contract on every CI run instead of trusting the committed JSON.
func OOCoreRederive() error {
	cfg := DefaultOOCoreBenchConfig()
	cfg.Vertices, cfg.FeatDim, cfg.Classes = 2000, 16, 8
	cfg.BatchSize, cfg.Epochs = 256, 1
	rep, err := RunOOCoreBench(context.Background(), cfg)
	if err != nil {
		return err
	}
	if !rep.BitwiseEqual {
		return fmt.Errorf("oocore re-derivation: store-backed loss curve diverged from in-memory")
	}
	return nil
}

// WriteOOCoreJSON writes the report as indented JSON.
func WriteOOCoreJSON(w io.Writer, rep *OOCoreReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteOOCoreText renders the human-readable summary.
func WriteOOCoreText(w io.Writer, rep *OOCoreReport) {
	fmt.Fprintf(w, "\n== out-of-core store: mmap + prefetch vs in-memory ==\n")
	fmt.Fprintf(w, "graph: %d vertices, %d edges, d=%d (store %.1f MB, fingerprint %s)\n",
		rep.Graph.Vertices, rep.Graph.Edges, rep.FeatDim, float64(rep.StoreBytes)/(1<<20), rep.Fingerprint)
	capNote := "uncapped (warm cache)"
	if rep.MemCapBytes > 0 {
		capNote = fmt.Sprintf("capped at %.1f MB", float64(rep.MemCapBytes)/(1<<20))
	}
	fmt.Fprintf(w, "measured: in-memory epoch %.1f ms, store-backed %.1f ms → %.2fx (%s), bitwise equal: %v\n",
		float64(rep.InMemEpochNs)/1e6, float64(rep.StoreEpochNs)/1e6, rep.MeasuredRatio, capNote, rep.BitwiseEqual)
	fmt.Fprintf(w, "prefetch: %d requests (%d dropped), %d page touches, %d major faults\n",
		rep.PrefetchRequests, rep.PrefetchDropped, rep.PrefetchPages, rep.MajorFaults)
	m := rep.Model
	fmt.Fprintf(w, "model (cache %.0f%%, %.0f MB/s): %.1f MB missed/epoch → io %.1f ms vs compute %.1f ms → %.2fx\n",
		m.CacheFrac*100, m.ReadMBps, float64(m.MissBytesPerEpoch)/(1<<20),
		m.IONsPerEpoch/1e6, m.ComputeNsPerEpoch/1e6, m.Ratio)
}

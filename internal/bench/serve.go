package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"seastar/internal/adapt"
	"seastar/internal/device"
	"seastar/internal/graph"
	"seastar/internal/serve"
	"seastar/internal/tensor"
)

// ServeBenchConfig scopes the serving-layer adaptive experiment:
// closed-loop clients saturate an inference engine on a Zipf graph while
// the engine's measured re-planner trials micro-batch sizes against
// observed per-request latency. Full-graph inference shares one forward
// per micro-batch, so the batch size controls how many requests amortize
// each forward — the knob with the largest measured effect in the whole
// system, and the cleanest demonstration that profile-guided re-planning
// pays: the win is multiplicative, far above host noise.
type ServeBenchConfig struct {
	// Vertices, AvgDegree, Alpha size the Zipf benchmark graph.
	Vertices, AvgDegree int
	Alpha               float64
	// FeatDim, Hidden, Classes shape the served GCN.
	FeatDim, Hidden, Classes int
	// MaxBatch is the static micro-batch cap the re-planner challenges.
	// The default (2) is a latency-tuned cap — the right static choice
	// for sparse idle traffic, and exactly the kind of plan that leaves
	// throughput on the table once closed-loop load saturates the queue.
	MaxBatch int
	// Clients is how many closed-loop inferrers saturate the engine.
	Clients int
	// AdaptInterval is the measurement-window length per trial.
	AdaptInterval time.Duration
	// AdaptConfig tunes exploration and hysteresis (zero = adapt package
	// defaults: 3 trials/round, 2 rounds, 10% sustained win).
	AdaptConfig adapt.Config
	// SettleTimeout bounds how long the load loop waits for the tuner to
	// commit a plan.
	SettleTimeout time.Duration
	Seed          int64
}

// DefaultServeBenchConfig is the acceptance setup: a 100k-vertex Zipf
// graph served full-graph under 32 saturating clients.
func DefaultServeBenchConfig() ServeBenchConfig {
	return ServeBenchConfig{
		Vertices: 100000, AvgDegree: 8, Alpha: 1.0,
		FeatDim: 16, Hidden: 16, Classes: 4,
		MaxBatch: 2, Clients: 32,
		// At 100k vertices a full-graph forward costs ~100ms, so
		// per-request latency under the small static cap runs north of a
		// second; the measurement window must dominate it or a window
		// mostly counts completions admitted under the previous candidate.
		AdaptInterval: 3 * time.Second,
		AdaptConfig:   adapt.Config{Explore: 2},
		SettleTimeout: 240 * time.Second,
		Seed:          1,
	}
}

// ServeReport is the full BENCH_serve.json payload.
type ServeReport struct {
	Experiment string           `json:"experiment"`
	Model      string           `json:"model"`
	Graph      KernelsGraphInfo `json:"graph"`

	Clients  int `json:"clients"`
	Requests int `json:"requests"`

	StaticMaxBatch  int `json:"static_max_batch"`
	LearnedMaxBatch int `json:"learned_max_batch"`
	Gen             int `json:"gen"`

	// StaticNsPerReq and LearnedNsPerReq are the best measurement-window
	// mean per-request latencies of the static and committed batch sizes
	// — the same numbers the tuner's hysteresis decision was made from.
	StaticNsPerReq  int64   `json:"static_ns_per_req"`
	LearnedNsPerReq int64   `json:"learned_ns_per_req"`
	MeasuredSpeedup float64 `json:"measured_speedup"`

	// BitwiseEqual records that every answer served during exploration
	// and after the plan swap matched the serial full-graph forward bit
	// for bit — re-planning the batch size must not change any answer.
	BitwiseEqual bool   `json:"bitwise_equal"`
	Why          string `json:"why"`
}

// ServeBench runs the serving adaptive experiment and returns the report.
func ServeBench(cfg ServeBenchConfig) (*ServeReport, error) {
	if cfg.Clients < 1 {
		cfg.Clients = 1
	}
	if cfg.SettleTimeout <= 0 {
		cfg.SettleTimeout = 120 * time.Second
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := graph.ZipfDegree(rng, cfg.Vertices, cfg.AvgDegree, cfg.Alpha)
	feat := tensor.Randn(rng, 1, g.N, cfg.FeatDim)
	snap, err := serve.NewSnapshot(g, feat)
	if err != nil {
		return nil, fmt.Errorf("bench: serve snapshot: %w", err)
	}
	spec := serve.ModelSpec{Arch: "gcn", Hidden: cfg.Hidden, Classes: cfg.Classes, Seed: 7}

	// Serial ground truth, computed outside the engine: every served
	// answer must match it bitwise no matter which batch size was live.
	model, err := serve.BuildModel(spec, feat.Cols(), g.NumEdgeTypes)
	if err != nil {
		return nil, fmt.Errorf("bench: serve model: %w", err)
	}
	env := &serve.ForwardEnv{G: g, Feat: feat, Dev: device.New(device.V100)}
	serve.NormsFor(spec.Arch, snap, g, env)
	truth, err := model.Forward(env)
	if err != nil {
		return nil, fmt.Errorf("bench: serve ground truth: %w", err)
	}

	eng, err := serve.New(serve.Config{
		Spec: spec, MaxBatch: cfg.MaxBatch,
		Adapt: true, AdaptInterval: cfg.AdaptInterval, AdaptConfig: cfg.AdaptConfig,
	}, snap)
	if err != nil {
		return nil, fmt.Errorf("bench: serve engine: %w", err)
	}
	defer eng.Close()

	// Closed-loop saturating load: each client fires the next request as
	// soon as the last one answers, so every measurement window is busy
	// and the queue always holds enough requests for any candidate batch
	// size to fill.
	var (
		stop     atomic.Bool
		requests atomic.Int64
		mismatch atomic.Bool
		wg       sync.WaitGroup
	)
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lrng := rand.New(rand.NewSource(cfg.Seed + int64(c)*7919))
			for !stop.Load() {
				nodes := []int32{int32(lrng.Intn(g.N)), int32(lrng.Intn(g.N))}
				res, err := eng.Infer(context.Background(), nodes)
				if err != nil {
					continue // backpressure/timeout: retry with new nodes
				}
				requests.Add(1)
				for ri, v := range nodes {
					for col := 0; col < truth.Cols(); col++ {
						if math.Float32bits(res.Logits.At(ri, col)) != math.Float32bits(truth.At(int(v), col)) {
							mismatch.Store(true)
						}
					}
				}
			}
		}(c)
	}

	var plan adapt.Plan
	settled := false
	deadline := time.Now().Add(cfg.SettleTimeout)
	for time.Now().Before(deadline) {
		if p, ok := eng.AdaptPlan(); ok {
			plan, settled = p, true
			break
		}
		time.Sleep(cfg.AdaptInterval / 2)
	}
	// Keep serving briefly on the committed plan so the post-swap path is
	// exercised (and bitwise-checked) too.
	if settled {
		time.Sleep(2 * cfg.AdaptInterval)
	}
	stop.Store(true)
	wg.Wait()
	if !settled {
		return nil, fmt.Errorf("bench: serve tuner did not settle within %v", cfg.SettleTimeout)
	}

	learned := cfg.MaxBatch
	if plan.Tuning.MaxBatch > 0 {
		learned = plan.Tuning.MaxBatch
	}
	why := "static plan validated: no challenger met the sustained-win bar"
	if len(plan.Decisions) > 0 && plan.Decisions[0].Why != "" {
		why = plan.Decisions[0].Why
	}
	return &ServeReport{
		Experiment: "serve",
		Model:      fmt.Sprintf("gcn (full-graph inference, hidden %d)", cfg.Hidden),
		Graph: KernelsGraphInfo{
			Kind: "zipf", Vertices: g.N, Edges: g.M,
			AvgDegree: cfg.AvgDegree, Alpha: cfg.Alpha,
		},
		Clients: cfg.Clients, Requests: int(requests.Load()),
		StaticMaxBatch: cfg.MaxBatch, LearnedMaxBatch: learned, Gen: plan.Gen,
		StaticNsPerReq: plan.BaseNs, LearnedNsPerReq: plan.BestNs,
		MeasuredSpeedup: safeRatio(float64(plan.BaseNs), float64(plan.BestNs)),
		BitwiseEqual:    !mismatch.Load(),
		Why:             why,
	}, nil
}

// WriteServeJSON serializes the report for BENCH_serve.json.
func WriteServeJSON(w io.Writer, rep *ServeReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteServeText renders the report for terminals.
func WriteServeText(w io.Writer, rep *ServeReport) {
	fmt.Fprintf(w, "graph: %s n=%d m=%d alpha=%.2f\n",
		rep.Graph.Kind, rep.Graph.Vertices, rep.Graph.Edges, rep.Graph.Alpha)
	fmt.Fprintf(w, "model: %s, %d closed-loop clients, %d requests served\n",
		rep.Model, rep.Clients, rep.Requests)
	fmt.Fprintf(w, "adaptive micro-batch: static %d → learned %d (gen=%d)\n",
		rep.StaticMaxBatch, rep.LearnedMaxBatch, rep.Gen)
	fmt.Fprintf(w, "measured per-request latency: static %.2f ms → learned %.2f ms, %.2fx\n",
		float64(rep.StaticNsPerReq)/1e6, float64(rep.LearnedNsPerReq)/1e6, rep.MeasuredSpeedup)
	fmt.Fprintf(w, "answers bitwise equal to serial forward: %v\n", rep.BitwiseEqual)
	fmt.Fprintf(w, "why: %s\n", rep.Why)
}

package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"testing"

	"seastar/internal/device"
	"seastar/internal/fusion"
	"seastar/internal/gir"
	"seastar/internal/graph"
	"seastar/internal/kernels"
	"seastar/internal/sched"
	"seastar/internal/tensor"
)

// KernelsConfig scopes the CPU kernel-engine microbenchmark: a GAT
// attention kernel over a Zipf-degree graph, comparing the edge-balanced
// work-stealing partition against a naive equal-row split, plus the
// allocation profile of the steady state.
type KernelsConfig struct {
	// Vertices and AvgDegree size the Zipf graph (paper-scale default:
	// 100k vertices, average in-degree 8).
	Vertices, AvgDegree int
	// Alpha is the Zipf skew exponent.
	Alpha float64
	// Hidden is the feature width of the GAT kernel.
	Hidden int
	// Workers is the worker count for the makespan model (the measured
	// numbers use whatever GOMAXPROCS the host has).
	Workers int
	// MaxProcsList is the scheduler worker counts to measure at: every
	// variant is timed once per entry (sched.SetMaxProcs), so the report
	// carries real parallel wall times next to the host-independent
	// makespan model. Empty means one pass at the current sched.MaxProcs.
	MaxProcsList []int
	// Seed drives graph generation and feature init.
	Seed int64
	// ModelOnly skips the measured testing.Benchmark variants and emits
	// only the deterministic makespan model — the fast path the CI
	// regression gate runs.
	ModelOnly bool
}

// DefaultKernelsConfig matches the acceptance setup: a 100k-vertex Zipf
// graph with alpha 1 measured against an 8-worker schedule model.
func DefaultKernelsConfig() KernelsConfig {
	return KernelsConfig{Vertices: 100000, AvgDegree: 8, Alpha: 1.0,
		Hidden: 16, Workers: 8, MaxProcsList: MeasuredProcsList(), Seed: 1}
}

// MeasuredProcsList is the default measured worker ladder: serial, one
// parallel step, and every core the host has — deduplicated, so a
// single-core runner measures {1, 2} (the 2-worker row exposes what
// oversubscription actually costs, which the makespan model does not
// price) and an 8-core box measures {1, 2, 8}.
func MeasuredProcsList() []int {
	seen := map[int]bool{}
	var out []int
	for _, p := range []int{1, 2, runtime.NumCPU()} {
		if p < 1 || seen[p] {
			continue
		}
		seen[p] = true
		out = append(out, p)
	}
	return out
}

// KernelsGraphInfo describes the benchmark graph in the report.
type KernelsGraphInfo struct {
	Kind         string  `json:"kind"`
	Vertices     int     `json:"vertices"`
	Edges        int     `json:"edges"`
	AvgDegree    int     `json:"avg_degree"`
	Alpha        float64 `json:"alpha"`
	DegreeSorted bool    `json:"degree_sorted"`
}

// KernelsMeasurement is one measured benchmark variant.
type KernelsMeasurement struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	MaxProcs    int     `json:"max_procs"`
	Note        string  `json:"note,omitempty"`
	SpeedupVs   float64 `json:"speedup_vs_uniform,omitempty"`
	// MeasuredSpeedup is this variant's wall-time speedup over its own
	// one-worker row — the measured parallel scaling the makespan model's
	// IdealSpeedup predicts assuming p real cores. The CI gate reports
	// the divergence between the two.
	MeasuredSpeedup float64 `json:"measured_speedup,omitempty"`
}

// KernelsMakespanModel is the host-independent load-balance comparison:
// list-scheduled chunk weights at a fixed worker count, in the cost units
// of the partitioner (edges + fixed per-row overhead).
type KernelsMakespanModel struct {
	Workers              int     `json:"workers"`
	SerialCost           float64 `json:"serial_cost"`
	EdgeBalancedChunks   int     `json:"edge_balanced_chunks"`
	EdgeBalancedMakespan float64 `json:"edge_balanced_makespan"`
	UniformChunks        int     `json:"uniform_chunks"`
	UniformMakespan      float64 `json:"uniform_makespan"`
	// Speedup is uniform/edge-balanced makespan: how much faster the
	// edge-balanced schedule finishes at the modeled worker count.
	Speedup float64 `json:"speedup"`
	// IdealSpeedup is serial/edge-balanced — how close the schedule gets
	// to a perfect p-way split.
	IdealSpeedup float64 `json:"ideal_speedup"`
	Note         string  `json:"note"`
}

// KernelsReport is the full BENCH_kernels.json payload.
type KernelsReport struct {
	Experiment string                 `json:"experiment"`
	Kernel     string                 `json:"kernel"`
	Graph      KernelsGraphInfo       `json:"graph"`
	Measured   []KernelsMeasurement   `json:"measured"`
	Model      []KernelsMakespanModel `json:"makespan_model"`
}

// kernelsRun is one compiled seastar unit with its pre-allocated output
// tensors, ready to launch repeatedly.
type kernelsRun struct {
	k    *kernels.Kernel
	outs map[*gir.Node]*tensor.Tensor
}

// kernelsSetup builds the graph, inputs and the compiled GAT attention
// kernels (the edge softmax may split into more than one fused unit).
// Output and intermediate tensors are pre-allocated and reused across
// launches, as a steady-state training loop with pooling would.
func kernelsSetup(cfg KernelsConfig) (*graph.Graph, []kernelsRun,
	*kernels.Bindings, error) {

	rng := rand.New(rand.NewSource(cfg.Seed))
	g := graph.ZipfDegree(rng, cfg.Vertices, cfg.AvgDegree, cfg.Alpha).SortByDegree()

	b := gir.NewBuilder()
	b.VFeature("eu", 1)
	b.VFeature("ev", 1)
	b.VFeature("h", cfg.Hidden)
	dag, err := b.Build(func(v *gir.Vertex) *gir.Value {
		e := v.Nbr("eu").Add(v.Self("ev")).LeakyReLU(0.2).Exp()
		a := e.Div(e.AggSum())
		return a.Mul(v.Nbr("h")).AggSum()
	})
	if err != nil {
		return nil, nil, nil, err
	}
	dag = fusion.Optimize(dag)
	plan, err := fusion.Partition(dag)
	if err != nil {
		return nil, nil, nil, err
	}
	bind := &kernels.Bindings{
		VFeat: map[string]*tensor.Tensor{
			"eu": tensor.Randn(rng, 1, g.N, 1),
			"ev": tensor.Randn(rng, 1, g.N, 1),
			"h":  tensor.Randn(rng, 1, g.N, cfg.Hidden),
		},
		Inter: make(map[*gir.Node]*tensor.Tensor),
	}
	mat := plan.Materialized(nil)
	avail := map[*gir.Node]bool{}
	for _, ns := range mat {
		for _, n := range ns {
			avail[n] = true
		}
	}
	var runs []kernelsRun
	for _, u := range plan.Units {
		if u.Kind != fusion.KindSeastar {
			return nil, nil, nil, fmt.Errorf("bench: unexpected %s unit in GAT attention", u.Kind)
		}
		k, err := kernels.Compile(u, mat[u], avail)
		if err != nil {
			return nil, nil, nil, err
		}
		outs := make(map[*gir.Node]*tensor.Tensor, len(mat[u]))
		for _, m := range mat[u] {
			rows := g.N
			if m.Type == gir.TypeE {
				rows = g.M
			}
			t := tensor.New(rows, m.Dim())
			outs[m] = t
			bind.Inter[m] = t
		}
		runs = append(runs, kernelsRun{k: k, outs: outs})
	}
	return g, runs, bind, nil
}

// measureKernel benchmarks one Run configuration with allocation
// tracking, launching every unit of the plan per iteration.
func measureKernel(g *graph.Graph, runs []kernelsRun,
	bind *kernels.Bindings, kcfg kernels.Config) (testing.BenchmarkResult, error) {

	dev := device.New(device.V100)
	var err error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, r := range runs {
				if e := r.k.Run(dev, g, kcfg, bind, r.outs); e != nil {
					err = e
					b.FailNow()
				}
			}
		}
	})
	return res, err
}

// KernelsBench runs the CPU kernel-engine benchmark and returns the
// report. Measured numbers reflect this host's GOMAXPROCS; the makespan
// model compares the two partition strategies at cfg.Workers regardless
// of host parallelism.
func KernelsBench(cfg KernelsConfig) (*KernelsReport, error) {
	g, runs, bind, err := kernelsSetup(cfg)
	if err != nil {
		return nil, err
	}

	rep := &KernelsReport{
		Experiment: "kernels",
		Kernel:     "gat-attention (softmax + weighted aggregation, fused)",
		Graph: KernelsGraphInfo{
			Kind: "zipf", Vertices: g.N, Edges: g.M,
			AvgDegree: cfg.AvgDegree, Alpha: cfg.Alpha, DegreeSorted: true,
		},
	}

	variants := []struct {
		name string
		kcfg kernels.Config
		note string
	}{
		{"edge_balanced", kernels.Config{Partition: kernels.PartitionEdgeBalanced},
			"degree-aware chunking + work stealing (default)"},
		{"uniform_rows", kernels.Config{Partition: kernels.PartitionUniformRows},
			"equal-row-count split (baseline)"},
	}
	if cfg.ModelOnly {
		variants = nil
	}
	procsList := cfg.MaxProcsList
	if len(procsList) == 0 {
		procsList = []int{sched.MaxProcs}
	}
	for _, procs := range procsList {
		if len(variants) == 0 {
			break
		}
		prev := sched.SetMaxProcs(procs)
		var uniformNs int64
		for _, v := range variants {
			res, err := measureKernel(g, runs, bind, v.kcfg)
			if err != nil {
				sched.SetMaxProcs(prev)
				return nil, fmt.Errorf("bench: %s: %w", v.name, err)
			}
			m := KernelsMeasurement{
				Name:        v.name,
				Iterations:  res.N,
				NsPerOp:     res.NsPerOp(),
				AllocsPerOp: res.AllocsPerOp(),
				BytesPerOp:  res.AllocedBytesPerOp(),
				MaxProcs:    procs,
				Note:        v.note,
			}
			if v.name == "uniform_rows" {
				uniformNs = res.NsPerOp()
			}
			rep.Measured = append(rep.Measured, m)
		}
		sched.SetMaxProcs(prev)
		for i := range rep.Measured {
			if rep.Measured[i].MaxProcs == procs && rep.Measured[i].Name == "edge_balanced" &&
				uniformNs > 0 && rep.Measured[i].NsPerOp > 0 {
				rep.Measured[i].SpeedupVs = float64(uniformNs) / float64(rep.Measured[i].NsPerOp)
			}
		}
	}

	// Measured parallel scaling: each variant at p workers against its
	// own one-worker row.
	base1 := map[string]int64{}
	for _, m := range rep.Measured {
		if m.MaxProcs == 1 {
			base1[m.Name] = m.NsPerOp
		}
	}
	for i := range rep.Measured {
		m := &rep.Measured[i]
		if m.MaxProcs > 1 && base1[m.Name] > 0 && m.NsPerOp > 0 {
			m.MeasuredSpeedup = float64(base1[m.Name]) / float64(m.NsPerOp)
		}
	}

	modelAt := func(workers int, note string) KernelsMakespanModel {
		ebChunks, ebSpan := kernels.ScheduleModel(&g.In, kernels.PartitionEdgeBalanced, workers)
		unChunks, unSpan := kernels.ScheduleModel(&g.In, kernels.PartitionUniformRows, workers)
		_, serial := kernels.ScheduleModel(&g.In, kernels.PartitionEdgeBalanced, 1)
		return KernelsMakespanModel{
			Workers:              workers,
			SerialCost:           serial,
			EdgeBalancedChunks:   ebChunks,
			EdgeBalancedMakespan: ebSpan,
			UniformChunks:        unChunks,
			UniformMakespan:      unSpan,
			Speedup:              unSpan / ebSpan,
			IdealSpeedup:         serial / ebSpan,
			Note:                 note,
		}
	}
	rep.Model = append(rep.Model, modelAt(cfg.Workers,
		"list-scheduled chunk weights (edges + fixed row cost); "+
			"host-independent — measured ns_per_op reflects this machine's cores"))
	// One model row per measured parallel worker count, so the CI gate
	// can report the model-vs-measured scaling divergence like for like.
	for _, procs := range procsList {
		if procs == 1 || procs == cfg.Workers || len(variants) == 0 {
			continue
		}
		rep.Model = append(rep.Model, modelAt(procs,
			"modeled at a measured worker count for divergence reporting"))
	}
	return rep, nil
}

// WriteKernelsJSON serializes the report for BENCH_kernels.json.
func WriteKernelsJSON(w io.Writer, rep *KernelsReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteKernelsText renders the report for terminals.
func WriteKernelsText(w io.Writer, rep *KernelsReport) {
	fmt.Fprintf(w, "graph: %s n=%d m=%d alpha=%.2f (degree-sorted)\n",
		rep.Graph.Kind, rep.Graph.Vertices, rep.Graph.Edges, rep.Graph.Alpha)
	fmt.Fprintf(w, "kernel: %s\n\n", rep.Kernel)
	fmt.Fprintf(w, "%-14s %12s %12s %12s %9s %9s\n", "variant", "ns/op", "allocs/op", "B/op", "procs", "x vs 1w")
	for _, m := range rep.Measured {
		scaling := "-"
		if m.MeasuredSpeedup > 0 {
			scaling = fmt.Sprintf("%.2fx", m.MeasuredSpeedup)
		}
		fmt.Fprintf(w, "%-14s %12d %12d %12d %9d %9s\n",
			m.Name, m.NsPerOp, m.AllocsPerOp, m.BytesPerOp, m.MaxProcs, scaling)
	}
	for _, mo := range rep.Model {
		fmt.Fprintf(w, "\nmakespan model @%d workers: edge-balanced %.0f (%d chunks) vs uniform %.0f (%d chunks) → %.2fx\n",
			mo.Workers, mo.EdgeBalancedMakespan, mo.EdgeBalancedChunks,
			mo.UniformMakespan, mo.UniformChunks, mo.Speedup)
	}
}

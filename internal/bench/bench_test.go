package bench

import (
	"bytes"
	"strings"
	"testing"

	"seastar/internal/datasets"
	"seastar/internal/models"
)

// quickConfig shrinks everything so unit tests run in seconds while
// keeping the shape properties intact.
func quickConfig() Config {
	return Config{
		Epochs: 3, Warmup: 1, Hidden: 8, Seed: 1,
		GPUs: []string{"1080Ti"},
		ScaleOverride: func(name string) float64 {
			switch name {
			case "reddit":
				return 1.0 / 256
			case "bgs":
				return 1.0 / 32
			case "aifb", "mutag":
				return 0.1
			default:
				return 0.05
			}
		},
	}
}

func cellsOf(ms []Measurement) map[string]Measurement {
	out := map[string]Measurement{}
	for _, m := range ms {
		out[m.Model+"/"+m.Dataset+"/"+string(m.System)+"/"+m.GPU] = m
	}
	return out
}

func TestFig10ShapeSeastarWins(t *testing.T) {
	cfg := quickConfig()
	cfg.Datasets = []string{"amz_photo", "pubmed"}
	cfg.Epochs, cfg.Warmup = 2, 0
	cfg.ScaleOverride = func(name string) float64 { return 0.1 }
	ms := Fig10(cfg)
	if len(ms) != 2*3*1*3 { // datasets × models × gpus × systems
		t.Fatalf("cells: %d", len(ms))
	}
	cells := cellsOf(ms)
	for _, model := range []string{"gat", "gcn", "appnp"} {
		for _, ds := range []string{"amz_photo", "pubmed"} {
			sea := cells[model+"/"+ds+"/seastar/1080Ti"]
			dgl := cells[model+"/"+ds+"/dgl/1080Ti"]
			pyg := cells[model+"/"+ds+"/pyg/1080Ti"]
			if sea.Result.Err != nil || dgl.Result.Err != nil || pyg.Result.Err != nil {
				t.Fatalf("%s/%s errored: %v %v %v", model, ds,
					sea.Result.Err, dgl.Result.Err, pyg.Result.Err)
			}
			if sea.EpochMs() >= dgl.EpochMs() {
				t.Errorf("%s/%s: seastar %.2fms not faster than dgl %.2fms",
					model, ds, sea.EpochMs(), dgl.EpochMs())
			}
			if sea.EpochMs() >= pyg.EpochMs() {
				t.Errorf("%s/%s: seastar %.2fms not faster than pyg %.2fms",
					model, ds, sea.EpochMs(), pyg.EpochMs())
			}
		}
	}
}

func TestFig11ShapePyGMemoryDominates(t *testing.T) {
	cfg := quickConfig()
	cfg.Datasets = []string{"ca_cs"}
	cfg.ScaleOverride = func(string) float64 { return 0.1 }
	ms := Fig11(cfg)
	cells := cellsOf(ms)
	for _, model := range []string{"gat", "gcn"} {
		sea := cells[model+"/ca_cs/seastar/2080Ti"]
		pyg := cells[model+"/ca_cs/pyg/2080Ti"]
		if pyg.PeakMB() <= sea.PeakMB() {
			t.Errorf("%s: pyg peak %.1fMB should exceed seastar %.1fMB",
				model, pyg.PeakMB(), sea.PeakMB())
		}
	}
}

func TestFig11RedditPyGOOM(t *testing.T) {
	// Even at reduced instantiation scale, the extrapolated allocator
	// must reject PyG's edge tensors on the 11 GB device while Seastar
	// and DGL fit — Figure 11's headline.
	cfg := quickConfig()
	cfg.Datasets = []string{"reddit"}
	cfg.Models = []string{"gcn", "appnp"}
	cfg.Epochs, cfg.Warmup = 2, 0
	cfg.ScaleOverride = func(string) float64 { return 1.0 / 128 }
	ms := Fig11(cfg)
	cells := cellsOf(ms)
	if !cells["gcn/reddit/pyg/2080Ti"].Result.OOM {
		t.Error("PyG GCN on reddit must OOM on 11GB")
	}
	if cells["gcn/reddit/seastar/2080Ti"].Result.OOM {
		t.Error("Seastar GCN on reddit must fit")
	}
	if cells["gcn/reddit/dgl/2080Ti"].Result.OOM {
		t.Error("DGL GCN on reddit must fit")
	}
	sea := cells["appnp/reddit/seastar/2080Ti"]
	dgl := cells["appnp/reddit/dgl/2080Ti"]
	if sea.Result.OOM || dgl.Result.OOM {
		t.Fatal("APPNP should fit for seastar and dgl")
	}
	if sea.PeakMB() > dgl.PeakMB() {
		t.Errorf("seastar APPNP peak %.0fMB should be ≤ dgl %.0fMB", sea.PeakMB(), dgl.PeakMB())
	}
}

func TestTable3Shape(t *testing.T) {
	cfg := quickConfig()
	cfg.Datasets = []string{"aifb"}
	ms := Table3(cfg)
	if len(ms) != 5 {
		t.Fatalf("cells: %d", len(ms))
	}
	cells := cellsOf(ms)
	sea := cells["rgcn/aifb/seastar/1080Ti"]
	loop := cells["rgcn/aifb/dgl/1080Ti"]
	bmm := cells["rgcn/aifb/dgl-bmm/1080Ti"]
	pygLoop := cells["rgcn/aifb/pyg/1080Ti"]
	pygBMM := cells["rgcn/aifb/pyg-bmm/1080Ti"]
	// Orders of magnitude: Seastar ≪ DGL; bmm variants in between.
	if sea.EpochMs()*20 > loop.EpochMs() {
		t.Errorf("seastar %.2fms vs dgl loop %.2fms: want ≫ 20x", sea.EpochMs(), loop.EpochMs())
	}
	if bmm.EpochMs() > loop.EpochMs()/10 {
		t.Errorf("dgl-bmm %.2fms vs dgl %.2fms: want ≫ 10x", bmm.EpochMs(), loop.EpochMs())
	}
	if pygBMM.EpochMs() > pygLoop.EpochMs() {
		t.Errorf("pyg-bmm %.2f should beat pyg loop %.2f", pygBMM.EpochMs(), pygLoop.EpochMs())
	}
	if sea.EpochMs() > pygBMM.EpochMs() {
		t.Errorf("seastar %.2f should beat pyg-bmm %.2f", sea.EpochMs(), pygBMM.EpochMs())
	}
}

func TestTable4Shape(t *testing.T) {
	cfg := quickConfig()
	cfg.Datasets = []string{"mutag"}
	ms := Table4(cfg)
	cells := cellsOf(ms)
	sea := cells["rgcn/mutag/seastar/2080Ti"]
	pygBMM := cells["rgcn/mutag/pyg-bmm/2080Ti"]
	if sea.Result.Err != nil || pygBMM.Result.Err != nil {
		t.Fatalf("errors: %v %v", sea.Result.Err, pygBMM.Result.Err)
	}
	if sea.PeakMB() > pygBMM.PeakMB() {
		t.Errorf("seastar peak %.1fMB should be ≤ pyg-bmm %.1fMB", sea.PeakMB(), pygBMM.PeakMB())
	}
}

func TestFig12ShapeAndMonotonicity(t *testing.T) {
	cfg := quickConfig()
	pts, err := Fig12(cfg, []int{64, 16, 1})
	if err != nil {
		t.Fatal(err)
	}
	get := func(size int, v Fig12Variant) Fig12Point {
		for _, p := range pts {
			if p.FeatureSize == size && p.Variant == v {
				return p
			}
		}
		t.Fatalf("missing point %d/%s", size, v)
		return Fig12Point{}
	}
	for _, size := range []int{64, 16, 1} {
		dyn := get(size, VariantFASortDynamic)
		if dyn.Speedup <= 1 {
			t.Errorf("size %d: full design speedup %.2f should exceed 1", size, dyn.Speedup)
		}
		atomic := get(size, VariantFASortAtomic)
		if dyn.TimeNs > atomic.TimeNs {
			t.Errorf("size %d: dynamic (%.0f) should not lose to atomic (%.0f)",
				size, dyn.TimeNs, atomic.TimeNs)
		}
	}
	// Feature-adaptive grouping matters most at small widths.
	basic1 := get(1, VariantBasic)
	fa1 := get(1, VariantFAUnsorted)
	if fa1.TimeNs >= basic1.TimeNs {
		t.Errorf("size 1: FA (%.0f) should beat Basic (%.0f)", fa1.TimeNs, basic1.TimeNs)
	}
	// Speedup over the baseline grows as features shrink (the paper's
	// headline trend: up to ~946x at the smallest sizes).
	if get(1, VariantFASortDynamic).Speedup <= get(64, VariantFASortDynamic).Speedup {
		t.Error("speedup should grow as the feature size shrinks")
	}
}

func TestWriteOutputs(t *testing.T) {
	var b bytes.Buffer
	WriteTable2(&b)
	if !strings.Contains(b.String(), "reddit") || !strings.Contains(b.String(), "84120742") {
		t.Fatalf("table2 output:\n%s", b.String())
	}

	cfg := quickConfig()
	cfg.Datasets = []string{"cora"}
	cfg.ScaleOverride = func(string) float64 { return 0.05 }
	ms := Fig10(cfg)
	b.Reset()
	FormatMeasurements(&b, ms, false)
	if !strings.Contains(b.String(), "seastar") || !strings.Contains(b.String(), "per-epoch ms") {
		t.Fatalf("fig10 output:\n%s", b.String())
	}
	b.Reset()
	FormatMeasurements(&b, ms, true)
	if !strings.Contains(b.String(), "peak MB") {
		t.Fatal("memory table missing header")
	}

	pts, err := Fig12(cfg, []int{4, 1})
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	WriteFig12(&b, pts)
	if !strings.Contains(b.String(), "fa-sort-dynamic") {
		t.Fatalf("fig12 output:\n%s", b.String())
	}
}

func TestMeasureUnknownInputs(t *testing.T) {
	cfg := quickConfig()
	ds := datasets.MustLoad("cora", 0.02, 1)
	m := measure(cfg, "nope", "cora", ds, models.SysSeastar, "1080Ti")
	if m.Result.Err == nil {
		t.Fatal("unknown model accepted")
	}
	m = measure(cfg, "gcn", "cora", ds, models.SysSeastar, "H100")
	if m.Result.Err == nil {
		t.Fatal("unknown gpu accepted")
	}
}

func TestCorrectnessExperiment(t *testing.T) {
	cfg := quickConfig()
	rows, err := Correctness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 { // 3 homo models × 2 systems + rgcn × 4
		t.Fatalf("rows: %d", len(rows))
	}
	for _, r := range rows {
		if r.MaxLogitDev > 1e-3 || r.MaxGradDev > 1e-3 {
			t.Errorf("%s/%s deviates: logits %g grads %g",
				r.Model, r.System, r.MaxLogitDev, r.MaxGradDev)
		}
	}
	var b bytes.Buffer
	WriteCorrectness(&b, rows)
	if !strings.Contains(b.String(), "rgcn") {
		t.Fatal("render missing rows")
	}
}

func TestCSVWriters(t *testing.T) {
	ms := []Measurement{
		{Model: "gcn", Dataset: "cora", System: models.SysSeastar, GPU: "V100"},
	}
	var b bytes.Buffer
	WriteCSV(&b, ms)
	if !strings.Contains(b.String(), "model,dataset,system,gpu") ||
		!strings.Contains(b.String(), "gcn,cora,seastar,V100") {
		t.Fatalf("csv:\n%s", b.String())
	}
	b.Reset()
	WriteFig12CSV(&b, []Fig12Point{{GPU: "V100", FeatureSize: 16, Variant: VariantBasic, TimeNs: 10, Speedup: 2}})
	if !strings.Contains(b.String(), "V100,16,basic,10.0,2.000") {
		t.Fatalf("fig12 csv:\n%s", b.String())
	}
}

func TestConfigCacheDirUsed(t *testing.T) {
	cfg := quickConfig()
	cfg.CacheDir = t.TempDir()
	cfg.Datasets = []string{"cora"}
	cfg.Models = []string{"gcn"}
	cfg.Epochs, cfg.Warmup = 1, 0
	if ms := Fig10(cfg); len(ms) != 3 {
		t.Fatalf("cells: %d", len(ms))
	}
	// Second run hits the cache and must agree.
	ms2 := Fig10(cfg)
	if len(ms2) != 3 || ms2[0].Result.Err != nil {
		t.Fatal("cached run failed")
	}
}

func TestTypeRatios(t *testing.T) {
	cfg := quickConfig()
	rs, err := TypeRatios(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("ratios: %v", rs)
	}
	for _, r := range rs {
		// Random type assignment keeps the ratio in the paper's regime
		// (well under the compression threshold of 2).
		if r.Ratio < 0.9 || r.Ratio > 3 {
			t.Errorf("%s ratio %v implausible", r.Dataset, r.Ratio)
		}
	}
	var b bytes.Buffer
	WriteTypeRatios(&b, rs)
	if !strings.Contains(b.String(), "aifb") {
		t.Fatal("render")
	}
}

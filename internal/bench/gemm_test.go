package bench

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestGemmModelShape(t *testing.T) {
	// Small dims fit the model L1 → blocking cannot help (speedup ≈ 1);
	// large dims are memory-bound naive and compute-bound blocked.
	small := GemmModel(1024, 8, 8)
	if small.ModelSpeedup < 0.9 || small.ModelSpeedup > 1.1 {
		t.Fatalf("dim 8 model speedup %.2f, want ≈1 (B fits L1)", small.ModelSpeedup)
	}
	big := GemmModel(1024, 256, 256)
	if big.ModelSpeedup < 2 {
		t.Fatalf("dim 256 model speedup %.2f, want ≥2", big.ModelSpeedup)
	}
	if big.AIBlocked <= big.AINaive {
		t.Fatalf("blocked AI %.2f not above naive %.2f", big.AIBlocked, big.AINaive)
	}
	// Determinism — the CI gate replays these exact values.
	if again := GemmModel(1024, 256, 256); again != big {
		t.Fatal("GemmModel is not deterministic")
	}
}

func TestGemmBenchModelOnly(t *testing.T) {
	cfg := DefaultGemmConfig()
	cfg.Vertices = 2000
	cfg.ModelOnly = true
	rep, err := GemmBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Model) != len(cfg.Dims) || len(rep.AggPlan) != len(cfg.Dims) {
		t.Fatalf("got %d model / %d plan entries, want %d",
			len(rep.Model), len(rep.AggPlan), len(cfg.Dims))
	}
	if len(rep.GemmMeasured) != 0 || len(rep.AggMeasured) != 0 {
		t.Fatal("ModelOnly run produced measured entries")
	}
	for i, p := range rep.AggPlan {
		d := cfg.Dims[i]
		wantTileable := d >= 32
		if p.Tileable != wantTileable || (p.Tileable && p.Width != d) {
			t.Fatalf("dim %d: plan %+v", d, p)
		}
		// The gated-message chain carries ~18 live wide rows: at dim 512
		// the untiled set (~36 KB) spills L1 and the planner must split
		// it into proper cache tiles; at 256 (~18 KB) it must not.
		if d >= 512 && (!p.Tileable || p.TileWidth >= d) {
			t.Fatalf("dim %d: expected a proper feature tile, got plan %+v", d, p)
		}
		if d > 32 && d < 512 && p.TileWidth != d {
			t.Fatalf("dim %d: expected single-pass plan (no L1 spill), got %+v", d, p)
		}
	}
	var buf bytes.Buffer
	if err := WriteGemmJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var back GemmReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Experiment != "gemm" || len(back.Model) != len(cfg.Dims) {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
	WriteGemmText(&buf, rep)
}

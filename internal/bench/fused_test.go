package bench

import (
	"bytes"
	"strings"
	"testing"
)

// TestFusedBenchSmall runs the closure-compiler A/B benchmark
// end-to-end on a small graph: every pattern must be matched by the
// specializer, pass the bitwise gate, and produce positive timings for
// both execution paths at every worker count.
func TestFusedBenchSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark harness")
	}
	cfg := FusedConfig{Vertices: 3000, AvgDegree: 6, Alpha: 1.0,
		Hidden: 8, Rels: 3, MaxProcsList: []int{1, 2}, Seed: 1}
	rep, err := FusedBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// GAT partitions into two seastar units (edge softmax + weighted
	// aggregate); GCN and R-GCN are one unit each.
	if want := 4 * len(cfg.MaxProcsList); len(rep.Rows) != want {
		t.Fatalf("got %d rows, want %d", len(rep.Rows), want)
	}
	gatAgg := false
	for _, r := range rep.Rows {
		if !r.BitwiseEqual {
			t.Fatalf("%s: specialized and interpreted outputs differ", r.Pattern)
		}
		if r.InterpNsPerOp <= 0 || r.SpecNsPerOp <= 0 {
			t.Fatalf("%s @%d: non-positive timing", r.Pattern, r.MaxProcs)
		}
		if r.Spec == "" {
			t.Fatalf("%s: missing specialization name", r.Pattern)
		}
		if r.Pattern == "gat" && r.Unit == 1 && strings.Contains(r.Spec, "gather") {
			gatAgg = true
		}
	}
	if !gatAgg {
		t.Fatal("no GAT aggregate (gather) unit row — the bench_check gate would have nothing to key on")
	}
	var buf bytes.Buffer
	if err := WriteFusedJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"bitwise_equal"`)) {
		t.Fatal("JSON report missing bitwise_equal")
	}
	buf.Reset()
	WriteFusedText(&buf, rep)
	if !bytes.Contains(buf.Bytes(), []byte("speedup")) {
		t.Fatal("text report missing speedup column")
	}
}

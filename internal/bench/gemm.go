package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"seastar/internal/fusion"
	"seastar/internal/gir"
	"seastar/internal/graph"
	"seastar/internal/kernels"
	"seastar/internal/tensor"
)

// GemmConfig scopes the cache-blocking microbenchmark: naive-vs-blocked
// single-thread GEMM at [Rows, d] @ [d, d] across the feature dims, and
// untiled-vs-tiled fused aggregation for the same dims over a Zipf graph.
type GemmConfig struct {
	// Rows is the GEMM M dimension (a node batch at paper scale).
	Rows int
	// Dims are the feature dims swept for both GEMM and aggregation.
	Dims []int
	// Vertices/AvgDegree/Alpha size the aggregation Zipf graph.
	Vertices, AvgDegree int
	Alpha               float64
	// Seed drives graph generation and input init.
	Seed int64
	// ModelOnly skips the measured testing.Benchmark variants and emits
	// only the deterministic arithmetic-intensity model and tile plans —
	// the fast path the CI regression gate runs.
	ModelOnly bool
}

// DefaultGemmConfig matches the acceptance setup: 1024-row GEMMs across
// dims {8, 32, 64, 256, 512} and a 20k-vertex Zipf aggregation graph.
func DefaultGemmConfig() GemmConfig {
	return GemmConfig{Rows: 1024, Dims: []int{8, 32, 64, 256, 512},
		Vertices: 20000, AvgDegree: 16, Alpha: 1.0, Seed: 1}
}

// GemmModelEntry is the host-independent arithmetic-intensity model for
// one GEMM shape: flops per DRAM byte for the naive row-sweep versus the
// packed, blocked schedule, and the modeled speedup — the ratio of
// attainable throughput min(AI, MB) at machine balance MB. The model
// captures cache blocking only (not SIMD width), so measured speedups on
// hosts with vector units exceed the modeled ones; the gate checks the
// model, which is deterministic, and the measured numbers ride along.
type GemmModelEntry struct {
	Dim          int     `json:"dim"`
	Flops        int64   `json:"flops"`
	NaiveBytes   int64   `json:"naive_bytes"`
	BlockedBytes int64   `json:"blocked_bytes"`
	AINaive      float64 `json:"ai_naive"`
	AIBlocked    float64 `json:"ai_blocked"`
	ModelSpeedup float64 `json:"model_speedup"`
}

const (
	// modelL1 is the model's L1 capacity: below it, the naive sweep
	// already reuses B and blocking cannot help.
	modelL1 = 32 << 10
	// modelMachineBalance is the model machine's flops-per-DRAM-byte
	// ratio; AI above it means compute-bound.
	modelMachineBalance = 8.0
)

// GemmModel evaluates the arithmetic-intensity model for c[m,n] = a[m,k]
// @ b[k,n]. Naive traffic: A streamed once, C kept resident per row, and
// B re-streamed for every row unless it fits the model L1. Blocked
// traffic: A streamed once, B packed once per K-block (read + write),
// and C revisited once per K-block.
func GemmModel(m, k, n int) GemmModelEntry {
	flops := 2 * int64(m) * int64(k) * int64(n)
	bBytes := 4 * int64(k) * int64(n)
	if bBytes > modelL1 {
		bBytes *= int64(m)
	}
	naive := 4*int64(m)*int64(k) + bBytes + 8*int64(m)*int64(n)
	kBlocks := int64((k + 255) / 256)
	blocked := 4*int64(m)*int64(k) + 2*4*int64(k)*int64(n) + 8*int64(m)*int64(n)*kBlocks
	ain := float64(flops) / float64(naive)
	aib := float64(flops) / float64(blocked)
	attain := func(ai float64) float64 {
		if ai > modelMachineBalance {
			return modelMachineBalance
		}
		return ai
	}
	return GemmModelEntry{
		Dim: n, Flops: flops, NaiveBytes: naive, BlockedBytes: blocked,
		AINaive: ain, AIBlocked: aib,
		ModelSpeedup: attain(aib) / attain(ain),
	}
}

// GemmAggPlan is the deterministic feature-tile plan of the weighted-sum
// aggregation kernel at one dim, as chosen by the compile-time planner.
type GemmAggPlan struct {
	Dim       int  `json:"dim"`
	Tileable  bool `json:"tileable"`
	Width     int  `json:"width"`
	TileWidth int  `json:"tile_width"`
}

// GemmMeasurement is one measured naive-vs-blocked GEMM pair, both
// single-threaded so the ratio isolates the blocking win.
type GemmMeasurement struct {
	Dim           int     `json:"dim"`
	NaiveNs       int64   `json:"naive_ns_per_op"`
	BlockedNs     int64   `json:"blocked_ns_per_op"`
	Speedup       float64 `json:"speedup"`
	BlockedGFLOPS float64 `json:"blocked_gflops"`
}

// GemmAggMeasurement is one measured untiled-vs-tiled aggregation pair.
type GemmAggMeasurement struct {
	Dim       int     `json:"dim"`
	TileWidth int     `json:"tile_width"`
	UntiledNs int64   `json:"untiled_ns_per_op"`
	TiledNs   int64   `json:"tiled_ns_per_op"`
	Speedup   float64 `json:"speedup"`
}

// GemmReport is the full BENCH_gemm.json payload.
type GemmReport struct {
	Experiment   string               `json:"experiment"`
	Microkernel  string               `json:"microkernel"`
	Rows         int                  `json:"rows"`
	Graph        KernelsGraphInfo     `json:"graph"`
	Model        []GemmModelEntry     `json:"ai_model"`
	AggPlan      []GemmAggPlan        `json:"agg_plan"`
	GemmMeasured []GemmMeasurement    `json:"gemm_measured,omitempty"`
	AggMeasured  []GemmAggMeasurement `json:"agg_measured,omitempty"`
}

// gemmAggSetup compiles a deep gated-message aggregation kernel at one
// feature dim: a single AggSum whose edge stage chains eight wide
// binary ops over eight vertex features. A single aggregation keeps the
// whole chain in one fused unit (separate aggs would be partitioned
// into separate units with small working sets), and the chain's leaves
// plus intermediates give the unit ~18 live wide rows per edge — so at
// dim 512 the untiled working set (~36 KB) spills L1 and the planner
// genuinely splits the feature dim into cache tiles, while every
// smaller dim stays single-pass.
func gemmAggSetup(g *graph.Graph, dim int, seed int64) ([]kernelsRun, *kernels.Bindings, *kernels.Kernel, error) {
	b := gir.NewBuilder()
	feats := []string{"h", "u", "g", "r", "s", "q", "p", "z"}
	for _, f := range feats {
		b.VFeature(f, dim)
	}
	b.EFeature("w", 1)
	dag, err := b.Build(func(v *gir.Vertex) *gir.Value {
		m := v.Nbr("h").Mul(v.Edge("w")).
			Add(v.Nbr("u")).Mul(v.Self("g")).
			Add(v.Nbr("r")).Mul(v.Self("s")).
			Add(v.Nbr("q")).Mul(v.Self("p")).
			Add(v.Nbr("z"))
		return m.AggSum()
	})
	if err != nil {
		return nil, nil, nil, err
	}
	dag = fusion.Optimize(dag)
	plan, err := fusion.Partition(dag)
	if err != nil {
		return nil, nil, nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	vfeat := make(map[string]*tensor.Tensor, len(feats))
	for _, f := range feats {
		vfeat[f] = tensor.Randn(rng, 1, g.N, dim)
	}
	bind := &kernels.Bindings{
		VFeat: vfeat,
		EFeat: map[string]*tensor.Tensor{"w": tensor.Randn(rng, 1, g.M, 1)},
		Inter: make(map[*gir.Node]*tensor.Tensor),
	}
	mat := plan.Materialized(nil)
	avail := map[*gir.Node]bool{}
	for _, ns := range mat {
		for _, n := range ns {
			avail[n] = true
		}
	}
	var runs []kernelsRun
	var wide *kernels.Kernel
	for _, u := range plan.Units {
		if u.Kind != fusion.KindSeastar {
			return nil, nil, nil, fmt.Errorf("bench: unexpected %s unit in gated-message program", u.Kind)
		}
		k, err := kernels.Compile(u, mat[u], avail)
		if err != nil {
			return nil, nil, nil, err
		}
		if _, w, _ := k.TilePlan(); wide == nil || w == dim {
			wide = k
		}
		outs := make(map[*gir.Node]*tensor.Tensor, len(mat[u]))
		for _, m := range mat[u] {
			rows := g.N
			if m.Type == gir.TypeE {
				rows = g.M
			}
			t := tensor.New(rows, m.Dim())
			outs[m] = t
			bind.Inter[m] = t
		}
		runs = append(runs, kernelsRun{k: k, outs: outs})
	}
	return runs, bind, wide, nil
}

// GemmBench runs the cache-blocking benchmark and returns the report.
// The model and tile plans are deterministic; measured numbers reflect
// this host (single-threaded for GEMM, host procs for aggregation).
func GemmBench(cfg GemmConfig) (*GemmReport, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := graph.ZipfDegree(rng, cfg.Vertices, cfg.AvgDegree, cfg.Alpha).SortByDegree()

	rep := &GemmReport{
		Experiment:  "gemm",
		Microkernel: tensor.GemmKernelName(),
		Rows:        cfg.Rows,
		Graph: KernelsGraphInfo{
			Kind: "zipf", Vertices: g.N, Edges: g.M,
			AvgDegree: cfg.AvgDegree, Alpha: cfg.Alpha, DegreeSorted: true,
		},
	}

	for _, d := range cfg.Dims {
		rep.Model = append(rep.Model, GemmModel(cfg.Rows, d, d))

		runs, bind, wide, err := gemmAggSetup(g, d, cfg.Seed)
		if err != nil {
			return nil, err
		}
		tileable, width, tile := wide.TilePlan()
		rep.AggPlan = append(rep.AggPlan, GemmAggPlan{
			Dim: d, Tileable: tileable, Width: width, TileWidth: tile,
		})
		if cfg.ModelOnly {
			continue
		}

		x := tensor.Randn(rand.New(rand.NewSource(cfg.Seed)), 1, cfg.Rows, d)
		w := tensor.Randn(rand.New(rand.NewSource(cfg.Seed+1)), 1, d, d)
		naive := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tensor.RefMatMul(x, w)
			}
		})
		blocked := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tensor.BlockedMatMulSerial(x, w)
			}
		})
		gm := GemmMeasurement{
			Dim:       d,
			NaiveNs:   naive.NsPerOp(),
			BlockedNs: blocked.NsPerOp(),
		}
		if gm.BlockedNs > 0 {
			gm.Speedup = float64(gm.NaiveNs) / float64(gm.BlockedNs)
			gm.BlockedGFLOPS = float64(2*cfg.Rows*d*d) / float64(gm.BlockedNs)
		}
		rep.GemmMeasured = append(rep.GemmMeasured, gm)

		// A kernel run takes seconds at the wide dims, so
		// testing.Benchmark would settle for a single iteration; instead
		// alternate the two configs and keep per-config minima, which is
		// far more robust to scheduling noise on shared hosts.
		var untiledNs, tiledNs int64
		for trial := 0; trial < 3; trial++ {
			untiled, err := measureKernel(g, runs, bind, kernels.Config{NoFeatureTile: true})
			if err != nil {
				return nil, fmt.Errorf("bench: agg untiled dim %d: %w", d, err)
			}
			tiled, err := measureKernel(g, runs, bind, kernels.Config{})
			if err != nil {
				return nil, fmt.Errorf("bench: agg tiled dim %d: %w", d, err)
			}
			if n := untiled.NsPerOp(); trial == 0 || n < untiledNs {
				untiledNs = n
			}
			if n := tiled.NsPerOp(); trial == 0 || n < tiledNs {
				tiledNs = n
			}
		}
		am := GemmAggMeasurement{
			Dim:       d,
			TileWidth: tile,
			UntiledNs: untiledNs,
			TiledNs:   tiledNs,
		}
		if am.TiledNs > 0 {
			am.Speedup = float64(am.UntiledNs) / float64(am.TiledNs)
		}
		rep.AggMeasured = append(rep.AggMeasured, am)
	}
	return rep, nil
}

// WriteGemmJSON serializes the report for BENCH_gemm.json.
func WriteGemmJSON(w io.Writer, rep *GemmReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteGemmText renders the report for terminals.
func WriteGemmText(w io.Writer, rep *GemmReport) {
	fmt.Fprintf(w, "microkernel: %s   gemm rows: %d\n", rep.Microkernel, rep.Rows)
	fmt.Fprintf(w, "agg graph: %s n=%d m=%d alpha=%.2f (degree-sorted)\n\n",
		rep.Graph.Kind, rep.Graph.Vertices, rep.Graph.Edges, rep.Graph.Alpha)
	fmt.Fprintf(w, "%-5s %10s %10s %8s | %10s %12s %12s %8s\n",
		"dim", "AI naive", "AI blocked", "model x", "tile", "untiled ns", "tiled ns", "agg x")
	plan := map[int]GemmAggPlan{}
	for _, p := range rep.AggPlan {
		plan[p.Dim] = p
	}
	agg := map[int]GemmAggMeasurement{}
	for _, a := range rep.AggMeasured {
		agg[a.Dim] = a
	}
	for _, mo := range rep.Model {
		p := plan[mo.Dim]
		a := agg[mo.Dim]
		tileStr := fmt.Sprintf("%d/%d", p.TileWidth, p.Width)
		if !p.Tileable {
			tileStr = "full"
		}
		fmt.Fprintf(w, "%-5d %10.2f %10.2f %8.2f | %10s %12d %12d %8.2f\n",
			mo.Dim, mo.AINaive, mo.AIBlocked, mo.ModelSpeedup,
			tileStr, a.UntiledNs, a.TiledNs, a.Speedup)
	}
	if len(rep.GemmMeasured) > 0 {
		fmt.Fprintf(w, "\n%-5s %14s %14s %8s %10s\n", "dim", "naive ns", "blocked ns", "x", "GFLOP/s")
		for _, m := range rep.GemmMeasured {
			fmt.Fprintf(w, "%-5d %14d %14d %8.2f %10.1f\n",
				m.Dim, m.NaiveNs, m.BlockedNs, m.Speedup, m.BlockedGFLOPS)
		}
	}
}

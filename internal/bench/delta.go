package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"seastar/internal/device"
	"seastar/internal/graph"
	"seastar/internal/serve"
	"seastar/internal/tensor"
)

// DeltaBenchConfig scopes the dynamic-graph experiment: a power-law graph
// takes a stream of small deltas (edge churn plus feature updates, each
// touching well under a percent of the vertices) and the incrementally
// patched embeddings race two baselines — a full forward on the child
// graph, and a rebuild-from-scratch (new snapshot, new normalizers, full
// forward). Every incremental answer must equal the rebuild bit for bit.
type DeltaBenchConfig struct {
	// Vertices, AvgDegree, Alpha size the Zipf benchmark graph.
	Vertices, AvgDegree int
	Alpha               float64
	// FeatDim, Hidden, Classes shape the served GCN.
	FeatDim, Hidden, Classes int
	// Deltas is the update-stream length.
	Deltas int
	// EdgeAdds/EdgeRemoves/FeatUpdates are the per-delta mutation counts.
	EdgeAdds, EdgeRemoves, FeatUpdates int
	// FrontierLimit caps the dirty frontier before falling back to a full
	// recompute (fraction of N; the serving default is 0.05).
	FrontierLimit float64
	Seed          int64
}

// DefaultDeltaBenchConfig is the acceptance setup: a 100k-vertex Zipf
// graph under 30 small deltas, each touching ≲20 vertices (~0.02% of N).
// Feature and hidden widths are 64 — the regime real node features live
// in (Cora is 1433-wide) — so the full-forward baseline pays the dense
// per-vertex transform the incremental path patches at only ~20 rows.
func DefaultDeltaBenchConfig() DeltaBenchConfig {
	return DeltaBenchConfig{
		Vertices: 100000, AvgDegree: 8, Alpha: 1.0,
		FeatDim: 64, Hidden: 64, Classes: 4,
		Deltas: 30, EdgeAdds: 4, EdgeRemoves: 2, FeatUpdates: 3,
		FrontierLimit: 0.05,
		Seed:          1,
	}
}

// DeltaReport is the full BENCH_delta.json payload.
type DeltaReport struct {
	Experiment string           `json:"experiment"`
	Model      string           `json:"model"`
	Graph      KernelsGraphInfo `json:"graph"`

	Deltas      int `json:"deltas"`
	Incremental int `json:"incremental"` // deltas patched on the k-hop frontier
	Full        int `json:"full"`        // deltas that fell back to a full forward

	// TouchedFrac and FrontierFrac are per-delta means: the seed set and
	// the 2-hop dirty frontier, as fractions of N.
	TouchedFrac  float64 `json:"touched_frac"`
	FrontierFrac float64 `json:"frontier_frac"`

	// IncrementalNs is the mean embedding carry-over cost per delta (the
	// recompute half of ApplyDelta); FullForwardNs a full forward on the
	// same child; RebuildNs a rebuild-from-scratch (snapshot + normalizers
	// + forward).
	IncrementalNs    int64   `json:"incremental_ns"`
	FullForwardNs    int64   `json:"full_forward_ns"`
	RebuildNs        int64   `json:"rebuild_ns"`
	SpeedupVsFull    float64 `json:"speedup_vs_full"`
	SpeedupVsRebuild float64 `json:"speedup_vs_rebuild"`

	// SharedChunkFrac is the mean fraction of CSR chunks shared (by
	// pointer) with the parent across the stream — the structural-sharing
	// payoff.
	SharedChunkFrac float64 `json:"shared_chunk_frac"`

	// BitwiseEqual records that every delta child's logits matched the
	// rebuild-from-scratch forward bit for bit — the hard gate.
	BitwiseEqual bool `json:"bitwise_equal"`
}

// DeltaBench runs the dynamic-graph experiment and returns the report.
func DeltaBench(cfg DeltaBenchConfig) (*DeltaReport, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := graph.ZipfDegree(rng, cfg.Vertices, cfg.AvgDegree, cfg.Alpha)
	feat := tensor.Randn(rng, 1, g.N, cfg.FeatDim)
	snap, err := serve.NewSnapshot(g, feat)
	if err != nil {
		return nil, fmt.Errorf("bench: delta snapshot: %w", err)
	}
	spec := serve.ModelSpec{Arch: "gcn", Hidden: cfg.Hidden, Classes: cfg.Classes, Seed: 7}
	model, err := serve.BuildModel(spec, cfg.FeatDim, 1)
	if err != nil {
		return nil, fmt.Errorf("bench: delta model: %w", err)
	}
	// Warm the parent's embedding cache: the stream measures steady-state
	// incremental cost, not the first forward.
	if _, err := snap.EnsureEmbeddings(model, &serve.ForwardEnv{Dev: device.New(device.V100)}); err != nil {
		return nil, fmt.Errorf("bench: delta warmup: %w", err)
	}
	opt := &serve.DeltaOptions{Model: model, FrontierLimit: cfg.FrontierLimit, Profile: device.V100}

	rep := &DeltaReport{
		Experiment: "delta",
		Model:      fmt.Sprintf("gcn (embed-cache serving, hidden %d)", cfg.Hidden),
		Graph: KernelsGraphInfo{
			Kind: "zipf", Vertices: g.N, Edges: g.M,
			AvgDegree: cfg.AvgDegree, Alpha: cfg.Alpha,
		},
		Deltas:       cfg.Deltas,
		BitwiseEqual: true,
	}

	var incrNs, fullNs, rebuildNs int64
	var touched, frontier, sharedFrac float64
	for step := 0; step < cfg.Deltas; step++ {
		d := randomBenchDelta(rng, snap, cfg)
		child, st, err := serve.ApplyDelta(snap, d, opt)
		if err != nil {
			return nil, fmt.Errorf("bench: delta %d: %w", step, err)
		}
		switch st.Recompute {
		case "incremental":
			rep.Incremental++
		case "full":
			rep.Full++
		}
		incrNs += st.RecomputeNs
		touched += float64(st.Touched) / float64(st.N)
		frontier += float64(st.Frontier) / float64(st.N)
		if chunks := st.SharedChunks + st.CopiedChunks + st.RemappedChunks; chunks > 0 {
			sharedFrac += float64(st.SharedChunks+st.RemappedChunks) / float64(chunks)
		}

		// Baseline 1: one full forward on the child graph (normalizers
		// already cached on the child — the cost a non-incremental server
		// would pay per update just to refresh its embedding cache).
		cg := child.Graph()
		env := &serve.ForwardEnv{G: cg, Feat: child.Features(), Dev: device.New(device.V100)}
		serve.NormsFor(spec.Arch, child, cg, env)
		t0 := time.Now()
		fwd, err := model.Forward(env)
		if err != nil {
			return nil, fmt.Errorf("bench: delta %d full forward: %w", step, err)
		}
		fullNs += time.Since(t0).Nanoseconds()

		// Baseline 2 and truth: rebuild everything from scratch.
		t0 = time.Now()
		scratch, err := serve.NewSnapshot(cg, child.Features())
		if err != nil {
			return nil, fmt.Errorf("bench: delta %d rebuild: %w", step, err)
		}
		truth, err := scratch.EnsureEmbeddings(model, &serve.ForwardEnv{Dev: device.New(device.V100)})
		if err != nil {
			return nil, fmt.Errorf("bench: delta %d rebuild forward: %w", step, err)
		}
		rebuildNs += time.Since(t0).Nanoseconds()

		got, err := child.EnsureEmbeddings(model, &serve.ForwardEnv{Dev: device.New(device.V100)})
		if err != nil {
			return nil, fmt.Errorf("bench: delta %d child embeddings: %w", step, err)
		}
		if !bitsEqual(got, truth) || !bitsEqual(fwd, truth) {
			rep.BitwiseEqual = false
		}
		snap = child
	}

	n := int64(cfg.Deltas)
	rep.IncrementalNs = incrNs / n
	rep.FullForwardNs = fullNs / n
	rep.RebuildNs = rebuildNs / n
	rep.SpeedupVsFull = safeRatio(float64(rep.FullForwardNs), float64(rep.IncrementalNs))
	rep.SpeedupVsRebuild = safeRatio(float64(rep.RebuildNs), float64(rep.IncrementalNs))
	rep.TouchedFrac = touched / float64(n)
	rep.FrontierFrac = frontier / float64(n)
	rep.SharedChunkFrac = sharedFrac / float64(n)
	return rep, nil
}

// randomBenchDelta draws one small valid delta against the snapshot's
// current flat graph: a few uniform edge adds, removals of live edges,
// and feature-row rewrites.
func randomBenchDelta(rng *rand.Rand, snap *serve.Snapshot, cfg DeltaBenchConfig) *serve.Delta {
	g := snap.Graph()
	d := &serve.Delta{}
	seen := map[graph.Edge]bool{}
	for k := 0; k < cfg.EdgeRemoves && g.M > 0; k++ {
		i := rng.Intn(g.M)
		e := graph.Edge{Src: g.Srcs[i], Dst: g.Dsts[i]}
		if seen[e] {
			continue
		}
		seen[e] = true
		d.RemoveEdges = append(d.RemoveEdges, e)
	}
	for k := 0; k < cfg.EdgeAdds; k++ {
		d.AddEdges = append(d.AddEdges, graph.Edge{
			Src: int32(rng.Intn(g.N)), Dst: int32(rng.Intn(g.N)),
		})
	}
	for k := 0; k < cfg.FeatUpdates; k++ {
		row := make([]float32, cfg.FeatDim)
		for j := range row {
			row[j] = rng.Float32()*2 - 1
		}
		d.Features = append(d.Features, serve.FeatureUpdate{
			Node: int32(rng.Intn(g.N)), Row: row,
		})
	}
	return d
}

func bitsEqual(a, b *tensor.Tensor) bool {
	if a.Size() != b.Size() {
		return false
	}
	for i := 0; i < a.Size(); i++ {
		if math.Float32bits(a.At1(i)) != math.Float32bits(b.At1(i)) {
			return false
		}
	}
	return true
}

// WriteDeltaJSON serializes the report for BENCH_delta.json.
func WriteDeltaJSON(w io.Writer, rep *DeltaReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteDeltaText renders the report for terminals.
func WriteDeltaText(w io.Writer, rep *DeltaReport) {
	fmt.Fprintf(w, "graph: %s n=%d m=%d alpha=%.2f\n",
		rep.Graph.Kind, rep.Graph.Vertices, rep.Graph.Edges, rep.Graph.Alpha)
	fmt.Fprintf(w, "model: %s, %d deltas (%d incremental, %d full fallback)\n",
		rep.Model, rep.Deltas, rep.Incremental, rep.Full)
	fmt.Fprintf(w, "touched %.4f%% of vertices per delta, dirty frontier %.3f%%\n",
		rep.TouchedFrac*100, rep.FrontierFrac*100)
	fmt.Fprintf(w, "CSR chunks shared with parent: %.1f%%\n", rep.SharedChunkFrac*100)
	fmt.Fprintf(w, "embedding refresh: incremental %.3f ms, full forward %.3f ms (%.1fx), rebuild %.3f ms (%.1fx)\n",
		float64(rep.IncrementalNs)/1e6, float64(rep.FullForwardNs)/1e6, rep.SpeedupVsFull,
		float64(rep.RebuildNs)/1e6, rep.SpeedupVsRebuild)
	fmt.Fprintf(w, "incremental logits bitwise-equal to rebuild-from-scratch: %v\n", rep.BitwiseEqual)
}

package bench

import (
	"fmt"
	"io"

	"seastar/internal/datasets"
	"seastar/internal/device"
	"seastar/internal/models"
	"seastar/internal/tensor"
)

// CorrectnessRow reports how far a baseline system's outputs and
// gradients are from Seastar's for one model — the paper's §7 methodology
// ("unit tests ... make sure they produced the same results as DGL"),
// run as an experiment.
type CorrectnessRow struct {
	Model       string
	System      models.System
	MaxLogitDev float64
	MaxGradDev  float64
}

// Correctness builds each model on every applicable system with identical
// seeds and reports the maximum elementwise deviation of logits and
// parameter gradients from the Seastar implementation.
func Correctness(cfg Config) ([]CorrectnessRow, error) {
	homoDS := datasets.MustLoad("cora", smallScale(cfg, "cora"), cfg.Seed)
	heteroDS := datasets.MustLoad("aifb", smallScale(cfg, "aifb"), cfg.Seed)

	type build struct {
		model   string
		ds      *datasets.Dataset
		systems []models.System
	}
	builds := []build{
		{"gcn", homoDS, []models.System{models.SysDGL, models.SysPyG}},
		{"gat", homoDS, []models.System{models.SysDGL, models.SysPyG}},
		{"appnp", homoDS, []models.System{models.SysDGL, models.SysPyG}},
		{"rgcn", heteroDS, []models.System{models.SysDGL, models.SysDGLBMM, models.SysPyG, models.SysPyGBMM}},
	}

	var rows []CorrectnessRow
	for _, bd := range builds {
		refOut, refGrads, err := forwardBackward(cfg, bd.model, bd.ds, models.SysSeastar)
		if err != nil {
			return nil, fmt.Errorf("bench: %s seastar: %w", bd.model, err)
		}
		for _, sys := range bd.systems {
			out, grads, err := forwardBackward(cfg, bd.model, bd.ds, sys)
			if err != nil {
				return nil, fmt.Errorf("bench: %s %s: %w", bd.model, sys, err)
			}
			row := CorrectnessRow{Model: bd.model, System: sys,
				MaxLogitDev: tensor.MaxAbsDiff(out, refOut)}
			for i := range grads {
				if d := tensor.MaxAbsDiff(grads[i], refGrads[i]); d > row.MaxGradDev {
					row.MaxGradDev = d
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func smallScale(cfg Config, name string) float64 {
	s := cfg.scale(name) / 4
	if s < 0.02 {
		s = 0.02
	}
	if s > 0.1 {
		s = 0.1
	}
	return s
}

func forwardBackward(cfg Config, model string, ds *datasets.Dataset, sys models.System) (*tensor.Tensor, []*tensor.Tensor, error) {
	env := models.NewEnv(device.New(device.V100), ds, cfg.Seed)
	m, err := buildModel(model, env, sys, 8)
	if err != nil {
		return nil, nil, err
	}
	logits := m.Forward(true)
	loss := env.E.CrossEntropyMasked(logits, ds.Labels, ds.TrainMask)
	env.E.Backward(loss)
	var grads []*tensor.Tensor
	for _, p := range m.Params() {
		if p.Grad == nil {
			return nil, nil, fmt.Errorf("parameter %s has no gradient", p.Name())
		}
		grads = append(grads, p.Grad)
	}
	return logits.Value, grads, nil
}

// WriteCorrectness renders the deviation table.
func WriteCorrectness(w io.Writer, rows []CorrectnessRow) {
	fmt.Fprintf(w, "%-8s %-10s %14s %14s\n", "model", "system", "max |Δlogit|", "max |Δgrad|")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %-10s %14.2e %14.2e\n", r.Model, r.System, r.MaxLogitDev, r.MaxGradDev)
	}
}

// TypeRatio is the §6.3.5 storage analysis: N_e/N_t for a hetero dataset.
type TypeRatio struct {
	Dataset string
	Ratio   float64
}

// TypeRatios computes the edge-type storage ratio of every heterogeneous
// dataset; the paper measured 1.385–1.923 and concluded the plain
// edge-type array beats the compressed type-offset layout (threshold 2).
func TypeRatios(cfg Config) ([]TypeRatio, error) {
	var out []TypeRatio
	for _, name := range datasets.Heterogeneous() {
		ds := cfg.loadDS(name)
		r, err := ds.G.TypeStorageRatio()
		if err != nil {
			return nil, err
		}
		out = append(out, TypeRatio{Dataset: name, Ratio: r})
	}
	return out, nil
}

// WriteTypeRatios renders the §6.3.5 analysis.
func WriteTypeRatios(w io.Writer, rs []TypeRatio) {
	fmt.Fprintf(w, "%-10s %12s %s\n", "dataset", "N_e/N_t", "(compressed layout pays off above 2)")
	for _, r := range rs {
		fmt.Fprintf(w, "%-10s %12.3f\n", r.Dataset, r.Ratio)
	}
}

package bench

import "testing"

// TestShardBenchSmall runs the shard experiment end to end at a reduced
// size: partition stats populated, bitwise gate green, latency measured.
func TestShardBenchSmall(t *testing.T) {
	cfg := DefaultShardBenchConfig()
	cfg.Vertices = 3000
	cfg.Requests, cfg.Batch = 10, 4
	rep, err := ShardBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.BitwiseEqual {
		t.Fatal("sharded logits diverged from single-process forward")
	}
	if rep.EdgeCutRatio <= 0 || rep.EdgeCutRatio >= 1 {
		t.Fatalf("edge cut ratio %.3f out of (0,1)", rep.EdgeCutRatio)
	}
	if rep.Replication < 1 || rep.Replication > float64(cfg.Shards) {
		t.Fatalf("replication %.2f out of [1,%d]", rep.Replication, cfg.Shards)
	}
	if rep.InteriorLatencyNs <= 0 || rep.SingleShardNs <= 0 {
		t.Fatalf("latency not measured: %d vs %d", rep.InteriorLatencyNs, rep.SingleShardNs)
	}
	if rep.MeasuredBytesTx == 0 || rep.MeasuredBytesRx == 0 {
		t.Fatal("no wire traffic recorded")
	}
	if rep.Rounds != 2 {
		t.Fatalf("gcn rounds %d", rep.Rounds)
	}
}

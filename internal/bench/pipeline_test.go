package bench

import (
	"bytes"
	"strings"
	"testing"
)

// TestModelPipelineNs checks the overlap model against hand-computable
// schedules.
func TestModelPipelineNs(t *testing.T) {
	// Compute-bound: with sampling fully hidden behind compute, the span
	// is first sample + first gather + all computes.
	s := []float64{10, 10, 10, 10}
	g := []float64{1, 1, 1, 1}
	c := []float64{100, 100, 100, 100}
	got := ModelPipelineNs(s, g, c, 2, 2)
	want := 10.0 + 1 + 4*100
	if got != want {
		t.Fatalf("compute-bound span = %v, want %v", got, want)
	}

	// Sample-bound with 1 worker: nothing overlaps across batches except
	// gather+compute of batch i with sample of i+1 — span is all samples
	// plus the last gather+compute (gather/compute ≪ sample).
	got = ModelPipelineNs(c, g, s, 1, 2)
	want = 4*100 + 1 + 10
	if got != want {
		t.Fatalf("sample-bound 1-worker span = %v, want %v", got, want)
	}

	// Sample-bound with 4 workers: all four samples run concurrently,
	// then gather and compute chain in order.
	got = ModelPipelineNs(c, g, s, 4, 4)
	want = 100 + 4*1 + 10 // g2..g4 hide behind c1..c3 (1 < 10)... recompute below
	// gatherDone: 101,102,103,104; computeDone: 111,121,131,141.
	if got != 141 {
		t.Fatalf("sample-bound 4-worker span = %v, want 141", got)
	}
	_ = want

	// Degenerate inputs.
	if ModelPipelineNs(nil, nil, nil, 2, 2) != 0 {
		t.Fatal("empty trace should model to 0")
	}

	// More workers can never slow the modeled span down.
	s = []float64{5, 9, 2, 7, 4, 8, 6, 3}
	g = []float64{1, 2, 1, 2, 1, 2, 1, 2}
	c = []float64{3, 4, 3, 4, 3, 4, 3, 4}
	prev := ModelPipelineNs(s, g, c, 1, 2)
	for w := 2; w <= 4; w++ {
		cur := ModelPipelineNs(s, g, c, w, 2)
		if cur > prev {
			t.Fatalf("span increased from %v to %v at workers=%d", prev, cur, w)
		}
		prev = cur
	}
}

// TestPipelineBenchSmoke runs the full benchmark at test scale and
// checks the report invariants the CI gate depends on.
func TestPipelineBenchSmoke(t *testing.T) {
	cfg := PipelineBenchConfig{
		Vertices: 1200, AvgDegree: 6, Alpha: 1.0,
		FeatDim: 8, Classes: 3,
		BatchSize: 128, FanOut: []int{4, 3},
		Prefetch: 2, SampleWorkers: 2,
		Epochs: 1, Seed: 11,
	}
	rep, err := PipelineBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.BitwiseEqual {
		t.Fatal("serial and pipelined loss curves diverged")
	}
	if rep.Batches <= 0 {
		t.Fatalf("no batches traced")
	}
	m := rep.OverlapModel
	if m.SerialNs <= 0 || m.PipelinedNs <= 0 {
		t.Fatalf("model not populated: %+v", m)
	}
	if m.PipelinedNs > m.SerialNs {
		t.Fatalf("modeled pipeline slower than serial: %v > %v", m.PipelinedNs, m.SerialNs)
	}
	if m.Speedup < 1 {
		t.Fatalf("modeled speedup %v < 1", m.Speedup)
	}

	var js bytes.Buffer
	if err := WritePipelineJSON(&js, rep); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"overlap_model"`, `"speedup"`, `"bitwise_equal"`, `"stage_avg_ns"`} {
		if !strings.Contains(js.String(), key) {
			t.Fatalf("JSON report missing %s", key)
		}
	}
	var txt bytes.Buffer
	WritePipelineText(&txt, rep)
	if !strings.Contains(txt.String(), "overlap model") {
		t.Fatalf("text report missing model line:\n%s", txt.String())
	}
}

// TestKernelsModelOnly checks the fast CI-gate path skips measurement
// but still emits the deterministic makespan model.
func TestKernelsModelOnly(t *testing.T) {
	cfg := KernelsConfig{Vertices: 2000, AvgDegree: 6, Alpha: 1.0,
		Hidden: 8, Workers: 8, Seed: 1, ModelOnly: true}
	rep, err := KernelsBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Measured) != 0 {
		t.Fatalf("model-only run measured %d variants", len(rep.Measured))
	}
	if len(rep.Model) != 1 || rep.Model[0].Speedup <= 0 {
		t.Fatalf("model missing: %+v", rep.Model)
	}
	rep2, err := KernelsBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Model[0] != rep2.Model[0] {
		t.Fatalf("model-only path not deterministic:\n%+v\n%+v", rep.Model[0], rep2.Model[0])
	}
}

package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http/httptest"
	"sort"
	"time"

	"seastar/internal/device"
	"seastar/internal/graph"
	"seastar/internal/part"
	"seastar/internal/serve"
	"seastar/internal/shard"
	"seastar/internal/tensor"
)

// ShardBenchConfig scopes the sharded-serving experiment: the serving
// baseline graph is vertex-cut across K workers behind a coordinator,
// every vertex's logits are checked bitwise against the single-process
// forward, and interior-vertex inference latency is raced against a
// single-shard deployment (one worker behind the same coordinator, so
// both sides pay the HTTP hop and the comparison isolates the sharding
// overhead, not the network stack).
type ShardBenchConfig struct {
	// Vertices, AvgDegree, Alpha size the Zipf benchmark graph.
	Vertices, AvgDegree int
	Alpha               float64
	// FeatDim, Hidden, Classes shape the served GCN.
	FeatDim, Hidden, Classes int
	// Shards is the worker count; Mode the partition mode.
	Shards int
	Mode   string
	// Requests × Batch interior vertices sample the latency distribution.
	Requests, Batch int
	Seed            int64
}

// DefaultShardBenchConfig is the acceptance setup: the serving
// baseline's 100k-vertex Zipf graph across 4 shards.
func DefaultShardBenchConfig() ShardBenchConfig {
	return ShardBenchConfig{
		Vertices: 100000, AvgDegree: 8, Alpha: 1.0,
		FeatDim: 16, Hidden: 16, Classes: 4,
		Shards: 4, Mode: "greedy",
		Requests: 60, Batch: 16,
		Seed: 7,
	}
}

// ShardReport is the full BENCH_shard.json payload.
type ShardReport struct {
	Experiment string           `json:"experiment"`
	Model      string           `json:"model"`
	Graph      KernelsGraphInfo `json:"graph"`

	Shards int    `json:"shards"`
	Mode   string `json:"mode"`
	Rounds int    `json:"rounds"`
	Seed   int64  `json:"seed"` // lets the CI gate re-derive the partition

	// Partition quality (deterministically recomputable from the config).
	EdgeCutRatio float64 `json:"edge_cut_ratio"` // dedup mirror flows / M
	RawCutFrac   float64 `json:"raw_cut_frac"`   // cut edges / M, pre-dedup
	Replication  float64 `json:"replication"`    // mean copies per vertex
	Balance      float64 `json:"balance"`        // max/min shard work units
	MirrorFlows  int     `json:"mirror_flows"`   // distinct (master, shard) transfers

	// Cross-shard traffic: the model (flows × hidden width × 4 bytes per
	// exchange round) and the coordinator's measured wire totals for the
	// whole run (sync + every gather, JSON+base64 framing included).
	SyncBytesModel  int64 `json:"sync_bytes_model"`
	MeasuredBytesTx int64 `json:"measured_bytes_tx"`
	MeasuredBytesRx int64 `json:"measured_bytes_rx"`

	// BitwiseEqual records that all N vertices' logits matched the
	// single-process forward bit for bit — the hard gate.
	BitwiseEqual bool `json:"bitwise_equal"`

	// Interior-vertex latency (all in-neighbours co-resident with the
	// vertex — no shard ever waits on a peer at gather time) for the
	// K-shard deployment vs a single-shard deployment of the same stack.
	// Each request's batch is drawn from one owner shard, so both
	// deployments pay exactly one worker round trip of identical size and
	// the ratio isolates the per-shard serving cost; mixed-owner batches
	// additionally fan out min(batch, K) parallel gathers.
	InteriorVertices  int     `json:"interior_vertices"`
	InteriorLatencyNs int64   `json:"interior_latency_ns"` // median per request
	SingleShardNs     int64   `json:"single_shard_ns"`
	LatencyRatio      float64 `json:"latency_ratio"`
}

// ShardBench runs the sharded-serving experiment and returns the report.
func ShardBench(cfg ShardBenchConfig) (*ShardReport, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := graph.ZipfDegree(rng, cfg.Vertices, cfg.AvgDegree, cfg.Alpha)
	feat := tensor.Randn(rng, 1, g.N, cfg.FeatDim)
	spec := serve.ModelSpec{Arch: "gcn", Hidden: cfg.Hidden, Classes: cfg.Classes, Seed: 7}

	p, err := part.Build(g, cfg.Shards, cfg.Mode)
	if err != nil {
		return nil, fmt.Errorf("bench: shard partition: %w", err)
	}
	rep := &ShardReport{
		Experiment: "shard",
		Model:      fmt.Sprintf("gcn (hidden %d) across %d workers", cfg.Hidden, cfg.Shards),
		Graph: KernelsGraphInfo{
			Kind: "zipf", Vertices: g.N, Edges: g.M,
			AvgDegree: cfg.AvgDegree, Alpha: cfg.Alpha,
		},
		Shards:       cfg.Shards,
		Mode:         p.Stats.Mode,
		Seed:         cfg.Seed,
		EdgeCutRatio: p.Stats.EdgeCutRatio,
		RawCutFrac:   p.Stats.RawCutFrac,
		Replication:  p.Stats.Replication,
		Balance:      p.Stats.Balance,
		MirrorFlows:  p.Stats.MirrorFlows,
	}

	// Ground truth: the single-process forward.
	want, err := singleForward(g, feat, spec)
	if err != nil {
		return nil, err
	}

	// Deploy K workers + coordinator over loopback HTTP.
	multi, closeMulti, err := deployShards(g, feat, spec, cfg.Shards, cfg.Mode)
	if err != nil {
		return nil, err
	}
	defer closeMulti()
	rep.Rounds = multi.Rounds()
	rep.SyncBytesModel = int64(p.Stats.MirrorFlows) * int64(cfg.Hidden) * 4 * int64(multi.Rounds()-1)

	// Bitwise gate: every vertex, gathered through the coordinator.
	rep.BitwiseEqual = true
	ctx := context.Background()
	for lo := 0; lo < g.N; lo += 4096 {
		hi := lo + 4096
		if hi > g.N {
			hi = g.N
		}
		nodes := make([]int32, 0, hi-lo)
		for v := lo; v < hi; v++ {
			nodes = append(nodes, int32(v))
		}
		res, err := multi.Infer(ctx, nodes)
		if err != nil {
			return nil, fmt.Errorf("bench: shard infer [%d,%d): %w", lo, hi, err)
		}
		for i, v := range nodes {
			for j := 0; j < want.Cols(); j++ {
				if math.Float32bits(res.Logits.At(i, j)) != math.Float32bits(want.At(int(v), j)) {
					rep.BitwiseEqual = false
				}
			}
		}
	}

	// Interior vertices: every in-neighbour mastered by the vertex's own
	// shard (and the vertex not mirrored anywhere — no export work either),
	// grouped by owner so each timed request hits exactly one worker.
	interior := interiorVertices(g, p)
	rep.InteriorVertices = len(interior)
	byOwner := map[int][]int32{}
	for _, v := range interior {
		byOwner[int(p.Owner[v])] = append(byOwner[int(p.Owner[v])], v)
	}
	var groups [][]int32
	for _, vs := range byOwner {
		groups = append(groups, vs) // batches sample with replacement
	}
	sort.Slice(groups, func(i, j int) bool { return len(groups[i]) > len(groups[j]) })

	single, closeSingle, err := deployShards(g, feat, spec, 1, cfg.Mode)
	if err != nil {
		return nil, err
	}
	defer closeSingle()
	if _, err := single.Infer(ctx, []int32{interior[0]}); err != nil { // warm sync
		return nil, fmt.Errorf("bench: single-shard warmup: %w", err)
	}

	rep.InteriorLatencyNs = medianLatency(ctx, multi, rng, groups, cfg)
	rep.SingleShardNs = medianLatency(ctx, single, rng, [][]int32{interior}, cfg)
	rep.LatencyRatio = safeRatio(float64(rep.InteriorLatencyNs), float64(rep.SingleShardNs))

	tx, rx := multi.TotalBytes()
	rep.MeasuredBytesTx, rep.MeasuredBytesRx = tx, rx
	return rep, nil
}

func singleForward(g *graph.Graph, feat *tensor.Tensor, spec serve.ModelSpec) (*tensor.Tensor, error) {
	m, err := serve.BuildModel(spec, feat.Cols(), 1)
	if err != nil {
		return nil, fmt.Errorf("bench: shard model: %w", err)
	}
	snap, err := serve.NewSnapshot(g, feat)
	if err != nil {
		return nil, fmt.Errorf("bench: shard snapshot: %w", err)
	}
	env := &serve.ForwardEnv{
		G: snap.Graph(), Feat: snap.Features(),
		Dev: device.New(device.V100), Pool: tensor.NewPool(),
	}
	serve.NormsFor(spec.Arch, snap, env.G, env)
	return m.Forward(env)
}

// deployShards spins up k loopback workers plus a coordinator.
func deployShards(g *graph.Graph, feat *tensor.Tensor, spec serve.ModelSpec, k int, mode string) (*shard.Coordinator, func(), error) {
	urls := make([]string, k)
	servers := make([]*httptest.Server, 0, k)
	closeAll := func() {
		for _, s := range servers {
			s.Close()
		}
	}
	for s := 0; s < k; s++ {
		w, err := shard.NewWorker(g, feat, spec, k, s, mode, device.V100)
		if err != nil {
			closeAll()
			return nil, nil, fmt.Errorf("bench: shard worker %d/%d: %w", s, k, err)
		}
		srv := httptest.NewServer(w.Handler())
		servers = append(servers, srv)
		urls[s] = srv.URL
	}
	c, err := shard.NewCoordinator(shard.CoordinatorConfig{Spec: spec, Workers: urls, Mode: mode}, g)
	if err != nil {
		closeAll()
		return nil, nil, fmt.Errorf("bench: shard coordinator: %w", err)
	}
	return c, closeAll, nil
}

// interiorVertices lists vertices whose whole in-neighbourhood is
// mastered by their own shard and that no peer mirrors.
func interiorVertices(g *graph.Graph, p *part.Partition) []int32 {
	mirrored := make([]bool, g.N)
	for _, f := range p.Frags {
		for l := f.Owned; l < f.NumLocals(); l++ {
			mirrored[f.Locals[l]] = true
		}
	}
	var out []int32
	for v := 0; v < g.N; v++ {
		if mirrored[v] {
			continue
		}
		own := p.Owner[v]
		interior := true
		nbrs, _ := g.In.Row(v)
		for _, u := range nbrs {
			if p.Owner[u] != own {
				interior = false
				break
			}
		}
		if interior {
			out = append(out, int32(v))
		}
	}
	return out
}

// medianLatency times cfg.Requests coordinator infers of cfg.Batch
// interior vertices each — all drawn from one group (= one owner shard)
// per request — and returns the median wall time.
func medianLatency(ctx context.Context, c *shard.Coordinator, rng *rand.Rand, groups [][]int32, cfg ShardBenchConfig) int64 {
	laps := make([]int64, 0, cfg.Requests)
	for r := 0; r < cfg.Requests; r++ {
		grp := groups[rng.Intn(len(groups))]
		nodes := make([]int32, cfg.Batch)
		for i := range nodes {
			nodes[i] = grp[rng.Intn(len(grp))]
		}
		t0 := time.Now()
		if _, err := c.Infer(ctx, nodes); err != nil {
			continue
		}
		laps = append(laps, time.Since(t0).Nanoseconds())
	}
	if len(laps) == 0 {
		return 0
	}
	sort.Slice(laps, func(i, j int) bool { return laps[i] < laps[j] })
	return laps[len(laps)/2]
}

// WriteShardJSON serializes the report for BENCH_shard.json.
func WriteShardJSON(w io.Writer, rep *ShardReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteShardText renders the report for terminals.
func WriteShardText(w io.Writer, rep *ShardReport) {
	fmt.Fprintf(w, "graph: %s n=%d m=%d alpha=%.2f\n",
		rep.Graph.Kind, rep.Graph.Vertices, rep.Graph.Edges, rep.Graph.Alpha)
	fmt.Fprintf(w, "model: %s (%s partition, %d exchange rounds)\n", rep.Model, rep.Mode, rep.Rounds)
	fmt.Fprintf(w, "partition: edge-cut %.3f (raw %.3f), replication %.2fx, balance %.3f, %d mirror flows\n",
		rep.EdgeCutRatio, rep.RawCutFrac, rep.Replication, rep.Balance, rep.MirrorFlows)
	fmt.Fprintf(w, "traffic: %.2f MB modelled per sync, measured tx %.2f MB rx %.2f MB\n",
		float64(rep.SyncBytesModel)/1e6, float64(rep.MeasuredBytesTx)/1e6, float64(rep.MeasuredBytesRx)/1e6)
	fmt.Fprintf(w, "interior-vertex latency (%d candidates): %.3f ms sharded vs %.3f ms single-shard (%.2fx)\n",
		rep.InteriorVertices, float64(rep.InteriorLatencyNs)/1e6, float64(rep.SingleShardNs)/1e6, rep.LatencyRatio)
	fmt.Fprintf(w, "sharded logits bitwise-equal to single-process forward: %v\n", rep.BitwiseEqual)
}

package bench

import (
	"bytes"
	"testing"

	"seastar/internal/device"
	"seastar/internal/kernels"
	"seastar/internal/obs"
)

func smallKernelsConfig() KernelsConfig {
	cfg := DefaultKernelsConfig()
	cfg.Vertices = 5000
	return cfg
}

// TestObsOverheadBench runs the measurement at a small scale and checks
// the report's internal consistency. It does not gate on a threshold —
// that is bench_check's job at the CI scale — but the modeled disabled
// overhead should be far under 100% on any host.
func TestObsOverheadBench(t *testing.T) {
	if testing.Short() {
		t.Skip("runs testing.Benchmark loops")
	}
	rep, err := ObsOverheadBench(smallKernelsConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.DisabledSpanNs <= 0 || rep.EnabledSpanNs <= 0 {
		t.Errorf("span costs not measured: off=%.1f on=%.1f", rep.DisabledSpanNs, rep.EnabledSpanNs)
	}
	if rep.DisabledSpanNs > rep.EnabledSpanNs {
		t.Errorf("disabled span (%.1f ns) costs more than enabled (%.1f ns)",
			rep.DisabledSpanNs, rep.EnabledSpanNs)
	}
	if rep.KernelNsPerLaunch <= 0 {
		t.Error("kernel launch not measured")
	}
	if rep.ModeledOverheadOff <= 0 || rep.ModeledOverheadOff >= 1 {
		t.Errorf("modeled disabled overhead %.4f outside (0,1)", rep.ModeledOverheadOff)
	}
	var buf bytes.Buffer
	WriteObsText(&buf, rep)
	if buf.Len() == 0 {
		t.Error("empty text report")
	}
	if obs.Enabled() {
		t.Error("ObsOverheadBench left tracing enabled")
	}
}

// benchKernels is the shared body of the on/off benchmark pair: the GAT
// attention kernel plan, edge-balanced schedule, one launch per op.
func benchKernels(b *testing.B, enabled bool) {
	cfg := smallKernelsConfig()
	g, runs, bind, err := kernelsSetup(cfg)
	if err != nil {
		b.Fatal(err)
	}
	wasEnabled := obs.Enabled()
	if enabled {
		obs.Enable()
	} else {
		obs.Disable()
	}
	defer func() {
		if wasEnabled {
			obs.Enable()
		} else {
			obs.Disable()
		}
		obs.Reset()
	}()
	kcfg := kernels.Config{Partition: kernels.PartitionEdgeBalanced}
	dev := device.New(device.V100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range runs {
			if err := r.k.Run(dev, g, kcfg, bind, r.outs); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkKernelsObsOff vs BenchmarkKernelsObsOn is the direct
// `go test -bench` comparison of kernel launches with tracing disabled
// and enabled:
//
//	go test -bench 'KernelsObs' -benchtime 2s ./internal/bench
func BenchmarkKernelsObsOff(b *testing.B) { benchKernels(b, false) }
func BenchmarkKernelsObsOn(b *testing.B)  { benchKernels(b, true) }

package bench

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestOOCoreBenchSmall runs the out-of-core experiment end to end at a
// reduced size: convert → reopen → two training runs, bitwise gate
// green, prefetch counters populated, capped-cache model priced.
func TestOOCoreBenchSmall(t *testing.T) {
	cfg := OOCoreBenchConfig{
		Vertices: 1500, AvgDegree: 6, Alpha: 1.0,
		FeatDim: 8, Classes: 4,
		BatchSize: 256, FanOut: []int{4, 2},
		Prefetch: 2, SampleWorkers: 1,
		PrefetchWorkers: 1, PrefetchBudget: 4,
		Epochs: 1, Seed: 3,
		Dir: t.TempDir(),
		// CacheFrac/ReadMBps left zero: the defaulting branch applies
		// 0.25 and 2000.
	}
	rep, err := RunOOCoreBench(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.BitwiseEqual {
		t.Fatal("store-backed loss curve diverged from in-memory")
	}
	if rep.InMemEpochNs <= 0 || rep.StoreEpochNs <= 0 || rep.MeasuredRatio <= 0 {
		t.Fatalf("epoch times not measured: in-mem %d, store %d, ratio %.3f",
			rep.InMemEpochNs, rep.StoreEpochNs, rep.MeasuredRatio)
	}
	if rep.StoreBytes <= 0 || rep.Fingerprint == "" {
		t.Fatalf("store not described: %d bytes, fingerprint %q", rep.StoreBytes, rep.Fingerprint)
	}
	if rep.PrefetchRequests == 0 || rep.PrefetchPages == 0 {
		t.Fatalf("prefetcher idle: %d requests, %d pages", rep.PrefetchRequests, rep.PrefetchPages)
	}
	m := rep.Model
	if m.CacheFrac != 0.25 || m.ReadMBps != 2000 {
		t.Fatalf("model defaults not applied: cache %.2f, %.0f MB/s", m.CacheFrac, m.ReadMBps)
	}
	if m.TouchedBytesPerEpoch <= 0 || m.MissBytesPerEpoch <= 0 || m.MissBytesPerEpoch >= m.TouchedBytesPerEpoch {
		t.Fatalf("model miss bytes out of range: %d of %d", m.MissBytesPerEpoch, m.TouchedBytesPerEpoch)
	}
	if m.EpochNs < m.ComputeNsPerEpoch || m.Ratio < 1 {
		t.Fatalf("modeled epoch %.0f ns below compute %.0f ns (ratio %.3f)",
			m.EpochNs, m.ComputeNsPerEpoch, m.Ratio)
	}

	var js bytes.Buffer
	if err := WriteOOCoreJSON(&js, rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), `"experiment": "oocore"`) {
		t.Fatalf("JSON missing experiment tag:\n%s", js.String())
	}
	var txt bytes.Buffer
	WriteOOCoreText(&txt, rep)
	for _, want := range []string{"out-of-core store", "bitwise equal: true", "uncapped (warm cache)"} {
		if !strings.Contains(txt.String(), want) {
			t.Fatalf("text summary missing %q:\n%s", want, txt.String())
		}
	}
	rep.MemCapBytes = 64 << 20
	txt.Reset()
	WriteOOCoreText(&txt, rep)
	if !strings.Contains(txt.String(), "capped at 64.0 MB") {
		t.Fatalf("capped summary missing cap note:\n%s", txt.String())
	}
}

// TestOOCoreRederive pins the bench_check re-derivation entry point:
// it must complete and prove bitwise equivalence on its own.
func TestOOCoreRederive(t *testing.T) {
	if err := OOCoreRederive(); err != nil {
		t.Fatal(err)
	}
}

package bench

import (
	"fmt"
	"io"

	"seastar/internal/device"
	"seastar/internal/fusion"
	"seastar/internal/gir"
	"seastar/internal/graph"
	"seastar/internal/kernels"
)

// Fig12Variant names one kernel strategy of the microbenchmark (§7.2).
type Fig12Variant string

const (
	// VariantDGL is the minigun binary-search baseline.
	VariantDGL Fig12Variant = "dgl-baseline"
	// VariantBasic is vertex-parallel edge-sequential with one vertex
	// per 256-thread block and no sorting.
	VariantBasic Fig12Variant = "basic"
	// VariantFAUnsorted adds feature-adaptive groups on the unsorted
	// graph.
	VariantFAUnsorted Fig12Variant = "fa-unsorted"
	// VariantFASortAtomic adds degree sorting with atomic-counter
	// scheduling.
	VariantFASortAtomic Fig12Variant = "fa-sort-atomic"
	// VariantFASortDynamic is the full design: degree sorting plus the
	// hardware block scheduler.
	VariantFASortDynamic Fig12Variant = "fa-sort-dynamic"
)

// Fig12Variants lists the paper's variants in presentation order.
func Fig12Variants() []Fig12Variant {
	return []Fig12Variant{VariantBasic, VariantFAUnsorted, VariantFASortAtomic, VariantFASortDynamic}
}

// Fig12Point is one bar of Figure 12.
type Fig12Point struct {
	GPU         string
	FeatureSize int
	Variant     Fig12Variant
	TimeNs      float64
	// Speedup is relative to the DGL baseline at the same (gpu, size).
	Speedup float64
}

// Fig12Sizes is the paper's feature-size sweep (reddit's original 602
// plus descending powers of two).
func Fig12Sizes() []int { return []int{602, 256, 128, 64, 32, 16, 8, 4, 2, 1} }

// neighborKernel compiles the microbenchmark body — summing neighbours'
// feature vectors: sum([u.h for u in v.innbs]).
func neighborKernel(width int) (*kernels.Kernel, *gir.Node, error) {
	b := gir.NewBuilder()
	b.VFeature("h", width)
	dag, err := b.Build(func(v *gir.Vertex) *gir.Value {
		return v.Nbr("h").AggSum()
	})
	if err != nil {
		return nil, nil, err
	}
	plan, err := fusion.Partition(fusion.Optimize(dag))
	if err != nil {
		return nil, nil, err
	}
	mat := plan.Materialized(nil)
	k, err := kernels.Compile(plan.Units[0], mat[plan.Units[0]], nil)
	return k, plan.DAG.Outputs[0], err
}

// Fig12 reproduces the Figure 12 microbenchmark on a reddit-like graph:
// the time to access (sum) all neighbours' features under each kernel
// strategy, swept over feature sizes, reported as speedup over the DGL
// binary-search baseline. Only kernel costs are simulated (no functional
// compute), so the sweep is fast and exact.
func Fig12(cfg Config, sizes []int) ([]Fig12Point, error) {
	if sizes == nil {
		sizes = Fig12Sizes()
	}
	scale := cfg.scale("reddit")
	ds := cfg.loadDS("reddit")
	g := ds.G
	sorted := g.SortByDegree()

	var out []Fig12Point
	for _, gpu := range cfg.GPUs {
		p, ok := device.ProfileByName(gpu)
		if !ok {
			return nil, fmt.Errorf("bench: unknown gpu %q", gpu)
		}
		for _, size := range sizes {
			k, _, err := neighborKernel(size)
			if err != nil {
				return nil, err
			}
			baseline := runFig12DGL(p, scale, g, size)
			out = append(out, Fig12Point{GPU: gpu, FeatureSize: size,
				Variant: VariantDGL, TimeNs: baseline, Speedup: 1})
			for _, variant := range Fig12Variants() {
				t := runFig12Variant(p, scale, g, sorted, k, size, variant)
				out = append(out, Fig12Point{GPU: gpu, FeatureSize: size,
					Variant: variant, TimeNs: t, Speedup: baseline / t})
			}
		}
	}
	return out, nil
}

func runFig12DGL(p device.Profile, scale float64, g *graph.Graph, width int) float64 {
	dev := device.NewScaled(p, scale)
	dev.LaunchKernel(kernels.MinigunLaunch(g, "fig12.dgl", width,
		int64(width)*4, int64(width)*4, 2, true, g.M))
	return dev.ElapsedNs()
}

func runFig12Variant(p device.Profile, scale float64, unsorted, sorted *graph.Graph,
	k *kernels.Kernel, width int, variant Fig12Variant) float64 {

	dev := device.NewScaled(p, scale)
	cfg := kernels.Config{BlockSize: 256, FeatureAdaptive: true, Sched: device.SchedHardware}
	g := sorted
	switch variant {
	case VariantBasic:
		cfg.FeatureAdaptive = false
		g = unsorted
	case VariantFAUnsorted:
		g = unsorted
	case VariantFASortAtomic:
		cfg.Sched = device.SchedAtomic
	case VariantFASortDynamic:
	}
	k.LaunchOnly(dev, g, cfg)
	return dev.ElapsedNs()
}

// WriteFig12 renders the speedup table grouped by GPU (rows: variants,
// columns: feature sizes), matching the figure's layout.
func WriteFig12(w io.Writer, pts []Fig12Point) {
	byGPU := map[string][]Fig12Point{}
	var gpus []string
	for _, pt := range pts {
		if _, ok := byGPU[pt.GPU]; !ok {
			gpus = append(gpus, pt.GPU)
		}
		byGPU[pt.GPU] = append(byGPU[pt.GPU], pt)
	}
	for _, gpu := range gpus {
		fmt.Fprintf(w, "\n== Figure 12 on %s (speedup vs DGL baseline) ==\n", gpu)
		var sizes []int
		seen := map[int]bool{}
		for _, pt := range byGPU[gpu] {
			if !seen[pt.FeatureSize] {
				seen[pt.FeatureSize] = true
				sizes = append(sizes, pt.FeatureSize)
			}
		}
		fmt.Fprintf(w, "%-16s", "variant")
		for _, s := range sizes {
			fmt.Fprintf(w, " %8d", s)
		}
		fmt.Fprintln(w)
		cell := map[Fig12Variant]map[int]float64{}
		for _, pt := range byGPU[gpu] {
			if cell[pt.Variant] == nil {
				cell[pt.Variant] = map[int]float64{}
			}
			cell[pt.Variant][pt.FeatureSize] = pt.Speedup
		}
		for _, v := range Fig12Variants() {
			fmt.Fprintf(w, "%-16s", v)
			for _, s := range sizes {
				fmt.Fprintf(w, " %8.1f", cell[v][s])
			}
			fmt.Fprintln(w)
		}
	}
}

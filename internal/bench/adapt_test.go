// Tests for the measured (not modeled) halves of the benchmark reports:
// the multi-worker measurement ladder with measured_speedup rows, the
// per-worker model rows emitted for divergence reporting, and the
// pipeline adaptive re-planning section.
package bench

import (
	"bytes"
	"runtime"
	"strings"
	"testing"
	"time"

	"seastar/internal/adapt"
)

func TestMeasuredProcsList(t *testing.T) {
	list := MeasuredProcsList()
	if len(list) == 0 || list[0] != 1 {
		t.Fatalf("measured procs ladder must start at 1: %v", list)
	}
	seen := map[int]bool{}
	for _, p := range list {
		if p < 1 {
			t.Fatalf("non-positive worker count in ladder %v", list)
		}
		if seen[p] {
			t.Fatalf("duplicate worker count in ladder %v", list)
		}
		seen[p] = true
	}
	if !seen[2] || !seen[runtime.NumCPU()] {
		t.Fatalf("ladder %v missing 2 or NumCPU=%d", list, runtime.NumCPU())
	}
}

// TestKernelsMeasuredSpeedupRows checks that a multi-worker run records
// each variant's wall-time scaling over its own 1-worker row and emits a
// makespan-model row at every measured worker count, so the CI gate can
// put modeled and measured speedups side by side.
func TestKernelsMeasuredSpeedupRows(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark harness")
	}
	cfg := KernelsConfig{Vertices: 2000, AvgDegree: 6, Alpha: 1.0,
		Hidden: 8, Workers: 8, MaxProcsList: []int{1, 2}, Seed: 1}
	rep, err := KernelsBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Measured) != 4 {
		t.Fatalf("measured %d rows, want 2 variants × 2 worker counts", len(rep.Measured))
	}
	for _, m := range rep.Measured {
		switch m.MaxProcs {
		case 1:
			if m.MeasuredSpeedup != 0 {
				t.Fatalf("%s @1w: measured_speedup %.2f on the baseline row, want 0", m.Name, m.MeasuredSpeedup)
			}
		case 2:
			if m.MeasuredSpeedup <= 0 {
				t.Fatalf("%s @2w: measured_speedup not computed", m.Name)
			}
		default:
			t.Fatalf("unexpected worker count %d", m.MaxProcs)
		}
	}

	// Model rows: the headline at cfg.Workers plus one per measured
	// worker count > 1 (here: 2).
	if len(rep.Model) != 2 {
		t.Fatalf("got %d model rows, want headline @%d plus divergence row @2: %+v",
			len(rep.Model), cfg.Workers, rep.Model)
	}
	if rep.Model[0].Workers != cfg.Workers {
		t.Fatalf("headline model row at %d workers, want %d", rep.Model[0].Workers, cfg.Workers)
	}
	div := rep.Model[1]
	if div.Workers != 2 || div.IdealSpeedup <= 0 || div.Note == "" {
		t.Fatalf("divergence model row malformed: %+v", div)
	}

	var txt bytes.Buffer
	WriteKernelsText(&txt, rep)
	if !strings.Contains(txt.String(), "x vs 1w") {
		t.Fatalf("text report missing measured-scaling column:\n%s", txt.String())
	}
}

// TestPipelineMeasuredSpeedup checks the pipelined variant's scaling
// column over its own 1-proc row.
func TestPipelineMeasuredSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark harness")
	}
	cfg := PipelineBenchConfig{
		Vertices: 1200, AvgDegree: 6, Alpha: 1.0,
		FeatDim: 8, Classes: 3,
		BatchSize: 128, FanOut: []int{4, 3},
		Prefetch: 2, SampleWorkers: 2,
		MaxProcsList: []int{1, 2},
		Epochs:       1, Seed: 11,
	}
	rep, err := PipelineBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerProcs) != 2 {
		t.Fatalf("got %d per-procs rows, want 2", len(rep.PerProcs))
	}
	if rep.PerProcs[0].MeasuredSpeedup != 0 {
		t.Fatalf("1-proc row carries measured_speedup %.2f, want 0", rep.PerProcs[0].MeasuredSpeedup)
	}
	if rep.PerProcs[1].MeasuredSpeedup <= 0 {
		t.Fatalf("2-proc row missing measured_speedup: %+v", rep.PerProcs[1])
	}
}

// TestPipelineAdaptiveSection runs the re-planning experiment at test
// scale with a deterministic settle (Win far above any real margin, so
// the static plan always survives its challengers in one round) and
// checks the report section the committed-evidence gate reads.
func TestPipelineAdaptiveSection(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark harness")
	}
	cfg := PipelineBenchConfig{
		Vertices: 800, AvgDegree: 6, Alpha: 1.0,
		FeatDim: 8, Classes: 3,
		BatchSize: 128, FanOut: []int{4, 3},
		Prefetch: 2, SampleWorkers: 2,
		Epochs: 1, Seed: 11,
		AdaptVertices: 800, AdaptEpochs: 8,
		AdaptConfig: adapt.Config{Explore: 1, Rounds: 1, Win: 10.0},
	}
	rep, err := PipelineBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ad := rep.Adaptive
	if ad == nil {
		t.Fatal("adaptive section missing from report")
	}
	if ad.Gen < 1 {
		t.Fatalf("settled plan has gen %d", ad.Gen)
	}
	if !ad.BitwiseEqual {
		t.Fatal("exploration perturbed the loss curve")
	}
	// Win=10.0 means no challenger can commit: the learned shape is the
	// static shape validated by measurement, speedup 1.0 by construction.
	if ad.LearnedPrefetch != cfg.Prefetch || ad.LearnedWorkers != cfg.SampleWorkers {
		t.Fatalf("static plan should have survived: learned pf=%d/w=%d", ad.LearnedPrefetch, ad.LearnedWorkers)
	}
	if ad.MeasuredSpeedup <= 0 {
		t.Fatalf("measured speedup not recorded: %+v", ad)
	}
	if ad.Why == "" {
		t.Fatal("decision rationale missing")
	}

	var js bytes.Buffer
	if err := WritePipelineJSON(&js, rep); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"adaptive"`, `"measured_speedup"`, `"learned_prefetch"`} {
		if !strings.Contains(js.String(), key) {
			t.Fatalf("JSON report missing %s", key)
		}
	}
	var txt bytes.Buffer
	WritePipelineText(&txt, rep)
	if !strings.Contains(txt.String(), "adaptive (n=800") {
		t.Fatalf("text report missing adaptive line:\n%s", txt.String())
	}
}

// TestServeBenchSmall runs the serving adaptive experiment on a small
// graph with a deterministic tuner setup: a single exploration trial per
// candidate, single-round hysteresis, and a win bar no measurement can
// clear, so the static cap always survives. The point is the harness,
// not the decision — the report must carry the full evidence chain
// (settled plan, measured latencies, bitwise flag) that the CI gate
// reads from the committed baseline.
func TestServeBenchSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("serve bench takes seconds")
	}
	cfg := DefaultServeBenchConfig()
	cfg.Vertices = 3000
	cfg.Clients = 4
	cfg.AdaptInterval = 40 * time.Millisecond
	cfg.SettleTimeout = 60 * time.Second
	// Win 10.0 = a 1000% bar: unreachable, so the static plan settles
	// after exactly one round and the test is deterministic.
	cfg.AdaptConfig = adapt.Config{Explore: 1, Rounds: 1, Win: 10.0}
	rep, err := ServeBench(cfg)
	if err != nil {
		t.Fatalf("ServeBench: %v", err)
	}
	if !rep.BitwiseEqual {
		t.Fatal("served answers diverged from the serial forward")
	}
	if rep.LearnedMaxBatch != rep.StaticMaxBatch {
		t.Fatalf("static must survive an unreachable win bar: static %d, learned %d",
			rep.StaticMaxBatch, rep.LearnedMaxBatch)
	}
	if rep.Gen < 1 {
		t.Fatalf("settled plan must record its generation, got %d", rep.Gen)
	}
	if rep.StaticNsPerReq <= 0 || rep.LearnedNsPerReq <= 0 || rep.MeasuredSpeedup <= 0 {
		t.Fatalf("missing measured evidence: static %d ns, learned %d ns, speedup %.2f",
			rep.StaticNsPerReq, rep.LearnedNsPerReq, rep.MeasuredSpeedup)
	}
	if rep.Requests <= 0 {
		t.Fatalf("no requests served (got %d)", rep.Requests)
	}
	if rep.Why == "" {
		t.Fatal("report must explain the decision")
	}

	var buf bytes.Buffer
	if err := WriteServeJSON(&buf, rep); err != nil {
		t.Fatalf("WriteServeJSON: %v", err)
	}
	for _, key := range []string{"measured_speedup", "learned_max_batch", "bitwise_equal"} {
		if !strings.Contains(buf.String(), key) {
			t.Fatalf("serve JSON missing %q:\n%s", key, buf.String())
		}
	}
	buf.Reset()
	WriteServeText(&buf, rep)
	if !strings.Contains(buf.String(), "adaptive micro-batch") {
		t.Fatalf("serve text missing adaptive line:\n%s", buf.String())
	}
}

package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"

	"seastar/internal/device"
	"seastar/internal/fusion"
	"seastar/internal/gir"
	"seastar/internal/graph"
	"seastar/internal/kernels"
	"seastar/internal/sched"
	"seastar/internal/tensor"
)

// FusedConfig scopes the closure-compiler A/B benchmark: the three
// canonical specialized edge-loop patterns (GAT edge softmax + weighted
// aggregate, GCN scaled gather, R-GCN typed transform-aggregate) run
// interpreted and specialized at each worker count, with a bitwise
// equality check between the two paths on every pattern.
type FusedConfig struct {
	// Vertices, AvgDegree and Alpha size the Zipf benchmark graph.
	Vertices, AvgDegree int
	Alpha               float64
	// Hidden is the wide feature width; Rels the R-GCN relation count.
	Hidden, Rels int
	// MaxProcsList is the worker counts to measure at (sched.SetMaxProcs);
	// measured wall time only improves with procs when the host has the
	// cores to back them.
	MaxProcsList []int
	Seed         int64
}

// DefaultFusedConfig matches the acceptance setup: the kernels-bench
// Zipf graph at 1 and 4 workers.
func DefaultFusedConfig() FusedConfig {
	return FusedConfig{Vertices: 100000, AvgDegree: 8, Alpha: 1.0,
		Hidden: 16, Rels: 3, MaxProcsList: []int{1, 4}, Seed: 1}
}

// FusedRow is one fused kernel × worker-count measurement. A pattern
// that partitions into several seastar units (GAT's edge softmax splits
// into a scalar-normalizer kernel and the weighted-aggregate kernel)
// yields one row per unit, so the report scores each compiled edge loop
// against its own interpreted run rather than hiding a strong kernel
// behind a weak one in a whole-pattern average.
type FusedRow struct {
	Pattern string `json:"pattern"`
	// Unit is the fused unit's index within the pattern's plan.
	Unit int `json:"unit"`
	// Spec is the specializer's matched plan name for this unit.
	Spec     string `json:"spec"`
	MaxProcs int    `json:"max_procs"`
	// InterpNsPerOp runs the same kernels with Config.NoSpecialize.
	InterpNsPerOp int64   `json:"interp_ns_per_op"`
	SpecNsPerOp   int64   `json:"spec_ns_per_op"`
	Speedup       float64 `json:"speedup"`
	// BitwiseEqual is the hard gate: specialized and interpreted outputs
	// compared bit for bit before timing.
	BitwiseEqual bool `json:"bitwise_equal"`
}

// FusedReport is the full BENCH_fused.json payload.
type FusedReport struct {
	Experiment string           `json:"experiment"`
	SIMD       bool             `json:"simd"`
	GemmKernel string           `json:"gemm_kernel"`
	Graph      KernelsGraphInfo `json:"graph"`
	Rows       []FusedRow       `json:"rows"`
}

// fusedPattern builds one benchmark workload: a Zipf graph (typed for
// R-GCN) and a pure-seastar GIR whose fused units the closure compiler
// must match.
type fusedPattern struct {
	name  string
	build func(cfg FusedConfig, rng *rand.Rand) (*graph.Graph, *gir.DAG, *kernels.Bindings, error)
}

func fusedPatterns() []fusedPattern {
	return []fusedPattern{
		{"gat", func(cfg FusedConfig, rng *rand.Rand) (*graph.Graph, *gir.DAG, *kernels.Bindings, error) {
			g := graph.ZipfDegree(rng, cfg.Vertices, cfg.AvgDegree, cfg.Alpha).SortByDegree()
			b := gir.NewBuilder()
			b.VFeature("eu", 1)
			b.VFeature("ev", 1)
			b.VFeature("h", cfg.Hidden)
			dag, err := b.Build(func(v *gir.Vertex) *gir.Value {
				e := v.Nbr("eu").Add(v.Self("ev")).LeakyReLU(0.2).Exp()
				a := e.Div(e.AggSum())
				return a.Mul(v.Nbr("h")).AggSum()
			})
			bind := &kernels.Bindings{VFeat: map[string]*tensor.Tensor{
				"eu": tensor.Randn(rng, 1, g.N, 1),
				"ev": tensor.Randn(rng, 1, g.N, 1),
				"h":  tensor.Randn(rng, 1, g.N, cfg.Hidden),
			}}
			return g, dag, bind, err
		}},
		// The GCN seastar unit after the dense transform: gather the
		// transformed neighbour row, scale by the symmetric norm, sum.
		{"gcn", func(cfg FusedConfig, rng *rand.Rand) (*graph.Graph, *gir.DAG, *kernels.Bindings, error) {
			g := graph.ZipfDegree(rng, cfg.Vertices, cfg.AvgDegree, cfg.Alpha).SortByDegree()
			b := gir.NewBuilder()
			b.VFeature("x", cfg.Hidden)
			b.VFeature("norm", 1)
			dag, err := b.Build(func(v *gir.Vertex) *gir.Value {
				return v.Nbr("x").Mul(v.Nbr("norm")).AggSum()
			})
			bind := &kernels.Bindings{VFeat: map[string]*tensor.Tensor{
				"x":    tensor.Randn(rng, 1, g.N, cfg.Hidden),
				"norm": tensor.Uniform(rng, 0.2, 1, g.N, 1),
			}}
			return g, dag, bind, err
		}},
		{"rgcn", func(cfg FusedConfig, rng *rand.Rand) (*graph.Graph, *gir.DAG, *kernels.Bindings, error) {
			g := graph.ZipfDegree(rng, cfg.Vertices, cfg.AvgDegree, cfg.Alpha)
			graph.RandomEdgeTypes(rng, g, cfg.Rels)
			if err := g.SortEdgesByType(); err != nil {
				return nil, nil, nil, err
			}
			g = g.SortByDegree()
			b := gir.NewBuilder()
			b.VFeature("h", cfg.Hidden)
			b.EFeature("norm", 1)
			Ws := b.Param("W", cfg.Rels, cfg.Hidden, cfg.Hidden)
			dag, err := b.Build(func(v *gir.Vertex) *gir.Value {
				return v.Nbr("h").MatMulTyped(Ws).Mul(v.Edge("norm")).AggHier(gir.AggSum, gir.AggSum)
			})
			bind := &kernels.Bindings{
				VFeat:  map[string]*tensor.Tensor{"h": tensor.Randn(rng, 1, g.N, cfg.Hidden)},
				EFeat:  map[string]*tensor.Tensor{"norm": tensor.Uniform(rng, 0.2, 1, g.M, 1)},
				Params: map[string]*tensor.Tensor{"W": tensor.Randn(rng, 1, cfg.Rels, cfg.Hidden, cfg.Hidden)},
			}
			return g, dag, bind, err
		}},
	}
}

// compileSeastarUnits partitions dag and compiles every unit; the whole
// plan must be seastar units (the patterns above are built that way) so
// the measurement covers only the fused edge loops.
func compileSeastarUnits(g *graph.Graph, dag *gir.DAG, bind *kernels.Bindings) ([]kernelsRun, error) {
	dag = fusion.Optimize(dag)
	plan, err := fusion.Partition(dag)
	if err != nil {
		return nil, err
	}
	if bind.Inter == nil {
		bind.Inter = make(map[*gir.Node]*tensor.Tensor)
	}
	mat := plan.Materialized(nil)
	avail := map[*gir.Node]bool{}
	for _, ns := range mat {
		for _, n := range ns {
			avail[n] = true
		}
	}
	var runs []kernelsRun
	for _, u := range plan.Units {
		if u.Kind != fusion.KindSeastar {
			return nil, fmt.Errorf("bench: unexpected %s unit in fused pattern", u.Kind)
		}
		k, err := kernels.Compile(u, mat[u], avail)
		if err != nil {
			return nil, err
		}
		outs := make(map[*gir.Node]*tensor.Tensor, len(mat[u]))
		for _, m := range mat[u] {
			rows := g.N
			if m.Type == gir.TypeE {
				rows = g.M
			}
			t := tensor.New(rows, m.Dim())
			outs[m] = t
			bind.Inter[m] = t
		}
		runs = append(runs, kernelsRun{k: k, outs: outs})
	}
	return runs, nil
}

// specNames collects the matched plan name of each compiled unit; an
// unspecialized unit is an error — the benchmark exists to measure the
// closure compiler, so a silent fallback would compare the interpreter
// against itself.
func specNames(runs []kernelsRun) ([]string, error) {
	var names []string
	for _, r := range runs {
		ok, name := r.k.Specialized()
		if !ok {
			return nil, fmt.Errorf("bench: unit %d fell back to the interpreter: %s", r.k.Unit.ID, name)
		}
		names = append(names, name)
	}
	return names, nil
}

// fusedBitwiseEqual runs the plan once interpreted and once specialized
// and compares every materialized output bit for bit (NaN-forgiving).
func fusedBitwiseEqual(g *graph.Graph, runs []kernelsRun, bind *kernels.Bindings) (bool, error) {
	dev := device.New(device.V100)
	interp := kernels.Config{NoSpecialize: true}
	want := make(map[*gir.Node][]float32)
	for _, r := range runs {
		if err := r.k.Run(dev, g, interp, bind, r.outs); err != nil {
			return false, err
		}
		for n, t := range r.outs {
			want[n] = append([]float32(nil), t.Data()...)
		}
	}
	for _, r := range runs {
		if err := r.k.Run(dev, g, kernels.Config{}, bind, r.outs); err != nil {
			return false, err
		}
		for n, t := range r.outs {
			w := want[n]
			for i, got := range t.Data() {
				if math.Float32bits(got) != math.Float32bits(w[i]) &&
					!(math.IsNaN(float64(got)) && math.IsNaN(float64(w[i]))) {
					return false, nil
				}
			}
		}
	}
	return true, nil
}

// FusedBench runs the closure-compiler benchmark and returns the report.
func FusedBench(cfg FusedConfig) (*FusedReport, error) {
	rep := &FusedReport{
		Experiment: "fused",
		SIMD:       tensor.SIMDEnabled(),
		GemmKernel: tensor.GemmKernelName(),
		Graph: KernelsGraphInfo{
			Kind: "zipf", Vertices: cfg.Vertices,
			AvgDegree: cfg.AvgDegree, Alpha: cfg.Alpha, DegreeSorted: true,
		},
	}
	procsList := cfg.MaxProcsList
	if len(procsList) == 0 {
		procsList = []int{1}
	}
	for _, pat := range fusedPatterns() {
		rng := rand.New(rand.NewSource(cfg.Seed))
		g, dag, bind, err := pat.build(cfg, rng)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", pat.name, err)
		}
		rep.Graph.Edges = g.M
		runs, err := compileSeastarUnits(g, dag, bind)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", pat.name, err)
		}
		spec, err := specNames(runs)
		if err != nil {
			return nil, err
		}
		eq, err := fusedBitwiseEqual(g, runs, bind)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", pat.name, err)
		}
		// The bitwise pass above also populated every unit's inputs
		// (bind.Inter), so each unit can be timed on its own: unit u
		// re-reads the outputs its predecessors left behind.
		for ui := range runs {
			unit := runs[ui : ui+1]
			for _, procs := range procsList {
				prev := sched.SetMaxProcs(procs)
				interpRes, err := measureKernel(g, unit, bind, kernels.Config{NoSpecialize: true})
				if err == nil {
					var specRes = interpRes
					specRes, err = measureKernel(g, unit, bind, kernels.Config{})
					if err == nil {
						rep.Rows = append(rep.Rows, FusedRow{
							Pattern:       pat.name,
							Unit:          ui,
							Spec:          spec[ui],
							MaxProcs:      procs,
							InterpNsPerOp: interpRes.NsPerOp(),
							SpecNsPerOp:   specRes.NsPerOp(),
							Speedup:       float64(interpRes.NsPerOp()) / float64(specRes.NsPerOp()),
							BitwiseEqual:  eq,
						})
					}
				}
				sched.SetMaxProcs(prev)
				if err != nil {
					return nil, fmt.Errorf("bench: %s unit %d @%d procs: %w", pat.name, ui, procs, err)
				}
			}
		}
	}
	return rep, nil
}

// WriteFusedJSON serializes the report for BENCH_fused.json.
func WriteFusedJSON(w io.Writer, rep *FusedReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteFusedText renders the report for terminals.
func WriteFusedText(w io.Writer, rep *FusedReport) {
	fmt.Fprintf(w, "graph: %s n=%d m=%d alpha=%.2f; simd=%v (%s)\n\n",
		rep.Graph.Kind, rep.Graph.Vertices, rep.Graph.Edges, rep.Graph.Alpha,
		rep.SIMD, rep.GemmKernel)
	fmt.Fprintf(w, "%-6s %4s %6s %14s %14s %8s %8s  %s\n",
		"model", "unit", "procs", "interp ns/op", "spec ns/op", "speedup", "bitwise", "kernel")
	for _, r := range rep.Rows {
		fmt.Fprintf(w, "%-6s %4d %6d %14d %14d %7.2fx %8v  %s\n",
			r.Pattern, r.Unit, r.MaxProcs, r.InterpNsPerOp, r.SpecNsPerOp, r.Speedup,
			r.BitwiseEqual, r.Spec)
	}
}

package bench

import (
	"fmt"
	"io"
	"testing"

	"seastar/internal/kernels"
	"seastar/internal/obs"
)

// spansPerLaunch is how many obs spans sit on the hot path of one kernel
// launch in the execution engine: one "exec" unit span in the runtime
// dispatch loop and one "kern" span inside Kernel.Run.
const spansPerLaunch = 2

// ObsOverheadReport quantifies the cost of the obs tracing layer on the
// kernel hot path, in two forms:
//
//   - A modeled disabled-cost bound: the measured per-span cost with
//     tracing off, times the spans per launch, as a fraction of the
//     measured per-launch kernel time. This is the number the CI gate
//     checks against the <2% budget — it compares two measurements taken
//     on the same host seconds apart, so it is meaningful on any runner.
//   - A measured on-vs-off comparison of the full kernel benchmark, for
//     the EXPERIMENTS.md record (noisier: the deltas are near the run-to-
//     run variance of the kernel itself).
type ObsOverheadReport struct {
	Graph KernelsGraphInfo `json:"graph"`
	// DisabledSpanNs is the measured cost of one Begin/End pair with
	// tracing disabled (the atomic-load fast path).
	DisabledSpanNs float64 `json:"disabled_span_ns"`
	// EnabledSpanNs is the same with tracing enabled (records an event).
	EnabledSpanNs float64 `json:"enabled_span_ns"`
	// SpansPerLaunch is the hot-path span count per kernel launch.
	SpansPerLaunch int `json:"spans_per_launch"`
	// KernelNsPerLaunch is the measured per-launch time of the GAT
	// attention kernel plan with tracing disabled.
	KernelNsPerLaunch int64 `json:"kernel_ns_per_launch"`
	// KernelObsOnNsPerLaunch is the same with tracing enabled.
	KernelObsOnNsPerLaunch int64 `json:"kernel_obs_on_ns_per_launch"`
	// ModeledOverheadOff = SpansPerLaunch·DisabledSpanNs /
	// KernelNsPerLaunch: the worst-case fraction of kernel time the
	// disabled tracing layer can cost. The CI gate holds this under 2%.
	ModeledOverheadOff float64 `json:"modeled_overhead_off"`
	// MeasuredOverheadOn = (on − off)/off from the full benchmark,
	// clamped at zero (negative deltas are noise).
	MeasuredOverheadOn float64 `json:"measured_overhead_on"`
}

// measureSpan times one Begin/End pair in the registry's current state.
func measureSpan() float64 {
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sp := obs.Begin("bench", "span")
			sp.End()
		}
	})
	return float64(res.T.Nanoseconds()) / float64(res.N)
}

// ObsOverheadBench measures the tracing layer's cost on the kernels
// benchmark (the same GAT attention plan KernelsBench runs). Tracing is
// restored to its prior state on return.
func ObsOverheadBench(cfg KernelsConfig) (*ObsOverheadReport, error) {
	g, runs, bind, err := kernelsSetup(cfg)
	if err != nil {
		return nil, err
	}
	wasEnabled := obs.Enabled()
	defer func() {
		if wasEnabled {
			obs.Enable()
		} else {
			obs.Disable()
		}
	}()

	rep := &ObsOverheadReport{
		Graph: KernelsGraphInfo{Kind: "zipf", Vertices: g.N, Edges: g.M,
			AvgDegree: cfg.AvgDegree, Alpha: cfg.Alpha, DegreeSorted: true},
		SpansPerLaunch: spansPerLaunch,
	}

	obs.Disable()
	rep.DisabledSpanNs = measureSpan()
	kcfg := kernels.Config{Partition: kernels.PartitionEdgeBalanced}
	off, err := measureKernel(g, runs, bind, kcfg)
	if err != nil {
		return nil, err
	}
	rep.KernelNsPerLaunch = off.NsPerOp()

	obs.Enable()
	obs.Reset()
	rep.EnabledSpanNs = measureSpan()
	on, err := measureKernel(g, runs, bind, kcfg)
	if err != nil {
		return nil, err
	}
	obs.Reset()
	rep.KernelObsOnNsPerLaunch = on.NsPerOp()

	if rep.KernelNsPerLaunch > 0 {
		rep.ModeledOverheadOff = float64(spansPerLaunch) * rep.DisabledSpanNs /
			float64(rep.KernelNsPerLaunch)
		if d := on.NsPerOp() - off.NsPerOp(); d > 0 {
			rep.MeasuredOverheadOn = float64(d) / float64(off.NsPerOp())
		}
	}
	return rep, nil
}

// WriteObsText renders the overhead report for humans.
func WriteObsText(w io.Writer, rep *ObsOverheadReport) {
	fmt.Fprintf(w, "obs overhead on kernels bench (%d vertices, %d edges)\n",
		rep.Graph.Vertices, rep.Graph.Edges)
	fmt.Fprintf(w, "  span off %.1f ns, on %.1f ns, %d spans/launch\n",
		rep.DisabledSpanNs, rep.EnabledSpanNs, rep.SpansPerLaunch)
	fmt.Fprintf(w, "  kernel launch off %d ns, on %d ns\n",
		rep.KernelNsPerLaunch, rep.KernelObsOnNsPerLaunch)
	fmt.Fprintf(w, "  modeled disabled overhead %.4f%%, measured enabled overhead %.2f%%\n",
		rep.ModeledOverheadOff*100, rep.MeasuredOverheadOn*100)
}

package bench

import (
	"bytes"
	"testing"

	"seastar/internal/device"
	"seastar/internal/kernels"
	"seastar/internal/sched"
)

// TestKernelsBenchSmall runs the kernel benchmark end-to-end on a small
// graph and checks the report's structural invariants, including the
// headline claim: the edge-balanced schedule's modeled makespan beats the
// equal-row split by at least 1.5x at 8 workers on a Zipf graph.
func TestKernelsBenchSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark harness")
	}
	cfg := KernelsConfig{Vertices: 20000, AvgDegree: 8, Alpha: 1.0,
		Hidden: 8, Workers: 8, Seed: 1}
	rep, err := KernelsBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Measured) != 2 {
		t.Fatalf("measured %d variants, want 2", len(rep.Measured))
	}
	for _, m := range rep.Measured {
		if m.NsPerOp <= 0 {
			t.Fatalf("%s: non-positive ns/op", m.Name)
		}
	}
	mo := rep.Model[0]
	if mo.Speedup < 1.5 {
		t.Fatalf("edge-balanced makespan speedup %.2fx over uniform rows, want >= 1.5x", mo.Speedup)
	}
	if mo.EdgeBalancedMakespan*float64(mo.Workers) < mo.SerialCost {
		t.Fatalf("makespan %f below serial/p bound %f", mo.EdgeBalancedMakespan,
			mo.SerialCost/float64(mo.Workers))
	}
	var buf bytes.Buffer
	if err := WriteKernelsJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"makespan_model"`)) {
		t.Fatal("JSON report missing makespan_model")
	}
}

// BenchmarkSeastarKernelZipf is the allocation-profile benchmark: the GAT
// attention kernel over a skewed Zipf graph. Run with -benchmem; the
// steady state must stay within a handful of allocations per launch
// (arena reuse + cached partition + pooled outputs).
func BenchmarkSeastarKernelZipf(b *testing.B) {
	cfg := KernelsConfig{Vertices: 100000, AvgDegree: 8, Alpha: 1.0,
		Hidden: 16, Workers: sched.MaxProcs, Seed: 1}
	g, runs, bind, err := kernelsSetup(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		m    kernels.PartitionMode
	}{
		{"edge-balanced", kernels.PartitionEdgeBalanced},
		{"uniform-rows", kernels.PartitionUniformRows},
	} {
		b.Run(mode.name, func(b *testing.B) {
			dev := device.New(device.V100)
			kcfg := kernels.Config{Partition: mode.m}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, r := range runs {
					if err := r.k.Run(dev, g, kcfg, bind, r.outs); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

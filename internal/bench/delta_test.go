package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestDeltaBenchSmall(t *testing.T) {
	cfg := DefaultDeltaBenchConfig()
	cfg.Vertices = 2000
	cfg.AvgDegree = 6
	cfg.Deltas = 5
	// At 2k vertices the 2-hop frontier of ~15 touched vertices overshoots
	// the serving default (0.05·N = 100); the acceptance scale is 100k.
	cfg.FrontierLimit = 0.5
	rep, err := DeltaBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.BitwiseEqual {
		t.Fatal("incremental logits diverged from rebuild-from-scratch")
	}
	if rep.Incremental+rep.Full != rep.Deltas {
		t.Fatalf("recompute modes %d+%d don't cover %d deltas",
			rep.Incremental, rep.Full, rep.Deltas)
	}
	if rep.Incremental == 0 {
		t.Fatal("no delta took the incremental path")
	}
	if rep.TouchedFrac <= 0 || rep.TouchedFrac >= 1 {
		t.Fatalf("touched fraction %f out of range", rep.TouchedFrac)
	}
	// Sharing only shows at scale: 2k vertices span just two 1024-row CSR
	// chunks, and ~15 random touches dirty both. Range-check only.
	if rep.SharedChunkFrac < 0 || rep.SharedChunkFrac > 1 {
		t.Fatalf("shared-chunk fraction %f out of range", rep.SharedChunkFrac)
	}
	if rep.IncrementalNs <= 0 || rep.FullForwardNs <= 0 || rep.RebuildNs <= 0 {
		t.Fatalf("missing timings: incr=%d full=%d rebuild=%d",
			rep.IncrementalNs, rep.FullForwardNs, rep.RebuildNs)
	}

	var jb, tb bytes.Buffer
	if err := WriteDeltaJSON(&jb, rep); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"\"experiment\": \"delta\"", "\"bitwise_equal\": true", "\"speedup_vs_full\""} {
		if !strings.Contains(jb.String(), key) {
			t.Fatalf("JSON report missing %s:\n%s", key, jb.String())
		}
	}
	WriteDeltaText(&tb, rep)
	if !strings.Contains(tb.String(), "bitwise-equal to rebuild-from-scratch: true") {
		t.Fatalf("text report missing bitwise line:\n%s", tb.String())
	}
}
